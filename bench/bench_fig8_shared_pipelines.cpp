// Figure 8 / Section VII-A "State Sharing Learners" — two pipelines on one
// shared Q/R/Qmax table (dual-port BRAM), with same-cycle same-address
// writes resolving by arbitrary overwrite.
//
// Paper's claims, measured here:
//   * throughput "effectively doubles" (2 samples/cycle combined);
//   * write collisions are rare under random behavior ("collision is much
//     less likely to happen") and their rate falls with the world size;
//   * convergence per wall-clock cycle improves vs a single pipeline.
//
// --trace=out.json additionally records a Perfetto/Chrome trace-event
// file (docs/observability.md): per-stage cycle-domain tracks for both
// pipelines of a traced dual run, plus wall-clock worker tracks from
// replaying the convergence sweep's six jobs on the work-stealing pool.
#include <algorithm>
#include <array>
#include <functional>
#include <iostream>
#include <string>
#include <thread>

#include "bench_util.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "env/value_iteration.h"
#include "runtime/multi_pipeline.h"
#include "telemetry/pipeline_telemetry.h"
#include "telemetry/pool_observer.h"

using namespace qta;

namespace {
/// Fraction of non-terminal states whose greedy action (from a Q table
/// given as doubles) reaches the goal — the convergence proxy.
double policy_success(const env::GridWorld& world,
                      const std::vector<double>& q) {
  const auto policy = env::greedy_policy_from(world, q);
  const std::function<bool(StateId)> blocked = [&](StateId s) {
    return world.is_obstacle(s);
  };
  return env::policy_success_rate(world, policy, 4 * world.num_states(),
                                  &blocked);
}

// The --trace artifact: one traced dual shared-table run (per-stage
// tracks, cycle domain) plus the convergence sweep's six jobs replayed
// on the work-stealing pool (per-worker tracks, wall-clock domain).
bool write_trace(const std::string& path) {
  env::GridWorldConfig gc;
  gc.width = 8;
  gc.height = 8;
  gc.num_actions = 4;
  env::GridWorld world(gc);
  qtaccel::PipelineConfig config;
  config.seed = 3;
  config.max_episode_length = 512;

  telemetry::TraceSession trace;
  telemetry::MetricsRegistry registry;
  {
    runtime::SharedTablePipelines dual(world, config, 2);
    telemetry::PipelineTelemetry t0(qtaccel::make_run_labels(config, 0),
                                    &registry, &trace, /*pid=*/1);
    telemetry::PipelineTelemetry t1(qtaccel::make_run_labels(config, 1),
                                    &registry, &trace, /*pid=*/2);
    dual.set_telemetry(0, &t0);
    dual.set_telemetry(1, &t1);
    dual.run_cycles(4000);
  }  // sink destructors flush trailing open spans

  // Six jobs: {4k, 16k, 64k} cycles x {solo, dual}, claimed dynamically.
  // At least two workers even on a single-core host so the artifact
  // always shows the multi-track pool layout (work stealing included).
  ThreadPool pool(std::clamp(std::thread::hardware_concurrency(), 2u, 4u));
  telemetry::PoolTraceObserver observer(trace, /*pid=*/100, pool.size(),
                                        "convergence sweep pool",
                                        &registry);
  pool.set_observer(&observer);
  const std::array<std::uint64_t, 3> budgets{4000, 16000, 64000};
  pool.parallel_for(6, [&](std::size_t i) {
    runtime::SharedTablePipelines run(world, config,
                                      1 + static_cast<unsigned>(i % 2));
    run.run_cycles(budgets[i / 2]);
  });
  pool.set_observer(nullptr);

  if (!trace.write_file(path)) {
    std::cerr << "failed to write " << path << "\n";
    return false;
  }
  std::cout << "\nwrote trace (" << trace.event_count() << " events) to "
            << path << " — open in ui.perfetto.dev\n";
  return true;
}
}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string trace_path = flags.get_string("trace", "");
  // Shared-table mode is a port-level model: only the cycle-accurate
  // backend exists for it. Reject --backend=fast up front with a clear
  // message instead of letting the pool constructor abort.
  const auto backend =
      qtaccel::parse_backend(flags.get_string("backend", "cycle"));
  if (backend != qtaccel::Backend::kCycleAccurate) {
    std::cerr << "fig8 measures port-level table sharing; the fast "
                 "functional backend has no shared-table model. Re-run "
                 "with --backend=cycle (or use fig9 / rover_exploration "
                 "for fast fleets).\n";
    return 2;
  }
  for (const auto& f : flags.unused()) {
    std::cerr << "unknown flag: --" << f << "\n";
    return 2;
  }

  std::cout << "=== Figure 8: two pipelines sharing one Q table ===\n\n";

  bool ok = true;

  // --- throughput and collision rate vs world size ---
  TablePrinter table({"grid", "pipes", "samples/cycle", "collisions",
                      "collisions/kcycle"});
  double prev_rate = 1e9;
  for (const unsigned side : {4u, 8u, 16u, 32u}) {
    env::GridWorldConfig gc;
    gc.width = side;
    gc.height = side;
    gc.num_actions = 4;
    env::GridWorld world(gc);
    qtaccel::PipelineConfig config;
    config.seed = 3;
    config.max_episode_length = 512;
    runtime::SharedTablePipelines dual(world, config, 2);
    const std::uint64_t cycles = 40000;
    dual.run_cycles(cycles);
    const double rate =
        1000.0 * static_cast<double>(dual.q_write_collisions()) /
        static_cast<double>(cycles);
    table.add_row({std::to_string(side) + "x" + std::to_string(side), "2",
                   format_double(dual.samples_per_cycle(), 3),
                   std::to_string(dual.q_write_collisions()),
                   format_double(rate, 2)});
    ok &= dual.samples_per_cycle() > 1.9;  // "effectively doubles"
    ok &= rate < prev_rate;                // rarer in bigger worlds
    prev_rate = rate;
  }
  table.print(std::cout);

  // --- convergence at an equal cycle budget ---
  std::cout << "\nConvergence at equal cycle budgets (8x8 grid, policy "
               "success = fraction of states whose greedy path reaches "
               "the goal):\n\n";
  env::GridWorldConfig gc;
  gc.width = 8;
  gc.height = 8;
  gc.num_actions = 4;
  env::GridWorld world(gc);
  TablePrinter conv({"cycles", "1 pipe success", "2 pipes success"});
  bool dual_never_worse_late = true;
  for (const std::uint64_t budget : {4000ull, 16000ull, 64000ull}) {
    qtaccel::PipelineConfig config;
    config.alpha = 0.2;
    config.seed = 5;
    config.max_episode_length = 512;
    runtime::SharedTablePipelines solo(world, config, 1);
    runtime::SharedTablePipelines dual(world, config, 2);
    solo.run_cycles(budget);
    dual.run_cycles(budget);
    const double s1 = policy_success(world, solo.q_as_double());
    const double s2 = policy_success(world, dual.q_as_double());
    conv.add_row({std::to_string(budget), format_double(s1, 3),
                  format_double(s2, 3)});
    if (budget == 64000ull) dual_never_worse_late = s2 >= s1 - 0.05;
  }
  conv.print(std::cout);
  ok &= dual_never_worse_late;

  if (!trace_path.empty() && !write_trace(trace_path)) return 2;

  std::cout << "\nClaims (2x samples/cycle; collision rate falls with "
               "|S|; dual converges at least as fast per cycle): "
            << (ok ? "REPRODUCED" : "DIVERGED") << "\n";
  return ok ? 0 : 1;
}

// Ablation — the forwarding network (the paper's key pipeline
// contribution) vs conservative stalling.
//
// Without forwarding, a sample can only issue once the previous update
// has fully committed (4 cycles), so throughput drops to 0.25
// samples/cycle; with forwarding the pipeline retires 1/cycle with
// IDENTICAL learned values (verified bit-exactly here). This is the
// difference between ~45 MS/s and ~180 MS/s at the device clock.
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "device/frequency_model.h"
#include "runtime/engine.h"
#include "qtaccel/resources.h"

using namespace qta;

int main() {
  std::cout << "=== Ablation: forwarding vs stall-on-hazard ===\n\n";

  bool ok = true;
  TablePrinter table({"|S|", "mode", "samples/cycle", "cycles",
                      "fwd hits (q_sa/q_next/qmax)", "MS/s @ clock"});

  for (const std::uint64_t states : {256ull, 16384ull}) {
    env::GridWorld world(bench::grid_for_states(states, 8));
    qtaccel::PipelineConfig fwd;
    fwd.seed = 41;
    fwd.max_episode_length = 2048;
    qtaccel::PipelineConfig stall = fwd;
    stall.hazard = qtaccel::HazardMode::kStall;

    runtime::Engine pf(world, fwd);
    runtime::Engine ps(world, stall);
    const std::uint64_t iters = 60000;
    pf.run_iterations(iters);
    ps.run_iterations(iters);

    // Identical learned tables: forwarding changes timing, not values.
    bool identical = true;
    for (StateId s = 0; s < world.num_states() && identical; ++s) {
      for (ActionId a = 0; a < world.num_actions(); ++a) {
        if (pf.q_raw(s, a) != ps.q_raw(s, a)) {
          identical = false;
          break;
        }
      }
    }
    ok &= identical;

    const auto ledger = qtaccel::build_resources(world, fwd);
    const double mhz =
        device::estimated_clock_mhz(bench::eval_device(), ledger);
    for (const auto* p : {&pf, &ps}) {
      const auto& st = p->stats();
      table.add_row(
          {bench::states_label(states), p == &pf ? "forward" : "stall",
           format_double(st.samples_per_cycle(), 4),
           std::to_string(st.cycles),
           std::to_string(st.fwd_q_sa) + "/" +
               std::to_string(st.fwd_q_next) + "/" +
               std::to_string(st.fwd_qmax),
           format_double(
               device::throughput_sps(mhz, st.samples_per_cycle()) / 1e6,
               1)});
    }
    ok &= pf.stats().samples_per_cycle() > 0.97;
    ok &= ps.stats().samples_per_cycle() < 0.26;
    std::cout << "  |S|=" << states
              << ": learned tables bit-identical across modes: "
              << (identical ? "yes" : "NO") << "\n";
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nClaims (4x throughput from forwarding, zero effect on "
               "learned values): "
            << (ok ? "CONFIRMED" : "NOT CONFIRMED") << "\n";
  return ok ? 0 : 1;
}

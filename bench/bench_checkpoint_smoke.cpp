// Checkpoint smoke (CI: checkpoint-smoke) — the pause/resume contract of
// docs/runtime.md, checked as a differential across every algorithm,
// every (save backend, resume backend) pair including cross-backend, and
// every snapshot mode (v2 text, v3 binary full, v3 base + dirty-row
// delta).
//
// For each combination:
//   reference:  one engine runs run_samples(N) then run_samples(N + M);
//   candidate:  an engine on the save backend runs run_samples(N) and
//               serializes a snapshot in the mode under test; a fresh
//               engine on the resume backend restores it and runs
//               run_samples(N + M). The delta mode checkpoints at N/2,
//               opens a dirty-row epoch, and serializes the N/2..N tail
//               as a delta replayed onto the decoded base.
// The candidate's retired trace must be bit-identical to the reference's
// post-N suffix, and its final PipelineStats and raw Q/Q2/Qmax tables
// must match the reference exactly. The v3 full mode additionally does a
// cross-format round trip: the v2 text of the v3-restored engine must
// byte-equal the saver's own v2 text. Any divergence fails the exit
// code — there are no timing claims here, so the gate is strict.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "env/grid_world.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"

using namespace qta;

namespace {

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
    std::cout << "  DIVERGENCE: " << what << "\n";
  }
}

enum class SaveMode { kV2Text, kV3Full, kV3Delta };

const char* mode_label(SaveMode m) {
  switch (m) {
    case SaveMode::kV2Text: return "v2";
    case SaveMode::kV3Full: return "v3";
    case SaveMode::kV3Delta: return "v3+delta";
  }
  return "?";
}

const char* algo_label(qtaccel::Algorithm a) {
  switch (a) {
    case qtaccel::Algorithm::kQLearning: return "q_learning";
    case qtaccel::Algorithm::kSarsa: return "sarsa";
    case qtaccel::Algorithm::kExpectedSarsa: return "expected_sarsa";
    case qtaccel::Algorithm::kDoubleQ: return "double_q";
  }
  return "?";
}

bool stats_equal(const qtaccel::PipelineStats& a,
                 const qtaccel::PipelineStats& b) {
  return a.iterations == b.iterations && a.samples == b.samples &&
         a.episodes == b.episodes && a.bubbles == b.bubbles &&
         a.cycles == b.cycles && a.issued == b.issued &&
         a.stall_cycles == b.stall_cycles && a.fwd_q_sa == b.fwd_q_sa &&
         a.fwd_q_next == b.fwd_q_next && a.fwd_qmax == b.fwd_qmax &&
         a.adder_saturations == b.adder_saturations;
}

void check_pair(const env::Environment& env, qtaccel::Algorithm algorithm,
                qtaccel::Backend save_backend,
                qtaccel::Backend resume_backend, SaveMode mode,
                std::uint64_t split, std::uint64_t total) {
  qtaccel::PipelineConfig base;
  base.algorithm = algorithm;
  base.alpha = 0.2;
  base.gamma = 0.9;
  base.seed = 99;
  base.max_episode_length = 512;

  const std::string tag =
      std::string(algo_label(algorithm)) + " " +
      qtaccel::backend_name(save_backend) + "->" +
      qtaccel::backend_name(resume_backend) + " [" + mode_label(mode) + "]";

  // Reference: the resume backend running the same two chunks with a
  // call boundary at the split (backends retire identical traces and
  // stats, so the reference backend choice is immaterial — using the
  // resume backend keeps the comparison self-contained).
  qtaccel::PipelineConfig rc = base;
  rc.backend = resume_backend;
  runtime::Engine ref(env, rc);
  std::vector<qtaccel::SampleTrace> ref_trace;
  ref.set_trace(&ref_trace);
  // The delta candidate drains at split/2 to cut its base image; pipeline
  // fill/drain counters (cycles, bubbles, stalls) are call-boundary
  // dependent, so the reference must take the same boundary.
  if (mode == SaveMode::kV3Delta) ref.run_samples(split / 2);
  ref.run_samples(split);
  const std::size_t ref_prefix = ref_trace.size();
  ref.run_samples(total);

  // Candidate: save on one backend, resume on the other.
  qtaccel::PipelineConfig sc = base;
  sc.backend = save_backend;
  runtime::Engine saver(env, sc);
  runtime::Engine resumed(env, rc);
  if (mode == SaveMode::kV3Delta) {
    // Base at split/2, dirty-row epoch to split, delta onto the base.
    saver.run_samples(split / 2);
    std::stringstream base_snap;
    runtime::save_snapshot_v3(saver, base_snap);
    saver.reset_dirty_rows();
    saver.run_samples(split);
    std::stringstream delta;
    runtime::write_snapshot_delta(delta, saver.config(), env,
                                  saver.save_state());
    qtaccel::MachineState ms = runtime::read_snapshot(base_snap, rc, env);
    runtime::apply_snapshot_delta(delta, rc, env, ms);
    resumed.load_state(ms);
  } else {
    saver.run_samples(split);
    std::stringstream snap;
    if (mode == SaveMode::kV3Full) {
      runtime::save_snapshot_v3(saver, snap);
    } else {
      runtime::save_snapshot(saver, snap);
    }
    runtime::load_snapshot(resumed, snap);
    if (mode == SaveMode::kV3Full) {
      // Cross-format round trip: the v2 text of the engine restored
      // from the v3 image must byte-equal the saver's own v2 text.
      std::ostringstream direct_v2, via_v3;
      runtime::save_snapshot(saver, direct_v2);
      runtime::save_snapshot(resumed, via_v3);
      expect(via_v3.str() == direct_v2.str(),
             tag + ": v3->v2 cross-format text mismatch");
    }
  }
  std::vector<qtaccel::SampleTrace> resumed_trace;
  resumed.set_trace(&resumed_trace);
  resumed.run_samples(total);

  bool trace_ok =
      ref_trace.size() == ref_prefix + resumed_trace.size();
  for (std::size_t i = 0; trace_ok && i < resumed_trace.size(); ++i) {
    trace_ok = ref_trace[ref_prefix + i] == resumed_trace[i];
  }
  expect(trace_ok, tag + ": resumed trace is not the reference suffix");

  expect(stats_equal(ref.stats(), resumed.stats()),
         tag + ": final PipelineStats mismatch");
  expect(ref.dsp_saturations() == resumed.dsp_saturations(),
         tag + ": DSP saturation counter mismatch");

  bool tables_ok = true;
  for (StateId s = 0; s < env.num_states() && tables_ok; ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      if (ref.q_raw(s, a) != resumed.q_raw(s, a) ||
          (algorithm == qtaccel::Algorithm::kDoubleQ &&
           ref.q2_raw(s, a) != resumed.q2_raw(s, a))) {
        tables_ok = false;
        break;
      }
    }
    if (ref.qmax_entry(s).value != resumed.qmax_entry(s).value ||
        ref.qmax_entry(s).action != resumed.qmax_entry(s).action) {
      tables_ok = false;
    }
  }
  expect(tables_ok, tag + ": final Q/Q2/Qmax table mismatch");
}

}  // namespace

int main() {
  std::cout << "=== Checkpoint smoke: save/resume differential, all "
               "algorithms x all backend pairs x all snapshot modes ===\n\n";
  env::GridWorld world(bench::grid_for_states(256, 4));

  const qtaccel::Algorithm algos[] = {
      qtaccel::Algorithm::kQLearning, qtaccel::Algorithm::kSarsa,
      qtaccel::Algorithm::kExpectedSarsa, qtaccel::Algorithm::kDoubleQ};
  const qtaccel::Backend backends[] = {qtaccel::Backend::kCycleAccurate,
                                       qtaccel::Backend::kFast};
  const SaveMode modes[] = {SaveMode::kV2Text, SaveMode::kV3Full,
                            SaveMode::kV3Delta};
  int combos = 0;
  for (const auto algorithm : algos) {
    for (const auto save_backend : backends) {
      for (const auto resume_backend : backends) {
        for (const auto mode : modes) {
          std::cout << "[" << ++combos << "/48] " << algo_label(algorithm)
                    << " " << qtaccel::backend_name(save_backend) << " -> "
                    << qtaccel::backend_name(resume_backend) << " ["
                    << mode_label(mode) << "]\n";
          check_pair(world, algorithm, save_backend, resume_backend, mode,
                     /*split=*/3000, /*total=*/9000);
        }
      }
    }
  }

  if (g_failures != 0) {
    std::cout << "\nCHECKPOINT RESUME: DIVERGED (" << g_failures
              << " failure(s))\n";
    return 1;
  }
  std::cout << "\nCHECKPOINT RESUME: BIT-EXACT across all 48 "
               "algorithm x backend-pair x snapshot-mode combinations\n";
  return 0;
}

// Checkpoint smoke (CI: checkpoint-smoke) — the pause/resume contract of
// docs/runtime.md, checked as a differential across every algorithm and
// every (save backend, resume backend) pair, including cross-backend.
//
// For each combination:
//   reference:  one engine runs run_samples(N) then run_samples(N + M);
//   candidate:  an engine on the save backend runs run_samples(N) and
//               serializes a QTACCEL-SNAPSHOT v2; a fresh engine on the
//               resume backend restores it and runs run_samples(N + M).
// The candidate's retired trace must be bit-identical to the reference's
// post-N suffix, and its final PipelineStats and raw Q/Q2/Qmax tables
// must match the reference exactly. Any divergence fails the exit code —
// there are no timing claims here, so the gate is strict.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "env/grid_world.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"

using namespace qta;

namespace {

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
    std::cout << "  DIVERGENCE: " << what << "\n";
  }
}

const char* algo_label(qtaccel::Algorithm a) {
  switch (a) {
    case qtaccel::Algorithm::kQLearning: return "q_learning";
    case qtaccel::Algorithm::kSarsa: return "sarsa";
    case qtaccel::Algorithm::kExpectedSarsa: return "expected_sarsa";
    case qtaccel::Algorithm::kDoubleQ: return "double_q";
  }
  return "?";
}

bool stats_equal(const qtaccel::PipelineStats& a,
                 const qtaccel::PipelineStats& b) {
  return a.iterations == b.iterations && a.samples == b.samples &&
         a.episodes == b.episodes && a.bubbles == b.bubbles &&
         a.cycles == b.cycles && a.issued == b.issued &&
         a.stall_cycles == b.stall_cycles && a.fwd_q_sa == b.fwd_q_sa &&
         a.fwd_q_next == b.fwd_q_next && a.fwd_qmax == b.fwd_qmax &&
         a.adder_saturations == b.adder_saturations;
}

void check_pair(const env::Environment& env, qtaccel::Algorithm algorithm,
                qtaccel::Backend save_backend,
                qtaccel::Backend resume_backend, std::uint64_t split,
                std::uint64_t total) {
  qtaccel::PipelineConfig base;
  base.algorithm = algorithm;
  base.alpha = 0.2;
  base.gamma = 0.9;
  base.seed = 99;
  base.max_episode_length = 512;

  const std::string tag =
      std::string(algo_label(algorithm)) + " " +
      qtaccel::backend_name(save_backend) + "->" +
      qtaccel::backend_name(resume_backend);

  // Reference: the resume backend running the same two chunks with a
  // call boundary at the split (backends retire identical traces and
  // stats, so the reference backend choice is immaterial — using the
  // resume backend keeps the comparison self-contained).
  qtaccel::PipelineConfig rc = base;
  rc.backend = resume_backend;
  runtime::Engine ref(env, rc);
  std::vector<qtaccel::SampleTrace> ref_trace;
  ref.set_trace(&ref_trace);
  ref.run_samples(split);
  const std::size_t ref_prefix = ref_trace.size();
  ref.run_samples(total);

  // Candidate: save on one backend, resume on the other.
  qtaccel::PipelineConfig sc = base;
  sc.backend = save_backend;
  runtime::Engine saver(env, sc);
  saver.run_samples(split);
  std::stringstream snap;
  runtime::save_snapshot(saver, snap);

  runtime::Engine resumed(env, rc);
  runtime::load_snapshot(resumed, snap);
  std::vector<qtaccel::SampleTrace> resumed_trace;
  resumed.set_trace(&resumed_trace);
  resumed.run_samples(total);

  bool trace_ok =
      ref_trace.size() == ref_prefix + resumed_trace.size();
  for (std::size_t i = 0; trace_ok && i < resumed_trace.size(); ++i) {
    trace_ok = ref_trace[ref_prefix + i] == resumed_trace[i];
  }
  expect(trace_ok, tag + ": resumed trace is not the reference suffix");

  expect(stats_equal(ref.stats(), resumed.stats()),
         tag + ": final PipelineStats mismatch");
  expect(ref.dsp_saturations() == resumed.dsp_saturations(),
         tag + ": DSP saturation counter mismatch");

  bool tables_ok = true;
  for (StateId s = 0; s < env.num_states() && tables_ok; ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      if (ref.q_raw(s, a) != resumed.q_raw(s, a) ||
          (algorithm == qtaccel::Algorithm::kDoubleQ &&
           ref.q2_raw(s, a) != resumed.q2_raw(s, a))) {
        tables_ok = false;
        break;
      }
    }
    if (ref.qmax_entry(s).value != resumed.qmax_entry(s).value ||
        ref.qmax_entry(s).action != resumed.qmax_entry(s).action) {
      tables_ok = false;
    }
  }
  expect(tables_ok, tag + ": final Q/Q2/Qmax table mismatch");
}

}  // namespace

int main() {
  std::cout << "=== Checkpoint smoke: save/resume differential, all "
               "algorithms x all backend pairs ===\n\n";
  env::GridWorld world(bench::grid_for_states(256, 4));

  const qtaccel::Algorithm algos[] = {
      qtaccel::Algorithm::kQLearning, qtaccel::Algorithm::kSarsa,
      qtaccel::Algorithm::kExpectedSarsa, qtaccel::Algorithm::kDoubleQ};
  const qtaccel::Backend backends[] = {qtaccel::Backend::kCycleAccurate,
                                       qtaccel::Backend::kFast};
  int combos = 0;
  for (const auto algorithm : algos) {
    for (const auto save_backend : backends) {
      for (const auto resume_backend : backends) {
        std::cout << "[" << ++combos << "/16] " << algo_label(algorithm)
                  << " " << qtaccel::backend_name(save_backend) << " -> "
                  << qtaccel::backend_name(resume_backend) << "\n";
        check_pair(world, algorithm, save_backend, resume_backend,
                   /*split=*/3000, /*total=*/9000);
      }
    }
  }

  if (g_failures != 0) {
    std::cout << "\nCHECKPOINT RESUME: DIVERGED (" << g_failures
              << " failure(s))\n";
    return 1;
  }
  std::cout << "\nCHECKPOINT RESUME: BIT-EXACT across all 16 "
               "algorithm x backend-pair combinations\n";
  return 0;
}

// Sharding-tier sweep: a Zipf(1.0) workload over a ~1M logical
// session-id space routed through the in-process LocalCluster at 1, 2,
// and 4 shards, writing BENCH_shard.json (schema provenance via
// write_bench_meta).
//
// Exit code gates ONLY correctness, never throughput:
//   1. Bit-exactness through the router: after every sweep cell,
//      sampled sessions' Snapshot text must byte-equal a standalone
//      engine replayed with the identical Step partitioning —
//      consistent-hash routing, proxy FIFOs, checkpoints, and (in
//      multi-shard cells) forced live migrations included.
//   2. Multi-shard cells must actually migrate: the router runs with
//      migrate_every set, and a cell that reports zero migrations is a
//      harness bug, not a slow day.
// Throughput (requests/sec per cell, and per shard) is report-only:
// this host is a shared CI box and the routing layer's correctness is
// the subject under test, not the machine. Each cell also reports the
// router's own p50/p95/p99 proxy-hop latency per request type
// (qtserve_request_latency_us{path="proxy"} — log2-bucket upper
// bounds, coarse but comparable across runs), the honest touched-
// session count (the Zipf head dominates; most of the 1M id space is
// never hit), and per-shard session/request counts scraped from each
// worker's own registry.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/table_printer.h"
#include "env/grid_world.h"
#include "rng/xoshiro.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"
#include "serve/protocol.h"
#include "shard/local_shard.h"
#include "shard/router.h"
#include "telemetry/metrics.h"

using namespace qta;

namespace {

constexpr std::uint64_t kIdSpace = 1'000'000;  // logical session ids
constexpr double kZipfExponent = 1.0;
constexpr std::size_t kRequestsPerCell = 4096;
constexpr std::uint64_t kStepsPerRequest = 32;
constexpr unsigned kMigrateEvery = 16;  // per-session Steps between hops
constexpr unsigned kCheckpointEvery = 8;
constexpr std::size_t kVerifySessions = 8;  // most-touched, bit-checked

serve::SessionSpec spec_for(std::uint64_t logical_id) {
  serve::SessionSpec spec;
  spec.width = 8;
  spec.height = 8;
  spec.actions = 4;
  spec.seed = 1 + logical_id;
  spec.max_episode_length = 256;
  return spec;
}

/// Zipf(s=1.0) sampler over [0, n): inverse-CDF lookup on the
/// precomputed harmonic prefix sums. Deterministic given the rng.
class ZipfSampler {
 public:
  explicit ZipfSampler(std::uint64_t n) : cdf_(n) {
    double sum = 0;
    for (std::uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), kZipfExponent);
      cdf_[k] = sum;
    }
    total_ = sum;
  }
  std::uint64_t draw(rng::Xoshiro256& rng) {
    const double u = rng.uniform() * total_;
    // Binary search for the first prefix >= u.
    std::uint64_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0;
};

std::string replay_snapshot(const serve::SessionSpec& spec,
                            const std::vector<std::uint64_t>& step_calls) {
  env::GridWorldConfig gc;
  gc.width = spec.width;
  gc.height = spec.height;
  gc.num_actions = spec.actions;
  env::GridWorld world(gc);
  runtime::Engine replay(world, serve::make_config(spec));
  for (const std::uint64_t steps : step_calls) {
    replay.run_samples(replay.stats().samples + steps);
  }
  std::ostringstream os;
  runtime::save_snapshot(replay, os);
  return std::move(os).str();
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SessionTrace {
  serve::SessionId id = 0;                // router-allocated
  std::vector<std::uint64_t> step_calls;  // partitioning for the twin
  std::uint64_t touches = 0;
};

struct CellResult {
  unsigned shards = 0;
  std::uint64_t touched = 0;
  std::uint64_t wall_us = 0;
  std::uint64_t migrations = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t verified = 0;
  std::vector<std::uint64_t> shard_sessions;
  std::vector<std::uint64_t> shard_steps;
  // p50/p95/p99 proxy-hop latency per request type.
  std::map<std::string, std::array<std::uint64_t, 3>> latency;
};

serve::Response decode_last(shard::LocalCluster& cluster,
                            shard::ClientId client) {
  std::vector<std::string> payloads = cluster.take_responses(client);
  if (payloads.empty()) {
    std::cerr << "bench_shard: router returned no response\n";
    std::exit(1);
  }
  auto resp = serve::decode_response(payloads.back());
  if (!resp.has_value()) {
    std::cerr << "bench_shard: undecodable response\n";
    std::exit(1);
  }
  return std::move(*resp);
}

serve::Response call(shard::LocalCluster& cluster, const serve::Request& req) {
  cluster.client_request(1, serve::encode_request(req));
  return decode_last(cluster, 1);
}

CellResult run_cell(unsigned shards) {
  shard::RouterOptions options;
  options.checkpoint_every = kCheckpointEvery;
  options.migrate_every = shards > 1 ? kMigrateEvery : 0;
  shard::LocalCluster cluster(shards, options);

  // Same id stream in every cell: the sweep varies topology, not load.
  rng::Xoshiro256 rng(42);
  ZipfSampler zipf(kIdSpace);
  std::map<std::uint64_t, SessionTrace> sessions;  // logical id -> trace

  const std::uint64_t start = now_us();
  for (std::size_t i = 0; i < kRequestsPerCell; ++i) {
    const std::uint64_t logical = zipf.draw(rng);
    SessionTrace& trace = sessions[logical];
    if (trace.id == 0) {
      serve::Request create;
      create.type = serve::RequestType::kCreateSession;
      create.spec = spec_for(logical);
      const serve::Response resp = call(cluster, create);
      if (resp.status != serve::Status::kOk) {
        std::cerr << "bench_shard: create failed: " << resp.error << "\n";
        std::exit(1);
      }
      trace.id = resp.session;
    }
    serve::Request step;
    step.type = serve::RequestType::kStep;
    step.session = trace.id;
    step.steps = kStepsPerRequest;
    const serve::Response resp = call(cluster, step);
    if (resp.status != serve::Status::kOk) {
      std::cerr << "bench_shard: step failed: " << resp.error << "\n";
      std::exit(1);
    }
    trace.step_calls.push_back(kStepsPerRequest);
    ++trace.touches;
  }

  CellResult cell;
  cell.shards = shards;
  cell.wall_us = now_us() - start;
  cell.touched = sessions.size();
  cell.migrations = cluster.router().migrations();
  cell.checkpoints = cluster.router().checkpoints();

  // Correctness gate 1: the most-touched sessions (the Zipf head — the
  // ones that migrated and checkpointed the most) are bit-exact against
  // standalone replay twins.
  std::vector<const SessionTrace*> by_touches;
  by_touches.reserve(sessions.size());
  for (const auto& [logical, trace] : sessions) by_touches.push_back(&trace);
  std::sort(by_touches.begin(), by_touches.end(),
            [](const SessionTrace* a, const SessionTrace* b) {
              if (a->touches != b->touches) return a->touches > b->touches;
              return a->id < b->id;
            });
  std::uint64_t verified = 0;
  for (const SessionTrace* trace : by_touches) {
    if (verified == kVerifySessions) break;
    serve::Request snap;
    snap.type = serve::RequestType::kSnapshot;
    snap.session = trace->id;
    const serve::Response resp = call(cluster, snap);
    if (resp.status != serve::Status::kOk) {
      std::cerr << "bench_shard: snapshot failed: " << resp.error << "\n";
      std::exit(1);
    }
    // The spec seed is recoverable from the creation order, but the
    // trace map is keyed by logical id; rebuild the spec from it.
    std::uint64_t logical = 0;
    for (const auto& [lid, t] : sessions) {
      if (&t == trace) logical = lid;
    }
    const std::string expect = replay_snapshot(spec_for(logical),
                                               trace->step_calls);
    if (resp.snapshot != expect) {
      std::cerr << "bench_shard: BIT-EXACTNESS FAILURE at " << shards
                << " shards, session " << trace->id << "\n";
      std::exit(1);
    }
    ++verified;
  }
  cell.verified = verified;

  // Correctness gate 2: multi-shard cells must have actually moved
  // sessions, or the sweep is not exercising migration at all.
  if (shards > 1 && cell.migrations == 0) {
    std::cerr << "bench_shard: " << shards
              << "-shard cell saw zero migrations (harness bug)\n";
    std::exit(1);
  }

  for (shard::ShardId id = 0; id < shards; ++id) {
    cell.shard_sessions.push_back(cluster.router().sessions_on(id));
    serve::Server* server =
        cluster.shard(id) != nullptr ? &cluster.shard(id)->server() : nullptr;
    cell.shard_steps.push_back(
        server == nullptr
            ? 0
            : server->metrics()
                  .counter("qtserve_requests_total", {{"type", "step"}})
                  .value());
  }

  for (const char* type : {"create_session", "step", "snapshot"}) {
    telemetry::Histogram& h = cluster.router().metrics().histogram(
        "qtserve_request_latency_us", {{"path", "proxy"}, {"type", type}});
    cell.latency[type] = {
        telemetry::histogram_percentile_upper_bound(h, 0.50),
        telemetry::histogram_percentile_upper_bound(h, 0.95),
        telemetry::histogram_percentile_upper_bound(h, 0.99)};
  }
  return cell;
}

}  // namespace

int main() {
  std::vector<CellResult> cells;
  for (const unsigned shards : {1u, 2u, 4u}) {
    cells.push_back(run_cell(shards));
    const CellResult& cell = cells.back();
    std::cout << "bench_shard: " << shards << " shard(s): "
              << cell.touched << "/" << kIdSpace
              << " logical sessions touched, " << cell.migrations
              << " migrations, " << cell.verified
              << " sessions verified bit-exact\n";
  }

  TablePrinter table({"shards", "touched", "req/s", "migrations",
                      "checkpoints", "step p50us", "step p99us"});
  for (const CellResult& cell : cells) {
    const double reqs = static_cast<double>(kRequestsPerCell + cell.touched);
    const double rate = cell.wall_us == 0
                            ? 0
                            : reqs * 1e6 / static_cast<double>(cell.wall_us);
    table.add_row({std::to_string(cell.shards), std::to_string(cell.touched),
               std::to_string(static_cast<std::uint64_t>(rate)),
               std::to_string(cell.migrations),
               std::to_string(cell.checkpoints),
               std::to_string(cell.latency.at("step")[0]),
               std::to_string(cell.latency.at("step")[2])});
  }
  table.print(std::cout);

  JsonWriter json;
  json.begin_object();
  bench::write_bench_meta(json);
  json.field("bench", "shard");
  json.field("id_space", kIdSpace);
  json.field("zipf_exponent", kZipfExponent);
  json.field("requests_per_cell", static_cast<std::uint64_t>(kRequestsPerCell));
  json.field("steps_per_request", kStepsPerRequest);
  json.field("migrate_every", static_cast<std::uint64_t>(kMigrateEvery));
  json.field("checkpoint_every", static_cast<std::uint64_t>(kCheckpointEvery));
  json.key("cells").begin_array();
  for (const CellResult& cell : cells) {
    json.begin_object();
    json.field("shards", static_cast<std::uint64_t>(cell.shards));
    json.field("touched_sessions", cell.touched);
    json.field("wall_us", cell.wall_us);
    const double reqs = static_cast<double>(kRequestsPerCell + cell.touched);
    json.field("requests_per_sec",
               cell.wall_us == 0
                   ? 0.0
                   : reqs * 1e6 / static_cast<double>(cell.wall_us));
    json.field("migrations", cell.migrations);
    json.field("checkpoints", cell.checkpoints);
    json.field("verified_sessions", cell.verified);
    json.key("per_shard").begin_array();
    for (std::size_t i = 0; i < cell.shard_sessions.size(); ++i) {
      json.begin_object();
      json.field("id", static_cast<std::uint64_t>(i));
      json.field("sessions", cell.shard_sessions[i]);
      json.field("step_requests", cell.shard_steps[i]);
      json.field("step_requests_per_sec",
                 cell.wall_us == 0
                     ? 0.0
                     : static_cast<double>(cell.shard_steps[i]) * 1e6 /
                           static_cast<double>(cell.wall_us));
      json.end_object();
    }
    json.end_array();
    json.key("proxy_latency_us").begin_object();
    for (const auto& [type, p] : cell.latency) {
      json.key(type).begin_object();
      json.field("p50", p[0]);
      json.field("p95", p[1]);
      json.field("p99", p[2]);
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();

  std::ofstream out("BENCH_shard.json");
  out << json.str() << "\n";
  if (!out) {
    std::cerr << "bench_shard: failed to write BENCH_shard.json\n";
    return 1;
  }
  std::cout << "bench_shard: wrote BENCH_shard.json\n";
  return 0;
}

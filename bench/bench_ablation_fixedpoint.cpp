// Ablation — fixed-point word width vs learning quality.
//
// The device model stores Q values in 18-bit lanes (s9.8); this sweep
// shows what narrower datapaths (which would halve BRAM) and wider ones
// do to policy quality and to the distance from the double-precision
// reference, on the paper's grid-world workload. Saturation and DSP
// rounding events are reported so the failure mode is visible, not
// silent.
#include <iostream>

#include "algo/q_learning.h"
#include "algo/trainer.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "env/value_iteration.h"
#include "runtime/engine.h"

using namespace qta;

int main() {
  std::cout << "=== Ablation: fixed-point format sweep (16x16 grid, "
               "Q-Learning, 400k samples) ===\n\n";

  env::GridWorldConfig gc;
  gc.width = 16;
  gc.height = 16;
  gc.num_actions = 4;
  env::GridWorld world(gc);
  const auto optimal = env::value_iteration(world, 0.9);

  // Double-precision software reference for the "infinite precision" row.
  algo::QLearningOptions ref_opt;
  ref_opt.alpha = 0.2;
  ref_opt.gamma = 0.9;
  algo::QLearning reference(world, ref_opt);
  algo::TrainOptions topt;
  topt.total_samples = 400000;
  topt.seed = 51;
  algo::train(reference, topt);
  const double ref_err = env::greedy_path_q_error(
      world, optimal, reference.q(), world.state_of(0, 0));

  TablePrinter table({"format", "policy success", "path Q err vs Q*",
                      "saturations", "BRAM bits/entry"});
  table.add_row({"double (software ref)", "1.000", format_double(ref_err, 3),
                 "-", "64"});

  bool ok = true;
  struct Case {
    fixed::Format fmt;
    bool expect_good;
  };
  // s3.6 (10b) cannot even hold the +255 goal reward: expected to fail.
  const Case cases[] = {{{10, 6}, false},
                        {{12, 3}, false},
                        {{16, 6}, true},
                        {{18, 8}, true},
                        {{24, 12}, true},
                        {{32, 16}, true}};
  for (const Case& c : cases) {
    qtaccel::PipelineConfig pc;
    pc.q_fmt = c.fmt;
    pc.alpha = 0.2;
    pc.gamma = 0.9;
    pc.seed = 51;
    pc.max_episode_length = 1024;
    runtime::Engine p(world, pc);
    p.run_iterations(400000);

    std::vector<ActionId> policy(world.num_states(), 0);
    for (StateId s = 0; s < world.num_states(); ++s) {
      double best = -1e300;
      for (ActionId a = 0; a < world.num_actions(); ++a) {
        if (p.q_value(s, a) > best) {
          best = p.q_value(s, a);
          policy[s] = a;
        }
      }
    }
    int reached = 0, total = 0;
    for (StateId s = 0; s < world.num_states(); ++s) {
      if (world.is_terminal(s)) continue;
      ++total;
      reached += env::rollout_steps(world, policy, s, 2000) >= 0 ? 1 : 0;
    }
    const double success = static_cast<double>(reached) / total;
    const double err = env::greedy_path_q_error(
        world, optimal, p.q_as_double(), world.state_of(0, 0));
    table.add_row({fixed::to_string(c.fmt), format_double(success, 3),
                   format_double(err, 3),
                   std::to_string(p.dsp_saturations() +
                                  p.stats().adder_saturations),
                   std::to_string(c.fmt.width)});
    if (c.expect_good) {
      ok &= success > 0.95;
    }
    if (c.fmt.width == 18) {
      // The paper's operating point must track the double reference.
      ok &= err < ref_err + 3.0;
    }
  }
  table.print(std::cout);
  std::cout << "\nFindings: s9.8 @ 18b tracks the double reference; "
               "formats whose integer range cannot hold the +/-255 "
               "rewards clip them at table load (visible as a path Q "
               "error in the hundreds), and runtime overflow pressure "
               "shows up in the saturation column: "
            << (ok ? "CONFIRMED" : "NOT CONFIRMED") << "\n";
  return ok ? 0 : 1;
}

// Figure 9 / Section VII-A "Independent Learners" — N pipelines, each on
// its own sub-environment with a private BRAM bank (the paper's example:
// multiple rovers mapping disjoint regions of a ground surface).
//
// Measured claims:
//   * aggregate throughput scales ~N x (each pipeline keeps 1/cycle);
//   * every rover learns its own band's goal;
//   * N is bounded only by BRAM banks — the report shows how many
//     64x64-cell rover worlds the xcvu13p holds.
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/table_printer.h"
#include "device/resource_report.h"
#include "env/partition.h"
#include "env/value_iteration.h"
#include "runtime/multi_pipeline.h"
#include "qtaccel/resources.h"

using namespace qta;

int main() {
  std::cout << "=== Figure 9: N independent pipelines on partitioned "
               "worlds ===\n\n";

  bool ok = true;
  TablePrinter table({"N", "total samples", "agg samples/cycle",
                      "all goals learned", "DSP", "BRAM18 tiles"});

  for (const unsigned n : {1u, 2u, 4u, 8u}) {
    env::GridWorldConfig base;
    base.width = 32;
    base.height = 32;
    base.num_actions = 4;
    const auto bands = env::partition_grid(base, n);
    std::vector<std::unique_ptr<env::Environment>> envs;
    for (const auto& b : bands) {
      envs.push_back(std::make_unique<env::GridWorld>(b));
    }
    qtaccel::PipelineConfig config;
    config.alpha = 0.2;
    config.seed = 9;
    config.max_episode_length = 512;
    runtime::IndependentPipelines rovers(std::move(envs), config);
    // Random-walk exploration needs samples proportional to the band's
    // state count to cover it (bands shrink as N grows).
    rovers.run_samples_each(800ull * (1024 / n));

    bool all_learned = true;
    for (unsigned i = 0; i < n; ++i) {
      const auto& band =
          static_cast<const env::GridWorld&>(rovers.environment(i));
      const auto policy = rovers.engine(i).greedy_policy();
      all_learned &= env::policy_success_rate(band, policy) >= 0.9;
    }

    const auto ledger = rovers.resources();
    table.add_row({std::to_string(n),
                   std::to_string(rovers.total_samples()),
                   format_double(rovers.samples_per_cycle(), 2),
                   all_learned ? "yes" : "NO", std::to_string(ledger.dsp()),
                   std::to_string(device::bram18_tiles_for(ledger))});
    ok &= rovers.samples_per_cycle() > 0.95 * n;
    ok &= all_learned;
  }
  table.print(std::cout);

  // Capacity: how many independent 64x64x4 rover worlds fit the device?
  env::GridWorldConfig rover;
  rover.width = 64;
  rover.height = 64;
  rover.num_actions = 4;
  env::GridWorld one(rover);
  qtaccel::PipelineConfig config;
  const auto single = qtaccel::build_resources(one, config);
  const auto tiles = device::bram18_tiles_for(single);
  const auto dev = bench::eval_device();
  const std::uint64_t max_n_bram = dev.bram18_blocks / tiles;
  const std::uint64_t max_n_dsp = dev.dsp_slices / single.dsp();
  std::cout << "\nCapacity on " << dev.name << ": one 64x64x4 rover world = "
            << tiles << " BRAM18 tiles + " << single.dsp()
            << " DSP -> max " << std::min(max_n_bram, max_n_dsp)
            << " independent pipelines (BRAM-bound: " << max_n_bram
            << ", DSP-bound: " << max_n_dsp << ")\n";

  std::cout << "\nClaims (aggregate rate ~N; every band learns): "
            << (ok ? "REPRODUCED" : "DIVERGED") << "\n";
  return ok ? 0 : 1;
}

// Ablation — how much of Table II's CPU deficit is the dictionary layout
// vs the CPU itself.
//
// Three software implementations of the same Q-learning loop:
//   * dict   — nested hash maps (the paper's Python baseline layout),
//   * flat   — one contiguous array (a fair optimized-C++ baseline),
//   * trainer — the flexible algo:: reference (virtual dispatch, double).
// The flat/dict gap isolates data-layout cost; the FPGA-model column
// shows that even the optimized CPU loop stays an order of magnitude
// behind the pipeline.
#include <iostream>

#include "algo/q_learning.h"
#include "algo/trainer.h"
#include "baseline/dict_q_learning.h"
#include "baseline/flat_q_learning.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "device/frequency_model.h"
#include "qtaccel/resources.h"

using namespace qta;

int main() {
  std::cout << "=== Ablation: CPU data layout (Q-learning updates/s) "
               "===\n\n";

  TablePrinter table({"|S|", "dict", "flat", "algo-ref", "flat/dict",
                      "FPGA model", "FPGA/flat"});
  bool ok = true;
  for (const std::uint64_t states : {1024ull, 65536ull, 262144ull}) {
    env::GridWorld world(bench::grid_for_states(states, 4));
    const std::uint64_t samples = states >= 262144 ? 400000 : 1000000;

    baseline::DictQLearning dict(world, 0.1, 0.9, 61);
    const auto rd = dict.run(samples);

    baseline::FlatQLearning flat(world, 0.1, 0.9, 61);
    const auto rf = flat.run(samples);

    algo::QLearning ref(world, algo::QLearningOptions{});
    algo::TrainOptions topt;
    topt.total_samples = samples;
    topt.seed = 61;
    const auto rr = algo::train(ref, topt);

    qtaccel::PipelineConfig pc;
    const auto ledger = qtaccel::build_resources(world, pc);
    const double fpga = device::throughput_sps(
        device::estimated_clock_mhz(bench::eval_device(), ledger), 1.0);

    table.add_row({bench::states_label(states),
                   format_rate(rd.samples_per_sec),
                   format_rate(rf.samples_per_sec),
                   format_rate(rr.samples_per_sec),
                   format_double(rf.samples_per_sec / rd.samples_per_sec,
                                 2) +
                       "x",
                   format_rate(fpga),
                   format_double(fpga / rf.samples_per_sec, 1) + "x"});
    ok &= rf.samples_per_sec > rd.samples_per_sec;
    ok &= fpga > rf.samples_per_sec;
  }
  table.print(std::cout);
  std::cout << "\nFindings (flat > dict at every size; the FPGA model "
               "outruns even the flat loop): "
            << (ok ? "CONFIRMED" : "NOT CONFIRMED") << "\n";
  return ok ? 0 : 1;
}

// Perf-regression smoke for the fast functional backend (CI: perf-smoke).
//
// Four claims, one artifact (BENCH_fast_engine.json at the CWD, which CI
// runs from the repo root):
//   1. Bit-exactness (an exit-code gate): on the paper's largest
//      Table I workload (262144 states x 8 actions), FastEngine retires a
//      trace, Q table, Qmax table, and PipelineStats bit-identical to the
//      cycle-accurate Pipeline; and the work-stealing vs static schedules
//      produce bit-identical per-pipeline tables (results must not depend
//      on host scheduling).
//   2. Host throughput (report-only): fast backend >= 20x the
//      cycle-accurate backend in samples/s, single- and multi-pipeline.
//   3. Skew rebalancing (report-only): 16 pipelines (1 large + 15 small)
//      on 4 threads finish measurably faster under the work-stealing pool
//      than under the legacy static round-robin partition.
//   4. Lane batching: a 1/4/8/16-lane sweep of the lane-batched backend
//      on a latency-bound random MDP whose Q table dwarfs the LLC.
//      Per-lane bit-exactness vs solo FastEngine runs is a gate; the
//      lane_speedup_vs_fast numbers are report-only, and bounded by the
//      host's memory-level parallelism — a core that overlaps few cache
//      misses gains little from batching independent miss streams, so
//      low speedups on small hosts are expected and honest.
// Timing claims are REPORTED, never asserted via exit code — CI machines
// are noisy; only correctness may fail the job.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "env/grid_world.h"
#include "env/random_mdp.h"
#include "runtime/engine.h"
#include "runtime/lane_coalescer.h"
#include "runtime/multi_pipeline.h"

using namespace qta;

namespace {

std::vector<std::string> g_divergences;

void check_exact(bool ok, const std::string& what) {
  if (!ok) {
    g_divergences.push_back(what);
    std::cout << "DIVERGENCE: " << what << "\n";
  }
}

const char* algo_label(qtaccel::Algorithm a) {
  switch (a) {
    case qtaccel::Algorithm::kQLearning: return "q_learning";
    case qtaccel::Algorithm::kSarsa: return "sarsa";
    case qtaccel::Algorithm::kExpectedSarsa: return "expected_sarsa";
    case qtaccel::Algorithm::kDoubleQ: return "double_q";
  }
  return "?";
}

// Part 1: trace/table/stats equality on the Table I workload.
void verify_bit_exact(const env::Environment& env,
                      qtaccel::Algorithm algorithm,
                      std::uint64_t iterations, bench::JsonWriter& json) {
  qtaccel::PipelineConfig config;
  config.algorithm = algorithm;
  config.seed = 12345;
  config.max_episode_length = 4096;

  qtaccel::PipelineConfig fast_config = config;
  fast_config.backend = qtaccel::Backend::kFast;

  runtime::Engine pipeline(env, config);
  std::vector<qtaccel::SampleTrace> pipe_trace;
  pipeline.set_trace(&pipe_trace);

  runtime::Engine fast(env, fast_config);
  std::vector<qtaccel::SampleTrace> fast_trace;
  fast.set_trace(&fast_trace);

  // Two chunks so per-call drain accounting is covered here too.
  for (const std::uint64_t n : {iterations / 3, iterations - iterations / 3}) {
    pipeline.run_iterations(n);
    fast.run_iterations(n);
  }

  const std::string tag = algo_label(algorithm);
  bool traces_equal = pipe_trace.size() == fast_trace.size();
  std::uint64_t first_divergence = 0;
  if (traces_equal) {
    for (std::size_t i = 0; i < pipe_trace.size(); ++i) {
      if (!(pipe_trace[i] == fast_trace[i])) {
        traces_equal = false;
        first_divergence = i;
        break;
      }
    }
  }
  check_exact(traces_equal, tag + ": trace divergence at iteration " +
                                std::to_string(first_divergence));

  bool tables_equal = true;
  for (StateId s = 0; s < env.num_states() && tables_equal; ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      if (pipeline.q_raw(s, a) != fast.q_raw(s, a)) {
        tables_equal = false;
        break;
      }
    }
    if (pipeline.qmax_entry(s).value != fast.qmax_entry(s).value) {
      tables_equal = false;
    }
  }
  check_exact(tables_equal, tag + ": final Q/Qmax table mismatch");

  const auto& ps = pipeline.stats();
  const auto& fs = fast.stats();
  const bool stats_equal =
      ps.iterations == fs.iterations && ps.samples == fs.samples &&
      ps.episodes == fs.episodes && ps.bubbles == fs.bubbles &&
      ps.cycles == fs.cycles && ps.issued == fs.issued &&
      ps.stall_cycles == fs.stall_cycles && ps.fwd_q_sa == fs.fwd_q_sa &&
      ps.fwd_q_next == fs.fwd_q_next && ps.fwd_qmax == fs.fwd_qmax &&
      ps.adder_saturations == fs.adder_saturations &&
      pipeline.dsp_saturations() == fast.dsp_saturations();
  check_exact(stats_equal, tag + ": reconstructed PipelineStats mismatch");

  json.begin_object()
      .field("algorithm", tag)
      .field("iterations", iterations)
      .field("samples", fs.samples)
      .field("fwd_q_sa", fs.fwd_q_sa)
      .field("fwd_qmax", fs.fwd_qmax)
      .field("traces_equal", traces_equal)
      .field("tables_equal", tables_equal)
      .field("stats_equal", stats_equal)
      .end_object();
}

// The 16 skewed environments: index 0 is the full Table I grid, the other
// 15 are small worlds. Equal per-pipeline sample targets, very unequal
// per-sample cost (the big table misses cache), so the static round-robin
// serializes its bucket 0 behind the big pipeline.
std::vector<std::unique_ptr<env::Environment>> make_skewed_envs() {
  std::vector<std::unique_ptr<env::Environment>> envs;
  envs.push_back(std::make_unique<env::GridWorld>(
      bench::grid_for_states(262144, 8)));
  for (int i = 0; i < 15; ++i) {
    envs.push_back(std::make_unique<env::GridWorld>(
        bench::grid_for_states(1024, 4)));
  }
  return envs;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const std::uint64_t scale = quick ? 10 : 1;
  const std::uint64_t verify_iters =
      static_cast<std::uint64_t>(
          flags.get_int("verify-iters", 150000)) / scale;
  const std::uint64_t cycle_samples =
      static_cast<std::uint64_t>(
          flags.get_int("cycle-samples", 200000)) / scale;
  const std::uint64_t fast_samples =
      static_cast<std::uint64_t>(
          flags.get_int("fast-samples", 4000000)) / scale;
  const std::uint64_t multi_each_cycle =
      static_cast<std::uint64_t>(
          flags.get_int("multi-each-cycle", 20000)) / scale;
  const std::uint64_t multi_each_fast =
      static_cast<std::uint64_t>(
          flags.get_int("multi-each-fast", 400000)) / scale;
  const unsigned skew_threads =
      static_cast<unsigned>(flags.get_int("threads", 4));
  const std::uint64_t lane_samples =
      static_cast<std::uint64_t>(
          flags.get_int("lane-samples", 2000000)) / scale;
  const std::uint64_t lane_states =
      static_cast<std::uint64_t>(flags.get_int("lane-states", 1 << 21));
  const std::string out_path =
      flags.get_string("out", "BENCH_fast_engine.json");
  for (const auto& f : flags.unused()) {
    std::cerr << "unknown flag: --" << f << "\n";
    return 2;
  }

  std::cout << "=== Fast-engine perf smoke (Table I: 262144 states x 8 "
               "actions) ===\n\n";
  env::GridWorld big(bench::grid_for_states(262144, 8));

  bench::JsonWriter json;
  json.begin_object();
  bench::write_bench_meta(json);
  json.field("workload", "grid512x512_a8");
  json.field("quick", quick);

  // --- 1. bit-exactness (the exit-code gate) ---
  std::cout << "[1/4] bit-exactness vs cycle-accurate pipeline ("
            << verify_iters << " iterations per algorithm)\n";
  json.key("bit_exactness").begin_array();
  verify_bit_exact(big, qtaccel::Algorithm::kQLearning, verify_iters, json);
  verify_bit_exact(big, qtaccel::Algorithm::kSarsa, verify_iters, json);
  json.end_array();

  // --- 2. single-pipeline host throughput ---
  std::cout << "[2/4] single-pipeline throughput, cycle vs fast backend\n";
  qtaccel::PipelineConfig config;
  config.seed = 7;
  config.max_episode_length = 4096;
  double cycle_sps = 0.0, fast_sps = 0.0;
  {
    runtime::Engine pipeline(big, config);
    Stopwatch sw;
    pipeline.run_samples(cycle_samples);
    const double secs = sw.seconds();
    cycle_sps = static_cast<double>(pipeline.stats().samples) / secs;
    std::cout << "  cycle-accurate: " << pipeline.stats().samples
              << " samples in " << secs << " s = " << cycle_sps
              << " samples/s\n";
  }
  {
    qtaccel::PipelineConfig fc = config;
    fc.backend = qtaccel::Backend::kFast;
    runtime::Engine fast(big, fc);
    Stopwatch sw;
    fast.run_samples(fast_samples);
    const double secs = sw.seconds();
    fast_sps = static_cast<double>(fast.stats().samples) / secs;
    std::cout << "  fast (turbo):   " << fast.stats().samples
              << " samples in " << secs << " s = " << fast_sps
              << " samples/s\n";
  }
  const double speedup = cycle_sps > 0.0 ? fast_sps / cycle_sps : 0.0;
  const bool target_met = speedup >= 20.0;
  std::cout << "  speedup: " << speedup << "x (target >= 20x: "
            << (target_met ? "MET" : "NOT MET — report-only") << ")\n";
  json.key("single_pipeline")
      .begin_object()
      .field("cycle_samples_per_sec", cycle_sps)
      .field("fast_samples_per_sec", fast_sps)
      .field("speedup", speedup)
      .field("speedup_target", 20.0)
      .field("speedup_target_met", target_met)
      .end_object();

  // --- 3. multi-pipeline: backends + schedules on the skewed fleet ---
  std::cout << "[3/4] 16 skewed pipelines (1 large + 15 small), "
            << skew_threads << " threads\n";
  double multi_cycle_sps = 0.0;
  {
    qtaccel::PipelineConfig mc = config;
    mc.backend = qtaccel::Backend::kCycleAccurate;
    runtime::IndependentPipelines fleet(make_skewed_envs(), mc);
    Stopwatch sw;
    fleet.run_samples_each(multi_each_cycle, skew_threads);
    multi_cycle_sps =
        static_cast<double>(fleet.total_samples()) / sw.seconds();
    std::cout << "  cycle backend (pool):  " << multi_cycle_sps
              << " samples/s\n";
  }
  qtaccel::PipelineConfig mf = config;
  mf.backend = qtaccel::Backend::kFast;
  double static_secs = 0.0, pool_secs = 0.0;
  std::uint64_t pool_steals = 0;
  runtime::IndependentPipelines static_fleet(make_skewed_envs(), mf);
  {
    Stopwatch sw;
    static_fleet.run_samples_each(multi_each_fast, skew_threads,
                                  runtime::Schedule::kStaticRoundRobin);
    static_secs = sw.seconds();
  }
  runtime::IndependentPipelines pool_fleet(make_skewed_envs(), mf);
  {
    Stopwatch sw;
    pool_fleet.run_samples_each(multi_each_fast, skew_threads,
                                runtime::Schedule::kWorkStealing);
    pool_secs = sw.seconds();
    pool_steals = pool_fleet.pool_steals();
  }
  const double multi_fast_sps =
      static_cast<double>(pool_fleet.total_samples()) / pool_secs;
  const double schedule_speedup =
      pool_secs > 0.0 ? static_secs / pool_secs : 0.0;
  std::cout << "  fast backend (static round-robin): " << static_secs
            << " s\n";
  std::cout << "  fast backend (work-stealing pool): " << pool_secs
            << " s = " << multi_fast_sps << " samples/s, " << pool_steals
            << " steals\n";
  std::cout << "  schedule speedup (static/pool): " << schedule_speedup
            << "x (report-only)\n";

  // Exactness gate: scheduling must not change results — every pipeline's
  // final Q table bit-identical across the two schedules.
  bool schedule_deterministic = true;
  for (unsigned p = 0;
       p < pool_fleet.num_pipelines() && schedule_deterministic; ++p) {
    const auto& env = pool_fleet.environment(p);
    for (StateId s = 0; s < env.num_states() && schedule_deterministic;
         ++s) {
      for (ActionId a = 0; a < env.num_actions(); ++a) {
        if (pool_fleet.engine(p).q_raw(s, a) !=
            static_fleet.engine(p).q_raw(s, a)) {
          schedule_deterministic = false;
          break;
        }
      }
    }
  }
  check_exact(schedule_deterministic,
              "work-stealing vs static schedules disagree on Q tables");

  json.key("multi_pipeline")
      .begin_object()
      .field("pipelines", pool_fleet.num_pipelines())
      .field("threads", skew_threads)
      .field("samples_each", multi_each_fast)
      .field("cycle_samples_per_sec", multi_cycle_sps)
      .field("fast_samples_per_sec", multi_fast_sps)
      .field("static_round_robin_secs", static_secs)
      .field("work_stealing_secs", pool_secs)
      .field("schedule_speedup", schedule_speedup)
      .field("pool_steals", pool_steals)
      .field("pool_faster", pool_secs < static_secs)
      .field("schedule_deterministic", schedule_deterministic)
      .end_object();

  // --- 4. lane-batched backend: throughput sweep + bit-exactness ---
  // A random MDP this size defeats both the cache (the Q table alone is
  // ~8x any LLC) and the hardware prefetcher (transitions are random),
  // so per-sample cost is dominated by memory latency — the regime the
  // lane backend's batched miss streams target.
  std::cout << "[4/4] lane-batched backend sweep (random MDP, "
            << lane_states << " states x 4 actions)\n";
  env::RandomMdpConfig rmc;
  rmc.num_states = static_cast<StateId>(lane_states);
  rmc.num_actions = 4;
  rmc.seed = 99;
  env::RandomMdp mdp(rmc);
  qtaccel::PipelineConfig lane_cfg = config;  // seed 7, episode cap 4096
  lane_cfg.backend = qtaccel::Backend::kFast;

  double lane_fast_sps = 0.0;
  {
    runtime::Engine fast(mdp, lane_cfg);
    Stopwatch sw;
    fast.run_samples(lane_samples);
    lane_fast_sps = static_cast<double>(fast.stats().samples) / sw.seconds();
    std::cout << "  fast baseline: " << lane_fast_sps << " samples/s\n";
  }

  json.key("lane_backend")
      .begin_object()
      .field("workload",
             "random_mdp_" + std::to_string(lane_states) + "x4")
      .field("samples_total", lane_samples)
      .field("fast_samples_per_sec", lane_fast_sps);
  json.key("sweep").begin_array();
  bool lanes_exact = true;
  for (const int lanes : {1, 4, 8, 16}) {
    // The shipped coalescing path: per-session kLanes engines migrated
    // into one lane group for the run, states donated back after —
    // exactly what MultiPipeline and qtserved do for a lane fleet.
    std::vector<std::unique_ptr<runtime::Engine>> engines;
    std::vector<runtime::Engine*> members;
    for (int i = 0; i < lanes; ++i) {
      qtaccel::PipelineConfig cfg = lane_cfg;
      cfg.backend = qtaccel::Backend::kLanes;
      cfg.seed = lane_cfg.seed + static_cast<std::uint64_t>(i);
      engines.push_back(std::make_unique<runtime::Engine>(mdp, cfg));
      members.push_back(engines.back().get());
    }
    // Constant total work per sweep point so wall times are comparable.
    const std::uint64_t per_lane =
        lane_samples / static_cast<std::uint64_t>(lanes);
    Stopwatch sw;
    {
      runtime::LaneGroupRunner runner(members);
      runner.run_to_targets(
          std::vector<std::uint64_t>(static_cast<std::size_t>(lanes),
                                     per_lane));
    }
    const double secs = sw.seconds();
    std::uint64_t total = 0;
    for (int i = 0; i < lanes; ++i) {
      total += engines[static_cast<std::size_t>(i)]->stats().samples;
    }
    const double lane_sps = static_cast<double>(total) / secs;
    const double lane_speedup =
        lane_fast_sps > 0.0 ? lane_sps / lane_fast_sps : 0.0;
    std::cout << "  lanes=" << lanes << ": " << lane_sps
              << " samples/s, " << lane_speedup
              << "x vs fast (report-only)\n";
    json.begin_object()
        .field("lanes", static_cast<std::uint64_t>(lanes))
        .field("lane_samples_per_sec", lane_sps)
        .field("lane_speedup_vs_fast", lane_speedup)
        .end_object();

    // Gate (lanes=4 point): every lane bit-identical to a solo
    // FastEngine run with the same seed — stats fingerprint plus a
    // strided Q/Qmax sweep over the whole table.
    if (lanes == 4) {
      for (int i = 0; i < lanes && lanes_exact; ++i) {
        const runtime::Engine& lane =
            *engines[static_cast<std::size_t>(i)];
        qtaccel::PipelineConfig solo_cfg = lane_cfg;
        solo_cfg.seed = lane_cfg.seed + static_cast<std::uint64_t>(i);
        runtime::Engine solo(mdp, solo_cfg);
        solo.run_samples(per_lane);
        const auto& ls = lane.stats();
        const auto& ss = solo.stats();
        lanes_exact =
            ls.samples == ss.samples && ls.episodes == ss.episodes &&
            ls.cycles == ss.cycles && ls.issued == ss.issued &&
            ls.fwd_q_sa == ss.fwd_q_sa && ls.fwd_q_next == ss.fwd_q_next &&
            ls.fwd_qmax == ss.fwd_qmax &&
            ls.adder_saturations == ss.adder_saturations;
        for (StateId s = 0; s < mdp.num_states() && lanes_exact; s += 97) {
          for (ActionId a = 0; a < mdp.num_actions(); ++a) {
            if (lane.q_raw(s, a) != solo.q_raw(s, a)) {
              lanes_exact = false;
              break;
            }
          }
          if (lanes_exact &&
              lane.qmax_entry(s).value != solo.qmax_entry(s).value) {
            lanes_exact = false;
          }
        }
      }
      check_exact(lanes_exact,
                  "lane backend diverges from solo fast engines");
      std::cout << "  lanes=4 vs solo fast engines: "
                << (lanes_exact ? "bit-exact" : "DIVERGED") << "\n";
    }
  }
  json.end_array();
  json.field("bit_exact_vs_fast", lanes_exact);
  json.end_object();

  json.field("divergences", static_cast<std::uint64_t>(
                                g_divergences.size()));
  json.end_object();
  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 2;
  }
  std::cout << "\nwrote " << out_path << "\n";

  if (!g_divergences.empty()) {
    std::cout << "\nBIT-EXACTNESS: DIVERGED (" << g_divergences.size()
              << " failure(s))\n";
    return 1;
  }
  std::cout << "\nBIT-EXACTNESS: REPRODUCED (timing is report-only)\n";
  return 0;
}

// Figure 3 — resource utilization for the Q-Learning accelerator across
// the Table I state sizes at |A| = 8 on the xcvu13p.
//
// Paper's reported behaviour: DSP usage constant at 4 multipliers for
// every state size; logic/register utilization stays below 0.1% even at
// |S|*|A| > 2 million; power grows with the BRAM footprint. Absolute
// FF/power values are not legible in the available scan, so this table
// records the model values and checks the *claims* (constants and
// bounds) rather than point values.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "device/resource_report.h"
#include "qtaccel/resources.h"

using namespace qta;

int main() {
  std::cout << "=== Figure 3: Q-Learning resource utilization (|A| = 8, "
               "xcvu13p) ===\n"
            << "Paper claims: DSP constant at 4; register utilization "
               "< 0.1% up to |S|*|A| = 2M; power grows with BRAM.\n\n";

  const device::Device dev = bench::eval_device();
  qtaccel::PipelineConfig config;  // Q-Learning defaults

  TablePrinter table({"|S|", "DSP", "DSP(paper)", "FF", "FF util %",
                      "LUT", "power mW"});
  bool claims_hold = true;
  double prev_power = 0.0;
  for (const std::uint64_t states : bench::table1_states()) {
    env::GridWorld world(bench::grid_for_states(states, 8));
    const auto ledger = qtaccel::build_resources(world, config);
    const auto report = device::make_report(dev, ledger);

    table.add_row({bench::states_label(states), std::to_string(report.dsp),
                   "4", std::to_string(report.flip_flops),
                   format_double(report.ff_util_pct, 4),
                   std::to_string(report.luts),
                   format_double(report.power.total_mw(), 1)});

    claims_hold &= report.dsp == 4;
    claims_hold &= report.ff_util_pct < 0.1;
    claims_hold &= report.power.total_mw() >= prev_power;
    prev_power = report.power.total_mw();
  }
  table.print(std::cout);
  std::cout << "\nClaims (DSP == 4, FF < 0.1%, power monotone): "
            << (claims_hold ? "REPRODUCED" : "VIOLATED") << "\n";
  return claims_hold ? 0 : 1;
}

// Figure 6 — throughput (million samples/second) vs state size for
// Q-Learning and SARSA at |A| = 8.
//
// Two factors multiply:
//   * samples per cycle, measured by the cycle-accurate pipeline
//     simulation (the paper's claim: one sample every clock cycle after
//     fill, i.e. ~1.0);
//   * the achievable clock, from the BRAM-pressure frequency model
//     calibrated against Table II (189 MHz small, ~153-156 MHz at
//     |S| = 262144).
//
// Paper reference points (|A| = 8, from Table II): 189, 186, 179, 153
// MS/s at |S| = 64, 1024, 16384, 262144; Figure 6 reports ~180 MS/s
// sustained with decline only past ~100k states.
#include <cmath>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/table_printer.h"
#include "device/frequency_model.h"
#include "runtime/engine.h"
#include "qtaccel/resources.h"

using namespace qta;

namespace {
double measure_samples_per_cycle(const env::Environment& world,
                                 qtaccel::PipelineConfig config,
                                 std::uint64_t iterations) {
  runtime::Engine pipeline(world, config);
  pipeline.run_iterations(iterations);
  return pipeline.stats().samples_per_cycle();
}
}  // namespace

int main() {
  std::cout << "=== Figure 6: throughput vs |S| (|A| = 8, xcvu13p) ===\n\n";

  const device::Device dev = bench::eval_device();
  const std::map<std::uint64_t, double> paper_ql = {
      {64, 189.0}, {1024, 186.0}, {16384, 179.0}, {262144, 153.0}};

  TablePrinter table({"|S|", "algo", "samples/cycle", "clock MHz",
                      "model MS/s", "paper MS/s"});
  bool ok = true;
  for (const std::uint64_t states : bench::table1_states()) {
    env::GridWorld world(bench::grid_for_states(states, 8));
    // Keep the cycle count proportional but bounded so the whole sweep
    // stays fast; steady-state rate converges within ~10k cycles.
    const std::uint64_t iters = states <= 4096 ? 60000 : 120000;

    for (const auto algo :
         {qtaccel::Algorithm::kQLearning, qtaccel::Algorithm::kSarsa}) {
      qtaccel::PipelineConfig config;
      config.algorithm = algo;
      config.max_episode_length = 4096;
      config.seed = 7;
      const double spc = measure_samples_per_cycle(world, config, iters);

      const auto ledger = qtaccel::build_resources(world, config);
      const double mhz = device::estimated_clock_mhz(dev, ledger);
      const double msps = device::throughput_sps(mhz, spc) / 1e6;

      const bool is_ql = algo == qtaccel::Algorithm::kQLearning;
      std::string paper = "-";
      if (is_ql && paper_ql.count(states)) {
        paper = format_double(paper_ql.at(states), 0);
        ok &= std::abs(msps - paper_ql.at(states)) / paper_ql.at(states) <
              0.08;
      }
      ok &= spc > 0.97;  // one sample per cycle, modulo fill and bubbles
      table.add_row({bench::states_label(states), is_ql ? "QL" : "SARSA",
                     format_double(spc, 4), format_double(mhz, 1),
                     format_double(msps, 1), paper});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check (>= 0.97 samples/cycle everywhere; paper "
               "points within 8%): "
            << (ok ? "REPRODUCED" : "DIVERGED") << "\n";
  return ok ? 0 : 1;
}

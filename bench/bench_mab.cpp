// Section VII-B — Multi-Armed Bandits on QTAccel.
//
// The paper proposes (no numbers given — this table provides the
// reference realization): a stateless bandit maps to a 1-state, M-action
// Q table; rewards come from the CLT-of-LFSR normal sampler; policies are
// epsilon-greedy (full pipeline rate) or probability-table/EXP3 selection
// via binary search, costing 1 + ceil(log2 M) cycles per sample.
//
// Reported here: cumulative regret (vs UCB1 and uniform play as software
// references) and modeled throughput at the device clock.
#include <iostream>

#include "algo/mab_algorithms.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "device/frequency_model.h"
#include "device/resource_report.h"
#include "qtaccel/mab_accelerator.h"

using namespace qta;

int main() {
  std::cout << "=== Section VII-B: MAB on QTAccel (5 arms, means evenly "
               "spaced in [0,1], sigma = 0.2, 50k pulls) ===\n\n";

  constexpr unsigned kArms = 5;
  constexpr std::uint64_t kPulls = 50000;
  bool ok = true;

  TablePrinter table({"policy", "regret", "regret/pull", "samples/cycle",
                      "MS/s @ clock", "best-arm pulls %"});

  const auto dev = bench::eval_device();
  double eps_regret = 0.0, exp3_regret = 0.0;

  // --- hardware epsilon-greedy ---
  {
    auto bandit = env::MultiArmedBandit::evenly_spaced(kArms, 0.2, 21);
    qtaccel::MabConfig c;
    c.policy = qtaccel::MabConfig::Policy::kEpsilonGreedy;
    c.epsilon = 0.1;
    c.alpha = 0.05;
    c.seed = 21;
    qtaccel::MabAccelerator acc(bandit, c);
    acc.run(kPulls);
    const double mhz = device::estimated_clock_mhz(
        dev, device::bram18_tiles_for(acc.resources()));
    const double msps =
        device::throughput_sps(mhz, acc.stats().samples_per_cycle()) / 1e6;
    eps_regret = acc.cumulative_regret();
    table.add_row(
        {"QTAccel eps-greedy", format_double(eps_regret, 0),
         format_double(eps_regret / kPulls, 4),
         format_double(acc.stats().samples_per_cycle(), 3),
         format_double(msps, 1),
         format_double(100.0 * static_cast<double>(
                                   acc.pull_counts()[kArms - 1]) /
                           kPulls,
                       1)});
    ok &= acc.stats().samples_per_cycle() == 1.0;
    ok &= msps > 150.0;  // full pipeline rate at device clock
  }

  // --- hardware EXP3 (probability table + binary search + exp LUT) ---
  {
    auto bandit = env::MultiArmedBandit::evenly_spaced(kArms, 0.2, 22);
    qtaccel::MabConfig c;
    c.policy = qtaccel::MabConfig::Policy::kExp3;
    c.exp3_gamma = 0.07;
    c.reward_lo = -0.6;
    c.reward_hi = 1.6;
    c.seed = 22;
    qtaccel::MabAccelerator acc(bandit, c);
    acc.run(kPulls);
    const double mhz = device::estimated_clock_mhz(
        dev, device::bram18_tiles_for(acc.resources()));
    const double msps =
        device::throughput_sps(mhz, acc.stats().samples_per_cycle()) / 1e6;
    exp3_regret = acc.cumulative_regret();
    table.add_row(
        {"QTAccel EXP3 (LUT exp)", format_double(exp3_regret, 0),
         format_double(exp3_regret / kPulls, 4),
         format_double(acc.stats().samples_per_cycle(), 3),
         format_double(msps, 1),
         format_double(100.0 * static_cast<double>(
                                   acc.pull_counts()[kArms - 1]) /
                           kPulls,
                       1)});
    // 5 arms: 1 + ceil(log2 5) = 4 cycles/sample.
    ok &= acc.stats().samples_per_cycle() == 0.25;
  }

  // --- hardware UCB1 (fixed-point log/sqrt/divide units) ---
  {
    auto bandit = env::MultiArmedBandit::evenly_spaced(kArms, 0.2, 25);
    qtaccel::MabConfig c;
    c.policy = qtaccel::MabConfig::Policy::kUcb1;
    c.seed = 25;
    qtaccel::MabAccelerator acc(bandit, c);
    acc.run(kPulls);
    const double mhz = device::estimated_clock_mhz(
        dev, device::bram18_tiles_for(acc.resources()));
    const double msps =
        device::throughput_sps(mhz, acc.stats().samples_per_cycle()) / 1e6;
    table.add_row(
        {"QTAccel UCB1 (LUT math)",
         format_double(acc.cumulative_regret(), 0),
         format_double(acc.cumulative_regret() / kPulls, 4),
         format_double(acc.stats().samples_per_cycle(), 3),
         format_double(msps, 1),
         format_double(100.0 * static_cast<double>(
                                   acc.pull_counts()[kArms - 1]) /
                           kPulls,
                       1)});
    ok &= acc.cumulative_regret() < eps_regret * 2.0;
  }

  // --- software references ---
  {
    auto bandit = env::MultiArmedBandit::evenly_spaced(kArms, 0.2, 23);
    algo::Ucb1 ucb(kArms);
    policy::XoshiroSource rng(23);
    algo::run_bandit(ucb, bandit, kPulls, rng);
    table.add_row({"UCB1 (software ref)",
                   format_double(bandit.cumulative_regret(), 0),
                   format_double(bandit.cumulative_regret() / kPulls, 4),
                   "-", "-", "-"});
  }
  {
    // Uniform play: the no-learning floor.
    auto bandit = env::MultiArmedBandit::evenly_spaced(kArms, 0.2, 24);
    rng::Xoshiro256 rng(24);
    for (std::uint64_t t = 0; t < kPulls; ++t) {
      bandit.pull(static_cast<unsigned>(rng.below(kArms)));
    }
    table.add_row({"uniform play",
                   format_double(bandit.cumulative_regret(), 0),
                   format_double(bandit.cumulative_regret() / kPulls, 4),
                   "-", "-", "-"});
    ok &= eps_regret < bandit.cumulative_regret() / 3.0;
    ok &= exp3_regret < bandit.cumulative_regret();
  }

  table.print(std::cout);
  std::cout << "\nClaims (eps-greedy at 1 sample/cycle; EXP3 pays "
               "1+log2(M) cycles; both beat uniform play): "
            << (ok ? "REPRODUCED" : "DIVERGED") << "\n";
  return ok ? 0 : 1;
}

// Serving-layer sweep: sessions x workers over the loopback transport,
// writing BENCH_serve.json (schema provenance via write_bench_meta).
//
// Exit code gates ONLY correctness, never throughput:
//   1. Bit-exactness through the serving stack: after every sweep cell,
//      sampled sessions' Snapshot text must byte-equal a standalone
//      engine replayed with the identical Step partitioning — LRU
//      evictions, restores, and cross-session batching included.
//   2. Admission-control semantics: posting more requests than
//      max_queue before any pump yields exactly (posted - max_queue)
//      kOverloaded replies, and every admitted request completes.
// Throughput (samples/sec per cell) is report-only: this host is a
// shared CI box and the serving layer's scheduling is the subject under
// test, not the machine. Each cell also reports p50/p95/p99 per request
// phase (queue wait, restore, execute, reply, plus checkpoint — park
// serialization, observed once per eviction), read straight from the
// server's qtserve_phase_us histograms — log2-bucket upper bounds, so
// they are coarse but comparable across runs — and the park/restore
// byte totals split by snapshot format (v2/v3) and kind (full/delta).
// A final park_formats section runs the same forced-eviction churn
// under v2 full-text parking and v3 full+delta parking and compares
// the bytes written per format; the two runs' final snapshots must be
// byte-identical (the park format is bit-invisible), and that equality
// IS exit-code gated.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/table_printer.h"
#include "env/grid_world.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"
#include "serve/protocol.h"
#include "serve/transport.h"
#include "telemetry/metrics.h"

using namespace qta;

namespace {

constexpr unsigned kMaxHot = 8;
constexpr std::size_t kRounds = 4;
constexpr std::uint64_t kSteps = 256;

serve::SessionSpec spec_for(std::size_t index) {
  serve::SessionSpec spec;
  spec.width = 8;
  spec.height = 8;
  spec.actions = 4;
  spec.seed = 1 + index;
  spec.max_episode_length = 256;
  return spec;
}

std::string standalone_snapshot(const serve::SessionSpec& spec) {
  env::GridWorldConfig gc;
  gc.width = spec.width;
  gc.height = spec.height;
  gc.num_actions = spec.actions;
  env::GridWorld world(gc);
  runtime::Engine replay(world, serve::make_config(spec));
  for (std::size_t round = 0; round < kRounds; ++round) {
    replay.run_samples(replay.stats().samples + kSteps);
  }
  std::ostringstream os;
  runtime::save_snapshot(replay, os);
  return std::move(os).str();
}

constexpr const char* kPhases[] = {"queue_wait", "restore", "execute",
                                   "reply", "checkpoint"};
constexpr std::size_t kPhaseCount = 5;

struct PhaseStats {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;  // log2-bucket upper bounds, microseconds
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
};

// Park/restore byte totals, one slot per registered counter series
// (qtserve_park_bytes_total / qtserve_restore_bytes_total).
struct FormatBytes {
  std::uint64_t v2_full = 0;
  std::uint64_t v3_full = 0;
  std::uint64_t v3_delta = 0;
  std::uint64_t total() const { return v2_full + v3_full + v3_delta; }
};

FormatBytes read_format_bytes(telemetry::MetricsRegistry& metrics,
                              const std::string& name) {
  FormatBytes out;
  out.v2_full =
      metrics.counter(name, {{"format", "v2"}, {"kind", "full"}}).value();
  out.v3_full =
      metrics.counter(name, {{"format", "v3"}, {"kind", "full"}}).value();
  out.v3_delta =
      metrics.counter(name, {{"format", "v3"}, {"kind", "delta"}}).value();
  return out;
}

void write_format_bytes(bench::JsonWriter& json, const char* key,
                        const FormatBytes& bytes) {
  json.key(key);
  json.begin_object();
  json.field("v2_full", bytes.v2_full);
  json.field("v3_full", bytes.v3_full);
  json.field("v3_delta", bytes.v3_delta);
  json.end_object();
}

struct Cell {
  std::size_t sessions;
  unsigned workers;
  std::uint64_t total_samples = 0;
  std::uint64_t wall_us = 0;
  std::uint64_t lru_evictions = 0;
  std::uint64_t restores = 0;
  FormatBytes park_bytes;
  FormatBytes restore_bytes;
  PhaseStats phases[kPhaseCount];
  bool verified = false;
};

bool run_cell(std::size_t sessions, unsigned workers, Cell* out) {
  serve::ServerOptions options;
  options.max_hot = kMaxHot;
  options.workers = workers;
  options.max_queue = sessions;  // one in-flight Step per session fits
  serve::LoopbackTransport transport(options);

  std::vector<serve::SessionId> ids(sessions);
  std::vector<serve::SessionSpec> specs(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    specs[i] = spec_for(i);
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec = specs[i];
    const serve::Response resp = transport.call(req);
    if (resp.status != serve::Status::kOk) {
      std::cerr << "create failed: " << resp.error << "\n";
      return false;
    }
    ids[i] = resp.session;
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t total_samples = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Post the whole round before waiting: the queue holds one Step per
    // session, so every pump batches kMaxHot sessions across workers.
    std::vector<serve::Ticket> tickets(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      serve::Request req;
      req.type = serve::RequestType::kStep;
      req.session = ids[i];
      req.steps = kSteps;
      tickets[i] = transport.post(req);
    }
    for (std::size_t i = 0; i < sessions; ++i) {
      const serve::Response resp = transport.wait(tickets[i]);
      if (resp.status != serve::Status::kOk) {
        std::cerr << "step failed: " << resp.error << "\n";
        return false;
      }
      if (round + 1 == kRounds) total_samples += resp.samples;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Correctness gate: first, middle, and last session must byte-match a
  // standalone replay.
  for (const std::size_t i :
       {std::size_t{0}, sessions / 2, sessions - 1}) {
    serve::Request req;
    req.type = serve::RequestType::kSnapshot;
    req.session = ids[i];
    const serve::Response resp = transport.call(req);
    if (resp.status != serve::Status::kOk ||
        resp.snapshot != standalone_snapshot(specs[i])) {
      std::cerr << "cell " << sessions << "x" << workers << ": session "
                << ids[i] << " diverged from standalone replay\n";
      return false;
    }
  }

  out->sessions = sessions;
  out->workers = workers;
  out->total_samples = total_samples;
  out->wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
          .count());
  out->lru_evictions = transport.server().sessions().lru_evictions();
  out->restores = transport.server().sessions().restores();
  // Per-phase latency from the server's own histograms (finish()
  // populates them on the control thread, so the totals are settled once
  // every wait() returned).
  telemetry::MetricsRegistry& metrics = transport.server().metrics();
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const telemetry::Histogram& h =
        metrics.histogram("qtserve_phase_us", {{"phase", kPhases[p]}});
    out->phases[p].count = h.count();
    out->phases[p].p50 = telemetry::histogram_percentile_upper_bound(h, 0.50);
    out->phases[p].p95 = telemetry::histogram_percentile_upper_bound(h, 0.95);
    out->phases[p].p99 = telemetry::histogram_percentile_upper_bound(h, 0.99);
  }
  out->park_bytes = read_format_bytes(metrics, "qtserve_park_bytes_total");
  out->restore_bytes =
      read_format_bytes(metrics, "qtserve_restore_bytes_total");
  out->verified = true;
  return true;
}

// --- park-format comparison -------------------------------------------
//
// Two sessions ping-pong through one hot slot, so every Step evicts the
// other session: a worst-case churn workload where the park format's
// byte cost dominates. Run once per format over the identical request
// sequence; report the park/restore byte totals and gate on the final
// snapshots of the two runs being byte-identical.

constexpr std::size_t kChurnRounds = 12;
constexpr std::uint64_t kChurnSteps = 128;

// A 32x32 world (1024 states) makes the comparison meaningful: each
// 128-step epoch dirties a small fraction of the rows, so the dirty-row
// delta's advantage over any full image (text or binary) is visible. On
// a world small enough that every epoch touches most rows, deltas
// degenerate to full images plus per-row framing and the comparison
// would only measure integer-formatting noise.
serve::SessionSpec churn_spec(std::size_t index) {
  serve::SessionSpec spec = spec_for(index);
  spec.width = 32;
  spec.height = 32;
  return spec;
}

struct ParkFormatResult {
  FormatBytes park_bytes;
  FormatBytes restore_bytes;
  std::uint64_t evictions = 0;
  std::uint64_t restores = 0;
  std::string snapshots[2];
};

bool run_park_churn(serve::ParkFormat format, ParkFormatResult* out) {
  serve::ServerOptions options;
  options.max_hot = 1;
  options.workers = 2;
  options.max_queue = 4;
  options.park_format = format;
  serve::LoopbackTransport transport(options);

  serve::SessionId ids[2];
  for (std::size_t i = 0; i < 2; ++i) {
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec = churn_spec(i);
    const serve::Response resp = transport.call(req);
    if (resp.status != serve::Status::kOk) {
      std::cerr << "park churn create failed: " << resp.error << "\n";
      return false;
    }
    ids[i] = resp.session;
  }

  for (std::size_t round = 0; round < kChurnRounds; ++round) {
    for (std::size_t i = 0; i < 2; ++i) {
      serve::Request req;
      req.type = serve::RequestType::kStep;
      req.session = ids[i];
      req.steps = kChurnSteps;
      const serve::Response resp = transport.call(req);
      if (resp.status != serve::Status::kOk) {
        std::cerr << "park churn step failed: " << resp.error << "\n";
        return false;
      }
    }
  }

  for (std::size_t i = 0; i < 2; ++i) {
    serve::Request req;
    req.type = serve::RequestType::kSnapshot;
    req.session = ids[i];
    const serve::Response resp = transport.call(req);
    if (resp.status != serve::Status::kOk) {
      std::cerr << "park churn snapshot failed: " << resp.error << "\n";
      return false;
    }
    out->snapshots[i] = resp.snapshot;
  }

  telemetry::MetricsRegistry& metrics = transport.server().metrics();
  out->park_bytes = read_format_bytes(metrics, "qtserve_park_bytes_total");
  out->restore_bytes =
      read_format_bytes(metrics, "qtserve_restore_bytes_total");
  out->evictions = transport.server().sessions().lru_evictions();
  out->restores = transport.server().sessions().restores();
  return true;
}

void write_park_format_result(bench::JsonWriter& json, const char* key,
                              const ParkFormatResult& result) {
  json.key(key);
  json.begin_object();
  write_format_bytes(json, "park_bytes", result.park_bytes);
  write_format_bytes(json, "restore_bytes", result.restore_bytes);
  json.field("lru_evictions", result.evictions);
  json.field("restores", result.restores);
  json.end_object();
}

bool check_overload_semantics() {
  serve::ServerOptions options;
  options.max_hot = 4;
  options.workers = 2;
  options.max_queue = 8;
  serve::LoopbackTransport transport(options);

  constexpr std::size_t kSessions = 16;
  std::vector<serve::SessionId> ids(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec = spec_for(i);
    ids[i] = transport.call(req).session;
  }

  // 16 posts against a bound of 8, no pump in between: admission is
  // decided at submit time, so exactly 8 must be refused.
  std::vector<serve::Ticket> tickets(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    serve::Request req;
    req.type = serve::RequestType::kStep;
    req.session = ids[i];
    req.steps = 64;
    tickets[i] = transport.post(req);
  }
  std::size_t ok = 0, overloaded = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const serve::Response resp = transport.wait(tickets[i]);
    if (resp.status == serve::Status::kOk) ++ok;
    if (resp.status == serve::Status::kOverloaded) ++overloaded;
  }
  if (ok != options.max_queue || overloaded != kSessions - options.max_queue) {
    std::cerr << "overload gate: expected " << options.max_queue << " ok / "
              << (kSessions - options.max_queue) << " overloaded, got "
              << ok << " / " << overloaded << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const std::size_t session_counts[] = {4, 16, 64};
  const unsigned worker_counts[] = {1, 2, 4};

  std::vector<Cell> cells;
  for (const std::size_t sessions : session_counts) {
    for (const unsigned workers : worker_counts) {
      Cell cell;
      if (!run_cell(sessions, workers, &cell)) return 1;
      const double rate =
          cell.wall_us == 0
              ? 0.0
              : static_cast<double>(cell.total_samples) * 1e6 /
                    static_cast<double>(cell.wall_us);
      std::cout << "sessions=" << sessions << " workers=" << workers
                << " hot=" << kMaxHot << ": " << cell.total_samples
                << " samples in " << cell.wall_us << " us ("
                << format_double(rate, 0) << " samples/s, "
                << cell.lru_evictions << " evictions, " << cell.restores
                << " restores) [bit-exact]\n";
      std::cout << "  phase p50/p95/p99 us:";
      for (std::size_t p = 0; p < kPhaseCount; ++p) {
        std::cout << " " << kPhases[p] << "<=" << cell.phases[p].p50 << "/"
                  << cell.phases[p].p95 << "/" << cell.phases[p].p99 << "(n="
                  << cell.phases[p].count << ")";
      }
      std::cout << "\n";
      std::cout << "  park bytes v2_full/v3_full/v3_delta: "
                << cell.park_bytes.v2_full << "/" << cell.park_bytes.v3_full
                << "/" << cell.park_bytes.v3_delta
                << "  restore bytes: " << cell.restore_bytes.v2_full << "/"
                << cell.restore_bytes.v3_full << "/"
                << cell.restore_bytes.v3_delta << "\n";
      cells.push_back(cell);
    }
  }
  if (!check_overload_semantics()) return 1;
  std::cout << "overload gate: 16 posts vs bound 8 -> 8 ok + 8 refused\n";

  // Park-format comparison (report-only bytes; bit-exactness gated).
  ParkFormatResult v2_result, v3_result;
  if (!run_park_churn(serve::ParkFormat::kV2Text, &v2_result)) return 1;
  if (!run_park_churn(serve::ParkFormat::kV3Binary, &v3_result)) return 1;
  for (std::size_t i = 0; i < 2; ++i) {
    if (v2_result.snapshots[i] != v3_result.snapshots[i]) {
      std::cerr << "park format gate: session " << i
                << " snapshot differs between v2 and v3 parking\n";
      return 1;
    }
  }
  std::cout << "park formats (2 sessions x 1 hot slot, " << kChurnRounds
            << " rounds x " << kChurnSteps << " steps, bit-exact):\n"
            << "  v2 full-text parks: " << v2_result.park_bytes.v2_full
            << " bytes over " << v2_result.evictions << " evictions\n"
            << "  v3 full+delta parks: " << v3_result.park_bytes.v3_full
            << " full + " << v3_result.park_bytes.v3_delta
            << " delta bytes over " << v3_result.evictions << " evictions\n";

  bench::JsonWriter json;
  json.begin_object();
  bench::write_bench_meta(json);
  json.field("bench", "serve");
  json.field("max_hot", static_cast<std::uint64_t>(kMaxHot));
  json.field("rounds", static_cast<std::uint64_t>(kRounds));
  json.field("steps_per_round", kSteps);
  json.key("cells");
  json.begin_array();
  for (const Cell& cell : cells) {
    json.begin_object();
    json.field("sessions", static_cast<std::uint64_t>(cell.sessions));
    json.field("workers", static_cast<std::uint64_t>(cell.workers));
    json.field("total_samples", cell.total_samples);
    json.field("wall_us", cell.wall_us);
    json.field("samples_per_sec",
               cell.wall_us == 0
                   ? 0.0
                   : static_cast<double>(cell.total_samples) * 1e6 /
                         static_cast<double>(cell.wall_us));
    json.field("lru_evictions", cell.lru_evictions);
    json.field("restores", cell.restores);
    write_format_bytes(json, "park_bytes", cell.park_bytes);
    write_format_bytes(json, "restore_bytes", cell.restore_bytes);
    json.key("phases");
    json.begin_object();
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      json.key(kPhases[p]);
      json.begin_object();
      json.field("count", cell.phases[p].count);
      json.field("p50_us", cell.phases[p].p50);
      json.field("p95_us", cell.phases[p].p95);
      json.field("p99_us", cell.phases[p].p99);
      json.end_object();
    }
    json.end_object();
    json.field("bit_exact", cell.verified);
    json.end_object();
  }
  json.end_array();
  json.key("park_formats");
  json.begin_object();
  json.key("workload");
  json.begin_object();
  json.field("sessions", std::uint64_t{2});
  json.field("max_hot", std::uint64_t{1});
  json.field("rounds", static_cast<std::uint64_t>(kChurnRounds));
  json.field("steps_per_round", kChurnSteps);
  json.end_object();
  write_park_format_result(json, "v2", v2_result);
  write_park_format_result(json, "v3", v3_result);
  json.field("bit_exact_across_formats", true);
  json.end_object();
  json.end_object();
  if (!json.write_file("BENCH_serve.json")) {
    std::cerr << "failed to write BENCH_serve.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_serve.json\n";
  return 0;
}

// Serving-layer sweep: sessions x workers over the loopback transport,
// writing BENCH_serve.json (schema provenance via write_bench_meta).
//
// Exit code gates ONLY correctness, never throughput:
//   1. Bit-exactness through the serving stack: after every sweep cell,
//      sampled sessions' Snapshot text must byte-equal a standalone
//      engine replayed with the identical Step partitioning — LRU
//      evictions, restores, and cross-session batching included.
//   2. Admission-control semantics: posting more requests than
//      max_queue before any pump yields exactly (posted - max_queue)
//      kOverloaded replies, and every admitted request completes.
// Throughput (samples/sec per cell) is report-only: this host is a
// shared CI box and the serving layer's scheduling is the subject under
// test, not the machine. Each cell also reports p50/p95/p99 per request
// phase (queue wait, restore, execute, reply), read straight from the
// server's qtserve_phase_us histograms — log2-bucket upper bounds, so
// they are coarse but comparable across runs.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/table_printer.h"
#include "env/grid_world.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"
#include "serve/protocol.h"
#include "serve/transport.h"
#include "telemetry/metrics.h"

using namespace qta;

namespace {

constexpr unsigned kMaxHot = 8;
constexpr std::size_t kRounds = 4;
constexpr std::uint64_t kSteps = 256;

serve::SessionSpec spec_for(std::size_t index) {
  serve::SessionSpec spec;
  spec.width = 8;
  spec.height = 8;
  spec.actions = 4;
  spec.seed = 1 + index;
  spec.max_episode_length = 256;
  return spec;
}

std::string standalone_snapshot(const serve::SessionSpec& spec) {
  env::GridWorldConfig gc;
  gc.width = spec.width;
  gc.height = spec.height;
  gc.num_actions = spec.actions;
  env::GridWorld world(gc);
  runtime::Engine replay(world, serve::make_config(spec));
  for (std::size_t round = 0; round < kRounds; ++round) {
    replay.run_samples(replay.stats().samples + kSteps);
  }
  std::ostringstream os;
  runtime::save_snapshot(replay, os);
  return std::move(os).str();
}

constexpr const char* kPhases[] = {"queue_wait", "restore", "execute",
                                   "reply"};
constexpr std::size_t kPhaseCount = 4;

struct PhaseStats {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;  // log2-bucket upper bounds, microseconds
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
};

struct Cell {
  std::size_t sessions;
  unsigned workers;
  std::uint64_t total_samples = 0;
  std::uint64_t wall_us = 0;
  std::uint64_t lru_evictions = 0;
  std::uint64_t restores = 0;
  PhaseStats phases[kPhaseCount];
  bool verified = false;
};

bool run_cell(std::size_t sessions, unsigned workers, Cell* out) {
  serve::ServerOptions options;
  options.max_hot = kMaxHot;
  options.workers = workers;
  options.max_queue = sessions;  // one in-flight Step per session fits
  serve::LoopbackTransport transport(options);

  std::vector<serve::SessionId> ids(sessions);
  std::vector<serve::SessionSpec> specs(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    specs[i] = spec_for(i);
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec = specs[i];
    const serve::Response resp = transport.call(req);
    if (resp.status != serve::Status::kOk) {
      std::cerr << "create failed: " << resp.error << "\n";
      return false;
    }
    ids[i] = resp.session;
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t total_samples = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Post the whole round before waiting: the queue holds one Step per
    // session, so every pump batches kMaxHot sessions across workers.
    std::vector<serve::Ticket> tickets(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      serve::Request req;
      req.type = serve::RequestType::kStep;
      req.session = ids[i];
      req.steps = kSteps;
      tickets[i] = transport.post(req);
    }
    for (std::size_t i = 0; i < sessions; ++i) {
      const serve::Response resp = transport.wait(tickets[i]);
      if (resp.status != serve::Status::kOk) {
        std::cerr << "step failed: " << resp.error << "\n";
        return false;
      }
      if (round + 1 == kRounds) total_samples += resp.samples;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Correctness gate: first, middle, and last session must byte-match a
  // standalone replay.
  for (const std::size_t i :
       {std::size_t{0}, sessions / 2, sessions - 1}) {
    serve::Request req;
    req.type = serve::RequestType::kSnapshot;
    req.session = ids[i];
    const serve::Response resp = transport.call(req);
    if (resp.status != serve::Status::kOk ||
        resp.snapshot != standalone_snapshot(specs[i])) {
      std::cerr << "cell " << sessions << "x" << workers << ": session "
                << ids[i] << " diverged from standalone replay\n";
      return false;
    }
  }

  out->sessions = sessions;
  out->workers = workers;
  out->total_samples = total_samples;
  out->wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
          .count());
  out->lru_evictions = transport.server().sessions().lru_evictions();
  out->restores = transport.server().sessions().restores();
  // Per-phase latency from the server's own histograms (finish()
  // populates them on the control thread, so the totals are settled once
  // every wait() returned).
  telemetry::MetricsRegistry& metrics = transport.server().metrics();
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const telemetry::Histogram& h =
        metrics.histogram("qtserve_phase_us", {{"phase", kPhases[p]}});
    out->phases[p].count = h.count();
    out->phases[p].p50 = telemetry::histogram_percentile_upper_bound(h, 0.50);
    out->phases[p].p95 = telemetry::histogram_percentile_upper_bound(h, 0.95);
    out->phases[p].p99 = telemetry::histogram_percentile_upper_bound(h, 0.99);
  }
  out->verified = true;
  return true;
}

bool check_overload_semantics() {
  serve::ServerOptions options;
  options.max_hot = 4;
  options.workers = 2;
  options.max_queue = 8;
  serve::LoopbackTransport transport(options);

  constexpr std::size_t kSessions = 16;
  std::vector<serve::SessionId> ids(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec = spec_for(i);
    ids[i] = transport.call(req).session;
  }

  // 16 posts against a bound of 8, no pump in between: admission is
  // decided at submit time, so exactly 8 must be refused.
  std::vector<serve::Ticket> tickets(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    serve::Request req;
    req.type = serve::RequestType::kStep;
    req.session = ids[i];
    req.steps = 64;
    tickets[i] = transport.post(req);
  }
  std::size_t ok = 0, overloaded = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const serve::Response resp = transport.wait(tickets[i]);
    if (resp.status == serve::Status::kOk) ++ok;
    if (resp.status == serve::Status::kOverloaded) ++overloaded;
  }
  if (ok != options.max_queue || overloaded != kSessions - options.max_queue) {
    std::cerr << "overload gate: expected " << options.max_queue << " ok / "
              << (kSessions - options.max_queue) << " overloaded, got "
              << ok << " / " << overloaded << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const std::size_t session_counts[] = {4, 16, 64};
  const unsigned worker_counts[] = {1, 2, 4};

  std::vector<Cell> cells;
  for (const std::size_t sessions : session_counts) {
    for (const unsigned workers : worker_counts) {
      Cell cell;
      if (!run_cell(sessions, workers, &cell)) return 1;
      const double rate =
          cell.wall_us == 0
              ? 0.0
              : static_cast<double>(cell.total_samples) * 1e6 /
                    static_cast<double>(cell.wall_us);
      std::cout << "sessions=" << sessions << " workers=" << workers
                << " hot=" << kMaxHot << ": " << cell.total_samples
                << " samples in " << cell.wall_us << " us ("
                << format_double(rate, 0) << " samples/s, "
                << cell.lru_evictions << " evictions, " << cell.restores
                << " restores) [bit-exact]\n";
      std::cout << "  phase p50/p95/p99 us:";
      for (std::size_t p = 0; p < kPhaseCount; ++p) {
        std::cout << " " << kPhases[p] << "<=" << cell.phases[p].p50 << "/"
                  << cell.phases[p].p95 << "/" << cell.phases[p].p99 << "(n="
                  << cell.phases[p].count << ")";
      }
      std::cout << "\n";
      cells.push_back(cell);
    }
  }
  if (!check_overload_semantics()) return 1;
  std::cout << "overload gate: 16 posts vs bound 8 -> 8 ok + 8 refused\n";

  bench::JsonWriter json;
  json.begin_object();
  bench::write_bench_meta(json);
  json.field("bench", "serve");
  json.field("max_hot", static_cast<std::uint64_t>(kMaxHot));
  json.field("rounds", static_cast<std::uint64_t>(kRounds));
  json.field("steps_per_round", kSteps);
  json.key("cells");
  json.begin_array();
  for (const Cell& cell : cells) {
    json.begin_object();
    json.field("sessions", static_cast<std::uint64_t>(cell.sessions));
    json.field("workers", static_cast<std::uint64_t>(cell.workers));
    json.field("total_samples", cell.total_samples);
    json.field("wall_us", cell.wall_us);
    json.field("samples_per_sec",
               cell.wall_us == 0
                   ? 0.0
                   : static_cast<double>(cell.total_samples) * 1e6 /
                         static_cast<double>(cell.wall_us));
    json.field("lru_evictions", cell.lru_evictions);
    json.field("restores", cell.restores);
    json.key("phases");
    json.begin_object();
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      json.key(kPhases[p]);
      json.begin_object();
      json.field("count", cell.phases[p].count);
      json.field("p50_us", cell.phases[p].p50);
      json.field("p95_us", cell.phases[p].p95);
      json.field("p99_us", cell.phases[p].p99);
      json.end_object();
    }
    json.end_object();
    json.field("bit_exact", cell.verified);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  if (!json.write_file("BENCH_serve.json")) {
    std::cerr << "failed to write BENCH_serve.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_serve.json\n";
  return 0;
}

// Ablation — the Qmax side-table's monotone ("raise-only") approximation
// vs an exact comparator-tree row scan (the approach of [21]).
//
// The paper adopts the monotone table because it makes greedy selection a
// single BRAM access; the cost is that the cached maximum goes stale-high
// whenever the true row maximum decreases. This ablation quantifies:
//   * learning quality on the paper's grid-world workload (where rewards
//     propagate upward and the approximation is almost free), and
//   * an adversarial all-negative-reward world where the stale table is
//     maximally wrong.
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "env/random_mdp.h"
#include "env/value_iteration.h"
#include "runtime/engine.h"

using namespace qta;

namespace {
double grid_policy_success(const env::GridWorld& world,
                           const runtime::Engine& p) {
  return env::policy_success_rate(world, p.greedy_policy());
}

/// Mean over-estimation of max_a Q(s, a) by the Qmax table.
double mean_staleness(const env::Environment& world,
                      const runtime::Engine& p) {
  double total = 0.0;
  for (StateId s = 0; s < world.num_states(); ++s) {
    double mx = p.q_value(s, 0);
    for (ActionId a = 1; a < world.num_actions(); ++a) {
      mx = std::max(mx, p.q_value(s, a));
    }
    const double cached =
        fixed::to_double(p.qmax_entry(s).value, p.config().q_fmt);
    total += cached - mx;
  }
  return total / world.num_states();
}
}  // namespace

int main() {
  std::cout << "=== Ablation: monotone Qmax table vs exact row scan ===\n\n";
  bool ok = true;

  // --- the paper's grid world: approximation is nearly free ---
  TablePrinter grid_table({"mode", "policy success", "greedy-path Q err",
                           "mean Qmax staleness"});
  {
    env::GridWorldConfig gc;
    gc.width = 16;
    gc.height = 16;
    gc.num_actions = 4;
    env::GridWorld world(gc);
    const auto optimal = env::value_iteration(world, 0.9);
    double success[2];
    int i = 0;
    for (const auto mode : {qtaccel::QmaxMode::kMonotoneTable,
                            qtaccel::QmaxMode::kExactScan}) {
      qtaccel::PipelineConfig c;
      c.qmax = mode;
      c.alpha = 0.2;
      c.seed = 31;
      c.max_episode_length = 1024;
      runtime::Engine p(world, c);
      p.run_iterations(600000);
      const double s = grid_policy_success(world, p);
      const double err = env::greedy_path_q_error(
          world, optimal, p.q_as_double(), world.state_of(0, 0));
      grid_table.add_row(
          {mode == qtaccel::QmaxMode::kMonotoneTable ? "monotone table"
                                                     : "exact scan",
           format_double(s, 3), format_double(err, 2),
           mode == qtaccel::QmaxMode::kMonotoneTable
               ? format_double(mean_staleness(world, p), 3)
               : "-"});
      success[i++] = s;
    }
    std::cout << "16x16 grid world (the paper's workload):\n";
    grid_table.print(std::cout);
    ok &= success[0] > 0.95;                 // monotone still learns
    ok &= success[1] >= success[0] - 0.02;   // exact at least as good
  }

  // --- adversarial: all rewards negative, values only decay ---
  {
    env::RandomMdpConfig mc;
    mc.num_states = 16;
    mc.num_actions = 4;
    mc.reward_lo = -1.0;
    mc.reward_hi = -0.05;
    mc.seed = 32;
    env::RandomMdp world(mc);
    const auto optimal = env::value_iteration(world, 0.9);

    TablePrinter adv({"mode", "sup |Q - Q*|", "mean Qmax staleness"});
    double err[2];
    int i = 0;
    for (const auto mode : {qtaccel::QmaxMode::kMonotoneTable,
                            qtaccel::QmaxMode::kExactScan}) {
      qtaccel::PipelineConfig c;
      c.qmax = mode;
      c.alpha = 0.2;
      c.seed = 33;
      c.max_episode_length = 256;
      runtime::Engine p(world, c);
      p.run_iterations(400000);
      const auto q = p.q_as_double();
      double sup = 0.0;
      for (std::size_t k = 0; k < q.size(); ++k) {
        sup = std::max(sup, std::abs(q[k] - optimal.q[k]));
      }
      adv.add_row({mode == qtaccel::QmaxMode::kMonotoneTable
                       ? "monotone table"
                       : "exact scan",
                   format_double(sup, 3),
                   mode == qtaccel::QmaxMode::kMonotoneTable
                       ? format_double(mean_staleness(world, p), 3)
                       : "-"});
      err[i++] = sup;
    }
    std::cout << "\nAdversarial all-negative-reward MDP (16 states):\n";
    adv.print(std::cout);
    // The stale-high table biases the bootstrap target upward: the exact
    // scan must land strictly closer to Q*.
    ok &= err[1] < err[0];
  }

  // --- stochastic dynamics: the bias becomes structural ---
  {
    env::GridWorldConfig gc;
    gc.width = 8;
    gc.height = 8;
    gc.num_actions = 4;
    gc.slip_probability = 0.2;
    gc.goal_reward = 100.0;
    gc.collision_penalty = 20.0;
    env::GridWorld world(gc);
    const auto optimal = env::value_iteration(world, 0.9);

    TablePrinter slip({"mode", "mean signed Q err vs Q*", "sup |err|"});
    double mean_err[3];
    int i = 0;
    struct SlipMode {
      const char* name;
      qtaccel::Algorithm algorithm;
      qtaccel::QmaxMode qmax;
    };
    const SlipMode modes[] = {
        {"monotone table", qtaccel::Algorithm::kQLearning,
         qtaccel::QmaxMode::kMonotoneTable},
        {"exact scan", qtaccel::Algorithm::kQLearning,
         qtaccel::QmaxMode::kExactScan},
        {"Double-Q (two tables)", qtaccel::Algorithm::kDoubleQ,
         qtaccel::QmaxMode::kMonotoneTable},
    };
    for (const SlipMode& m : modes) {
      qtaccel::PipelineConfig c;
      c.algorithm = m.algorithm;
      c.qmax = m.qmax;
      c.alpha = 0.02;
      c.seed = 34;
      c.max_episode_length = 512;
      runtime::Engine p(world, c);
      p.run_samples(2000000);
      double mean = 0.0, sup = 0.0;
      int total = 0;
      for (StateId s = 0; s < world.num_states(); ++s) {
        if (world.is_terminal(s)) continue;
        ++total;
        const ActionId a = optimal.policy[s];
        const double e = p.q_value(s, a) - optimal.q_at(world, s, a);
        mean += e;
        sup = std::max(sup, std::abs(e));
      }
      mean /= total;
      slip.add_row(
          {m.name, format_double(mean, 2), format_double(sup, 2)});
      mean_err[i++] = mean;
    }
    // Double-Q must not inherit the monotone inflation.
    ok &= mean_err[2] < mean_err[0] / 2.0;
    std::cout << "\nSlippery 8x8 grid (20% slip, goal 100): stochastic "
                 "targets make Q values fluctuate downward, which the "
                 "raise-only table cannot follow:\n";
    slip.print(std::cout);
    ok &= mean_err[0] > 5.0 * std::max(1.0, std::abs(mean_err[1]));
  }

  std::cout << "\nFindings (monotone ~ exact on deterministic grids; a "
               "real upward bias under value decay and under stochastic "
               "dynamics): "
            << (ok ? "CONFIRMED" : "NOT CONFIRMED") << "\n";
  return ok ? 0 : 1;
}

// Table II — throughput: CPU baseline vs the FPGA accelerator, for
// |A| in {4, 8} and |S| in {64, 1024, 16384, 262144}.
//
// The paper's CPU baseline is a *Python* nested dictionary on a 2.3 GHz
// i5 (~70-158 KS/s). Our dict-style baseline keeps the data layout but
// runs compiled C++, so its absolute numbers are ~100-1000x higher; the
// two shape claims are what this table checks:
//   (1) the FPGA wins by orders of magnitude at every size, and
//   (2) the CPU degrades as the table outgrows the cache while the FPGA
//       holds ~180 MS/s.
#include <iostream>

#include "baseline/dict_q_learning.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "device/frequency_model.h"
#include "runtime/engine.h"
#include "qtaccel/resources.h"

using namespace qta;

namespace {
struct PaperRow {
  std::uint64_t states;
  const char* cpu4;
  const char* fpga4;
  const char* cpu8;
  const char* fpga8;
};
const PaperRow kPaper[] = {
    {64, "105.5K", "189M", "105.8K", "189M"},
    {1024, "91.41K", "187M", "88.1K", "186M"},
    {16384, "74.17K", "181M", "70.25K", "179M"},
    {262144, "157.85K", "156M", "152K", "153M"},
};

double fpga_model_msps(const env::Environment& world, unsigned actions) {
  (void)actions;
  qtaccel::PipelineConfig config;
  config.max_episode_length = 4096;
  config.seed = 11;
  runtime::Engine pipeline(world, config);
  pipeline.run_iterations(60000);
  const auto ledger = qtaccel::build_resources(world, config);
  const double mhz =
      device::estimated_clock_mhz(bench::eval_device(), ledger);
  return device::throughput_sps(mhz, pipeline.stats().samples_per_cycle());
}
}  // namespace

int main() {
  std::cout << "=== Table II: CPU (dict layout) vs FPGA throughput ===\n"
            << "Note: the paper's CPU column is CPython; ours is compiled "
               "C++ with the same nested-dict layout, so absolute CPU "
               "numbers are higher. Shape: FPGA >> CPU, CPU decays with "
               "|S|, FPGA holds ~180 MS/s.\n\n";

  TablePrinter table({"|S|", "|A|", "CPU meas.", "CPU paper", "FPGA model",
                      "FPGA paper", "speedup"});
  bool shape_ok = true;
  double prev_cpu_sps[2] = {0.0, 0.0};
  for (const PaperRow& row : kPaper) {
    unsigned idx = 0;
    for (const unsigned actions : {4u, 8u}) {
      env::GridWorld world(bench::grid_for_states(row.states, actions));
      baseline::DictQLearning cpu(world, 0.1, 0.9, 42);
      // Warm the table, then measure.
      cpu.run(50000);
      const auto r = cpu.run(row.states >= 262144 ? 400000 : 800000);

      const double fpga_sps = fpga_model_msps(world, actions);
      const double speedup = fpga_sps / r.samples_per_sec;
      table.add_row({bench::states_label(row.states),
                     std::to_string(actions),
                     format_rate(r.samples_per_sec),
                     actions == 4 ? row.cpu4 : row.cpu8,
                     format_rate(fpga_sps),
                     actions == 4 ? row.fpga4 : row.fpga8,
                     format_double(speedup, 1) + "x"});
      shape_ok &= fpga_sps > r.samples_per_sec;  // FPGA wins everywhere
      if (row.states == 262144) {
        // CPU decayed vs the small case (cache-miss bound).
        shape_ok &= r.samples_per_sec < prev_cpu_sps[idx];
        shape_ok &= fpga_sps > 140e6;  // FPGA still near 180 MS/s
      }
      if (row.states == 64) prev_cpu_sps[idx] = r.samples_per_sec;
      ++idx;
    }
  }
  table.print(std::cout);
  std::cout << "\nShape (FPGA wins everywhere; CPU decays with |S|; FPGA "
               "holds rate): "
            << (shape_ok ? "REPRODUCED" : "DIVERGED") << "\n";
  return shape_ok ? 0 : 1;
}

// Bench-side JSON support.
//
// The streaming writer itself moved to src/common/json_writer.h when the
// telemetry subsystem needed it too; this header keeps the historical
// qta::bench::JsonWriter spelling working and adds the shared report
// metadata block every BENCH_*.json artifact embeds.
#pragma once

#include "common/json_writer.h"

namespace qta::bench {

using qta::JsonWriter;

/// Schema version stamped into every bench artifact. Bump ONLY when a
/// key changes meaning or disappears; adding keys is not a version bump
/// (readers must ignore unknown keys). v3: the host block gained the
/// detected SIMD ISA and its 64-bit lane width (the lane-backend
/// sections in BENCH_fast_engine.json are meaningless without knowing
/// what the host dispatched to). v4: BENCH_serve.json cells carry
/// per-phase latency percentiles (queue_wait / restore / execute /
/// reply) read from the server's own qtserve_phase_us histograms, and
/// serve wall_us now includes the always-on flight recorder's
/// bookkeeping — v3 and v4 serve throughput numbers are not directly
/// comparable. v5: BENCH_serve.json cells gained a fifth phase
/// (`checkpoint`, park serialization time, observed once per eviction)
/// plus park_bytes/restore_bytes totals split by snapshot format and
/// kind, and the report carries a park_formats section comparing v2
/// full-text parking against v3 full+delta parking — v4 readers that
/// assumed exactly four phases must not index past `reply`. v6: a new
/// BENCH_shard.json artifact (the sharded-router sweep: per-cell
/// touched-session counts, migration/checkpoint totals, per-shard
/// session/request splits, and p50/p95/p99 proxy-hop latency per
/// request type); existing artifacts are unchanged, but readers keyed
/// on "one BENCH file per schema bump" must now handle the new file.
inline constexpr int kBenchSchemaVersion = 6;

/// Emits the shared metadata fields into the CURRENT object scope:
///   "schema_version": 3,
///   "git_sha": "<configure-time sha or 'unknown'>",
///   "host": {"cpu_count": N, "compiler": "...",
///            "isa": "avx2", "simd_lane_width": 4}
/// Call right after the top-level begin_object() so artifacts from
/// different machines/commits are comparable. Additive-only: old readers
/// that ignore unknown keys keep working.
void write_bench_meta(JsonWriter& json);

}  // namespace qta::bench

// Section VII-B generalization — probability-distribution action
// selection (Boltzmann policy through the P table).
//
// Claims realized and measured here:
//   * selection by binary search over prefix sums costs ceil(log2 |A|)
//     extra cycles per sample ("a binary search can provide the selected
//     action in log n_i cycles"), so throughput is 1/(1 + log2 |A|)
//     samples per cycle — the cost of full policy generality;
//   * the P table adds a third |S|*|A| BRAM ("in that case 3 |S|*|A|
//     sized tables would be required");
//   * learning still reaches goal-directed policies on the paper's grid
//     workload, with exploration annealing naturally as Q values spread.
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "device/frequency_model.h"
#include "env/value_iteration.h"
#include "qtaccel/boltzmann_pipeline.h"
#include "qtaccel/config.h"
#include "qtaccel/resources.h"

using namespace qta;

int main() {
  std::cout << "=== Section VII-B: probability-table (Boltzmann) policy "
               "===\n\n";
  bool ok = true;
  const auto dev = bench::eval_device();

  // --- throughput cost vs action count ---
  TablePrinter rate({"|A|", "samples/cycle", "expected", "MS/s @ clock",
                     "eps-greedy MS/s"});
  for (const unsigned actions : {4u, 8u}) {
    env::GridWorld world(bench::grid_for_states(1024, actions));
    qtaccel::BoltzmannConfig bc;
    bc.seed = 71;
    bc.max_episode_length = 1024;
    qtaccel::BoltzmannPipeline bp(world, bc);
    bp.run_samples(30000);

    const double expect = 1.0 / (1.0 + log2_ceil(actions));
    const double mhz =
        device::estimated_clock_mhz(dev, device::bram18_tiles_for(
                                             bp.resources()));
    const double msps =
        device::throughput_sps(mhz, bp.stats().samples_per_cycle()) / 1e6;

    // Epsilon-greedy SARSA reference at the same table geometry.
    qtaccel::PipelineConfig sc;
    sc.algorithm = qtaccel::Algorithm::kSarsa;
    const double smhz = device::estimated_clock_mhz(
        dev, qtaccel::build_resources(world, sc));

    rate.add_row({std::to_string(actions),
                  format_double(bp.stats().samples_per_cycle(), 4),
                  format_double(expect, 4), format_double(msps, 1),
                  format_double(smhz, 1)});
    ok &= std::abs(bp.stats().samples_per_cycle() - expect) < 0.01;
  }
  rate.print(std::cout);

  // --- BRAM cost of the third table ---
  {
    env::GridWorld world(bench::grid_for_states(16384, 8));
    qtaccel::BoltzmannConfig bc;
    qtaccel::BoltzmannPipeline bp(world, bc);
    qtaccel::PipelineConfig sc;
    const auto with_p = bp.resources().memory_bits();
    const auto without_p =
        qtaccel::build_resources(world, sc).memory_bits();
    std::cout << "\nBRAM bits at |S| = 16384, |A| = 8: "
              << format_count(with_p) << " with the P table vs "
              << format_count(without_p)
              << " for Q-Learning (three tables vs two + Qmax): ratio "
              << format_double(static_cast<double>(with_p) /
                                   static_cast<double>(without_p),
                               2)
              << "x\n";
    ok &= with_p > without_p;
  }

  // --- learning quality on the paper's workload ---
  {
    env::GridWorld world(bench::grid_for_states(256, 4));
    qtaccel::BoltzmannConfig bc;
    bc.alpha = 0.2;
    bc.temperature = 24.0;
    bc.seed = 72;
    bc.max_episode_length = 512;
    qtaccel::BoltzmannPipeline bp(world, bc);
    bp.run_samples(600000);
    std::vector<double> q;
    for (StateId s = 0; s < world.num_states(); ++s) {
      for (ActionId a = 0; a < world.num_actions(); ++a) {
        q.push_back(bp.q_value(s, a));
      }
    }
    const double success = env::policy_success_rate(
        world, env::greedy_policy_from(world, q));
    std::cout << "\n16x16 grid, 600k samples, T = 24: "
              << format_double(100.0 * success, 1)
              << "% of states reach the goal greedily\n";
    ok &= success >= 0.9;
  }

  std::cout << "\nClaims (1/(1+log2|A|) rate; third BRAM table; learning "
               "intact): "
            << (ok ? "REPRODUCED" : "DIVERGED") << "\n";
  return ok ? 0 : 1;
}

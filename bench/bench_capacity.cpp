// Section VI-C / VI-F / VII capacity claims — how large a Q-table fits
// on-chip.
//
// Paper anchors checked:
//   * "we are able to support a state space of 262,144 states and 8
//     actions i.e. a state-action size of more than 2 million" (BRAM);
//   * "theoretically, a state-action pair size of 10 million can be
//     supported using the available 360 Mb of on-chip UltraRAM";
//   * Section VI-F: >131,072 states at |A|=4 on a Virtex-7-class device
//     vs 132 for the FSM-per-pair baseline [11].
#include <iostream>

#include "baseline/fsm_accelerator.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "env/grid_world.h"
#include "qtaccel/resources.h"

using namespace qta;

namespace {
/// Largest power-of-two state count (square grids, like Table I) whose
/// tables fit the device's memory.
std::uint64_t max_states(const device::Device& dev, unsigned actions,
                         bool use_uram) {
  std::uint64_t best = 0;
  for (std::uint64_t states = 64; states <= (1ull << 24); states *= 4) {
    env::GridWorld world(bench::grid_for_states(states, actions));
    qtaccel::PipelineConfig config;
    const auto ledger = qtaccel::build_resources(world, config);
    if (device::memories_fit(dev, ledger, use_uram)) best = states;
  }
  return best;
}
}  // namespace

int main() {
  std::cout << "=== On-chip capacity: largest supported Q-table ===\n\n";
  bool ok = true;

  TablePrinter table({"device", "|A|", "max |S| (BRAM)", "pairs",
                      "max |S| (+URAM)", "pairs"});
  for (const auto& dev :
       {device::xcvu13p(), device::xc7vx690t(), device::xc6vlx240t()}) {
    for (const unsigned actions : {4u, 8u}) {
      const std::uint64_t bram_only = max_states(dev, actions, false);
      const std::uint64_t with_uram = max_states(dev, actions, true);
      table.add_row({dev.name, std::to_string(actions),
                     format_count(bram_only),
                     format_count(bram_only * actions),
                     format_count(with_uram),
                     format_count(with_uram * actions)});
      if (dev.name == "xcvu13p" && actions == 8) {
        // "more than 2 million" pairs in BRAM; ~10M with UltraRAM.
        ok &= bram_only * actions >= 2 * 1000 * 1000;
        ok &= with_uram * actions >= 8 * 1000 * 1000;
      }
      if (dev.name == "xc7vx690t" && actions == 4) {
        ok &= bram_only >= 131072;  // Section VI-F
      }
    }
  }
  table.print(std::cout);

  const StateId baseline_max = baseline::FsmAcceleratorModel::max_states(
      device::xc6vlx240t(), 4);
  std::cout << "\nFor contrast, the FSM-per-pair baseline [11] maxes out "
               "at "
            << baseline_max << " states (|A| = 4) on a Virtex-6 — its "
            << "limit is DSP slices, not memory.\n";

  std::cout << "\nAnchors (>2M pairs in BRAM on xcvu13p; ~10M with URAM; "
               ">=131,072 states on Virtex-7): "
            << (ok ? "REPRODUCED" : "DIVERGED") << "\n";
  return ok ? 0 : 1;
}

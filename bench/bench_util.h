// Shared helpers for the benchmark binaries: the paper's Table I test
// cases, the standard grid-world workload builder, and the device used
// throughout the evaluation section.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bit_math.h"
#include "common/check.h"
#include "device/device.h"
#include "env/grid_world.h"

namespace qta::bench {

/// Table I: |S| in {64, ..., 262144}, |A| in {4, 8}. States are square
/// 2^k x 2^k grids (the paper's (x, y) coordinate addressing).
inline const std::vector<std::uint64_t>& table1_states() {
  static const std::vector<std::uint64_t> kStates{
      64, 256, 1024, 4096, 16384, 65536, 262144};
  return kStates;
}

/// Builds the paper's grid-world workload for a Table I case.
inline env::GridWorldConfig grid_for_states(std::uint64_t states,
                                            unsigned actions) {
  QTA_CHECK(is_pow2(states));
  const unsigned bits = log2_ceil(states);
  QTA_CHECK_MSG(bits % 2 == 0, "Table I cases are square grids");
  const unsigned side = 1u << (bits / 2);
  env::GridWorldConfig c;
  c.width = side;
  c.height = side;
  c.num_actions = actions;
  return c;
}

/// The evaluation device (Section VI-A).
inline device::Device eval_device() { return device::xcvu13p(); }

inline std::string states_label(std::uint64_t states) {
  return std::to_string(states);
}

}  // namespace qta::bench

// Figure 5 — resource utilization for the SARSA accelerator across the
// Table I state sizes at |A| = 8 on the xcvu13p.
//
// Paper's reported behaviour relative to Q-Learning (Figure 3): the
// epsilon-greedy selector adds an LFSR and comparator, so register and
// power figures rise slightly; DSP and BRAM are unchanged.
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "device/resource_report.h"
#include "qtaccel/resources.h"

using namespace qta;

int main() {
  std::cout << "=== Figure 5: SARSA resource utilization (|A| = 8, "
               "xcvu13p) ===\n"
            << "Paper claims: same 4 DSP and same BRAM as Q-Learning; "
               "extra LFSR registers raise FF and power slightly.\n\n";

  const device::Device dev = bench::eval_device();
  qtaccel::PipelineConfig ql;
  qtaccel::PipelineConfig sarsa;
  sarsa.algorithm = qtaccel::Algorithm::kSarsa;

  TablePrinter table({"|S|", "DSP", "FF", "FF util %", "FF vs QL", "LUT",
                      "power mW", "power vs QL"});
  bool claims_hold = true;
  for (const std::uint64_t states : bench::table1_states()) {
    env::GridWorld world(bench::grid_for_states(states, 8));
    const auto sl = qtaccel::build_resources(world, sarsa);
    const auto ql_ledger = qtaccel::build_resources(world, ql);
    const auto sr = device::make_report(dev, sl);
    const auto qr = device::make_report(dev, ql_ledger);

    table.add_row(
        {bench::states_label(states), std::to_string(sr.dsp),
         std::to_string(sr.flip_flops), format_double(sr.ff_util_pct, 4),
         "+" + std::to_string(sr.flip_flops - qr.flip_flops),
         std::to_string(sr.luts),
         format_double(sr.power.total_mw(), 1),
         "+" + format_double(sr.power.total_mw() - qr.power.total_mw(), 2)});

    claims_hold &= sr.dsp == 4;
    claims_hold &= sl.memory_bits() == ql_ledger.memory_bits();
    claims_hold &= sr.flip_flops > qr.flip_flops;
    claims_hold &= sr.power.total_mw() > qr.power.total_mw();
    claims_hold &= sr.ff_util_pct < 0.1;
  }
  table.print(std::cout);
  std::cout << "\nClaims (DSP == 4, BRAM == QL, FF/power > QL, FF < 0.1%): "
            << (claims_hold ? "REPRODUCED" : "VIOLATED") << "\n";
  return claims_hold ? 0 : 1;
}

// Ablation — eligibility traces vs the 1-step hardware update.
//
// The QTAccel pipeline implements 1-step Q-Learning/SARSA because the
// BRAM budget allows exactly one table write per cycle. Lambda-return
// variants (SARSA(lambda), Watkins Q(lambda)) propagate credit faster
// per sample but touch MANY table entries per step. This bench
// quantifies both sides of that trade:
//   * sample efficiency: policy success at tight sample budgets;
//   * hardware cost: mean table writes per step (= active traces), which
//     is the factor by which a trace-enabled design would have to
//     replicate write ports or stall.
#include <iostream>

#include "algo/lambda_returns.h"
#include "algo/sarsa.h"
#include "algo/trainer.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "env/value_iteration.h"

using namespace qta;

namespace {
double success_rate(const env::GridWorld& g, const algo::TabularLearner& l) {
  const auto policy = l.greedy_policy();
  int reached = 0, total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s)) continue;
    ++total;
    reached += env::rollout_steps(g, policy, s, 1000) >= 0 ? 1 : 0;
  }
  return static_cast<double>(reached) / total;
}
}  // namespace

int main() {
  std::cout << "=== Ablation: eligibility traces vs the 1-step hardware "
               "update (16x16 grid, step cost -1) ===\n\n";

  env::GridWorldConfig gc = bench::grid_for_states(256, 4);
  gc.step_reward = -1.0;
  gc.goal_reward = 100.0;
  gc.collision_penalty = 5.0;
  env::GridWorld world(gc);

  bool ok = true;
  TablePrinter table({"samples", "SARSA (1-step)", "SARSA(0.9)",
                      "Watkins Q(0.9)", "mean writes/step"});
  for (const std::uint64_t budget : {20000ull, 60000ull, 180000ull}) {
    algo::SarsaOptions sopt;
    sopt.alpha = 0.15;
    sopt.epsilon = 0.2;
    algo::Sarsa one_step(world, sopt);

    algo::LambdaOptions lopt;
    lopt.alpha = 0.15;
    lopt.lambda = 0.9;
    lopt.epsilon = 0.2;
    algo::SarsaLambda traced(world, lopt);
    algo::WatkinsQLambda watkins(world, lopt);

    algo::TrainOptions topt;
    topt.total_samples = budget;
    topt.max_steps_per_episode = 512;
    topt.seed = 5;
    algo::train(one_step, topt);
    algo::train(traced, topt);

    // Track the trace-write cost while training Watkins.
    RunningStats writes;
    algo::TrainOptions wopt = topt;
    wopt.probe_interval = 50;
    wopt.probe = [&](std::uint64_t) {
      writes.add(static_cast<double>(watkins.active_traces()));
    };
    algo::train(watkins, wopt);

    const double s1 = success_rate(world, one_step);
    const double s2 = success_rate(world, traced);
    const double s3 = success_rate(world, watkins);
    table.add_row({std::to_string(budget), format_double(s1, 3),
                   format_double(s2, 3), format_double(s3, 3),
                   format_double(writes.mean(), 1)});
    if (budget == 20000ull) ok &= s2 > s1;  // traces win when data-starved
    if (budget == 180000ull) ok &= s1 > 0.95;  // 1-step catches up
    ok &= writes.mean() > 2.0;  // and the hardware cost is real
  }
  table.print(std::cout);
  std::cout << "\nReading: traces buy sample efficiency early; the 1-step "
               "update converges to the same policies with enough "
               "samples — which the pipeline supplies at 180M/s — while "
               "keeping exactly one table write per cycle (the traced "
               "variants average the 'writes/step' column).\n"
            << (ok ? "CONFIRMED" : "NOT CONFIRMED") << "\n";
  return ok ? 0 : 1;
}

// Figure 7 — multiplier (DSP) count: QTAccel vs the FSM-per-state-action
// baseline [11], for the paper's (state, action) points, plus the
// Section VI-F scalability comparison.
//
// Anchors from the paper's text: QTAccel always uses 4 multipliers; the
// baseline fully utilizes a Virtex-6 class device (768 DSP) at 132 states
// x 4 actions; on a similar device QTAccel scales to 131,072+ states
// ("more than 1000X") at 15X+ higher throughput.
#include <iostream>

#include "baseline/fsm_accelerator.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "device/frequency_model.h"
#include "qtaccel/resources.h"

using namespace qta;

int main() {
  std::cout << "=== Figure 7: multipliers (DSP), QTAccel vs baseline [11] "
               "===\n\n";

  const device::Device v6 = device::xc6vlx240t();
  const device::Device v7 = device::xc7vx690t();

  struct Point {
    StateId states;
    ActionId actions;
  };
  const Point points[] = {{12, 4}, {12, 8}, {56, 4}, {56, 8}, {132, 4}};

  TablePrinter table({"(|S|,|A|)", "QTAccel DSP", "baseline DSP",
                      "ratio", "baseline fits V6?"});
  bool ok = true;
  for (const Point& p : points) {
    const std::uint64_t base =
        baseline::FsmAcceleratorModel::multipliers(p.states, p.actions);
    const bool fits =
        baseline::FsmAcceleratorModel::fits(v6, p.states, p.actions);
    table.add_row({"(" + std::to_string(p.states) + "," +
                       std::to_string(p.actions) + ")",
                   "4", std::to_string(base),
                   format_double(static_cast<double>(base) / 4.0, 1) + "x",
                   fits ? "yes" : "NO (saturated)"});
  }
  table.print(std::cout);

  // Text anchors.
  const bool anchor_132 =
      !baseline::FsmAcceleratorModel::fits(v6, 132, 4);
  const StateId baseline_max =
      baseline::FsmAcceleratorModel::max_states(v6, 4);

  // QTAccel's scalability on the Virtex-7 (similar-size device used for
  // the comparison): largest Table-I-style state count whose tables fit.
  StateId qtaccel_max = 0;
  for (std::uint64_t states = 64; states <= (1u << 20); states *= 2) {
    env::GridWorldConfig gc;
    const unsigned side = 1u << (log2_ceil(states) / 2);
    gc.width = side;
    gc.height = static_cast<unsigned>(states / side);
    gc.num_actions = 4;
    env::GridWorld world(gc);
    qtaccel::PipelineConfig config;
    const auto ledger = qtaccel::build_resources(world, config);
    if (device::bram18_tiles_for(ledger) <= v7.bram18_blocks) {
      qtaccel_max = static_cast<StateId>(states);
    }
  }
  const double scale =
      static_cast<double>(qtaccel_max) / static_cast<double>(baseline_max);
  const double speedup =
      180e6 / baseline::FsmAcceleratorModel::throughput_sps();

  std::cout << "\nScalability (Section VI-F):\n"
            << "  baseline [11] max states on Virtex-6 (|A|=4): "
            << baseline_max << " (paper: ~132)\n"
            << "  QTAccel max states on Virtex-7 BRAM   (|A|=4): "
            << qtaccel_max << " (paper: 131,072+)\n"
            << "  scale ratio: " << format_double(scale, 0)
            << "x (paper: >1000x)\n"
            << "  throughput ratio at 180 MS/s: "
            << format_double(speedup, 1) << "x (paper: >15x)\n"
            << "  wasted multiplier work in [11] at (132,4): "
            << format_double(100.0 * baseline::FsmAcceleratorModel::
                                         wasted_multiplier_fraction(132, 4),
                             2)
            << "% idle per update\n";

  ok &= anchor_132;
  ok &= qtaccel_max >= 131072;
  ok &= scale > 1000.0;
  ok &= speedup > 15.0;
  std::cout << "\nAnchors (132x4 saturates V6; QTAccel >= 131072 states; "
               ">1000x scale; >15x throughput): "
            << (ok ? "REPRODUCED" : "DIVERGED") << "\n";
  return ok ? 0 : 1;
}

#include "bench_json.h"

#include <thread>

#include "common/simd.h"

namespace qta::bench {

// QTA_GIT_SHA is injected by bench/CMakeLists.txt from `git rev-parse`
// at configure time; a tarball build (no .git) reports "unknown".
#ifndef QTA_GIT_SHA
#define QTA_GIT_SHA "unknown"
#endif

void write_bench_meta(JsonWriter& json) {
  json.field("schema_version", kBenchSchemaVersion);
  json.field("git_sha", QTA_GIT_SHA);
  json.key("host").begin_object();
  json.field("cpu_count", std::thread::hardware_concurrency());
#if defined(__VERSION__)
  json.field("compiler", __VERSION__);
#else
  json.field("compiler", "unknown");
#endif
  // What the lane engine's runtime dispatch picked on THIS host — lane
  // throughput numbers are not comparable across artifacts without it.
  const SimdIsa isa = detected_simd_isa();
  json.field("isa", simd_isa_name(isa));
  json.field("simd_lane_width", simd_lane_width(isa));
  json.end_object();
}

}  // namespace qta::bench

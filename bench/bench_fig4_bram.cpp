// Figure 4 — BRAM utilization (identical for Q-Learning and SARSA) across
// the Table I state sizes at |A| = 8 on the xcvu13p.
//
// Paper values: 0.02, 0.09, 0.32, 1.3, 4.8, 19.42, 78.12 percent.
// The model stores Q and reward entries in 18-bit lanes and the Qmax
// entry as value(18b) + argmax action(3b); utilization is reported at bit
// granularity (the paper's tiny values rule out block-granularity
// accounting) with the 18Kb-tile count shown alongside.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "qtaccel/resources.h"

using namespace qta;

int main() {
  std::cout << "=== Figure 4: BRAM utilization, Q-Learning and SARSA "
               "(|A| = 8, xcvu13p) ===\n\n";

  const device::Device dev = bench::eval_device();
  const double paper[] = {0.02, 0.09, 0.32, 1.3, 4.8, 19.42, 78.12};

  TablePrinter table({"|S|", "paper %", "model %", "rel err", "BRAM18 tiles",
                      "tile %"});
  bool ok = true;
  std::size_t i = 0;
  bool sarsa_matches_ql = true;
  for (const std::uint64_t states : bench::table1_states()) {
    env::GridWorld world(bench::grid_for_states(states, 8));
    qtaccel::PipelineConfig ql;
    qtaccel::PipelineConfig sarsa;
    sarsa.algorithm = qtaccel::Algorithm::kSarsa;
    const auto ledger = qtaccel::build_resources(world, ql);
    sarsa_matches_ql &=
        qtaccel::build_resources(world, sarsa).memory_bits() ==
        ledger.memory_bits();

    const double pct = 100.0 * static_cast<double>(ledger.memory_bits()) /
                       static_cast<double>(dev.bram_bits());
    const std::uint64_t tiles = device::bram18_tiles_for(ledger);
    const double tile_pct = 100.0 * static_cast<double>(tiles) /
                            static_cast<double>(dev.bram18_blocks);
    const double rel =
        paper[i] > 0 ? std::abs(pct - paper[i]) / paper[i] : 0.0;
    ok &= rel < 0.15;
    table.add_row({bench::states_label(states), format_double(paper[i], 2),
                   format_double(pct, 3), format_double(100.0 * rel, 1) + "%",
                   std::to_string(tiles), format_double(tile_pct, 2)});
    ++i;
  }
  table.print(std::cout);
  std::cout << "\nSARSA BRAM footprint identical to Q-Learning (paper's "
               "single curve): "
            << (sarsa_matches_ql ? "yes" : "NO") << "\n"
            << "All points within 15% of the paper: "
            << (ok ? "REPRODUCED" : "DIVERGED") << "\n";
  return ok && sarsa_matches_ql ? 0 : 1;
}

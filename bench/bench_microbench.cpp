// Google-benchmark microbenchmarks of the hot paths: simulator cycle
// cost, fixed-point DSP operations, LFSR draws, and the CPU-baseline
// update loops. These measure the *simulator's* speed on the host (how
// many simulated cycles per wall second the harness can drive), not the
// modeled FPGA throughput — that's bench_fig6_throughput.
#include <benchmark/benchmark.h>

#include "baseline/dict_q_learning.h"
#include "baseline/flat_q_learning.h"
#include "bench_util.h"
#include "env/grid_world.h"
#include "fixed/fixed_point.h"
#include "qtaccel/golden_model.h"
#include "rng/lfsr.h"
#include "runtime/engine.h"

using namespace qta;

namespace {

void BM_FixedMul(benchmark::State& state) {
  const fixed::Format q{18, 8}, c{18, 16};
  fixed::raw_t a = fixed::from_double(3.75, q);
  const fixed::raw_t b = fixed::from_double(0.9, c);
  for (auto _ : state) {
    a = fixed::mul(a, q, b, c, q) + 1;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FixedMul);

void BM_FixedSatAdd(benchmark::State& state) {
  const fixed::Format q{18, 8};
  fixed::raw_t a = 1000, b = 271;
  for (auto _ : state) {
    a = fixed::sat_add(a, b, q) ^ 1;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FixedSatAdd);

void BM_LfsrDrawBits(benchmark::State& state) {
  rng::Lfsr lfsr(32, 7);
  const auto bits = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lfsr.draw_bits(bits));
  }
}
BENCHMARK(BM_LfsrDrawBits)->Arg(3)->Arg(16)->Arg(32);

void BM_PipelineCycle(benchmark::State& state) {
  env::GridWorld world(
      bench::grid_for_states(static_cast<std::uint64_t>(state.range(0)),
                             8));
  qtaccel::PipelineConfig config;
  config.max_episode_length = 4096;
  runtime::Engine engine(world, config);
  qtaccel::Pipeline& pipeline = *engine.cycle_pipeline();
  for (auto _ : state) {
    pipeline.tick(true);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_samples_per_cycle"] =
      pipeline.stats().samples_per_cycle();
}
BENCHMARK(BM_PipelineCycle)->Arg(256)->Arg(16384);

void BM_GoldenIteration(benchmark::State& state) {
  env::GridWorld world(bench::grid_for_states(16384, 8));
  qtaccel::PipelineConfig config;
  config.max_episode_length = 4096;
  qtaccel::GoldenModel golden(world, config);
  for (auto _ : state) {
    golden.run(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoldenIteration);

void BM_DictUpdateLoop(benchmark::State& state) {
  env::GridWorld world(
      bench::grid_for_states(static_cast<std::uint64_t>(state.range(0)),
                             4));
  baseline::DictQLearning learner(world, 0.1, 0.9, 71);
  for (auto _ : state) {
    learner.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DictUpdateLoop)->Arg(1024)->Arg(262144);

void BM_FlatUpdateLoop(benchmark::State& state) {
  env::GridWorld world(
      bench::grid_for_states(static_cast<std::uint64_t>(state.range(0)),
                             4));
  baseline::FlatQLearning learner(world, 0.1, 0.9, 71);
  for (auto _ : state) {
    learner.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FlatUpdateLoop)->Arg(1024)->Arg(262144);

}  // namespace

BENCHMARK_MAIN();

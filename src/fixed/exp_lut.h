// Hardware-style exp() lookup table used by the Boltzmann action-selection
// policy and the EXP3 bandit weight update (Section VII-B of the paper).
//
// A BRAM-resident LUT with linear interpolation between entries — the
// standard FPGA realization (one BRAM read + one DSP multiply + one add).
// Domain is clamped, exactly as the hardware would clamp the address.
//
// qtlint: allow-file(datapath-purity)
// LUT contents are generated with libm at construction time — the
// hardware analog is an offline-computed ROM image baked into BRAM init
// strings. The eval() path itself is pure fixed-point; eval_double() and
// max_abs_error() are host-side accuracy probes.
#pragma once

#include <cstdint>
#include <vector>

#include "fixed/fixed_point.h"

namespace qta::fixed {

class ExpLut {
 public:
  /// Builds a table of 2^log2_entries samples of exp(x) over [lo, hi].
  /// `value_fmt` is the output fixed-point format (entries saturate to it).
  ExpLut(double lo, double hi, unsigned log2_entries, Format value_fmt);

  /// exp(x) with x given as a fixed-point value in `arg_fmt`. The input is
  /// clamped to [lo, hi]; output is in value_fmt().
  raw_t eval(raw_t x, Format arg_fmt) const;

  /// Convenience double-in/double-out evaluation (still goes through the
  /// quantized table, so it shows real LUT error).
  double eval_double(double x) const;

  Format value_fmt() const { return value_fmt_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t entries() const { return table_.size(); }

  /// BRAM bits consumed by the table (for the resource ledger).
  std::uint64_t storage_bits() const {
    return static_cast<std::uint64_t>(table_.size()) * value_fmt_.width;
  }

  /// Worst-case absolute error vs std::exp over a dense probe of the
  /// domain; used by tests to bound interpolation error.
  double max_abs_error(unsigned probes = 4096) const;

 private:
  double lo_;
  double hi_;
  double step_;
  Format value_fmt_;
  std::vector<raw_t> table_;
};

}  // namespace qta::fixed

// qtlint: allow-file(datapath-purity)
// The log2 correction table is generated with libm on first use — the
// hardware analog is an offline-computed BRAM init image. The query paths
// (log2_fixed, ln_fixed, sqrt_fixed, div_fixed) are integer-only.
#include "fixed/math_lut.h"

#include <array>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace qta::fixed {

namespace {
// log2(1 + i / 2^kLog2LutBits) quantized to 24 fractional bits — the
// content of the correction BRAM.
constexpr unsigned kLutFrac = 24;

const std::array<std::int64_t, (1u << kLog2LutBits) + 1>& log2_lut() {
  static const auto table = [] {
    std::array<std::int64_t, (1u << kLog2LutBits) + 1> t{};
    for (std::size_t i = 0; i < t.size(); ++i) {
      const double f =
          static_cast<double>(i) / static_cast<double>(1u << kLog2LutBits);
      t[i] = static_cast<std::int64_t>(
          std::llround(std::log2(1.0 + f) * (1 << kLutFrac)));
    }
    return t;
  }();
  return table;
}

// Bitwise integer square root: floor(sqrt(v)).
std::uint64_t isqrt_u64(std::uint64_t v) {
  std::uint64_t res = 0;
  std::uint64_t bit = std::uint64_t{1} << 62;
  while (bit > v) bit >>= 2;
  while (bit != 0) {
    if (v >= res + bit) {
      v -= res + bit;
      res = (res >> 1) + bit;
    } else {
      res >>= 1;
    }
    bit >>= 2;
  }
  return res;
}
}  // namespace

raw_t log2_fixed(raw_t v, Format fin, Format fout) {
  validate(fin);
  validate(fout);
  QTA_CHECK_MSG(v > 0, "log2 of a non-positive value");
  const auto uv = static_cast<std::uint64_t>(v);
  const unsigned msb = static_cast<unsigned>(std::bit_width(uv)) - 1;

  // Mantissa bits below the MSB, padded/truncated to kLog2LutBits + a
  // few interpolation bits.
  constexpr unsigned kInterpBits = 8;
  constexpr unsigned kTotal = kLog2LutBits + kInterpBits;
  std::uint64_t mant;
  if (msb >= kTotal) {
    mant = (uv >> (msb - kTotal)) & ((std::uint64_t{1} << kTotal) - 1);
  } else {
    mant = (uv << (kTotal - msb)) & ((std::uint64_t{1} << kTotal) - 1);
  }
  const auto idx = static_cast<std::size_t>(mant >> kInterpBits);
  const std::uint64_t frac = mant & ((1u << kInterpBits) - 1);
  const std::int64_t lo = log2_lut()[idx];
  const std::int64_t hi = log2_lut()[idx + 1];
  const std::int64_t corr =
      lo + (((hi - lo) * static_cast<std::int64_t>(frac)) >> kInterpBits);

  // log2(value) = (msb - fin.frac) + corr * 2^-kLutFrac.
  const std::int64_t integer_part =
      static_cast<std::int64_t>(msb) - static_cast<std::int64_t>(fin.frac);
  const std::int64_t result_q24 = (integer_part << kLutFrac) + corr;
  return convert(result_q24, Format{48, kLutFrac}, fout);
}

raw_t ln_fixed(raw_t v, Format fin, Format fout) {
  // ln(2) in Q24.
  constexpr std::int64_t kLn2Q24 = 11629080;  // round(ln(2) * 2^24)
  const raw_t l2 = log2_fixed(v, fin, Format{48, kLutFrac});
  const std::int64_t prod = (l2 * kLn2Q24) >> kLutFrac;
  return convert(prod, Format{48, kLutFrac}, fout);
}

raw_t sqrt_fixed(raw_t v, Format fin, Format fout) {
  validate(fin);
  validate(fout);
  QTA_CHECK_MSG(v >= 0, "sqrt of a negative value");
  if (v == 0) return 0;
  // sqrt(v * 2^-fa) * 2^fc = isqrt(v * 2^(2*fc - fa)).
  const int shift = 2 * static_cast<int>(fout.frac) -
                    static_cast<int>(fin.frac);
  std::uint64_t scaled;
  if (shift >= 0) {
    QTA_CHECK_MSG(static_cast<unsigned>(std::bit_width(
                      static_cast<std::uint64_t>(v))) +
                          static_cast<unsigned>(shift) <=
                      62,
                  "sqrt operand overflows the 64-bit datapath");
    scaled = static_cast<std::uint64_t>(v) << shift;
  } else {
    scaled = static_cast<std::uint64_t>(v) >> (-shift);
  }
  return saturate(static_cast<raw_t>(isqrt_u64(scaled)), fout);
}

raw_t div_fixed(raw_t a, Format fa, raw_t b, Format fb, Format fout) {
  validate(fa);
  validate(fb);
  validate(fout);
  QTA_CHECK_MSG(b != 0, "division by zero");
  __extension__ typedef __int128 i128;
  const int shift = static_cast<int>(fout.frac) - static_cast<int>(fa.frac) +
                    static_cast<int>(fb.frac);
  i128 num = static_cast<i128>(a);
  if (shift >= 0) {
    num <<= shift;
  } else {
    num >>= (-shift);
  }
  // Round to nearest, half away from zero.
  const i128 bb = static_cast<i128>(b);
  i128 q;
  if ((num >= 0) == (bb > 0)) {
    q = (num + (bb > 0 ? bb : -bb) / 2) / bb;
  } else {
    q = (num - (bb > 0 ? bb : -bb) / 2) / bb;
  }
  const i128 lo = fout.min_raw();
  const i128 hi = fout.max_raw();
  if (q < lo) return fout.min_raw();
  if (q > hi) return fout.max_raw();
  return static_cast<raw_t>(q);
}

unsigned log2_lut_bits() {
  return ((1u << kLog2LutBits) + 1) * (kLutFrac + 2);
}

unsigned sqrt_iteration_luts(Format f) {
  // One CSA row per result bit.
  return f.width * 12;
}

unsigned divider_luts(Format f) {
  return f.width * 10;
}

}  // namespace qta::fixed

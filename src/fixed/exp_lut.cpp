// qtlint: allow-file(datapath-purity)
// ROM-image generation + host-side accuracy probes (see exp_lut.h).
#include "fixed/exp_lut.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qta::fixed {

ExpLut::ExpLut(double lo, double hi, unsigned log2_entries, Format value_fmt)
    : lo_(lo), hi_(hi), value_fmt_(value_fmt) {
  QTA_CHECK(hi > lo);
  QTA_CHECK(log2_entries >= 2 && log2_entries <= 20);
  validate(value_fmt);
  const std::size_t n = std::size_t{1} << log2_entries;
  step_ = (hi - lo) / static_cast<double>(n - 1);
  table_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = lo + static_cast<double>(i) * step_;
    table_[i] = from_double(std::exp(x), value_fmt_);
  }
}

raw_t ExpLut::eval(raw_t x, Format arg_fmt) const {
  const double xd = to_double(x, arg_fmt);
  return from_double(eval_double(xd), value_fmt_);
}

double ExpLut::eval_double(double x) const {
  const double clamped = std::clamp(x, lo_, hi_);
  const double pos = (clamped - lo_) / step_;
  const auto idx = static_cast<std::size_t>(pos);
  const std::size_t hi_idx = std::min(idx + 1, table_.size() - 1);
  const double frac = pos - static_cast<double>(idx);
  const double a = to_double(table_[idx], value_fmt_);
  const double b = to_double(table_[hi_idx], value_fmt_);
  return a + (b - a) * frac;
}

double ExpLut::max_abs_error(unsigned probes) const {
  QTA_CHECK(probes >= 2);
  double worst = 0.0;
  for (unsigned i = 0; i < probes; ++i) {
    const double x =
        lo_ + (hi_ - lo_) * static_cast<double>(i) /
                  static_cast<double>(probes - 1);
    worst = std::max(worst, std::abs(eval_double(x) - std::exp(x)));
  }
  return worst;
}

}  // namespace qta::fixed

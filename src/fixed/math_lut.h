// Hardware-style fixed-point elementary functions: log2/ln via
// leading-zero normalization plus a fractional LUT, sqrt via the
// non-restoring integer algorithm, and division via shift-subtract long
// division. These are the building blocks the UCB bandit accelerator
// needs (score = Q + sqrt(2 ln t / n)); each maps to a small LUT + LUT
// fabric on the device, with no DSP usage.
#pragma once

#include <cstdint>

#include "fixed/fixed_point.h"

namespace qta::fixed {

/// Hardware log2: for v > 0 (raw, format fin), returns log2(value) in
/// format fout. Realization: priority encoder finds the MSB (integer part
/// of log2), the next `kLog2LutBits` mantissa bits index a LUT of
/// log2(1+f) corrections, linearly interpolated.
inline constexpr unsigned kLog2LutBits = 8;
raw_t log2_fixed(raw_t v, Format fin, Format fout);

/// Natural log via log2 * ln(2). Aborts on v <= 0.
raw_t ln_fixed(raw_t v, Format fin, Format fout);

/// Non-restoring integer square root of a non-negative fixed-point value:
/// sqrt of (v, fin) expressed in fout. Exact to one ulp of fout.
raw_t sqrt_fixed(raw_t v, Format fin, Format fout);

/// Shift-subtract division: (a, fa) / (b, fb) in fout, round-to-nearest,
/// saturating. Aborts on b == 0.
raw_t div_fixed(raw_t a, Format fa, raw_t b, Format fb, Format fout);

/// LUT + fabric cost estimates for the resource ledger.
unsigned log2_lut_bits();      // BRAM bits of the log2 correction LUT
unsigned sqrt_iteration_luts(Format f);  // LUTs of the sqrt array
unsigned divider_luts(Format f);         // LUTs of the long divider

}  // namespace qta::fixed

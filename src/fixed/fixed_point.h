// Fixed-point arithmetic with the exact semantics of the simulated DSP
// datapath.
//
// The accelerator stores Q-values and rewards in 18-bit lanes (the natural
// word of an UltraScale BRAM18, and the B-port width of a DSP48E2 27x18
// multiplier). Learning-rate / discount coefficients use a high-fraction
// format since they live in [0, 1]. Formats are runtime values so benchmarks
// can sweep precision; raw values are carried sign-extended in int64.
//
// Rounding: round-half-away-from-zero (the cheap adder-based FPGA rounding).
// Overflow: saturation to the format's representable range; the pipeline
// counts saturation events so experiments can report precision loss.
//
// qtlint: allow-file(datapath-purity)
// This file IS the sanctioned host<->datapath conversion boundary:
// from_double/to_double and the resolution helpers are the only place the
// model is allowed to touch IEEE floats. Everything downstream carries
// raw_t only, which tools/qtlint enforces.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.h"

namespace qta::fixed {

/// Raw fixed-point value: two's-complement, sign-extended into 64 bits.
using raw_t = std::int64_t;

/// A runtime Q-format: `width` total bits (including sign) of which `frac`
/// are fractional. width <= 48 so products of two values fit in int64 with
/// headroom (the DSP48 accumulator is 48 bits wide).
struct Format {
  unsigned width = 18;
  unsigned frac = 8;

  constexpr unsigned int_bits() const { return width - 1 - frac; }
  constexpr raw_t max_raw() const {
    return (raw_t{1} << (width - 1)) - 1;
  }
  constexpr raw_t min_raw() const { return -(raw_t{1} << (width - 1)); }
  constexpr double resolution() const {
    return 1.0 / static_cast<double>(raw_t{1} << frac);
  }
  constexpr double max_value() const {
    return static_cast<double>(max_raw()) * resolution();
  }
  constexpr double min_value() const {
    return static_cast<double>(min_raw()) * resolution();
  }

  friend constexpr bool operator==(const Format&, const Format&) = default;
};

/// Q-value / reward storage format: s9.8 in an 18-bit lane.
inline constexpr Format kQFormat{18, 8};
/// Coefficient format for alpha, gamma, alpha*gamma, 1-alpha: s1.16.
inline constexpr Format kCoeffFormat{18, 16};

/// "q9.8" style human-readable name.
std::string to_string(Format f);

/// Validates a format (2 <= width <= 48, frac < width). Aborts otherwise.
/// Inline (along with the arithmetic below): these run once per simulated
/// DSP operation, in the innermost loop of both backends, and the
/// cross-TU call overhead dominated profiles before they lived here.
inline void validate(Format f) {
  QTA_CHECK_MSG(f.width >= 2 && f.width <= 48,
                "fixed-point width must be in [2, 48]");
  QTA_CHECK_MSG(f.frac < f.width, "fractional bits must leave a sign bit");
}

/// Clamps a raw value into the representable range of `f`. Returns the
/// clamped value; `saturated` (if non-null) is set when clamping occurred.
inline raw_t saturate(raw_t v, Format f, bool* saturated = nullptr) {
  const raw_t lo = f.min_raw();
  const raw_t hi = f.max_raw();
  if (v < lo) {
    if (saturated) *saturated = true;
    return lo;
  }
  if (v > hi) {
    if (saturated) *saturated = true;
    return hi;
  }
  return v;
}

/// Quantizes a double to format `f` with round-half-away-from-zero and
/// saturation.
raw_t from_double(double v, Format f);

/// Exact value of a raw number in format `f`.
double to_double(raw_t v, Format f);

/// Saturating addition of two values in the same format.
inline raw_t sat_add(raw_t a, raw_t b, Format f,
                     bool* saturated = nullptr) {
  return saturate(a + b, f, saturated);
}

/// Saturating subtraction in the same format.
inline raw_t sat_sub(raw_t a, raw_t b, Format f,
                     bool* saturated = nullptr) {
  return saturate(a - b, f, saturated);
}

/// Arithmetic right shift with round-half-away-from-zero — the division
/// by a power of two the hardware uses for row means (adder tree output
/// >> log2|A|).
inline raw_t rshift_round(raw_t v, unsigned shift) {
  if (shift == 0) return v;
  QTA_CHECK(shift < 63);
  const raw_t half = raw_t{1} << (shift - 1);
  if (v >= 0) return (v + half) >> shift;
  // For negatives, mirror the positive case so rounding is symmetric.
  return -((-v + half) >> shift);
}

/// DSP multiply: a (format fa) times b (format fb), rescaled into `out`
/// with rounding and saturation. This is one DSP48 in the resource model.
inline raw_t mul(raw_t a, Format fa, raw_t b, Format fb, Format out,
                 bool* saturated = nullptr) {
  validate(fa);
  validate(fb);
  validate(out);
  QTA_CHECK_MSG(fa.width + fb.width <= 62,
                "product would overflow the 64-bit accumulator");
  const raw_t product = a * b;  // frac bits: fa.frac + fb.frac
  const unsigned pfrac = fa.frac + fb.frac;
  raw_t rescaled;
  if (pfrac >= out.frac) {
    rescaled = rshift_round(product, pfrac - out.frac);
  } else {
    rescaled = product << (out.frac - pfrac);
  }
  return saturate(rescaled, out, saturated);
}

/// Re-quantize a value from format `from` into format `to` (round+saturate).
inline raw_t convert(raw_t v, Format from, Format to,
                     bool* saturated = nullptr) {
  validate(from);
  validate(to);
  raw_t rescaled;
  if (from.frac >= to.frac) {
    rescaled = rshift_round(v, from.frac - to.frac);
  } else {
    rescaled = v << (to.frac - from.frac);
  }
  return saturate(rescaled, to, saturated);
}

/// Convenience wrapper pairing a raw value with its format, used at module
/// boundaries and in tests where mixing formats would be error-prone.
struct Value {
  raw_t raw = 0;
  Format fmt = kQFormat;

  static Value of(double v, Format f) { return {from_double(v, f), f}; }
  double as_double() const { return to_double(raw, fmt); }
};

}  // namespace qta::fixed

// qtlint: allow-file(datapath-purity)
// Sanctioned host<->datapath conversion boundary (see fixed_point.h).
#include "fixed/fixed_point.h"

#include <cmath>

#include "common/check.h"

namespace qta::fixed {

std::string to_string(Format f) {
  return "s" + std::to_string(f.int_bits()) + "." + std::to_string(f.frac) +
         " (" + std::to_string(f.width) + "b)";
}

void validate(Format f) {
  QTA_CHECK_MSG(f.width >= 2 && f.width <= 48,
                "fixed-point width must be in [2, 48]");
  QTA_CHECK_MSG(f.frac < f.width, "fractional bits must leave a sign bit");
}

raw_t saturate(raw_t v, Format f, bool* saturated) {
  const raw_t lo = f.min_raw();
  const raw_t hi = f.max_raw();
  if (v < lo) {
    if (saturated) *saturated = true;
    return lo;
  }
  if (v > hi) {
    if (saturated) *saturated = true;
    return hi;
  }
  return v;
}

raw_t from_double(double v, Format f) {
  validate(f);
  const double scaled = v * static_cast<double>(raw_t{1} << f.frac);
  // Round half away from zero, matching the adder-based FPGA rounder.
  const double rounded = scaled >= 0.0 ? std::floor(scaled + 0.5)
                                       : std::ceil(scaled - 0.5);
  if (rounded >= static_cast<double>(f.max_raw())) return f.max_raw();
  if (rounded <= static_cast<double>(f.min_raw())) return f.min_raw();
  return static_cast<raw_t>(rounded);
}

double to_double(raw_t v, Format f) {
  return static_cast<double>(v) / static_cast<double>(raw_t{1} << f.frac);
}

raw_t sat_add(raw_t a, raw_t b, Format f, bool* saturated) {
  return saturate(a + b, f, saturated);
}

raw_t sat_sub(raw_t a, raw_t b, Format f, bool* saturated) {
  return saturate(a - b, f, saturated);
}

raw_t rshift_round(raw_t v, unsigned shift) {
  if (shift == 0) return v;
  QTA_CHECK(shift < 63);
  const raw_t half = raw_t{1} << (shift - 1);
  if (v >= 0) return (v + half) >> shift;
  // For negatives, mirror the positive case so rounding is symmetric.
  return -((-v + half) >> shift);
}

namespace {
raw_t round_shift(raw_t v, unsigned shift) { return rshift_round(v, shift); }
}  // namespace

raw_t mul(raw_t a, Format fa, raw_t b, Format fb, Format out,
          bool* saturated) {
  validate(fa);
  validate(fb);
  validate(out);
  QTA_CHECK_MSG(fa.width + fb.width <= 62,
                "product would overflow the 64-bit accumulator");
  const raw_t product = a * b;  // frac bits: fa.frac + fb.frac
  const unsigned pfrac = fa.frac + fb.frac;
  raw_t rescaled;
  if (pfrac >= out.frac) {
    rescaled = round_shift(product, pfrac - out.frac);
  } else {
    rescaled = product << (out.frac - pfrac);
  }
  return saturate(rescaled, out, saturated);
}

raw_t convert(raw_t v, Format from, Format to, bool* saturated) {
  validate(from);
  validate(to);
  raw_t rescaled;
  if (from.frac >= to.frac) {
    rescaled = round_shift(v, from.frac - to.frac);
  } else {
    rescaled = v << (to.frac - from.frac);
  }
  return saturate(rescaled, to, saturated);
}

}  // namespace qta::fixed

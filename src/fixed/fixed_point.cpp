// qtlint: allow-file(datapath-purity)
// Sanctioned host<->datapath conversion boundary (see fixed_point.h).
// The per-operation arithmetic (saturate/mul/sat_add/...) lives inline in
// the header — it is the simulators' innermost loop; only the
// double-touching conversions and the name formatting stay out-of-line.
#include "fixed/fixed_point.h"

#include <cmath>

#include "common/check.h"

namespace qta::fixed {

std::string to_string(Format f) {
  return "s" + std::to_string(f.int_bits()) + "." + std::to_string(f.frac) +
         " (" + std::to_string(f.width) + "b)";
}

raw_t from_double(double v, Format f) {
  validate(f);
  const double scaled = v * static_cast<double>(raw_t{1} << f.frac);
  // Round half away from zero, matching the adder-based FPGA rounder.
  const double rounded = scaled >= 0.0 ? std::floor(scaled + 0.5)
                                       : std::ceil(scaled - 0.5);
  if (rounded >= static_cast<double>(f.max_raw())) return f.max_raw();
  if (rounded <= static_cast<double>(f.min_raw())) return f.min_raw();
  return static_cast<raw_t>(rounded);
}

double to_double(raw_t v, Format f) {
  return static_cast<double>(v) / static_cast<double>(raw_t{1} << f.frac);
}

}  // namespace qta::fixed

#include "baseline/fsm_accelerator.h"

#include "common/check.h"
#include "device/calibration.h"

namespace qta::baseline {

namespace dc = qta::device::cal;

std::uint64_t FsmAcceleratorModel::multipliers(StateId states,
                                               ActionId actions) {
  return static_cast<std::uint64_t>(states) * actions *
         dc::kBaselineMultipliersPerPair;
}

hw::ResourceLedger FsmAcceleratorModel::resources(StateId states,
                                                  ActionId actions) {
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(states) * actions;
  hw::ResourceLedger ledger;
  ledger.add_dsp(static_cast<unsigned>(multipliers(states, actions)),
                 "per-pair update multipliers");
  ledger.add_flip_flops(
      static_cast<unsigned>(pairs * dc::kBaselineFfPerPair),
      "per-pair FSM registers (Q value held in flip-flops)");
  ledger.add_luts(static_cast<unsigned>(pairs * dc::kBaselineLutsPerPair),
                  "per-pair FSM + comparator tree");
  return ledger;
}

bool FsmAcceleratorModel::fits(const device::Device& dev, StateId states,
                               ActionId actions) {
  const hw::ResourceLedger r = resources(states, actions);
  return r.dsp() <= dev.dsp_slices && r.flip_flops() <= dev.flip_flops &&
         r.luts() <= dev.luts;
}

StateId FsmAcceleratorModel::max_states(const device::Device& dev,
                                        ActionId actions) {
  QTA_CHECK(actions >= 1);
  // All three budgets are linear in the state count; binary search the
  // largest fitting value.
  StateId lo = 1, hi = 1u << 24;
  if (!fits(dev, lo, actions)) return 0;
  while (lo + 1 < hi) {
    const StateId mid = lo + (hi - lo) / 2;
    (fits(dev, mid, actions) ? lo : hi) = mid;
  }
  return lo;
}

double FsmAcceleratorModel::throughput_sps() {
  return dc::kBaselineThroughputSps;
}

double FsmAcceleratorModel::wasted_multiplier_fraction(StateId states,
                                                       ActionId actions) {
  const double pairs =
      static_cast<double>(states) * static_cast<double>(actions);
  return (pairs - 1.0) / pairs;
}

}  // namespace qta::baseline

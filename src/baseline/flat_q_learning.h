// Flat-array CPU Q-learning: the fair "well-optimized software" baseline.
// Same algorithm and loop structure as DictQLearning but with the table in
// one contiguous array indexed by (state * |A| + action). Used by the
// CPU-layout ablation to separate dictionary overhead from fundamental
// CPU limits in the Table II comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/dict_q_learning.h"  // CpuRunResult
#include "common/types.h"
#include "env/environment.h"

namespace qta::baseline {

class FlatQLearning {
 public:
  FlatQLearning(const env::Environment& env, double alpha, double gamma,
                std::uint64_t seed);

  CpuRunResult run(std::uint64_t samples);

  double q(StateId s, ActionId a) const;
  const std::vector<double>& table() const { return q_; }

 private:
  const env::Environment& env_;
  double alpha_;
  double gamma_;
  std::uint64_t seed_;
  std::vector<double> q_;
};

}  // namespace qta::baseline

#include "baseline/dict_q_learning.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"
#include "rng/xoshiro.h"

namespace qta::baseline {

DictQLearning::DictQLearning(const env::Environment& env, double alpha,
                             double gamma, std::uint64_t seed)
    : env_(env), alpha_(alpha), gamma_(gamma), seed_(seed) {
  QTA_CHECK(alpha > 0.0 && alpha <= 1.0);
  QTA_CHECK(gamma >= 0.0 && gamma < 1.0);
}

DictQLearning::ActionDict& DictQLearning::row(StateId s) {
  auto [it, inserted] = q_.try_emplace(s);
  if (inserted) {
    for (ActionId a = 0; a < env_.num_actions(); ++a) it->second[a] = 0.0;
  }
  return it->second;
}

double DictQLearning::q(StateId s, ActionId a) const {
  const auto sit = q_.find(s);
  if (sit == q_.end()) return 0.0;
  const auto ait = sit->second.find(a);
  return ait == sit->second.end() ? 0.0 : ait->second;
}

CpuRunResult DictQLearning::run(std::uint64_t samples) {
  rng::Xoshiro256 rng(seed_);
  auto random_start = [&] {
    StateId s;
    do {
      s = static_cast<StateId>(rng.below(env_.num_states()));
    } while (env_.is_terminal(s));
    return s;
  };

  CpuRunResult result;
  Stopwatch watch;
  StateId s = random_start();
  for (std::uint64_t i = 0; i < samples; ++i) {
    const auto a = static_cast<ActionId>(rng.below(env_.num_actions()));
    const double r = env_.reward(s, a);
    const StateId sn = env_.transition(s, a);
    double future = 0.0;
    if (!env_.is_terminal(sn)) {
      const ActionDict& next_row = row(sn);
      double mx = -1e300;
      for (const auto& [act, val] : next_row) {
        (void)act;
        mx = std::max(mx, val);
      }
      future = mx;
    }
    double& cell = row(s)[a];
    cell += alpha_ * (r + gamma_ * future - cell);
    if (env_.is_terminal(sn)) {
      ++result.episodes;
      s = random_start();
    } else {
      s = sn;
    }
  }
  result.samples = samples;
  result.seconds = watch.seconds();
  result.samples_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(samples) / result.seconds
          : 0.0;
  return result;
}

}  // namespace qta::baseline

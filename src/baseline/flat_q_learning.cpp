#include "baseline/flat_q_learning.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"
#include "rng/xoshiro.h"

namespace qta::baseline {

FlatQLearning::FlatQLearning(const env::Environment& env, double alpha,
                             double gamma, std::uint64_t seed)
    : env_(env), alpha_(alpha), gamma_(gamma), seed_(seed) {
  QTA_CHECK(alpha > 0.0 && alpha <= 1.0);
  QTA_CHECK(gamma >= 0.0 && gamma < 1.0);
  q_.assign(env.table_size(), 0.0);
}

double FlatQLearning::q(StateId s, ActionId a) const {
  return q_[static_cast<std::size_t>(s) * env_.num_actions() + a];
}

CpuRunResult FlatQLearning::run(std::uint64_t samples) {
  rng::Xoshiro256 rng(seed_);
  const ActionId na = env_.num_actions();
  auto random_start = [&] {
    StateId s;
    do {
      s = static_cast<StateId>(rng.below(env_.num_states()));
    } while (env_.is_terminal(s));
    return s;
  };

  CpuRunResult result;
  Stopwatch watch;
  StateId s = random_start();
  for (std::uint64_t i = 0; i < samples; ++i) {
    const auto a = static_cast<ActionId>(rng.below(na));
    const double r = env_.reward(s, a);
    const StateId sn = env_.transition(s, a);
    double future = 0.0;
    if (!env_.is_terminal(sn)) {
      const double* nrow = q_.data() + static_cast<std::size_t>(sn) * na;
      future = *std::max_element(nrow, nrow + na);
    }
    double& cell = q_[static_cast<std::size_t>(s) * na + a];
    cell += alpha_ * (r + gamma_ * future - cell);
    if (env_.is_terminal(sn)) {
      ++result.episodes;
      s = random_start();
    } else {
      s = sn;
    }
  }
  result.samples = samples;
  result.seconds = watch.seconds();
  result.samples_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(samples) / result.seconds
          : 0.0;
  return result;
}

}  // namespace qta::baseline

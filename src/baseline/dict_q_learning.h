// The paper's CPU baseline (Section VI-E): "a python program in which the
// Q values are stored in a nested dictionary and are indexed by state
// coordinates tuples and actions".
//
// This is the same data layout in C++: an outer hash map keyed by the
// state, holding an inner hash map keyed by the action. The layout is the
// point — every update takes two hash lookups for Q(S,A), |A| more for
// max_a Q(S',a), and the table scatters across the heap so large state
// spaces fall out of cache, which is exactly the degradation Table II
// shows. (C++ removes CPython's interpreter overhead, so absolute numbers
// are far higher than the paper's ~100 KS/s; EXPERIMENTS.md records both.)
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "env/environment.h"

namespace qta::baseline {

struct CpuRunResult {
  std::uint64_t samples = 0;
  std::uint64_t episodes = 0;
  double seconds = 0.0;
  double samples_per_sec = 0.0;
};

class DictQLearning {
 public:
  DictQLearning(const env::Environment& env, double alpha, double gamma,
                std::uint64_t seed);

  /// Runs `samples` Q-learning updates (random behavior policy, greedy
  /// update policy, random restarts at terminals) and measures throughput.
  CpuRunResult run(std::uint64_t samples);

  double q(StateId s, ActionId a) const;

 private:
  using ActionDict = std::unordered_map<ActionId, double>;
  /// Returns the row for `s`, creating all |A| entries on first touch
  /// (defaultdict-style).
  ActionDict& row(StateId s);

  const env::Environment& env_;
  double alpha_;
  double gamma_;
  std::uint64_t seed_;
  std::unordered_map<StateId, ActionDict> q_;
};

}  // namespace qta::baseline

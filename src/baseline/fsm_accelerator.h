// Resource/behaviour model of the prior-art FPGA Q-learning accelerator
// of da Silva et al. [11] — the Figure 7 comparison target.
//
// Their design instantiates one update finite-state machine per
// state-action pair, so multipliers (DSP slices) grow with |S|*|A|; the
// paper's anchor is that 132 states x 4 actions "fully utilized the DSP
// and logic" of a Virtex-6 class device. Only one pair updates per
// iteration, so all other FSMs idle — the wasted-work fraction the paper
// calls out. Constants live in device/calibration.h.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "device/device.h"
#include "hw/resource_ledger.h"

namespace qta::baseline {

struct FsmAcceleratorModel {
  /// Multipliers required for an |S| x |A| problem (2 per pair).
  static std::uint64_t multipliers(StateId states, ActionId actions);

  /// Full ledger (DSP + per-pair FSM logic + the comparator tree).
  static hw::ResourceLedger resources(StateId states, ActionId actions);

  /// True if the design fits the device's DSP/LUT/FF budget.
  static bool fits(const device::Device& dev, StateId states,
                   ActionId actions);

  /// Largest number of states (at `actions` actions) that fits `dev` —
  /// the scalability limit QTAccel's Section VI-F compares against.
  static StateId max_states(const device::Device& dev, ActionId actions);

  /// Reported throughput of the design (samples/s, device-independent
  /// calibration constant from the paper's "more than 15X" claim).
  static double throughput_sps();

  /// Fraction of instantiated multipliers idle in any given update:
  /// (pairs - 1) / pairs.
  static double wasted_multiplier_fraction(StateId states,
                                           ActionId actions);
};

}  // namespace qta::baseline

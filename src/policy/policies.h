// Action-selection policies (Section III-B / V of the paper).
//
// Policies are defined against a row of action values and a bit source, so
// the same definitions serve the software reference algorithms (with a
// host RNG) and tests of the hardware action units (with an LFSR). The
// epsilon-greedy implementation follows the paper's *hardware* semantics:
// draw an N-bit random number r; if r < (1 - eps) * 2^N pick the greedy
// action, otherwise use the low bits of r to index ANY action uniformly
// (including, possibly, the greedy one) — "as we know the range beforehand,
// we can use the random number to directly index one of the Q-values".
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/types.h"
#include "fixed/exp_lut.h"
#include "rng/lfsr.h"
#include "rng/xoshiro.h"

namespace qta::policy {

/// Uniform random-bit source abstraction so policies can run from either a
/// hardware LFSR or a host RNG.
class RandomSource {
 public:
  virtual ~RandomSource() = default;
  virtual std::uint64_t draw_bits(unsigned n) = 0;

  /// Uniform in [0, bound) via the hardware multiply trick (slightly
  /// biased, identical across sources for reproducibility).
  std::uint64_t below(std::uint64_t bound);
};

class LfsrSource final : public RandomSource {
 public:
  explicit LfsrSource(rng::Lfsr lfsr) : lfsr_(lfsr) {}
  std::uint64_t draw_bits(unsigned n) override { return lfsr_.draw_bits(n); }
  rng::Lfsr& lfsr() { return lfsr_; }

 private:
  rng::Lfsr lfsr_;
};

class XoshiroSource final : public RandomSource {
 public:
  explicit XoshiroSource(std::uint64_t seed) : rng_(seed) {}
  std::uint64_t draw_bits(unsigned n) override;

 private:
  rng::Xoshiro256 rng_;
};

/// Greedy argmax with lowest-index tie-breaking (matches the hardware
/// comparator chain, which keeps the earlier entry on ties).
ActionId greedy_action(std::span<const double> q_row);

/// Uniform random action.
ActionId random_action(std::span<const double> q_row, RandomSource& rng);

/// Hardware-style epsilon-greedy (see file comment). `bits` is the width
/// of the hardware comparison (paper: an N-bit LFSR draw).
ActionId epsilon_greedy_action(std::span<const double> q_row, double epsilon,
                               RandomSource& rng, unsigned bits = 16);

/// Boltzmann (softmax) selection with temperature T: P(a) proportional to
/// exp(Q(a)/T). When `lut` is provided the exponentials go through the
/// quantized hardware LUT.
ActionId boltzmann_action(std::span<const double> q_row, double temperature,
                          RandomSource& rng,
                          const fixed::ExpLut* lut = nullptr);

/// Abstract policy object used by the software reference algorithms.
class ActionPolicy {
 public:
  virtual ~ActionPolicy() = default;
  virtual ActionId select(std::span<const double> q_row,
                          RandomSource& rng) const = 0;
};

class RandomPolicy final : public ActionPolicy {
 public:
  ActionId select(std::span<const double> q_row,
                  RandomSource& rng) const override;
};

class GreedyPolicy final : public ActionPolicy {
 public:
  ActionId select(std::span<const double> q_row,
                  RandomSource& rng) const override;
};

class EpsilonGreedyPolicy final : public ActionPolicy {
 public:
  explicit EpsilonGreedyPolicy(double epsilon, unsigned bits = 16);
  ActionId select(std::span<const double> q_row,
                  RandomSource& rng) const override;
  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  unsigned bits_;
};

class BoltzmannPolicy final : public ActionPolicy {
 public:
  explicit BoltzmannPolicy(double temperature,
                           const fixed::ExpLut* lut = nullptr);
  ActionId select(std::span<const double> q_row,
                  RandomSource& rng) const override;

 private:
  double temperature_;
  const fixed::ExpLut* lut_;
};

}  // namespace qta::policy

#include "policy/policies.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace qta::policy {

std::uint64_t RandomSource::below(std::uint64_t bound) {
  QTA_CHECK(bound >= 1);
  if (bound == 1) return 0;
  __extension__ typedef unsigned __int128 u128;
  const std::uint64_t draw = draw_bits(32);
  return static_cast<std::uint64_t>((static_cast<u128>(draw) * bound) >> 32);
}

std::uint64_t XoshiroSource::draw_bits(unsigned n) {
  QTA_CHECK(n >= 1 && n <= 64);
  return n == 64 ? rng_.next() : (rng_.next() >> (64 - n));
}

ActionId greedy_action(std::span<const double> q_row) {
  QTA_CHECK(!q_row.empty());
  ActionId best = 0;
  for (ActionId a = 1; a < q_row.size(); ++a) {
    if (q_row[a] > q_row[best]) best = a;
  }
  return best;
}

ActionId random_action(std::span<const double> q_row, RandomSource& rng) {
  QTA_CHECK(!q_row.empty());
  return static_cast<ActionId>(rng.below(q_row.size()));
}

ActionId epsilon_greedy_action(std::span<const double> q_row, double epsilon,
                               RandomSource& rng, unsigned bits) {
  QTA_CHECK(epsilon >= 0.0 && epsilon <= 1.0);
  QTA_CHECK(bits >= 2 && bits <= 32);
  const std::uint64_t draw = rng.draw_bits(bits);
  const auto threshold = static_cast<std::uint64_t>(
      (1.0 - epsilon) * static_cast<double>(std::uint64_t{1} << bits));
  if (draw < threshold) return greedy_action(q_row);
  // Explore: index any action directly from the low random bits.
  return static_cast<ActionId>(draw % q_row.size());
}

ActionId boltzmann_action(std::span<const double> q_row, double temperature,
                          RandomSource& rng, const fixed::ExpLut* lut) {
  QTA_CHECK(temperature > 0.0);
  QTA_CHECK(!q_row.empty());
  // Stabilize by subtracting the max before exponentiation (the hardware
  // LUT domain is clamped the same way).
  double qmax = q_row[0];
  for (double q : q_row) qmax = std::max(qmax, q);
  double total = 0.0;
  std::vector<double> weights(q_row.size());
  for (std::size_t a = 0; a < q_row.size(); ++a) {
    const double x = (q_row[a] - qmax) / temperature;
    weights[a] = lut ? lut->eval_double(x) : std::exp(x);
    total += weights[a];
  }
  // 32-bit draw mapped into [0, total).
  const double u = static_cast<double>(rng.draw_bits(32)) /
                   static_cast<double>(std::uint64_t{1} << 32) * total;
  double acc = 0.0;
  for (std::size_t a = 0; a < weights.size(); ++a) {
    acc += weights[a];
    if (u < acc) return static_cast<ActionId>(a);
  }
  return static_cast<ActionId>(weights.size() - 1);
}

ActionId RandomPolicy::select(std::span<const double> q_row,
                              RandomSource& rng) const {
  return random_action(q_row, rng);
}

ActionId GreedyPolicy::select(std::span<const double> q_row,
                              RandomSource& rng) const {
  (void)rng;
  return greedy_action(q_row);
}

EpsilonGreedyPolicy::EpsilonGreedyPolicy(double epsilon, unsigned bits)
    : epsilon_(epsilon), bits_(bits) {
  QTA_CHECK(epsilon >= 0.0 && epsilon <= 1.0);
}

ActionId EpsilonGreedyPolicy::select(std::span<const double> q_row,
                                     RandomSource& rng) const {
  return epsilon_greedy_action(q_row, epsilon_, rng, bits_);
}

BoltzmannPolicy::BoltzmannPolicy(double temperature, const fixed::ExpLut* lut)
    : temperature_(temperature), lut_(lut) {
  QTA_CHECK(temperature > 0.0);
}

ActionId BoltzmannPolicy::select(std::span<const double> q_row,
                                 RandomSource& rng) const {
  return boltzmann_action(q_row, temperature_, rng, lut_);
}

}  // namespace qta::policy

#include "policy/exp3.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qta::policy {

Exp3::Exp3(unsigned num_arms, double gamma, const fixed::ExpLut* lut)
    : w_(num_arms, 1.0), gamma_(gamma), lut_(lut) {
  QTA_CHECK(num_arms >= 2);
  QTA_CHECK(gamma >= 0.0 && gamma <= 1.0);
}

double Exp3::probability(unsigned m) const {
  QTA_CHECK(m < w_.size());
  double sum = 0.0;
  for (double w : w_) sum += w;
  const auto arms = static_cast<double>(w_.size());
  return (1.0 - gamma_) * w_[m] / sum + gamma_ / arms;
}

unsigned Exp3::select(RandomSource& rng) const {
  double sum = 0.0;
  for (double w : w_) sum += w;
  const double u = static_cast<double>(rng.draw_bits(32)) /
                   static_cast<double>(std::uint64_t{1} << 32);
  // Sample from the mixture: with prob gamma uniform, else weights.
  const auto arms = static_cast<double>(w_.size());
  double acc = 0.0;
  for (unsigned m = 0; m < w_.size(); ++m) {
    acc += (1.0 - gamma_) * w_[m] / sum + gamma_ / arms;
    if (u < acc) return m;
  }
  return static_cast<unsigned>(w_.size() - 1);
}

void Exp3::update(unsigned m, double reward) {
  QTA_CHECK(m < w_.size());
  QTA_CHECK_MSG(reward >= 0.0 && reward <= 1.0,
                "EXP3 rewards must be scaled into [0, 1]");
  const double p = probability(m);
  const double rhat = reward / p;
  const double x = gamma_ * rhat / static_cast<double>(w_.size());
  w_[m] *= lut_ ? lut_->eval_double(x) : std::exp(x);
  renormalize_if_needed();
}

void Exp3::renormalize_if_needed() {
  // Keep weights in a numerically healthy range (the hardware keeps them
  // in fixed point and renormalizes by shifting; dividing by the max is
  // the float equivalent).
  double wmax = 0.0;
  for (double w : w_) wmax = std::max(wmax, w);
  if (wmax > 1e12) {
    for (double& w : w_) w /= wmax;
  }
}

}  // namespace qta::policy

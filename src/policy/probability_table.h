// Probability-distribution-based action selection (Section VII-B):
// "a policy in a RL algorithm is a probability distribution on the actions
// conditional on the current state ... we use a table P which stores the
// probability value for each state-action pair. Based on a random number
// generated in [0, sum f(S_j, a_i)], a binary search can provide the
// selected action in log n_i cycles."
//
// The table stores per-state UNNORMALIZED weights f(s, a); selection draws
// u uniform in [0, row_sum) and binary-searches the prefix sums. The cycle
// cost (1 + ceil(log2 |A|)) is reported so the pipeline model can account
// for the stall the paper's "limited stalls" remark refers to.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "policy/policies.h"

namespace qta::policy {

class ProbabilityTable {
 public:
  /// All weights start uniform (1.0).
  ProbabilityTable(StateId num_states, ActionId num_actions);

  double weight(StateId s, ActionId a) const;
  void set_weight(StateId s, ActionId a, double w);

  /// Multiplicative update (the EXP3-style "final stage" update).
  void scale_weight(StateId s, ActionId a, double factor);

  double row_sum(StateId s) const;

  /// Normalized probability P(a | s).
  double probability(StateId s, ActionId a) const;

  /// Selection result including the simulated cycle cost of the
  /// binary search over prefix sums.
  struct Selection {
    ActionId action = 0;
    unsigned cycles = 1;
    unsigned comparisons = 0;
  };
  Selection select(StateId s, RandomSource& rng) const;

  StateId num_states() const { return num_states_; }
  ActionId num_actions() const { return num_actions_; }

  /// BRAM bits required to hold the table (18-bit lanes, like Q/R).
  std::uint64_t storage_bits(unsigned width = 18) const {
    return static_cast<std::uint64_t>(num_states_) * num_actions_ * width;
  }

 private:
  std::size_t index(StateId s, ActionId a) const;

  StateId num_states_;
  ActionId num_actions_;
  std::vector<double> weights_;
};

}  // namespace qta::policy

// EXP3 (Exponential-weight algorithm for Exploration and Exploitation) —
// the paper's worked example of a stateless bandit on QTAccel (Section
// VII-B, equation 5):
//     P(m) = (1 - gamma) * Q(m) / sum_m' Q(m') + gamma / M
// where Q(m) is an exponential function of the rewards received for arm m.
//
// Weight update after receiving reward r for the chosen arm m:
//     rhat = r / P(m)                (importance-weighted reward)
//     Q(m) *= exp(gamma * rhat / M)
// Exponentials optionally go through the quantized hardware LUT.
#pragma once

#include <cstdint>
#include <vector>

#include "fixed/exp_lut.h"
#include "policy/policies.h"

namespace qta::policy {

class Exp3 {
 public:
  /// `gamma` in [0, 1] is the exploration constant; rewards must be scaled
  /// into [0, 1] by the caller (standard EXP3 requirement).
  Exp3(unsigned num_arms, double gamma, const fixed::ExpLut* lut = nullptr);

  /// Current mixed distribution P(m).
  double probability(unsigned m) const;

  /// Samples an arm from P.
  unsigned select(RandomSource& rng) const;

  /// Updates the chosen arm's weight with its reward in [0, 1].
  void update(unsigned m, double reward);

  unsigned num_arms() const { return static_cast<unsigned>(w_.size()); }
  double weight(unsigned m) const { return w_[m]; }
  double gamma() const { return gamma_; }

 private:
  void renormalize_if_needed();

  std::vector<double> w_;
  double gamma_;
  const fixed::ExpLut* lut_;
};

}  // namespace qta::policy

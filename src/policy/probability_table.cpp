#include "policy/probability_table.h"

#include "common/bit_math.h"
#include "common/check.h"

namespace qta::policy {

ProbabilityTable::ProbabilityTable(StateId num_states, ActionId num_actions)
    : num_states_(num_states),
      num_actions_(num_actions),
      weights_(static_cast<std::size_t>(num_states) * num_actions, 1.0) {
  QTA_CHECK(num_states >= 1 && num_actions >= 1);
}

std::size_t ProbabilityTable::index(StateId s, ActionId a) const {
  QTA_DCHECK(s < num_states_ && a < num_actions_);
  return static_cast<std::size_t>(s) * num_actions_ + a;
}

double ProbabilityTable::weight(StateId s, ActionId a) const {
  return weights_[index(s, a)];
}

void ProbabilityTable::set_weight(StateId s, ActionId a, double w) {
  QTA_CHECK_MSG(w >= 0.0, "weights must be non-negative");
  weights_[index(s, a)] = w;
}

void ProbabilityTable::scale_weight(StateId s, ActionId a, double factor) {
  QTA_CHECK(factor >= 0.0);
  weights_[index(s, a)] *= factor;
}

double ProbabilityTable::row_sum(StateId s) const {
  double sum = 0.0;
  for (ActionId a = 0; a < num_actions_; ++a) sum += weight(s, a);
  return sum;
}

double ProbabilityTable::probability(StateId s, ActionId a) const {
  const double sum = row_sum(s);
  QTA_CHECK_MSG(sum > 0.0, "all weights in a row are zero");
  return weight(s, a) / sum;
}

ProbabilityTable::Selection ProbabilityTable::select(
    StateId s, RandomSource& rng) const {
  const double sum = row_sum(s);
  QTA_CHECK_MSG(sum > 0.0, "all weights in a row are zero");
  const double u = static_cast<double>(rng.draw_bits(32)) /
                   static_cast<double>(std::uint64_t{1} << 32) * sum;

  // Binary search over prefix sums, counting comparator steps the way the
  // hardware would pay them: one cycle to draw, ceil(log2 |A|) compares.
  Selection sel;
  ActionId lo = 0;
  ActionId hi = num_actions_;  // exclusive
  double lo_prefix = 0.0;      // sum of weights of actions < lo
  while (hi - lo > 1) {
    const ActionId mid = lo + (hi - lo) / 2;
    double mid_prefix = lo_prefix;
    for (ActionId a = lo; a < mid; ++a) mid_prefix += weight(s, a);
    ++sel.comparisons;
    if (u < mid_prefix) {
      hi = mid;
    } else {
      lo = mid;
      lo_prefix = mid_prefix;
    }
  }
  sel.action = lo;
  sel.cycles = 1 + log2_ceil(num_actions_);
  return sel;
}

}  // namespace qta::policy

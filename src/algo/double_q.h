// Double Q-Learning (van Hasselt) — maintains two tables QA/QB and updates
// a random one per step, using the other to evaluate the greedy action.
// Included as the overestimation-bias reference point for the Qmax
// ablation: the paper's monotone Qmax table biases the max operator
// upward; Double Q biases it downward; exact-max Q-Learning sits between.
#pragma once

#include "algo/tabular_learner.h"

namespace qta::algo {

struct DoubleQOptions {
  double alpha = 0.1;
  double gamma = 0.9;
};

class DoubleQLearning final : public TabularLearner {
 public:
  DoubleQLearning(const env::Environment& env, const DoubleQOptions& options);

  /// Behavior acts randomly (matching the paper's Q-Learning accelerator);
  /// the update draws one bit to pick which table learns. The base-class
  /// table q() always holds QA + QB (the acting estimate).
  Step step(StateId s, policy::RandomSource& rng) override;

  double qa_at(StateId s, ActionId a) const { return qa_[index(s, a)]; }
  double qb_at(StateId s, ActionId a) const { return qb_[index(s, a)]; }

 private:
  std::vector<double> qa_;
  std::vector<double> qb_;
};

}  // namespace qta::algo

// Reference multi-armed bandit algorithms (Section VII-B): epsilon-greedy
// with incremental value estimates, UCB1, and an EXP3 driver over the
// policy::Exp3 weights. Each exposes the same select/update interface so
// the MAB benchmark can sweep algorithms uniformly.
#pragma once

#include <cstdint>
#include <vector>

#include "env/bandit.h"
#include "policy/exp3.h"
#include "policy/policies.h"

namespace qta::algo {

class MabAlgorithm {
 public:
  virtual ~MabAlgorithm() = default;
  virtual unsigned select(policy::RandomSource& rng) = 0;
  virtual void update(unsigned arm, double reward) = 0;
  virtual const char* name() const = 0;
};

/// Epsilon-greedy with per-arm sample-average estimates (or a constant
/// step size when `alpha > 0`, matching what the QTAccel Q-update gives).
class EpsilonGreedyMab final : public MabAlgorithm {
 public:
  EpsilonGreedyMab(unsigned arms, double epsilon, double alpha = 0.0);
  unsigned select(policy::RandomSource& rng) override;
  void update(unsigned arm, double reward) override;
  const char* name() const override { return "eps-greedy"; }

  double value(unsigned arm) const { return value_[arm]; }

 private:
  double epsilon_;
  double alpha_;
  std::vector<double> value_;
  std::vector<std::uint64_t> pulls_;
};

/// UCB1 (Auer et al.): pull the arm maximizing mean + sqrt(2 ln t / n).
class Ucb1 final : public MabAlgorithm {
 public:
  explicit Ucb1(unsigned arms);
  unsigned select(policy::RandomSource& rng) override;
  void update(unsigned arm, double reward) override;
  const char* name() const override { return "ucb1"; }

 private:
  std::vector<double> value_;
  std::vector<std::uint64_t> pulls_;
  std::uint64_t t_ = 0;
};

/// EXP3 wrapper; rewards must be scaled to [0, 1] by the caller.
class Exp3Mab final : public MabAlgorithm {
 public:
  Exp3Mab(unsigned arms, double gamma,
          const fixed::ExpLut* lut = nullptr);
  unsigned select(policy::RandomSource& rng) override;
  void update(unsigned arm, double reward) override;
  const char* name() const override { return "exp3"; }

  const policy::Exp3& weights() const { return exp3_; }

 private:
  policy::Exp3 exp3_;
};

/// Runs `pulls` rounds of `algo` against `bandit`; returns final cumulative
/// regret. `reward_lo/hi` scale raw rewards into [0,1] for EXP3-style
/// algorithms (values are clamped).
double run_bandit(MabAlgorithm& algo, env::MultiArmedBandit& bandit,
                  std::uint64_t pulls, policy::RandomSource& rng,
                  double reward_lo = 0.0, double reward_hi = 1.0);

}  // namespace qta::algo

// Eligibility-trace variants: SARSA(lambda) and Watkins Q(lambda).
//
// These are the classical "faster credit propagation" extensions of the
// paper's two algorithms (Sutton & Barto ch. 12; the paper's reference
// [24] is the original SARSA(lambda) report). They serve two roles here:
//   * software reference points for the lambda ablation benchmark —
//     quantifying how much convergence speed the 1-step hardware update
//     leaves on the table;
//   * a characterization of why the paper's pipeline does NOT implement
//     them: a trace update touches every recently-visited state-action
//     pair per sample, breaking the one-BRAM-write-per-cycle budget.
//
// Replacing traces (Singh & Sutton) with a visited-list cutoff keeps the
// per-step cost bounded: entries below `trace_cutoff` are dropped.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/tabular_learner.h"

namespace qta::algo {

struct LambdaOptions {
  double alpha = 0.1;
  double gamma = 0.9;
  double lambda = 0.8;
  double epsilon = 0.1;        // behavior exploration (epsilon-greedy)
  double trace_cutoff = 1e-4;  // drop traces below this
};

class SarsaLambda final : public TabularLearner {
 public:
  SarsaLambda(const env::Environment& env, const LambdaOptions& options);

  Step step(StateId s, policy::RandomSource& rng) override;
  void begin_episode() override;

  /// Number of active (above-cutoff) eligibility entries, an upper bound
  /// on the per-step table writes a hardware realization would need.
  std::size_t active_traces() const { return active_.size(); }

 private:
  ActionId select(StateId s, policy::RandomSource& rng) const;
  void decay_and_apply(double delta, double decay);

  LambdaOptions options_;
  std::vector<double> trace_;          // |S| x |A|, replacing traces
  std::vector<std::size_t> active_;    // indices with nonzero trace
  ActionId pending_action_ = kInvalidAction;
};

/// Watkins Q(lambda): off-policy; traces are CUT whenever the behavior
/// action deviates from the greedy action (the bootstrap beyond a
/// non-greedy step would be off-policy-invalid).
class WatkinsQLambda final : public TabularLearner {
 public:
  WatkinsQLambda(const env::Environment& env, const LambdaOptions& options);

  Step step(StateId s, policy::RandomSource& rng) override;
  void begin_episode() override;

  std::size_t active_traces() const { return active_.size(); }
  std::uint64_t trace_cuts() const { return cuts_; }

 private:
  void decay_and_apply(double delta, double decay);
  void clear_traces();

  LambdaOptions options_;
  std::vector<double> trace_;
  std::vector<std::size_t> active_;
  std::uint64_t cuts_ = 0;
};

}  // namespace qta::algo

#include "algo/mab_algorithms.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qta::algo {

EpsilonGreedyMab::EpsilonGreedyMab(unsigned arms, double epsilon,
                                   double alpha)
    : epsilon_(epsilon), alpha_(alpha), value_(arms, 0.0), pulls_(arms, 0) {
  QTA_CHECK(arms >= 2);
  QTA_CHECK(epsilon >= 0.0 && epsilon <= 1.0);
  QTA_CHECK(alpha >= 0.0 && alpha <= 1.0);
}

unsigned EpsilonGreedyMab::select(policy::RandomSource& rng) {
  return static_cast<unsigned>(policy::epsilon_greedy_action(
      {value_.data(), value_.size()}, epsilon_, rng));
}

void EpsilonGreedyMab::update(unsigned arm, double reward) {
  QTA_CHECK(arm < value_.size());
  ++pulls_[arm];
  const double step = alpha_ > 0.0
                          ? alpha_
                          : 1.0 / static_cast<double>(pulls_[arm]);
  value_[arm] += step * (reward - value_[arm]);
}

Ucb1::Ucb1(unsigned arms) : value_(arms, 0.0), pulls_(arms, 0) {
  QTA_CHECK(arms >= 2);
}

unsigned Ucb1::select(policy::RandomSource& rng) {
  (void)rng;  // UCB1 is deterministic given its history
  // First sweep every arm once.
  for (unsigned m = 0; m < pulls_.size(); ++m) {
    if (pulls_[m] == 0) return m;
  }
  unsigned best = 0;
  double best_score = -1e300;
  const double lnt = std::log(static_cast<double>(t_));
  for (unsigned m = 0; m < value_.size(); ++m) {
    const double bonus =
        std::sqrt(2.0 * lnt / static_cast<double>(pulls_[m]));
    const double score = value_[m] + bonus;
    if (score > best_score) {
      best_score = score;
      best = m;
    }
  }
  return best;
}

void Ucb1::update(unsigned arm, double reward) {
  QTA_CHECK(arm < value_.size());
  ++t_;
  ++pulls_[arm];
  value_[arm] +=
      (reward - value_[arm]) / static_cast<double>(pulls_[arm]);
}

Exp3Mab::Exp3Mab(unsigned arms, double gamma, const fixed::ExpLut* lut)
    : exp3_(arms, gamma, lut) {}

unsigned Exp3Mab::select(policy::RandomSource& rng) {
  return exp3_.select(rng);
}

void Exp3Mab::update(unsigned arm, double reward) {
  exp3_.update(arm, reward);
}

double run_bandit(MabAlgorithm& algo, env::MultiArmedBandit& bandit,
                  std::uint64_t pulls, policy::RandomSource& rng,
                  double reward_lo, double reward_hi) {
  QTA_CHECK(reward_hi > reward_lo);
  for (std::uint64_t t = 0; t < pulls; ++t) {
    const unsigned arm = algo.select(rng);
    const double raw = bandit.pull(arm);
    const double scaled =
        std::clamp((raw - reward_lo) / (reward_hi - reward_lo), 0.0, 1.0);
    algo.update(arm, scaled);
  }
  return bandit.cumulative_regret();
}

}  // namespace qta::algo

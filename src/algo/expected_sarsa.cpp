#include "algo/expected_sarsa.h"

#include <algorithm>

#include "common/check.h"

namespace qta::algo {

ExpectedSarsa::ExpectedSarsa(const env::Environment& env,
                             const ExpectedSarsaOptions& options)
    : TabularLearner(env, options.alpha, options.gamma),
      options_(options),
      behavior_(options.epsilon) {}

void ExpectedSarsa::begin_episode() { pending_action_ = kInvalidAction; }

Step ExpectedSarsa::step(StateId s, policy::RandomSource& rng) {
  Step st;
  st.state = s;
  st.action = pending_action_ != kInvalidAction
                  ? pending_action_
                  : behavior_.select(q_row(s), rng);
  st.reward = env_.reward(s, st.action);
  st.next_state = env_.transition(s, st.action);
  st.terminal = env_.is_terminal(st.next_state);

  double future = 0.0;
  if (!st.terminal) {
    const auto row = q_row(st.next_state);
    const double mx = *std::max_element(row.begin(), row.end());
    double mean = 0.0;
    for (double q : row) mean += q;
    mean /= static_cast<double>(row.size());
    future = (1.0 - options_.epsilon) * mx + options_.epsilon * mean;
  }
  const double target = st.reward + gamma_ * future;
  const std::size_t i = index(s, st.action);
  q_[i] += alpha_ * (target - q_[i]);

  pending_action_ = st.terminal
                        ? kInvalidAction
                        : behavior_.select(q_row(st.next_state), rng);
  return st;
}

}  // namespace qta::algo

// SARSA (on-policy, equation 2 of the paper):
//   Q(S,A) <- Q(S,A) + alpha * (R + gamma * Q(S', A') - Q(S,A))
// where A' is the action actually taken next, selected epsilon-greedily.
//
// Because SARSA is on-policy, the action chosen for S' during the update is
// remembered and *is* the behavior action of the next step — exactly the
// forwarding path of the accelerator's stage 2 -> stage 1.
//
// `use_monotone_qmax` mirrors the hardware, where the greedy branch of the
// epsilon-greedy selector reads the monotone Qmax table (value + argmax)
// instead of scanning the row.
#pragma once

#include "algo/tabular_learner.h"

namespace qta::algo {

struct SarsaOptions {
  double alpha = 0.1;
  double gamma = 0.9;
  double epsilon = 0.1;
  unsigned epsilon_bits = 16;  // width of the hardware comparison
  bool use_monotone_qmax = false;
};

class Sarsa final : public TabularLearner {
 public:
  Sarsa(const env::Environment& env, const SarsaOptions& options);

  Step step(StateId s, policy::RandomSource& rng) override;
  void begin_episode() override;

 private:
  /// Epsilon-greedy selection; the greedy branch consults either the exact
  /// row max or the monotone cache depending on options.
  ActionId select(StateId s, policy::RandomSource& rng) const;

  SarsaOptions options_;
  std::vector<double> qmax_cache_;     // monotone max value per state
  std::vector<ActionId> argmax_cache_; // action achieving the cached max
  ActionId pending_action_ = kInvalidAction;
};

}  // namespace qta::algo

// Expected SARSA — an extension the paper's generic architecture admits
// (any update policy expressible as a probability distribution, Section
// VII-B). The target replaces Q(S',A') with the expectation under the
// epsilon-greedy policy:
//   E[Q(S',.)] = (1 - eps) * max_a Q(S',a) + eps * mean_a Q(S',a)
// (the paper's hardware epsilon-greedy explores uniformly over ALL
// actions, hence the mean over the full row).
#pragma once

#include "algo/tabular_learner.h"

namespace qta::algo {

struct ExpectedSarsaOptions {
  double alpha = 0.1;
  double gamma = 0.9;
  double epsilon = 0.1;
};

class ExpectedSarsa final : public TabularLearner {
 public:
  ExpectedSarsa(const env::Environment& env,
                const ExpectedSarsaOptions& options);

  Step step(StateId s, policy::RandomSource& rng) override;
  void begin_episode() override;

 private:
  ExpectedSarsaOptions options_;
  policy::EpsilonGreedyPolicy behavior_;
  ActionId pending_action_ = kInvalidAction;
};

}  // namespace qta::algo

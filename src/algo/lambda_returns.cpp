#include "algo/lambda_returns.h"

#include <algorithm>

#include "common/check.h"

namespace qta::algo {

namespace {
void erase_small(std::vector<double>& trace,
                 std::vector<std::size_t>& active, double cutoff) {
  auto it = std::remove_if(active.begin(), active.end(),
                           [&](std::size_t i) {
                             if (trace[i] < cutoff) {
                               trace[i] = 0.0;
                               return true;
                             }
                             return false;
                           });
  active.erase(it, active.end());
}
}  // namespace

SarsaLambda::SarsaLambda(const env::Environment& env,
                         const LambdaOptions& options)
    : TabularLearner(env, options.alpha, options.gamma), options_(options) {
  QTA_CHECK(options.lambda >= 0.0 && options.lambda <= 1.0);
  QTA_CHECK(options.epsilon >= 0.0 && options.epsilon <= 1.0);
  trace_.assign(env.table_size(), 0.0);
}

void SarsaLambda::begin_episode() {
  for (std::size_t i : active_) trace_[i] = 0.0;
  active_.clear();
  pending_action_ = kInvalidAction;
}

ActionId SarsaLambda::select(StateId s, policy::RandomSource& rng) const {
  return policy::epsilon_greedy_action(q_row(s), options_.epsilon, rng);
}

void SarsaLambda::decay_and_apply(double delta, double decay) {
  const double step = alpha_ * delta;
  for (std::size_t i : active_) {
    q_[i] += step * trace_[i];
    trace_[i] *= decay;
  }
  erase_small(trace_, active_, options_.trace_cutoff);
}

Step SarsaLambda::step(StateId s, policy::RandomSource& rng) {
  Step st;
  st.state = s;
  st.action = pending_action_ != kInvalidAction ? pending_action_
                                                : select(s, rng);
  st.reward = env_.reward(s, st.action);
  st.next_state = env_.transition(s, st.action);
  st.terminal = env_.is_terminal(st.next_state);

  const ActionId next_action = select(st.next_state, rng);
  const double future =
      st.terminal ? 0.0 : q_at(st.next_state, next_action);
  const double delta = st.reward + gamma_ * future - q_at(s, st.action);

  // Replacing trace on the visited pair.
  const std::size_t i = index(s, st.action);
  if (trace_[i] == 0.0) active_.push_back(i);
  trace_[i] = 1.0;

  decay_and_apply(delta, gamma_ * options_.lambda);

  pending_action_ = st.terminal ? kInvalidAction : next_action;
  if (st.terminal) begin_episode();
  return st;
}

WatkinsQLambda::WatkinsQLambda(const env::Environment& env,
                               const LambdaOptions& options)
    : TabularLearner(env, options.alpha, options.gamma), options_(options) {
  QTA_CHECK(options.lambda >= 0.0 && options.lambda <= 1.0);
  trace_.assign(env.table_size(), 0.0);
}

void WatkinsQLambda::begin_episode() { clear_traces(); }

void WatkinsQLambda::clear_traces() {
  for (std::size_t i : active_) trace_[i] = 0.0;
  active_.clear();
}

void WatkinsQLambda::decay_and_apply(double delta, double decay) {
  const double step = alpha_ * delta;
  for (std::size_t i : active_) {
    q_[i] += step * trace_[i];
    trace_[i] *= decay;
  }
  erase_small(trace_, active_, options_.trace_cutoff);
}

Step WatkinsQLambda::step(StateId s, policy::RandomSource& rng) {
  Step st;
  st.state = s;
  st.action = policy::epsilon_greedy_action(q_row(s), options_.epsilon, rng);
  const ActionId greedy_now = policy::greedy_action(q_row(s));
  st.reward = env_.reward(s, st.action);
  st.next_state = env_.transition(s, st.action);
  st.terminal = env_.is_terminal(st.next_state);

  const double future = st.terminal ? 0.0 : max_q(st.next_state);
  const double delta = st.reward + gamma_ * future - q_at(s, st.action);

  const std::size_t i = index(s, st.action);
  if (trace_[i] == 0.0) active_.push_back(i);
  trace_[i] = 1.0;

  decay_and_apply(delta, gamma_ * options_.lambda);

  // Watkins cut: a non-greedy behavior step invalidates older traces.
  if (st.action != greedy_now) {
    clear_traces();
    ++cuts_;
  }
  if (st.terminal) clear_traces();
  return st;
}

}  // namespace qta::algo

// Q-Learning (off-policy, equation 1 of the paper):
//   Q(S,A) <- Q(S,A) + alpha * (R + gamma * max_a Q(S', a) - Q(S,A))
//
// The behavior policy is random selection by default (the paper's choice
// for the Q-Learning accelerator); the update policy is greedy.
//
// `use_monotone_qmax` switches the max_a term from the exact row maximum
// to the hardware's Qmax side-table semantics: a cached per-state maximum
// that is only raised (never lowered) by write-backs. This reproduces the
// accelerator's approximation in a double-precision setting for the
// ablation study.
#pragma once

#include <memory>

#include "algo/tabular_learner.h"

namespace qta::algo {

struct QLearningOptions {
  double alpha = 0.1;
  double gamma = 0.9;
  bool use_monotone_qmax = false;
  /// Behavior policy; defaults to uniform random (paper Section V-A).
  std::shared_ptr<const policy::ActionPolicy> behavior =
      std::make_shared<policy::RandomPolicy>();
};

class QLearning final : public TabularLearner {
 public:
  QLearning(const env::Environment& env, const QLearningOptions& options);

  Step step(StateId s, policy::RandomSource& rng) override;

  /// The cached monotone Qmax value for a state (only meaningful when
  /// use_monotone_qmax is set).
  double cached_qmax(StateId s) const;

 private:
  QLearningOptions options_;
  std::vector<double> qmax_cache_;
};

}  // namespace qta::algo

#include "algo/trainer.h"

#include "common/check.h"

namespace qta::algo {

TrainResult train(TabularLearner& learner, const TrainOptions& options) {
  QTA_CHECK(options.total_samples > 0);
  const env::Environment& env = learner.environment();

  policy::XoshiroSource rng(options.seed);
  rng::Xoshiro256 start_rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  auto random_start = [&]() {
    StateId s;
    do {
      s = static_cast<StateId>(start_rng.below(env.num_states()));
    } while (env.is_terminal(s));
    return s;
  };

  TrainResult result;
  Stopwatch watch;
  StateId s = random_start();
  learner.begin_episode();
  std::uint64_t episode_steps = 0;
  double episode_return = 0.0;

  while (result.samples < options.total_samples) {
    const Step st = learner.step(s, rng);
    ++result.samples;
    ++episode_steps;
    episode_return += st.reward;

    if (options.probe_interval != 0 &&
        result.samples % options.probe_interval == 0 && options.probe) {
      options.probe(result.samples);
    }

    if (st.terminal || episode_steps >= options.max_steps_per_episode) {
      ++result.episodes;
      result.episode_length.add(static_cast<double>(episode_steps));
      result.episode_return.add(episode_return);
      episode_steps = 0;
      episode_return = 0.0;
      s = random_start();
      learner.begin_episode();
    } else {
      s = st.next_state;
    }
  }
  result.seconds = watch.seconds();
  result.samples_per_sec =
      result.seconds > 0.0 ? static_cast<double>(result.samples) /
                                 result.seconds
                           : 0.0;
  return result;
}

}  // namespace qta::algo

#include "algo/double_q.h"

#include "common/check.h"

namespace qta::algo {

DoubleQLearning::DoubleQLearning(const env::Environment& env,
                                 const DoubleQOptions& options)
    : TabularLearner(env, options.alpha, options.gamma) {
  qa_.assign(env.table_size(), 0.0);
  qb_.assign(env.table_size(), 0.0);
}

Step DoubleQLearning::step(StateId s, policy::RandomSource& rng) {
  Step st;
  st.state = s;
  st.action = static_cast<ActionId>(rng.below(env_.num_actions()));
  st.reward = env_.reward(s, st.action);
  st.next_state = env_.transition(s, st.action);
  st.terminal = env_.is_terminal(st.next_state);

  auto& learn = rng.draw_bits(1) ? qa_ : qb_;
  auto& eval = (&learn == &qa_) ? qb_ : qa_;

  double future = 0.0;
  if (!st.terminal) {
    // argmax under the learning table, evaluated by the other table.
    const std::size_t row =
        static_cast<std::size_t>(st.next_state) * env_.num_actions();
    ActionId best = 0;
    for (ActionId a = 1; a < env_.num_actions(); ++a) {
      if (learn[row + a] > learn[row + best]) best = a;
    }
    future = eval[row + best];
  }
  const std::size_t i = index(s, st.action);
  learn[i] += alpha_ * (st.reward + gamma_ * future - learn[i]);
  q_[i] = qa_[i] + qb_[i];  // acting estimate exposed via the base table
  return st;
}

}  // namespace qta::algo

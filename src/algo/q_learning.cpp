#include "algo/q_learning.h"

#include <algorithm>

#include "common/check.h"

namespace qta::algo {

QLearning::QLearning(const env::Environment& env,
                     const QLearningOptions& options)
    : TabularLearner(env, options.alpha, options.gamma), options_(options) {
  QTA_CHECK(options.behavior != nullptr);
  if (options_.use_monotone_qmax) {
    qmax_cache_.assign(env.num_states(), 0.0);
  }
}

double QLearning::cached_qmax(StateId s) const {
  QTA_CHECK(options_.use_monotone_qmax);
  QTA_CHECK(s < env_.num_states());
  return qmax_cache_[s];
}

Step QLearning::step(StateId s, policy::RandomSource& rng) {
  Step st;
  st.state = s;
  st.action = options_.behavior->select(q_row(s), rng);
  st.reward = env_.reward(s, st.action);
  st.next_state = env_.transition(s, st.action);
  st.terminal = env_.is_terminal(st.next_state);

  const double future =
      st.terminal ? 0.0
                  : (options_.use_monotone_qmax ? qmax_cache_[st.next_state]
                                                : max_q(st.next_state));
  const double target = st.reward + gamma_ * future;
  const std::size_t i = index(s, st.action);
  q_[i] += alpha_ * (target - q_[i]);

  if (options_.use_monotone_qmax && q_[i] > qmax_cache_[s]) {
    qmax_cache_[s] = q_[i];  // raise-only, like the hardware write-back
  }
  return st;
}

}  // namespace qta::algo

#include "algo/tabular_learner.h"

#include <algorithm>

#include "common/check.h"

namespace qta::algo {

TabularLearner::TabularLearner(const env::Environment& env, double alpha,
                               double gamma)
    : env_(env), alpha_(alpha), gamma_(gamma) {
  QTA_CHECK(alpha > 0.0 && alpha <= 1.0);
  QTA_CHECK(gamma >= 0.0 && gamma < 1.0);
  q_.assign(env.table_size(), 0.0);
}

std::span<const double> TabularLearner::q_row(StateId s) const {
  QTA_DCHECK(s < env_.num_states());
  return {q_.data() + static_cast<std::size_t>(s) * env_.num_actions(),
          env_.num_actions()};
}

double TabularLearner::q_at(StateId s, ActionId a) const {
  return q_[index(s, a)];
}

void TabularLearner::set_q(StateId s, ActionId a, double v) {
  q_[index(s, a)] = v;
}

std::vector<ActionId> TabularLearner::greedy_policy() const {
  std::vector<ActionId> policy(env_.num_states());
  for (StateId s = 0; s < env_.num_states(); ++s) {
    policy[s] = policy::greedy_action(q_row(s));
  }
  return policy;
}

double TabularLearner::max_q(StateId s) const {
  const auto row = q_row(s);
  return *std::max_element(row.begin(), row.end());
}

std::size_t TabularLearner::index(StateId s, ActionId a) const {
  QTA_DCHECK(s < env_.num_states() && a < env_.num_actions());
  return static_cast<std::size_t>(s) * env_.num_actions() + a;
}

}  // namespace qta::algo

#include "algo/sarsa.h"

#include "common/check.h"

namespace qta::algo {

Sarsa::Sarsa(const env::Environment& env, const SarsaOptions& options)
    : TabularLearner(env, options.alpha, options.gamma), options_(options) {
  QTA_CHECK(options.epsilon >= 0.0 && options.epsilon <= 1.0);
  if (options_.use_monotone_qmax) {
    qmax_cache_.assign(env.num_states(), 0.0);
    argmax_cache_.assign(env.num_states(), 0);
  }
}

void Sarsa::begin_episode() { pending_action_ = kInvalidAction; }

ActionId Sarsa::select(StateId s, policy::RandomSource& rng) const {
  const unsigned bits = options_.epsilon_bits;
  const std::uint64_t draw = rng.draw_bits(bits);
  const auto threshold = static_cast<std::uint64_t>(
      (1.0 - options_.epsilon) *
      static_cast<double>(std::uint64_t{1} << bits));
  if (draw < threshold) {
    return options_.use_monotone_qmax ? argmax_cache_[s]
                                      : policy::greedy_action(q_row(s));
  }
  return static_cast<ActionId>(draw % env_.num_actions());
}

Step Sarsa::step(StateId s, policy::RandomSource& rng) {
  Step st;
  st.state = s;
  // On-policy: reuse the action committed by the previous update; a fresh
  // episode starts with a fresh draw.
  st.action = pending_action_ != kInvalidAction ? pending_action_
                                                : select(s, rng);
  st.reward = env_.reward(s, st.action);
  st.next_state = env_.transition(s, st.action);
  st.terminal = env_.is_terminal(st.next_state);

  const ActionId next_action = select(st.next_state, rng);
  const double next_q =
      options_.use_monotone_qmax &&
              next_action == argmax_cache_[st.next_state]
          ? qmax_cache_[st.next_state]
          : q_at(st.next_state, next_action);
  const double future = st.terminal ? 0.0 : next_q;
  const double target = st.reward + gamma_ * future;
  const std::size_t i = index(s, st.action);
  q_[i] += alpha_ * (target - q_[i]);

  if (options_.use_monotone_qmax && q_[i] > qmax_cache_[s]) {
    qmax_cache_[s] = q_[i];
    argmax_cache_[s] = st.action;
  }

  pending_action_ = st.terminal ? kInvalidAction : next_action;
  return st;
}

}  // namespace qta::algo

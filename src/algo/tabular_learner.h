// Base class for the software reference implementations of Q-table RL.
//
// These are the golden *algorithmic* models (double precision, flexible
// policies) used to (a) validate the accelerator's learning behaviour,
// (b) serve as CPU baselines, and (c) run ablations (exact max vs the
// hardware's monotone Qmax approximation). The bit-exact fixed-point golden
// model of the accelerator itself lives in qtaccel/golden_model.h.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "env/environment.h"
#include "policy/policies.h"

namespace qta::algo {

/// Result of one agent-environment interaction.
struct Step {
  StateId state = 0;
  ActionId action = 0;
  double reward = 0.0;
  StateId next_state = 0;
  bool terminal = false;  // next_state ended the episode
};

class TabularLearner {
 public:
  TabularLearner(const env::Environment& env, double alpha, double gamma);
  virtual ~TabularLearner() = default;

  /// Performs one sample: selects the behavior action for `s`, queries the
  /// environment, applies the algorithm's update, and reports what
  /// happened. The trainer owns episode control.
  virtual Step step(StateId s, policy::RandomSource& rng) = 0;

  /// Called when an episode ends/restarts (clears any pending on-policy
  /// action state).
  virtual void begin_episode() {}

  const std::vector<double>& q() const { return q_; }
  std::span<const double> q_row(StateId s) const;
  double q_at(StateId s, ActionId a) const;
  void set_q(StateId s, ActionId a, double v);

  /// Greedy policy extracted from the current table.
  std::vector<ActionId> greedy_policy() const;

  const env::Environment& environment() const { return env_; }
  double alpha() const { return alpha_; }
  double gamma() const { return gamma_; }

 protected:
  double max_q(StateId s) const;
  std::size_t index(StateId s, ActionId a) const;

  const env::Environment& env_;
  double alpha_;
  double gamma_;
  std::vector<double> q_;
};

}  // namespace qta::algo

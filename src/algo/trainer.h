// Episode-driven training loop for the software reference algorithms —
// the software mirror of what the accelerator pipeline does in hardware:
// random start state, behavior steps until a terminal state (or a step
// cap), restart; run until a sample budget is exhausted.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "algo/tabular_learner.h"
#include "common/stats.h"

namespace qta::algo {

struct TrainOptions {
  std::uint64_t total_samples = 100000;
  /// Episodes are cut after this many steps even without reaching a
  /// terminal state (grid worlds with obstacles can trap the agent).
  std::uint64_t max_steps_per_episode = 100000;
  std::uint64_t seed = 1;
  /// Called every `probe_interval` samples (0 disables) with the number of
  /// samples consumed so far — used to record learning curves.
  std::uint64_t probe_interval = 0;
  std::function<void(std::uint64_t)> probe;
};

struct TrainResult {
  std::uint64_t samples = 0;
  std::uint64_t episodes = 0;
  double seconds = 0.0;
  double samples_per_sec = 0.0;
  RunningStats episode_length;
  RunningStats episode_return;
};

/// Runs the loop; the learner's Q table is mutated in place.
TrainResult train(TabularLearner& learner, const TrainOptions& options);

}  // namespace qta::algo

// Consistent-hash ring: session id -> shard, with per-session pins.
//
// The ring is the router's placement function. Each shard contributes
// `vnodes` points on a 64-bit circle (hashes of (shard, replica));
// a key lands on the first point at or after its own hash, wrapping.
// The classic properties follow: placement is deterministic (same
// shards in, same answer out, independent of insertion order), keys
// spread across shards within a constant factor of fair share (the
// vnode count trades memory for balance), and adding or removing one
// shard remaps only the keys whose arc it owned — on average 1/N of
// them — never shuffling the survivors among themselves.
//
// Placement is only a *suggestion* for new sessions, though: a live
// session must not move just because the ring changed shape, so the
// router pins every session to its current owner at create time and
// repoints the pin — not the ring — when a migration lands. lookup()
// consults pins first; place() is the raw ring, what a new session or
// a failover target computation wants.
//
// Hashing is a splitmix64 finalizer over the raw key, not std::hash
// (whose output is unspecified and may be identity for integers —
// useless for spreading sequential session ids around a circle).
// Everything here is deterministic; the qtlint entropy rules stay
// happy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace qta::shard {

using ShardId = std::uint32_t;

class HashRing {
 public:
  explicit HashRing(unsigned vnodes = 64);

  /// Adds/removes one shard's vnodes. add() of a present shard and
  /// remove() of an absent one are no-ops; remove() leaves pins alone
  /// (the router decides what happens to sessions on a dead shard).
  void add(ShardId shard);
  void remove(ShardId shard);
  bool contains(ShardId shard) const;

  /// Raw ring placement for `key` (ignores pins); nullopt on an empty
  /// ring.
  std::optional<ShardId> place(std::uint64_t key) const;
  /// Pin-aware lookup: the pinned owner if `key` is pinned, otherwise
  /// place().
  std::optional<ShardId> lookup(std::uint64_t key) const;

  void pin(std::uint64_t key, ShardId shard);
  void unpin(std::uint64_t key);
  std::optional<ShardId> pinned(std::uint64_t key) const;

  /// Member shards, ascending.
  std::vector<ShardId> shards() const;
  std::size_t shard_count() const { return members_.size(); }
  std::size_t pin_count() const { return pins_.size(); }

  /// The splitmix64 finalizer used for ring points and key hashes;
  /// exposed so tests can reason about point placement.
  static std::uint64_t mix(std::uint64_t x);

 private:
  unsigned vnodes_;
  std::map<std::uint64_t, ShardId> points_;  // circle position -> owner
  std::map<ShardId, bool> members_;
  std::map<std::uint64_t, ShardId> pins_;
};

}  // namespace qta::shard

// ShardManager: load-driven rebalancing for a shard fleet.
//
// The router's HTTP plane exposes where sessions sit; each worker's
// /metrics exposes how loaded it is (qtserve_sessions_live,
// qtserve_sessions_hot). The manager closes the loop: scrape the
// gauges, compare against fair share, and emit migrate moves that
// qtrouterd executes through Router::migrate. The planning core is a
// pure function over (shard, load) pairs so tests pin its decisions
// without sockets or clocks; the scrape helpers are the only I/O and
// live behind their own seams (parse a Prometheus text blob; fetch one
// URL path over the serve TCP helpers).
//
// The plan is deliberately conservative: it equalizes toward the mean
// and only moves sessions off shards whose load exceeds fair share by
// more than `tolerance` (a ratio), so a balanced fleet plans zero
// moves and a jittery gauge doesn't cause migration churn.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "shard/hash_ring.h"

namespace qta::shard {

struct ShardLoad {
  ShardId shard = 0;
  double load = 0;  // typically qtserve_sessions_live from the worker
};

struct RebalanceMove {
  ShardId from = 0;
  ShardId to = 0;
  unsigned count = 0;  // sessions to migrate from -> to
};

/// Pure planner: moves that bring every shard within
/// (1 + tolerance) * mean load, equalizing greedily from the most to
/// the least loaded. Deterministic; returns {} when the fleet is
/// already balanced or has fewer than two shards.
std::vector<RebalanceMove> plan_rebalance(std::vector<ShardLoad> loads,
                                          double tolerance);

/// Sum of a Prometheus family's samples in `text` (all label sets;
/// counters sum naturally, single-series gauges pass through).
/// nullopt when the family does not appear.
std::optional<double> scrape_gauge(const std::string& text,
                                   const std::string& family);

/// One-shot HTTP/1.0 GET; returns the response BODY, or nullopt on
/// connect/transport failure or a non-200 status. Blocking — callers
/// scrape between poll iterations, matching the daemon's cadence.
std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& path,
                                    std::string* error = nullptr);

}  // namespace qta::shard

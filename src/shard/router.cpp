#include "shard/router.h"

#include <utility>

#include "common/check.h"
#include "common/json_writer.h"

namespace qta::shard {

namespace {

serve::Response make_error(serve::RequestType type, serve::SessionId session,
                           std::string message) {
  serve::Response resp;
  resp.status = serve::Status::kError;
  resp.type = type;
  resp.session = session;
  resp.error = std::move(message);
  return resp;
}

bool is_session_scoped(serve::RequestType type) {
  switch (type) {
    case serve::RequestType::kStep:
    case serve::RequestType::kQuery:
    case serve::RequestType::kSnapshot:
    case serve::RequestType::kEvict:
    case serve::RequestType::kClose:
      return true;
    default:
      return false;
  }
}

/// A fresh (never-ran) migration image for `spec`: adopting it equals
/// CreateSession(spec) under the router-chosen id.
std::string fresh_image(const serve::SessionSpec& spec) {
  serve::MigrationImage image;
  image.spec = spec;
  return serve::encode_migration_image(image);
}

}  // namespace

Router::Router(const RouterOptions& options, RouterHost* host)
    : options_(options),
      host_(host),
      flight_(options.flight_recorder_capacity > 0
                  ? std::make_unique<telemetry::FlightRecorder>(
                        options.flight_recorder_capacity)
                  : nullptr),
      ring_(options.vnodes),
      epoch_(std::chrono::steady_clock::now()) {
  QTA_CHECK_MSG(host_ != nullptr, "Router needs a host");
  // qtserve_-named families keep qtclient --top and existing dashboards
  // working against a router unchanged; qtrouter_ families are the
  // router-only catalog (docs/sharding.md).
  for (unsigned t = 0;
       t <= static_cast<unsigned>(serve::RequestType::kMigrateIn); ++t) {
    requests_by_type_[t] = &metrics_.counter(
        "qtserve_requests_total",
        {{"type",
          serve::request_type_name(static_cast<serve::RequestType>(t))}},
        "client requests accepted by the router, by request type");
  }
  overloads_relayed_ = &metrics_.counter(
      "qtserve_overload_total", {},
      "worker overload refusals relayed to clients");
  migrations_counter_ = &metrics_.counter(
      "qtrouter_migrations_total", {},
      "live session migrations completed (pin repointed)");
  migration_aborts_ = &metrics_.counter(
      "qtrouter_migration_aborts_total", {},
      "migrations abandoned before the image left the source");
  failovers_counter_ = &metrics_.counter(
      "qtrouter_failovers_total", {}, "dead shards absorbed");
  failover_sessions_ = &metrics_.counter(
      "qtrouter_failover_sessions_total", {},
      "sessions replayed onto survivors during failover");
  rollbacks_counter_ = &metrics_.counter(
      "qtrouter_rollbacks_total", {},
      "migration images re-adopted after a dead or refusing target");
  checkpoints_counter_ = &metrics_.counter(
      "qtrouter_checkpoints_total", {},
      "router-injected snapshot checkpoints committed");
  shards_gauge_ = &metrics_.gauge("qtrouter_shards", {},
                                  "live workers behind the router");
  sessions_live_ = &metrics_.gauge(
      "qtserve_sessions_live", {},
      "logical sessions currently registered across the fleet");
  sessions_hot_ = &metrics_.gauge(
      "qtserve_sessions_hot", {},
      "resident engines across the fleet (from worker scrapes)");
  sessions_moving_ = &metrics_.gauge(
      "qtrouter_sessions_moving", {},
      "sessions with a migration or failover in flight");
}

Router::~Router() = default;

std::uint64_t Router::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Router::record_flight(telemetry::ServeEventKind kind,
                           serve::SessionId id, const char* label,
                           std::uint64_t value) {
  if (flight_ == nullptr) return;
  telemetry::ServeEvent event;
  event.kind = kind;
  event.session = id;
  event.label = label;
  event.value = value;
  flight_->record(event);
}

void Router::observe_latency(const PendingReply& pending,
                             const char* type_name) {
  metrics_
      .histogram("qtserve_request_latency_us",
                 {{"path", "proxy"}, {"type", type_name}},
                 "proxy-hop latency (us): client payload in to worker "
                 "response relayed, by request type")
      .observe(now_us() - pending.submit_us);
}

void Router::set_hot_sessions(double hot) { sessions_hot_->set(hot); }

void Router::add_shard(ShardId shard) {
  if (shards_.count(shard) != 0) return;
  shards_[shard];
  ring_.add(shard);
  shards_gauge_->set(static_cast<double>(shards_.size()));
}

std::size_t Router::sessions_on(ShardId shard) const {
  std::size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (s.shard == shard) ++n;
  }
  return n;
}

std::vector<serve::SessionId> Router::sessions_of(ShardId shard) const {
  std::vector<serve::SessionId> out;
  for (const auto& [id, s] : sessions_) {
    if (s.shard == shard && !s.moving) out.push_back(id);
  }
  return out;
}

std::optional<ShardId> Router::pick_alive(std::uint64_t key) const {
  // Dead and draining shards have left the ring, so raw placement is
  // already "an alive, placeable shard".
  return ring_.place(key);
}

std::optional<ShardId> Router::next_shard_after(ShardId current) const {
  std::optional<ShardId> first, next;
  for (const auto& [shard, state] : shards_) {
    if (state.draining) continue;
    if (!first.has_value()) first = shard;
    if (shard > current && !next.has_value()) next = shard;
  }
  if (next.has_value()) return next;
  return first;  // wrap (may equal `current`; callers check)
}

// --- request intake -------------------------------------------------

void Router::on_client_payload(ClientId client, std::string payload) {
  ClientState& c = clients_[client];
  const std::uint64_t seq = c.next_seq++;
  std::string error;
  std::optional<serve::Request> decoded =
      serve::decode_request(payload, &error);
  if (!decoded.has_value()) {
    respond_locally(client, seq,
                    make_error(serve::RequestType::kPing, 0,
                               "router: " + error));
    return;
  }
  const serve::Request& req = *decoded;
  requests_by_type_[static_cast<unsigned>(req.type)]->inc();

  if (is_session_scoped(req.type)) {
    route_session_request(client, seq, req, std::move(payload));
    return;
  }

  switch (req.type) {
    case serve::RequestType::kCreateSession:
      handle_create(client, seq, req);
      break;
    case serve::RequestType::kPing: {
      serve::Response resp;
      resp.type = req.type;
      respond_locally(client, seq, resp);
      break;
    }
    case serve::RequestType::kStats: {
      serve::Response resp;
      resp.type = req.type;
      resp.stats_json = metrics_.json_text();
      resp.stats_prometheus = metrics_.prometheus_text();
      respond_locally(client, seq, resp);
      break;
    }
    case serve::RequestType::kIntrospect: {
      serve::Response resp;
      resp.type = req.type;
      resp.session = req.session;
      switch (req.probe) {
        case serve::IntrospectProbe::kMetrics:
          resp.introspect_json = metrics_.json_text();
          resp.stats_json = resp.introspect_json;
          resp.stats_prometheus = metrics_.prometheus_text();
          break;
        case serve::IntrospectProbe::kFlightRecorder:
          if (flight_ == nullptr) {
            resp = make_error(req.type, req.session,
                              "flight recorder disabled");
            break;
          }
          resp.introspect_json = flight_->json_text();
          break;
        case serve::IntrospectProbe::kShards:
          resp.introspect_json = shards_json();
          break;
        case serve::IntrospectProbe::kSession:
          // The owning worker holds the live summary; proxy to it.
          route_session_request(client, seq, req, std::move(payload));
          return;
      }
      respond_locally(client, seq, resp);
      break;
    }
    case serve::RequestType::kShutdown: {
      shutdown_ = true;
      for (auto& [shard, state] : shards_) {
        PendingReply pending;
        pending.kind = PendingReply::Kind::kShutdown;
        state.fifo.push_back(std::move(pending));
        serve::Request down;
        down.type = serve::RequestType::kShutdown;
        host_->send_to_shard(shard, serve::encode_request(down));
      }
      serve::Response resp;
      resp.type = req.type;
      respond_locally(client, seq, resp);
      break;
    }
    default:
      // MigrateOut/MigrateIn are shard-plane control: the router emits
      // them, clients never do.
      respond_locally(client, seq,
                      make_error(req.type, req.session,
                                 "router-internal request type"));
      break;
  }
}

void Router::handle_create(ClientId client, std::uint64_t seq,
                           const serve::Request& req) {
  const std::string problem = serve::validate_spec(req.spec);
  if (!problem.empty()) {
    respond_locally(client, seq, make_error(req.type, 0, problem));
    return;
  }
  const serve::SessionId id = next_session_++;
  const std::optional<ShardId> target = pick_alive(id);
  if (!target.has_value()) {
    respond_locally(client, seq,
                    make_error(req.type, 0, "no shards available"));
    return;
  }
  SessionState& s = sessions_[id];
  s.shard = *target;
  s.spec = req.spec;
  s.moving = true;  // until the adopt lands, requests hold
  sessions_moving_->set(sessions_moving_->value() + 1);
  ring_.pin(id, *target);
  // The create IS a MigrateIn of a fresh image: one worker-side path
  // covers create, migration, rollback, and failover. send_adopt
  // pushes the PendingReply; patch the client identity onto it (create
  // is the only adopt a client waits for).
  send_adopt(*target, id, fresh_image(req.spec), /*replay_log=*/false);
  PendingReply& queued = shards_.at(*target).fifo.back();
  queued.has_client = true;
  queued.client = client;
  queued.seq = seq;
  sessions_live_->set(static_cast<double>(sessions_.size()));
}

void Router::route_session_request(ClientId client, std::uint64_t seq,
                                   const serve::Request& req,
                                   std::string payload) {
  auto it = sessions_.find(req.session);
  if (it == sessions_.end()) {
    respond_locally(client, seq,
                    make_error(req.type, req.session, "unknown session"));
    return;
  }
  SessionState& s = it->second;
  if (s.moving) {
    PendingReply identity;
    identity.kind = PendingReply::Kind::kForward;
    identity.session = req.session;
    identity.has_client = true;
    identity.client = client;
    identity.seq = seq;
    identity.submit_us = now_us();
    s.held.emplace_back(std::move(payload), std::move(identity));
    return;
  }
  forward(s, req.session, std::move(payload), true, client, seq);
  if (req.type == serve::RequestType::kStep) {
    ++s.steps_since_move;
    maybe_auto_migrate(s, req.session);
  }
}

void Router::forward(SessionState& s, serve::SessionId id,
                     std::string payload, bool has_client, ClientId client,
                     std::uint64_t seq) {
  PendingReply pending;
  pending.kind = PendingReply::Kind::kForward;
  pending.session = id;
  pending.has_client = has_client;
  pending.client = client;
  pending.seq = seq;
  pending.submit_us = now_us();
  shards_.at(s.shard).fifo.push_back(std::move(pending));
  LogEntry entry;
  entry.index = s.next_log_index++;
  entry.payload = payload;
  entry.has_client = has_client;
  entry.client = client;
  entry.seq = seq;
  s.log.push_back(std::move(entry));
  host_->send_to_shard(s.shard, std::move(payload));
  ++s.forwards_since_checkpoint;
  maybe_checkpoint(s, id);
}

void Router::maybe_checkpoint(SessionState& s, serve::SessionId id) {
  if (options_.checkpoint_every == 0 || s.checkpoint_inflight) return;
  if (s.forwards_since_checkpoint < options_.checkpoint_every) return;
  serve::Request req;
  req.type = serve::RequestType::kSnapshot;
  req.session = id;
  PendingReply pending;
  pending.kind = PendingReply::Kind::kCheckpoint;
  pending.session = id;
  pending.mark = s.next_log_index;
  pending.submit_us = now_us();
  shards_.at(s.shard).fifo.push_back(std::move(pending));
  host_->send_to_shard(s.shard, serve::encode_request(req));
  s.checkpoint_inflight = true;
  s.forwards_since_checkpoint = 0;
}

void Router::checkpoint_all() {
  for (auto& [id, s] : sessions_) {
    if (s.moving || s.log.empty() || s.checkpoint_inflight) continue;
    // Borrow the interval machinery with the threshold already met.
    s.forwards_since_checkpoint = options_.checkpoint_every == 0
                                      ? 0
                                      : options_.checkpoint_every;
    if (options_.checkpoint_every == 0) {
      // Interval checkpoints are off; inject one directly.
      serve::Request req;
      req.type = serve::RequestType::kSnapshot;
      req.session = id;
      PendingReply pending;
      pending.kind = PendingReply::Kind::kCheckpoint;
      pending.session = id;
      pending.mark = s.next_log_index;
      pending.submit_us = now_us();
      shards_.at(s.shard).fifo.push_back(std::move(pending));
      host_->send_to_shard(s.shard, serve::encode_request(req));
      s.checkpoint_inflight = true;
    } else {
      maybe_checkpoint(s, id);
    }
  }
}

void Router::maybe_auto_migrate(SessionState& s, serve::SessionId id) {
  if (options_.migrate_every == 0 || s.moving) return;
  if (s.steps_since_move < options_.migrate_every) return;
  const std::optional<ShardId> target = next_shard_after(s.shard);
  if (!target.has_value() || *target == s.shard) return;
  migrate(id, *target);
}

// --- migration ------------------------------------------------------

bool Router::migrate(serve::SessionId session, ShardId target) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return false;
  SessionState& s = it->second;
  auto shard_it = shards_.find(target);
  if (shard_it == shards_.end() || shard_it->second.draining) return false;
  if (s.moving || target == s.shard) return false;
  s.moving = true;
  s.steps_since_move = 0;
  sessions_moving_->set(sessions_moving_->value() + 1);
  serve::Request req;
  req.type = serve::RequestType::kMigrateOut;
  req.session = session;
  PendingReply pending;
  pending.kind = PendingReply::Kind::kMigrateOut;
  pending.session = session;
  pending.target = target;
  pending.submit_us = now_us();
  shards_.at(s.shard).fifo.push_back(std::move(pending));
  host_->send_to_shard(s.shard, serve::encode_request(req));
  return true;
}

void Router::send_adopt(ShardId target, serve::SessionId id,
                        std::string encoded, bool replay_log) {
  SessionState& s = sessions_.at(id);
  s.adopt_inflight = true;
  s.adopt_dest = target;
  serve::Request req;
  req.type = serve::RequestType::kMigrateIn;
  req.session = id;
  req.payload = encoded;
  PendingReply pending;
  pending.kind = PendingReply::Kind::kMigrateIn;
  pending.session = id;
  pending.request_payload = std::move(encoded);
  pending.replay_log = replay_log;
  pending.submit_us = now_us();
  shards_.at(target).fifo.push_back(std::move(pending));
  host_->send_to_shard(target, serve::encode_request(req));
}

bool Router::drain(ShardId shard) {
  auto it = shards_.find(shard);
  if (it == shards_.end() || it->second.draining) return false;
  // Refuse to drain the last placeable shard: sessions need somewhere
  // to go.
  bool survivor = false;
  for (const auto& [other, state] : shards_) {
    if (other != shard && !state.draining) survivor = true;
  }
  if (!survivor) return false;
  it->second.draining = true;
  ring_.remove(shard);
  std::vector<serve::SessionId> residents;
  for (const auto& [id, s] : sessions_) {
    if (s.shard == shard && !s.moving) residents.push_back(id);
  }
  for (const serve::SessionId id : residents) {
    const std::optional<ShardId> target = pick_alive(id);
    if (target.has_value()) migrate(id, *target);
  }
  maybe_finish_drain(shard);
  return true;
}

void Router::maybe_finish_drain(ShardId shard) {
  auto it = shards_.find(shard);
  if (it == shards_.end() || !it->second.draining) return;
  if (!it->second.fifo.empty() || sessions_on(shard) != 0) return;
  PendingReply pending;
  pending.kind = PendingReply::Kind::kShutdown;
  it->second.fifo.push_back(std::move(pending));
  serve::Request req;
  req.type = serve::RequestType::kShutdown;
  host_->send_to_shard(shard, serve::encode_request(req));
}

// --- failover -------------------------------------------------------

void Router::on_shard_failed(ShardId shard) {
  auto it = shards_.find(shard);
  if (it == shards_.end()) return;
  ShardState dead = std::move(it->second);
  shards_.erase(it);
  ring_.remove(shard);
  shards_gauge_->set(static_cast<double>(shards_.size()));
  ++failovers_;
  failovers_counter_->inc();
  record_flight(telemetry::ServeEventKind::kFailover, 0, "shard",
                dead.fifo.size());

  // Sweep the dead FIFO first: everything in it died unanswered.
  for (PendingReply& pending : dead.fifo) {
    auto sit = sessions_.find(pending.session);
    if (sit == sessions_.end()) continue;
    SessionState& s = sit->second;
    switch (pending.kind) {
      case PendingReply::Kind::kCheckpoint:
        s.checkpoint_inflight = false;
        break;
      case PendingReply::Kind::kMigrateIn: {
        // The adopt died with its destination; the image in hand is
        // the freshest state. Re-adopt on the current owner if it is
        // still alive, otherwise any survivor (replaying the log —
        // which is empty for a plain migration, so replay is safe for
        // every flavor).
        s.adopt_inflight = false;
        std::optional<ShardId> fallback;
        if (shards_.count(s.shard) != 0 && s.shard != shard) {
          fallback = s.shard;
        } else {
          fallback = pick_alive(pending.session);
        }
        if (!fallback.has_value()) {
          abandon_session(pending.session, s, "no shards left");
          break;
        }
        ++rollbacks_;
        rollbacks_counter_->inc();
        record_flight(telemetry::ServeEventKind::kMigration,
                      pending.session, "rollback",
                      pending.request_payload.size());
        const bool replay = true;  // absorb any unpruned log on top
        // Preserve a waiting creator, if any, across the re-send.
        const bool has_client = pending.has_client;
        const ClientId client = pending.client;
        const std::uint64_t seq = pending.seq;
        send_adopt(*fallback, pending.session,
                   std::move(pending.request_payload), replay);
        if (has_client) {
          PendingReply& queued = shards_.at(*fallback).fifo.back();
          queued.has_client = true;
          queued.client = client;
          queued.seq = seq;
        }
        break;
      }
      case PendingReply::Kind::kForward:
      case PendingReply::Kind::kMigrateOut:
      case PendingReply::Kind::kReplayAbsorb:
      case PendingReply::Kind::kShutdown:
        // kForward: its log entry is still unresponded — the session
        // sweep below replays it. kMigrateOut: the export died before
        // producing an image; the session sweep reconstructs from
        // parked+log instead. Absorb/shutdown need nothing.
        break;
    }
  }

  // Now fail over every session the dead shard owned.
  std::vector<serve::SessionId> owned;
  for (const auto& [id, s] : sessions_) {
    if (s.shard == shard) owned.push_back(id);
  }
  for (const serve::SessionId id : owned) {
    auto sit = sessions_.find(id);
    if (sit == sessions_.end()) continue;
    SessionState& s = sit->second;
    if (s.adopt_inflight && shards_.count(s.adopt_dest) != 0) {
      // Its image is already in flight to a healthy destination (the
      // source died right after exporting); the adopt will land and
      // repoint. Nothing to do here.
      continue;
    }
    begin_failover(id, s);
  }
  sessions_live_->set(static_cast<double>(sessions_.size()));
}

void Router::begin_failover(serve::SessionId id, SessionState& s) {
  ring_.unpin(id);
  const std::optional<ShardId> target = pick_alive(id);
  if (!target.has_value()) {
    abandon_session(id, s, "no shards left");
    return;
  }
  if (!s.moving) {
    s.moving = true;
    sessions_moving_->set(sessions_moving_->value() + 1);
  }
  s.checkpoint_inflight = false;
  failover_sessions_->inc();
  record_flight(telemetry::ServeEventKind::kFailover, id, "session",
                s.log.size());
  std::string image =
      s.parked.empty() ? fresh_image(s.spec) : s.parked;
  send_adopt(*target, id, std::move(image), /*replay_log=*/true);
}

void Router::abandon_session(serve::SessionId id, SessionState& s,
                             const char* why) {
  for (LogEntry& entry : s.log) {
    if (!entry.responded && entry.has_client) {
      respond_locally(entry.client, entry.seq,
                      make_error(serve::RequestType::kStep, id, why));
    }
  }
  for (auto& [payload, identity] : s.held) {
    if (identity.has_client) {
      respond_locally(identity.client, identity.seq,
                      make_error(serve::RequestType::kStep, id, why));
    }
  }
  if (s.moving) {
    sessions_moving_->set(sessions_moving_->value() - 1);
  }
  ring_.unpin(id);
  sessions_.erase(id);
  sessions_live_->set(static_cast<double>(sessions_.size()));
}

// --- response plumbing ----------------------------------------------

void Router::on_shard_payload(ShardId shard, std::string payload) {
  auto it = shards_.find(shard);
  if (it == shards_.end()) return;  // late bytes from a failed shard
  if (it->second.fifo.empty()) return;  // unsolicited; drop
  PendingReply pending = std::move(it->second.fifo.front());
  it->second.fifo.pop_front();
  const bool was_shutdown = pending.kind == PendingReply::Kind::kShutdown;
  handle_shard_response(shard, pending, std::move(payload));
  if (was_shutdown) {
    // Drain complete: the worker acknowledged Shutdown and will close.
    auto again = shards_.find(shard);
    if (again != shards_.end() && again->second.draining) {
      shards_.erase(again);
      ring_.remove(shard);
      shards_gauge_->set(static_cast<double>(shards_.size()));
    }
    return;
  }
  maybe_finish_drain(shard);
}

void Router::handle_shard_response(ShardId shard, PendingReply& pending,
                                   std::string payload) {
  std::string error;
  std::optional<serve::Response> decoded =
      serve::decode_response(payload, &error);
  if (!decoded.has_value()) {
    // A worker speaking garbage: relay to the waiting client (it has a
    // decoder too) and skip bookkeeping.
    if (pending.has_client) {
      deliver(pending.client, pending.seq, std::move(payload));
    }
    return;
  }
  const serve::Response& resp = *decoded;
  switch (pending.kind) {
    case PendingReply::Kind::kForward: {
      observe_latency(pending, serve::request_type_name(resp.type));
      auto sit = sessions_.find(pending.session);
      if (sit != sessions_.end()) {
        SessionState& s = sit->second;
        // The worker answers a session's requests in forward order, so
        // this response belongs to the first unanswered log entry.
        auto entry = s.log.begin();
        while (entry != s.log.end() && entry->responded) ++entry;
        if (entry != s.log.end()) {
          if (resp.status == serve::Status::kOverloaded) {
            // Refused at admission — it never executed, so replaying
            // it after a failover would add steps the client was told
            // to retry. Drop it from history entirely.
            overloads_relayed_->inc();
            s.log.erase(entry);
          } else {
            entry->responded = true;
          }
        }
        if (resp.type == serve::RequestType::kClose &&
            resp.status == serve::Status::kOk) {
          ring_.unpin(pending.session);
          sessions_.erase(sit);
          sessions_live_->set(static_cast<double>(sessions_.size()));
        }
      }
      if (pending.has_client) {
        deliver(pending.client, pending.seq, std::move(payload));
      }
      break;
    }
    case PendingReply::Kind::kCheckpoint: {
      auto sit = sessions_.find(pending.session);
      if (sit == sessions_.end()) break;
      SessionState& s = sit->second;
      s.checkpoint_inflight = false;
      if (resp.status != serve::Status::kOk) break;  // retry later
      serve::MigrationImage image;
      image.spec = s.spec;
      image.base = resp.snapshot;  // v2 text; restores bit-exactly
      s.parked = serve::encode_migration_image(image);
      while (!s.log.empty() && s.log.front().index < pending.mark) {
        s.log.pop_front();
      }
      ++checkpoints_;
      checkpoints_counter_->inc();
      break;
    }
    case PendingReply::Kind::kMigrateOut: {
      auto sit = sessions_.find(pending.session);
      if (sit == sessions_.end()) break;
      SessionState& s = sit->second;
      if (resp.status != serve::Status::kOk) {
        // Overloaded (or refused): the session never left the source.
        s.moving = false;
        sessions_moving_->set(sessions_moving_->value() - 1);
        migration_aborts_->inc();
        flush_held(pending.session, s);
        break;
      }
      const ShardId target = shards_.count(pending.target) != 0
                                 ? pending.target
                                 : (pick_alive(pending.session)
                                        .value_or(pending.target));
      if (shards_.count(target) == 0) {
        abandon_session(pending.session, s, "no shards left");
        break;
      }
      record_flight(telemetry::ServeEventKind::kMigration,
                    pending.session, "out", resp.snapshot.size());
      // The exported image folds in every answered request, so it IS a
      // checkpoint: park it and clear the log NOW, not at adopt-ok —
      // otherwise a dead-target rollback would replay the logged steps
      // on top of an image that already contains them.
      s.parked = resp.snapshot;
      s.log.clear();
      send_adopt(target, pending.session, resp.snapshot,
                 /*replay_log=*/false);
      break;
    }
    case PendingReply::Kind::kMigrateIn:
      finish_adopt(shard, pending, resp, std::move(payload));
      break;
    case PendingReply::Kind::kReplayAbsorb:
    case PendingReply::Kind::kShutdown:
      break;  // swallowed by design
  }
}

void Router::finish_adopt(ShardId shard, PendingReply& pending,
                          const serve::Response& resp,
                          std::string payload) {
  (void)payload;
  auto sit = sessions_.find(pending.session);
  if (sit == sessions_.end()) return;
  SessionState& s = sit->second;
  s.adopt_inflight = false;
  if (resp.status != serve::Status::kOk) {
    if (shard != s.shard && shards_.count(s.shard) != 0) {
      // The destination refused; put the image back where it came
      // from.
      ++rollbacks_;
      rollbacks_counter_->inc();
      record_flight(telemetry::ServeEventKind::kMigration,
                    pending.session, "rollback",
                    pending.request_payload.size());
      send_adopt(s.shard, pending.session,
                 std::move(pending.request_payload), pending.replay_log);
      PendingReply& queued = shards_.at(s.shard).fifo.back();
      queued.has_client = pending.has_client;
      queued.client = pending.client;
      queued.seq = pending.seq;
      return;
    }
    // The session's own shard refused its state back: unrecoverable.
    if (pending.has_client) {
      respond_locally(pending.client, pending.seq,
                      make_error(serve::RequestType::kCreateSession, 0,
                                 "create failed: " + resp.error));
    }
    abandon_session(pending.session, s, "session unrecoverable");
    return;
  }

  const ShardId old_shard = s.shard;
  s.shard = shard;
  ring_.pin(pending.session, shard);
  if (s.moving) {
    s.moving = false;
    sessions_moving_->set(sessions_moving_->value() - 1);
  }
  if (pending.replay_log) {
    // Failover: rebuild the worker's timeline. Already-answered
    // requests re-execute silently (deterministic engines make the
    // result byte-identical); unanswered ones re-attach to their
    // waiting clients.
    ShardState& dest = shards_.at(shard);
    for (const LogEntry& entry : s.log) {
      PendingReply replay;
      replay.kind = entry.responded ? PendingReply::Kind::kReplayAbsorb
                                    : PendingReply::Kind::kForward;
      replay.session = pending.session;
      replay.has_client = !entry.responded && entry.has_client;
      replay.client = entry.client;
      replay.seq = entry.seq;
      replay.submit_us = now_us();
      dest.fifo.push_back(std::move(replay));
      host_->send_to_shard(shard, entry.payload);
    }
  } else {
    // Migration (or create): the shipped image IS a checkpoint — all
    // prior history is folded into it.
    s.parked = std::move(pending.request_payload);
    s.log.clear();
    if (old_shard != shard && !pending.has_client) {
      ++migrations_;
      migrations_counter_->inc();
      record_flight(telemetry::ServeEventKind::kMigration,
                    pending.session, "in", s.parked.size());
    }
  }
  if (pending.has_client) {
    // Router-side CreateSession: rewrite the adopt ack into the
    // create response the client is waiting for.
    serve::Response created;
    created.type = serve::RequestType::kCreateSession;
    created.session = pending.session;
    respond_locally(pending.client, pending.seq, created);
  }
  flush_held(pending.session, s);
  if (old_shard != shard) maybe_finish_drain(old_shard);
  // Landed on a shard that started draining while the image was in
  // flight? Move along immediately.
  auto dest_it = shards_.find(shard);
  if (dest_it != shards_.end() && dest_it->second.draining) {
    const std::optional<ShardId> next = pick_alive(pending.session);
    if (next.has_value() && *next != shard) migrate(pending.session, *next);
  }
}

void Router::flush_held(serve::SessionId id, SessionState& s) {
  while (!s.held.empty() && !s.moving) {
    auto [payload, identity] = std::move(s.held.front());
    s.held.pop_front();
    std::string decode_error;
    std::optional<serve::Request> req =
        serve::decode_request(payload, &decode_error);
    forward(s, id, std::move(payload), identity.has_client,
            identity.client, identity.seq);
    if (req.has_value() && req->type == serve::RequestType::kStep) {
      ++s.steps_since_move;
      maybe_auto_migrate(s, id);
    }
  }
}

void Router::respond_locally(ClientId client, std::uint64_t seq,
                             const serve::Response& resp) {
  deliver(client, seq, serve::encode_response(resp));
}

void Router::deliver(ClientId client, std::uint64_t seq,
                     std::string payload) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return;  // client hung up; drop
  ClientState& c = it->second;
  if (seq != c.next_deliver) {
    c.ready.emplace(seq, std::move(payload));
    return;
  }
  host_->send_to_client(client, std::move(payload));
  ++c.next_deliver;
  while (!c.ready.empty() && c.ready.begin()->first == c.next_deliver) {
    host_->send_to_client(client, std::move(c.ready.begin()->second));
    c.ready.erase(c.ready.begin());
    ++c.next_deliver;
  }
}

void Router::on_client_closed(ClientId client) { clients_.erase(client); }

// --- introspection --------------------------------------------------

std::string Router::shards_json() const {
  qta::JsonWriter json;
  json.begin_object();
  json.field("sessions", static_cast<std::uint64_t>(sessions_.size()));
  json.field("migrations", migrations_);
  json.field("failovers", failovers_);
  json.field("rollbacks", rollbacks_);
  json.field("checkpoints", checkpoints_);
  json.field("shutdown", shutdown_);
  json.key("shards").begin_array();
  for (const auto& [shard, state] : shards_) {
    json.begin_object();
    json.field("id", static_cast<std::uint64_t>(shard));
    json.field("draining", state.draining);
    json.field("sessions", static_cast<std::uint64_t>(sessions_on(shard)));
    json.field("inflight", static_cast<std::uint64_t>(state.fifo.size()));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace qta::shard

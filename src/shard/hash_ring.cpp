#include "shard/hash_ring.h"

namespace qta::shard {

HashRing::HashRing(unsigned vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

std::uint64_t HashRing::mix(std::uint64_t x) {
  // splitmix64 finalizer (Steele et al.): full-avalanche, bijective.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void HashRing::add(ShardId shard) {
  if (members_.count(shard) != 0) return;
  members_[shard] = true;
  for (unsigned replica = 0; replica < vnodes_; ++replica) {
    // Distinct shards must never collapse onto one point stream, so
    // the point key folds both ids before mixing. The second mix()
    // round domain-separates vnode points from key hashes: with one
    // round, shard 0's points would be mix(replica) — exactly the
    // values place() probes for small keys, parking every early
    // session id on shard 0.
    const std::uint64_t point =
        mix(mix((static_cast<std::uint64_t>(shard) << 32) | replica));
    // On the (astronomically unlikely) collision the earlier owner
    // keeps the point; placement stays deterministic either way.
    points_.emplace(point, shard);
  }
}

void HashRing::remove(ShardId shard) {
  if (members_.erase(shard) == 0) return;
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == shard) {
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
}

bool HashRing::contains(ShardId shard) const {
  return members_.count(shard) != 0;
}

std::optional<ShardId> HashRing::place(std::uint64_t key) const {
  if (points_.empty()) return std::nullopt;
  auto it = points_.lower_bound(mix(key));
  if (it == points_.end()) it = points_.begin();  // wrap the circle
  return it->second;
}

std::optional<ShardId> HashRing::lookup(std::uint64_t key) const {
  auto it = pins_.find(key);
  if (it != pins_.end()) return it->second;
  return place(key);
}

void HashRing::pin(std::uint64_t key, ShardId shard) { pins_[key] = shard; }

void HashRing::unpin(std::uint64_t key) { pins_.erase(key); }

std::optional<ShardId> HashRing::pinned(std::uint64_t key) const {
  auto it = pins_.find(key);
  if (it == pins_.end()) return std::nullopt;
  return it->second;
}

std::vector<ShardId> HashRing::shards() const {
  std::vector<ShardId> out;
  out.reserve(members_.size());
  for (const auto& [shard, _] : members_) out.push_back(shard);
  return out;
}

}  // namespace qta::shard

#include "shard/local_shard.h"

#include <utility>

namespace qta::shard {

LocalShard::LocalShard(const serve::ServerOptions& options)
    : server_(options) {}

void LocalShard::submit(std::string payload) {
  std::string error;
  std::optional<serve::Request> req =
      serve::decode_request(payload, &error);
  Slot slot;
  if (!req.has_value()) {
    serve::Response resp;
    resp.status = serve::Status::kError;
    resp.error = "parse error: " + error;
    slot.ready = true;
    slot.payload = serve::encode_response(resp);
  } else {
    slot.ticket = server_.submit(*req);
  }
  slots_.push_back(std::move(slot));
}

std::vector<std::string> LocalShard::poll() {
  server_.drain();
  std::vector<std::string> out;
  while (!slots_.empty()) {
    Slot& front = slots_.front();
    if (front.ready) {
      out.push_back(std::move(front.payload));
    } else if (server_.done(front.ticket)) {
      out.push_back(serve::encode_response(server_.take(front.ticket)));
    } else {
      break;  // reply order is arrival order; wait for the head
    }
    slots_.pop_front();
  }
  return out;
}

LocalCluster::LocalCluster(unsigned shard_count,
                           const RouterOptions& router_options,
                           const serve::ServerOptions& shard_options) {
  router_ = std::make_unique<Router>(router_options, this);
  for (ShardId id = 0; id < shard_count; ++id) {
    shards_.emplace(id, std::make_unique<LocalShard>(shard_options));
    router_->add_shard(id);
  }
}

LocalCluster::~LocalCluster() = default;

void LocalCluster::send_to_client(ClientId client, std::string payload) {
  responses_[client].push_back(std::move(payload));
  moved_bytes_ = true;
}

void LocalCluster::send_to_shard(ShardId shard, std::string payload) {
  auto it = shards_.find(shard);
  if (it == shards_.end()) return;  // killed shard: bytes on the floor
  it->second->submit(std::move(payload));
  moved_bytes_ = true;
}

void LocalCluster::client_request(ClientId client, std::string payload) {
  router_->on_client_payload(client, std::move(payload));
  settle();
}

std::vector<std::string> LocalCluster::take_responses(ClientId client) {
  std::vector<std::string> out = std::move(responses_[client]);
  responses_[client].clear();
  return out;
}

void LocalCluster::settle() {
  // Each pass pumps every shard and routes its responses; responses
  // can trigger new sends (migration steps, replays), so iterate to a
  // fixed point.
  do {
    moved_bytes_ = false;
    for (auto& [id, shard] : shards_) {
      for (std::string& payload : shard->poll()) {
        router_->on_shard_payload(id, std::move(payload));
        moved_bytes_ = true;
      }
    }
  } while (moved_bytes_);
}

void LocalCluster::kill(ShardId shard) {
  auto it = shards_.find(shard);
  if (it == shards_.end()) return;
  shards_.erase(it);  // queued work dies with the process
  router_->on_shard_failed(shard);
  settle();
}

LocalShard* LocalCluster::shard(ShardId id) {
  auto it = shards_.find(id);
  return it == shards_.end() ? nullptr : it->second.get();
}

}  // namespace qta::shard

// Router-side HTTP plane, the qtrouterd sibling of
// serve/http_endpoint.h: one pure function from request text to
// response bytes, so every route is unit-testable without a socket.
//
// Read routes (GET/HEAD):
//   /healthz        -> 200 "ok\n"
//   /metrics        -> 200 Prometheus text (router registry: the
//                      qtserve_-compatible families plus qtrouter_*)
//   /flightrecorder -> 200 router flight-recorder JSON, 404 if disabled
//   /shards         -> 200 topology JSON (Router::shards_json)
// Mutating routes (also GET — the plane is curl-driven tooling, not a
// REST service; each returns JSON {"ok":...}):
//   /migrate?session=S&shard=T  start migrating session S to shard T
//   /drain?shard=S              start draining shard S
//   /checkpoint                 checkpoint every session's replay log
// Unknown routes 404, other methods 405, unparsable request lines 400;
// every response closes the connection.
#pragma once

#include <string>

namespace qta::shard {

class Router;

std::string handle_router_http(Router& router,
                               const std::string& request_text);

}  // namespace qta::shard

#include "shard/shard_manager.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "serve/tcp.h"

#include <sys/socket.h>
#include <unistd.h>

namespace qta::shard {

std::vector<RebalanceMove> plan_rebalance(std::vector<ShardLoad> loads,
                                          double tolerance) {
  std::vector<RebalanceMove> moves;
  if (loads.size() < 2) return moves;
  double total = 0;
  for (const ShardLoad& l : loads) total += l.load;
  const double mean = total / static_cast<double>(loads.size());
  const double ceiling = mean * (1.0 + tolerance);
  // Most-loaded donates to least-loaded until every donor fits under
  // the ceiling. Sorting by (load, shard) keeps the plan deterministic
  // across identical inputs.
  auto by_load = [](const ShardLoad& a, const ShardLoad& b) {
    if (a.load != b.load) return a.load < b.load;
    return a.shard < b.shard;
  };
  std::sort(loads.begin(), loads.end(), by_load);
  std::size_t lo = 0;
  std::size_t hi = loads.size() - 1;
  while (lo < hi) {
    ShardLoad& donor = loads[hi];
    ShardLoad& taker = loads[lo];
    if (donor.load <= ceiling) break;  // everyone fits
    const double excess = donor.load - mean;
    const double room = mean - taker.load;
    const unsigned count = static_cast<unsigned>(
        std::max(0.0, std::min(excess, std::max(room, 0.0))));
    if (count == 0) {
      // The taker is already at the mean; move on.
      ++lo;
      continue;
    }
    moves.push_back(RebalanceMove{donor.shard, taker.shard, count});
    donor.load -= count;
    taker.load += count;
    if (taker.load >= mean) ++lo;
    if (donor.load <= ceiling) --hi;
  }
  return moves;
}

std::optional<double> scrape_gauge(const std::string& text,
                                   const std::string& family) {
  std::istringstream is(text);
  std::string line;
  double sum = 0;
  bool seen = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.compare(0, family.size(), family) != 0) continue;
    // The family name must end at '{', ' ', or the sample separator —
    // "qtserve_sessions" must not match "qtserve_sessions_live".
    const char next = line.size() > family.size() ? line[family.size()]
                                                  : '\0';
    if (next != '{' && next != ' ') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    sum += std::strtod(line.c_str() + space + 1, nullptr);
    seen = true;
  }
  if (!seen) return std::nullopt;
  return sum;
}

std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& path,
                                    std::string* error) {
  const int fd = serve::tcp_connect(host, port, error);
  if (fd == serve::kInvalidSocket) return std::nullopt;
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  if (!serve::send_all(fd, request, error)) {
    serve::tcp_close(fd);
    return std::nullopt;
  }
  // The serve endpoint always closes after one response, so EOF is the
  // delimiter.
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  serve::tcp_close(fd);
  const std::size_t line_end = response.find("\r\n");
  if (line_end == std::string::npos) {
    if (error != nullptr) *error = "malformed HTTP response";
    return std::nullopt;
  }
  const std::string status_line = response.substr(0, line_end);
  if (status_line.find(" 200 ") == std::string::npos) {
    if (error != nullptr) *error = "HTTP status: " + status_line;
    return std::nullopt;
  }
  const std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) return std::string();
  return response.substr(body + 4);
}

}  // namespace qta::shard

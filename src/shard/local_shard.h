// LocalShard + LocalCluster: an in-process shard fleet.
//
// LocalShard wraps one serve::Server behind qtserved's connection
// semantics — raw request payloads in, raw response payloads out, in
// arrival order (the per-connection FIFO invariant the Router's
// response correlation rests on). Undecodable payloads synthesize the
// same error reply the daemon would send, slotted at their arrival
// position.
//
// LocalCluster glues a Router to N LocalShards through an in-memory
// RouterHost: client payloads go in via client_request(), responses
// come back ordered per client, and settle() spins the
// shard-pump/response loop until the system is quiescent. kill()
// drops a shard on the floor — undelivered bytes and all — and feeds
// the router the same on_shard_failed a daemon would derive from a
// dead socket, which is exactly the failover path the CI smoke kills
// a real worker to exercise. Tests and bench_shard share this harness
// so migration/failover behavior is pinned without sockets.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/server.h"
#include "shard/router.h"

namespace qta::shard {

class LocalShard {
 public:
  explicit LocalShard(const serve::ServerOptions& options = {});

  /// Accepts one raw request payload (arrival order = reply order).
  void submit(std::string payload);
  /// Pumps the server dry and returns every response payload that is
  /// ready, in submission order (stalls behind an unfinished earlier
  /// request, exactly like a daemon connection).
  std::vector<std::string> poll();

  bool shutdown_requested() const { return server_.shutdown_requested(); }
  serve::Server& server() { return server_; }

 private:
  struct Slot {
    bool ready = false;      // synthesized locally (decode error)
    serve::Ticket ticket = 0;
    std::string payload;
  };

  serve::Server server_;
  std::deque<Slot> slots_;
};

/// In-memory Router + fleet harness. Shard ids are 0..count-1.
class LocalCluster : public RouterHost {
 public:
  LocalCluster(unsigned shard_count, const RouterOptions& router_options,
               const serve::ServerOptions& shard_options = {});
  ~LocalCluster() override;

  /// Sends one client request payload into the router.
  void client_request(ClientId client, std::string payload);
  /// Responses delivered to `client` so far, in order (consumed).
  std::vector<std::string> take_responses(ClientId client);
  /// Spins shards and response plumbing until nothing moves.
  void settle();
  /// Simulates a worker crash: the shard's queued work is lost and the
  /// router sees the failure.
  void kill(ShardId shard);

  Router& router() { return *router_; }
  LocalShard* shard(ShardId id);

  // RouterHost:
  void send_to_client(ClientId client, std::string payload) override;
  void send_to_shard(ShardId shard, std::string payload) override;

 private:
  std::map<ShardId, std::unique_ptr<LocalShard>> shards_;
  std::unique_ptr<Router> router_;
  std::map<ClientId, std::vector<std::string>> responses_;
  bool moved_bytes_ = false;  // did the last settle pass do anything?
};

}  // namespace qta::shard

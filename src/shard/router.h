// Router: the qtrouterd core, transport-agnostic (like serve::Server
// is to qtserved).
//
// The router sits in front of N qtserved workers ("shards"), each a
// separate process speaking ordinary QTSERVE-WIRE over its own TCP
// connection, and presents the same wire protocol to clients — one
// logical qtserved with the capacity of the fleet. docs/sharding.md is
// the full design document; the short version:
//
//   placement   Session ids are router-allocated. A new session lands
//               where the consistent-hash ring (shard/hash_ring.h)
//               puts its id and is pinned there; ring changes never
//               move a live session, migrations repoint the pin.
//   proxying    Data-plane frames are forwarded VERBATIM — trace_id /
//               parent_span ride through untouched, and the worker's
//               response bytes go back to the client unmodified. The
//               router decodes (never rewrites) responses for its own
//               bookkeeping. Each worker answers one connection's
//               requests in arrival order, so a per-shard FIFO of
//               pending replies gives exact request/response
//               correlation; per-client sequence numbers then restore
//               each client's arrival order when its requests fanned
//               out across shards.
//   migration   migrate(session, target) quiesces the session by
//               enqueuing MigrateOut behind its staged work (FIFO),
//               ships the returned image to the target via MigrateIn,
//               then atomically repoints the pin and flushes requests
//               held while the session was in flight. Bit-invisible to
//               clients: the image restores byte-identically (the
//               snapshot invariant, docs/runtime.md), and ordering is
//               preserved by the hold queue. A dead target rolls the
//               image back onto the source; a second migrate of an
//               in-flight session is refused.
//   failover    The router keeps, per session, the last checkpoint
//               image ("parked") plus a replay log of every
//               session-scoped request forwarded since. When a shard
//               dies, each of its sessions is adopted onto a survivor
//               from the parked image and the log is re-forwarded in
//               order — already-answered requests as absorb entries
//               whose responses are swallowed, unanswered ones
//               re-attached to their waiting clients. Deterministic
//               engines make the reconstruction bit-exact. Checkpoints
//               are router-injected Snapshot requests every
//               checkpoint_every forwards (migrations double as free
//               checkpoints).
//   drain       drain(shard) removes the shard from placement,
//               migrates every resident session to ring-chosen
//               survivors, and shuts the empty worker down.
//
// Threading: none. The router is single-threaded event-driven — the
// owner (qtrouterd's poll loop, or LocalCluster in tests) calls the
// on_* methods from one thread and ships bytes via the RouterHost
// callbacks. No mutex, same confinement discipline as serve::Server.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "shard/hash_ring.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace qta::shard {

using ClientId = std::uint64_t;

/// How Router bytes reach the world. Payloads are raw QTSERVE-WIRE
/// payloads (no length prefix); the host owns framing and sockets.
/// send_to_shard is only ever called for shards announced via
/// add_shard() and not yet failed/removed.
class RouterHost {
 public:
  virtual ~RouterHost() = default;
  virtual void send_to_client(ClientId client, std::string payload) = 0;
  virtual void send_to_shard(ShardId shard, std::string payload) = 0;
};

struct RouterOptions {
  /// Ring vnodes per shard.
  unsigned vnodes = 64;
  /// Inject a checkpoint (Snapshot) after this many session-scoped
  /// forwards per session, bounding the failover replay log. 0 = only
  /// migration-time checkpoints (the log then grows until one).
  unsigned checkpoint_every = 64;
  /// Auto-migrate a session to the next ring shard after this many
  /// Step forwards (the qtclient --verify "force a migration mid-run"
  /// hook; also exercises the machinery continuously in soaks). 0 =
  /// never.
  unsigned migrate_every = 0;
  /// Router flight-recorder ring (migration/failover events); 0
  /// disables.
  std::size_t flight_recorder_capacity = 256;
};

class Router {
 public:
  Router(const RouterOptions& options, RouterHost* host);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // --- topology (host-driven) ---

  /// Announces a connected worker. Joins the ring immediately.
  void add_shard(ShardId shard);
  /// The shard died (connection error/EOF): fail over its sessions
  /// onto survivors. Idempotent.
  void on_shard_failed(ShardId shard);

  // --- event input (host-driven) ---

  void on_client_payload(ClientId client, std::string payload);
  void on_client_closed(ClientId client);
  void on_shard_payload(ShardId shard, std::string payload);

  // --- control plane (HTTP routes / tests) ---

  /// Starts migrating `session` to `target`. False when the session or
  /// target is unknown, the target is the current owner or draining,
  /// or a migration is already in flight.
  bool migrate(serve::SessionId session, ShardId target);
  /// Starts draining `shard`: new placement avoids it, every resident
  /// session migrates away, and the empty worker gets a Shutdown.
  bool drain(ShardId shard);
  /// Injects a checkpoint for every session whose replay log is
  /// non-empty (the HTTP /checkpoint route).
  void checkpoint_all();

  // --- introspection ---

  /// Topology + counters as JSON (the Shards probe / HTTP /shards).
  std::string shards_json() const;
  bool shutdown_requested() const { return shutdown_; }
  /// Sessions currently owned by `shard` (draining/failover math).
  std::size_t sessions_on(ShardId shard) const;
  /// The ids of sessions owned by `shard` and not already moving, in
  /// ascending order — the rebalancer's pick list.
  std::vector<serve::SessionId> sessions_of(ShardId shard) const;
  std::size_t session_count() const { return sessions_.size(); }
  std::uint64_t migrations() const { return migrations_; }
  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t rollbacks() const { return rollbacks_; }
  std::uint64_t checkpoints() const { return checkpoints_; }

  telemetry::MetricsRegistry& metrics() { return metrics_; }
  telemetry::FlightRecorder* flight() { return flight_.get(); }
  const HashRing& ring() const { return ring_; }
  /// Lets qtrouterd surface scraped per-worker hot counts through the
  /// router's own qtserve_sessions_hot gauge (qtclient --top parity).
  void set_hot_sessions(double hot);

 private:
  /// One expected response on a shard's FIFO. The worker answers its
  /// connection in request order, so front-of-FIFO is always the next
  /// response's identity.
  struct PendingReply {
    enum class Kind {
      kForward,       // a client request proxied verbatim
      kCheckpoint,    // router-injected Snapshot (log pruning)
      kMigrateOut,    // migration step 1: export from the source
      kMigrateIn,     // adopt: migration step 2 / rollback / failover /
                      // router-side CreateSession
      kReplayAbsorb,  // failover re-execution of an already-answered
                      // request; response swallowed
      kShutdown,      // drain completion; response swallowed
    };
    Kind kind = Kind::kForward;
    serve::SessionId session = 0;
    bool has_client = false;
    ClientId client = 0;
    std::uint64_t seq = 0;  // client-order slot (has_client only)
    /// kMigrateIn: the full encoded request, kept so a dead target's
    /// adopt can be re-sent to the rollback/failover destination.
    /// kForward: empty — the replay log owns the client bytes.
    std::string request_payload;
    /// kMigrateIn: finishing this adopt must replay the session's log
    /// onto the answering shard (failover) instead of clearing it
    /// (migration/create).
    bool replay_log = false;
    /// kCheckpoint: log entries with index < mark are covered by the
    /// snapshot in this reply.
    std::uint64_t mark = 0;
    /// kMigrateOut: where the exported image should land.
    ShardId target = 0;
    std::uint64_t submit_us = 0;  // proxy-hop latency measurement
  };

  /// A session-scoped request forwarded since the last checkpoint; the
  /// failover replay unit.
  struct LogEntry {
    std::uint64_t index = 0;  // monotone per session, survives pruning
    std::string payload;
    bool has_client = false;
    ClientId client = 0;
    std::uint64_t seq = 0;
    bool responded = false;
  };

  struct SessionState {
    ShardId shard = 0;
    serve::SessionSpec spec;
    /// Migration/failover in flight: requests hold in `held` until the
    /// adopt lands.
    bool moving = false;
    std::string parked;  // encoded MigrationImage at last checkpoint;
                         // "" = reconstruct from spec (fresh)
    std::deque<LogEntry> log;
    std::uint64_t next_log_index = 0;
    std::deque<std::pair<std::string, PendingReply>> held;  // payload+identity
    unsigned forwards_since_checkpoint = 0;
    unsigned steps_since_move = 0;
    bool checkpoint_inflight = false;
    /// A MigrateIn for this session sits on adopt_dest's FIFO (so a
    /// source-shard death must NOT double-adopt: the in-flight image is
    /// fresher than `parked`).
    bool adopt_inflight = false;
    ShardId adopt_dest = 0;
  };

  struct ClientState {
    std::uint64_t next_seq = 0;      // assigned at request arrival
    std::uint64_t next_deliver = 0;  // flushed up to here
    std::map<std::uint64_t, std::string> ready;  // out-of-order holds
  };

  struct ShardState {
    bool draining = false;
    std::deque<PendingReply> fifo;
  };

  // Request intake.
  void handle_create(ClientId client, std::uint64_t seq,
                     const serve::Request& req);
  void route_session_request(ClientId client, std::uint64_t seq,
                             const serve::Request& req,
                             std::string payload);
  void forward(SessionState& s, serve::SessionId id, std::string payload,
               bool has_client, ClientId client, std::uint64_t seq);
  void maybe_checkpoint(SessionState& s, serve::SessionId id);
  void maybe_auto_migrate(SessionState& s, serve::SessionId id);

  // Response plumbing.
  void handle_shard_response(ShardId shard, PendingReply& pending,
                             std::string payload);
  void finish_adopt(ShardId shard, PendingReply& pending,
                    const serve::Response& resp, std::string payload);
  void respond_locally(ClientId client, std::uint64_t seq,
                       const serve::Response& resp);
  void deliver(ClientId client, std::uint64_t seq, std::string payload);
  void flush_held(serve::SessionId id, SessionState& s);

  // Migration/failover steps.
  void send_adopt(ShardId target, serve::SessionId id, std::string encoded,
                  bool replay_log);
  void begin_failover(serve::SessionId id, SessionState& s);
  std::optional<ShardId> pick_alive(std::uint64_t key) const;
  /// The next live, non-draining shard after `current` in ascending id
  /// order, wrapping — the auto-migrate target choice.
  std::optional<ShardId> next_shard_after(ShardId current) const;
  /// Error-responds everything waiting on the session and removes it
  /// (the no-survivors / unrecoverable paths).
  void abandon_session(serve::SessionId id, SessionState& s,
                       const char* why);
  void maybe_finish_drain(ShardId shard);
  void record_flight(telemetry::ServeEventKind kind, serve::SessionId id,
                     const char* label, std::uint64_t value);
  std::uint64_t now_us() const;
  void observe_latency(const PendingReply& pending, const char* type_name);

  RouterOptions options_;
  RouterHost* host_;
  telemetry::MetricsRegistry metrics_;
  std::unique_ptr<telemetry::FlightRecorder> flight_;
  HashRing ring_;
  std::map<ShardId, ShardState> shards_;
  std::map<serve::SessionId, SessionState> sessions_;
  std::map<ClientId, ClientState> clients_;
  serve::SessionId next_session_ = 1;
  bool shutdown_ = false;
  std::chrono::steady_clock::time_point epoch_;

  std::uint64_t migrations_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t checkpoints_ = 0;

  // Instrument handles (eagerly registered; docs/sharding.md catalog).
  telemetry::Counter* requests_by_type_[12] = {};
  telemetry::Counter* overloads_relayed_ = nullptr;
  telemetry::Counter* migrations_counter_ = nullptr;
  telemetry::Counter* migration_aborts_ = nullptr;
  telemetry::Counter* failovers_counter_ = nullptr;
  telemetry::Counter* failover_sessions_ = nullptr;
  telemetry::Counter* rollbacks_counter_ = nullptr;
  telemetry::Counter* checkpoints_counter_ = nullptr;
  telemetry::Gauge* shards_gauge_ = nullptr;
  telemetry::Gauge* sessions_live_ = nullptr;
  telemetry::Gauge* sessions_hot_ = nullptr;
  telemetry::Gauge* sessions_moving_ = nullptr;
};

}  // namespace qta::shard

#include "shard/http_plane.h"

#include <cstdlib>
#include <map>

#include "shard/router.h"

namespace qta::shard {

namespace {

std::string http_response(const char* status_line, const std::string& body,
                          const char* content_type, bool include_body) {
  std::string out = "HTTP/1.0 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (include_body) out += body;
  return out;
}

/// "a=1&b=2" -> {a:1, b:2}; values are raw (the plane's params are all
/// unsigned integers, nothing needs percent-decoding).
std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      out[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return out;
}

std::string ok_json(bool ok) {
  return std::string("{\"ok\":") + (ok ? "true" : "false") + "}\n";
}

}  // namespace

std::string handle_router_http(Router& router,
                               const std::string& request_text) {
  const std::size_t line_end = request_text.find_first_of("\r\n");
  const std::string line = request_text.substr(
      0, line_end == std::string::npos ? request_text.size() : line_end);
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string::npos || method_end == 0) {
    return http_response("400 Bad Request", "bad request\n", "text/plain",
                         true);
  }
  const std::string method = line.substr(0, method_end);
  std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string::npos) target_end = line.size();
  std::string target =
      line.substr(method_end + 1, target_end - method_end - 1);
  std::string query;
  const std::size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    query = target.substr(qpos + 1);
    target.resize(qpos);
  }

  const bool head = method == "HEAD";
  if (method != "GET" && !head) {
    return http_response("405 Method Not Allowed", "only GET here\n",
                         "text/plain", true);
  }
  if (target == "/healthz") {
    return http_response("200 OK", "ok\n", "text/plain", !head);
  }
  if (target == "/metrics") {
    return http_response("200 OK", router.metrics().prometheus_text(),
                         "text/plain; version=0.0.4", !head);
  }
  if (target == "/flightrecorder") {
    const telemetry::FlightRecorder* flight = router.flight();
    if (flight == nullptr) {
      return http_response("404 Not Found", "flight recorder disabled\n",
                           "text/plain", true);
    }
    return http_response("200 OK", flight->json_text(), "application/json",
                         !head);
  }
  if (target == "/shards") {
    return http_response("200 OK", router.shards_json(),
                         "application/json", !head);
  }
  if (target == "/migrate") {
    const auto params = parse_query(query);
    const auto session = params.find("session");
    const auto shard = params.find("shard");
    if (session == params.end() || shard == params.end()) {
      return http_response("400 Bad Request",
                           "need ?session=S&shard=T\n", "text/plain", true);
    }
    const bool ok = router.migrate(
        std::strtoull(session->second.c_str(), nullptr, 10),
        static_cast<ShardId>(
            std::strtoul(shard->second.c_str(), nullptr, 10)));
    return http_response("200 OK", ok_json(ok), "application/json", !head);
  }
  if (target == "/drain") {
    const auto params = parse_query(query);
    const auto shard = params.find("shard");
    if (shard == params.end()) {
      return http_response("400 Bad Request", "need ?shard=S\n",
                           "text/plain", true);
    }
    const bool ok = router.drain(static_cast<ShardId>(
        std::strtoul(shard->second.c_str(), nullptr, 10)));
    return http_response("200 OK", ok_json(ok), "application/json", !head);
  }
  if (target == "/checkpoint") {
    router.checkpoint_all();
    return http_response("200 OK", ok_json(true), "application/json",
                         !head);
  }
  return http_response("404 Not Found", "no such route\n", "text/plain",
                       true);
}

}  // namespace qta::shard

#include "common/thread_pool.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace qta {

unsigned resolve_thread_count(unsigned requested, unsigned hardware,
                              std::size_t max_useful) {
  // hardware_concurrency() "may return 0 if the value is not computable";
  // treat that as a single-threaded machine rather than clamping through 0.
  unsigned t = requested != 0 ? requested : (hardware != 0 ? hardware : 1);
  if (max_useful < t) t = static_cast<unsigned>(max_useful);
  return std::max(1u, t);
}

ThreadPool::ThreadPool(unsigned threads)
    : steal_counts_(resolve_thread_count(
          threads, std::thread::hardware_concurrency(),
          std::numeric_limits<std::size_t>::max())) {
  const unsigned n = static_cast<unsigned>(steal_counts_.size());
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::try_pop(unsigned id, std::size_t& item) {
  WorkerQueue& q = *queues_[id];
  MutexLock lock(q.mu);
  if (q.items.empty()) return false;
  item = q.items.front();
  q.items.pop_front();
  return true;
}

bool ThreadPool::try_steal(unsigned thief, std::size_t& item) {
  const unsigned n = static_cast<unsigned>(queues_.size());
  for (unsigned k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[(thief + k) % n];
    MutexLock lock(victim.mu);
    if (victim.items.empty()) continue;
    item = victim.items.back();
    victim.items.pop_back();
    steal_counts_[thief].fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_main(unsigned id) {
  std::uint64_t seen_epoch = 0;
  mu_.lock();
  for (;;) {
    // Explicit predicate loop (not the lambda-predicate wait overload):
    // the thread-safety analysis is intra-procedural, so the guarded
    // reads must be syntactically under the lock here.
    while (!stop_ && epoch_ == seen_epoch) work_cv_.wait(mu_);
    if (stop_) {
      mu_.unlock();
      return;
    }
    seen_epoch = epoch_;
    // A worker that slept through a whole batch (siblings drained it)
    // wakes here with a stale fn_; its queues are empty by then, so the
    // pointer is never called.
    const std::function<void(std::size_t)>* fn = fn_;
    ++active_;
    mu_.unlock();
    std::size_t done_here = 0;
    std::size_t item = 0;
    for (;;) {
      bool stolen = false;
      if (!try_pop(id, item)) {
        if (!try_steal(id, item)) break;
        stolen = true;
      }
      TaskObserver* obs = observer_.load(std::memory_order_acquire);
      if (obs != nullptr) obs->on_task_start(id, item, stolen);
      (*fn)(item);
      if (obs != nullptr) obs->on_task_end(id, item);
      ++done_here;
    }
    mu_.lock();
    QTA_CHECK(unfinished_ >= done_here);
    unfinished_ -= done_here;
    --active_;
    if (unfinished_ == 0 && active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  MutexLock serialize(submit_mu_);
  const unsigned n = size();
  MutexLock lock(mu_);
  // Item placement happens under mu_, so a worker can only observe the
  // new items together with the new epoch (and thus the new fn_).
  // Round-robin initial placement (the old static layout); stealing
  // rebalances from here.
  for (std::size_t i = 0; i < count; ++i) {
    WorkerQueue& q = *queues_[i % n];
    MutexLock qlock(q.mu);
    q.items.push_back(i);
  }
  fn_ = &fn;
  unfinished_ = count;
  ++epoch_;
  work_cv_.notify_all();
  // Wait for quiescence, not just completion: every worker must be back
  // inside the wait loop before fn (a caller-owned reference) dies.
  while (unfinished_ != 0 || active_ != 0) done_cv_.wait(mu_);
}

std::uint64_t ThreadPool::steals() const {
  std::uint64_t total = 0;
  for (const auto& s : steal_counts_) {
    total += s.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace qta

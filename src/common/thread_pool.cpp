#include "common/thread_pool.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace qta {

namespace {

/// One spin-loop iteration's pause: tells the core (and a hypervisor)
/// that this is a busy-wait, without giving up the timeslice.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

unsigned resolve_thread_count(unsigned requested, unsigned hardware,
                              std::size_t max_useful) {
  // hardware_concurrency() "may return 0 if the value is not computable";
  // treat that as a single-threaded machine rather than clamping through 0.
  unsigned t = requested != 0 ? requested : (hardware != 0 ? hardware : 1);
  if (max_useful < t) t = static_cast<unsigned>(max_useful);
  return std::max(1u, t);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_thread_count(
      threads, std::thread::hardware_concurrency(),
      std::numeric_limits<std::size_t>::max());
  steal_counts_ = std::make_unique<PaddedCounter[]>(n + 1);
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::try_pop(unsigned id, std::size_t& item) {
  WorkerQueue& q = *queues_[id];
  MutexLock lock(q.mu);
  if (q.items.empty()) return false;
  item = q.items.front();
  q.items.pop_front();
  return true;
}

std::size_t ThreadPool::steal_batch(unsigned thief, std::size_t* buf,
                                    std::size_t cap) {
  const unsigned n = static_cast<unsigned>(queues_.size());
  for (unsigned k = 1; k <= n; ++k) {
    const unsigned v = (thief + k) % n;
    if (v == thief) continue;  // a worker never "steals" its own deque
    WorkerQueue& victim = *queues_[v];
    MutexLock lock(victim.mu);
    const std::size_t avail = victim.items.size();
    if (avail == 0) continue;
    // Half of what remains, so repeated raids split the backlog in
    // O(log n) lock acquisitions instead of one per item.
    const std::size_t take = std::min(cap, (avail + 1) / 2);
    for (std::size_t j = 0; j < take; ++j) {
      buf[j] = victim.items.back();
      victim.items.pop_back();
    }
    steal_counts_[thief].count.fetch_add(take, std::memory_order_relaxed);
    return take;
  }
  return 0;
}

void ThreadPool::run_items(unsigned context,
                           const std::function<void(std::size_t)>& fn,
                           std::size_t& done_here) {
  const unsigned n = size();
  // The submitter (context == n) owns no deque; its steal surplus stays
  // in this local stash instead of being re-queued where workers would
  // immediately steal it back.
  std::size_t stash[kStealCap];
  std::size_t stash_n = 0;
  for (;;) {
    std::size_t item = 0;
    bool stolen = false;
    if (context < n && try_pop(context, item)) {
      // own deque, initial placement (or re-queued steal surplus)
    } else if (stash_n > 0) {
      item = stash[--stash_n];
      stolen = true;
    } else {
      std::size_t buf[kStealCap];
      const std::size_t got = steal_batch(context, buf, kStealCap);
      if (got == 0) break;
      stolen = true;
      item = buf[0];
      if (got > 1) {
        if (context < n) {
          WorkerQueue& q = *queues_[context];
          MutexLock lock(q.mu);
          for (std::size_t j = 1; j < got; ++j) q.items.push_back(buf[j]);
        } else {
          for (std::size_t j = 1; j < got; ++j) stash[stash_n++] = buf[j];
        }
      }
    }
    TaskObserver* obs = observer_.load(std::memory_order_acquire);
    if (obs != nullptr) obs->on_task_start(context, item, stolen);
    fn(item);
    if (obs != nullptr) obs->on_task_end(context, item);
    ++done_here;
  }
}

void ThreadPool::worker_main(unsigned id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    // Backoff before the park: spin briefly on the lock-free epoch
    // mirror (pause first, then yields) so a batch submitted right
    // after the previous one is picked up without a futex round trip.
    // Bounded, so shutdown is never delayed past a few yields.
    for (int spin = 0; spin < 48; ++spin) {
      if (epoch_hint_.load(std::memory_order_acquire) != seen_epoch) break;
      if (spin < 40) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
    mu_.lock();
    // Explicit predicate loop (not the lambda-predicate wait overload):
    // the thread-safety analysis is intra-procedural, so the guarded
    // reads must be syntactically under the lock here. epoch_ under mu_
    // stays authoritative; the hint above is only a fast path.
    while (!stop_ && epoch_ == seen_epoch) work_cv_.wait(mu_);
    if (stop_) {
      mu_.unlock();
      return;
    }
    seen_epoch = epoch_;
    // A worker that slept through a whole batch (siblings drained it)
    // wakes here with a stale fn_; its queues are empty by then, so the
    // pointer is never called.
    const std::function<void(std::size_t)>* fn = fn_;
    ++active_;
    mu_.unlock();
    std::size_t done_here = 0;
    run_items(id, *fn, done_here);
    mu_.lock();
    QTA_CHECK(unfinished_ >= done_here);
    unfinished_ -= done_here;
    --active_;
    if (unfinished_ == 0 && active_ == 0) done_cv_.notify_all();
    mu_.unlock();
  }
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  MutexLock serialize(submit_mu_);
  const unsigned n = size();
  std::uint64_t epoch_now = 0;
  {
    MutexLock lock(mu_);
    // Item placement happens under mu_, so a worker can only observe
    // the new items together with the new epoch (and thus the new fn_).
    // Contiguous chunks (worker i gets count/n adjacent items);
    // stealing rebalances from here.
    const std::size_t base = count / n;
    const std::size_t extra = count % n;
    std::size_t next = 0;
    for (unsigned i = 0; i < n; ++i) {
      const std::size_t len = base + (i < extra ? 1 : 0);
      if (len == 0) continue;
      WorkerQueue& q = *queues_[i];
      MutexLock qlock(q.mu);
      for (std::size_t j = 0; j < len; ++j) q.items.push_back(next++);
    }
    fn_ = &fn;
    unfinished_ = count;
    ++epoch_;
    epoch_now = epoch_;
  }
  epoch_hint_.store(epoch_now, std::memory_order_release);
  work_cv_.notify_all();
  // The submitter joins the batch as execution context `n` instead of
  // parking: on a host with fewer cores than workers the pool then
  // degrades to ~serial execution on this thread (no context-switch
  // tax); with idle cores the workers claim the items first.
  std::size_t done_here = 0;
  run_items(n, fn, done_here);
  MutexLock lock(mu_);
  QTA_CHECK(unfinished_ >= done_here);
  unfinished_ -= done_here;
  // Wait for quiescence, not just completion: every worker must be back
  // inside the wait loop before fn (a caller-owned reference) dies.
  while (unfinished_ != 0 || active_ != 0) done_cv_.wait(mu_);
}

std::uint64_t ThreadPool::steals() const {
  const unsigned slots = size() + 1;
  std::uint64_t total = 0;
  for (unsigned i = 0; i < slots; ++i) {
    total += steal_counts_[i].count.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace qta

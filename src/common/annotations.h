// Clang Thread Safety Analysis attribute macros.
//
// Lock discipline in this repo is a build-time property: every mutex and
// condition-variable member under src/ either uses the annotated wrappers
// in common/mutex.h or carries one of these QTA_* annotations (enforced
// by qtlint's mutex-annotation rule), and the `thread-safety` CMake
// preset builds the whole tree under clang's
// `-Wthread-safety -Wthread-safety-beta -Werror`.
//
// The macros expand to clang's capability attributes and compile away on
// GCC (which has no thread-safety analysis), so annotated code builds
// identically everywhere and the analysis runs in the clang CI leg.
// docs/static_analysis.md has the usage guide; the authoritative
// attribute semantics are
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.
//
// Escapes from the analysis use QTA_NO_THREAD_SAFETY_ANALYSIS on the
// narrowest possible function — never a pragma, so qtlint and reviewers
// can grep one spelling.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define QTA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef QTA_THREAD_ANNOTATION
#define QTA_THREAD_ANNOTATION(x)  // compiled away: no analysis available
#endif

/// Declares a type to be a capability ("mutex"-kind) the analysis tracks.
#define QTA_CAPABILITY(x) QTA_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime equals a capability hold.
#define QTA_SCOPED_CAPABILITY QTA_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define QTA_GUARDED_BY(x) QTA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define QTA_PT_GUARDED_BY(x) QTA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capabilities held (and keeps
/// them held).
#define QTA_REQUIRES(...) \
  QTA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define QTA_REQUIRES_SHARED(...) \
  QTA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capabilities (caller must not hold them).
#define QTA_ACQUIRE(...) \
  QTA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define QTA_ACQUIRE_SHARED(...) \
  QTA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the capabilities (caller must hold them).
#define QTA_RELEASE(...) \
  QTA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define QTA_RELEASE_SHARED(...) \
  QTA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `result`.
#define QTA_TRY_ACQUIRE(...) \
  QTA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must be called WITHOUT the capabilities held (deadlock
/// documentation for self-locking APIs).
#define QTA_EXCLUDES(...) QTA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis that the capability is held.
#define QTA_ASSERT_CAPABILITY(x) QTA_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the named capability.
#define QTA_RETURN_CAPABILITY(x) QTA_THREAD_ANNOTATION(lock_returned(x))

/// Opts one function out of the analysis. Use only with a comment
/// explaining why the invariant holds anyway.
#define QTA_NO_THREAD_SAFETY_ANALYSIS \
  QTA_THREAD_ANNOTATION(no_thread_safety_analysis)

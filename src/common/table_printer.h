// Aligned ASCII table output used by every benchmark binary to print the
// paper-style tables (Table I/II, Figure data series) to stdout.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qta {

/// Collects rows of string cells and renders them with aligned columns.
///
/// Usage:
///   TablePrinter t({"|S|", "DSP", "BRAM%"});
///   t.add_row({"64", "4", "0.02"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders header, separator and rows. Columns are right-aligned except
  /// the first, which is left-aligned (row label convention).
  void print(std::ostream& os) const;

  /// Renders as comma-separated values (for piping into plotting tools).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming zeros.
std::string format_double(double v, int digits = 3);

/// Formats a throughput in samples/s the way the paper does: "105.5K",
/// "189M" etc.
std::string format_rate(double samples_per_sec);

/// Formats a count with thousands separators: 1234567 -> "1,234,567".
std::string format_count(std::uint64_t v);

}  // namespace qta

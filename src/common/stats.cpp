#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qta {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> data, double pct) {
  QTA_CHECK(!data.empty());
  QTA_CHECK(pct >= 0.0 && pct <= 100.0);
  std::sort(data.begin(), data.end());
  if (data.size() == 1) return data[0];
  const double rank = pct / 100.0 * static_cast<double>(data.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= data.size()) return data.back();
  return data[lo] * (1.0 - frac) + data[lo + 1] * frac;
}

}  // namespace qta

// Annotated synchronization primitives: qta::Mutex / MutexLock / CondVar.
//
// libstdc++'s std::mutex carries no capability attributes, so clang's
// thread-safety analysis cannot see through it. These thin wrappers put
// the attributes on the API surface (zero runtime cost — every method is
// an inline forward) so that QTA_GUARDED_BY(mu_) members and
// QTA_REQUIRES(mu_) methods are actually checked by the `thread-safety`
// preset. All concurrency code under src/ uses these instead of the raw
// std types (enforced by qtlint's mutex-annotation rule).
//
// CondVar deliberately exposes only the un-predicated wait(Mutex&):
// the analysis is intra-procedural and cannot look into a predicate
// lambda, so callers write the explicit loop —
//
//   while (!ready_) cv_.wait(mu_);   // ready_ is QTA_GUARDED_BY(mu_)
//
// — which the analysis verifies reads `ready_` under `mu_`.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace qta {

class CondVar;

/// std::mutex with capability attributes. Prefer MutexLock for scoped
/// holds; call lock()/unlock() directly only where a hold must span a
/// non-lexical region (e.g. a worker loop re-arming around a batch).
class QTA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QTA_ACQUIRE() { mu_.lock(); }
  void unlock() QTA_RELEASE() { mu_.unlock(); }
  bool try_lock() QTA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() needs the native handle to sleep on

  // This IS the annotated wrapper: the raw mutex below is the capability
  // itself, not state guarded by one.
  std::mutex mu_;  // qtlint: allow(mutex-annotation)
};

/// RAII lock over qta::Mutex, visible to the analysis as a scoped
/// capability (the std::lock_guard / std::unique_lock equivalent).
class QTA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QTA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() QTA_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to qta::Mutex. wait() requires the mutex so
/// the analysis proves every predicate read happens under the lock; see
/// the header comment for the loop idiom.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and re-acquires `mu` before
  /// returning. Spurious wakeups happen; always wait in a loop.
  void wait(Mutex& mu) QTA_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back without unlocking, so from the
    // analysis's point of view `mu` is held across the whole call.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // Part of the annotated wrapper itself; the capability relationship
  // lives on wait()'s QTA_REQUIRES signature.
  std::condition_variable cv_;  // qtlint: allow(mutex-annotation)
};

}  // namespace qta

#include "common/cli.h"

#include <cstdlib>
#include <stdexcept>

#include "common/check.h"

namespace qta {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    QTA_CHECK_MSG(!body.empty(), "bare '--' is not a valid flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";  // boolean form
    }
  }
}

const std::string* CliFlags::find(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return nullptr;
  consumed_[name] = true;
  return &it->second;
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& def) const {
  const std::string* v = find(name);
  return v ? *v : def;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t def) const {
  const std::string* v = find(name);
  if (!v) return def;
  QTA_CHECK_MSG(!v->empty(), "integer flag given without a value");
  return std::strtoll(v->c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name, double def) const {
  const std::string* v = find(name);
  if (!v) return def;
  QTA_CHECK_MSG(!v->empty(), "double flag given without a value");
  return std::strtod(v->c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  const std::string* v = find(name);
  if (!v) return def;
  if (v->empty() || *v == "true" || *v == "1") return true;
  if (*v == "false" || *v == "0") return false;
  QTA_CHECK_MSG(false, "boolean flag must be true/false/1/0");
  return def;
}

bool CliFlags::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::vector<std::string> CliFlags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (!consumed_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace qta

// Persistent work-stealing thread pool for host-side parallel sweeps.
//
// IndependentPipelines used to spawn fresh std::threads on every
// run_samples_each call and assign pipelines to threads with a static
// round-robin (pipeline i -> thread i % T). With heterogeneous
// partitions the static buckets serialize on their slowest member: one
// large partition pins its bucket while the other threads finish their
// small partitions and go idle. This pool keeps its workers alive across
// calls and hands out items through per-worker deques with stealing, so
// an idle worker drains the backlog of a loaded one instead of parking.
//
// Scheduling model: parallel_for(count, fn) places contiguous chunks of
// the item indices on the worker deques (chunks, not round-robin, so a
// worker's initial share walks adjacent items — adjacent pipelines tend
// to share cache-warm tables), wakes the workers, and then the CALLER
// joins the batch as an extra execution context: it steals and executes
// items itself instead of parking on a condvar. On a host with fewer
// cores than workers that makes the pool degrade to ~serial execution
// with no context-switch tax (the submitter does the work); with idle
// cores the workers win the items instead. parallel_for returns once
// every item has executed.
//
// Stealing is batched: a thief takes half of the victim's remaining
// items (capped) in one lock acquisition, keeps one, and queues the rest
// on its own deque. A skewed batch therefore costs O(log n) steal
// operations instead of one per item, and the steal locks stop being the
// bottleneck at high worker counts. Each WorkerQueue is cache-line
// aligned so one worker's queue traffic does not false-share with its
// neighbours'; the steal counters get the same treatment.
//
// Between batches a worker spins briefly on the epoch (pause, then
// yield) before parking on the condvar, so back-to-back parallel_for
// calls (the MultiPipeline run loop) skip the wake-from-futex latency.
//
// One batch runs at a time; parallel_for is serialized and must not be
// re-entered from inside fn (workers execute fn directly, so a nested
// call would deadlock on the batch lock).
//
// Lock discipline (checked by clang -Wthread-safety via the QTA_*
// annotations): batch state lives under mu_; each deque under its own
// WorkerQueue::mu. The only nesting is mu_ -> q.mu inside parallel_for;
// thieves hold at most ONE queue lock at a time (a steal batch is
// staged in a local buffer and re-queued after the victim's lock is
// released), so the order is acyclic.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace qta {

/// Observation hook for pool activity. Defined here rather than in
/// src/telemetry so the pool stays at the bottom of the dependency
/// stack; the telemetry adapter (src/telemetry/pool_observer.h)
/// implements it to draw one Perfetto track per worker. Methods run on
/// the executing worker's thread; an implementation shared by several
/// workers must confine per-worker state to per-worker slots or lock.
/// The submitting thread also executes items (see parallel_for) and
/// reports them with `worker == ThreadPool::size()` — implementations
/// must size their per-worker slots with one extra entry.
class TaskObserver {
 public:
  virtual ~TaskObserver() = default;
  /// Immediately before fn(item) runs. `stolen` is true when the item
  /// was taken from a sibling's deque.
  virtual void on_task_start(unsigned worker, std::size_t item, bool stolen) {
    (void)worker;
    (void)item;
    (void)stolen;
  }
  /// Immediately after fn(item) returned.
  virtual void on_task_end(unsigned worker, std::size_t item) {
    (void)worker;
    (void)item;
  }
};

/// Resolves a user-facing thread-count request into an actual worker
/// count. `requested == 0` means "use the hardware", `hardware` is the
/// caller's std::thread::hardware_concurrency() reading (which is
/// DOCUMENTED to return 0 when the platform cannot report a value — that
/// case falls back to a single thread explicitly), and `max_useful` caps
/// the answer at the number of independent work items.
unsigned resolve_thread_count(unsigned requested, unsigned hardware,
                              std::size_t max_useful);

class ThreadPool {
 public:
  /// `threads == 0` resolves to the hardware concurrency (minimum 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for every i in [0, count) across the pool (plus the
  /// calling thread) and returns once all items finished. Items are
  /// claimed dynamically (stealing), so callers must not assume any
  /// index-to-thread mapping.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn)
      QTA_EXCLUDES(mu_);

  /// Total items moved out of a sibling's deque by steal operations
  /// since construction (counted per item, not per steal batch — the
  /// value is "items that ran somewhere other than their initial
  /// placement"). Diagnostic; per-slot counts are relaxed atomics, so
  /// this is safe to poll from any thread while a batch is in flight
  /// (the value is then a snapshot that may lag in-progress steals).
  std::uint64_t steals() const;

  /// Attaches (or detaches, with nullptr) a task observer. Costs one
  /// relaxed atomic load per item when detached. Only call while no
  /// batch is in flight; the observer must outlive its attachment.
  void set_observer(TaskObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }

 private:
  /// Most items a single steal operation moves. Half-of-victim splits
  /// work in O(log n) steals; the cap bounds the per-operation lock
  /// hold time (and the thief's stack buffer).
  static constexpr std::size_t kStealCap = 16;

  /// Cache-line aligned so one worker's pop traffic does not invalidate
  /// its neighbour's queue header (the deques are hit on every item).
  struct alignas(64) WorkerQueue {
    Mutex mu;
    std::deque<std::size_t> items QTA_GUARDED_BY(mu);
  };

  /// One counter per cache line; workers bump their own slot per stolen
  /// item, and sharing a line would turn the relaxed adds into
  /// coherence ping-pong under heavy stealing.
  struct alignas(64) PaddedCounter {
    std::atomic<std::uint64_t> count{0};
  };

  void worker_main(unsigned id) QTA_EXCLUDES(mu_);
  bool try_pop(unsigned id, std::size_t& item);
  /// Takes up to `cap` items (half of the first non-empty victim's
  /// deque) from the back, newest-first into buf. `thief` is a context
  /// id: a worker id, or size() for the submitting thread. Returns the
  /// number taken (0 when every queue is empty).
  std::size_t steal_batch(unsigned thief, std::size_t* buf,
                          std::size_t cap);
  /// Claims one item for `thief`: own deque first (workers only), then
  /// a steal batch whose surplus is re-queued on the thief's own deque
  /// (workers) or kept nowhere (the submitter re-steals instead, which
  /// is fine: its steals are uncontended once the workers are behind).
  bool claim(unsigned thief, std::size_t& item, bool& stolen);
  void run_items(unsigned context,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t& done_here);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  // size()+1 slots: one per worker plus the submitter context. Each slot
  // is written only by its own context (under the victim's queue lock),
  // so relaxed ops suffice; steals() may sum mid-batch.
  std::unique_ptr<PaddedCounter[]> steal_counts_;
  std::atomic<TaskObserver*> observer_{nullptr};

  // Mirror of epoch_ readable without mu_: workers spin on it briefly
  // between batches before paying for the condvar park. Written by the
  // submitter right before notify_all.
  std::atomic<std::uint64_t> epoch_hint_{0};

  // Batch state, guarded by mu_.
  Mutex mu_;
  CondVar work_cv_;  // workers: new batch or shutdown
  CondVar done_cv_;  // submitter: batch drained
  const std::function<void(std::size_t)>* fn_ QTA_GUARDED_BY(mu_) = nullptr;
  std::uint64_t epoch_ QTA_GUARDED_BY(mu_) = 0;     // bumped per batch
  std::size_t unfinished_ QTA_GUARDED_BY(mu_) = 0;  // distributed, not done
  unsigned active_ QTA_GUARDED_BY(mu_) = 0;  // workers out of the wait loop
  bool stop_ QTA_GUARDED_BY(mu_) = false;

  Mutex submit_mu_;  // serializes parallel_for callers
};

}  // namespace qta

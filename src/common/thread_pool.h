// Persistent work-stealing thread pool for host-side parallel sweeps.
//
// IndependentPipelines used to spawn fresh std::threads on every
// run_samples_each call and assign pipelines to threads with a static
// round-robin (pipeline i -> thread i % T). With heterogeneous
// partitions the static buckets serialize on their slowest member: one
// large partition pins its bucket while the other threads finish their
// small partitions and go idle. This pool keeps its workers alive across
// calls and hands out items through per-worker deques with stealing, so
// an idle worker drains the backlog of a loaded one instead of parking.
//
// Scheduling model: parallel_for(count, fn) distributes the item indices
// round-robin over the worker deques (preserving the old locality-ish
// layout as the initial placement), wakes the workers, and blocks until
// every item has executed. A worker pops from the front of its own deque
// and, when empty, steals from the back of a sibling's. One batch runs at
// a time; parallel_for is serialized and must not be re-entered from
// inside fn (workers execute fn directly, so a nested call would
// deadlock on the batch lock).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qta {

/// Observation hook for pool activity. Defined here rather than in
/// src/telemetry so the pool stays at the bottom of the dependency
/// stack; the telemetry adapter (src/telemetry/pool_observer.h)
/// implements it to draw one Perfetto track per worker. Methods run on
/// the executing worker's thread; an implementation shared by several
/// workers must confine per-worker state to per-worker slots or lock.
class TaskObserver {
 public:
  virtual ~TaskObserver() = default;
  /// Immediately before fn(item) runs. `stolen` is true when the item
  /// was taken from a sibling's deque.
  virtual void on_task_start(unsigned worker, std::size_t item, bool stolen) {
    (void)worker;
    (void)item;
    (void)stolen;
  }
  /// Immediately after fn(item) returned.
  virtual void on_task_end(unsigned worker, std::size_t item) {
    (void)worker;
    (void)item;
  }
};

/// Resolves a user-facing thread-count request into an actual worker
/// count. `requested == 0` means "use the hardware", `hardware` is the
/// caller's std::thread::hardware_concurrency() reading (which is
/// DOCUMENTED to return 0 when the platform cannot report a value — that
/// case falls back to a single thread explicitly), and `max_useful` caps
/// the answer at the number of independent work items.
unsigned resolve_thread_count(unsigned requested, unsigned hardware,
                              std::size_t max_useful);

class ThreadPool {
 public:
  /// `threads == 0` resolves to the hardware concurrency (minimum 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for every i in [0, count) across the pool and returns
  /// once all items finished. Items are claimed dynamically (stealing),
  /// so callers must not assume any index-to-thread mapping.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Total items stolen from a sibling's deque since construction
  /// (diagnostic; racy reads are fine after parallel_for returned).
  std::uint64_t steals() const;

  /// Attaches (or detaches, with nullptr) a task observer. Costs one
  /// relaxed atomic load per item when detached. Only call while no
  /// batch is in flight; the observer must outlive its attachment.
  void set_observer(TaskObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::size_t> items;
  };

  void worker_main(unsigned id);
  bool try_pop(unsigned id, std::size_t& item);
  bool try_steal(unsigned thief, std::size_t& item);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::vector<std::uint64_t> steal_counts_;  // one slot per worker
  std::atomic<TaskObserver*> observer_{nullptr};

  // Batch state, guarded by mu_.
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: new batch or shutdown
  std::condition_variable done_cv_;  // submitter: batch drained
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::uint64_t epoch_ = 0;      // bumped per batch so workers re-arm
  std::size_t unfinished_ = 0;   // items distributed but not yet executed
  unsigned active_ = 0;          // workers currently out of the wait loop
  bool stop_ = false;

  std::mutex submit_mu_;  // serializes parallel_for callers
};

}  // namespace qta

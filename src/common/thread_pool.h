// Persistent work-stealing thread pool for host-side parallel sweeps.
//
// IndependentPipelines used to spawn fresh std::threads on every
// run_samples_each call and assign pipelines to threads with a static
// round-robin (pipeline i -> thread i % T). With heterogeneous
// partitions the static buckets serialize on their slowest member: one
// large partition pins its bucket while the other threads finish their
// small partitions and go idle. This pool keeps its workers alive across
// calls and hands out items through per-worker deques with stealing, so
// an idle worker drains the backlog of a loaded one instead of parking.
//
// Scheduling model: parallel_for(count, fn) distributes the item indices
// round-robin over the worker deques (preserving the old locality-ish
// layout as the initial placement), wakes the workers, and blocks until
// every item has executed. A worker pops from the front of its own deque
// and, when empty, steals from the back of a sibling's. One batch runs at
// a time; parallel_for is serialized and must not be re-entered from
// inside fn (workers execute fn directly, so a nested call would
// deadlock on the batch lock).
//
// Lock discipline (checked by clang -Wthread-safety via the QTA_*
// annotations): batch state lives under mu_; each deque under its own
// WorkerQueue::mu. The only nesting is mu_ -> q.mu inside parallel_for;
// workers take queue locks with mu_ released, so the order is acyclic.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace qta {

/// Observation hook for pool activity. Defined here rather than in
/// src/telemetry so the pool stays at the bottom of the dependency
/// stack; the telemetry adapter (src/telemetry/pool_observer.h)
/// implements it to draw one Perfetto track per worker. Methods run on
/// the executing worker's thread; an implementation shared by several
/// workers must confine per-worker state to per-worker slots or lock.
class TaskObserver {
 public:
  virtual ~TaskObserver() = default;
  /// Immediately before fn(item) runs. `stolen` is true when the item
  /// was taken from a sibling's deque.
  virtual void on_task_start(unsigned worker, std::size_t item, bool stolen) {
    (void)worker;
    (void)item;
    (void)stolen;
  }
  /// Immediately after fn(item) returned.
  virtual void on_task_end(unsigned worker, std::size_t item) {
    (void)worker;
    (void)item;
  }
};

/// Resolves a user-facing thread-count request into an actual worker
/// count. `requested == 0` means "use the hardware", `hardware` is the
/// caller's std::thread::hardware_concurrency() reading (which is
/// DOCUMENTED to return 0 when the platform cannot report a value — that
/// case falls back to a single thread explicitly), and `max_useful` caps
/// the answer at the number of independent work items.
unsigned resolve_thread_count(unsigned requested, unsigned hardware,
                              std::size_t max_useful);

class ThreadPool {
 public:
  /// `threads == 0` resolves to the hardware concurrency (minimum 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for every i in [0, count) across the pool and returns
  /// once all items finished. Items are claimed dynamically (stealing),
  /// so callers must not assume any index-to-thread mapping.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn)
      QTA_EXCLUDES(mu_);

  /// Total items stolen from a sibling's deque since construction.
  /// Diagnostic; per-slot counts are relaxed atomics, so this is safe to
  /// poll from any thread while a batch is in flight (the value is then
  /// a snapshot that may lag in-progress steals).
  std::uint64_t steals() const;

  /// Attaches (or detaches, with nullptr) a task observer. Costs one
  /// relaxed atomic load per item when detached. Only call while no
  /// batch is in flight; the observer must outlive its attachment.
  void set_observer(TaskObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::size_t> items QTA_GUARDED_BY(mu);
  };

  void worker_main(unsigned id) QTA_EXCLUDES(mu_);
  bool try_pop(unsigned id, std::size_t& item);
  bool try_steal(unsigned thief, std::size_t& item);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  // One slot per worker. Atomic because steals() may sum the slots while
  // workers bump them mid-batch; each slot is written only by its own
  // worker (under the victim's queue lock), so relaxed ops suffice.
  std::vector<std::atomic<std::uint64_t>> steal_counts_;
  std::atomic<TaskObserver*> observer_{nullptr};

  // Batch state, guarded by mu_.
  Mutex mu_;
  CondVar work_cv_;  // workers: new batch or shutdown
  CondVar done_cv_;  // submitter: batch drained
  const std::function<void(std::size_t)>* fn_ QTA_GUARDED_BY(mu_) = nullptr;
  std::uint64_t epoch_ QTA_GUARDED_BY(mu_) = 0;     // bumped per batch
  std::size_t unfinished_ QTA_GUARDED_BY(mu_) = 0;  // distributed, not done
  unsigned active_ QTA_GUARDED_BY(mu_) = 0;  // workers out of the wait loop
  bool stop_ QTA_GUARDED_BY(mu_) = false;

  Mutex submit_mu_;  // serializes parallel_for callers
};

}  // namespace qta

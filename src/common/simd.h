// Runtime SIMD capability detection for the lane-batched backend and for
// bench provenance (bench artifacts record the ISA they ran on, so
// numbers from different hosts are comparable).
//
// Detection is about the *host we run on*, not the ISA the binary was
// compiled for: the lane engine compiles its AVX2 kernel with a function-
// level target attribute and selects it here at runtime, so one binary
// runs correctly on machines with and without the extension.
#pragma once

namespace qta {

/// The widest vector extension usable on this host (for the lane
/// engine's fixed-point kernel, which needs 64-bit integer lanes).
enum class SimdIsa {
  kScalar,  // no usable extension: portable autovectorized loop
  kAvx2,    // x86-64 AVX2: 4 x int64 per vector
  kNeon,    // aarch64 Advanced SIMD: 2 x int64 per vector
};

/// Detects the host's ISA once (cached after the first call; safe to
/// call concurrently).
SimdIsa detected_simd_isa();

/// Stable spelling for bench/telemetry artifacts: "scalar", "avx2",
/// "neon".
const char* simd_isa_name(SimdIsa isa);

/// int64 lanes per vector register for `isa` (1 for kScalar).
unsigned simd_lane_width(SimdIsa isa);

}  // namespace qta

// Streaming statistics accumulators used by benchmarks (throughput runs,
// regret curves) and tests (convergence checks).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace qta {

/// Welford-style single-pass mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Wall-clock stopwatch for throughput measurement.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Exponential moving average, used to smooth learning curves in benches.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}
  double add(double x) {
    value_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seeded_ = true;
    return value_;
  }
  double value() const { return value_; }
  bool seeded() const { return seeded_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Computes percentile (0..100) of a copy of the data; convenience for
/// latency-style summaries in benches.
double percentile(std::vector<double> data, double pct);

}  // namespace qta

// Core integer vocabulary shared by every QTAccel subsystem.
//
// States and actions are dense non-negative indices: the hardware addresses
// the Q-table as {state, action} bit-concatenated, so both are kept as plain
// 32-bit values and widened only at address-formation time.
#pragma once

#include <cstdint>
#include <limits>

namespace qta {

/// Dense state index in [0, |S|).
using StateId = std::uint32_t;

/// Dense action index in [0, |A|).
using ActionId = std::uint32_t;

/// Simulation time in clock cycles.
using Cycle = std::uint64_t;

/// Sentinel for "no state" (used at episode boundaries).
inline constexpr StateId kInvalidState = std::numeric_limits<StateId>::max();

/// Sentinel for "no action".
inline constexpr ActionId kInvalidAction =
    std::numeric_limits<ActionId>::max();

/// A state-action pair, the unit the Q-table is addressed by.
struct StateAction {
  StateId state = kInvalidState;
  ActionId action = kInvalidAction;

  friend bool operator==(const StateAction&, const StateAction&) = default;
};

}  // namespace qta

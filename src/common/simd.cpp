#include "common/simd.h"

namespace qta {

namespace {

SimdIsa detect() {
#if defined(__aarch64__)
  // Advanced SIMD is baseline on aarch64 — no runtime probe needed.
  return SimdIsa::kNeon;
#elif (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") ? SimdIsa::kAvx2
                                        : SimdIsa::kScalar;
#else
  return SimdIsa::kScalar;
#endif
}

}  // namespace

SimdIsa detected_simd_isa() {
  static const SimdIsa isa = detect();
  return isa;
}

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "scalar";
}

unsigned simd_lane_width(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return 1;
    case SimdIsa::kAvx2:
      return 4;
    case SimdIsa::kNeon:
      return 2;
  }
  return 1;
}

}  // namespace qta

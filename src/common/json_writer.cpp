#include "common/json_writer.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace qta {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

void JsonWriter::raw(const std::string& text) { out_ += text; }

void JsonWriter::before_value() {
  if (stack_.empty()) {
    QTA_CHECK_MSG(out_.empty(), "only one top-level JSON value");
    return;
  }
  if (stack_.back() == Scope::kObject) {
    QTA_CHECK_MSG(key_pending_, "object members need a key() first");
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) raw(",");
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  QTA_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  QTA_CHECK_MSG(!key_pending_, "dangling key at end_object");
  raw("}");
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  QTA_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  raw("]");
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  QTA_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  QTA_CHECK_MSG(!key_pending_, "key() twice without a value");
  if (has_items_.back()) raw(",");
  has_items_.back() = true;
  raw("\"");
  raw(escape(name));
  raw("\":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  raw("\"");
  raw(escape(v));
  raw("\"");
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    raw("null");  // JSON has no Inf/NaN
    return *this;
  }
  std::ostringstream os;
  os.precision(12);
  os << v;
  raw(os.str());
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  raw(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  raw(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(unsigned v) {
  return value(static_cast<std::uint64_t>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  raw(v ? "true" : "false");
  return *this;
}

std::string JsonWriter::str() const {
  QTA_CHECK_MSG(stack_.empty(), "unbalanced begin/end in JSON document");
  return out_;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << str() << "\n";
  return static_cast<bool>(f);
}

}  // namespace qta

// Dependency-free streaming JSON emitter.
//
// Grew up as bench/bench_json.h feeding CI artifacts; promoted into
// src/common once the telemetry subsystem needed the same writer for
// metric snapshots and Chrome-trace export. It is a small streaming
// writer: explicit begin/end nesting, automatic comma placement, string
// escaping, and round-trippable number formatting. Invalid sequences
// (value without a key inside an object, unbalanced end_*) abort via
// QTA_CHECK — a malformed report should fail the writer, not the
// downstream parser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qta {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or begin_*.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(unsigned v);
  JsonWriter& value(bool v);

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// The finished document; aborts if nesting is unbalanced.
  std::string str() const;

  /// Writes str() to `path` (plus trailing newline); returns false on I/O
  /// failure.
  bool write_file(const std::string& path) const;

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void raw(const std::string& text);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // per scope: a comma is needed
  bool key_pending_ = false;
};

}  // namespace qta

// Minimal command-line flag parsing for examples and benchmark binaries.
//
// Supports `--name=value`, `--name value` and boolean `--name` forms.
// Unknown flags are an error (typos in sweep scripts should fail loudly).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qta {

class CliFlags {
 public:
  /// Parses argv; aborts with a usage message on malformed input.
  CliFlags(int argc, const char* const* argv);

  /// Typed getters with defaults. A present-but-valueless flag reads as
  /// "true" for get_bool and is an error for the others.
  std::string get_string(const std::string& name,
                         const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  bool has(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were never read by any getter — call at the end of main to
  /// catch typos: returns the list of unconsumed names.
  std::vector<std::string> unused() const;

 private:
  const std::string* find(const std::string& name) const;

  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace qta

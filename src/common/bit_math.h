// Small bit-manipulation helpers used when forming hardware addresses and
// sizing registers. All are constexpr so resource models can be computed at
// compile time in tests.
#pragma once

#include <bit>
#include <cstdint>

namespace qta {

/// True iff v is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Number of address bits needed to index v distinct items (v >= 1).
/// log2_ceil(1) == 0, log2_ceil(5) == 3.
constexpr unsigned log2_ceil(std::uint64_t v) {
  if (v <= 1) return 0;
  return static_cast<unsigned>(std::bit_width(v - 1));
}

/// Floor of log2 (v >= 1).
constexpr unsigned log2_floor(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<unsigned>(std::bit_width(v) - 1);
}

/// Smallest power of two >= v.
constexpr std::uint64_t next_pow2(std::uint64_t v) {
  return v <= 1 ? 1 : std::uint64_t{1} << log2_ceil(v);
}

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Extract `count` bits of `v` starting at bit `lo` (lo = 0 is the LSB).
constexpr std::uint64_t bits(std::uint64_t v, unsigned lo, unsigned count) {
  return count >= 64 ? (v >> lo)
                     : (v >> lo) & ((std::uint64_t{1} << count) - 1);
}

}  // namespace qta

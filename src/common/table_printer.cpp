#include "common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.h"

namespace qta {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  QTA_CHECK(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  QTA_CHECK_MSG(cells.size() == header_.size(),
                "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> w(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) w[c] = header[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      w[c] = std::max(w[c], row[c].size());
  return w;
}

void print_row(std::ostream& os, const std::vector<std::string>& cells,
               const std::vector<std::size_t>& widths) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    os << (c == 0 ? "| " : " ");
    const auto pad = widths[c] - cells[c].size();
    if (c == 0) {
      os << cells[c] << std::string(pad, ' ');
    } else {
      os << std::string(pad, ' ') << cells[c];
    }
    os << " |";
  }
  os << '\n';
}
}  // namespace

void TablePrinter::print(std::ostream& os) const {
  const auto widths = column_widths(header_, rows_);
  print_row(os, header_, widths);
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(os, row, widths);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string format_rate(double samples_per_sec) {
  QTA_CHECK(samples_per_sec >= 0.0);
  if (samples_per_sec >= 1e9)
    return format_double(samples_per_sec / 1e9, 2) + "G";
  if (samples_per_sec >= 1e6)
    return format_double(samples_per_sec / 1e6, 2) + "M";
  if (samples_per_sec >= 1e3)
    return format_double(samples_per_sec / 1e3, 2) + "K";
  return format_double(samples_per_sec, 2);
}

std::string format_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace qta

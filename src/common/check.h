// Runtime invariant checks.
//
// QTA_CHECK is always on (simulation correctness depends on it: e.g. BRAM
// port over-subscription must abort rather than silently corrupt a run).
// QTA_DCHECK compiles out in NDEBUG builds and guards hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace qta::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "QTA_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}
}  // namespace qta::detail

#define QTA_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr))                                                       \
      ::qta::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define QTA_CHECK_MSG(expr, msg)                                    \
  do {                                                              \
    if (!(expr))                                                    \
      ::qta::detail::check_failed(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

#ifdef NDEBUG
#define QTA_DCHECK(expr) ((void)0)
#else
#define QTA_DCHECK(expr) QTA_CHECK(expr)
#endif

#include "telemetry/pool_observer.h"

#include <algorithm>

#include "common/check.h"

namespace qta::telemetry {

PoolTraceObserver::PoolTraceObserver(TraceSession& trace, std::uint32_t pid,
                                     unsigned workers,
                                     const std::string& process_name,
                                     MetricsRegistry* metrics)
    : trace_(trace), pid_(pid), slots_(workers + 1) {
  trace_.set_process_name(pid_, process_name);
  // Slot `workers` is the submitting thread, which ThreadPool lets join
  // the batch as an extra execution context (TaskObserver contract).
  for (unsigned w = 0; w <= workers; ++w) {
    const std::string wname =
        w == workers ? "submitter" : "worker " + std::to_string(w);
    trace_.set_thread_name(pid_, w, wname);
    if (metrics != nullptr) {
      const Labels labels{{"worker", std::to_string(w)}};
      slots_[w].tasks = &metrics->counter("qta_pool_tasks_total", labels,
                                          "Tasks executed per pool worker");
      slots_[w].stolen_tasks =
          &metrics->counter("qta_pool_stolen_tasks_total", labels,
                            "Tasks taken from a sibling's deque");
      slots_[w].busy_us =
          &metrics->counter("qta_pool_busy_us_total", labels,
                            "Wall-clock microseconds spent inside tasks");
    }
  }
}

void PoolTraceObserver::on_task_start(unsigned worker, std::size_t item,
                                      bool stolen) {
  (void)item;
  QTA_CHECK(worker < slots_.size());
  slots_[worker].start_us = trace_.now_us();
  slots_[worker].stolen = stolen;
}

void PoolTraceObserver::on_task_end(unsigned worker, std::size_t item) {
  QTA_CHECK(worker < slots_.size());
  WorkerSlot& slot = slots_[worker];
  const std::uint64_t end = std::max(trace_.now_us(), slot.start_us + 1);
  std::string name = "task " + std::to_string(item);
  if (slot.stolen) name += " (stolen)";
  trace_.complete_event(pid_, worker, name, slot.start_us,
                        end - slot.start_us);
  if (slot.tasks != nullptr) {
    slot.tasks->inc();
    if (slot.stolen) slot.stolen_tasks->inc();
    slot.busy_us->inc(end - slot.start_us);
  }
}

}  // namespace qta::telemetry

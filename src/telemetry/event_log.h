// Structured serving-tier events: the vocabulary the flight recorder
// (telemetry/flight_recorder.h) records and dumps.
//
// One event is one thing that happened to one request or session —
// a request completing, an admission refusal, an eviction, a restore.
// Events are plain structs of integers plus a static-storage label so
// recording one is a few stores and never allocates; the JSON shape is
// produced only at dump time. The serving layer owns the meaning of
// `session`, `label`, and `value` per kind (docs/observability.md has
// the table); telemetry stays a passive container and deliberately
// knows nothing about serve/ (qtlint layering: telemetry depends only
// on common).
#pragma once

#include <cstdint>

namespace qta {
class JsonWriter;
}  // namespace qta

namespace qta::telemetry {

enum class ServeEventKind : std::uint8_t {
  kRequest = 0,         // a request completed OK; value = latency (us)
  kOverload = 1,        // admission refusal; value = queue depth at refusal
  kError = 2,           // error reply; value = latency (us)
  kEviction = 3,        // session forced cold; label = reason
  kRestore = 4,         // session rebuilt from its cold snapshot
  kSessionCreated = 5,  // logical session registered
  kSessionClosed = 6,   // logical session destroyed
  kMigration = 7,       // session shipped between shards; label =
                        // direction ("out"/"in"); value = image bytes
  kFailover = 8,        // router absorbed a dead shard; label = phase;
                        // value = sessions replayed onto survivors
};

/// Stable JSON/metric spelling ("request", "overload", ...).
const char* serve_event_kind_name(ServeEventKind kind);

struct ServeEvent {
  std::uint64_t seq = 0;    // assigned by the recorder, monotone from 1
  std::uint64_t ts_us = 0;  // recorder-clock microseconds (stamped on record)
  ServeEventKind kind = ServeEventKind::kRequest;
  std::uint64_t session = 0;  // 0 when the event is not session-scoped
  /// Kind-specific detail. MUST point at static storage (string
  /// literals, request_type_name(), ...): events outlive the call that
  /// recorded them.
  const char* label = "";
  std::uint64_t value = 0;  // kind-specific magnitude (latency us, depth)
};

/// Emits one event as a JSON object value into an in-progress document:
/// {"seq":1,"ts_us":42,"kind":"request","session":3,"label":"step",
///  "value":180}.
void write_event_json(qta::JsonWriter& json, const ServeEvent& event);

}  // namespace qta::telemetry

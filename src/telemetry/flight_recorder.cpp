#include "telemetry/flight_recorder.h"

#include <utility>

#include "common/check.h"
#include "common/json_writer.h"

namespace qta::telemetry {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  QTA_CHECK_MSG(capacity_ >= 1, "FlightRecorder needs capacity >= 1");
  ring_.reserve(capacity_);
}

std::uint64_t FlightRecorder::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void FlightRecorder::record(ServeEvent event) {
  const std::uint64_t ts = now_us();
  MutexLock lock(mu_);
  event.seq = ++recorded_;
  event.ts_us = ts;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_slot_] = event;  // overwrite the oldest
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
}

std::size_t FlightRecorder::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::uint64_t FlightRecorder::recorded() const {
  MutexLock lock(mu_);
  return recorded_;
}

std::uint64_t FlightRecorder::dropped() const {
  MutexLock lock(mu_);
  return recorded_ - ring_.size();
}

std::vector<ServeEvent> FlightRecorder::events() const {
  MutexLock lock(mu_);
  std::vector<ServeEvent> out;
  out.reserve(ring_.size());
  // Before the first wrap next_slot_ == ring_.size(), so the loop below
  // is the plain front-to-back copy in both regimes.
  const std::size_t start = ring_.size() < capacity_ ? 0 : next_slot_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::write_json(qta::JsonWriter& json) const {
  const std::vector<ServeEvent> snapshot = events();
  std::uint64_t total = 0;
  {
    MutexLock lock(mu_);
    total = recorded_;
  }
  json.begin_object();
  json.field("capacity", static_cast<std::uint64_t>(capacity_));
  json.field("recorded", total);
  json.field("dropped", total - snapshot.size());
  json.key("events").begin_array();
  for (const ServeEvent& event : snapshot) write_event_json(json, event);
  json.end_array();
  json.end_object();
}

std::string FlightRecorder::json_text() const {
  qta::JsonWriter json;
  write_json(json);
  return json.str();
}

}  // namespace qta::telemetry

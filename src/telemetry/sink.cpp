#include "telemetry/sink.h"

namespace qta::telemetry {

const char* cycle_class_name(CycleClass cls) {
  switch (cls) {
    case CycleClass::kIssue: return "issue";
    case CycleClass::kForwardServiced: return "forward_serviced";
    case CycleClass::kStall: return "stall";
    case CycleClass::kDrain: return "drain";
  }
  return "?";
}

}  // namespace qta::telemetry

// PipelineTelemetry: the standard TelemetrySink implementation. It
// aggregates the raw per-cycle / per-step event stream from either
// backend into (a) MetricsRegistry instruments labelled with the run's
// (algorithm, qmax, hazard, backend, pipe) identity and (b) Perfetto
// tracks in a TraceSession.
//
// Trace layout per instrumented engine (one process = one pid):
//   tid 0 "attribution"  — cycle-class spans (issue / forward_serviced /
//                          stall / drain), cycle domain (1 cycle = 1 us)
//   tid 1..4 stage tracks — S1/S2/S3/RET occupancy spans ("busy" while a
//                          real iteration sits in the stage);
//                          saturation instants land on S3, episode-end
//                          and qmax-raise-related instants on RET
//   fast backend instead — tid 1 "episodes": one span per episode in
//                          the iteration domain, saturation instants
//
// Attach one PipelineTelemetry per engine. Different engines may share
// one MetricsRegistry / TraceSession (both are thread-safe); the
// per-sink aggregation state itself is single-threaded like the engine
// that feeds it. Call flush() (or destroy the sink) before snapshotting
// the trace so trailing open spans are closed.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/sink.h"
#include "telemetry/trace.h"

namespace qta::telemetry {

class PipelineTelemetry : public TelemetrySink {
 public:
  /// `metrics` and/or `trace` may be null to aggregate only one way.
  /// `pid` is the trace process id this engine's tracks live under.
  PipelineTelemetry(RunLabels labels, MetricsRegistry* metrics,
                    TraceSession* trace, std::uint32_t pid = 1);
  ~PipelineTelemetry() override;

  void on_cycle(const CycleEvent& event) override;
  void on_step(const StepEvent& event) override;
  void on_run(const RunEvent& event) override;

  /// Closes open trace spans and the in-progress stall burst. Idempotent;
  /// events arriving after a flush simply open fresh spans.
  void flush();

  const RunLabels& labels() const { return labels_; }

 private:
  void close_stage_span(unsigned stage_index, std::uint64_t end);
  void close_class_span(std::uint64_t end);
  void close_episode_span(std::uint64_t end);

  RunLabels labels_;
  MetricsRegistry* metrics_;
  TraceSession* trace_;
  std::uint32_t pid_;

  // Cached instrument handles (null when metrics_ is null).
  Counter* cycles_by_class_[4] = {nullptr, nullptr, nullptr, nullptr};
  Counter* samples_ = nullptr;
  Counter* episodes_ = nullptr;
  Counter* fwd_hits_q_sa_ = nullptr;
  Counter* fwd_hits_q_next_ = nullptr;
  Counter* fwd_hits_qmax_ = nullptr;
  Counter* qmax_raises_ = nullptr;
  Counter* saturations_ = nullptr;
  Histogram* fwd_distance_q_sa_ = nullptr;
  Histogram* fwd_distance_q_next_ = nullptr;
  Histogram* stall_burst_ = nullptr;
  Histogram* episode_length_ = nullptr;

  // Cycle-domain trace state (cycle backend).
  bool stage_open_[4] = {false, false, false, false};
  std::uint64_t stage_start_[4] = {0, 0, 0, 0};
  bool class_open_ = false;
  CycleClass open_class_ = CycleClass::kDrain;
  std::uint64_t class_start_ = 0;
  std::uint64_t cycle_end_ = 0;  // one past the last cycle seen

  // Iteration-domain trace state (fast backend).
  bool episode_open_ = false;
  std::uint64_t episode_start_ = 0;
  std::uint64_t step_end_ = 0;  // one past the last iteration seen

  // Aggregation state shared by both domains.
  std::uint64_t stall_run_ = 0;       // current consecutive-stall burst
  std::uint64_t episode_samples_ = 0;  // samples retired this episode
};

}  // namespace qta::telemetry

// PoolTraceObserver: the telemetry adapter for qta::TaskObserver. It
// turns thread-pool task execution into one Perfetto track per worker
// (wall-clock domain, microseconds since the TraceSession epoch) and,
// when a MetricsRegistry is attached, per-worker task / steal / busy-
// time counters.
//
// Each worker only touches its own per-worker slot between
// on_task_start and on_task_end, so the observer needs no lock of its
// own — the TraceSession (whose internal mu_ is annotated for clang's
// thread-safety analysis) and the registry instruments (relaxed
// atomics) are already thread-safe. Attach with
// ThreadPool::set_observer while no batch is in flight. The qtlint
// mutex-annotation rule guards the no-lock claim: a mutex added here
// must be annotated, making the discipline compiler-checked.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qta::telemetry {

class PoolTraceObserver : public qta::TaskObserver {
 public:
  /// Registers `process_name` as the trace process `pid` with one named
  /// thread track per worker, plus a "submitter" track at id `workers`
  /// for the thread calling parallel_for (which executes items too —
  /// see the TaskObserver contract). `metrics` may be null.
  PoolTraceObserver(TraceSession& trace, std::uint32_t pid, unsigned workers,
                    const std::string& process_name = "thread pool",
                    MetricsRegistry* metrics = nullptr);

  void on_task_start(unsigned worker, std::size_t item, bool stolen) override;
  void on_task_end(unsigned worker, std::size_t item) override;

 private:
  struct WorkerSlot {
    std::uint64_t start_us = 0;
    bool stolen = false;
    Counter* tasks = nullptr;
    Counter* stolen_tasks = nullptr;
    Counter* busy_us = nullptr;
  };

  TraceSession& trace_;
  std::uint32_t pid_;
  std::vector<WorkerSlot> slots_;
};

}  // namespace qta::telemetry

// TraceSession: Chrome trace-event JSON recorder, loadable in
// ui.perfetto.dev or chrome://tracing.
//
// The session is a flat, thread-safe event log. Tracks are addressed by
// (pid, tid) pairs exactly as the trace-event format does; name them
// with set_process_name / set_thread_name and they render as labelled
// process/thread groups in the viewer. This repo uses two time domains
// on disjoint pids (documented in docs/observability.md):
//   - cycle-domain tracks (pipeline stages): 1 simulated cycle == 1 us,
//     timestamps are cycle indices;
//   - wall-clock tracks (thread-pool workers): microseconds since the
//     session's construction via now_us().
// Perfetto renders both; just don't compare durations across domains.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace qta {
class JsonWriter;
}  // namespace qta

namespace qta::telemetry {

class TraceSession {
 public:
  /// Numeric span arguments, emitted as the event's "args" object.
  /// Values are u64 so identifiers (trace ids, tickets) round-trip.
  using SpanArgs = std::vector<std::pair<std::string, std::uint64_t>>;

  TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Viewer-facing track names ("M" metadata events).
  void set_process_name(std::uint32_t pid, const std::string& name);
  void set_thread_name(std::uint32_t pid, std::uint32_t tid,
                       const std::string& name);

  /// "X" complete event: a span of `dur_us` starting at `ts_us`.
  void complete_event(std::uint32_t pid, std::uint32_t tid,
                      const std::string& name, std::uint64_t ts_us,
                      std::uint64_t dur_us);

  /// "X" complete event carrying numeric args (trace id, ticket, ...)
  /// that the viewer shows on click and tests use to correlate spans.
  void complete_event(std::uint32_t pid, std::uint32_t tid,
                      const std::string& name, std::uint64_t ts_us,
                      std::uint64_t dur_us, SpanArgs args);

  /// "i" instant event (thread-scoped tick mark).
  void instant_event(std::uint32_t pid, std::uint32_t tid,
                     const std::string& name, std::uint64_t ts_us);

  /// Microseconds of wall clock since this session was constructed —
  /// the timestamp source for wall-clock-domain tracks.
  std::uint64_t now_us() const;

  std::size_t event_count() const;

  /// Emits {"traceEvents":[...],"displayTimeUnit":"ms"} as one JSON
  /// value into an in-progress document.
  void write_json(qta::JsonWriter& json) const;
  std::string json_text() const;
  /// Writes json_text() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    char ph;  // 'X' complete, 'i' instant, 'M' metadata
    std::uint32_t pid;
    std::uint32_t tid;
    bool has_tid;          // metadata process_name has no tid member
    std::uint64_t ts;
    std::uint64_t dur;     // 'X' only
    std::string name;      // event name, or "process_name"/"thread_name"
    std::string arg_name;  // 'M' only: args.name payload
    SpanArgs args;         // 'X' only: numeric args (may be empty)
  };

  void push(Event event) QTA_EXCLUDES(mu_);

  mutable qta::Mutex mu_;
  std::vector<Event> events_ QTA_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point epoch_;  // immutable after ctor
};

}  // namespace qta::telemetry

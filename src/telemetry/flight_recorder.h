// FlightRecorder: an always-on, bounded ring buffer of ServeEvents.
//
// The serving tier records one event per noteworthy request/session
// transition (telemetry/event_log.h) into a fixed-capacity ring; when
// the ring is full the oldest event is overwritten, deterministically:
// after N records the buffer holds exactly the last min(N, capacity)
// events with contiguous sequence numbers, and dropped() == N - size().
// Recording is a mutex-guarded pair of stores — cheap enough to leave
// on in production — and dumping produces a JSON document a human (or
// the /flightrecorder HTTP endpoint) can read after the fact:
//
//   {"capacity":256,"recorded":N,"dropped":D,
//    "events":[{"seq":...,"ts_us":...,"kind":"eviction",...}, ...]}
//
// Timestamps are microseconds since the recorder's construction (its
// own steady-clock epoch), so a dump is self-contained. The recorder is
// observation-only: it never touches engine state, which is what the
// observability-off bit-identity differential in tests/serve_test.cpp
// proves end to end.
//
// Lock discipline (docs/static_analysis.md): one annotated qta::Mutex
// guards the ring; record() and every reader take it. Contention is
// control-thread-vs-scraper only — the datapath never sees this class
// (qtlint telemetry-boundary keeps FlightRecorder out of datapath
// files, exactly like MetricsRegistry).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "telemetry/event_log.h"

namespace qta {
class JsonWriter;
}  // namespace qta

namespace qta::telemetry {

class FlightRecorder {
 public:
  /// `capacity` >= 1 bounds retained events (older ones are overwritten).
  explicit FlightRecorder(std::size_t capacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamps `event.seq` (monotone from 1) and `event.ts_us` (recorder
  /// clock) and stores it, overwriting the oldest event when full.
  void record(ServeEvent event) QTA_EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const QTA_EXCLUDES(mu_);
  /// Events recorded over the recorder's whole life (kept + dropped).
  std::uint64_t recorded() const QTA_EXCLUDES(mu_);
  /// Events overwritten by ring wrap-around: recorded() - size().
  std::uint64_t dropped() const QTA_EXCLUDES(mu_);

  /// Retained events, oldest first (contiguous seq numbers).
  std::vector<ServeEvent> events() const QTA_EXCLUDES(mu_);

  /// Emits the dump document ({"capacity":...,"recorded":...,
  /// "dropped":...,"events":[...]}) as one JSON value.
  void write_json(qta::JsonWriter& json) const QTA_EXCLUDES(mu_);
  std::string json_text() const;

  /// Microseconds since construction — the ts_us domain of every event.
  std::uint64_t now_us() const;

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable qta::Mutex mu_;
  std::vector<ServeEvent> ring_ QTA_GUARDED_BY(mu_);  // capacity_ slots
  std::size_t next_slot_ QTA_GUARDED_BY(mu_) = 0;     // ring write cursor
  std::uint64_t recorded_ QTA_GUARDED_BY(mu_) = 0;
};

}  // namespace qta::telemetry

#include "telemetry/pipeline_telemetry.h"

#include <utility>

namespace qta::telemetry {

namespace {

constexpr const char* kStageTrackNames[4] = {"S1 issue", "S2 action",
                                             "S3 dsp", "S4 retire"};
constexpr std::uint32_t kAttributionTid = 0;
constexpr std::uint32_t kStageTidBase = 1;  // stage s lives on tid s+1
constexpr std::uint32_t kEpisodeTid = 1;    // fast backend episode track

Labels base_labels(const RunLabels& labels) {
  return Labels{{"algo", labels.algorithm},
                {"qmax", labels.qmax},
                {"hazard", labels.hazard},
                {"backend", labels.backend},
                {"pipe", std::to_string(labels.pipe)}};
}

Labels with_label(Labels labels, const std::string& key,
                  const std::string& value) {
  labels.emplace_back(key, value);
  return labels;
}

}  // namespace

PipelineTelemetry::PipelineTelemetry(RunLabels labels,
                                     MetricsRegistry* metrics,
                                     TraceSession* trace, std::uint32_t pid)
    : labels_(std::move(labels)), metrics_(metrics), trace_(trace), pid_(pid) {
  if (metrics_ != nullptr) {
    const Labels base = base_labels(labels_);
    for (unsigned c = 0; c < 4; ++c) {
      cycles_by_class_[c] = &metrics_->counter(
          "qta_cycles_total",
          with_label(base, "class",
                     cycle_class_name(static_cast<CycleClass>(c))),
          "Pipeline cycles by attribution class");
    }
    samples_ = &metrics_->counter("qta_samples_total", base,
                                  "Q-table updates retired");
    episodes_ =
        &metrics_->counter("qta_episodes_total", base, "Episodes completed");
    fwd_hits_q_sa_ =
        &metrics_->counter("qta_fwd_hits_total",
                           with_label(base, "path", "q_sa"),
                           "Reads served by the forwarding network");
    fwd_hits_q_next_ = &metrics_->counter(
        "qta_fwd_hits_total", with_label(base, "path", "q_next"),
        "Reads served by the forwarding network");
    fwd_hits_qmax_ = &metrics_->counter(
        "qta_fwd_hits_total", with_label(base, "path", "qmax"),
        "Reads served by the forwarding network");
    qmax_raises_ = &metrics_->counter("qta_qmax_raises_total", base,
                                      "Stage-4 Qmax register raises");
    saturations_ = &metrics_->counter("qta_adder_saturations_total", base,
                                      "Saturating-arithmetic clips");
    fwd_distance_q_sa_ = &metrics_->histogram(
        "qta_fwd_distance", with_label(base, "path", "q_sa"),
        "Forwarding-queue distance of served reads (1 = newest)");
    fwd_distance_q_next_ = &metrics_->histogram(
        "qta_fwd_distance", with_label(base, "path", "q_next"),
        "Forwarding-queue distance of served reads (1 = newest)");
    stall_burst_ = &metrics_->histogram(
        "qta_stall_burst_cycles", base,
        "Lengths of consecutive-stall bursts (HazardMode::kStall)");
    episode_length_ = &metrics_->histogram(
        "qta_episode_length_samples", base, "Samples retired per episode");
  }
  if (trace_ != nullptr) {
    trace_->set_process_name(pid_, "pipe " + std::to_string(labels_.pipe) +
                                       " " + labels_.algorithm + "/" +
                                       labels_.backend);
    if (labels_.backend == "fast") {
      trace_->set_thread_name(pid_, kEpisodeTid, "episodes");
    } else {
      trace_->set_thread_name(pid_, kAttributionTid, "attribution");
      for (unsigned s = 0; s < kNumStages; ++s) {
        trace_->set_thread_name(pid_, kStageTidBase + s, kStageTrackNames[s]);
      }
    }
  }
}

PipelineTelemetry::~PipelineTelemetry() { flush(); }

void PipelineTelemetry::close_stage_span(unsigned stage_index,
                                         std::uint64_t end) {
  if (!stage_open_[stage_index]) return;
  stage_open_[stage_index] = false;
  if (end > stage_start_[stage_index]) {
    trace_->complete_event(pid_, kStageTidBase + stage_index, "busy",
                           stage_start_[stage_index],
                           end - stage_start_[stage_index]);
  }
}

void PipelineTelemetry::close_class_span(std::uint64_t end) {
  if (!class_open_) return;
  class_open_ = false;
  if (end > class_start_) {
    trace_->complete_event(pid_, kAttributionTid,
                           cycle_class_name(open_class_), class_start_,
                           end - class_start_);
  }
}

void PipelineTelemetry::close_episode_span(std::uint64_t end) {
  if (!episode_open_) return;
  episode_open_ = false;
  if (end > episode_start_) {
    trace_->complete_event(pid_, kEpisodeTid, "episode", episode_start_,
                           end - episode_start_);
  }
}

void PipelineTelemetry::on_cycle(const CycleEvent& event) {
  cycle_end_ = event.cycle + 1;
  if (metrics_ != nullptr) {
    cycles_by_class_[static_cast<unsigned>(event.cls)]->inc();
    if (event.fwd_q_sa != 0) {
      fwd_hits_q_sa_->inc(event.fwd_q_sa);
      if (event.fwd_sa_distance != 0) {
        fwd_distance_q_sa_->observe(event.fwd_sa_distance);
      }
    }
    if (event.fwd_q_next != 0) {
      fwd_hits_q_next_->inc(event.fwd_q_next);
      if (event.fwd_next_distance != 0) {
        fwd_distance_q_next_->observe(event.fwd_next_distance);
      }
    }
    if (event.fwd_qmax != 0) fwd_hits_qmax_->inc(event.fwd_qmax);
    if (event.adder_saturations != 0) saturations_->inc(event.adder_saturations);
    if (event.sample_retired) samples_->inc();
    if (event.qmax_raised) qmax_raises_->inc();
  }
  if (event.sample_retired) ++episode_samples_;
  if (event.episode_end) {
    if (metrics_ != nullptr) {
      episodes_->inc();
      episode_length_->observe(episode_samples_);
    }
    episode_samples_ = 0;
  }
  if (event.cls == CycleClass::kStall) {
    ++stall_run_;
  } else if (stall_run_ != 0) {
    if (metrics_ != nullptr) stall_burst_->observe(stall_run_);
    stall_run_ = 0;
  }
  if (trace_ != nullptr) {
    if (class_open_ && open_class_ != event.cls) close_class_span(event.cycle);
    if (!class_open_) {
      class_open_ = true;
      open_class_ = event.cls;
      class_start_ = event.cycle;
    }
    for (unsigned s = 0; s < kNumStages; ++s) {
      const bool busy = (event.stage_valid & (1u << s)) != 0 &&
                        (event.stage_bubble & (1u << s)) == 0;
      if (busy && !stage_open_[s]) {
        stage_open_[s] = true;
        stage_start_[s] = event.cycle;
      } else if (!busy) {
        close_stage_span(s, event.cycle);
      }
    }
    if (event.adder_saturations != 0) {
      trace_->instant_event(pid_, kStageTidBase + 2, "saturation",
                            event.cycle);
    }
    if (event.episode_end) {
      trace_->instant_event(pid_, kStageTidBase + 3, "episode_end",
                            event.cycle);
    }
  }
}

void PipelineTelemetry::on_step(const StepEvent& event) {
  step_end_ = event.iteration + 1;
  const bool forwarded = event.fwd_sa_distance != 0 ||
                         event.fwd_next_distance != 0 || event.fwd_qmax;
  if (metrics_ != nullptr) {
    cycles_by_class_[static_cast<unsigned>(
                         forwarded ? CycleClass::kForwardServiced
                                   : CycleClass::kIssue)]
        ->inc();
    if (event.fwd_sa_distance != 0) {
      fwd_hits_q_sa_->inc();
      fwd_distance_q_sa_->observe(event.fwd_sa_distance);
    }
    if (event.fwd_next_distance != 0) {
      fwd_hits_q_next_->inc();
      fwd_distance_q_next_->observe(event.fwd_next_distance);
    }
    if (event.fwd_qmax) fwd_hits_qmax_->inc();
    if (event.saturations != 0) saturations_->inc(event.saturations);
    if (!event.bubble) samples_->inc();
    if (event.qmax_raised) qmax_raises_->inc();
  }
  if (!event.bubble) ++episode_samples_;
  if (trace_ != nullptr && !episode_open_) {
    episode_open_ = true;
    episode_start_ = event.iteration;
  }
  if (trace_ != nullptr && event.saturations != 0) {
    trace_->instant_event(pid_, kEpisodeTid, "saturation", event.iteration);
  }
  if (event.episode_end) {
    if (metrics_ != nullptr) {
      episodes_->inc();
      episode_length_->observe(episode_samples_);
    }
    episode_samples_ = 0;
    if (trace_ != nullptr) close_episode_span(event.iteration + 1);
  }
}

void PipelineTelemetry::on_run(const RunEvent& event) {
  // Issue/forward-serviced cycles were already attributed one per
  // on_step; the analytic roll-up contributes only the cycles the fast
  // backend never replays individually.
  if (metrics_ != nullptr) {
    if (event.stall_cycles != 0) {
      cycles_by_class_[static_cast<unsigned>(CycleClass::kStall)]->inc(
          event.stall_cycles);
    }
    if (event.drain_cycles != 0) {
      cycles_by_class_[static_cast<unsigned>(CycleClass::kDrain)]->inc(
          event.drain_cycles);
    }
  }
}

void PipelineTelemetry::flush() {
  if (stall_run_ != 0) {
    if (metrics_ != nullptr) stall_burst_->observe(stall_run_);
    stall_run_ = 0;
  }
  if (trace_ != nullptr) {
    close_class_span(cycle_end_);
    for (unsigned s = 0; s < kNumStages; ++s) close_stage_span(s, cycle_end_);
    close_episode_span(step_end_);
  }
}

}  // namespace qta::telemetry

#include "telemetry/event_log.h"

#include "common/json_writer.h"

namespace qta::telemetry {

const char* serve_event_kind_name(ServeEventKind kind) {
  switch (kind) {
    case ServeEventKind::kRequest: return "request";
    case ServeEventKind::kOverload: return "overload";
    case ServeEventKind::kError: return "error";
    case ServeEventKind::kEviction: return "eviction";
    case ServeEventKind::kRestore: return "restore";
    case ServeEventKind::kSessionCreated: return "session_created";
    case ServeEventKind::kSessionClosed: return "session_closed";
    case ServeEventKind::kMigration: return "migration";
    case ServeEventKind::kFailover: return "failover";
  }
  return "unknown";
}

void write_event_json(qta::JsonWriter& json, const ServeEvent& event) {
  json.begin_object();
  json.field("seq", event.seq);
  json.field("ts_us", event.ts_us);
  json.field("kind", serve_event_kind_name(event.kind));
  json.field("session", event.session);
  json.field("label", event.label);
  json.field("value", event.value);
  json.end_object();
}

}  // namespace qta::telemetry

// Host-side telemetry sink interface — the ONE telemetry header the
// datapath files (qtaccel pipeline files, src/hw, src/fixed, the thread
// pool) are allowed to include; qtlint's telemetry-boundary rule enforces
// exactly that. Everything here is observation-only: a sink receives
// copies of already-committed per-cycle / per-iteration facts and can
// never feed a value back into the datapath, so runs with and without a
// sink attached retire bit-identical traces (tests/telemetry_test.cpp
// proves it differentially for both backends).
//
// Event taxonomy, mirroring the two execution backends:
//   CycleEvent — cycle-accurate Pipeline: one event per tick, carrying
//                the cycle-attribution class (issue / forward-serviced /
//                stall / drain), stage occupancy, and the hazard activity
//                of that cycle.
//   StepEvent  — FastEngine: one event per replayed iteration (the fast
//                backend has no cycle loop; its per-iteration facts are
//                the issue-slot view of the same run).
//   RunEvent   — FastEngine: one event per run_* call with the analytic
//                cycle roll-up (issue/stall/drain), so cycle attribution
//                totals agree with the reconstructed PipelineStats.
#pragma once

#include <cstdint>
#include <string>

namespace qta::telemetry {

/// Cycle-attribution class of one pipeline cycle.
enum class CycleClass : std::uint8_t {
  kIssue,            // stage 1 issued, no forwarding needed
  kForwardServiced,  // stage 1 issued AND >=1 hazard was closed by the
                     // forwarding network this cycle
  kStall,            // issue suppressed (HazardMode::kStall back-pressure)
  kDrain,            // no issue requested; in-flight iterations retiring
};

/// Stable label for a CycleClass ("issue", "forward_serviced", ...).
const char* cycle_class_name(CycleClass cls);

/// Bit positions of the per-stage occupancy masks in CycleEvent.
enum StageBit : std::uint8_t {
  kStageS1 = 1u << 0,
  kStageS2 = 1u << 1,
  kStageS3 = 1u << 2,
  kStageRet = 1u << 3,  // the retiring iteration (stage 4's input)
};
inline constexpr unsigned kNumStages = 4;

/// One cycle of the cycle-accurate pipeline, as the waveform sees it:
/// the stage fields describe the latches evaluated THIS cycle.
struct CycleEvent {
  std::uint64_t cycle = 0;  // 0-based cycle index
  CycleClass cls = CycleClass::kDrain;
  std::uint8_t stage_valid = 0;   // StageBit mask: stage holds an iteration
  std::uint8_t stage_bubble = 0;  // StageBit mask: ...which is a bubble
  // Hazard activity serviced this cycle. Distances are forwarding-queue
  // positions (1 = newest write-back) and 0 when the read was not
  // forwarded.
  std::uint8_t fwd_q_sa = 0;    // Q(S,A) reads served from the queue
  std::uint8_t fwd_q_next = 0;  // Q(S',A') reads served from the queue
  std::uint8_t fwd_qmax = 0;    // Qmax reads raised by in-flight write-backs
  std::uint8_t fwd_sa_distance = 0;
  std::uint8_t fwd_next_distance = 0;
  std::uint8_t adder_saturations = 0;  // saturating-adder clips this cycle
  bool sample_retired = false;  // a non-bubble update committed
  bool episode_end = false;     // ...and it ended its episode
  bool qmax_raised = false;     // stage 4 raised the Qmax entry
};

/// One replayed iteration of the fast functional backend.
struct StepEvent {
  std::uint64_t iteration = 0;  // 0-based iteration index
  bool bubble = false;          // zero-length episode, no update
  bool episode_end = false;
  std::uint8_t fwd_sa_distance = 0;    // 0 = not forwarded; else 1..3
  std::uint8_t fwd_next_distance = 0;  // 0 = not forwarded / no such read
  bool fwd_qmax = false;               // in-flight raise observable
  std::uint8_t saturations = 0;        // DSP + adder clips this iteration
  bool qmax_raised = false;
};

/// Analytic cycle attribution of one FastEngine run_* call. The sums
/// agree with the PipelineStats reconstruction: issue + stall + drain ==
/// the cycles added by the call.
struct RunEvent {
  std::uint64_t issue_cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t drain_cycles = 0;
};

/// Identity of the run a sink observes, used by downstream aggregation to
/// roll cycle attribution up per (algorithm, Qmax mode, hazard mode) and
/// per agent. Built from a PipelineConfig via
/// qtaccel::make_run_labels() — plain strings here so this header stays
/// free of qtaccel types (the dependency points the other way).
struct RunLabels {
  std::string algorithm;  // "q_learning", "sarsa", ...
  std::string qmax;       // "monotone" / "exact"
  std::string hazard;     // "forward" / "stall"
  std::string backend;    // "cycle" / "fast"
  unsigned pipe = 0;      // agent / pipeline index in multi-agent setups
};

/// The sink interface. Default implementations ignore everything, so a
/// sink overrides only the events its backend produces. Implementations
/// attached to engines running on different host threads must either be
/// distinct objects or internally synchronized.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  /// Cycle-accurate backend: one call per Pipeline::tick, after the
  /// stages evaluated and before the clock edge.
  virtual void on_cycle(const CycleEvent& event) { (void)event; }

  /// Fast backend: one call per replayed iteration.
  virtual void on_step(const StepEvent& event) { (void)event; }

  /// Fast backend: one call per run_iterations / run_samples call.
  virtual void on_run(const RunEvent& event) { (void)event; }
};

}  // namespace qta::telemetry

// MetricsRegistry: named counters, gauges, and log2-bucketed histograms
// with Prometheus-style label sets.
//
// Host-side only — datapath code never touches this header; it reaches
// telemetry exclusively through the TelemetrySink interface in
// telemetry/sink.h (enforced by qtlint's telemetry-boundary rule). The
// registry is the aggregation end: PipelineTelemetry folds sink events
// into these instruments, and the registry snapshots to either
// Prometheus text exposition or the bench_json JSON shape.
//
// Concurrency: instrument handles returned by the registry are stable
// for the registry's lifetime and their mutation ops are relaxed
// atomics, so engines on different host threads may bump the same
// counter. Looking up / creating instruments takes a mutex; do it once
// at attach time, not per event.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace qta {
class JsonWriter;
}  // namespace qta

namespace qta::telemetry {

/// Ordered label set, e.g. {{"algo","q_learning"},{"pipe","0"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over uint64 observations with log2 bucketing: slot k holds
/// the values whose bit width is k, i.e. slot 0 is exactly {0} and slot
/// k >= 1 covers [2^(k-1), 2^k - 1]. 65 slots span the full uint64
/// range, so observe() never saturates into an overflow bucket — the
/// top slot IS the bucket whose upper bound is UINT64_MAX.
class Histogram {
 public:
  static constexpr unsigned kSlots = 65;

  void observe(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of observations (wraps mod 2^64 — fine for the bucket shapes
  /// this repo records; Prometheus clients treat _sum as informative).
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t slot_count(unsigned slot) const;

  /// Slot index a value lands in (== std::bit_width(v)).
  static unsigned slot_of(std::uint64_t v);
  /// Largest value slot `slot` covers (inclusive); UINT64_MAX for the top
  /// slot.
  static std::uint64_t slot_upper_bound(unsigned slot);

 private:
  std::array<std::atomic<std::uint64_t>, kSlots> slots_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Upper bound of the bucket containing the q-quantile observation
/// (q in [0,1]), i.e. the le="..." a Prometheus histogram_quantile
/// would report for this log2 bucketing. Returns 0 for an empty
/// histogram. Report-only: a bucket upper bound, not an interpolated
/// value — fine for the p50/p95/p99 summaries bench_serve records.
std::uint64_t histogram_percentile_upper_bound(const Histogram& h, double q);

/// Owns every instrument; one series per (name, labels) pair.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned reference stays valid for the
  /// registry's lifetime. `help` is recorded on first creation of a
  /// metric family and emitted as `# HELP`.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       const std::string& help = "");

  /// Prometheus text exposition format, series sorted by name then
  /// labels. Histograms emit cumulative `_bucket{le=...}` lines up to
  /// the highest populated slot plus the canonical `le="+Inf"` line.
  void write_prometheus(std::ostream& os) const;
  std::string prometheus_text() const;

  /// Emits one JSON object value ({"counters":[...],"gauges":[...],
  /// "histograms":[...]}) into an in-progress document — the shape the
  /// bench_json artifacts embed under a "metrics" key.
  void write_json(qta::JsonWriter& json) const;
  std::string json_text() const;

  /// Distinct metric family names registered so far, sorted. Histograms
  /// appear once under their base name (no _bucket/_sum/_count). The
  /// metric-catalog drift test diffs this against the docs.
  std::vector<std::string> metric_names() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // Self-locking (QTA_EXCLUDES, not QTA_REQUIRES): the public
  // find-or-create entry points call it without holding mu_.
  Series& find_or_create(const std::string& name, const Labels& labels,
                         const std::string& help, Kind kind)
      QTA_EXCLUDES(mu_);
  static std::string series_key(const std::string& name, const Labels& labels);

  mutable qta::Mutex mu_;
  // Keyed by name + serialized labels => deterministic, family-grouped
  // iteration order for both exposition formats. The Series objects
  // themselves are append-only under mu_; the instruments they own are
  // lock-free atomics mutated through stable references.
  std::map<std::string, Series> series_ QTA_GUARDED_BY(mu_);
  // Metric family name -> help text.
  std::map<std::string, std::string> help_ QTA_GUARDED_BY(mu_);
};

}  // namespace qta::telemetry

#include "telemetry/metrics.h"

#include <bit>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/json_writer.h"

namespace qta::telemetry {

void Histogram::observe(std::uint64_t v) {
  slots_[slot_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::slot_count(unsigned slot) const {
  QTA_CHECK(slot < kSlots);
  return slots_[slot].load(std::memory_order_relaxed);
}

unsigned Histogram::slot_of(std::uint64_t v) {
  return static_cast<unsigned>(std::bit_width(v));
}

std::uint64_t Histogram::slot_upper_bound(unsigned slot) {
  QTA_CHECK(slot < kSlots);
  if (slot == 0) return 0;
  if (slot == kSlots - 1) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << slot) - 1;
}

std::uint64_t histogram_percentile_upper_bound(const Histogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile observation, 1-based, ceil(q * total) per the
  // nearest-rank definition (rank 0 maps to 1 so q=0 is the minimum).
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (unsigned i = 0; i < Histogram::kSlots; ++i) {
    cumulative += h.slot_count(i);
    if (cumulative >= rank) return Histogram::slot_upper_bound(i);
  }
  return Histogram::slot_upper_bound(Histogram::kSlots - 1);
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help) {
  Series& s = find_or_create(name, labels, help, Kind::kCounter);
  QTA_CHECK_MSG(s.kind == Kind::kCounter, "metric re-registered as counter");
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  Series& s = find_or_create(name, labels, help, Kind::kGauge);
  QTA_CHECK_MSG(s.kind == Kind::kGauge, "metric re-registered as gauge");
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      const std::string& help) {
  Series& s = find_or_create(name, labels, help, Kind::kHistogram);
  QTA_CHECK_MSG(s.kind == Kind::kHistogram,
                "metric re-registered as histogram");
  return *s.histogram;
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, const std::string& help,
    Kind kind) {
  MutexLock lock(mu_);
  const std::string key = series_key(name, labels);
  auto it = series_.find(key);
  if (it == series_.end()) {
    Series s;
    s.name = name;
    s.labels = labels;
    s.kind = kind;
    switch (kind) {
      case Kind::kCounter: s.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: s.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        s.histogram = std::make_unique<Histogram>();
        break;
    }
    it = series_.emplace(key, std::move(s)).first;
    if (!help.empty() && help_.find(name) == help_.end()) help_[name] = help;
  }
  return it->second;
}

std::string MetricsRegistry::series_key(const std::string& name,
                                        const Labels& labels) {
  std::string key = name;
  key += '\0';
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += '\0';
  }
  return key;
}

namespace {

std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

// {a="x",b="y"}; extra is an optional pre-formatted trailing label
// (used for histogram le="...").
std::string prom_labels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + prom_escape(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

const char* prom_type(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  MutexLock lock(mu_);
  std::string last_family;
  for (const auto& [key, s] : series_) {
    (void)key;
    if (s.name != last_family) {
      last_family = s.name;
      auto help = help_.find(s.name);
      if (help != help_.end()) {
        os << "# HELP " << s.name << " " << help->second << "\n";
      }
      os << "# TYPE " << s.name << " " << prom_type(static_cast<int>(s.kind))
         << "\n";
    }
    switch (s.kind) {
      case Kind::kCounter:
        os << s.name << prom_labels(s.labels) << " " << s.counter->value()
           << "\n";
        break;
      case Kind::kGauge:
        os << s.name << prom_labels(s.labels) << " " << s.gauge->value()
           << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *s.histogram;
        unsigned top = 0;
        for (unsigned i = 0; i < Histogram::kSlots; ++i) {
          if (h.slot_count(i) != 0) top = i;
        }
        std::uint64_t cumulative = 0;
        for (unsigned i = 0; i <= top; ++i) {
          cumulative += h.slot_count(i);
          os << s.name << "_bucket"
             << prom_labels(s.labels, "le=\"" +
                                          std::to_string(
                                              Histogram::slot_upper_bound(i)) +
                                          "\"")
             << " " << cumulative << "\n";
        }
        os << s.name << "_bucket" << prom_labels(s.labels, "le=\"+Inf\"")
           << " " << h.count() << "\n";
        os << s.name << "_sum" << prom_labels(s.labels) << " " << h.sum()
           << "\n";
        os << s.name << "_count" << prom_labels(s.labels) << " " << h.count()
           << "\n";
        break;
      }
    }
  }
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

namespace {

void json_labels(qta::JsonWriter& json, const Labels& labels) {
  json.key("labels").begin_object();
  for (const auto& [k, v] : labels) json.field(k, v);
  json.end_object();
}

}  // namespace

void MetricsRegistry::write_json(qta::JsonWriter& json) const {
  MutexLock lock(mu_);
  json.begin_object();
  json.key("counters").begin_array();
  for (const auto& [key, s] : series_) {
    (void)key;
    if (s.kind != Kind::kCounter) continue;
    json.begin_object().field("name", s.name);
    json_labels(json, s.labels);
    json.field("value", s.counter->value()).end_object();
  }
  json.end_array();
  json.key("gauges").begin_array();
  for (const auto& [key, s] : series_) {
    (void)key;
    if (s.kind != Kind::kGauge) continue;
    json.begin_object().field("name", s.name);
    json_labels(json, s.labels);
    json.field("value", s.gauge->value()).end_object();
  }
  json.end_array();
  json.key("histograms").begin_array();
  for (const auto& [key, s] : series_) {
    (void)key;
    if (s.kind != Kind::kHistogram) continue;
    const Histogram& h = *s.histogram;
    json.begin_object().field("name", s.name);
    json_labels(json, s.labels);
    json.field("count", h.count()).field("sum", h.sum());
    json.key("buckets").begin_array();
    for (unsigned i = 0; i < Histogram::kSlots; ++i) {
      const std::uint64_t n = h.slot_count(i);
      if (n == 0) continue;
      json.begin_object()
          .field("le", Histogram::slot_upper_bound(i))
          .field("count", n)
          .end_object();
    }
    json.end_array().end_object();
  }
  json.end_array();
  json.end_object();
}

std::string MetricsRegistry::json_text() const {
  qta::JsonWriter json;
  write_json(json);
  return json.str();
}

std::vector<std::string> MetricsRegistry::metric_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  // series_ is keyed name-first, so families come out sorted and
  // contiguous; collapse label variants to one entry.
  for (const auto& [key, s] : series_) {
    (void)key;
    if (names.empty() || names.back() != s.name) names.push_back(s.name);
  }
  return names;
}

}  // namespace qta::telemetry

#include "telemetry/trace.h"

#include "common/json_writer.h"

namespace qta::telemetry {

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

void TraceSession::push(Event event) {
  MutexLock lock(mu_);
  events_.push_back(std::move(event));
}

void TraceSession::set_process_name(std::uint32_t pid,
                                    const std::string& name) {
  Event e{};
  e.ph = 'M';
  e.pid = pid;
  e.has_tid = false;
  e.name = "process_name";
  e.arg_name = name;
  push(std::move(e));
}

void TraceSession::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                   const std::string& name) {
  Event e{};
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  e.has_tid = true;
  e.name = "thread_name";
  e.arg_name = name;
  push(std::move(e));
}

void TraceSession::complete_event(std::uint32_t pid, std::uint32_t tid,
                                  const std::string& name, std::uint64_t ts_us,
                                  std::uint64_t dur_us) {
  complete_event(pid, tid, name, ts_us, dur_us, SpanArgs{});
}

void TraceSession::complete_event(std::uint32_t pid, std::uint32_t tid,
                                  const std::string& name, std::uint64_t ts_us,
                                  std::uint64_t dur_us, SpanArgs args) {
  Event e{};
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  e.has_tid = true;
  e.ts = ts_us;
  e.dur = dur_us;
  e.name = name;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceSession::instant_event(std::uint32_t pid, std::uint32_t tid,
                                 const std::string& name, std::uint64_t ts_us) {
  Event e{};
  e.ph = 'i';
  e.pid = pid;
  e.tid = tid;
  e.has_tid = true;
  e.ts = ts_us;
  e.name = name;
  push(std::move(e));
}

std::uint64_t TraceSession::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

std::size_t TraceSession::event_count() const {
  MutexLock lock(mu_);
  return events_.size();
}

void TraceSession::write_json(qta::JsonWriter& json) const {
  MutexLock lock(mu_);
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const Event& e : events_) {
    json.begin_object();
    json.field("name", e.name);
    json.field("ph", std::string(1, e.ph));
    json.field("pid", static_cast<std::uint64_t>(e.pid));
    if (e.has_tid) json.field("tid", static_cast<std::uint64_t>(e.tid));
    switch (e.ph) {
      case 'X':
        json.field("ts", e.ts).field("dur", e.dur);
        if (!e.args.empty()) {
          json.key("args").begin_object();
          for (const auto& [key, value] : e.args) json.field(key, value);
          json.end_object();
        }
        break;
      case 'i':
        json.field("ts", e.ts).field("s", "t");
        break;
      case 'M':
        json.key("args").begin_object().field("name", e.arg_name).end_object();
        break;
      default: break;
    }
    json.end_object();
  }
  json.end_array();
  json.field("displayTimeUnit", "ms");
  json.end_object();
}

std::string TraceSession::json_text() const {
  qta::JsonWriter json;
  write_json(json);
  return json.str();
}

bool TraceSession::write_file(const std::string& path) const {
  qta::JsonWriter json;
  write_json(json);
  return json.write_file(path);
}

}  // namespace qta::telemetry

// qtserved wire protocol: QTSERVE-WIRE v3.
//
// The serving layer multiplexes many logical learner sessions onto a
// bounded pool of runtime backends; clients talk to it through small
// length-prefixed binary frames:
//
//   frame    := u32le payload_length, payload
//   payload  := u32le magic ("QTSV"), u16le version (1..3), u8 kind,
//               kind-specific fields (all integers little-endian,
//               doubles as IEEE-754 bit patterns, strings/blobs as
//               u32le length + raw bytes)
//
// The payload encoding is versioned exactly like the snapshot format
// (docs/runtime.md): adding request types or trailing response fields
// is NOT a version bump (decoders ignore unknown trailing bytes);
// changing the meaning or layout of an existing field is. v2 inserts
// the trace-context block (trace_id, parent_span, probe) into the
// request body ahead of the optional spec — a layout change, hence the
// bump — and appends span_id + introspect_json to responses. v3 adds
// the shard-migration control pair (MigrateOut / MigrateIn — the
// MigrateIn body carries an opaque migration-image blob, another
// request-layout change) and the Shards introspect probe; a v1 or v2
// peer naming any of them is rejected as malformed, which is how old
// daemons refuse to take part in migration they cannot perform
// (docs/sharding.md has the versioning policy). Decoders accept all
// three versions (older bodies simply lack the newer fields); encoders
// emit v3 unless asked for an older version, so old clients keep
// working against new servers and vice versa. A decoder that sees a
// foreign magic or a newer version rejects the frame with a diagnostic
// instead of guessing — parse failures are Error replies, never
// aborts, because the bytes come off a network.
//
// Request types (docs/serving.md has the full field tables):
//   CreateSession(spec)  -> session id        (control plane, immediate)
//   Step(session, n)     -> stats after step  (queued, per-session FIFO;
//                           advances the session by n samples — the
//                           engine may overshoot by its pipeline depth
//                           when draining, so replies report totals)
//   Query(session, s)    -> greedy action + Q row    (queued)
//   Snapshot(session)    -> QTACCEL-SNAPSHOT v2 text (queued)
//   Evict(session)       -> ok                (queued; forces a cold save)
//   Close(session)       -> ok                (queued; frees the session)
//   Stats                -> metrics JSON + Prometheus text (immediate)
//   Ping / Shutdown      -> ok                (immediate)
//   Introspect(probe)    -> introspect_json   (immediate; v2 only — the
//                           qtscope plane: metrics snapshot, flight-
//                           recorder dump, or one session's summary;
//                           the Shards probe is v3 and answered by
//                           qtrouterd, not by a worker)
//   MigrateOut(session)  -> migration image   (queued; v3 only — packs
//                           the session's cold chain into one blob
//                           [Response.snapshot] and removes it; the
//                           router's half of live migration)
//   MigrateIn(session, image) -> ok           (immediate; v3 only —
//                           adopts the session under its original id;
//                           an empty-chain image doubles as a remote
//                           CreateSession with a router-chosen id)
//
// Trace context: a v2 client may stamp any request with a nonzero
// trace_id (and optionally its own parent_span). The server then emits
// the request's full lifecycle — admission, queue wait, engine acquire
// (hot vs restore), execute, reply — as Perfetto spans carrying that
// trace_id, and echoes the span id it assigned in Response.span_id.
// Zero trace_id means "not traced"; v1 frames decode with trace_id 0.
//
// Overload is a first-class reply: when the admission-control queue is
// full the server answers kOverloaded immediately and drops nothing —
// clients retry; memory stays bounded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "qtaccel/config.h"

namespace qta::serve {

inline constexpr std::uint32_t kWireMagic = 0x56535451u;  // "QTSV" LE
inline constexpr std::uint16_t kWireVersion = 3;
/// Oldest version decoders still accept (v1 = pre-trace-context).
inline constexpr std::uint16_t kWireVersionMin = 1;
/// Hard ceiling on one frame (snapshot replies dominate; a 256x256x8
/// double-Q table snapshot is ~30 MB of text).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

using SessionId = std::uint64_t;

/// Everything needed to (re)build a session's environment + engine.
/// The spec is the session's config fingerprint: it is fixed at
/// CreateSession and identical across evict/restore cycles.
struct SessionSpec {
  // Environment (a grid world; width/height powers of two, 4/8 actions).
  unsigned width = 8;
  unsigned height = 8;
  unsigned actions = 4;
  // Learner.
  qtaccel::Algorithm algorithm = qtaccel::Algorithm::kQLearning;
  qtaccel::Backend backend = qtaccel::Backend::kFast;
  double alpha = 0.2;
  double gamma = 0.9;
  double epsilon = 0.1;
  std::uint64_t seed = 1;
  std::uint64_t max_episode_length = 256;
  /// Attach a per-session PipelineTelemetry sink (labelled with the
  /// session id on the `pipe` label) to the server's registry.
  bool telemetry = false;

  friend bool operator==(const SessionSpec&, const SessionSpec&) = default;
};

/// The pipeline config a spec denotes (shared by server and verifying
/// clients so both build bit-identical engines).
qtaccel::PipelineConfig make_config(const SessionSpec& spec);

/// Validates a spec without aborting; returns an error message, or ""
/// when the spec is servable.
std::string validate_spec(const SessionSpec& spec);

enum class RequestType : std::uint8_t {
  kCreateSession = 0,
  kStep = 1,
  kQuery = 2,
  kSnapshot = 3,
  kEvict = 4,
  kClose = 5,
  kStats = 6,
  kPing = 7,
  kShutdown = 8,
  kIntrospect = 9,   // v2 qtscope plane; a v1 peer never sends it
  kMigrateOut = 10,  // v3 shard plane; v1/v2 peers reject it as malformed
  kMigrateIn = 11,   // v3 shard plane; carries Request.payload
};

/// What an Introspect request wants back (Request.probe).
enum class IntrospectProbe : std::uint8_t {
  kMetrics = 0,         // registry snapshot: introspect_json + both stats blobs
  kFlightRecorder = 1,  // flight-recorder JSON dump
  kSession = 2,         // one session's state summary (Request.session)
  kShards = 3,          // v3: shard topology JSON (routers only; a plain
                        // qtserved answers an error)
};

/// Stable wire/metric spelling ("create_session", "step", ...).
const char* request_type_name(RequestType type);

struct Request {
  RequestType type = RequestType::kPing;
  SessionId session = 0;       // all session-scoped types
  std::uint64_t steps = 0;     // kStep
  StateId state = 0;           // kQuery
  // v2 trace context; all-zero on v1 frames and untraced v2 frames.
  std::uint64_t trace_id = 0;     // nonzero => emit lifecycle spans
  std::uint64_t parent_span = 0;  // client-side enclosing span, if any
  IntrospectProbe probe = IntrospectProbe::kMetrics;  // kIntrospect
  SessionSpec spec;            // kCreateSession
  // kMigrateIn only (v3): an encoded MigrationImage. Opaque to the
  // codec — encode_migration_image/decode_migration_image own its
  // layout and validation.
  std::string payload;
};

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,       // request was understood but cannot be served
  kOverloaded = 2,  // admission control: retry later
};

struct Response {
  Status status = Status::kOk;
  RequestType type = RequestType::kPing;  // echoes the request
  std::string error;                      // kError diagnostic
  SessionId session = 0;
  // kStep / kQuery: engine counters after the request executed.
  std::uint64_t samples = 0;
  std::uint64_t episodes = 0;
  std::uint64_t cycles = 0;
  // kQuery.
  ActionId action = 0;
  std::vector<double> q_row;
  // kSnapshot: QTACCEL-SNAPSHOT v2 text. kStats: metrics snapshots.
  std::string snapshot;
  std::string stats_json;
  std::string stats_prometheus;
  // v2 trailing fields; zero/empty on v1 frames.
  std::uint64_t span_id = 0;     // server-assigned request span (the ticket)
  std::string introspect_json;   // kIntrospect payload
};

/// One session's portable state: the spec plus its cold chain, packed
/// for shipment between shards (kMigrateOut replies carry one encoded
/// in Response.snapshot; kMigrateIn requests carry one in
/// Request.payload). The chain bytes are moved verbatim — a v3 base
/// plus deltas ships as-is, never inflated to v2 text — so adopting a
/// cold session costs exactly what parking it did. An image with an
/// empty base is a "fresh" image: adopting it is equivalent to
/// CreateSession(spec) under the given id.
///
/// Own sub-format (magic "QTMG", u16 version 1) versioned
/// independently of QTSERVE-WIRE: the wire carries it as an opaque
/// blob, so image layout changes don't force a wire bump
/// (docs/sharding.md spells out the policy).
struct MigrationImage {
  SessionSpec spec;
  bool base_is_v3 = false;    // base is QTACCEL-SNAPSHOT v3 binary, not v2 text
  std::string base;           // full snapshot; empty => fresh session
  std::vector<std::string> deltas;  // v3 delta frames, oldest first

  friend bool operator==(const MigrationImage&,
                         const MigrationImage&) = default;
};

inline constexpr std::uint32_t kMigrationMagic = 0x474D5451u;  // "QTMG" LE
inline constexpr std::uint16_t kMigrationVersion = 1;

std::string encode_migration_image(const MigrationImage& image);
/// nullopt on malformed/foreign/truncated blobs; `error` says why.
std::optional<MigrationImage> decode_migration_image(
    std::string_view payload, std::string* error = nullptr);

/// Payload codecs (no frame header; see frame helpers below). `version`
/// selects the emitted wire version (kWireVersionMin..kWireVersion) so
/// back-compat tests and old-peer shims can produce v1 bytes; v1 drops
/// the v2-only fields.
std::string encode_request(const Request& req,
                           std::uint16_t version = kWireVersion);
std::string encode_response(const Response& resp,
                            std::uint16_t version = kWireVersion);
/// Return nullopt on malformed/foreign/truncated payloads and, when
/// `error` is non-null, say why.
std::optional<Request> decode_request(std::string_view payload,
                                      std::string* error = nullptr);
std::optional<Response> decode_response(std::string_view payload,
                                        std::string* error = nullptr);

/// Length-prefix helpers for stream transports: frame() prepends the
/// u32le length; unframe() extracts one complete payload from `buffer`
/// (consuming it) or returns nullopt when more bytes are needed. A
/// frame longer than kMaxFrameBytes is a protocol error: unframe()
/// reports it through `oversized` so the transport can drop the peer.
std::string frame(std::string_view payload);
std::optional<std::string> unframe(std::string& buffer,
                                   bool* oversized = nullptr);

}  // namespace qta::serve

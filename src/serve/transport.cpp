#include "serve/transport.h"

#include <optional>
#include <string>

#include "common/check.h"

namespace qta::serve {

LoopbackTransport::LoopbackTransport(const ServerOptions& options)
    : server_(std::make_unique<Server>(options)) {}

LoopbackTransport::~LoopbackTransport() = default;

Ticket LoopbackTransport::post(const Request& req) {
  std::string error;
  std::optional<Request> decoded = decode_request(encode_request(req), &error);
  QTA_CHECK_MSG(decoded.has_value(),
                "loopback request failed its own codec round trip");
  return server_->submit(*decoded);
}

Response LoopbackTransport::wait(Ticket ticket) {
  while (!server_->done(ticket)) {
    QTA_CHECK_MSG(server_->pending(),
                  "wait(): ticket is not done and nothing is staged");
    server_->pump();
  }
  std::string error;
  std::optional<Response> decoded =
      decode_response(encode_response(server_->take(ticket)), &error);
  QTA_CHECK_MSG(decoded.has_value(),
                "loopback response failed its own codec round trip");
  return *decoded;
}

}  // namespace qta::serve

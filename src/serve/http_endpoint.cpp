#include "serve/http_endpoint.h"

#include <cstddef>

#include "serve/server.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace qta::serve {

namespace {

std::string http_response(const char* status_line, const std::string& body,
                          const char* content_type, bool include_body) {
  std::string out = "HTTP/1.0 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (include_body) out += body;
  return out;
}

}  // namespace

std::string handle_http(Server& server, const std::string& request_text) {
  // Request line: METHOD SP TARGET SP VERSION. Tolerate a bare
  // "METHOD TARGET" (no HTTP version) — curl never sends it but the
  // parse costs nothing.
  const std::size_t line_end = request_text.find_first_of("\r\n");
  const std::string line = request_text.substr(
      0, line_end == std::string::npos ? request_text.size() : line_end);
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string::npos || method_end == 0) {
    return http_response("400 Bad Request", "bad request\n", "text/plain",
                         true);
  }
  const std::string method = line.substr(0, method_end);
  std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string::npos) target_end = line.size();
  std::string target =
      line.substr(method_end + 1, target_end - method_end - 1);
  // Scrapers may append query strings (?format=...); the routes ignore
  // them.
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);

  const bool head = method == "HEAD";
  if (method != "GET" && !head) {
    return http_response("405 Method Not Allowed", "only GET here\n",
                         "text/plain", true);
  }
  if (target == "/healthz") {
    return http_response("200 OK", "ok\n", "text/plain", !head);
  }
  if (target == "/metrics") {
    return http_response("200 OK", server.metrics().prometheus_text(),
                         "text/plain; version=0.0.4", !head);
  }
  if (target == "/flightrecorder") {
    const telemetry::FlightRecorder* flight = server.flight();
    if (flight == nullptr) {
      return http_response("404 Not Found", "flight recorder disabled\n",
                           "text/plain", true);
    }
    return http_response("200 OK", flight->json_text(), "application/json",
                         !head);
  }
  return http_response("404 Not Found", "no such route\n", "text/plain",
                       true);
}

}  // namespace qta::serve

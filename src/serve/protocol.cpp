#include "serve/protocol.h"

#include <bit>
#include <cstring>

#include "common/check.h"

namespace qta::serve {

namespace {

// --- little-endian, bounds-checked payload readers/writers ---

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > data_.size()) return fail();
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool u16(std::uint16_t* v) {
    std::uint64_t w = 0;
    if (!uint(2, &w)) return false;
    *v = static_cast<std::uint16_t>(w);
    return true;
  }
  bool u32(std::uint32_t* v) {
    std::uint64_t w = 0;
    if (!uint(4, &w)) return false;
    *v = static_cast<std::uint32_t>(w);
    return true;
  }
  bool u64(std::uint64_t* v) { return uint(8, v); }
  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }
  bool str(std::string* v) {
    std::uint32_t len = 0;
    if (!u32(&len)) return false;
    if (pos_ + len > data_.size()) return fail();
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool ok() const { return ok_; }

 private:
  bool uint(unsigned bytes, std::uint64_t* v) {
    if (pos_ + bytes > data_.size()) return fail();
    std::uint64_t w = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      w |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += bytes;
    *v = w;
    return true;
  }
  bool fail() {
    ok_ = false;
    return false;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
  return false;
}

// Header shared by requests and responses. A version newer than ours is
// rejected (we cannot know what the fields mean); supported older
// versions decode with the v2-only fields left at their defaults.
bool read_header(Reader& r, std::uint16_t* version, std::string* error) {
  std::uint32_t magic = 0;
  if (!r.u32(&magic) || !r.u16(version)) {
    return set_error(error, "truncated QTSERVE header");
  }
  if (magic != kWireMagic) {
    return set_error(error, "not a QTSERVE-WIRE payload (bad magic)");
  }
  if (*version < kWireVersionMin || *version > kWireVersion) {
    return set_error(error, "unsupported QTSERVE-WIRE version");
  }
  return true;
}

bool check_encode_version(std::uint16_t version) {
  return version >= kWireVersionMin && version <= kWireVersion;
}

void write_spec(Writer& w, const SessionSpec& spec) {
  w.u32(spec.width);
  w.u32(spec.height);
  w.u32(spec.actions);
  w.u8(static_cast<std::uint8_t>(spec.algorithm));
  w.u8(static_cast<std::uint8_t>(spec.backend));
  w.f64(spec.alpha);
  w.f64(spec.gamma);
  w.f64(spec.epsilon);
  w.u64(spec.seed);
  w.u64(spec.max_episode_length);
  w.u8(spec.telemetry ? 1 : 0);
}

bool read_spec(Reader& r, SessionSpec* spec) {
  std::uint8_t algorithm = 0, backend = 0, telemetry = 0;
  if (!r.u32(&spec->width) || !r.u32(&spec->height) ||
      !r.u32(&spec->actions) || !r.u8(&algorithm) || !r.u8(&backend) ||
      !r.f64(&spec->alpha) || !r.f64(&spec->gamma) ||
      !r.f64(&spec->epsilon) || !r.u64(&spec->seed) ||
      !r.u64(&spec->max_episode_length) || !r.u8(&telemetry)) {
    return false;
  }
  if (algorithm > static_cast<std::uint8_t>(
                      qtaccel::Algorithm::kDoubleQ) ||
      backend > static_cast<std::uint8_t>(qtaccel::Backend::kLanes)) {
    return false;
  }
  spec->algorithm = static_cast<qtaccel::Algorithm>(algorithm);
  spec->backend = static_cast<qtaccel::Backend>(backend);
  spec->telemetry = telemetry != 0;
  return true;
}

bool is_power_of_two(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

qtaccel::PipelineConfig make_config(const SessionSpec& spec) {
  qtaccel::PipelineConfig config;
  config.algorithm = spec.algorithm;
  config.backend = spec.backend;
  config.alpha = spec.alpha;
  config.gamma = spec.gamma;
  config.epsilon = spec.epsilon;
  config.seed = spec.seed;
  config.max_episode_length = spec.max_episode_length;
  return config;
}

std::string validate_spec(const SessionSpec& spec) {
  if (!is_power_of_two(spec.width) || !is_power_of_two(spec.height)) {
    return "grid width/height must be powers of two";
  }
  if (spec.width < 2 || spec.height < 2 || spec.width > 256 ||
      spec.height > 256) {
    return "grid dimensions must be in [2, 256]";
  }
  if (spec.actions != 4 && spec.actions != 8) {
    return "grid worlds support 4 or 8 actions";
  }
  if (!(spec.alpha > 0.0 && spec.alpha < 1.0) ||
      !(spec.gamma > 0.0 && spec.gamma < 1.0) ||
      !(spec.epsilon >= 0.0 && spec.epsilon < 1.0)) {
    return "rates out of range: need 0<alpha<1, 0<gamma<1, 0<=epsilon<1";
  }
  if (spec.max_episode_length == 0) {
    return "max_episode_length must be nonzero";
  }
  return "";
}

const char* request_type_name(RequestType type) {
  switch (type) {
    case RequestType::kCreateSession: return "create_session";
    case RequestType::kStep: return "step";
    case RequestType::kQuery: return "query";
    case RequestType::kSnapshot: return "snapshot";
    case RequestType::kEvict: return "evict";
    case RequestType::kClose: return "close";
    case RequestType::kStats: return "stats";
    case RequestType::kPing: return "ping";
    case RequestType::kShutdown: return "shutdown";
    case RequestType::kIntrospect: return "introspect";
    case RequestType::kMigrateOut: return "migrate_out";
    case RequestType::kMigrateIn: return "migrate_in";
  }
  return "unknown";
}

namespace {

// The newest request type a peer at `version` is allowed to name.
// Older peers naming newer types are malformed frames, not errors —
// that is how pre-shard daemons refuse migration they cannot perform.
RequestType max_request_type(std::uint16_t version) {
  if (version >= 3) return RequestType::kMigrateIn;
  if (version >= 2) return RequestType::kIntrospect;
  return RequestType::kShutdown;
}

IntrospectProbe max_probe(std::uint16_t version) {
  return version >= 3 ? IntrospectProbe::kShards : IntrospectProbe::kSession;
}

}  // namespace

std::string encode_request(const Request& req, std::uint16_t version) {
  QTA_CHECK_MSG(check_encode_version(version),
                "encode_request: unsupported wire version");
  Writer w;
  w.u32(kWireMagic);
  w.u16(version);
  w.u8(static_cast<std::uint8_t>(req.type));
  w.u64(req.session);
  w.u64(req.steps);
  w.u32(req.state);
  if (version >= 2) {
    w.u64(req.trace_id);
    w.u64(req.parent_span);
    w.u8(static_cast<std::uint8_t>(req.probe));
  }
  if (req.type == RequestType::kCreateSession) write_spec(w, req.spec);
  if (version >= 3 && req.type == RequestType::kMigrateIn) {
    w.str(req.payload);
  }
  return w.take();
}

std::optional<Request> decode_request(std::string_view payload,
                                      std::string* error) {
  Reader r(payload);
  std::uint16_t version = 0;
  if (!read_header(r, &version, error)) return std::nullopt;
  Request req;
  std::uint8_t type = 0;
  if (!r.u8(&type) || !r.u64(&req.session) || !r.u64(&req.steps) ||
      !r.u32(&req.state)) {
    set_error(error, "truncated request body");
    return std::nullopt;
  }
  if (type > static_cast<std::uint8_t>(max_request_type(version))) {
    set_error(error, "unknown request type");
    return std::nullopt;
  }
  req.type = static_cast<RequestType>(type);
  if (version >= 2) {
    std::uint8_t probe = 0;
    if (!r.u64(&req.trace_id) || !r.u64(&req.parent_span) || !r.u8(&probe)) {
      set_error(error, "truncated trace context");
      return std::nullopt;
    }
    if (req.type == RequestType::kIntrospect) {
      if (probe > static_cast<std::uint8_t>(max_probe(version))) {
        set_error(error, "unknown introspect probe");
        return std::nullopt;
      }
      req.probe = static_cast<IntrospectProbe>(probe);
    }
    // probe is meaningless on other types; canonicalize to kMetrics so
    // encode∘decode stays a fixed point for the fuzzer.
  }
  if (req.type == RequestType::kCreateSession &&
      !read_spec(r, &req.spec)) {
    set_error(error, "malformed session spec");
    return std::nullopt;
  }
  if (version >= 3 && req.type == RequestType::kMigrateIn &&
      !r.str(&req.payload)) {
    set_error(error, "truncated migration payload");
    return std::nullopt;
  }
  return req;
}

std::string encode_response(const Response& resp, std::uint16_t version) {
  QTA_CHECK_MSG(check_encode_version(version),
                "encode_response: unsupported wire version");
  Writer w;
  w.u32(kWireMagic);
  w.u16(version);
  w.u8(static_cast<std::uint8_t>(resp.status));
  w.u8(static_cast<std::uint8_t>(resp.type));
  w.str(resp.error);
  w.u64(resp.session);
  w.u64(resp.samples);
  w.u64(resp.episodes);
  w.u64(resp.cycles);
  w.u32(resp.action);
  w.u32(static_cast<std::uint32_t>(resp.q_row.size()));
  for (const double q : resp.q_row) w.f64(q);
  w.str(resp.snapshot);
  w.str(resp.stats_json);
  w.str(resp.stats_prometheus);
  if (version >= 2) {
    w.u64(resp.span_id);
    w.str(resp.introspect_json);
  }
  return w.take();
}

std::optional<Response> decode_response(std::string_view payload,
                                        std::string* error) {
  Reader r(payload);
  std::uint16_t version = 0;
  if (!read_header(r, &version, error)) return std::nullopt;
  Response resp;
  std::uint8_t status = 0, type = 0;
  std::uint32_t q_count = 0;
  if (!r.u8(&status) || !r.u8(&type) || !r.str(&resp.error) ||
      !r.u64(&resp.session) || !r.u64(&resp.samples) ||
      !r.u64(&resp.episodes) || !r.u64(&resp.cycles) ||
      !r.u32(&resp.action) || !r.u32(&q_count)) {
    set_error(error, "truncated response body");
    return std::nullopt;
  }
  if (status > static_cast<std::uint8_t>(Status::kOverloaded) ||
      type > static_cast<std::uint8_t>(max_request_type(version))) {
    set_error(error, "unknown response status or type");
    return std::nullopt;
  }
  resp.status = static_cast<Status>(status);
  resp.type = static_cast<RequestType>(type);
  // An adversarial count could otherwise reserve 64M doubles before the
  // bounds check fires; cap by what the remaining bytes can hold.
  if (q_count > payload.size() / 8) {
    set_error(error, "q_row length exceeds payload");
    return std::nullopt;
  }
  resp.q_row.resize(q_count);
  for (auto& q : resp.q_row) {
    if (!r.f64(&q)) {
      set_error(error, "truncated q_row");
      return std::nullopt;
    }
  }
  if (!r.str(&resp.snapshot) || !r.str(&resp.stats_json) ||
      !r.str(&resp.stats_prometheus)) {
    set_error(error, "truncated response blobs");
    return std::nullopt;
  }
  if (version >= 2 &&
      (!r.u64(&resp.span_id) || !r.str(&resp.introspect_json))) {
    set_error(error, "truncated introspection trailer");
    return std::nullopt;
  }
  return resp;
}

std::string encode_migration_image(const MigrationImage& image) {
  Writer w;
  w.u32(kMigrationMagic);
  w.u16(kMigrationVersion);
  write_spec(w, image.spec);
  w.u8(image.base_is_v3 ? 1 : 0);
  w.str(image.base);
  w.u32(static_cast<std::uint32_t>(image.deltas.size()));
  for (const std::string& delta : image.deltas) w.str(delta);
  return w.take();
}

std::optional<MigrationImage> decode_migration_image(
    std::string_view payload, std::string* error) {
  Reader r(payload);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  if (!r.u32(&magic) || !r.u16(&version)) {
    set_error(error, "truncated migration-image header");
    return std::nullopt;
  }
  if (magic != kMigrationMagic) {
    set_error(error, "not a migration image (bad magic)");
    return std::nullopt;
  }
  if (version < 1 || version > kMigrationVersion) {
    set_error(error, "unsupported migration-image version");
    return std::nullopt;
  }
  MigrationImage image;
  std::uint8_t base_is_v3 = 0;
  std::uint32_t delta_count = 0;
  if (!read_spec(r, &image.spec) || !r.u8(&base_is_v3) ||
      !r.str(&image.base) || !r.u32(&delta_count)) {
    set_error(error, "truncated migration-image body");
    return std::nullopt;
  }
  // Each delta costs at least a u32 length prefix; an adversarial count
  // could otherwise reserve gigabytes before the bounds check fires.
  if (delta_count > payload.size() / 4) {
    set_error(error, "migration-image delta count exceeds payload");
    return std::nullopt;
  }
  image.base_is_v3 = base_is_v3 != 0;
  image.deltas.resize(delta_count);
  for (std::string& delta : image.deltas) {
    if (!r.str(&delta)) {
      set_error(error, "truncated migration-image delta");
      return std::nullopt;
    }
  }
  return image;
}

std::string frame(std::string_view payload) {
  QTA_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                "frame payload exceeds kMaxFrameBytes");
  Writer w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  std::string out = w.take();
  out.append(payload.data(), payload.size());
  return out;
}

std::optional<std::string> unframe(std::string& buffer, bool* oversized) {
  if (oversized != nullptr) *oversized = false;
  if (buffer.size() < 4) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buffer.data(), 4);
  if constexpr (std::endian::native == std::endian::big) {
    len = ((len & 0xffu) << 24) | ((len & 0xff00u) << 8) |
          ((len >> 8) & 0xff00u) | (len >> 24);
  }
  if (len > kMaxFrameBytes) {
    if (oversized != nullptr) *oversized = true;
    return std::nullopt;
  }
  if (buffer.size() < 4u + len) return std::nullopt;
  std::string payload = buffer.substr(4, len);
  buffer.erase(0, 4u + len);
  return payload;
}

}  // namespace qta::serve

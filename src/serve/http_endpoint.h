// Minimal HTTP/1.0 introspection endpoint for qtserved.
//
// Prometheus and load balancers speak HTTP, not QTSERVE-WIRE, so the
// daemon exposes a second listener whose request handling is this one
// pure function: given the raw request text (everything up to the
// blank line), produce the complete response bytes. Keeping it a pure
// function keeps the socket plumbing in tools/qtserved.cpp and makes
// the endpoint unit-testable without a socket.
//
// Routes (GET only; HEAD gets the same status line without a body):
//   /healthz        -> 200 "ok\n"
//   /metrics        -> 200 Prometheus text exposition (version 0.0.4)
//   /flightrecorder -> 200 flight-recorder JSON dump, 404 when disabled
// Anything else is 404; non-GET/HEAD methods are 405; an unparsable
// request line is 400. Every response closes the connection
// (Connection: close) — scrapes are one-shot by design.
#pragma once

#include <string>

namespace qta::serve {

class Server;

/// `request_text` is the request head (request line + headers, with or
/// without the trailing blank line). Returns the full response bytes.
std::string handle_http(Server& server, const std::string& request_text);

}  // namespace qta::serve

// SessionManager: an unbounded set of logical learner sessions mapped
// onto a bounded set of resident (hot) runtime backends.
//
// A session is a SessionSpec (the config fingerprint, fixed at create
// time) plus machine state. The state lives in exactly one of two
// places:
//   hot  — a live runtime::Engine on one of the manager's `max_hot`
//          resident slots;
//   cold — a checkpoint chain: one full base image (QTACCEL-SNAPSHOT v2
//          text or v3 binary, per SessionManagerOptions::park_format)
//          plus zero or more v3 dirty-row deltas, each serializing only
//          the rows touched since the previous checkpoint
//          (runtime/snapshot.h). An empty chain means the session never
//          ran: restoring it is just a fresh engine, which is
//          bit-identical by construction. Chains are compacted back to
//          a single full image once they reach max_delta_chain deltas
//          (or whenever a delta would not be smaller than a full
//          image).
//
// acquire() is the only path that makes a session hot; when all slots
// are taken it evicts the least-recently-used hot session through the
// snapshot layer. Because snapshot round trips are bit-exact for full
// images AND base+delta chains (docs/runtime.md), an evict/restore
// cycle between run_samples calls is invisible to the session: tables,
// stats, RNG registers, and telemetry counters continue exactly as if
// the engine had stayed resident (proven by tests/serve_test.cpp and
// serve_churn_test.cpp).
//
// Parking can be deferred (SessionManagerOptions::async_park): instead
// of serializing inline, make_cold stages a PendingPark — the engine
// stays alive on the session, off the LRU, read-only — and the caller
// runs serialize_park() on worker threads before commit_parks() back on
// the control thread stores the blob and tears the engine down. The
// server overlaps park serialization with batch execution this way;
// direct users can ignore the queue entirely (flush_parks() is the
// synchronous fallback, and the sync default never stages anything).
//
// Per-session telemetry: when spec.telemetry is set, the session owns a
// PipelineTelemetry sink (labelled with the session id on the `pipe`
// label) that aggregates into the manager's MetricsRegistry. The sink
// outlives evictions — it is reattached on restore — so its counters
// span the session's whole life, not one residency.
//
// Threading: the manager itself is control-plane single-threaded (the
// server mutates it only between batches). Worker threads may touch the
// *engines* of distinct acquired sessions concurrently; they never call
// the manager. Because confinement — not locking — is the discipline
// here, this class deliberately owns NO mutex for clang's thread-safety
// analysis to find (common/annotations.h, docs/static_analysis.md): the
// qtlint mutex-annotation rule guarantees that if a lock is ever added
// to this file it must arrive annotated, and the analysis then checks
// every access. Until then the single-caller contract is the invariant;
// tests/serve_churn_test.cpp exercises it under the TSan preset.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "env/grid_world.h"
#include "runtime/engine.h"
#include "serve/protocol.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/pipeline_telemetry.h"

namespace qta::serve {

/// Cold-storage format for full park checkpoints. v2 text stays fully
/// writable for back-compat and cross-format verification; deltas are
/// always v3 binary (there is no text delta format).
enum class ParkFormat { kV2Text, kV3Binary };

struct SessionManagerOptions {
  /// Defer evict-time serialization to worker threads (see the parking
  /// notes atop this file). false = serialize inline on the calling
  /// thread, the drop-in historical behavior.
  bool async_park = false;
  /// Format for newly written full checkpoints.
  ParkFormat park_format = ParkFormat::kV3Binary;
  /// Compaction bound: force a full checkpoint once a cold chain holds
  /// this many deltas, so restore cost stays O(base + max_delta_chain).
  /// 0 disables deltas entirely (every park is a full image).
  unsigned max_delta_chain = 4;
  /// Base format for export_session images. kV3Binary (the default)
  /// ships the cold chain verbatim — a v3 base plus deltas moves as-is,
  /// never inflated; kV2Text materializes the chain into interchange
  /// text first (the --migrate-format=v2 escape hatch, mirroring
  /// park_format).
  ParkFormat migrate_format = ParkFormat::kV3Binary;
};

class SessionManager {
 public:
  /// A staged eviction under async parking: the session's engine stays
  /// alive (read-only, off the LRU) until the blob is serialized and
  /// committed. The delta/full and format decision is made at enqueue
  /// time on the control thread (from dirty_row_count() byte
  /// estimates); serialize_park() only renders bytes, so distinct
  /// PendingParks are safe to serialize concurrently.
  struct PendingPark {
    SessionId id = 0;
    runtime::Engine* engine = nullptr;  // owned by the session, not us
    bool delta = false;
    ParkFormat format = ParkFormat::kV3Binary;
    std::string blob;             // filled by serialize_park
    std::uint64_t serialize_us = 0;  // filled by serialize_park
    int reason = 0;               // EvictReason, opaque to workers
  };

  /// `max_hot` bounds resident engines (>= 1). `metrics` may be null
  /// (no per-session telemetry, no eviction counters), as may `flight`
  /// (no eviction/restore flight-recorder events); both must outlive
  /// the manager.
  SessionManager(unsigned max_hot, telemetry::MetricsRegistry* metrics,
                 telemetry::FlightRecorder* flight = nullptr,
                 const SessionManagerOptions& options = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a session for `spec` (the caller has validated it) and
  /// returns its id. Cheap: no engine is built until first acquire().
  SessionId create(const SessionSpec& spec);

  /// Ensures the session is hot (restoring from its cold snapshot and
  /// evicting the LRU resident session if needed) and returns its
  /// engine; nullptr for an unknown/closed id. Touches the LRU: the
  /// `max_hot` most recently acquired sessions are never evicted by a
  /// later acquire, so a caller may hold up to `max_hot` engines at
  /// once (the server's batch bound). When `restored` is non-null it is
  /// set to whether THIS call rebuilt the engine from a non-empty cold
  /// snapshot (false for hot hits and never-ran sessions) — the
  /// hot/restore path label on the server's latency metrics.
  runtime::Engine* acquire(SessionId id, bool* restored = nullptr);

  /// Forces the session cold now (snapshot + engine teardown). Returns
  /// false for unknown ids; a no-op for already-cold sessions.
  bool evict(SessionId id);

  /// Destroys the session entirely. Returns false for unknown ids.
  bool close(SessionId id);

  bool exists(SessionId id) const { return sessions_.count(id) != 0; }
  bool is_hot(SessionId id) const;
  const SessionSpec* spec(SessionId id) const;

  /// The session's current machine state as QTACCEL-SNAPSHOT v2 text
  /// (serialized live for hot sessions; materialized on demand from the
  /// cold base+delta chain for cold ones, so clients always see v2 text
  /// regardless of park format; "" for a fresh session that never ran).
  /// Flushes any pending parks first. Unknown id aborts — gate on
  /// exists().
  std::string snapshot_text(SessionId id);

  /// Async-parking surface (no-ops unless options.async_park staged
  /// something). pending_parks() exposes the staged queue so a caller
  /// can fan serialize_park() out across worker threads — items are
  /// independent; each worker must touch only its own element — then
  /// commit_parks() on the control thread stores blobs, tears down
  /// engines, and attributes counters. flush_parks() is the synchronous
  /// fallback: serialize everything inline and commit.
  std::vector<PendingPark>& pending_parks() { return pending_parks_; }
  static void serialize_park(PendingPark& park);
  void commit_parks();
  void flush_parks();

  std::size_t size() const { return sessions_.size(); }
  unsigned hot_count() const {
    return static_cast<unsigned>(lru_.size());
  }
  unsigned capacity() const { return max_hot_; }

  /// Capacity evictions performed since construction (the LRU tail
  /// being pushed out by acquire; explicit evict() is not counted).
  std::uint64_t lru_evictions() const { return lru_evictions_; }
  std::uint64_t restores() const { return restores_; }

  /// One session's state summary as a JSON object (the Introspect
  /// kSession payload; docs/serving.md documents the shape). Unknown
  /// id aborts — gate on exists().
  std::string summary_json(SessionId id) const;

  /// Migration surface (docs/sharding.md): export_session packs the
  /// session's portable state into `image` and removes the session.
  /// A hot session is parked inline first (reason "migrate", never
  /// staged — the image must be complete when this returns, even under
  /// async_park); a cold session's chain moves VERBATIM (v3 base +
  /// deltas ship as-is, no engine is built and nothing inflates to v2
  /// text) unless options.migrate_format asks for v2 interchange text.
  /// A never-ran session exports an empty-base (fresh) image. Returns
  /// false for unknown ids, leaving `image` untouched.
  bool export_session(SessionId id, MigrationImage* image);

  /// The receiving half: registers `id` holding the image's chain as
  /// its cold state. Pure bookkeeping — no engine is built until first
  /// acquire(), so adopting N cold sessions costs what parking them
  /// did. Returns "" on success or a diagnostic (zero/duplicate id,
  /// invalid spec, bytes that are not snapshot material); full chain
  /// validation happens at restore like any other cold chain. Keeps
  /// create()'s id allocator ahead of adopted ids so the two can
  /// interleave.
  std::string adopt_session(SessionId id, const MigrationImage& image);

  std::uint64_t exports() const { return exports_; }
  std::uint64_t adopts() const { return adopts_; }

 private:
  /// A cold session's checkpoint chain: one full base image (v2 text or
  /// v3 binary, sniffed by the snapshot layer) plus v3 deltas in apply
  /// order. Empty base = never made hot.
  struct ColdChain {
    std::string base;
    std::vector<std::string> deltas;
    bool base_is_v3 = false;
    bool empty() const { return base.empty(); }
    std::size_t bytes() const {
      std::size_t n = base.size();
      for (const std::string& d : deltas) n += d.size();
      return n;
    }
    void clear() {
      base.clear();
      deltas.clear();
      base_is_v3 = false;
    }
  };

  struct Session {
    SessionSpec spec;
    qtaccel::PipelineConfig config;
    std::unique_ptr<env::GridWorld> env;
    std::unique_ptr<runtime::Engine> engine;  // non-null iff hot
    ColdChain cold;
    bool park_pending = false;  // engine alive but staged for parking
    std::unique_ptr<telemetry::PipelineTelemetry> sink;
    std::list<SessionId>::iterator lru_pos;  // valid iff hot
  };

  // Eviction attribution for qtserve_evictions_total{reason=...}: an
  // eviction lands under exactly ONE reason.
  //   kRequest — an explicit Evict request forced the session cold;
  //   kLru     — capacity pressure from an acquire making a never-ran
  //              session hot (fresh engine, nothing to restore);
  //   kRestore — capacity pressure from an acquire that was itself
  //              restoring a cold snapshot (previously this showed as
  //              "lru" while the same acquire also bumped restores,
  //              double-counting churn across the two reasons);
  //   kMigrate — export_session parking a hot session so its state can
  //              ship to another shard (not capacity pressure: excluded
  //              from lru_evictions()).
  enum class EvictReason { kRequest, kLru, kRestore, kMigrate };

  void make_cold(SessionId id, Session& s, EvictReason reason);
  void make_hot(SessionId id, Session& s, bool* restored);
  /// Whether this park should be a v3 delta appended to the chain (vs a
  /// full image), from dirty_row_count() byte estimates and the
  /// compaction bound. Control-thread only; serializes nothing.
  bool should_park_delta(const Session& s) const;
  /// Stores a serialized blob on the session, tears the engine down,
  /// and attributes counters/flight events.
  void commit_park(PendingPark& park);
  /// Cancels a staged park for `id` (close/re-acquire races), leaving
  /// the engine alive. No counters fire — nothing happened.
  void cancel_pending_park(SessionId id);
  /// Decodes the cold chain (base + deltas) into the freshly built
  /// engine; counts restore bytes.
  void restore_chain(Session& s);
  /// Materializes v2 text from a cold chain without an engine.
  std::string chain_as_v2_text(const Session& s) const;

  unsigned max_hot_;
  telemetry::MetricsRegistry* metrics_;
  telemetry::FlightRecorder* flight_;
  SessionManagerOptions options_;
  std::map<SessionId, Session> sessions_;
  std::list<SessionId> lru_;  // front = least recently used, hot only
  std::vector<PendingPark> pending_parks_;
  SessionId next_id_ = 1;
  std::uint64_t lru_evictions_ = 0;
  std::uint64_t restores_ = 0;
  std::uint64_t exports_ = 0;
  std::uint64_t adopts_ = 0;
  telemetry::Counter* lru_eviction_counter_ = nullptr;
  telemetry::Counter* request_eviction_counter_ = nullptr;
  telemetry::Counter* restore_eviction_counter_ = nullptr;
  telemetry::Counter* migrate_eviction_counter_ = nullptr;
  telemetry::Counter* restore_counter_ = nullptr;
  telemetry::Counter* migrate_out_counter_ = nullptr;
  telemetry::Counter* migrate_in_counter_ = nullptr;
  // Park/restore byte accounting by {format, kind}; deltas are always
  // v3, so three series per direction cover the space.
  telemetry::Counter* park_bytes_v2_full_ = nullptr;
  telemetry::Counter* park_bytes_v3_full_ = nullptr;
  telemetry::Counter* park_bytes_v3_delta_ = nullptr;
  telemetry::Counter* restore_bytes_v2_full_ = nullptr;
  telemetry::Counter* restore_bytes_v3_full_ = nullptr;
  telemetry::Counter* restore_bytes_v3_delta_ = nullptr;
  // Checkpoint serialization latency, observed at commit into the
  // server's qtserve_phase_us family under {phase=checkpoint}.
  telemetry::Histogram* checkpoint_phase_ = nullptr;
};

}  // namespace qta::serve

// SessionManager: an unbounded set of logical learner sessions mapped
// onto a bounded set of resident (hot) runtime backends.
//
// A session is a SessionSpec (the config fingerprint, fixed at create
// time) plus machine state. The state lives in exactly one of two
// places:
//   hot  — a live runtime::Engine on one of the manager's `max_hot`
//          resident slots;
//   cold — a QTACCEL-SNAPSHOT v2 text blob (or empty for a session that
//          has never run: restoring an empty blob is just a fresh
//          engine, which is bit-identical by construction).
//
// acquire() is the only path that makes a session hot; when all slots
// are taken it evicts the least-recently-used hot session through the
// snapshot layer. Because QTACCEL-SNAPSHOT v2 round trips are bit-exact
// (docs/runtime.md), an evict/restore cycle between run_samples calls
// is invisible to the session: tables, stats, RNG registers, and
// telemetry counters continue exactly as if the engine had stayed
// resident (proven by tests/serve_test.cpp and serve_churn_test.cpp).
//
// Per-session telemetry: when spec.telemetry is set, the session owns a
// PipelineTelemetry sink (labelled with the session id on the `pipe`
// label) that aggregates into the manager's MetricsRegistry. The sink
// outlives evictions — it is reattached on restore — so its counters
// span the session's whole life, not one residency.
//
// Threading: the manager itself is control-plane single-threaded (the
// server mutates it only between batches). Worker threads may touch the
// *engines* of distinct acquired sessions concurrently; they never call
// the manager. Because confinement — not locking — is the discipline
// here, this class deliberately owns NO mutex for clang's thread-safety
// analysis to find (common/annotations.h, docs/static_analysis.md): the
// qtlint mutex-annotation rule guarantees that if a lock is ever added
// to this file it must arrive annotated, and the analysis then checks
// every access. Until then the single-caller contract is the invariant;
// tests/serve_churn_test.cpp exercises it under the TSan preset.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "env/grid_world.h"
#include "runtime/engine.h"
#include "serve/protocol.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/pipeline_telemetry.h"

namespace qta::serve {

class SessionManager {
 public:
  /// `max_hot` bounds resident engines (>= 1). `metrics` may be null
  /// (no per-session telemetry, no eviction counters), as may `flight`
  /// (no eviction/restore flight-recorder events); both must outlive
  /// the manager.
  SessionManager(unsigned max_hot, telemetry::MetricsRegistry* metrics,
                 telemetry::FlightRecorder* flight = nullptr);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a session for `spec` (the caller has validated it) and
  /// returns its id. Cheap: no engine is built until first acquire().
  SessionId create(const SessionSpec& spec);

  /// Ensures the session is hot (restoring from its cold snapshot and
  /// evicting the LRU resident session if needed) and returns its
  /// engine; nullptr for an unknown/closed id. Touches the LRU: the
  /// `max_hot` most recently acquired sessions are never evicted by a
  /// later acquire, so a caller may hold up to `max_hot` engines at
  /// once (the server's batch bound). When `restored` is non-null it is
  /// set to whether THIS call rebuilt the engine from a non-empty cold
  /// snapshot (false for hot hits and never-ran sessions) — the
  /// hot/restore path label on the server's latency metrics.
  runtime::Engine* acquire(SessionId id, bool* restored = nullptr);

  /// Forces the session cold now (snapshot + engine teardown). Returns
  /// false for unknown ids; a no-op for already-cold sessions.
  bool evict(SessionId id);

  /// Destroys the session entirely. Returns false for unknown ids.
  bool close(SessionId id);

  bool exists(SessionId id) const { return sessions_.count(id) != 0; }
  bool is_hot(SessionId id) const;
  const SessionSpec* spec(SessionId id) const;

  /// The session's current machine state as QTACCEL-SNAPSHOT v2 text
  /// (serialized live for hot sessions, the stored blob for cold ones;
  /// "" for a fresh session that never ran). Unknown id aborts — gate
  /// on exists().
  std::string snapshot_text(SessionId id) const;

  std::size_t size() const { return sessions_.size(); }
  unsigned hot_count() const {
    return static_cast<unsigned>(lru_.size());
  }
  unsigned capacity() const { return max_hot_; }

  /// Capacity evictions performed since construction (the LRU tail
  /// being pushed out by acquire; explicit evict() is not counted).
  std::uint64_t lru_evictions() const { return lru_evictions_; }
  std::uint64_t restores() const { return restores_; }

  /// One session's state summary as a JSON object (the Introspect
  /// kSession payload; docs/serving.md documents the shape). Unknown
  /// id aborts — gate on exists().
  std::string summary_json(SessionId id) const;

 private:
  struct Session {
    SessionSpec spec;
    qtaccel::PipelineConfig config;
    std::unique_ptr<env::GridWorld> env;
    std::unique_ptr<runtime::Engine> engine;  // non-null iff hot
    std::string cold;  // snapshot text; "" = never made hot
    std::unique_ptr<telemetry::PipelineTelemetry> sink;
    std::list<SessionId>::iterator lru_pos;  // valid iff hot
  };

  // Eviction attribution for qtserve_evictions_total{reason=...}: an
  // eviction lands under exactly ONE reason.
  //   kRequest — an explicit Evict request forced the session cold;
  //   kLru     — capacity pressure from an acquire making a never-ran
  //              session hot (fresh engine, nothing to restore);
  //   kRestore — capacity pressure from an acquire that was itself
  //              restoring a cold snapshot (previously this showed as
  //              "lru" while the same acquire also bumped restores,
  //              double-counting churn across the two reasons).
  enum class EvictReason { kRequest, kLru, kRestore };

  void make_cold(SessionId id, Session& s, EvictReason reason);
  void make_hot(SessionId id, Session& s, bool* restored);

  unsigned max_hot_;
  telemetry::MetricsRegistry* metrics_;
  telemetry::FlightRecorder* flight_;
  std::map<SessionId, Session> sessions_;
  std::list<SessionId> lru_;  // front = least recently used, hot only
  SessionId next_id_ = 1;
  std::uint64_t lru_evictions_ = 0;
  std::uint64_t restores_ = 0;
  telemetry::Counter* lru_eviction_counter_ = nullptr;
  telemetry::Counter* request_eviction_counter_ = nullptr;
  telemetry::Counter* restore_eviction_counter_ = nullptr;
  telemetry::Counter* restore_counter_ = nullptr;
};

}  // namespace qta::serve

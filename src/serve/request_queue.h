// RequestQueue: admission-controlled, per-session FIFO request staging.
//
// Invariants the server's correctness rests on:
//   - Per-session FIFO: requests for one session leave the queue in the
//     order they were pushed (a Query submitted after a Step observes
//     the post-Step state).
//   - Round-robin fairness across sessions: pop_batch takes at most the
//     FRONT request of each ready session, visiting sessions in a
//     rotating ring, so one chatty session cannot starve the rest.
//   - Bounded depth: push refuses (returns false) once `max_depth`
//     requests are staged. The caller turns that into an explicit
//     kOverloaded reply — backpressure instead of unbounded buffering.
//
// Single-threaded: the server's control thread is the only caller, so
// the queue carries no lock — and therefore nothing for clang's
// thread-safety analysis to check. The qtlint mutex-annotation rule
// keeps that honest: a mutex added here later must come with QTA_*
// annotations (common/annotations.h), at which point the `thread-safety`
// preset starts verifying its discipline at compile time.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <vector>

#include "serve/protocol.h"

namespace qta::serve {

/// One staged request plus its completion bookkeeping. The *_us fields
/// are server-clock phase timestamps (serve/server.cpp stamps them as
/// the request moves through its lifecycle); they exist so finish() can
/// emit per-phase latency histograms and the qtscope span chain without
/// re-deriving anything. Zero means "phase not reached".
struct QueuedRequest {
  std::uint64_t ticket = 0;
  Request request;
  std::uint64_t submit_us = 0;      // control thread first saw the request
  std::uint64_t enqueue_us = 0;     // staged into the queue (admission end)
  std::uint64_t pop_us = 0;         // popped into a pump batch
  std::uint64_t acquire_us = 0;     // engine resident (end of acquire)
  std::uint64_t exec_start_us = 0;  // worker began engine work
  std::uint64_t exec_end_us = 0;    // worker finished engine work
  bool restored = false;            // acquire restored a cold snapshot
  bool executed = false;            // took the engine path (not inline)
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t max_depth) : max_depth_(max_depth) {}

  /// Stages `qr` behind its session's earlier requests. Returns false —
  /// staging nothing — when the queue is at max_depth.
  bool push(QueuedRequest qr);

  /// Pops the front request of up to `max_sessions` distinct sessions,
  /// round-robin. Sessions with remaining requests keep their ring
  /// position (they rotate to the back).
  std::vector<QueuedRequest> pop_batch(std::size_t max_sessions);

  std::size_t depth() const { return depth_; }
  bool empty() const { return depth_ == 0; }
  std::size_t max_depth() const { return max_depth_; }
  /// Sessions that currently have staged requests.
  std::size_t ready_sessions() const { return queues_.size(); }

 private:
  std::size_t max_depth_;
  std::size_t depth_ = 0;
  std::map<SessionId, std::deque<QueuedRequest>> queues_;
  std::list<SessionId> ring_;  // rotation order; one entry per ready session
};

}  // namespace qta::serve

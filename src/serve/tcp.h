// Thin POSIX TCP helpers shared by tools/qtserved and tools/qtclient.
//
// Failure reporting is by return value (invalid fd / false) plus an
// errno-derived message through `error` — network setup problems are
// operator errors, not programming errors, so nothing here aborts.
// Framing on the wire is serve/protocol.h's u32le length prefix;
// send_frame/recv_frame speak it over blocking sockets (the client
// side). qtserved's poll loop does its own nonblocking buffering and
// uses unframe() directly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qta::serve {

inline constexpr int kInvalidSocket = -1;

/// Listening socket on 127.0.0.1:`port` (SO_REUSEADDR, backlog 64).
/// `port` 0 lets the kernel pick; *bound_port reports the result.
int tcp_listen(std::uint16_t port, std::uint16_t* bound_port,
               std::string* error);

/// Blocking connect to `host`:`port`.
int tcp_connect(const std::string& host, std::uint16_t port,
                std::string* error);

/// Writes all of `data`, retrying short writes and EINTR.
bool send_all(int fd, std::string_view data, std::string* error);

/// frame(payload) + send_all.
bool send_frame(int fd, std::string_view payload, std::string* error);

/// Blocking read of one length-prefixed frame into *payload. False on
/// EOF, I/O error, or an oversized frame.
bool recv_frame(int fd, std::string* payload, std::string* error);

void tcp_close(int fd);

}  // namespace qta::serve

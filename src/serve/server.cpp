#include "serve/server.h"

#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "runtime/lane_coalescer.h"
#include "runtime/snapshot.h"

namespace qta::serve {

namespace {

Response error_response(const Request& req, std::string message) {
  Response resp;
  resp.status = Status::kError;
  resp.type = req.type;
  resp.session = req.session;
  resp.error = std::move(message);
  return resp;
}

bool is_session_scoped(RequestType type) {
  switch (type) {
    case RequestType::kStep:
    case RequestType::kQuery:
    case RequestType::kSnapshot:
    case RequestType::kEvict:
    case RequestType::kClose:
    case RequestType::kMigrateOut:
      // Queued like Evict/Close so a migration drains the session's
      // earlier staged requests first (FIFO quiesce).
      return true;
    default:
      return false;
  }
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      flight_(options.flight_recorder_capacity > 0
                  ? std::make_unique<telemetry::FlightRecorder>(
                        options.flight_recorder_capacity)
                  : nullptr),
      sessions_(options.max_hot, &metrics_, flight_.get(),
                SessionManagerOptions{options.async_park, options.park_format,
                                      options.max_delta_chain,
                                      options.migrate_format}),
      queue_(options.max_queue),
      pool_(options.workers == 0 ? 1 : options.workers),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.trace) {
    trace_ = std::make_unique<telemetry::TraceSession>();
    trace_->set_process_name(0, "qtserved requests");
    trace_->set_process_name(1, "qtserved lane groups");
  }
  for (unsigned t = 0; t <= static_cast<unsigned>(RequestType::kMigrateIn);
       ++t) {
    requests_by_type_[t] = &metrics_.counter(
        "qtserve_requests_total",
        {{"type", request_type_name(static_cast<RequestType>(t))}},
        "requests accepted, by request type");
  }
  overloads_ = &metrics_.counter(
      "qtserve_overload_total", {},
      "session requests refused by admission control");
  errors_ = &metrics_.counter("qtserve_errors_total", {},
                              "requests answered with an error status");
  sessions_created_ =
      &metrics_.counter("qtserve_sessions_created_total", {});
  sessions_closed_ = &metrics_.counter("qtserve_sessions_closed_total", {});
  sessions_live_ = &metrics_.gauge("qtserve_sessions_live", {},
                                   "logical sessions currently registered");
  sessions_hot_ = &metrics_.gauge("qtserve_sessions_hot", {},
                                  "sessions with a resident engine");
  queue_depth_ = &metrics_.histogram(
      "qtserve_queue_depth", {}, "staged requests, observed at admission");
  batch_size_ = &metrics_.histogram(
      "qtserve_batch_size", {}, "engine requests executed per pump batch");
}

Server::~Server() = default;

std::uint64_t Server::now_us() const {
  // When tracing, the trace session's clock IS the server clock, so
  // span timestamps stamped here and spans emitted inside the runtime
  // (lane-group attribution) share one epoch.
  if (trace_ != nullptr) return trace_->now_us();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Server::update_gauges() {
  sessions_live_->set(static_cast<double>(sessions_.size()));
  sessions_hot_->set(static_cast<double>(sessions_.hot_count()));
}

Ticket Server::submit(const Request& req) {
  const Ticket ticket = next_ticket_++;
  requests_by_type_[static_cast<unsigned>(req.type)]->inc();
  QueuedRequest qr;
  qr.ticket = ticket;
  qr.request = req;
  qr.submit_us = now_us();

  if (is_session_scoped(req.type)) {
    if (!sessions_.exists(req.session)) {
      finish(qr, error_response(req, "unknown session"));
      return ticket;
    }
    qr.enqueue_us = now_us();
    if (!queue_.push(qr)) {
      overloads_->inc();
      if (flight_ != nullptr) {
        telemetry::ServeEvent event;
        event.kind = telemetry::ServeEventKind::kOverload;
        event.session = req.session;
        event.label = request_type_name(req.type);
        event.value = queue_.depth();
        flight_->record(event);
      }
      Response resp;
      resp.status = Status::kOverloaded;
      resp.type = req.type;
      resp.session = req.session;
      resp.error = "admission queue full; retry";
      finish(qr, std::move(resp));
      return ticket;
    }
    queue_depth_->observe(queue_.depth());
    return ticket;
  }

  Response resp;
  resp.type = req.type;
  resp.session = req.session;
  switch (req.type) {
    case RequestType::kCreateSession: {
      const std::string problem = validate_spec(req.spec);
      if (!problem.empty()) {
        resp = error_response(req, problem);
        break;
      }
      resp.session = sessions_.create(req.spec);
      sessions_created_->inc();
      if (flight_ != nullptr) {
        telemetry::ServeEvent event;
        event.kind = telemetry::ServeEventKind::kSessionCreated;
        event.session = resp.session;
        flight_->record(event);
      }
      break;
    }
    case RequestType::kStats:
      resp.stats_json = metrics_.json_text();
      resp.stats_prometheus = metrics_.prometheus_text();
      break;
    case RequestType::kIntrospect:
      resp = introspect(req);
      break;
    case RequestType::kMigrateIn: {
      std::string image_error;
      std::optional<MigrationImage> image =
          decode_migration_image(req.payload, &image_error);
      if (!image.has_value()) {
        resp = error_response(req, "migrate_in: " + image_error);
        break;
      }
      const std::string problem =
          sessions_.adopt_session(req.session, *image);
      if (!problem.empty()) resp = error_response(req, problem);
      break;
    }
    case RequestType::kPing:
      break;
    case RequestType::kShutdown:
      shutdown_ = true;
      break;
    default:
      resp = error_response(req, "request type cannot be submitted");
      break;
  }
  update_gauges();
  finish(qr, std::move(resp));
  return ticket;
}

Response Server::introspect(const Request& req) {
  Response resp;
  resp.type = req.type;
  resp.session = req.session;
  switch (req.probe) {
    case IntrospectProbe::kMetrics:
      resp.introspect_json = metrics_.json_text();
      resp.stats_json = resp.introspect_json;
      resp.stats_prometheus = metrics_.prometheus_text();
      break;
    case IntrospectProbe::kFlightRecorder:
      if (flight_ == nullptr) {
        return error_response(req, "flight recorder disabled");
      }
      resp.introspect_json = flight_->json_text();
      break;
    case IntrospectProbe::kSession:
      if (!sessions_.exists(req.session)) {
        return error_response(req, "unknown session");
      }
      resp.introspect_json = sessions_.summary_json(req.session);
      break;
    case IntrospectProbe::kShards:
      // Topology lives on the router; a worker knows only itself.
      return error_response(req, "shards probe: this is a worker, not a router");
  }
  return resp;
}

Response Server::execute(const Request& req, runtime::Engine& engine) {
  Response resp;
  resp.type = req.type;
  resp.session = req.session;
  switch (req.type) {
    case RequestType::kStep: {
      // run_samples takes an absolute sample target; Step(n) advances
      // the session BY n. The pipeline may overshoot by its depth when
      // draining, so the base is whatever the session retired so far.
      engine.run_samples(engine.stats().samples + req.steps);
      const qtaccel::PipelineStats& stats = engine.stats();
      resp.samples = stats.samples;
      resp.episodes = stats.episodes;
      resp.cycles = stats.cycles;
      break;
    }
    case RequestType::kQuery: {
      const env::Environment& env = engine.environment();
      if (req.state >= env.num_states()) {
        return error_response(req, "state id out of range");
      }
      const ActionId actions = env.num_actions();
      resp.q_row.reserve(actions);
      ActionId best = 0;
      fixed::raw_t best_raw = engine.q_raw(req.state, 0);
      for (ActionId a = 0; a < actions; ++a) {
        resp.q_row.push_back(engine.q_value(req.state, a));
        const fixed::raw_t raw = engine.q_raw(req.state, a);
        if (raw > best_raw) {  // ties keep the lowest action id
          best_raw = raw;
          best = a;
        }
      }
      resp.action = best;
      const qtaccel::PipelineStats& stats = engine.stats();
      resp.samples = stats.samples;
      resp.episodes = stats.episodes;
      resp.cycles = stats.cycles;
      break;
    }
    case RequestType::kSnapshot: {
      std::ostringstream os;
      runtime::save_snapshot(engine, os);
      resp.snapshot = std::move(os).str();
      break;
    }
    default:
      return error_response(req, "request type is not engine work");
  }
  return resp;
}

bool Server::pump() {
  std::vector<QueuedRequest> popped = queue_.pop_batch(options_.max_hot);

  // Split control work (inline) from engine work (pool). Evict/Close
  // mutate the LRU and session map, so they run here on the control
  // thread; the engine requests are acquired hot afterwards — at most
  // max_hot of them, so acquiring one cannot evict another batch member.
  struct Item {
    QueuedRequest qr;
    runtime::Engine* engine;
    Response resp;
  };
  std::vector<Item> batch;
  batch.reserve(popped.size());
  for (QueuedRequest& qr : popped) {
    qr.pop_us = now_us();
    const Request& req = qr.request;
    if (!sessions_.exists(req.session)) {
      // Closed while staged (Close is FIFO like everything else).
      finish(qr, error_response(req, "unknown session"));
      continue;
    }
    if (req.type == RequestType::kMigrateOut) {
      // Runs on the control thread like Evict/Close: export_session
      // parks inline (never staged) so the image in this reply is the
      // session's final state on this worker.
      MigrationImage image;
      sessions_.export_session(req.session, &image);
      Response resp;
      resp.type = req.type;
      resp.session = req.session;
      resp.snapshot = encode_migration_image(image);
      finish(qr, std::move(resp));
      continue;
    }
    if (req.type == RequestType::kEvict) {
      sessions_.evict(req.session);
      Response resp;
      resp.type = req.type;
      resp.session = req.session;
      finish(qr, std::move(resp));
      continue;
    }
    if (req.type == RequestType::kClose) {
      sessions_.close(req.session);
      sessions_closed_->inc();
      if (flight_ != nullptr) {
        telemetry::ServeEvent event;
        event.kind = telemetry::ServeEventKind::kSessionClosed;
        event.session = req.session;
        flight_->record(event);
      }
      Response resp;
      resp.type = req.type;
      resp.session = req.session;
      finish(qr, std::move(resp));
      continue;
    }
    bool restored = false;
    runtime::Engine* engine = sessions_.acquire(req.session, &restored);
    QTA_CHECK_MSG(engine != nullptr, "acquire failed for a live session");
    qr.restored = restored;
    qr.executed = true;
    qr.acquire_us = now_us();
    batch.push_back(Item{std::move(qr), engine, Response{}});
  }

  batch_size_->observe(batch.size());
  // Evictions above (explicit Evict requests and acquire-forced LRU
  // victims) may have staged PendingParks instead of serializing
  // inline: those serialize on the pool as extra work items alongside
  // the batch, then commit back on this thread in the same pump —
  // checkpoint rendering overlaps engine work and never outlives the
  // pump (victim engines stay alive, off the LRU, until commit).
  std::vector<SessionManager::PendingPark>& parks =
      sessions_.pending_parks();
  if (!batch.empty() || !parks.empty()) {
    // Partition the batch into execution units. A unit is either one
    // session's request, or a lane group: Step requests whose sessions
    // run the lanes backend with compatible configs coalesce, so the
    // whole group advances in one LaneEngine round loop instead of one
    // engine at a time (greedy first-fit — at most max_hot members, so
    // the scan is tiny).
    struct Unit {
      std::vector<std::size_t> members;  // indices into batch
    };
    std::vector<Unit> units;
    units.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      bool grouped = false;
      if (options_.coalesce_lanes &&
          batch[i].qr.request.type == RequestType::kStep &&
          runtime::is_lane_backend(*batch[i].engine)) {
        for (Unit& u : units) {
          const Item& head = batch[u.members.front()];
          if (head.qr.request.type == RequestType::kStep &&
              runtime::can_coalesce(*head.engine, *batch[i].engine)) {
            u.members.push_back(i);
            grouped = true;
            break;
          }
        }
      }
      if (!grouped) units.push_back(Unit{{i}});
    }

    const std::size_t unit_count = units.size();
    pool_.parallel_for(
        unit_count + parks.size(),
        [&units, &batch, &parks, unit_count, this](std::size_t u) {
      // Workers touch only their own unit: its sessions' engines, its
      // response slots (exec timestamps included), or its own staged
      // park. All shared state waits for the control thread.
      if (u >= unit_count) {
        SessionManager::serialize_park(parks[u - unit_count]);
        return;
      }
      const Unit& unit = units[u];
      const std::uint64_t exec_start = now_us();
      if (unit.members.size() == 1) {
        Item& item = batch[unit.members.front()];
        item.qr.exec_start_us = exec_start;
        item.resp = execute(item.qr.request, *item.engine);
        item.qr.exec_end_us = now_us();
        return;
      }
      std::vector<runtime::Engine*> engines;
      std::vector<std::uint64_t> steps;
      engines.reserve(unit.members.size());
      steps.reserve(unit.members.size());
      for (const std::size_t idx : unit.members) {
        engines.push_back(batch[idx].engine);
        steps.push_back(batch[idx].qr.request.steps);
      }
      {
        runtime::LaneGroupRunner runner(std::move(engines));
        if (trace_ != nullptr) {
          // Lane-group spans land on their own track (pid 1) keyed by
          // the head session, so a coalesced batch shows up as one
          // span the member request spans overlap with.
          runner.set_trace(trace_.get(), /*pid=*/1,
                           /*tid=*/static_cast<std::uint32_t>(
                               batch[unit.members.front()]
                                   .qr.request.session));
        }
        runner.run_steps(steps);
      }  // runner destruction hands each engine its state back
      const std::uint64_t exec_end = now_us();
      for (const std::size_t idx : unit.members) {
        Item& item = batch[idx];
        item.qr.exec_start_us = exec_start;
        item.qr.exec_end_us = exec_end;
        Response resp;
        resp.type = item.qr.request.type;
        resp.session = item.qr.request.session;
        const qtaccel::PipelineStats& stats = item.engine->stats();
        resp.samples = stats.samples;
        resp.episodes = stats.episodes;
        resp.cycles = stats.cycles;
        item.resp = std::move(resp);
      }
    });
    // Control thread again: store the serialized blobs, tear the parked
    // engines down, and attribute eviction counters/flight events.
    sessions_.commit_parks();
    for (Item& item : batch) {
      finish(item.qr, std::move(item.resp));
    }
  }
  update_gauges();
  return !queue_.empty();
}

void Server::drain() {
  while (pump()) {
  }
}

void Server::finish(const QueuedRequest& qr, Response resp) {
  if (resp.status == Status::kError) errors_->inc();
  const std::uint64_t end = now_us();
  const std::uint64_t latency = end - qr.submit_us;

  // One latency series per (type, path): engine requests split by
  // whether their acquire hit a resident engine or restored a snapshot;
  // everything answered without an engine (control plane, Evict/Close,
  // rejections) is "inline".
  const char* path =
      qr.executed ? (qr.restored ? "restore" : "hot") : "inline";
  metrics_
      .histogram("qtserve_request_latency_us",
                 {{"path", path},
                  {"type", request_type_name(qr.request.type)}},
                 "request latency, admission to completion (us), by "
                 "request type and hot/restore/inline path")
      .observe(latency);
  if (qr.executed) {
    metrics_
        .histogram("qtserve_phase_us", {{"phase", "queue_wait"}},
                   "engine-request phase durations (us): queue_wait, "
                   "restore, execute, reply, plus checkpoint (park "
                   "serialization)")
        .observe(qr.pop_us - qr.enqueue_us);
    if (qr.restored) {
      metrics_.histogram("qtserve_phase_us", {{"phase", "restore"}})
          .observe(qr.acquire_us - qr.pop_us);
    }
    metrics_.histogram("qtserve_phase_us", {{"phase", "execute"}})
        .observe(qr.exec_end_us - qr.exec_start_us);
    metrics_.histogram("qtserve_phase_us", {{"phase", "reply"}})
        .observe(end - qr.exec_end_us);
  }

  if (flight_ != nullptr) {
    telemetry::ServeEvent event;
    event.session = qr.request.session;
    event.label = request_type_name(qr.request.type);
    switch (resp.status) {
      case Status::kOk:
        event.kind = telemetry::ServeEventKind::kRequest;
        event.value = latency;
        flight_->record(event);
        break;
      case Status::kError:
        event.kind = telemetry::ServeEventKind::kError;
        event.value = latency;
        flight_->record(event);
        break;
      case Status::kOverloaded:
        break;  // recorded at refusal, with the queue depth
    }
  }

  if (trace_ != nullptr) emit_spans(qr, end);
  resp.span_id = qr.ticket;
  done_.emplace(qr.ticket, std::move(resp));
}

void Server::emit_spans(const QueuedRequest& qr, std::uint64_t end_us) {
  // The request's track is its session (pid 0); the enclosing span is
  // the whole lifecycle, its children the phases. Every span carries
  // the ticket (and the client's trace context when present) as args,
  // which is what lets a test — or a human in Perfetto — reconnect the
  // chain.
  const std::uint32_t tid = static_cast<std::uint32_t>(qr.request.session);
  telemetry::TraceSession::SpanArgs args{{"ticket", qr.ticket}};
  if (qr.request.trace_id != 0) {
    args.emplace_back("trace_id", qr.request.trace_id);
    args.emplace_back("parent_span", qr.request.parent_span);
  }
  trace_->complete_event(0, tid, request_type_name(qr.request.type),
                         qr.submit_us, end_us - qr.submit_us, args);
  if (!qr.executed) return;
  trace_->complete_event(0, tid, "admission", qr.submit_us,
                         qr.enqueue_us - qr.submit_us, args);
  trace_->complete_event(0, tid, "queue", qr.enqueue_us,
                         qr.pop_us - qr.enqueue_us, args);
  trace_->complete_event(0, tid,
                         qr.restored ? "acquire (restore)" : "acquire (hot)",
                         qr.pop_us, qr.acquire_us - qr.pop_us, args);
  trace_->complete_event(0, tid, "execute", qr.exec_start_us,
                         qr.exec_end_us - qr.exec_start_us, args);
  trace_->complete_event(0, tid, "reply", qr.exec_end_us,
                         end_us - qr.exec_end_us, args);
}

Response Server::take(Ticket ticket) {
  auto it = done_.find(ticket);
  QTA_CHECK_MSG(it != done_.end(), "take(): ticket is not done");
  Response resp = std::move(it->second);
  done_.erase(it);
  return resp;
}

}  // namespace qta::serve

#include "serve/server.h"

#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "runtime/lane_coalescer.h"
#include "runtime/snapshot.h"

namespace qta::serve {

namespace {

Response error_response(const Request& req, std::string message) {
  Response resp;
  resp.status = Status::kError;
  resp.type = req.type;
  resp.session = req.session;
  resp.error = std::move(message);
  return resp;
}

bool is_session_scoped(RequestType type) {
  switch (type) {
    case RequestType::kStep:
    case RequestType::kQuery:
    case RequestType::kSnapshot:
    case RequestType::kEvict:
    case RequestType::kClose:
      return true;
    default:
      return false;
  }
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      sessions_(options.max_hot, &metrics_),
      queue_(options.max_queue),
      pool_(options.workers == 0 ? 1 : options.workers),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.trace) {
    trace_ = std::make_unique<telemetry::TraceSession>();
    trace_->set_process_name(0, "qtserved requests");
  }
  for (unsigned t = 0; t <= static_cast<unsigned>(RequestType::kShutdown);
       ++t) {
    requests_by_type_[t] = &metrics_.counter(
        "qtserve_requests_total",
        {{"type", request_type_name(static_cast<RequestType>(t))}},
        "requests accepted, by request type");
  }
  overloads_ = &metrics_.counter(
      "qtserve_overload_total", {},
      "session requests refused by admission control");
  errors_ = &metrics_.counter("qtserve_errors_total", {},
                              "requests answered with an error status");
  sessions_created_ =
      &metrics_.counter("qtserve_sessions_created_total", {});
  sessions_closed_ = &metrics_.counter("qtserve_sessions_closed_total", {});
  sessions_live_ = &metrics_.gauge("qtserve_sessions_live", {},
                                   "logical sessions currently registered");
  sessions_hot_ = &metrics_.gauge("qtserve_sessions_hot", {},
                                  "sessions with a resident engine");
  queue_depth_ = &metrics_.histogram(
      "qtserve_queue_depth", {}, "staged requests, observed at admission");
  batch_size_ = &metrics_.histogram(
      "qtserve_batch_size", {}, "engine requests executed per pump batch");
  latency_us_ = &metrics_.histogram(
      "qtserve_request_latency_us", {},
      "session request latency, admission to completion (us)");
}

Server::~Server() = default;

std::uint64_t Server::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Server::update_gauges() {
  sessions_live_->set(static_cast<double>(sessions_.size()));
  sessions_hot_->set(static_cast<double>(sessions_.hot_count()));
}

Ticket Server::submit(const Request& req) {
  const Ticket ticket = next_ticket_++;
  requests_by_type_[static_cast<unsigned>(req.type)]->inc();
  QueuedRequest qr{ticket, req, now_us()};

  if (is_session_scoped(req.type)) {
    if (!sessions_.exists(req.session)) {
      finish(qr, error_response(req, "unknown session"));
      return ticket;
    }
    if (!queue_.push(qr)) {
      overloads_->inc();
      Response resp;
      resp.status = Status::kOverloaded;
      resp.type = req.type;
      resp.session = req.session;
      resp.error = "admission queue full; retry";
      finish(qr, std::move(resp));
      return ticket;
    }
    queue_depth_->observe(queue_.depth());
    return ticket;
  }

  Response resp;
  resp.type = req.type;
  resp.session = req.session;
  switch (req.type) {
    case RequestType::kCreateSession: {
      const std::string problem = validate_spec(req.spec);
      if (!problem.empty()) {
        resp = error_response(req, problem);
        break;
      }
      resp.session = sessions_.create(req.spec);
      sessions_created_->inc();
      break;
    }
    case RequestType::kStats:
      resp.stats_json = metrics_.json_text();
      resp.stats_prometheus = metrics_.prometheus_text();
      break;
    case RequestType::kPing:
      break;
    case RequestType::kShutdown:
      shutdown_ = true;
      break;
    default:
      resp = error_response(req, "request type cannot be submitted");
      break;
  }
  update_gauges();
  finish(qr, std::move(resp));
  return ticket;
}

Response Server::execute(const Request& req, runtime::Engine& engine) {
  Response resp;
  resp.type = req.type;
  resp.session = req.session;
  switch (req.type) {
    case RequestType::kStep: {
      // run_samples takes an absolute sample target; Step(n) advances
      // the session BY n. The pipeline may overshoot by its depth when
      // draining, so the base is whatever the session retired so far.
      engine.run_samples(engine.stats().samples + req.steps);
      const qtaccel::PipelineStats& stats = engine.stats();
      resp.samples = stats.samples;
      resp.episodes = stats.episodes;
      resp.cycles = stats.cycles;
      break;
    }
    case RequestType::kQuery: {
      const env::Environment& env = engine.environment();
      if (req.state >= env.num_states()) {
        return error_response(req, "state id out of range");
      }
      const ActionId actions = env.num_actions();
      resp.q_row.reserve(actions);
      ActionId best = 0;
      fixed::raw_t best_raw = engine.q_raw(req.state, 0);
      for (ActionId a = 0; a < actions; ++a) {
        resp.q_row.push_back(engine.q_value(req.state, a));
        const fixed::raw_t raw = engine.q_raw(req.state, a);
        if (raw > best_raw) {  // ties keep the lowest action id
          best_raw = raw;
          best = a;
        }
      }
      resp.action = best;
      const qtaccel::PipelineStats& stats = engine.stats();
      resp.samples = stats.samples;
      resp.episodes = stats.episodes;
      resp.cycles = stats.cycles;
      break;
    }
    case RequestType::kSnapshot: {
      std::ostringstream os;
      runtime::save_snapshot(engine, os);
      resp.snapshot = std::move(os).str();
      break;
    }
    default:
      return error_response(req, "request type is not engine work");
  }
  return resp;
}

bool Server::pump() {
  std::vector<QueuedRequest> popped = queue_.pop_batch(options_.max_hot);

  // Split control work (inline) from engine work (pool). Evict/Close
  // mutate the LRU and session map, so they run here on the control
  // thread; the engine requests are acquired hot afterwards — at most
  // max_hot of them, so acquiring one cannot evict another batch member.
  struct Item {
    QueuedRequest qr;
    runtime::Engine* engine;
    Response resp;
  };
  std::vector<Item> batch;
  batch.reserve(popped.size());
  for (QueuedRequest& qr : popped) {
    const Request& req = qr.request;
    if (!sessions_.exists(req.session)) {
      // Closed while staged (Close is FIFO like everything else).
      finish(qr, error_response(req, "unknown session"));
      continue;
    }
    if (req.type == RequestType::kEvict) {
      sessions_.evict(req.session);
      Response resp;
      resp.type = req.type;
      resp.session = req.session;
      finish(qr, std::move(resp));
      continue;
    }
    if (req.type == RequestType::kClose) {
      sessions_.close(req.session);
      sessions_closed_->inc();
      Response resp;
      resp.type = req.type;
      resp.session = req.session;
      finish(qr, std::move(resp));
      continue;
    }
    runtime::Engine* engine = sessions_.acquire(req.session);
    QTA_CHECK_MSG(engine != nullptr, "acquire failed for a live session");
    batch.push_back(Item{std::move(qr), engine, Response{}});
  }

  batch_size_->observe(batch.size());
  if (!batch.empty()) {
    // Partition the batch into execution units. A unit is either one
    // session's request, or a lane group: Step requests whose sessions
    // run the lanes backend with compatible configs coalesce, so the
    // whole group advances in one LaneEngine round loop instead of one
    // engine at a time (greedy first-fit — at most max_hot members, so
    // the scan is tiny).
    struct Unit {
      std::vector<std::size_t> members;  // indices into batch
    };
    std::vector<Unit> units;
    units.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      bool grouped = false;
      if (options_.coalesce_lanes &&
          batch[i].qr.request.type == RequestType::kStep &&
          runtime::is_lane_backend(*batch[i].engine)) {
        for (Unit& u : units) {
          const Item& head = batch[u.members.front()];
          if (head.qr.request.type == RequestType::kStep &&
              runtime::can_coalesce(*head.engine, *batch[i].engine)) {
            u.members.push_back(i);
            grouped = true;
            break;
          }
        }
      }
      if (!grouped) units.push_back(Unit{{i}});
    }

    pool_.parallel_for(units.size(), [&units, &batch, this](std::size_t u) {
      // Workers touch only their own unit: its sessions' engines, its
      // response slots. All shared state waits for the control thread.
      const Unit& unit = units[u];
      if (unit.members.size() == 1) {
        Item& item = batch[unit.members.front()];
        item.resp = execute(item.qr.request, *item.engine);
        return;
      }
      std::vector<runtime::Engine*> engines;
      std::vector<std::uint64_t> steps;
      engines.reserve(unit.members.size());
      steps.reserve(unit.members.size());
      for (const std::size_t idx : unit.members) {
        engines.push_back(batch[idx].engine);
        steps.push_back(batch[idx].qr.request.steps);
      }
      {
        runtime::LaneGroupRunner runner(std::move(engines));
        runner.run_steps(steps);
      }  // runner destruction hands each engine its state back
      for (const std::size_t idx : unit.members) {
        Item& item = batch[idx];
        Response resp;
        resp.type = item.qr.request.type;
        resp.session = item.qr.request.session;
        const qtaccel::PipelineStats& stats = item.engine->stats();
        resp.samples = stats.samples;
        resp.episodes = stats.episodes;
        resp.cycles = stats.cycles;
        item.resp = std::move(resp);
      }
    });
    for (Item& item : batch) {
      finish(item.qr, std::move(item.resp));
    }
  }
  update_gauges();
  return !queue_.empty();
}

void Server::drain() {
  while (pump()) {
  }
}

void Server::finish(const QueuedRequest& qr, Response resp) {
  if (resp.status == Status::kError) errors_->inc();
  const std::uint64_t end = now_us();
  latency_us_->observe(end - qr.enqueue_us);
  if (trace_ != nullptr) {
    trace_->complete_event(
        /*pid=*/0, /*tid=*/static_cast<std::uint32_t>(qr.request.session),
        request_type_name(qr.request.type), qr.enqueue_us,
        end - qr.enqueue_us);
  }
  done_.emplace(qr.ticket, std::move(resp));
}

Response Server::take(Ticket ticket) {
  auto it = done_.find(ticket);
  QTA_CHECK_MSG(it != done_.end(), "take(): ticket is not done");
  Response resp = std::move(it->second);
  done_.erase(it);
  return resp;
}

}  // namespace qta::serve

// LoopbackTransport: the in-process client surface over a Server.
//
// Unit tests and benches talk to the serving layer through this class
// instead of sockets — but not by shortcutting the protocol: every post
// encodes the request and decodes it back, and every wait encodes the
// response and decodes it back, so the QTSERVE-WIRE codec sits on the
// loopback path exactly as it does on TCP. What loopback skips is only
// the socket I/O and framing.
//
// post() stages without executing; wait() pumps the server until the
// ticket completes. Posting several requests before the first wait is
// how tests build multi-session batches and deterministic overload:
// nothing executes until a wait (or an explicit pump) lets it.
#pragma once

#include <memory>

#include "serve/protocol.h"
#include "serve/server.h"

namespace qta::serve {

class LoopbackTransport {
 public:
  explicit LoopbackTransport(const ServerOptions& options);
  ~LoopbackTransport();

  /// Encodes `req`, decodes it (aborting on a codec defect — loopback
  /// frames are self-produced, not network input), and submits.
  Ticket post(const Request& req);

  /// Pumps the server until `ticket` is done and returns its response,
  /// round-tripped through the response codec.
  Response wait(Ticket ticket);

  Response call(const Request& req) { return wait(post(req)); }

  Server& server() { return *server_; }

 private:
  std::unique_ptr<Server> server_;
};

}  // namespace qta::serve

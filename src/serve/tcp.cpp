#include "serve/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

#include "serve/protocol.h"

namespace qta::serve {

namespace {

void set_errno_error(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
}

bool recv_exact(int fd, char* out, std::size_t n, std::string* error) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) {
      if (error != nullptr) *error = "connection closed by peer";
      return false;
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      set_errno_error(error, "recv");
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

int tcp_listen(std::uint16_t port, std::uint16_t* bound_port,
               std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_errno_error(error, "socket");
    return kInvalidSocket;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    set_errno_error(error, "bind");
    ::close(fd);
    return kInvalidSocket;
  }
  if (::listen(fd, 64) < 0) {
    set_errno_error(error, "listen");
    ::close(fd);
    return kInvalidSocket;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      set_errno_error(error, "getsockname");
      ::close(fd);
      return kInvalidSocket;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

int tcp_connect(const std::string& host, std::uint16_t port,
                std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_errno_error(error, "socket");
    return kInvalidSocket;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "inet_pton: bad IPv4 address " + host;
    ::close(fd);
    return kInvalidSocket;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    set_errno_error(error, "connect");
    ::close(fd);
    return kInvalidSocket;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, std::string_view data, std::string* error) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t r =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      set_errno_error(error, "send");
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

bool send_frame(int fd, std::string_view payload, std::string* error) {
  return send_all(fd, frame(payload), error);
}

bool recv_frame(int fd, std::string* payload, std::string* error) {
  char header[4];
  if (!recv_exact(fd, header, 4, error)) return false;
  std::uint32_t len = 0;
  std::memcpy(&len, header, 4);
  if constexpr (std::endian::native == std::endian::big) {
    len = ((len & 0xffu) << 24) | ((len & 0xff00u) << 8) |
          ((len >> 8) & 0xff00u) | (len >> 24);
  }
  if (len > kMaxFrameBytes) {
    if (error != nullptr) *error = "oversized frame from peer";
    return false;
  }
  payload->resize(len);
  return len == 0 || recv_exact(fd, payload->data(), len, error);
}

void tcp_close(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace qta::serve

#include "serve/session_manager.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/json_writer.h"
#include "runtime/snapshot.h"

namespace qta::serve {

SessionManager::SessionManager(unsigned max_hot,
                               telemetry::MetricsRegistry* metrics,
                               telemetry::FlightRecorder* flight,
                               const SessionManagerOptions& options)
    : max_hot_(max_hot),
      metrics_(metrics),
      flight_(flight),
      options_(options) {
  QTA_CHECK_MSG(max_hot_ >= 1, "SessionManager needs at least one hot slot");
  if (metrics_ != nullptr) {
    lru_eviction_counter_ = &metrics_->counter(
        "qtserve_evictions_total", {{"reason", "lru"}},
        "sessions forced cold, by what drove the eviction: capacity "
        "pressure from a fresh acquire (lru), capacity pressure from a "
        "restoring acquire (restore), or an explicit Evict (request)");
    request_eviction_counter_ = &metrics_->counter(
        "qtserve_evictions_total", {{"reason", "request"}});
    restore_eviction_counter_ = &metrics_->counter(
        "qtserve_evictions_total", {{"reason", "restore"}});
    migrate_eviction_counter_ = &metrics_->counter(
        "qtserve_evictions_total", {{"reason", "migrate"}});
    restore_counter_ = &metrics_->counter(
        "qtserve_restores_total", {},
        "sessions rebuilt from their cold snapshot");
    migrate_out_counter_ = &metrics_->counter(
        "qtserve_migrations_total", {{"direction", "out"}},
        "sessions shipped between shards, by direction: exported off "
        "this worker (out) vs adopted onto it (in)");
    migrate_in_counter_ = &metrics_->counter(
        "qtserve_migrations_total", {{"direction", "in"}});
    // Deltas are always v3 binary, so three {format, kind} series per
    // direction cover the space; registered eagerly so the series exist
    // (at zero) before any churn.
    park_bytes_v2_full_ = &metrics_->counter(
        "qtserve_park_bytes_total", {{"format", "v2"}, {"kind", "full"}},
        "bytes serialized parking sessions cold, by snapshot format and "
        "checkpoint kind (full image vs dirty-row delta)");
    park_bytes_v3_full_ = &metrics_->counter(
        "qtserve_park_bytes_total", {{"format", "v3"}, {"kind", "full"}});
    park_bytes_v3_delta_ = &metrics_->counter(
        "qtserve_park_bytes_total", {{"format", "v3"}, {"kind", "delta"}});
    restore_bytes_v2_full_ = &metrics_->counter(
        "qtserve_restore_bytes_total",
        {{"format", "v2"}, {"kind", "full"}},
        "bytes decoded restoring sessions from their cold checkpoint "
        "chains, by snapshot format and checkpoint kind");
    restore_bytes_v3_full_ = &metrics_->counter(
        "qtserve_restore_bytes_total",
        {{"format", "v3"}, {"kind", "full"}});
    restore_bytes_v3_delta_ = &metrics_->counter(
        "qtserve_restore_bytes_total",
        {{"format", "v3"}, {"kind", "delta"}});
    checkpoint_phase_ = &metrics_->histogram(
        "qtserve_phase_us", {{"phase", "checkpoint"}},
        "engine-request phase durations (us): queue_wait, restore, "
        "execute, reply, plus checkpoint (park serialization)");
  }
}

SessionManager::~SessionManager() = default;

SessionId SessionManager::create(const SessionSpec& spec) {
  const SessionId id = next_id_++;
  Session& s = sessions_[id];
  s.spec = spec;
  s.config = make_config(spec);
  env::GridWorldConfig gc;
  gc.width = spec.width;
  gc.height = spec.height;
  gc.num_actions = spec.actions;
  s.env = std::make_unique<env::GridWorld>(gc);
  if (spec.telemetry && metrics_ != nullptr) {
    s.sink = std::make_unique<telemetry::PipelineTelemetry>(
        qtaccel::make_run_labels(s.config, static_cast<unsigned>(id)),
        metrics_, /*trace=*/nullptr, /*pid=*/static_cast<std::uint32_t>(id));
  }
  return id;
}

runtime::Engine* SessionManager::acquire(SessionId id, bool* restored) {
  if (restored != nullptr) *restored = false;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  Session& s = it->second;
  if (s.park_pending) {
    // Re-acquired before the staged park serialized: the engine never
    // died, so cancel the park and treat this as a hot hit. Rejoining
    // the LRU may itself force a capacity eviction (the slot was
    // reusable while the park was staged).
    cancel_pending_park(id);
    while (lru_.size() >= max_hot_) {
      const SessionId victim = lru_.front();
      make_cold(victim, sessions_.at(victim), EvictReason::kLru);
    }
    lru_.push_back(id);
    s.lru_pos = std::prev(lru_.end());
  } else if (s.engine == nullptr) {
    make_hot(id, s, restored);
  } else {
    lru_.splice(lru_.end(), lru_, s.lru_pos);  // touch: move to MRU end
  }
  return s.engine.get();
}

bool SessionManager::evict(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = it->second;
  if (s.engine != nullptr && !s.park_pending) {
    make_cold(id, s, EvictReason::kRequest);
  }
  return true;  // already cold or already on its way cold: no-op
}

bool SessionManager::close(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = it->second;
  if (s.park_pending) {
    cancel_pending_park(id);  // staged parks left the LRU at enqueue
  } else if (s.engine != nullptr) {
    lru_.erase(s.lru_pos);
  }
  sessions_.erase(it);
  return true;
}

bool SessionManager::is_hot(SessionId id) const {
  auto it = sessions_.find(id);
  return it != sessions_.end() && it->second.engine != nullptr &&
         !it->second.park_pending;
}

const SessionSpec* SessionManager::spec(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second.spec;
}

std::string SessionManager::snapshot_text(SessionId id) {
  // Defensive: the server commits parks within the same pump, but a
  // direct caller could ask between enqueue and commit.
  if (!pending_parks_.empty()) flush_parks();
  auto it = sessions_.find(id);
  QTA_CHECK_MSG(it != sessions_.end(),
                "snapshot_text: unknown session id");
  const Session& s = it->second;
  if (s.engine != nullptr) {
    std::ostringstream os;
    runtime::save_snapshot(*s.engine, os);
    return std::move(os).str();
  }
  if (s.cold.empty()) return "";
  if (!s.cold.base_is_v3 && s.cold.deltas.empty()) {
    return s.cold.base;  // already v2 text: hand it back verbatim
  }
  return chain_as_v2_text(s);
}

bool SessionManager::should_park_delta(const Session& s) const {
  if (options_.park_format != ParkFormat::kV3Binary) return false;
  if (options_.max_delta_chain == 0) return false;
  if (s.cold.empty()) return false;  // nothing to delta against
  if (s.cold.deltas.size() >= options_.max_delta_chain) {
    return false;  // compaction: rebase the chain on a full image
  }
  const runtime::Engine& e = *s.engine;
  if (!e.caps().dirty_rows) return false;
  // Byte estimates from the v3 grammar (docs/runtime.md): a delta row
  // is its state id + the padded Q row(s) + the Qmax entry; a full
  // image is every table word. Headers/registers are common to both,
  // so comparing bodies is enough.
  const std::uint64_t states = e.environment().num_states();
  const std::uint64_t depth = e.address_map().depth();
  const std::uint64_t stride = std::uint64_t{1}
                               << e.address_map().action_bits;
  const std::uint64_t tables =
      s.config.algorithm == qtaccel::Algorithm::kDoubleQ ? 2 : 1;
  const std::uint64_t delta_bytes =
      e.dirty_row_count() * (8 + 8 * stride * tables + 16);
  const std::uint64_t full_bytes = 8 * depth * tables + 16 * states;
  return delta_bytes < full_bytes;
}

void SessionManager::make_cold(SessionId id, Session& s,
                               EvictReason reason) {
  PendingPark park;
  park.id = id;
  park.engine = s.engine.get();
  park.delta = should_park_delta(s);
  park.format = park.delta ? ParkFormat::kV3Binary : options_.park_format;
  park.reason = static_cast<int>(reason);
  // Leave the LRU now either way: a staged session must not be picked
  // as a victim again while its park is in flight.
  lru_.erase(s.lru_pos);
  if (options_.async_park) {
    s.park_pending = true;
    pending_parks_.push_back(std::move(park));
    return;
  }
  serialize_park(park);
  commit_park(park);
}

void SessionManager::serialize_park(PendingPark& park) {
  const auto t0 = std::chrono::steady_clock::now();
  const runtime::Engine& e = *park.engine;
  std::ostringstream os;
  if (park.delta) {
    runtime::write_snapshot_delta(os, e.config(), e.environment(),
                                  e.save_state());
  } else if (park.format == ParkFormat::kV3Binary) {
    runtime::save_snapshot_v3(e, os);
  } else {
    runtime::save_snapshot(e, os);
  }
  park.blob = std::move(os).str();
  park.serialize_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void SessionManager::commit_park(PendingPark& park) {
  Session& s = sessions_.at(park.id);
  const std::uint64_t blob_bytes = park.blob.size();
  telemetry::Counter* bytes_counter = nullptr;
  if (park.delta) {
    s.cold.deltas.push_back(std::move(park.blob));
    bytes_counter = park_bytes_v3_delta_;
  } else {
    s.cold.clear();
    s.cold.base = std::move(park.blob);
    s.cold.base_is_v3 = park.format == ParkFormat::kV3Binary;
    bytes_counter = s.cold.base_is_v3 ? park_bytes_v3_full_
                                      : park_bytes_v2_full_;
  }
  // Deliberately no sink flush: a flush would close the in-progress
  // stall burst and trace spans, making an evicted session's telemetry
  // diverge from an uninterrupted run. The sink survives and the
  // restored engine keeps feeding it. The dirty epoch needs no reset
  // here — the engine dies with the old epoch, and restore_chain opens
  // a fresh one at the chain tip.
  s.engine.reset();
  s.park_pending = false;
  if (bytes_counter != nullptr) bytes_counter->inc(blob_bytes);
  if (checkpoint_phase_ != nullptr) {
    checkpoint_phase_->observe(park.serialize_us);
  }
  const char* label = "request";
  switch (static_cast<EvictReason>(park.reason)) {
    case EvictReason::kRequest:
      if (request_eviction_counter_ != nullptr) {
        request_eviction_counter_->inc();
      }
      break;
    case EvictReason::kLru:
      ++lru_evictions_;
      label = "lru";
      if (lru_eviction_counter_ != nullptr) lru_eviction_counter_->inc();
      break;
    case EvictReason::kRestore:
      ++lru_evictions_;  // still a capacity eviction for the plain total
      label = "restore";
      if (restore_eviction_counter_ != nullptr) {
        restore_eviction_counter_->inc();
      }
      break;
    case EvictReason::kMigrate:
      // Not capacity pressure: the session is leaving this worker, so
      // it stays out of lru_evictions().
      label = "migrate";
      if (migrate_eviction_counter_ != nullptr) {
        migrate_eviction_counter_->inc();
      }
      break;
  }
  if (flight_ != nullptr) {
    telemetry::ServeEvent event;
    event.kind = telemetry::ServeEventKind::kEviction;
    event.session = park.id;
    event.label = label;
    event.value = blob_bytes;
    flight_->record(event);
  }
}

void SessionManager::commit_parks() {
  for (PendingPark& park : pending_parks_) commit_park(park);
  pending_parks_.clear();
}

void SessionManager::flush_parks() {
  for (PendingPark& park : pending_parks_) serialize_park(park);
  commit_parks();
}

void SessionManager::cancel_pending_park(SessionId id) {
  for (auto it = pending_parks_.begin(); it != pending_parks_.end(); ++it) {
    if (it->id == id) {
      pending_parks_.erase(it);
      break;
    }
  }
  sessions_.at(id).park_pending = false;
}

void SessionManager::restore_chain(Session& s) {
  if (!s.cold.base_is_v3 && s.cold.deltas.empty()) {
    // Pure-v2 cold: the exact historical restore path.
    std::istringstream is(s.cold.base);
    runtime::load_snapshot(*s.engine, is);
    if (restore_bytes_v2_full_ != nullptr) {
      restore_bytes_v2_full_->inc(s.cold.base.size());
    }
  } else {
    std::istringstream is(s.cold.base);
    qtaccel::MachineState ms =
        runtime::read_snapshot(is, s.config, *s.env);
    telemetry::Counter* base_counter = s.cold.base_is_v3
                                           ? restore_bytes_v3_full_
                                           : restore_bytes_v2_full_;
    if (base_counter != nullptr) base_counter->inc(s.cold.base.size());
    for (const std::string& delta : s.cold.deltas) {
      std::istringstream ds(delta);
      runtime::apply_snapshot_delta(ds, s.config, *s.env, ms);
      if (restore_bytes_v3_delta_ != nullptr) {
        restore_bytes_v3_delta_->inc(delta.size());
      }
    }
    s.engine->load_state(ms);
  }
  // Open a fresh dirty epoch at the restore point: the next delta must
  // cover exactly the rows touched since this chain tip.
  s.engine->reset_dirty_rows();
}

std::string SessionManager::chain_as_v2_text(const Session& s) const {
  std::istringstream is(s.cold.base);
  qtaccel::MachineState ms = runtime::read_snapshot(is, s.config, *s.env);
  for (const std::string& delta : s.cold.deltas) {
    std::istringstream ds(delta);
    runtime::apply_snapshot_delta(ds, s.config, *s.env, ms);
  }
  std::ostringstream os;
  runtime::write_snapshot(os, s.config, *s.env, ms);
  return std::move(os).str();
}

void SessionManager::make_hot(SessionId id, Session& s, bool* restored) {
  // Attribute the capacity evictions this acquire forces to what the
  // acquire is doing: restoring a cold session (churn) vs warming a
  // fresh one. One eviction, one reason.
  const bool restoring = !s.cold.empty();
  while (lru_.size() >= max_hot_) {
    const SessionId victim = lru_.front();
    make_cold(victim, sessions_.at(victim),
              restoring ? EvictReason::kRestore : EvictReason::kLru);
  }
  s.engine = std::make_unique<runtime::Engine>(*s.env, s.config);
  if (s.sink != nullptr) s.engine->set_telemetry(s.sink.get());
  if (restoring) {
    restore_chain(s);
    ++restores_;
    if (restore_counter_ != nullptr) restore_counter_->inc();
    if (restored != nullptr) *restored = true;
    if (flight_ != nullptr) {
      telemetry::ServeEvent event;
      event.kind = telemetry::ServeEventKind::kRestore;
      event.session = id;
      event.value = static_cast<std::uint64_t>(s.cold.bytes());
      flight_->record(event);
    }
  }
  lru_.push_back(id);
  s.lru_pos = std::prev(lru_.end());
}

bool SessionManager::export_session(SessionId id, MigrationImage* image) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = it->second;
  if (s.park_pending) {
    // A staged park holds the freshest state; finish it inline so the
    // image is complete (same outcome as if the batch had committed).
    for (auto pit = pending_parks_.begin(); pit != pending_parks_.end();
         ++pit) {
      if (pit->id == id) {
        serialize_park(*pit);
        commit_park(*pit);
        pending_parks_.erase(pit);
        break;
      }
    }
  } else if (s.engine != nullptr) {
    // Park inline under kMigrate even when async_park is on: the image
    // must carry the engine's current state when this returns.
    PendingPark park;
    park.id = id;
    park.engine = s.engine.get();
    park.delta = should_park_delta(s);
    park.format = park.delta ? ParkFormat::kV3Binary : options_.park_format;
    park.reason = static_cast<int>(EvictReason::kMigrate);
    lru_.erase(s.lru_pos);
    serialize_park(park);
    commit_park(park);
  }
  image->spec = s.spec;
  if (options_.migrate_format == ParkFormat::kV2Text && !s.cold.empty() &&
      (s.cold.base_is_v3 || !s.cold.deltas.empty())) {
    // Escape hatch: collapse the chain into interchange text (builds a
    // MachineState but still no engine).
    image->base = chain_as_v2_text(s);
    image->base_is_v3 = false;
    image->deltas.clear();
  } else {
    // The default: the chain moves verbatim, deltas and all.
    image->base = std::move(s.cold.base);
    image->deltas = std::move(s.cold.deltas);
    image->base_is_v3 = s.cold.base_is_v3;
  }
  const std::uint64_t image_bytes = [&] {
    std::uint64_t n = image->base.size();
    for (const std::string& d : image->deltas) n += d.size();
    return n;
  }();
  sessions_.erase(it);
  ++exports_;
  if (migrate_out_counter_ != nullptr) migrate_out_counter_->inc();
  if (flight_ != nullptr) {
    telemetry::ServeEvent event;
    event.kind = telemetry::ServeEventKind::kMigration;
    event.session = id;
    event.label = "out";
    event.value = image_bytes;
    flight_->record(event);
  }
  return true;
}

std::string SessionManager::adopt_session(SessionId id,
                                          const MigrationImage& image) {
  if (id == 0) return "migrate_in: session id must be nonzero";
  if (sessions_.count(id) != 0) {
    return "migrate_in: session id already exists on this worker";
  }
  const std::string spec_error = validate_spec(image.spec);
  if (!spec_error.empty()) return spec_error;
  // Cheap prolog sniff so obviously foreign bytes bounce as an error
  // reply instead of aborting at restore time; full structural
  // validation stays with the snapshot layer, same trust level as a
  // checkpoint file on disk.
  const auto looks_like_snapshot = [](const std::string& blob) {
    return blob.rfind(runtime::kSnapshotMagic, 0) == 0;
  };
  if (!image.base.empty() && !looks_like_snapshot(image.base)) {
    return "migrate_in: base is not QTACCEL-SNAPSHOT material";
  }
  if (image.base.empty() && !image.deltas.empty()) {
    return "migrate_in: deltas without a base image";
  }
  for (const std::string& delta : image.deltas) {
    if (!looks_like_snapshot(delta)) {
      return "migrate_in: delta is not QTACCEL-SNAPSHOT material";
    }
  }
  Session& s = sessions_[id];
  s.spec = image.spec;
  s.config = make_config(image.spec);
  env::GridWorldConfig gc;
  gc.width = image.spec.width;
  gc.height = image.spec.height;
  gc.num_actions = image.spec.actions;
  s.env = std::make_unique<env::GridWorld>(gc);
  if (image.spec.telemetry && metrics_ != nullptr) {
    s.sink = std::make_unique<telemetry::PipelineTelemetry>(
        qtaccel::make_run_labels(s.config, static_cast<unsigned>(id)),
        metrics_, /*trace=*/nullptr, /*pid=*/static_cast<std::uint32_t>(id));
  }
  s.cold.base = image.base;
  s.cold.deltas = image.deltas;
  s.cold.base_is_v3 = image.base_is_v3;
  if (id >= next_id_) next_id_ = id + 1;
  ++adopts_;
  if (migrate_in_counter_ != nullptr) migrate_in_counter_->inc();
  if (flight_ != nullptr) {
    telemetry::ServeEvent event;
    event.kind = telemetry::ServeEventKind::kMigration;
    event.session = id;
    event.label = "in";
    event.value = static_cast<std::uint64_t>(s.cold.bytes());
    flight_->record(event);
  }
  return "";
}

std::string SessionManager::summary_json(SessionId id) const {
  auto it = sessions_.find(id);
  QTA_CHECK_MSG(it != sessions_.end(), "summary_json: unknown session id");
  const Session& s = it->second;
  qta::JsonWriter json;
  json.begin_object();
  json.field("session", id);
  json.field("hot", s.engine != nullptr && !s.park_pending);
  json.field("has_snapshot", s.engine != nullptr || !s.cold.empty());
  json.field("cold_bytes", static_cast<std::uint64_t>(s.cold.bytes()));
  json.field("cold_deltas", static_cast<std::uint64_t>(s.cold.deltas.size()));
  json.field("telemetry", s.sink != nullptr);
  json.key("spec").begin_object();
  json.field("width", static_cast<std::uint64_t>(s.spec.width));
  json.field("height", static_cast<std::uint64_t>(s.spec.height));
  json.field("actions", static_cast<std::uint64_t>(s.spec.actions));
  json.field("algorithm", qtaccel::algorithm_name(s.spec.algorithm));
  json.field("backend", qtaccel::backend_name(s.spec.backend));
  json.field("alpha", s.spec.alpha);
  json.field("gamma", s.spec.gamma);
  json.field("epsilon", s.spec.epsilon);
  json.field("seed", s.spec.seed);
  json.field("max_episode_length", s.spec.max_episode_length);
  json.end_object();
  if (s.engine != nullptr) {
    const qtaccel::PipelineStats& stats = s.engine->stats();
    json.key("stats").begin_object();
    json.field("samples", stats.samples);
    json.field("episodes", stats.episodes);
    json.field("cycles", stats.cycles);
    json.end_object();
  }
  json.end_object();
  return json.str();
}

}  // namespace qta::serve

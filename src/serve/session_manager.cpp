#include "serve/session_manager.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/json_writer.h"
#include "runtime/snapshot.h"

namespace qta::serve {

SessionManager::SessionManager(unsigned max_hot,
                               telemetry::MetricsRegistry* metrics,
                               telemetry::FlightRecorder* flight)
    : max_hot_(max_hot), metrics_(metrics), flight_(flight) {
  QTA_CHECK_MSG(max_hot_ >= 1, "SessionManager needs at least one hot slot");
  if (metrics_ != nullptr) {
    lru_eviction_counter_ = &metrics_->counter(
        "qtserve_evictions_total", {{"reason", "lru"}},
        "sessions forced cold, by what drove the eviction: capacity "
        "pressure from a fresh acquire (lru), capacity pressure from a "
        "restoring acquire (restore), or an explicit Evict (request)");
    request_eviction_counter_ = &metrics_->counter(
        "qtserve_evictions_total", {{"reason", "request"}});
    restore_eviction_counter_ = &metrics_->counter(
        "qtserve_evictions_total", {{"reason", "restore"}});
    restore_counter_ = &metrics_->counter(
        "qtserve_restores_total", {},
        "sessions rebuilt from their cold snapshot");
  }
}

SessionManager::~SessionManager() = default;

SessionId SessionManager::create(const SessionSpec& spec) {
  const SessionId id = next_id_++;
  Session& s = sessions_[id];
  s.spec = spec;
  s.config = make_config(spec);
  env::GridWorldConfig gc;
  gc.width = spec.width;
  gc.height = spec.height;
  gc.num_actions = spec.actions;
  s.env = std::make_unique<env::GridWorld>(gc);
  if (spec.telemetry && metrics_ != nullptr) {
    s.sink = std::make_unique<telemetry::PipelineTelemetry>(
        qtaccel::make_run_labels(s.config, static_cast<unsigned>(id)),
        metrics_, /*trace=*/nullptr, /*pid=*/static_cast<std::uint32_t>(id));
  }
  return id;
}

runtime::Engine* SessionManager::acquire(SessionId id, bool* restored) {
  if (restored != nullptr) *restored = false;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  Session& s = it->second;
  if (s.engine == nullptr) {
    make_hot(id, s, restored);
  } else {
    lru_.splice(lru_.end(), lru_, s.lru_pos);  // touch: move to MRU end
  }
  return s.engine.get();
}

bool SessionManager::evict(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  if (it->second.engine != nullptr) {
    make_cold(id, it->second, EvictReason::kRequest);
  }
  return true;
}

bool SessionManager::close(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  if (it->second.engine != nullptr) lru_.erase(it->second.lru_pos);
  sessions_.erase(it);
  return true;
}

bool SessionManager::is_hot(SessionId id) const {
  auto it = sessions_.find(id);
  return it != sessions_.end() && it->second.engine != nullptr;
}

const SessionSpec* SessionManager::spec(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second.spec;
}

std::string SessionManager::snapshot_text(SessionId id) const {
  auto it = sessions_.find(id);
  QTA_CHECK_MSG(it != sessions_.end(),
                "snapshot_text: unknown session id");
  const Session& s = it->second;
  if (s.engine == nullptr) return s.cold;
  std::ostringstream os;
  runtime::save_snapshot(*s.engine, os);
  return std::move(os).str();
}

void SessionManager::make_cold(SessionId id, Session& s,
                               EvictReason reason) {
  std::ostringstream os;
  runtime::save_snapshot(*s.engine, os);
  s.cold = std::move(os).str();
  // Deliberately no sink flush: a flush would close the in-progress
  // stall burst and trace spans, making an evicted session's telemetry
  // diverge from an uninterrupted run. The sink survives and the
  // restored engine keeps feeding it.
  s.engine.reset();
  lru_.erase(s.lru_pos);
  const char* label = "request";
  switch (reason) {
    case EvictReason::kRequest:
      if (request_eviction_counter_ != nullptr) {
        request_eviction_counter_->inc();
      }
      break;
    case EvictReason::kLru:
      ++lru_evictions_;
      label = "lru";
      if (lru_eviction_counter_ != nullptr) lru_eviction_counter_->inc();
      break;
    case EvictReason::kRestore:
      ++lru_evictions_;  // still a capacity eviction for the plain total
      label = "restore";
      if (restore_eviction_counter_ != nullptr) {
        restore_eviction_counter_->inc();
      }
      break;
  }
  if (flight_ != nullptr) {
    telemetry::ServeEvent event;
    event.kind = telemetry::ServeEventKind::kEviction;
    event.session = id;
    event.label = label;
    event.value = static_cast<std::uint64_t>(s.cold.size());
    flight_->record(event);
  }
}

void SessionManager::make_hot(SessionId id, Session& s, bool* restored) {
  // Attribute the capacity evictions this acquire forces to what the
  // acquire is doing: restoring a cold session (churn) vs warming a
  // fresh one. One eviction, one reason.
  const bool restoring = !s.cold.empty();
  while (lru_.size() >= max_hot_) {
    const SessionId victim = lru_.front();
    make_cold(victim, sessions_.at(victim),
              restoring ? EvictReason::kRestore : EvictReason::kLru);
  }
  s.engine = std::make_unique<runtime::Engine>(*s.env, s.config);
  if (s.sink != nullptr) s.engine->set_telemetry(s.sink.get());
  if (restoring) {
    std::istringstream is(s.cold);
    runtime::load_snapshot(*s.engine, is);
    ++restores_;
    if (restore_counter_ != nullptr) restore_counter_->inc();
    if (restored != nullptr) *restored = true;
    if (flight_ != nullptr) {
      telemetry::ServeEvent event;
      event.kind = telemetry::ServeEventKind::kRestore;
      event.session = id;
      event.value = static_cast<std::uint64_t>(s.cold.size());
      flight_->record(event);
    }
  }
  lru_.push_back(id);
  s.lru_pos = std::prev(lru_.end());
}

std::string SessionManager::summary_json(SessionId id) const {
  auto it = sessions_.find(id);
  QTA_CHECK_MSG(it != sessions_.end(), "summary_json: unknown session id");
  const Session& s = it->second;
  qta::JsonWriter json;
  json.begin_object();
  json.field("session", id);
  json.field("hot", s.engine != nullptr);
  json.field("has_snapshot", s.engine != nullptr || !s.cold.empty());
  json.field("cold_bytes", static_cast<std::uint64_t>(s.cold.size()));
  json.field("telemetry", s.sink != nullptr);
  json.key("spec").begin_object();
  json.field("width", static_cast<std::uint64_t>(s.spec.width));
  json.field("height", static_cast<std::uint64_t>(s.spec.height));
  json.field("actions", static_cast<std::uint64_t>(s.spec.actions));
  json.field("algorithm", qtaccel::algorithm_name(s.spec.algorithm));
  json.field("backend", qtaccel::backend_name(s.spec.backend));
  json.field("alpha", s.spec.alpha);
  json.field("gamma", s.spec.gamma);
  json.field("epsilon", s.spec.epsilon);
  json.field("seed", s.spec.seed);
  json.field("max_episode_length", s.spec.max_episode_length);
  json.end_object();
  if (s.engine != nullptr) {
    const qtaccel::PipelineStats& stats = s.engine->stats();
    json.key("stats").begin_object();
    json.field("samples", stats.samples);
    json.field("episodes", stats.episodes);
    json.field("cycles", stats.cycles);
    json.end_object();
  }
  json.end_object();
  return json.str();
}

}  // namespace qta::serve

#include "serve/session_manager.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "runtime/snapshot.h"

namespace qta::serve {

SessionManager::SessionManager(unsigned max_hot,
                               telemetry::MetricsRegistry* metrics)
    : max_hot_(max_hot), metrics_(metrics) {
  QTA_CHECK_MSG(max_hot_ >= 1, "SessionManager needs at least one hot slot");
  if (metrics_ != nullptr) {
    lru_eviction_counter_ = &metrics_->counter(
        "qtserve_evictions_total", {{"reason", "lru"}},
        "sessions forced cold (by LRU pressure or an explicit request)");
    request_eviction_counter_ = &metrics_->counter(
        "qtserve_evictions_total", {{"reason", "request"}});
    restore_counter_ = &metrics_->counter(
        "qtserve_restores_total", {},
        "sessions rebuilt from their cold snapshot");
  }
}

SessionManager::~SessionManager() = default;

SessionId SessionManager::create(const SessionSpec& spec) {
  const SessionId id = next_id_++;
  Session& s = sessions_[id];
  s.spec = spec;
  s.config = make_config(spec);
  env::GridWorldConfig gc;
  gc.width = spec.width;
  gc.height = spec.height;
  gc.num_actions = spec.actions;
  s.env = std::make_unique<env::GridWorld>(gc);
  if (spec.telemetry && metrics_ != nullptr) {
    s.sink = std::make_unique<telemetry::PipelineTelemetry>(
        qtaccel::make_run_labels(s.config, static_cast<unsigned>(id)),
        metrics_, /*trace=*/nullptr, /*pid=*/static_cast<std::uint32_t>(id));
  }
  return id;
}

runtime::Engine* SessionManager::acquire(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  Session& s = it->second;
  if (s.engine == nullptr) {
    make_hot(id, s);
  } else {
    lru_.splice(lru_.end(), lru_, s.lru_pos);  // touch: move to MRU end
  }
  return s.engine.get();
}

bool SessionManager::evict(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  if (it->second.engine != nullptr) {
    make_cold(id, it->second, /*count_as_lru=*/false);
  }
  return true;
}

bool SessionManager::close(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  if (it->second.engine != nullptr) lru_.erase(it->second.lru_pos);
  sessions_.erase(it);
  return true;
}

bool SessionManager::is_hot(SessionId id) const {
  auto it = sessions_.find(id);
  return it != sessions_.end() && it->second.engine != nullptr;
}

const SessionSpec* SessionManager::spec(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second.spec;
}

std::string SessionManager::snapshot_text(SessionId id) const {
  auto it = sessions_.find(id);
  QTA_CHECK_MSG(it != sessions_.end(),
                "snapshot_text: unknown session id");
  const Session& s = it->second;
  if (s.engine == nullptr) return s.cold;
  std::ostringstream os;
  runtime::save_snapshot(*s.engine, os);
  return std::move(os).str();
}

void SessionManager::make_cold(SessionId id, Session& s, bool count_as_lru) {
  std::ostringstream os;
  runtime::save_snapshot(*s.engine, os);
  s.cold = std::move(os).str();
  // Deliberately no sink flush: a flush would close the in-progress
  // stall burst and trace spans, making an evicted session's telemetry
  // diverge from an uninterrupted run. The sink survives and the
  // restored engine keeps feeding it.
  s.engine.reset();
  lru_.erase(s.lru_pos);
  if (count_as_lru) {
    ++lru_evictions_;
    if (lru_eviction_counter_ != nullptr) lru_eviction_counter_->inc();
  } else if (request_eviction_counter_ != nullptr) {
    request_eviction_counter_->inc();
  }
  (void)id;
}

void SessionManager::make_hot(SessionId id, Session& s) {
  while (lru_.size() >= max_hot_) {
    const SessionId victim = lru_.front();
    make_cold(victim, sessions_.at(victim), /*count_as_lru=*/true);
  }
  s.engine = std::make_unique<runtime::Engine>(*s.env, s.config);
  if (s.sink != nullptr) s.engine->set_telemetry(s.sink.get());
  if (!s.cold.empty()) {
    std::istringstream is(s.cold);
    runtime::load_snapshot(*s.engine, is);
    ++restores_;
    if (restore_counter_ != nullptr) restore_counter_->inc();
  }
  lru_.push_back(id);
  s.lru_pos = std::prev(lru_.end());
}

}  // namespace qta::serve

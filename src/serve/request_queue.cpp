#include "serve/request_queue.h"

#include <algorithm>
#include <utility>

namespace qta::serve {

bool RequestQueue::push(QueuedRequest qr) {
  if (depth_ >= max_depth_) return false;
  const SessionId id = qr.request.session;
  auto [it, inserted] = queues_.try_emplace(id);
  if (inserted) ring_.push_back(id);
  it->second.push_back(std::move(qr));
  ++depth_;
  return true;
}

std::vector<QueuedRequest> RequestQueue::pop_batch(std::size_t max_sessions) {
  std::vector<QueuedRequest> batch;
  const std::size_t take = std::min(max_sessions, ring_.size());
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    const SessionId id = ring_.front();
    ring_.pop_front();
    auto it = queues_.find(id);
    batch.push_back(std::move(it->second.front()));
    it->second.pop_front();
    --depth_;
    if (it->second.empty()) {
      queues_.erase(it);
    } else {
      ring_.push_back(id);  // still ready: rotate to the back
    }
  }
  return batch;
}

}  // namespace qta::serve

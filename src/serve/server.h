// Server: the qtserved core, transport-agnostic.
//
// Execution model (docs/serving.md has the full walkthrough):
//   - submit() runs on the control thread. Control-plane requests
//     (CreateSession, Stats, Ping, Shutdown) and rejections (unknown
//     session, admission-control overload) complete immediately; the
//     session-scoped rest (Step, Query, Snapshot, Evict, Close) stage
//     in the RequestQueue behind the same session's earlier requests.
//   - pump() executes one batch: it pops at most one staged request per
//     session (round-robin, capped at the hot-slot count so no batch
//     member can be evicted mid-batch), executes Evict/Close inline,
//     acquires engines for the rest — restoring cold sessions through
//     the snapshot layer — and runs them on the ThreadPool. Step
//     requests for lane-backed sessions with compatible configs are
//     coalesced into one LaneEngine group per batch (one pool item
//     advancing all of them in the lane round loop; see
//     runtime/lane_coalescer.h and ServerOptions::coalesce_lanes);
//     everything else runs one worker item per session. Workers only
//     touch their own unit's engines and response slots; every
//     queue/LRU/metrics-map mutation stays on the control thread.
//   - Responses are retrieved by ticket: done(t), then take(t).
//
// Lock discipline: the server itself holds no mutex — all shared-state
// mutation is confined to the control thread, and cross-thread work
// only flows through ThreadPool::parallel_for (whose internal locking
// is verified by clang's thread-safety analysis; common/annotations.h).
// Workers read/write disjoint batch slots, which TSan checks in the
// serve_churn tests. The qtlint mutex-annotation rule ensures any
// future lock in this layer arrives annotated and analysis-checked.
//
// Backpressure: a session request that arrives while RequestQueue holds
// `max_queue` staged requests is answered kOverloaded immediately.
// Nothing is buffered beyond that bound, so server memory stays bounded
// no matter how fast clients push.
//
// Telemetry (metric catalog in docs/serving.md): request/overload/error
// counters, queue-depth / batch-size log2 histograms, request latency
// split by type and hot/restore/inline path, per-phase durations
// (qtserve_phase_us), live/hot session gauges, plus the
// SessionManager's reason-labelled eviction/restore counters — all in
// the server-owned MetricsRegistry, which per-session engine sinks
// share. With ServerOptions.trace set, every completed request lands as
// a Perfetto span chain (admission → queue → acquire → execute → reply
// on the session's track, lane-group spans on their own track), and
// unless flight_recorder_capacity is 0 the last N request / eviction /
// overload events stay dumpable through the flight recorder
// (telemetry/flight_recorder.h) — both observation-only: the
// observability-off differential in tests/serve_test.cpp pins that
// neither changes a single engine byte.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "serve/protocol.h"
#include "serve/request_queue.h"
#include "serve/session_manager.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qta::serve {

struct ServerOptions {
  /// Resident engines (SessionManager LRU capacity); also the batch cap.
  unsigned max_hot = 8;
  /// ThreadPool workers executing a batch.
  unsigned workers = 4;
  /// Admission bound on staged session requests.
  std::size_t max_queue = 64;
  /// Record Perfetto spans: one enclosing span per completed request
  /// plus its lifecycle children (admission, queue, acquire, execute,
  /// reply) on the session's track.
  bool trace = false;
  /// Flight-recorder ring capacity (telemetry/flight_recorder.h); 0
  /// disables it entirely. The default keeps the last 256 request /
  /// eviction / overload events dumpable via Introspect or the HTTP
  /// /flightrecorder route at a few stores per request.
  std::size_t flight_recorder_capacity = 256;
  /// Coalesce compatible lane-backed Step requests within one pump
  /// batch into a single LaneEngine group (runtime/lane_coalescer.h):
  /// the batch advances in one lane-parallel round loop instead of one
  /// engine per worker. Per-session results are bit-identical either
  /// way; this only changes how the host executes the batch.
  bool coalesce_lanes = true;
  /// Defer park serialization to the worker pool: an eviction stages a
  /// PendingPark which pump() serializes alongside the batch's engine
  /// work and commits on the control thread in the same pump, so the
  /// control thread never blocks rendering checkpoint bytes
  /// (serve/session_manager.h has the staging contract). false =
  /// serialize inline at eviction, the historical behavior.
  bool async_park = true;
  /// Cold-checkpoint format for full park images (deltas are always v3
  /// binary). v2 text keeps cold blobs human-readable at a size cost.
  ParkFormat park_format = ParkFormat::kV3Binary;
  /// Cold-chain compaction bound: force a full checkpoint once a chain
  /// holds this many deltas. 0 = full images only.
  unsigned max_delta_chain = 4;
  /// Base format for MigrateOut images (the --migrate-format escape
  /// hatch). The v3 default ships a cold session's chain verbatim —
  /// deltas and all, nothing inflates to v2 text; v2 materializes
  /// interchange text (serve/session_manager.h).
  ParkFormat migrate_format = ParkFormat::kV3Binary;
};

using Ticket = std::uint64_t;

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accepts one request and returns its ticket. The response may be
  /// ready immediately (control plane / rejection) or after pump()s.
  Ticket submit(const Request& req);

  bool done(Ticket ticket) const { return done_.count(ticket) != 0; }
  /// Takes a completed response; aborts on unknown/unfinished tickets.
  Response take(Ticket ticket);

  /// Executes one batch of staged requests. Returns true while staged
  /// work remains.
  bool pump();
  /// pump() until the queue is empty.
  void drain();

  bool pending() const { return !queue_.empty(); }
  /// Set once a Shutdown request was accepted; the transport frontend
  /// is expected to stop accepting, drain(), and exit.
  bool shutdown_requested() const { return shutdown_; }

  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::TraceSession* trace() const { return trace_.get(); }
  /// The flight recorder, or null when disabled (capacity 0).
  telemetry::FlightRecorder* flight() { return flight_.get(); }
  SessionManager& sessions() { return sessions_; }
  const ServerOptions& options() const { return options_; }

 private:
  void finish(const QueuedRequest& qr, Response resp);
  Response execute(const Request& req, runtime::Engine& engine);
  Response introspect(const Request& req);
  void emit_spans(const QueuedRequest& qr, std::uint64_t end_us);
  void update_gauges();
  std::uint64_t now_us() const;

  ServerOptions options_;
  telemetry::MetricsRegistry metrics_;
  std::unique_ptr<telemetry::TraceSession> trace_;  // null unless opted in
  std::unique_ptr<telemetry::FlightRecorder> flight_;  // null iff capacity 0
  SessionManager sessions_;
  RequestQueue queue_;
  ThreadPool pool_;
  std::map<Ticket, Response> done_;
  Ticket next_ticket_ = 1;
  bool shutdown_ = false;
  std::chrono::steady_clock::time_point epoch_;

  // Instrument handles, resolved once at construction.
  telemetry::Counter* requests_by_type_[12] = {};
  telemetry::Counter* overloads_ = nullptr;
  telemetry::Counter* errors_ = nullptr;
  telemetry::Counter* sessions_created_ = nullptr;
  telemetry::Counter* sessions_closed_ = nullptr;
  telemetry::Gauge* sessions_live_ = nullptr;
  telemetry::Gauge* sessions_hot_ = nullptr;
  telemetry::Histogram* queue_depth_ = nullptr;
  telemetry::Histogram* batch_size_ = nullptr;
  // qtserve_request_latency_us{type=...,path=hot|restore|inline} and
  // qtserve_phase_us{phase=...} series are resolved lazily in finish()
  // (control thread only) — the label cross product is created on
  // demand, not eagerly as empty series.
};

}  // namespace qta::serve

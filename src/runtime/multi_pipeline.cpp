#include "runtime/multi_pipeline.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <thread>

#include "common/check.h"
#include "qtaccel/machine_state.h"
#include "qtaccel/resources.h"
#include "runtime/lane_coalescer.h"
#include "runtime/snapshot.h"

namespace qta::runtime {

namespace {
constexpr const char* kPoolMagic = "QTACCEL-POOL-CHECKPOINT";
constexpr const char* kFleetMagic = "QTACCEL-FLEET-CHECKPOINT";
constexpr const char* kPoolVersion = "v1";

/// QTA_CHECK_MSG with the checkpoint's source context appended — the
/// leading message text is unchanged so existing death-test regexes
/// keep matching; the suffix names the file (and pipe, when set).
void require(bool ok, const char* msg, const SnapshotSource& src) {
  if (ok) return;
  const std::string full = msg + src.describe();
  QTA_CHECK_MSG(false, full.c_str());
}

void expect_pool_header(std::istream& is, const char* magic,
                        const char* key, std::uint64_t expected_count,
                        std::uint64_t* out_cycles,
                        const SnapshotSource& src) {
  std::string tok;
  is >> tok;
  require(static_cast<bool>(is) && tok == magic,
          "not a QTACCEL pool checkpoint file", src);
  is >> tok;
  require(static_cast<bool>(is) && tok == kPoolVersion,
          "unsupported pool checkpoint version", src);
  std::uint64_t count = 0;
  is >> tok >> count;
  require(static_cast<bool>(is) && tok == key && count == expected_count,
          "pool checkpoint shape does not match this pool", src);
  if (out_cycles != nullptr) {
    is >> tok >> *out_cycles;
    require(static_cast<bool>(is) && tok == "cycles",
            "truncated pool checkpoint header", src);
  }
}

SnapshotSource pipe_source(const SnapshotSource& base, std::size_t pipe) {
  SnapshotSource src = base;
  src.pipe = static_cast<int>(pipe);
  return src;
}
}  // namespace

SharedTablePipelines::SharedTablePipelines(const env::Environment& env,
                                           const qtaccel::PipelineConfig&
                                               config,
                                           unsigned num_pipelines)
    : env_(env),
      config_(config),
      map_(qtaccel::make_address_map(env)),
      q_("shared_q_table", map_.depth(), config.q_fmt.width,
         2 * num_pipelines),
      r_("shared_reward_table", map_.depth(), config.q_fmt.width,
         std::max(2u, num_pipelines)),
      qmax_(env.num_states(), config.q_fmt.width, map_.action_bits,
            2 * num_pipelines) {
  QTA_CHECK_MSG(num_pipelines >= 1 && num_pipelines <= 2,
                "shared-table mode supports one or two pipelines");
  QTA_CHECK_MSG(
      config.backend == qtaccel::Backend::kCycleAccurate,
      "shared-table mode requires the cycle-accurate backend: the fast "
      "engine has no port-level table sharing or collision model (set "
      "config.backend = Backend::kCycleAccurate, or use "
      "IndependentPipelines for fast fleets)");
  for (StateId s = 0; s < env.num_states(); ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      r_.preset(map_.q_addr(s, a),
                fixed::from_double(env.reward(s, a), config.q_fmt));
    }
  }
  for (unsigned p = 0; p < num_pipelines; ++p) {
    qtaccel::PipelineConfig pc = config;
    pc.seed = config.seed + p;
    pipes_.push_back(std::make_unique<qtaccel::Pipeline>(env, pc, &q_, &r_,
                                                         &qmax_, 2 * p));
  }
}

void SharedTablePipelines::tick_all(bool allow_issue) {
  q_.begin_cycle();
  r_.begin_cycle();
  qmax_.bram().begin_cycle();
  for (auto& p : pipes_) p->tick(allow_issue);
  q_.clock_edge();
  r_.clock_edge();
  qmax_.bram().clock_edge();
  ++cycles_;
}

bool SharedTablePipelines::any_in_flight() const {
  for (const auto& p : pipes_) {
    if (p->in_flight()) return true;
  }
  return false;
}

void SharedTablePipelines::drain() {
  while (any_in_flight()) tick_all(false);
}

void SharedTablePipelines::run_cycles(std::uint64_t cycles) {
  for (std::uint64_t c = 0; c < cycles; ++c) tick_all(true);
}

void SharedTablePipelines::run_samples_total(std::uint64_t total) {
  while (total_samples() < total) tick_all(true);
}

void SharedTablePipelines::save_checkpoint(std::ostream& os,
                                           SnapshotFormat format) {
  drain();  // the lockstep barrier: every pipe's state is now committed
  os << kPoolMagic << ' ' << kPoolVersion << '\n'
     << "pipes " << pipes_.size() << '\n'
     << "cycles " << cycles_ << '\n';
  // Each pipe snapshots the shared tables through its own pointers; the
  // duplication buys per-pipe files that are individually complete. v3
  // images are length-aware (end sentinel + fixed-width fields), so
  // they embed in the pool stream exactly like the text form.
  for (const auto& p : pipes_) {
    if (format == SnapshotFormat::kV3Binary) {
      write_snapshot_v3(os, p->config(), env_, p->save_state());
    } else {
      write_snapshot(os, p->config(), env_, p->save_state());
    }
  }
}

void SharedTablePipelines::load_checkpoint(std::istream& is,
                                           const SnapshotSource& source) {
  std::uint64_t cycles = 0;
  expect_pool_header(is, kPoolMagic, "pipes", pipes_.size(), &cycles,
                     source);
  // Per-pipe restore re-presets the shared tables once per pipe — they
  // were saved post-drain, so every copy is identical and the repeated
  // preset is idempotent.
  for (std::size_t i = 0; i < pipes_.size(); ++i) {
    pipes_[i]->load_state(read_snapshot(is, pipes_[i]->config(), env_,
                                        pipe_source(source, i)));
  }
  cycles_ = cycles;
}

void SharedTablePipelines::save_checkpoint_file(const std::string& path) {
  std::ofstream os(path);
  require(os.is_open(), "cannot open pool checkpoint file for writing",
          SnapshotSource{path});
  save_checkpoint(os);
  os.flush();
  require(os.good(), "failed writing pool checkpoint file",
          SnapshotSource{path});
}

void SharedTablePipelines::load_checkpoint_file(const std::string& path) {
  std::ifstream is(path);
  require(is.is_open(), "cannot open pool checkpoint file for reading",
          SnapshotSource{path});
  load_checkpoint(is, SnapshotSource{path});
}

std::uint64_t SharedTablePipelines::total_samples() const {
  std::uint64_t sum = 0;
  for (const auto& p : pipes_) sum += p->stats().samples;
  return sum;
}

// Host-side metrics and table readback (see pipeline.cpp for rationale).
// qtlint: push-allow(datapath-purity)
double SharedTablePipelines::samples_per_cycle() const {
  return cycles_ == 0 ? 0.0
                      : static_cast<double>(total_samples()) /
                            static_cast<double>(cycles_);
}

double SharedTablePipelines::q_value(StateId s, ActionId a) const {
  return fixed::to_double(q_.peek(map_.q_addr(s, a)), config_.q_fmt);
}

std::vector<double> SharedTablePipelines::q_as_double() const {
  std::vector<double> out;
  out.reserve(env_.table_size());
  for (StateId s = 0; s < env_.num_states(); ++s) {
    for (ActionId a = 0; a < env_.num_actions(); ++a) {
      out.push_back(q_value(s, a));
    }
  }
  return out;
}
// qtlint: pop-allow(datapath-purity)

IndependentPipelines::IndependentPipelines(
    std::vector<std::unique_ptr<env::Environment>> environments,
    const qtaccel::PipelineConfig& config)
    : envs_(std::move(environments)), config_(config) {
  QTA_CHECK(!envs_.empty());
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    qtaccel::PipelineConfig pc = config;
    pc.seed = config.seed * 1000003ULL + i;
    engines_.push_back(std::make_unique<Engine>(*envs_[i], pc));
  }
}

unsigned IndependentPipelines::pool_workers(unsigned max_threads) const {
  // Matches run_samples_each's work-stealing resolution, including the
  // hardware clamp, so observer tracks line up with actual workers.
  const unsigned hardware = std::thread::hardware_concurrency();
  unsigned threads =
      resolve_thread_count(max_threads, hardware, engines_.size());
  if (hardware != 0 && threads > hardware) threads = hardware;
  return threads;
}

void IndependentPipelines::run_samples_each(std::uint64_t samples,
                                            unsigned max_threads,
                                            Schedule schedule) {
  if (config_.backend == qtaccel::Backend::kLanes) {
    // The lanes backend IS the batching mechanism: coalesce the whole
    // fleet into one lane group (same config everywhere, so always
    // compatible) and advance every pipeline in the round loop instead
    // of spreading single-lane engines over threads. The runner's
    // destructor hands each engine its state back.
    std::vector<Engine*> members;
    members.reserve(engines_.size());
    for (auto& e : engines_) members.push_back(e.get());
    LaneGroupRunner runner(std::move(members));
    runner.run_to_targets(
        std::vector<std::uint64_t>(engines_.size(), samples));
    return;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  unsigned threads =
      resolve_thread_count(max_threads, hardware, engines_.size());
  if (schedule == Schedule::kWorkStealing && hardware != 0 &&
      threads > hardware) {
    // Over-subscribing compute-bound engines only buys context-switch
    // overhead: with more workers than cores the pool's dynamic
    // claiming degenerates to the OS scheduler time-slicing them. Clamp
    // to the hardware (the static schedule keeps the caller's count —
    // it is the legacy-ablation baseline and must not silently change).
    threads = hardware;
  }
  if (threads == 1) {
    for (auto& e : engines_) e->run_samples(samples);
    return;
  }
  if (schedule == Schedule::kStaticRoundRobin) {
    // Legacy schedule (pre-pool): fresh threads per call, pipeline i
    // pinned to thread i % threads. Kept as the bench ablation baseline.
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([this, t, threads, samples] {
        for (std::size_t i = t; i < engines_.size(); i += threads) {
          engines_[i]->run_samples(samples);
        }
      });
    }
    for (auto& th : pool) th.join();
    return;
  }
  if (!pool_ || pool_->size() != threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
    pool_->set_observer(pool_observer_);
  }
  pool_->parallel_for(engines_.size(), [this, samples](std::size_t i) {
    engines_[i]->run_samples(samples);
  });
}

void IndependentPipelines::save_checkpoint(std::ostream& os,
                                           SnapshotFormat format) const {
  os << kFleetMagic << ' ' << kPoolVersion << '\n'
     << "engines " << engines_.size() << '\n';
  for (const auto& e : engines_) {
    if (format == SnapshotFormat::kV3Binary) {
      save_snapshot_v3(*e, os);
    } else {
      save_snapshot(*e, os);
    }
  }
}

void IndependentPipelines::load_checkpoint(std::istream& is,
                                           const SnapshotSource& source) {
  expect_pool_header(is, kFleetMagic, "engines", engines_.size(),
                     /*out_cycles=*/nullptr, source);
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    load_snapshot(*engines_[i], is, pipe_source(source, i));
  }
}

void IndependentPipelines::save_checkpoint_file(
    const std::string& path) const {
  std::ofstream os(path);
  require(os.is_open(), "cannot open fleet checkpoint file for writing",
          SnapshotSource{path});
  save_checkpoint(os);
  os.flush();
  require(os.good(), "failed writing fleet checkpoint file",
          SnapshotSource{path});
}

void IndependentPipelines::load_checkpoint_file(const std::string& path) {
  std::ifstream is(path);
  require(is.is_open(), "cannot open fleet checkpoint file for reading",
          SnapshotSource{path});
  load_checkpoint(is, SnapshotSource{path});
}

std::uint64_t IndependentPipelines::total_samples() const {
  std::uint64_t sum = 0;
  for (const auto& e : engines_) sum += e->stats().samples;
  return sum;
}

// Host-side aggregate metric.
// qtlint: push-allow(datapath-purity)
double IndependentPipelines::samples_per_cycle() const {
  Cycle slowest = 0;
  for (const auto& e : engines_) {
    slowest = std::max(slowest, e->stats().cycles);
  }
  return slowest == 0 ? 0.0
                      : static_cast<double>(total_samples()) /
                            static_cast<double>(slowest);
}
// qtlint: pop-allow(datapath-purity)

hw::ResourceLedger IndependentPipelines::resources() const {
  return qtaccel::build_resources(*envs_[0], config_,
                                  static_cast<unsigned>(engines_.size()),
                                  /*share_tables=*/false);
}

}  // namespace qta::runtime

// Backend registry: config.backend -> QrlBackend factory.
//
// Replaces the old if/else inside the Engine facade. The two built-in
// backends (cycle-accurate Pipeline, fast FastEngine) self-register on
// first use; register_backend exists so an out-of-tree backend (an RTL
// cosimulation bridge, a hardware device proxy) can slot in behind the
// same runtime surface without touching this layer.
#pragma once

#include <memory>

#include "env/environment.h"
#include "qtaccel/config.h"
#include "runtime/backend.h"

namespace qta::runtime {

using BackendFactory = std::unique_ptr<QrlBackend> (*)(
    const env::Environment& env, const qtaccel::PipelineConfig& config);

/// Installs (or replaces) the factory for `kind`. Thread-safe.
void register_backend(qtaccel::Backend kind, BackendFactory factory);

/// Builds the backend `config.backend` selects; aborts if no factory is
/// registered for it. Thread-safe.
std::unique_ptr<QrlBackend> make_backend(const env::Environment& env,
                                         const qtaccel::PipelineConfig& config);

}  // namespace qta::runtime

// Long-run training driver over the runtime Engine — the
// accelerator-backed counterpart of algo/trainer.h's software loop.
//
// Drives run_samples in chunks so the host can interleave observation
// (probes for learning curves) and durability (periodic machine
// snapshots) without touching the machine mid-flight: every chunk
// boundary is a drained state and therefore a valid snapshot point. A
// training run killed between chunks resumes bit-exactly from its last
// snapshot (runtime/snapshot.h).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/engine.h"

namespace qta::runtime {

struct TrainOptions {
  std::uint64_t total_samples = 100000;
  /// Samples per run_samples chunk (the probe/snapshot granularity).
  /// The engine may overshoot a chunk by the pipeline drain, exactly as
  /// back-to-back run_samples calls do.
  std::uint64_t chunk_samples = 10000;
  /// Called after every chunk (0 disables) with the samples retired so
  /// far — used to record learning curves.
  std::uint64_t probe_interval = 0;
  std::function<void(std::uint64_t)> probe;
  /// Every `snapshot_interval` samples (0 disables), the full machine
  /// state is written to `snapshot_path` (atomically replaced).
  std::uint64_t snapshot_interval = 0;
  std::string snapshot_path;
};

struct TrainResult {
  std::uint64_t samples = 0;
  std::uint64_t episodes = 0;
  std::uint64_t snapshots_written = 0;
};

/// Runs the engine to `total_samples` retired samples (counting samples
/// already retired before the call — resuming from a snapshot continues
/// the same budget rather than restarting it).
TrainResult train(Engine& engine, const TrainOptions& options);

}  // namespace qta::runtime

// The runtime's backend abstraction: one QRL machine, interchangeable
// observation surfaces.
//
// A QrlBackend is one accelerator instance — the paper's machine —
// executed by either the cycle-accurate pipeline (qtaccel/pipeline.h) or
// the fast functional engine (qtaccel/fast_engine.h). Both retire
// bit-identical traces and tables; they differ in what the host pays per
// sample and in which observation surfaces exist (waveforms, per-cycle
// telemetry, port auditing). Capability flags expose that difference so
// callers probe instead of assuming a backend.
//
// Layering rule (enforced by qtlint's layering DAG): runtime/
// includes qtaccel/, never the reverse. Everything above the datapath —
// driver, tools, examples, benches — talks to QrlBackend or the Engine
// facade (runtime/engine.h), not to Pipeline/FastEngine directly.
#pragma once

#include <cstdint>
#include <vector>

#include "env/environment.h"
#include "qtaccel/config.h"
#include "qtaccel/machine_state.h"
#include "qtaccel/pipeline.h"
#include "qtaccel/qmax_unit.h"
#include "telemetry/sink.h"

namespace qta::qtaccel {
class LaneEngine;  // runtime/lane_coalescer.h migrates state through it
}  // namespace qta::qtaccel

namespace qta::runtime {

/// What a backend can observe beyond the retired trace and stats. The
/// trace/table semantics themselves are identical across backends — these
/// flags only gate observation surfaces.
struct BackendCaps {
  bool waveforms = false;     // textual per-cycle waveform (set_waveform)
  bool cycle_events = false;  // telemetry CycleEvents (fast backend emits
                              // StepEvents/RunEvents instead)
  bool port_audit = false;    // per-cycle Bram port/conflict accounting
  bool single_cycle_step = false;  // tick()-level stepping (driver CSR run)
  bool lane_batched = false;  // state can migrate into a lane group
                              // (runtime/lane_coalescer.h) and back, O(1)
  bool dirty_rows = false;    // tracks rows written since the last
                              // reset_dirty_rows() epoch
                              // (qtaccel/machine_state.h DirtyRows), so
                              // delta checkpoints serialize only touched
                              // rows (runtime/snapshot.h)
};

class QrlBackend {
 public:
  virtual ~QrlBackend() = default;

  QrlBackend() = default;
  QrlBackend(const QrlBackend&) = delete;
  QrlBackend& operator=(const QrlBackend&) = delete;

  virtual qtaccel::Backend kind() const = 0;
  virtual BackendCaps caps() const = 0;

  // Capability queries, for call sites that read better as a question.
  bool has_waveforms() const { return caps().waveforms; }
  bool has_cycle_events() const { return caps().cycle_events; }
  bool has_port_audit() const { return caps().port_audit; }
  bool has_single_cycle_step() const { return caps().single_cycle_step; }

  virtual void run_iterations(std::uint64_t n) = 0;
  virtual void run_samples(std::uint64_t n) = 0;

  virtual const qtaccel::PipelineStats& stats() const = 0;
  virtual void set_trace(std::vector<qtaccel::SampleTrace>* trace) = 0;
  virtual void set_telemetry(telemetry::TelemetrySink* sink) = 0;

  virtual fixed::raw_t q_raw(StateId s, ActionId a) const = 0;
  // qtlint: allow(datapath-purity)
  virtual double q_value(StateId s, ActionId a) const = 0;
  virtual fixed::raw_t q2_raw(StateId s, ActionId a) const = 0;
  // qtlint: allow(datapath-purity)
  virtual std::vector<double> q_as_double() const = 0;
  virtual std::vector<ActionId> greedy_policy() const = 0;
  virtual qtaccel::QmaxUnit::Entry qmax_entry(StateId s) const = 0;

  virtual void preset_q(StateId s, ActionId a, fixed::raw_t value) = 0;
  virtual void rebuild_qmax() = 0;
  virtual std::uint64_t dsp_saturations() const = 0;

  /// Complete machine state (qtaccel/machine_state.h). Backend-generic:
  /// a state saved here restores on any backend of the same config.
  virtual qtaccel::MachineState save_state() const = 0;
  virtual void load_state(const qtaccel::MachineState& ms) = 0;

  /// Dirty-row epoch control (qtaccel/machine_state.h DirtyRows),
  /// meaningful only when caps().dirty_rows. reset_dirty_rows() starts a
  /// fresh epoch after a full checkpoint; dirty_row_count() is the rows
  /// a delta since that epoch would carry, collapsing to num_states
  /// while tracking is conservative (fresh engine, adopted unknown
  /// state, rebuild_qmax) — callers use it to decide delta vs full
  /// without serializing anything.
  virtual void reset_dirty_rows() {}
  virtual std::uint64_t dirty_row_count() const {
    return environment().num_states();
  }

  virtual const env::Environment& environment() const = 0;
  virtual const qtaccel::PipelineConfig& config() const = 0;
  virtual const qtaccel::AddressMap& address_map() const = 0;

  /// The cycle-accurate pipeline when this backend wraps one, else
  /// nullptr — the nullable replacement for the old aborting accessor.
  /// Check has_waveforms()/has_port_audit() (or null-test the result)
  /// instead of assuming the cycle backend.
  virtual qtaccel::Pipeline* cycle_pipeline() { return nullptr; }
  const qtaccel::Pipeline* cycle_pipeline() const {
    return const_cast<QrlBackend*>(this)->cycle_pipeline();
  }

  /// The (single-lane) lane engine when this backend wraps one, else
  /// nullptr. Check caps().lane_batched (or null-test) instead of
  /// assuming — the coalescer uses this to donate state into a lane
  /// group (take_state/put_state) without copying tables.
  virtual qtaccel::LaneEngine* lane_engine() { return nullptr; }
  const qtaccel::LaneEngine* lane_engine() const {
    return const_cast<QrlBackend*>(this)->lane_engine();
  }
};

}  // namespace qta::runtime

#include "runtime/lane_coalescer.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "qtaccel/lane_engine.h"
#include "qtaccel/machine_state.h"
#include "telemetry/trace.h"

namespace qta::runtime {

bool is_lane_backend(const Engine& engine) {
  return engine.lane_engine() != nullptr;
}

bool can_coalesce(const Engine& a, const Engine& b) {
  return is_lane_backend(a) && is_lane_backend(b) &&
         qtaccel::LaneEngine::compatible(a.config(), b.config());
}

LaneGroupRunner::LaneGroupRunner(std::vector<Engine*> engines)
    : engines_(std::move(engines)) {
  QTA_CHECK_MSG(!engines_.empty(), "lane group needs at least one engine");
  std::vector<qtaccel::LaneEngine::LaneSpec> specs;
  std::vector<qtaccel::MachineState> states;
  specs.reserve(engines_.size());
  states.reserve(engines_.size());
  for (Engine* e : engines_) {
    qtaccel::LaneEngine* donor = e->lane_engine();
    QTA_CHECK_MSG(donor != nullptr,
                  "lane coalescing requires the lanes backend");
    QTA_CHECK_MSG(
        qtaccel::LaneEngine::compatible(engines_[0]->config(), e->config()),
        "lane group members must agree on (algorithm, qmax, hazard)");
    qtaccel::LaneEngine::LaneSpec spec;
    spec.env = &e->environment();
    spec.config = e->config();
    spec.image = donor->env_image(0);  // share the donor's baked image
    spec.defer_tables = true;          // tables arrive via put_state
    specs.push_back(std::move(spec));
    states.push_back(donor->take_state(0));
  }
  group_ = std::make_unique<qtaccel::LaneEngine>(specs);
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    group_->put_state(i, std::move(states[i]));
    qtaccel::LaneEngine* donor = engines_[i]->lane_engine();
    group_->set_trace(i, donor->trace(0));
    group_->set_telemetry(i, donor->telemetry(0));
  }
}

LaneGroupRunner::~LaneGroupRunner() {
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    engines_[i]->lane_engine()->put_state(0, group_->take_state(i));
  }
}

void LaneGroupRunner::set_trace(telemetry::TraceSession* trace,
                                std::uint32_t pid, std::uint32_t tid) {
  trace_ = trace;
  trace_pid_ = pid;
  trace_tid_ = tid;
}

void LaneGroupRunner::run_group(const std::vector<std::uint64_t>& targets) {
  if (trace_ == nullptr) {
    group_->run_samples_all(targets);
    return;
  }
  telemetry::TraceSession::SpanArgs args{
      {"lanes", static_cast<std::uint64_t>(engines_.size())}};
  std::vector<std::uint64_t> before(engines_.size());
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    before[i] = group_->stats(i).samples;
  }
  const std::uint64_t start = trace_->now_us();
  group_->run_samples_all(targets);
  const std::uint64_t end = trace_->now_us();
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    args.emplace_back("lane" + std::to_string(i) + "_samples",
                      group_->stats(i).samples - before[i]);
  }
  trace_->complete_event(trace_pid_, trace_tid_,
                         "lane_group[" + std::to_string(engines_.size()) +
                             "]",
                         start, end - start, std::move(args));
}

void LaneGroupRunner::run_steps(const std::vector<std::uint64_t>& steps) {
  QTA_CHECK(steps.size() == engines_.size());
  std::vector<std::uint64_t> targets(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    targets[i] = group_->stats(i).samples + steps[i];
  }
  run_group(targets);
}

void LaneGroupRunner::run_to_targets(
    const std::vector<std::uint64_t>& targets) {
  QTA_CHECK(targets.size() == engines_.size());
  run_group(targets);
}

const qtaccel::PipelineStats& LaneGroupRunner::stats(std::size_t i) const {
  return group_->stats(i);
}

}  // namespace qta::runtime

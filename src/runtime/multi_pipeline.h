// Multi-agent extensions (Section VII-A, Figures 8 and 9).
//
// SharedTablePipelines — "State Sharing Learners": two pipelines train in
// the SAME environment against ONE set of Q/R/Qmax tables. The tables are
// modeled as double-pumped dual-port BRAM (4 logical ports); when both
// pipelines write the same address in one cycle, one arbitrarily
// overwrites the other (counted as a collision, exactly the behaviour the
// paper describes). There is no cross-pipeline forwarding: each agent's
// hazard network only covers its own in-flight updates. Shared-table mode
// REQUIRES the cycle-accurate backend — the fast engine has no port-level
// table sharing — and the constructor rejects a fast-backend config with
// a clear error instead of silently running the wrong model.
//
// IndependentPipelines — "Independent Learners": N engines, each with its
// own environment partition and its own BRAM bank; embarrassingly
// parallel, simulated with host threads. Either backend works.
//
// Both pools checkpoint through the snapshot layer: per-pipe machine
// snapshots concatenated under a pool header, written at a lockstep
// barrier (shared mode drains all pipes first; independent mode saves
// after run_samples_each's join). Restoring is save/load-transparent: a
// restored pool continues exactly as the saved pool would have. For the
// shared pool the checkpoint seam is additionally a forwarding boundary
// (like any drain); cross-pipe write visibility at the seam differs from
// an uninterrupted run, so shared-mode checkpoints are transparent but
// not bit-identical to a run that never paused — docs/runtime.md spells
// this out.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "env/environment.h"
#include "hw/bram.h"
#include "hw/resource_ledger.h"
#include "qtaccel/pipeline.h"
#include "qtaccel/qmax_unit.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"

namespace qta::runtime {

class SharedTablePipelines {
 public:
  /// `num_pipelines` is 1 or 2 (1 exists so single/dual comparisons run
  /// through identical code). Pipeline p gets seed config.seed + p.
  /// Aborts when config.backend is not the cycle-accurate backend.
  SharedTablePipelines(const env::Environment& env,
                       const qtaccel::PipelineConfig& config,
                       unsigned num_pipelines = 2);

  /// Runs `cycles` lockstep cycles (all pipelines issue every cycle).
  void run_cycles(std::uint64_t cycles);

  /// Runs until the pipelines have retired `total` samples combined.
  void run_samples_total(std::uint64_t total);

  /// Lockstep drain: issue is suppressed on every pipe until nothing is
  /// in flight anywhere. The checkpoint barrier; also usable on its own.
  void drain();

  /// Pool-wide atomic checkpoint: drains, then writes the pool header
  /// and one machine snapshot per pipe (shared tables appear in each —
  /// restore is idempotent). Non-const because of the drain. `format`
  /// picks the per-pipe image encoding; v2 text stays the default for
  /// script/diff friendliness, v3 binary shrinks bulk checkpoints.
  void save_checkpoint(std::ostream& os,
                       SnapshotFormat format = SnapshotFormat::kV2Text);
  /// Restores a checkpoint written by save_checkpoint (either format —
  /// the per-pipe version token is sniffed, so v2 and v3 images can
  /// even mix within one stream); aborts with a diagnostic on a foreign
  /// file or a pool-shape mismatch. The diagnostic names `source` plus
  /// the offending pipe index, so a bad snapshot inside a multi-pipe
  /// stream is attributable.
  void load_checkpoint(std::istream& is, const SnapshotSource& source = {});
  /// File helpers; abort with a diagnostic (naming the path) when the
  /// file cannot be opened/written or fails to parse.
  void save_checkpoint_file(const std::string& path);
  void load_checkpoint_file(const std::string& path);

  unsigned num_pipelines() const {
    return static_cast<unsigned>(pipes_.size());
  }
  const qtaccel::Pipeline& pipeline(unsigned i) const { return *pipes_[i]; }
  Cycle cycles() const { return cycles_; }

  /// Attaches a telemetry sink to pipeline `i` (nullptr detaches). The
  /// lockstep tick then emits one CycleEvent per pipeline per cycle.
  void set_telemetry(unsigned i, telemetry::TelemetrySink* sink) {
    pipes_[i]->set_telemetry(sink);
  }

  /// Combined retired samples across pipelines.
  std::uint64_t total_samples() const;
  /// Same-cycle same-address write collisions on the shared Q table.
  std::uint64_t q_write_collisions() const {
    return q_.stats().write_collisions;
  }
  // Host-side metrics and table readback.
  // qtlint: push-allow(datapath-purity)
  /// Combined throughput in samples per cycle (≈ num_pipelines).
  double samples_per_cycle() const;

  double q_value(StateId s, ActionId a) const;
  std::vector<double> q_as_double() const;
  // qtlint: pop-allow(datapath-purity)

 private:
  void tick_all(bool allow_issue);
  bool any_in_flight() const;

  const env::Environment& env_;
  qtaccel::PipelineConfig config_;
  qtaccel::AddressMap map_;
  hw::Bram q_;
  hw::Bram r_;
  qtaccel::QmaxUnit qmax_;
  std::vector<std::unique_ptr<qtaccel::Pipeline>> pipes_;
  Cycle cycles_ = 0;
};

/// How run_samples_each maps pipelines onto host threads.
enum class Schedule {
  kWorkStealing,      // persistent pool, dynamic claiming (default)
  kStaticRoundRobin,  // legacy: pipeline i pinned to thread i % T —
                      // kept for the bench ablation; a skewed workload
                      // serializes on its slowest bucket here
};

/// Lock discipline: this class owns no mutex. Parallelism happens only
/// inside ThreadPool::parallel_for (annotated and checked by clang's
/// thread-safety analysis; common/annotations.h), each worker item
/// touching exactly one self-contained engine — so the fleet itself
/// needs confinement, not locking. The qtlint mutex-annotation rule
/// ensures any future lock here arrives with QTA_* annotations; the
/// TSan preset runs the MultiPipeline/Independent/Stress suites against
/// the same claim dynamically.
class IndependentPipelines {
 public:
  /// One engine per environment (cycle-accurate or fast per
  /// config.backend); environment i uses seed config.seed * 1000003 + i.
  IndependentPipelines(
      std::vector<std::unique_ptr<env::Environment>> environments,
      const qtaccel::PipelineConfig& config);

  /// Runs every pipeline for `samples` samples, using up to
  /// `max_threads` host threads (0 = hardware concurrency; a platform
  /// that cannot report its concurrency runs single-threaded). The
  /// work-stealing schedule reuses one persistent pool across calls and
  /// clamps the worker count to the hardware concurrency (requesting
  /// more workers than cores only adds context switches; the static
  /// schedule keeps the raw request — it is the ablation baseline).
  /// With the lanes backend the fleet is coalesced into one LaneEngine
  /// group instead (runtime/lane_coalescer.h): all pipelines advance in
  /// one lane-batched round loop, and `max_threads`/`schedule` are
  /// moot. Results are schedule- and thread-count-independent: every
  /// engine is fully self-contained, so only wall-clock time changes.
  void run_samples_each(std::uint64_t samples, unsigned max_threads = 0,
                        Schedule schedule = Schedule::kWorkStealing);

  /// Fleet checkpoint: one machine snapshot per engine, in `format`
  /// (v2 text by default; loads sniff per-engine). Valid at any point
  /// between run_samples_each calls (the parallel_for join is the
  /// barrier); restoring resumes every engine bit-exactly. Load
  /// diagnostics name `source` plus the offending engine's pipe index.
  void save_checkpoint(std::ostream& os,
                       SnapshotFormat format = SnapshotFormat::kV2Text) const;
  void load_checkpoint(std::istream& is, const SnapshotSource& source = {});
  /// File helpers; abort with a diagnostic (naming the path) when the
  /// file cannot be opened/written or fails to parse.
  void save_checkpoint_file(const std::string& path) const;
  void load_checkpoint_file(const std::string& path);

  unsigned num_pipelines() const {
    return static_cast<unsigned>(engines_.size());
  }
  /// The cycle-accurate pipeline behind engine i, or nullptr when the
  /// backend has none (fast backend) — probe, don't assume.
  const qtaccel::Pipeline* cycle_pipeline(unsigned i) const {
    return engines_[i]->cycle_pipeline();
  }
  Engine& engine(unsigned i) { return *engines_[i]; }
  const Engine& engine(unsigned i) const { return *engines_[i]; }
  const env::Environment& environment(unsigned i) const {
    return *envs_[i];
  }

  std::uint64_t total_samples() const;
  /// Aggregate throughput in samples per cycle, where a "cycle" is the
  /// slowest pipeline's cycle count (all pipelines run concurrently in
  /// hardware).
  double samples_per_cycle() const;  // qtlint: allow(datapath-purity)

  /// Combined resource ledger (N banks + N pipelines of logic).
  hw::ResourceLedger resources() const;

  /// Items moved between worker deques by the pool so far (0 until a
  /// work-stealing run happened; diagnostic for the bench).
  std::uint64_t pool_steals() const { return pool_ ? pool_->steals() : 0; }

  /// Observer attached to the persistent pool's next work-stealing run
  /// (see telemetry/pool_observer.h; nullptr detaches). Stored here
  /// because the pool is built lazily; applied at run_samples_each time.
  void set_pool_observer(TaskObserver* observer) {
    pool_observer_ = observer;
    if (pool_) pool_->set_observer(observer);
  }
  /// Workers the work-stealing schedule would use for `max_threads`
  /// (callers size PoolTraceObserver tracks with this).
  unsigned pool_workers(unsigned max_threads = 0) const;

 private:
  std::vector<std::unique_ptr<env::Environment>> envs_;
  qtaccel::PipelineConfig config_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::unique_ptr<ThreadPool> pool_;  // lazily built, reused across calls
  TaskObserver* pool_observer_ = nullptr;
};

}  // namespace qta::runtime

#include "runtime/backend_registry.h"

#include <array>
#include <mutex>

#include "common/annotations.h"
#include "common/check.h"
#include "common/mutex.h"
#include "qtaccel/fast_engine.h"
#include "qtaccel/lane_engine.h"
#include "qtaccel/pipeline.h"

namespace qta::runtime {

namespace {

// The three in-tree adapters. These are the ONLY places outside unit
// tests where Pipeline/FastEngine/LaneEngine are constructed (the qtlint
// layering rule keeps it that way).

class PipelineBackend final : public QrlBackend {
 public:
  PipelineBackend(const env::Environment& env,
                  const qtaccel::PipelineConfig& config)
      : pipe_(env, config) {}

  qtaccel::Backend kind() const override {
    return qtaccel::Backend::kCycleAccurate;
  }
  BackendCaps caps() const override {
    BackendCaps c;
    c.waveforms = true;
    c.cycle_events = true;
    c.port_audit = true;
    c.single_cycle_step = true;
    c.dirty_rows = true;
    return c;
  }

  void run_iterations(std::uint64_t n) override { pipe_.run_iterations(n); }
  void run_samples(std::uint64_t n) override { pipe_.run_samples(n); }

  const qtaccel::PipelineStats& stats() const override {
    return pipe_.stats();
  }
  void set_trace(std::vector<qtaccel::SampleTrace>* trace) override {
    pipe_.set_trace(trace);
  }
  void set_telemetry(telemetry::TelemetrySink* sink) override {
    pipe_.set_telemetry(sink);
  }

  fixed::raw_t q_raw(StateId s, ActionId a) const override {
    return pipe_.q_raw(s, a);
  }
  double q_value(StateId s, ActionId a) const override {
    return pipe_.q_value(s, a);
  }
  fixed::raw_t q2_raw(StateId s, ActionId a) const override {
    return pipe_.q2_raw(s, a);
  }
  std::vector<double> q_as_double() const override {
    return pipe_.q_as_double();
  }
  std::vector<ActionId> greedy_policy() const override {
    return pipe_.greedy_policy();
  }
  qtaccel::QmaxUnit::Entry qmax_entry(StateId s) const override {
    return pipe_.qmax_entry(s);
  }

  void preset_q(StateId s, ActionId a, fixed::raw_t value) override {
    pipe_.preset_q(s, a, value);
  }
  void rebuild_qmax() override { pipe_.rebuild_qmax(); }
  std::uint64_t dsp_saturations() const override {
    return pipe_.dsp_saturations();
  }

  qtaccel::MachineState save_state() const override {
    return pipe_.save_state();
  }
  void load_state(const qtaccel::MachineState& ms) override {
    pipe_.load_state(ms);
  }
  void reset_dirty_rows() override { pipe_.reset_dirty_rows(); }
  std::uint64_t dirty_row_count() const override {
    return pipe_.dirty_row_count();
  }

  const env::Environment& environment() const override {
    return pipe_.environment();
  }
  const qtaccel::PipelineConfig& config() const override {
    return pipe_.config();
  }
  const qtaccel::AddressMap& address_map() const override {
    return pipe_.address_map();
  }

  qtaccel::Pipeline* cycle_pipeline() override { return &pipe_; }

 private:
  qtaccel::Pipeline pipe_;
};

class FastEngineBackend final : public QrlBackend {
 public:
  FastEngineBackend(const env::Environment& env,
                    const qtaccel::PipelineConfig& config)
      : fast_(env, config) {}

  qtaccel::Backend kind() const override { return qtaccel::Backend::kFast; }
  BackendCaps caps() const override {
    BackendCaps c;
    c.dirty_rows = true;
    return c;
  }

  void run_iterations(std::uint64_t n) override { fast_.run_iterations(n); }
  void run_samples(std::uint64_t n) override { fast_.run_samples(n); }

  const qtaccel::PipelineStats& stats() const override {
    return fast_.stats();
  }
  void set_trace(std::vector<qtaccel::SampleTrace>* trace) override {
    fast_.set_trace(trace);
  }
  void set_telemetry(telemetry::TelemetrySink* sink) override {
    fast_.set_telemetry(sink);
  }

  fixed::raw_t q_raw(StateId s, ActionId a) const override {
    return fast_.q_raw(s, a);
  }
  double q_value(StateId s, ActionId a) const override {
    return fast_.q_value(s, a);
  }
  fixed::raw_t q2_raw(StateId s, ActionId a) const override {
    return fast_.q2_raw(s, a);
  }
  std::vector<double> q_as_double() const override {
    return fast_.q_as_double();
  }
  std::vector<ActionId> greedy_policy() const override {
    return fast_.greedy_policy();
  }
  qtaccel::QmaxUnit::Entry qmax_entry(StateId s) const override {
    return fast_.qmax_entry(s);
  }

  void preset_q(StateId s, ActionId a, fixed::raw_t value) override {
    fast_.preset_q(s, a, value);
  }
  void rebuild_qmax() override { fast_.rebuild_qmax(); }
  std::uint64_t dsp_saturations() const override {
    return fast_.dsp_saturations();
  }

  qtaccel::MachineState save_state() const override {
    return fast_.save_state();
  }
  void load_state(const qtaccel::MachineState& ms) override {
    fast_.load_state(ms);
  }
  void reset_dirty_rows() override { fast_.reset_dirty_rows(); }
  std::uint64_t dirty_row_count() const override {
    return fast_.dirty_row_count();
  }

  const env::Environment& environment() const override {
    return fast_.environment();
  }
  const qtaccel::PipelineConfig& config() const override {
    return fast_.config();
  }
  const qtaccel::AddressMap& address_map() const override {
    return fast_.address_map();
  }

 private:
  qtaccel::FastEngine fast_;
};

// A one-lane LaneEngine behind the standard backend surface. Runs the
// same bit-exact semantics as FastEngine; what the kind buys is the
// lane_batched capability — the coalescer (runtime/lane_coalescer.h)
// can move this session's state into a multi-lane group and back in
// O(1), so batches of same-shape sessions advance together.
class LaneEngineBackend final : public QrlBackend {
 public:
  LaneEngineBackend(const env::Environment& env,
                    const qtaccel::PipelineConfig& config)
      : lanes_(env, config) {}

  qtaccel::Backend kind() const override { return qtaccel::Backend::kLanes; }
  BackendCaps caps() const override {
    BackendCaps c;
    c.lane_batched = true;
    c.dirty_rows = true;
    return c;
  }

  void run_iterations(std::uint64_t n) override {
    lanes_.run_iterations(0, n);
  }
  void run_samples(std::uint64_t n) override { lanes_.run_samples(0, n); }

  const qtaccel::PipelineStats& stats() const override {
    return lanes_.stats(0);
  }
  void set_trace(std::vector<qtaccel::SampleTrace>* trace) override {
    lanes_.set_trace(0, trace);
  }
  void set_telemetry(telemetry::TelemetrySink* sink) override {
    lanes_.set_telemetry(0, sink);
  }

  fixed::raw_t q_raw(StateId s, ActionId a) const override {
    return lanes_.q_raw(0, s, a);
  }
  double q_value(StateId s, ActionId a) const override {
    return lanes_.q_value(0, s, a);
  }
  fixed::raw_t q2_raw(StateId s, ActionId a) const override {
    return lanes_.q2_raw(0, s, a);
  }
  std::vector<double> q_as_double() const override {
    return lanes_.q_as_double(0);
  }
  std::vector<ActionId> greedy_policy() const override {
    return lanes_.greedy_policy(0);
  }
  qtaccel::QmaxUnit::Entry qmax_entry(StateId s) const override {
    return lanes_.qmax_entry(0, s);
  }

  void preset_q(StateId s, ActionId a, fixed::raw_t value) override {
    lanes_.preset_q(0, s, a, value);
  }
  void rebuild_qmax() override { lanes_.rebuild_qmax(0); }
  std::uint64_t dsp_saturations() const override {
    return lanes_.dsp_saturations(0);
  }

  qtaccel::MachineState save_state() const override {
    return lanes_.save_state(0);
  }
  void load_state(const qtaccel::MachineState& ms) override {
    lanes_.load_state(0, ms);
  }
  void reset_dirty_rows() override { lanes_.reset_dirty_rows(0); }
  std::uint64_t dirty_row_count() const override {
    return lanes_.dirty_row_count(0);
  }

  const env::Environment& environment() const override {
    return lanes_.environment(0);
  }
  const qtaccel::PipelineConfig& config() const override {
    return lanes_.config(0);
  }
  const qtaccel::AddressMap& address_map() const override {
    return lanes_.address_map(0);
  }

  qtaccel::LaneEngine* lane_engine() override { return &lanes_; }

 private:
  qtaccel::LaneEngine lanes_;
};

std::unique_ptr<QrlBackend> make_pipeline_backend(
    const env::Environment& env, const qtaccel::PipelineConfig& config) {
  return std::make_unique<PipelineBackend>(env, config);
}

std::unique_ptr<QrlBackend> make_fast_backend(
    const env::Environment& env, const qtaccel::PipelineConfig& config) {
  return std::make_unique<FastEngineBackend>(env, config);
}

std::unique_ptr<QrlBackend> make_lane_backend(
    const env::Environment& env, const qtaccel::PipelineConfig& config) {
  return std::make_unique<LaneEngineBackend>(env, config);
}

constexpr std::size_t kNumBackends = 3;

struct Registry {
  qta::Mutex mu;
  std::array<BackendFactory, kNumBackends> factories QTA_GUARDED_BY(mu) = {};
};

Registry& registry() {
  static Registry r;
  return r;
}

std::size_t slot(qtaccel::Backend kind) {
  const auto index = static_cast<std::size_t>(kind);
  QTA_CHECK_MSG(index < kNumBackends, "unknown backend kind");
  return index;
}

std::once_flag builtins_once;

// Installed directly (not via register_backend) so an out-of-tree
// factory registered BEFORE the first make_backend call is never
// clobbered by the lazy built-in installation.
void ensure_builtins() {
  std::call_once(builtins_once, [] {
    Registry& r = registry();
    const qta::MutexLock lock(r.mu);
    r.factories[slot(qtaccel::Backend::kCycleAccurate)] =
        &make_pipeline_backend;
    r.factories[slot(qtaccel::Backend::kFast)] = &make_fast_backend;
    r.factories[slot(qtaccel::Backend::kLanes)] = &make_lane_backend;
  });
}

}  // namespace

void register_backend(qtaccel::Backend kind, BackendFactory factory) {
  QTA_CHECK(factory != nullptr);
  ensure_builtins();  // explicit registrations always win over built-ins
  Registry& r = registry();
  const qta::MutexLock lock(r.mu);
  r.factories[slot(kind)] = factory;
}

std::unique_ptr<QrlBackend> make_backend(
    const env::Environment& env, const qtaccel::PipelineConfig& config) {
  ensure_builtins();
  BackendFactory factory = nullptr;
  {
    Registry& r = registry();
    const qta::MutexLock lock(r.mu);
    factory = r.factories[slot(config.backend)];
  }
  QTA_CHECK_MSG(factory != nullptr,
                "no backend registered for this config.backend");
  return factory(env, config);
}

}  // namespace qta::runtime

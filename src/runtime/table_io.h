// Q-table serialization: save a trained table, reload it into another
// engine (warm start, or host-side deployment of a table trained in
// simulation). Versioned plain-text format:
//
//   QTACCEL-QTABLE v1
//   states <|S|> actions <|A|> width <bits> frac <bits>
//   <|S| lines of |A| raw integers>
//
// Raw fixed-point words are stored, not doubles, so a round trip is
// bit-exact. v1 is the Q-table-only subset of the full machine snapshot
// (runtime/snapshot.h): save_q_table still writes v1 for portability of
// trained tables, and load_q_table routes through the snapshot layer, so
// it accepts BOTH a v1 table (warm start: preset_q + rebuild_qmax) and a
// v2 QTACCEL-SNAPSHOT (full bit-exact machine restore).
#pragma once

#include <iosfwd>

#include "runtime/engine.h"

namespace qta::runtime {

void save_q_table(std::ostream& os, const Engine& engine);

/// Aborts with a diagnostic on malformed input or a geometry/format
/// mismatch with `engine`'s configuration.
void load_q_table(std::istream& is, Engine& engine);

}  // namespace qta::runtime

// runtime::Engine — the value-typed front door of the runtime layer.
//
// One construction surface over every registered backend: the config's
// Backend field picks the implementation through the registry
// (runtime/backend_registry.h), and everything above this layer — driver,
// trainer, table IO, examples, benches — programs against this class or
// the QrlBackend interface it owns.
//
//   runtime::Engine engine(env, cfg);      // cfg.backend picks the impl
//   engine.run_samples(1'000'000);
//   if (qtaccel::Pipeline* p = engine.cycle_pipeline()) { ... waveforms }
//
// cycle_pipeline() is nullable, not aborting: callers that need a
// cycle-only surface (waveforms, Bram port stats, tick-level stepping)
// probe backend().has_waveforms() / has_port_audit() or null-test the
// pointer, and degrade gracefully on the fast backend.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/backend.h"

namespace qta::runtime {

class Engine {
 public:
  /// `env` must outlive the engine. Builds the backend `config.backend`
  /// selects via the registry.
  Engine(const env::Environment& env, const qtaccel::PipelineConfig& config);

  /// The backend behind this engine — capability queries live here
  /// (backend().has_waveforms() and friends).
  QrlBackend& backend() { return *backend_; }
  const QrlBackend& backend() const { return *backend_; }
  qtaccel::Backend backend_kind() const { return backend_->kind(); }
  BackendCaps caps() const { return backend_->caps(); }

  void run_iterations(std::uint64_t n) { backend_->run_iterations(n); }
  void run_samples(std::uint64_t n) { backend_->run_samples(n); }

  const qtaccel::PipelineStats& stats() const { return backend_->stats(); }
  void set_trace(std::vector<qtaccel::SampleTrace>* trace) {
    backend_->set_trace(trace);
  }
  void set_telemetry(telemetry::TelemetrySink* sink) {
    backend_->set_telemetry(sink);
  }

  fixed::raw_t q_raw(StateId s, ActionId a) const {
    return backend_->q_raw(s, a);
  }
  // qtlint: allow(datapath-purity)
  double q_value(StateId s, ActionId a) const {
    return backend_->q_value(s, a);
  }
  fixed::raw_t q2_raw(StateId s, ActionId a) const {
    return backend_->q2_raw(s, a);
  }
  // qtlint: allow(datapath-purity)
  std::vector<double> q_as_double() const { return backend_->q_as_double(); }
  std::vector<ActionId> greedy_policy() const {
    return backend_->greedy_policy();
  }
  qtaccel::QmaxUnit::Entry qmax_entry(StateId s) const {
    return backend_->qmax_entry(s);
  }

  void preset_q(StateId s, ActionId a, fixed::raw_t value) {
    backend_->preset_q(s, a, value);
  }
  void rebuild_qmax() { backend_->rebuild_qmax(); }
  std::uint64_t dsp_saturations() const {
    return backend_->dsp_saturations();
  }

  /// Complete machine state; serialize it with runtime/snapshot.h.
  qtaccel::MachineState save_state() const { return backend_->save_state(); }
  void load_state(const qtaccel::MachineState& ms) {
    backend_->load_state(ms);
  }

  /// Dirty-row epoch control for delta checkpoints (see
  /// QrlBackend::reset_dirty_rows/dirty_row_count in runtime/backend.h).
  void reset_dirty_rows() { backend_->reset_dirty_rows(); }
  std::uint64_t dirty_row_count() const {
    return backend_->dirty_row_count();
  }

  const env::Environment& environment() const {
    return backend_->environment();
  }
  const qtaccel::PipelineConfig& config() const {
    return backend_->config();
  }
  const qtaccel::AddressMap& address_map() const {
    return backend_->address_map();
  }

  /// The cycle-accurate pipeline, or nullptr on backends without one.
  qtaccel::Pipeline* cycle_pipeline() { return backend_->cycle_pipeline(); }
  const qtaccel::Pipeline* cycle_pipeline() const {
    return backend_->cycle_pipeline();
  }

  /// The lane engine, or nullptr on backends without one (see
  /// runtime/lane_coalescer.h for the only intended caller).
  qtaccel::LaneEngine* lane_engine() { return backend_->lane_engine(); }
  const qtaccel::LaneEngine* lane_engine() const {
    return backend_->lane_engine();
  }

 private:
  std::unique_ptr<QrlBackend> backend_;
};

}  // namespace qta::runtime

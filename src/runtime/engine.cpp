#include "runtime/engine.h"

#include "runtime/backend_registry.h"

namespace qta::runtime {

Engine::Engine(const env::Environment& env,
               const qtaccel::PipelineConfig& config)
    : backend_(make_backend(env, config)) {}

}  // namespace qta::runtime

#include "runtime/snapshot.h"

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "common/check.h"

namespace qta::runtime {

std::string SnapshotSource::describe() const {
  if (name.empty() && pipe < 0) return "";
  std::string out = " (";
  if (!name.empty()) out += name;
  if (pipe >= 0) {
    if (!name.empty()) out += ", ";
    out += "pipe " + std::to_string(pipe);
  }
  out += ")";
  return out;
}

namespace {

constexpr const char* kQtableMagic = "QTACCEL-QTABLE";
constexpr const char* kQtableVersion = "v1";

/// Parse failure carrying the full diagnostic. Internal only: the
/// aborting entry points catch it and re-raise through QTA_CHECK_MSG
/// (preserving the historical abort-with-message behavior and its
/// death-test regexes); try_load_snapshot catches it and reports the
/// message through its out-parameter instead, which is what makes the
/// parser fuzzable.
struct SnapshotError {
  std::string message;
};

/// Fails the parse with the snapshot's source context appended — the
/// leading message text is unchanged so existing death-test regexes
/// keep matching; the suffix names the file and pipe.
void require(bool ok, const char* msg, const SnapshotSource& src) {
  if (ok) return;
  throw SnapshotError{msg + src.describe()};
}

[[noreturn]] void abort_with(const SnapshotError& e) {
  QTA_CHECK_MSG(false, e.message.c_str());
  std::abort();  // unreachable: QTA_CHECK_MSG(false, ...) terminates
}

void expect_key(std::istream& is, const char* key,
                const SnapshotSource& src) {
  std::string tok;
  is >> tok;
  require(static_cast<bool>(is) && tok == key,
          "truncated or malformed snapshot header", src);
}

template <typename T>
T read_value(std::istream& is, const SnapshotSource& src) {
  T v{};
  is >> v;
  require(static_cast<bool>(is), "truncated snapshot payload", src);
  return v;
}

void write_words(std::ostream& os, const char* key, std::size_t count,
                 const auto& values) {
  os << key << ' ' << count;
  for (std::size_t i = 0; i < count; ++i) {
    // Wrap every 16 words: keeps lines reviewable without affecting the
    // whitespace-agnostic reader.
    os << (i % 16 == 0 ? '\n' : ' ') << values[i];
  }
  os << '\n';
}

// --- v1 warm-start path (the old table_io loader, retargeted) ---

void load_qtable_v1_body(std::istream& is, Engine& engine,
                         const SnapshotSource& src) {
  std::string version, key;
  is >> version;
  require(static_cast<bool>(is) && version == kQtableVersion,
          "unsupported QTABLE version", src);

  StateId states = 0;
  ActionId actions = 0;
  unsigned width = 0, frac = 0;
  is >> key >> states;
  require(static_cast<bool>(is) && key == "states",
          "malformed header: states", src);
  is >> key >> actions;
  require(static_cast<bool>(is) && key == "actions",
          "malformed header: actions", src);
  is >> key >> width;
  require(static_cast<bool>(is) && key == "width",
          "malformed header: width", src);
  is >> key >> frac;
  require(static_cast<bool>(is) && key == "frac",
          "malformed header: frac", src);

  const env::Environment& env = engine.environment();
  const fixed::Format fmt = engine.config().q_fmt;
  require(states == env.num_states() && actions == env.num_actions(),
          "table geometry does not match the pipeline's environment", src);
  require(width == fmt.width && frac == fmt.frac,
          "fixed-point format does not match the pipeline's config", src);

  for (StateId s = 0; s < states; ++s) {
    for (ActionId a = 0; a < actions; ++a) {
      fixed::raw_t v = 0;
      is >> v;
      require(static_cast<bool>(is), "truncated QTABLE payload", src);
      require(v >= fmt.min_raw() && v <= fmt.max_raw(),
              "QTABLE value outside the fixed-point range", src);
      engine.preset_q(s, a, v);
    }
  }
  engine.rebuild_qmax();
}

qtaccel::MachineState read_snapshot_body(std::istream& is,
                                         const qtaccel::PipelineConfig& config,
                                         const env::Environment& env,
                                         const SnapshotSource& src) {
  // --- fingerprint ---
  expect_key(is, "algorithm", src);
  const auto algorithm = read_value<unsigned>(is, src);
  expect_key(is, "hazard", src);
  const auto hazard = read_value<unsigned>(is, src);
  expect_key(is, "qmax", src);
  const auto qmax = read_value<unsigned>(is, src);
  expect_key(is, "alpha", src);
  const auto alpha_bits = read_value<std::uint64_t>(is, src);
  expect_key(is, "gamma", src);
  const auto gamma_bits = read_value<std::uint64_t>(is, src);
  expect_key(is, "epsilon", src);
  const auto epsilon_bits_pattern = read_value<std::uint64_t>(is, src);
  expect_key(is, "epsilon_bits", src);
  const auto epsilon_bits = read_value<unsigned>(is, src);
  expect_key(is, "qfmt", src);
  const auto q_width = read_value<unsigned>(is, src);
  const auto q_frac = read_value<unsigned>(is, src);
  expect_key(is, "cfmt", src);
  const auto c_width = read_value<unsigned>(is, src);
  const auto c_frac = read_value<unsigned>(is, src);
  expect_key(is, "max_episode_length", src);
  const auto max_episode_length = read_value<std::uint64_t>(is, src);
  expect_key(is, "states", src);
  const auto states = read_value<StateId>(is, src);
  expect_key(is, "actions", src);
  const auto actions = read_value<ActionId>(is, src);

  require(states == env.num_states() && actions == env.num_actions(),
          "snapshot geometry does not match the engine's environment", src);
  require(
      algorithm == static_cast<unsigned>(config.algorithm) &&
          hazard == static_cast<unsigned>(config.hazard) &&
          qmax == static_cast<unsigned>(config.qmax) &&
          alpha_bits == std::bit_cast<std::uint64_t>(config.alpha) &&
          gamma_bits == std::bit_cast<std::uint64_t>(config.gamma) &&
          epsilon_bits_pattern == std::bit_cast<std::uint64_t>(
                                      config.epsilon) &&
          epsilon_bits == config.epsilon_bits &&
          q_width == config.q_fmt.width && q_frac == config.q_fmt.frac &&
          c_width == config.coeff_fmt.width &&
          c_frac == config.coeff_fmt.frac &&
          max_episode_length == config.max_episode_length,
      "snapshot fingerprint does not match the engine's config", src);

  qtaccel::MachineState ms;

  // --- registers ---
  expect_key(is, "rng", src);
  for (auto& w : ms.rng) w = read_value<std::uint64_t>(is, src);
  expect_key(is, "walk", src);
  ms.episode_start = read_value<unsigned>(is, src) != 0;
  ms.state = read_value<StateId>(is, src);
  ms.pending_action = read_value<ActionId>(is, src);
  ms.episode_steps = read_value<std::uint64_t>(is, src);
  require(ms.state < states, "snapshot walk state out of range", src);
  expect_key(is, "wb", src);
  for (auto& w : ms.wb_addrs) w = read_value<std::uint64_t>(is, src);
  expect_key(is, "stats", src);
  ms.stats.iterations = read_value<std::uint64_t>(is, src);
  ms.stats.samples = read_value<std::uint64_t>(is, src);
  ms.stats.episodes = read_value<std::uint64_t>(is, src);
  ms.stats.bubbles = read_value<std::uint64_t>(is, src);
  ms.stats.cycles = read_value<std::uint64_t>(is, src);
  ms.stats.issued = read_value<std::uint64_t>(is, src);
  ms.stats.stall_cycles = read_value<std::uint64_t>(is, src);
  ms.stats.fwd_q_sa = read_value<std::uint64_t>(is, src);
  ms.stats.fwd_q_next = read_value<std::uint64_t>(is, src);
  ms.stats.fwd_qmax = read_value<std::uint64_t>(is, src);
  ms.stats.adder_saturations = read_value<std::uint64_t>(is, src);
  expect_key(is, "dsp", src);
  for (auto& w : ms.dsp_saturations) w = read_value<std::uint64_t>(is, src);

  // --- tables ---
  const qtaccel::AddressMap map = qtaccel::make_address_map(env);
  const std::uint64_t depth = map.depth();
  const fixed::Format qf = config.q_fmt;
  const auto read_table = [&](const char* key, std::uint64_t expected,
                              bool may_be_empty,
                              std::vector<fixed::raw_t>& out) {
    expect_key(is, key, src);
    const auto count = read_value<std::uint64_t>(is, src);
    require(count == expected || (may_be_empty && count == 0),
            "snapshot table size does not match the engine's "
            "geometry",
            src);
    out.resize(count);
    for (auto& v : out) {
      v = read_value<fixed::raw_t>(is, src);
      require(v >= qf.min_raw() && v <= qf.max_raw(),
              "snapshot value outside the fixed-point range", src);
    }
  };
  read_table("q", depth, /*may_be_empty=*/false, ms.q);
  read_table("q2", depth, /*may_be_empty=*/true, ms.q2);
  require(ms.q2.empty() ==
              (config.algorithm != qtaccel::Algorithm::kDoubleQ),
          "snapshot and config disagree on the second Q table", src);
  read_table("qmaxv", states, /*may_be_empty=*/false, ms.qmax_value);
  expect_key(is, "qmaxa", src);
  const auto qmaxa_count = read_value<std::uint64_t>(is, src);
  require(qmaxa_count == states,
          "snapshot table size does not match the engine's geometry", src);
  ms.qmax_action.resize(qmaxa_count);
  for (auto& a : ms.qmax_action) {
    a = read_value<ActionId>(is, src);
    require(a < actions, "snapshot Qmax action out of range", src);
  }

  // The sentinel catches files truncated between sections, which token
  // reads alone would not (eof after a complete section parses cleanly).
  expect_key(is, "end", src);
  return ms;
}

// --- v3 binary payload (after the "QTACCEL-SNAPSHOT v3\n" prolog) ---
//
// Everything below the prolog is little-endian binary. Layout (see
// docs/runtime.md for the normative grammar):
//
//   u8  kind              0 = full image, 1 = dirty-row delta
//   fingerprint: u8 algorithm, u8 hazard, u8 qmax, u64 alpha_bits,
//     u64 gamma_bits, u64 epsilon_bits_pattern, u32 epsilon_bits,
//     u32 q_width, u32 q_frac, u32 c_width, u32 c_frac,
//     u64 max_episode_length, u64 states, u64 actions
//   registers: u64 rng[4], u8 episode_start, u64 state,
//     u64 pending_action, u64 episode_steps, u64 wb_addrs[3],
//     u64 stats[11], u64 dsp[3]
//   full tables: (u64 count, i64 words...) for q, q2, qmaxv, then
//     u64 count + u64 actions... for qmaxa — same counts and range
//     checks as v2
//   delta tables: u8 has_q2, u64 row_count, then per row (strictly
//     ascending state): u64 state, i64 q_row[stride],
//     i64 q2_row[stride] (if has_q2), i64 qmax_value, u64 qmax_action
//     — stride = 1 << action_bits, i.e. the padded row exactly as the
//     full table stores it
//   8-byte end sentinel "QSNAPEND", then '\n'
//
// The payload is length-aware (every array is counted), so v3 sections
// embed in pool/fleet checkpoint streams exactly like v2 text sections.

constexpr char kV3EndSentinel[8] = {'Q', 'S', 'N', 'A', 'P', 'E', 'N', 'D'};
constexpr std::uint8_t kV3KindFull = 0;
constexpr std::uint8_t kV3KindDelta = 1;

/// Buffered little-endian writer: one os.write at the end keeps the
/// serialize path a straight memcpy loop.
class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void end_sentinel() { buf_.append(kV3EndSentinel, sizeof(kV3EndSentinel)); }
  void flush(std::ostream& os) {
    os.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  }

 private:
  std::string buf_;
};

/// Byte-counting little-endian reader. Failures keep the v2-style
/// leading message text and source suffix, then append the offset into
/// the binary payload ("... (ckpt.bin, pipe 2) at byte 137"), so a
/// corrupt v3 image names both the offending stream and where in it the
/// parse died.
class BinReader {
 public:
  BinReader(std::istream& is, const SnapshotSource& src)
      : is_(is), src_(src) {}

  [[noreturn]] void fail(const char* msg) const {
    throw SnapshotError{msg + src_.describe() + " at byte " +
                        std::to_string(offset_)};
  }
  void check(bool ok, const char* msg) const {
    if (!ok) fail(msg);
  }

  std::uint8_t u8() {
    char b;
    raw(&b, 1);
    return static_cast<std::uint8_t>(b);
  }
  std::uint32_t u32() {
    char b[4];
    raw(b, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    char b[8];
    raw(b, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
           << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  void expect_end_sentinel() {
    char b[sizeof(kV3EndSentinel)];
    raw(b, sizeof(kV3EndSentinel));
    for (std::size_t i = 0; i < sizeof(kV3EndSentinel); ++i) {
      check(b[i] == kV3EndSentinel[i], "malformed snapshot end sentinel");
    }
    // The writer appends one '\n' after the sentinel so v3 sections stay
    // line-delimited inside pool streams; consume it when present.
    if (is_.peek() == '\n') is_.get();
  }

 private:
  void raw(char* out, std::size_t n) {
    is_.read(out, static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(is_.gcount()) != n) {
      fail("truncated snapshot payload");
    }
    offset_ += n;
  }

  std::istream& is_;
  const SnapshotSource& src_;
  std::uint64_t offset_ = 0;
};

void write_v3_prolog_and_kind(std::ostream& os, BinWriter& w,
                              std::uint8_t kind) {
  os << kSnapshotMagic << ' ' << kSnapshotVersionV3 << '\n';
  w.u8(kind);
}

void write_v3_fingerprint(BinWriter& w, const qtaccel::PipelineConfig& config,
                          const env::Environment& env) {
  w.u8(static_cast<std::uint8_t>(config.algorithm));
  w.u8(static_cast<std::uint8_t>(config.hazard));
  w.u8(static_cast<std::uint8_t>(config.qmax));
  w.u64(std::bit_cast<std::uint64_t>(config.alpha));
  w.u64(std::bit_cast<std::uint64_t>(config.gamma));
  w.u64(std::bit_cast<std::uint64_t>(config.epsilon));
  w.u32(config.epsilon_bits);
  w.u32(config.q_fmt.width);
  w.u32(config.q_fmt.frac);
  w.u32(config.coeff_fmt.width);
  w.u32(config.coeff_fmt.frac);
  w.u64(config.max_episode_length);
  w.u64(env.num_states());
  w.u64(env.num_actions());
}

/// Reads and validates the v3 fingerprint with the same diagnostics the
/// v2 reader uses; returns {states, actions}.
std::pair<std::uint64_t, std::uint64_t> read_v3_fingerprint(
    BinReader& r, const qtaccel::PipelineConfig& config,
    const env::Environment& env) {
  const std::uint8_t algorithm = r.u8();
  const std::uint8_t hazard = r.u8();
  const std::uint8_t qmax = r.u8();
  const std::uint64_t alpha_bits = r.u64();
  const std::uint64_t gamma_bits = r.u64();
  const std::uint64_t epsilon_bits_pattern = r.u64();
  const std::uint32_t epsilon_bits = r.u32();
  const std::uint32_t q_width = r.u32();
  const std::uint32_t q_frac = r.u32();
  const std::uint32_t c_width = r.u32();
  const std::uint32_t c_frac = r.u32();
  const std::uint64_t max_episode_length = r.u64();
  const std::uint64_t states = r.u64();
  const std::uint64_t actions = r.u64();

  r.check(states == env.num_states() && actions == env.num_actions(),
          "snapshot geometry does not match the engine's environment");
  r.check(algorithm == static_cast<unsigned>(config.algorithm) &&
              hazard == static_cast<unsigned>(config.hazard) &&
              qmax == static_cast<unsigned>(config.qmax) &&
              alpha_bits == std::bit_cast<std::uint64_t>(config.alpha) &&
              gamma_bits == std::bit_cast<std::uint64_t>(config.gamma) &&
              epsilon_bits_pattern ==
                  std::bit_cast<std::uint64_t>(config.epsilon) &&
              epsilon_bits == config.epsilon_bits &&
              q_width == config.q_fmt.width &&
              q_frac == config.q_fmt.frac &&
              c_width == config.coeff_fmt.width &&
              c_frac == config.coeff_fmt.frac &&
              max_episode_length == config.max_episode_length,
          "snapshot fingerprint does not match the engine's config");
  return {states, actions};
}

void write_v3_registers(BinWriter& w, const qtaccel::MachineState& ms) {
  for (const auto v : ms.rng) w.u64(v);
  w.u8(ms.episode_start ? 1 : 0);
  w.u64(ms.state);
  w.u64(ms.pending_action);
  w.u64(ms.episode_steps);
  for (const auto v : ms.wb_addrs) w.u64(v);
  w.u64(ms.stats.iterations);
  w.u64(ms.stats.samples);
  w.u64(ms.stats.episodes);
  w.u64(ms.stats.bubbles);
  w.u64(ms.stats.cycles);
  w.u64(ms.stats.issued);
  w.u64(ms.stats.stall_cycles);
  w.u64(ms.stats.fwd_q_sa);
  w.u64(ms.stats.fwd_q_next);
  w.u64(ms.stats.fwd_qmax);
  w.u64(ms.stats.adder_saturations);
  for (const auto v : ms.dsp_saturations) w.u64(v);
}

void read_v3_registers(BinReader& r, qtaccel::MachineState& ms,
                       std::uint64_t states) {
  for (auto& v : ms.rng) v = r.u64();
  ms.episode_start = r.u8() != 0;
  ms.state = static_cast<StateId>(r.u64());
  ms.pending_action = static_cast<ActionId>(r.u64());
  ms.episode_steps = r.u64();
  r.check(ms.state < states, "snapshot walk state out of range");
  for (auto& v : ms.wb_addrs) v = r.u64();
  ms.stats.iterations = r.u64();
  ms.stats.samples = r.u64();
  ms.stats.episodes = r.u64();
  ms.stats.bubbles = r.u64();
  ms.stats.cycles = r.u64();
  ms.stats.issued = r.u64();
  ms.stats.stall_cycles = r.u64();
  ms.stats.fwd_q_sa = r.u64();
  ms.stats.fwd_q_next = r.u64();
  ms.stats.fwd_qmax = r.u64();
  ms.stats.adder_saturations = r.u64();
  for (auto& v : ms.dsp_saturations) v = r.u64();
}

/// v3 full-image table block: the kind byte and fingerprint/registers
/// have already been consumed.
qtaccel::MachineState read_v3_full_body(BinReader& r,
                                        const qtaccel::PipelineConfig& config,
                                        const env::Environment& env) {
  const auto [states, actions] = read_v3_fingerprint(r, config, env);
  qtaccel::MachineState ms;
  read_v3_registers(r, ms, states);

  const qtaccel::AddressMap map = qtaccel::make_address_map(env);
  const std::uint64_t depth = map.depth();
  const fixed::Format qf = config.q_fmt;
  const auto read_table = [&](std::uint64_t expected, bool may_be_empty,
                              std::vector<fixed::raw_t>& out) {
    const std::uint64_t count = r.u64();
    r.check(count == expected || (may_be_empty && count == 0),
            "snapshot table size does not match the engine's geometry");
    out.resize(count);
    for (auto& v : out) {
      v = r.i64();
      r.check(v >= qf.min_raw() && v <= qf.max_raw(),
              "snapshot value outside the fixed-point range");
    }
  };
  read_table(depth, /*may_be_empty=*/false, ms.q);
  read_table(depth, /*may_be_empty=*/true, ms.q2);
  r.check(ms.q2.empty() ==
              (config.algorithm != qtaccel::Algorithm::kDoubleQ),
          "snapshot and config disagree on the second Q table");
  read_table(states, /*may_be_empty=*/false, ms.qmax_value);
  const std::uint64_t qmaxa_count = r.u64();
  r.check(qmaxa_count == states,
          "snapshot table size does not match the engine's geometry");
  ms.qmax_action.resize(qmaxa_count);
  for (auto& a : ms.qmax_action) {
    a = static_cast<ActionId>(r.u64());
    r.check(a < actions, "snapshot Qmax action out of range");
  }
  r.expect_end_sentinel();
  return ms;
}

/// Reads the text prolog shared by v2 and v3 and returns the version
/// token; for v3 also consumes the single '\n' that separates the
/// prolog from the binary payload.
std::string read_snapshot_prolog(std::istream& is,
                                 const SnapshotSource& src) {
  std::string magic, version;
  is >> magic;
  require(static_cast<bool>(is) && magic == kSnapshotMagic,
          "not a QTACCEL-SNAPSHOT file", src);
  is >> version;
  require(static_cast<bool>(is) &&
              (version == kSnapshotVersion || version == kSnapshotVersionV3),
          "unsupported SNAPSHOT version", src);
  if (version == kSnapshotVersionV3) {
    require(is.get() == '\n', "truncated or malformed snapshot header", src);
  }
  return version;
}

/// v3 body dispatch after the prolog: full images parse to a state;
/// standalone deltas are rejected — they only apply onto a base image
/// (apply_snapshot_delta).
qtaccel::MachineState read_v3_stream(std::istream& is,
                                     const qtaccel::PipelineConfig& config,
                                     const env::Environment& env,
                                     const SnapshotSource& src) {
  BinReader r(is, src);
  const std::uint8_t kind = r.u8();
  r.check(kind == kV3KindFull || kind == kV3KindDelta,
          "malformed snapshot kind");
  r.check(kind == kV3KindFull, "snapshot delta without a base image");
  return read_v3_full_body(r, config, env);
}

void apply_snapshot_delta_impl(std::istream& is,
                               const qtaccel::PipelineConfig& config,
                               const env::Environment& env,
                               qtaccel::MachineState& base,
                               const SnapshotSource& src) {
  const std::string version = read_snapshot_prolog(is, src);
  require(version == kSnapshotVersionV3,
          "snapshot delta must be a v3 stream", src);
  BinReader r(is, src);
  const std::uint8_t kind = r.u8();
  r.check(kind == kV3KindDelta, "expected a delta snapshot");
  const auto [states, actions] = read_v3_fingerprint(r, config, env);

  const qtaccel::AddressMap map = qtaccel::make_address_map(env);
  const std::uint64_t depth = map.depth();
  const std::uint64_t stride = std::uint64_t{1} << map.action_bits;
  const bool double_q = config.algorithm == qtaccel::Algorithm::kDoubleQ;
  r.check(base.q.size() == depth &&
              base.q2.size() == (double_q ? depth : 0) &&
              base.qmax_value.size() == states &&
              base.qmax_action.size() == states,
          "snapshot delta applied to a mismatched base image");

  // Registers/stats travel whole in every delta: last delta wins.
  read_v3_registers(r, base, states);

  const fixed::Format qf = config.q_fmt;
  const std::uint8_t has_q2 = r.u8();
  r.check((has_q2 != 0) == double_q,
          "snapshot and config disagree on the second Q table");
  const std::uint64_t row_count = r.u64();
  r.check(row_count <= states,
          "snapshot table size does not match the engine's geometry");
  std::uint64_t prev_plus_one = 0;  // rows are strictly ascending
  for (std::uint64_t i = 0; i < row_count; ++i) {
    const std::uint64_t s = r.u64();
    r.check(s < states && s >= prev_plus_one,
            "snapshot delta rows out of order");
    prev_plus_one = s + 1;
    const std::uint64_t row = s * stride;
    const auto read_row = [&](std::vector<fixed::raw_t>& table) {
      for (std::uint64_t j = 0; j < stride; ++j) {
        const fixed::raw_t v = r.i64();
        r.check(v >= qf.min_raw() && v <= qf.max_raw(),
                "snapshot value outside the fixed-point range");
        table[row + j] = v;
      }
    };
    read_row(base.q);
    if (has_q2 != 0) read_row(base.q2);
    const fixed::raw_t qv = r.i64();
    r.check(qv >= qf.min_raw() && qv <= qf.max_raw(),
            "snapshot value outside the fixed-point range");
    base.qmax_value[s] = qv;
    const std::uint64_t qa = r.u64();
    r.check(qa < actions, "snapshot Qmax action out of range");
    base.qmax_action[s] = static_cast<ActionId>(qa);
  }
  r.expect_end_sentinel();
  // The reconstructed state is of unknown epoch provenance; hand it to
  // load_state with the conservative default.
  base.dirty = qtaccel::DirtyRows{};
}

}  // namespace

void write_snapshot(std::ostream& os, const qtaccel::PipelineConfig& config,
                    const env::Environment& env,
                    const qtaccel::MachineState& ms) {
  os << kSnapshotMagic << ' ' << kSnapshotVersion << '\n';
  os << "algorithm " << static_cast<unsigned>(config.algorithm)
     << " hazard " << static_cast<unsigned>(config.hazard) << " qmax "
     << static_cast<unsigned>(config.qmax) << '\n';
  // Rates as IEEE-754 bit patterns: decimal round-trips of doubles lose
  // bits; the patterns never do.
  os << "alpha " << std::bit_cast<std::uint64_t>(config.alpha) << " gamma "
     << std::bit_cast<std::uint64_t>(config.gamma) << " epsilon "
     << std::bit_cast<std::uint64_t>(config.epsilon) << " epsilon_bits "
     << config.epsilon_bits << '\n';
  os << "qfmt " << config.q_fmt.width << ' ' << config.q_fmt.frac
     << " cfmt " << config.coeff_fmt.width << ' ' << config.coeff_fmt.frac
     << '\n';
  os << "max_episode_length " << config.max_episode_length << '\n';
  os << "states " << env.num_states() << " actions " << env.num_actions()
     << '\n';

  os << "rng";
  for (const auto w : ms.rng) os << ' ' << w;
  os << '\n';
  os << "walk " << (ms.episode_start ? 1 : 0) << ' ' << ms.state << ' '
     << ms.pending_action << ' ' << ms.episode_steps << '\n';
  os << "wb";
  for (const auto w : ms.wb_addrs) os << ' ' << w;
  os << '\n';
  os << "stats " << ms.stats.iterations << ' ' << ms.stats.samples << ' '
     << ms.stats.episodes << ' ' << ms.stats.bubbles << ' '
     << ms.stats.cycles << ' ' << ms.stats.issued << ' '
     << ms.stats.stall_cycles << ' ' << ms.stats.fwd_q_sa << ' '
     << ms.stats.fwd_q_next << ' ' << ms.stats.fwd_qmax << ' '
     << ms.stats.adder_saturations << '\n';
  os << "dsp";
  for (const auto w : ms.dsp_saturations) os << ' ' << w;
  os << '\n';

  write_words(os, "q", ms.q.size(), ms.q);
  write_words(os, "q2", ms.q2.size(), ms.q2);
  write_words(os, "qmaxv", ms.qmax_value.size(), ms.qmax_value);
  write_words(os, "qmaxa", ms.qmax_action.size(), ms.qmax_action);
  os << "end\n";
}

void write_snapshot_v3(std::ostream& os,
                       const qtaccel::PipelineConfig& config,
                       const env::Environment& env,
                       const qtaccel::MachineState& ms) {
  BinWriter w;
  write_v3_prolog_and_kind(os, w, kV3KindFull);
  write_v3_fingerprint(w, config, env);
  write_v3_registers(w, ms);
  const auto write_table = [&](const std::vector<fixed::raw_t>& table) {
    w.u64(table.size());
    for (const auto v : table) w.i64(v);
  };
  write_table(ms.q);
  write_table(ms.q2);
  write_table(ms.qmax_value);
  w.u64(ms.qmax_action.size());
  for (const auto a : ms.qmax_action) w.u64(a);
  w.end_sentinel();
  w.u8(static_cast<std::uint8_t>('\n'));
  w.flush(os);
}

void write_snapshot_delta(std::ostream& os,
                          const qtaccel::PipelineConfig& config,
                          const env::Environment& env,
                          const qtaccel::MachineState& ms) {
  BinWriter w;
  write_v3_prolog_and_kind(os, w, kV3KindDelta);
  write_v3_fingerprint(w, config, env);
  write_v3_registers(w, ms);

  const qtaccel::AddressMap map = qtaccel::make_address_map(env);
  const std::uint64_t stride = std::uint64_t{1} << map.action_bits;
  const std::uint64_t states = env.num_states();
  const bool has_q2 = !ms.q2.empty();
  w.u8(has_q2 ? 1 : 0);

  // A conservative epoch (all set, or a bitmap that does not match this
  // geometry) emits every row — correct, just not compact.
  const bool emit_all = ms.dirty.all || ms.dirty.rows.size() != states;
  std::uint64_t row_count = 0;
  for (std::uint64_t s = 0; s < states; ++s) {
    if (emit_all || ms.dirty.rows[s] != 0) ++row_count;
  }
  w.u64(row_count);
  for (std::uint64_t s = 0; s < states; ++s) {
    if (!emit_all && ms.dirty.rows[s] == 0) continue;
    w.u64(s);
    const std::uint64_t row = s * stride;
    for (std::uint64_t j = 0; j < stride; ++j) w.i64(ms.q[row + j]);
    if (has_q2) {
      for (std::uint64_t j = 0; j < stride; ++j) w.i64(ms.q2[row + j]);
    }
    w.i64(ms.qmax_value[s]);
    w.u64(ms.qmax_action[s]);
  }
  w.end_sentinel();
  w.u8(static_cast<std::uint8_t>('\n'));
  w.flush(os);
}

qtaccel::MachineState read_snapshot(std::istream& is,
                                    const qtaccel::PipelineConfig& config,
                                    const env::Environment& env,
                                    const SnapshotSource& source) {
  try {
    const std::string version = read_snapshot_prolog(is, source);
    if (version == kSnapshotVersion) {
      return read_snapshot_body(is, config, env, source);
    }
    return read_v3_stream(is, config, env, source);
  } catch (const SnapshotError& e) {
    abort_with(e);
  }
}

void apply_snapshot_delta(std::istream& is,
                          const qtaccel::PipelineConfig& config,
                          const env::Environment& env,
                          qtaccel::MachineState& base,
                          const SnapshotSource& source) {
  try {
    apply_snapshot_delta_impl(is, config, env, base, source);
  } catch (const SnapshotError& e) {
    abort_with(e);
  }
}

bool try_apply_snapshot_delta(std::istream& is,
                              const qtaccel::PipelineConfig& config,
                              const env::Environment& env,
                              qtaccel::MachineState& base,
                              std::string* error,
                              const SnapshotSource& source) {
  try {
    apply_snapshot_delta_impl(is, config, env, base, source);
    return true;
  } catch (const SnapshotError& e) {
    if (error != nullptr) *error = e.message;
    return false;
  }
}

void save_snapshot(const Engine& engine, std::ostream& os) {
  write_snapshot(os, engine.config(), engine.environment(),
                 engine.save_state());
}

void save_snapshot_v3(const Engine& engine, std::ostream& os) {
  write_snapshot_v3(os, engine.config(), engine.environment(),
                    engine.save_state());
}

namespace {

/// Shared by load_snapshot (aborting) and try_load_snapshot
/// (non-aborting); throws SnapshotError on any parse/validation failure.
void load_snapshot_impl(Engine& engine, std::istream& is,
                        const SnapshotSource& source) {
  std::string magic;
  is >> magic;
  require(static_cast<bool>(is) &&
              (magic == kSnapshotMagic || magic == kQtableMagic),
          "not a QTACCEL-QTABLE or QTACCEL-SNAPSHOT file", source);
  if (magic == kQtableMagic) {
    load_qtable_v1_body(is, engine, source);
    return;
  }
  std::string version;
  is >> version;
  require(static_cast<bool>(is) &&
              (version == kSnapshotVersion || version == kSnapshotVersionV3),
          "unsupported SNAPSHOT version", source);
  if (version == kSnapshotVersion) {
    engine.load_state(read_snapshot_body(is, engine.config(),
                                         engine.environment(), source));
    return;
  }
  require(is.get() == '\n', "truncated or malformed snapshot header",
          source);
  engine.load_state(read_v3_stream(is, engine.config(),
                                   engine.environment(), source));
}

}  // namespace

void load_snapshot(Engine& engine, std::istream& is,
                   const SnapshotSource& source) {
  try {
    load_snapshot_impl(engine, is, source);
  } catch (const SnapshotError& e) {
    abort_with(e);
  }
}

bool try_load_snapshot(Engine& engine, std::istream& is, std::string* error,
                       const SnapshotSource& source) {
  try {
    load_snapshot_impl(engine, is, source);
    return true;
  } catch (const SnapshotError& e) {
    if (error != nullptr) *error = e.message;
    return false;
  }
}

void save_snapshot_file(const Engine& engine, const std::string& path) {
  std::ofstream os(path);
  try {
    require(os.is_open(), "cannot open snapshot file for writing",
            SnapshotSource{path});
    save_snapshot(engine, os);
    os.flush();
    require(os.good(), "failed writing snapshot file", SnapshotSource{path});
  } catch (const SnapshotError& e) {
    abort_with(e);
  }
}

void load_snapshot_file(Engine& engine, const std::string& path) {
  std::ifstream is(path);
  try {
    require(is.is_open(), "cannot open snapshot file for reading",
            SnapshotSource{path});
  } catch (const SnapshotError& e) {
    abort_with(e);
  }
  load_snapshot(engine, is, SnapshotSource{path});
}

}  // namespace qta::runtime

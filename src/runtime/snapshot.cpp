#include "runtime/snapshot.h"

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "common/check.h"

namespace qta::runtime {

std::string SnapshotSource::describe() const {
  if (name.empty() && pipe < 0) return "";
  std::string out = " (";
  if (!name.empty()) out += name;
  if (pipe >= 0) {
    if (!name.empty()) out += ", ";
    out += "pipe " + std::to_string(pipe);
  }
  out += ")";
  return out;
}

namespace {

constexpr const char* kQtableMagic = "QTACCEL-QTABLE";
constexpr const char* kQtableVersion = "v1";

/// Parse failure carrying the full diagnostic. Internal only: the
/// aborting entry points catch it and re-raise through QTA_CHECK_MSG
/// (preserving the historical abort-with-message behavior and its
/// death-test regexes); try_load_snapshot catches it and reports the
/// message through its out-parameter instead, which is what makes the
/// parser fuzzable.
struct SnapshotError {
  std::string message;
};

/// Fails the parse with the snapshot's source context appended — the
/// leading message text is unchanged so existing death-test regexes
/// keep matching; the suffix names the file and pipe.
void require(bool ok, const char* msg, const SnapshotSource& src) {
  if (ok) return;
  throw SnapshotError{msg + src.describe()};
}

[[noreturn]] void abort_with(const SnapshotError& e) {
  QTA_CHECK_MSG(false, e.message.c_str());
  std::abort();  // unreachable: QTA_CHECK_MSG(false, ...) terminates
}

void expect_key(std::istream& is, const char* key,
                const SnapshotSource& src) {
  std::string tok;
  is >> tok;
  require(static_cast<bool>(is) && tok == key,
          "truncated or malformed snapshot header", src);
}

template <typename T>
T read_value(std::istream& is, const SnapshotSource& src) {
  T v{};
  is >> v;
  require(static_cast<bool>(is), "truncated snapshot payload", src);
  return v;
}

void write_words(std::ostream& os, const char* key, std::size_t count,
                 const auto& values) {
  os << key << ' ' << count;
  for (std::size_t i = 0; i < count; ++i) {
    // Wrap every 16 words: keeps lines reviewable without affecting the
    // whitespace-agnostic reader.
    os << (i % 16 == 0 ? '\n' : ' ') << values[i];
  }
  os << '\n';
}

// --- v1 warm-start path (the old table_io loader, retargeted) ---

void load_qtable_v1_body(std::istream& is, Engine& engine,
                         const SnapshotSource& src) {
  std::string version, key;
  is >> version;
  require(static_cast<bool>(is) && version == kQtableVersion,
          "unsupported QTABLE version", src);

  StateId states = 0;
  ActionId actions = 0;
  unsigned width = 0, frac = 0;
  is >> key >> states;
  require(static_cast<bool>(is) && key == "states",
          "malformed header: states", src);
  is >> key >> actions;
  require(static_cast<bool>(is) && key == "actions",
          "malformed header: actions", src);
  is >> key >> width;
  require(static_cast<bool>(is) && key == "width",
          "malformed header: width", src);
  is >> key >> frac;
  require(static_cast<bool>(is) && key == "frac",
          "malformed header: frac", src);

  const env::Environment& env = engine.environment();
  const fixed::Format fmt = engine.config().q_fmt;
  require(states == env.num_states() && actions == env.num_actions(),
          "table geometry does not match the pipeline's environment", src);
  require(width == fmt.width && frac == fmt.frac,
          "fixed-point format does not match the pipeline's config", src);

  for (StateId s = 0; s < states; ++s) {
    for (ActionId a = 0; a < actions; ++a) {
      fixed::raw_t v = 0;
      is >> v;
      require(static_cast<bool>(is), "truncated QTABLE payload", src);
      require(v >= fmt.min_raw() && v <= fmt.max_raw(),
              "QTABLE value outside the fixed-point range", src);
      engine.preset_q(s, a, v);
    }
  }
  engine.rebuild_qmax();
}

qtaccel::MachineState read_snapshot_body(std::istream& is,
                                         const qtaccel::PipelineConfig& config,
                                         const env::Environment& env,
                                         const SnapshotSource& src) {
  // --- fingerprint ---
  expect_key(is, "algorithm", src);
  const auto algorithm = read_value<unsigned>(is, src);
  expect_key(is, "hazard", src);
  const auto hazard = read_value<unsigned>(is, src);
  expect_key(is, "qmax", src);
  const auto qmax = read_value<unsigned>(is, src);
  expect_key(is, "alpha", src);
  const auto alpha_bits = read_value<std::uint64_t>(is, src);
  expect_key(is, "gamma", src);
  const auto gamma_bits = read_value<std::uint64_t>(is, src);
  expect_key(is, "epsilon", src);
  const auto epsilon_bits_pattern = read_value<std::uint64_t>(is, src);
  expect_key(is, "epsilon_bits", src);
  const auto epsilon_bits = read_value<unsigned>(is, src);
  expect_key(is, "qfmt", src);
  const auto q_width = read_value<unsigned>(is, src);
  const auto q_frac = read_value<unsigned>(is, src);
  expect_key(is, "cfmt", src);
  const auto c_width = read_value<unsigned>(is, src);
  const auto c_frac = read_value<unsigned>(is, src);
  expect_key(is, "max_episode_length", src);
  const auto max_episode_length = read_value<std::uint64_t>(is, src);
  expect_key(is, "states", src);
  const auto states = read_value<StateId>(is, src);
  expect_key(is, "actions", src);
  const auto actions = read_value<ActionId>(is, src);

  require(states == env.num_states() && actions == env.num_actions(),
          "snapshot geometry does not match the engine's environment", src);
  require(
      algorithm == static_cast<unsigned>(config.algorithm) &&
          hazard == static_cast<unsigned>(config.hazard) &&
          qmax == static_cast<unsigned>(config.qmax) &&
          alpha_bits == std::bit_cast<std::uint64_t>(config.alpha) &&
          gamma_bits == std::bit_cast<std::uint64_t>(config.gamma) &&
          epsilon_bits_pattern == std::bit_cast<std::uint64_t>(
                                      config.epsilon) &&
          epsilon_bits == config.epsilon_bits &&
          q_width == config.q_fmt.width && q_frac == config.q_fmt.frac &&
          c_width == config.coeff_fmt.width &&
          c_frac == config.coeff_fmt.frac &&
          max_episode_length == config.max_episode_length,
      "snapshot fingerprint does not match the engine's config", src);

  qtaccel::MachineState ms;

  // --- registers ---
  expect_key(is, "rng", src);
  for (auto& w : ms.rng) w = read_value<std::uint64_t>(is, src);
  expect_key(is, "walk", src);
  ms.episode_start = read_value<unsigned>(is, src) != 0;
  ms.state = read_value<StateId>(is, src);
  ms.pending_action = read_value<ActionId>(is, src);
  ms.episode_steps = read_value<std::uint64_t>(is, src);
  require(ms.state < states, "snapshot walk state out of range", src);
  expect_key(is, "wb", src);
  for (auto& w : ms.wb_addrs) w = read_value<std::uint64_t>(is, src);
  expect_key(is, "stats", src);
  ms.stats.iterations = read_value<std::uint64_t>(is, src);
  ms.stats.samples = read_value<std::uint64_t>(is, src);
  ms.stats.episodes = read_value<std::uint64_t>(is, src);
  ms.stats.bubbles = read_value<std::uint64_t>(is, src);
  ms.stats.cycles = read_value<std::uint64_t>(is, src);
  ms.stats.issued = read_value<std::uint64_t>(is, src);
  ms.stats.stall_cycles = read_value<std::uint64_t>(is, src);
  ms.stats.fwd_q_sa = read_value<std::uint64_t>(is, src);
  ms.stats.fwd_q_next = read_value<std::uint64_t>(is, src);
  ms.stats.fwd_qmax = read_value<std::uint64_t>(is, src);
  ms.stats.adder_saturations = read_value<std::uint64_t>(is, src);
  expect_key(is, "dsp", src);
  for (auto& w : ms.dsp_saturations) w = read_value<std::uint64_t>(is, src);

  // --- tables ---
  const qtaccel::AddressMap map = qtaccel::make_address_map(env);
  const std::uint64_t depth = map.depth();
  const fixed::Format qf = config.q_fmt;
  const auto read_table = [&](const char* key, std::uint64_t expected,
                              bool may_be_empty,
                              std::vector<fixed::raw_t>& out) {
    expect_key(is, key, src);
    const auto count = read_value<std::uint64_t>(is, src);
    require(count == expected || (may_be_empty && count == 0),
            "snapshot table size does not match the engine's "
            "geometry",
            src);
    out.resize(count);
    for (auto& v : out) {
      v = read_value<fixed::raw_t>(is, src);
      require(v >= qf.min_raw() && v <= qf.max_raw(),
              "snapshot value outside the fixed-point range", src);
    }
  };
  read_table("q", depth, /*may_be_empty=*/false, ms.q);
  read_table("q2", depth, /*may_be_empty=*/true, ms.q2);
  require(ms.q2.empty() ==
              (config.algorithm != qtaccel::Algorithm::kDoubleQ),
          "snapshot and config disagree on the second Q table", src);
  read_table("qmaxv", states, /*may_be_empty=*/false, ms.qmax_value);
  expect_key(is, "qmaxa", src);
  const auto qmaxa_count = read_value<std::uint64_t>(is, src);
  require(qmaxa_count == states,
          "snapshot table size does not match the engine's geometry", src);
  ms.qmax_action.resize(qmaxa_count);
  for (auto& a : ms.qmax_action) {
    a = read_value<ActionId>(is, src);
    require(a < actions, "snapshot Qmax action out of range", src);
  }

  // The sentinel catches files truncated between sections, which token
  // reads alone would not (eof after a complete section parses cleanly).
  expect_key(is, "end", src);
  return ms;
}

}  // namespace

void write_snapshot(std::ostream& os, const qtaccel::PipelineConfig& config,
                    const env::Environment& env,
                    const qtaccel::MachineState& ms) {
  os << kSnapshotMagic << ' ' << kSnapshotVersion << '\n';
  os << "algorithm " << static_cast<unsigned>(config.algorithm)
     << " hazard " << static_cast<unsigned>(config.hazard) << " qmax "
     << static_cast<unsigned>(config.qmax) << '\n';
  // Rates as IEEE-754 bit patterns: decimal round-trips of doubles lose
  // bits; the patterns never do.
  os << "alpha " << std::bit_cast<std::uint64_t>(config.alpha) << " gamma "
     << std::bit_cast<std::uint64_t>(config.gamma) << " epsilon "
     << std::bit_cast<std::uint64_t>(config.epsilon) << " epsilon_bits "
     << config.epsilon_bits << '\n';
  os << "qfmt " << config.q_fmt.width << ' ' << config.q_fmt.frac
     << " cfmt " << config.coeff_fmt.width << ' ' << config.coeff_fmt.frac
     << '\n';
  os << "max_episode_length " << config.max_episode_length << '\n';
  os << "states " << env.num_states() << " actions " << env.num_actions()
     << '\n';

  os << "rng";
  for (const auto w : ms.rng) os << ' ' << w;
  os << '\n';
  os << "walk " << (ms.episode_start ? 1 : 0) << ' ' << ms.state << ' '
     << ms.pending_action << ' ' << ms.episode_steps << '\n';
  os << "wb";
  for (const auto w : ms.wb_addrs) os << ' ' << w;
  os << '\n';
  os << "stats " << ms.stats.iterations << ' ' << ms.stats.samples << ' '
     << ms.stats.episodes << ' ' << ms.stats.bubbles << ' '
     << ms.stats.cycles << ' ' << ms.stats.issued << ' '
     << ms.stats.stall_cycles << ' ' << ms.stats.fwd_q_sa << ' '
     << ms.stats.fwd_q_next << ' ' << ms.stats.fwd_qmax << ' '
     << ms.stats.adder_saturations << '\n';
  os << "dsp";
  for (const auto w : ms.dsp_saturations) os << ' ' << w;
  os << '\n';

  write_words(os, "q", ms.q.size(), ms.q);
  write_words(os, "q2", ms.q2.size(), ms.q2);
  write_words(os, "qmaxv", ms.qmax_value.size(), ms.qmax_value);
  write_words(os, "qmaxa", ms.qmax_action.size(), ms.qmax_action);
  os << "end\n";
}

qtaccel::MachineState read_snapshot(std::istream& is,
                                    const qtaccel::PipelineConfig& config,
                                    const env::Environment& env,
                                    const SnapshotSource& source) {
  try {
    std::string magic, version;
    is >> magic;
    require(static_cast<bool>(is) && magic == kSnapshotMagic,
            "not a QTACCEL-SNAPSHOT file", source);
    is >> version;
    require(static_cast<bool>(is) && version == kSnapshotVersion,
            "unsupported SNAPSHOT version", source);
    return read_snapshot_body(is, config, env, source);
  } catch (const SnapshotError& e) {
    abort_with(e);
  }
}

void save_snapshot(const Engine& engine, std::ostream& os) {
  write_snapshot(os, engine.config(), engine.environment(),
                 engine.save_state());
}

namespace {

/// Shared by load_snapshot (aborting) and try_load_snapshot
/// (non-aborting); throws SnapshotError on any parse/validation failure.
void load_snapshot_impl(Engine& engine, std::istream& is,
                        const SnapshotSource& source) {
  std::string magic;
  is >> magic;
  require(static_cast<bool>(is) &&
              (magic == kSnapshotMagic || magic == kQtableMagic),
          "not a QTACCEL-QTABLE or QTACCEL-SNAPSHOT file", source);
  if (magic == kQtableMagic) {
    load_qtable_v1_body(is, engine, source);
    return;
  }
  std::string version;
  is >> version;
  require(static_cast<bool>(is) && version == kSnapshotVersion,
          "unsupported SNAPSHOT version", source);
  engine.load_state(read_snapshot_body(is, engine.config(),
                                       engine.environment(), source));
}

}  // namespace

void load_snapshot(Engine& engine, std::istream& is,
                   const SnapshotSource& source) {
  try {
    load_snapshot_impl(engine, is, source);
  } catch (const SnapshotError& e) {
    abort_with(e);
  }
}

bool try_load_snapshot(Engine& engine, std::istream& is, std::string* error,
                       const SnapshotSource& source) {
  try {
    load_snapshot_impl(engine, is, source);
    return true;
  } catch (const SnapshotError& e) {
    if (error != nullptr) *error = e.message;
    return false;
  }
}

void save_snapshot_file(const Engine& engine, const std::string& path) {
  std::ofstream os(path);
  try {
    require(os.is_open(), "cannot open snapshot file for writing",
            SnapshotSource{path});
    save_snapshot(engine, os);
    os.flush();
    require(os.good(), "failed writing snapshot file", SnapshotSource{path});
  } catch (const SnapshotError& e) {
    abort_with(e);
  }
}

void load_snapshot_file(Engine& engine, const std::string& path) {
  std::ifstream is(path);
  try {
    require(is.is_open(), "cannot open snapshot file for reading",
            SnapshotSource{path});
  } catch (const SnapshotError& e) {
    abort_with(e);
  }
  load_snapshot(engine, is, SnapshotSource{path});
}

}  // namespace qta::runtime

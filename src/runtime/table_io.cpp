#include "runtime/table_io.h"

#include <ostream>

#include "runtime/snapshot.h"

namespace qta::runtime {

void save_q_table(std::ostream& os, const Engine& engine) {
  const env::Environment& env = engine.environment();
  const fixed::Format fmt = engine.config().q_fmt;
  os << "QTACCEL-QTABLE v1\n"
     << "states " << env.num_states() << " actions " << env.num_actions()
     << " width " << fmt.width << " frac " << fmt.frac << '\n';
  for (StateId s = 0; s < env.num_states(); ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      if (a) os << ' ';
      os << engine.q_raw(s, a);
    }
    os << '\n';
  }
}

void load_q_table(std::istream& is, Engine& engine) {
  // One loader for every format: the snapshot layer sniffs the magic
  // and takes the v1 warm-start path or the v2/v3 full-restore path.
  load_snapshot(engine, is);
}

}  // namespace qta::runtime

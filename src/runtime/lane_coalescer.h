// Lane coalescing: run many same-shape sessions as one LaneEngine group.
//
// The lanes backend (qtaccel/lane_engine.h) advances N independent
// pipelines per round, but a runtime::Engine built with Backend::kLanes
// holds a one-lane group — each session is its own engine, as the
// serving and fleet layers require for eviction, snapshots, and
// per-session telemetry. This header is the bridge: LaneGroupRunner
// takes a batch of lane-backed engines, migrates every engine's machine
// state into one multi-lane group (take_state/put_state — vector moves,
// no table copies), runs the group, and donates the states back on
// destruction. The engines are sequestered while the runner lives
// (their tables are moved out); everything about them is restored —
// stats, rings, RNG registers, tables — so the detour through the group
// is bit-invisible: each session ends exactly where a solo FastEngine
// run would have left it.
//
// Callers: IndependentPipelines::run_samples_each coalesces its whole
// fleet when the config picks the lanes backend, and the qtserved batch
// path (serve/server.cpp pump()) groups compatible kStep requests from
// one pump batch. Compatibility is LaneEngine::compatible — lanes must
// agree on (algorithm, qmax, hazard); seeds, rates, formats, and
// environments may differ per lane.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/engine.h"

namespace qta::telemetry {
class TraceSession;
}  // namespace qta::telemetry

namespace qta::runtime {

/// True when `engine` runs the lanes backend (its state can migrate
/// into a lane group in O(1)).
bool is_lane_backend(const Engine& engine);

/// True when `a` and `b` may share one lane group: both lane-backed and
/// LaneEngine::compatible on their configs.
bool can_coalesce(const Engine& a, const Engine& b);

class LaneGroupRunner {
 public:
  /// Adopts the engines' machine states into a fresh lane group (lane i
  /// = engines[i]). Aborts unless every engine is lane-backed and
  /// compatible with engines[0]. Per-lane trace/telemetry sinks follow
  /// the state into the group. The engines and their environments must
  /// outlive the runner; do not run or query them while it lives.
  explicit LaneGroupRunner(std::vector<Engine*> engines);
  /// Migrates every lane's state back to its engine.
  ~LaneGroupRunner();

  LaneGroupRunner(const LaneGroupRunner&) = delete;
  LaneGroupRunner& operator=(const LaneGroupRunner&) = delete;

  /// Span attribution (qtscope): after this, every run emits one
  /// "lane_group" Perfetto span on `trace`'s (pid, tid) track, stamped
  /// with the group size and per-lane retired-sample deltas as args —
  /// the coalesced-batch counterpart of the server's per-request
  /// "execute" spans. `trace` must outlive the runner; null detaches.
  void set_trace(telemetry::TraceSession* trace, std::uint32_t pid,
                 std::uint32_t tid);

  /// Advances engine i BY steps[i] samples (the serve Step contract:
  /// absolute targets are computed from each lane's retired total, so a
  /// pipeline-drain overshoot from an earlier run is not re-counted).
  void run_steps(const std::vector<std::uint64_t>& steps);
  /// Advances engine i TO the absolute target targets[i] (the
  /// Engine::run_samples contract; engines at or past target don't
  /// tick).
  void run_to_targets(const std::vector<std::uint64_t>& targets);

  std::size_t size() const { return engines_.size(); }
  /// Retired-sample stats for lane i while the group holds the state.
  const qtaccel::PipelineStats& stats(std::size_t i) const;

 private:
  void run_group(const std::vector<std::uint64_t>& targets);

  std::vector<Engine*> engines_;
  std::unique_ptr<qtaccel::LaneEngine> group_;
  telemetry::TraceSession* trace_ = nullptr;
  std::uint32_t trace_pid_ = 0;
  std::uint32_t trace_tid_ = 0;
};

}  // namespace qta::runtime

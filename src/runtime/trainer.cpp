#include "runtime/trainer.h"

#include <algorithm>

#include "common/check.h"
#include "runtime/snapshot.h"

namespace qta::runtime {

TrainResult train(Engine& engine, const TrainOptions& options) {
  QTA_CHECK_MSG(options.chunk_samples > 0, "chunk_samples must be nonzero");
  QTA_CHECK_MSG(options.snapshot_interval == 0 ||
                    !options.snapshot_path.empty(),
                "snapshot_interval needs a snapshot_path");

  TrainResult result;
  std::uint64_t next_probe =
      options.probe_interval == 0
          ? ~std::uint64_t{0}
          : engine.stats().samples + options.probe_interval;
  std::uint64_t next_snapshot =
      options.snapshot_interval == 0
          ? ~std::uint64_t{0}
          : engine.stats().samples + options.snapshot_interval;

  while (engine.stats().samples < options.total_samples) {
    const std::uint64_t target =
        std::min(options.total_samples,
                 engine.stats().samples + options.chunk_samples);
    engine.run_samples(target);
    const std::uint64_t done = engine.stats().samples;
    if (options.probe && done >= next_probe) {
      options.probe(done);
      next_probe = done + options.probe_interval;
    }
    if (done >= next_snapshot) {
      save_snapshot_file(engine, options.snapshot_path);
      ++result.snapshots_written;
      next_snapshot = done + options.snapshot_interval;
    }
  }

  result.samples = engine.stats().samples;
  result.episodes = engine.stats().episodes;
  return result;
}

}  // namespace qta::runtime

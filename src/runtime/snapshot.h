// Backend-generic machine snapshots: QTACCEL-SNAPSHOT v2 (text) and
// v3 (compact binary, full images and dirty-row deltas).
//
// A snapshot captures a complete drained machine state
// (qtaccel/machine_state.h) plus a config fingerprint, in a versioned
// format. Raw fixed-point words and the bit patterns of the
// floating-point rates are stored, so a round trip is lossless and
// `run(N); save; load; run(M)` resumes bit-exactly — on either backend,
// and across backends (save on cycle, resume on fast, or the reverse).
//
// v2 format (whitespace-separated; docs/runtime.md has the full spec
// and the versioning policy):
//
//   QTACCEL-SNAPSHOT v2
//   algorithm <0-3> hazard <0-1> qmax <0-1>
//   alpha <u64 bits> gamma <u64 bits> epsilon <u64 bits> epsilon_bits <n>
//   qfmt <width> <frac> cfmt <width> <frac>
//   max_episode_length <n>
//   states <|S|> actions <|A|>
//   rng <4 words>         walk <start> <state> <action> <steps>
//   wb <3 tagged addrs>   stats <11 counters>   dsp <3 counters>
//   q <count> <words...>  q2 <count> <words...>
//   qmaxv <count> <words...>  qmaxa <count> <words...>
//   end
//
// v3 keeps the same text prolog tokens ("QTACCEL-SNAPSHOT v3\n"), so
// the existing magic sniffing distinguishes v1/v2/v3, then switches to
// a little-endian binary payload: a kind byte (full image or dirty-row
// delta), the same fingerprint and register blocks as fixed-width
// words, tables as raw LE words, and an 8-byte end sentinel that
// catches truncation. A delta serializes only the rows marked in the
// engine's dirty-row epoch (machine_state.h DirtyRows) and replays
// onto a previously decoded base image to a byte-identical machine
// state. docs/runtime.md has the field-by-field grammar.
//
// The fingerprint covers everything that changes the machine's future
// behavior — algorithm, hazard, qmax mode, quantized rates, formats,
// geometry — and deliberately EXCLUDES `seed` (the live LFSR registers
// are part of the state; the seed only chose their t=0 value) and
// `backend` (snapshots are the bridge between backends).
//
// The v1 QTACCEL-QTABLE format stays loadable: load_snapshot sniffs the
// magic and routes v1 files through the warm-start path (preset_q +
// rebuild_qmax), exactly as the old table_io loader did. v2 stays both
// readable AND writable — it is the interchange/debug format; v3 is
// the bulk park/checkpoint format.
#pragma once

#include <iosfwd>
#include <string>

#include "env/environment.h"
#include "qtaccel/config.h"
#include "qtaccel/machine_state.h"
#include "runtime/engine.h"

namespace qta::runtime {

inline constexpr const char* kSnapshotMagic = "QTACCEL-SNAPSHOT";
inline constexpr const char* kSnapshotVersion = "v2";
inline constexpr const char* kSnapshotVersionV3 = "v3";

/// Full-image format selector for writers that can emit either version
/// (multi_pipeline checkpoints, serve parking). Readers never need it —
/// read_snapshot/load_snapshot sniff the version token per stream.
enum class SnapshotFormat { kV2Text, kV3Binary };

/// Where a snapshot/checkpoint stream came from, for diagnostics. Load
/// failures keep their original leading message text (existing death
/// tests and scripts match on it) and append this context, so a pool
/// restore that dies names the offending file and pipe index instead of
/// leaving the user to bisect a multi-snapshot stream by hand.
struct SnapshotSource {
  std::string name;  ///< file path or stream label; "" = anonymous stream
  int pipe = -1;     ///< pool pipe/engine index; -1 = not pool-scoped
  /// " (name, pipe N)" / " (name)" / " (pipe N)" / "".
  std::string describe() const;
};

/// Serializes a machine state with `config`/`env` as its fingerprint.
/// Operates on the raw state so pools of bare pipelines (multi_pipeline)
/// reuse the same writer; most callers use save_snapshot(engine, os).
void write_snapshot(std::ostream& os, const qtaccel::PipelineConfig& config,
                    const env::Environment& env,
                    const qtaccel::MachineState& ms);

/// v3 binary counterpart of write_snapshot: same fingerprint and
/// machine state, raw little-endian words instead of text. A v3 full
/// image's size is a fixed function of the geometry (no integer
/// formatting on either side), beating the text form once table values
/// are wide; the delta kind below is where the real savings live
/// (docs/runtime.md has measured numbers).
void write_snapshot_v3(std::ostream& os,
                       const qtaccel::PipelineConfig& config,
                       const env::Environment& env,
                       const qtaccel::MachineState& ms);

/// v3 dirty-row delta: serializes the registers/stats plus ONLY the
/// table rows marked in `ms.dirty` (qtaccel/machine_state.h DirtyRows)
/// at their final values. A conservative epoch (`ms.dirty.all`) emits
/// every row. Replaying the delta onto the base image the epoch started
/// from (apply_snapshot_delta) reproduces `ms` byte-identically.
void write_snapshot_delta(std::ostream& os,
                          const qtaccel::PipelineConfig& config,
                          const env::Environment& env,
                          const qtaccel::MachineState& ms);

/// Parses a v2 text or v3 binary FULL snapshot (sniffed from the
/// version token) and validates its fingerprint against `config`/`env`;
/// aborts with a diagnostic on a foreign magic, an unsupported version,
/// a standalone delta, a fingerprint mismatch, or truncation. The
/// diagnostic carries `source` (file path / pipe index) when given; v3
/// diagnostics also carry the byte offset into the binary payload.
qtaccel::MachineState read_snapshot(std::istream& is,
                                    const qtaccel::PipelineConfig& config,
                                    const env::Environment& env,
                                    const SnapshotSource& source = {});

/// Replays a v3 delta onto `base` (a machine state decoded from the
/// full image — possibly plus earlier deltas — that the delta's dirty
/// epoch started from). Registers/stats are overwritten wholesale (last
/// delta wins); marked rows land at their serialized final values.
/// Aborts with the same diagnostics as read_snapshot on mismatch,
/// corruption, or truncation. `base.dirty` is reset to the conservative
/// default; callers resuming an engine from the result should
/// reset_dirty_rows() to open a fresh epoch.
void apply_snapshot_delta(std::istream& is,
                          const qtaccel::PipelineConfig& config,
                          const env::Environment& env,
                          qtaccel::MachineState& base,
                          const SnapshotSource& source = {});

/// Non-aborting apply_snapshot_delta (the delta-grammar entry point for
/// untrusted bytes, driven by tests/fuzz/snapshot_fuzz.cpp): a
/// malformed/foreign/truncated stream returns false with `*error` set.
/// `base` may hold a partially applied state on failure — apply into a
/// scratch copy when atomicity matters.
bool try_apply_snapshot_delta(std::istream& is,
                              const qtaccel::PipelineConfig& config,
                              const env::Environment& env,
                              qtaccel::MachineState& base,
                              std::string* error,
                              const SnapshotSource& source = {});

/// Drained-engine snapshot (engines are always drained between run_*
/// calls, so any point between calls is a valid save point).
void save_snapshot(const Engine& engine, std::ostream& os);

/// Drained-engine v3 full binary snapshot.
void save_snapshot_v3(const Engine& engine, std::ostream& os);

/// Restores `engine` from a QTACCEL-SNAPSHOT v2 text or v3 full binary
/// stream (full machine state), or a QTACCEL-QTABLE v1 stream (Q table
/// only: warm start via preset_q + rebuild_qmax, leaving counters and
/// RNG state at their current values). A standalone v3 delta is
/// rejected with a clean diagnostic — deltas only apply onto a decoded
/// base image (apply_snapshot_delta).
void load_snapshot(Engine& engine, std::istream& is,
                   const SnapshotSource& source = {});

/// Non-aborting load_snapshot: same sniffing, validation, and
/// diagnostics, but a malformed/foreign/truncated stream returns false
/// (setting `*error` to the message load_snapshot would have aborted
/// with) instead of terminating the process. This is the entry point
/// for untrusted bytes — the snapshot fuzz harness drives it
/// (tests/fuzz/snapshot_fuzz.cpp). Caveat: the v1 warm-start path
/// mutates the engine while parsing, so on a false return from a v1
/// stream the engine may hold a partial table; parse into a scratch
/// engine when atomicity matters. The v2 and v3 paths validate fully
/// before load_state, so a false return leaves the engine untouched.
bool try_load_snapshot(Engine& engine, std::istream& is, std::string* error,
                       const SnapshotSource& source = {});

/// File helpers; abort with a diagnostic (naming the path) when the
/// file cannot be opened/written or fails to parse.
void save_snapshot_file(const Engine& engine, const std::string& path);
void load_snapshot_file(Engine& engine, const std::string& path);

}  // namespace qta::runtime

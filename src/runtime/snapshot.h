// Backend-generic machine snapshots: QTACCEL-SNAPSHOT v2.
//
// A snapshot captures a complete drained machine state
// (qtaccel/machine_state.h) plus a config fingerprint, in a versioned
// plain-text format. Raw fixed-point words and the bit patterns of the
// floating-point rates are stored, so a round trip is lossless and
// `run(N); save; load; run(M)` resumes bit-exactly — on either backend,
// and across backends (save on cycle, resume on fast, or the reverse).
//
// Format (whitespace-separated; docs/runtime.md has the full spec and
// the versioning policy):
//
//   QTACCEL-SNAPSHOT v2
//   algorithm <0-3> hazard <0-1> qmax <0-1>
//   alpha <u64 bits> gamma <u64 bits> epsilon <u64 bits> epsilon_bits <n>
//   qfmt <width> <frac> cfmt <width> <frac>
//   max_episode_length <n>
//   states <|S|> actions <|A|>
//   rng <4 words>         walk <start> <state> <action> <steps>
//   wb <3 tagged addrs>   stats <11 counters>   dsp <3 counters>
//   q <count> <words...>  q2 <count> <words...>
//   qmaxv <count> <words...>  qmaxa <count> <words...>
//   end
//
// The fingerprint covers everything that changes the machine's future
// behavior — algorithm, hazard, qmax mode, quantized rates, formats,
// geometry — and deliberately EXCLUDES `seed` (the live LFSR registers
// are part of the state; the seed only chose their t=0 value) and
// `backend` (snapshots are the bridge between backends).
//
// The v1 QTACCEL-QTABLE format stays loadable: load_snapshot sniffs the
// magic and routes v1 files through the warm-start path (preset_q +
// rebuild_qmax), exactly as the old table_io loader did.
#pragma once

#include <iosfwd>
#include <string>

#include "env/environment.h"
#include "qtaccel/config.h"
#include "qtaccel/machine_state.h"
#include "runtime/engine.h"

namespace qta::runtime {

inline constexpr const char* kSnapshotMagic = "QTACCEL-SNAPSHOT";
inline constexpr const char* kSnapshotVersion = "v2";

/// Where a snapshot/checkpoint stream came from, for diagnostics. Load
/// failures keep their original leading message text (existing death
/// tests and scripts match on it) and append this context, so a pool
/// restore that dies names the offending file and pipe index instead of
/// leaving the user to bisect a multi-snapshot stream by hand.
struct SnapshotSource {
  std::string name;  ///< file path or stream label; "" = anonymous stream
  int pipe = -1;     ///< pool pipe/engine index; -1 = not pool-scoped
  /// " (name, pipe N)" / " (name)" / " (pipe N)" / "".
  std::string describe() const;
};

/// Serializes a machine state with `config`/`env` as its fingerprint.
/// Operates on the raw state so pools of bare pipelines (multi_pipeline)
/// reuse the same writer; most callers use save_snapshot(engine, os).
void write_snapshot(std::ostream& os, const qtaccel::PipelineConfig& config,
                    const env::Environment& env,
                    const qtaccel::MachineState& ms);

/// Parses a v2 snapshot and validates its fingerprint against
/// `config`/`env`; aborts with a diagnostic on a foreign magic, an
/// unsupported version, a fingerprint mismatch, or truncation. The
/// diagnostic carries `source` (file path / pipe index) when given.
qtaccel::MachineState read_snapshot(std::istream& is,
                                    const qtaccel::PipelineConfig& config,
                                    const env::Environment& env,
                                    const SnapshotSource& source = {});

/// Drained-engine snapshot (engines are always drained between run_*
/// calls, so any point between calls is a valid save point).
void save_snapshot(const Engine& engine, std::ostream& os);

/// Restores `engine` from a QTACCEL-SNAPSHOT v2 (full machine state) or
/// a QTACCEL-QTABLE v1 stream (Q table only: warm start via preset_q +
/// rebuild_qmax, leaving counters and RNG state at their current values).
void load_snapshot(Engine& engine, std::istream& is,
                   const SnapshotSource& source = {});

/// Non-aborting load_snapshot: same sniffing, validation, and
/// diagnostics, but a malformed/foreign/truncated stream returns false
/// (setting `*error` to the message load_snapshot would have aborted
/// with) instead of terminating the process. This is the entry point
/// for untrusted bytes — the snapshot fuzz harness drives it
/// (tests/fuzz/snapshot_fuzz.cpp). Caveat: the v1 warm-start path
/// mutates the engine while parsing, so on a false return from a v1
/// stream the engine may hold a partial table; parse into a scratch
/// engine when atomicity matters. The v2 path validates fully before
/// load_state, so a false return leaves the engine untouched.
bool try_load_snapshot(Engine& engine, std::istream& is, std::string* error,
                       const SnapshotSource& source = {});

/// File helpers; abort with a diagnostic (naming the path) when the
/// file cannot be opened/written or fails to parse.
void save_snapshot_file(const Engine& engine, const std::string& path);
void load_snapshot_file(Engine& engine, const std::string& path);

}  // namespace qta::runtime

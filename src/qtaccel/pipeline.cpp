#include "qtaccel/pipeline.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>

#include "common/check.h"
#include "env/value_iteration.h"
#include "qtaccel/machine_state.h"

namespace qta::qtaccel {

namespace {
constexpr const char* kDspR = "stage3: alpha * R";
constexpr const char* kDspOld = "stage3: (1-alpha) * Q(S,A)";
constexpr const char* kDspNext = "stage3: (alpha*gamma) * Q(S',A')";

// Position (1 = newest) of the queue entry that serviced a known-hit
// address — telemetry-only re-probe, never consulted by the datapath.
std::uint8_t fwd_distance(const WritebackQueue& wbq, std::uint64_t addr) {
  for (unsigned w = 1; w <= WritebackQueue::kDepth; ++w) {
    if (wbq.match_q(addr, w)) return static_cast<std::uint8_t>(w);
  }
  return 0;
}
}  // namespace

Pipeline::Pipeline(const env::Environment& env, const PipelineConfig& config)
    : env_(env),
      config_(config),
      map_(make_address_map(env)),
      coeff_(make_coefficients(config)),
      eps_threshold_(
          epsilon_threshold(config.epsilon, config.epsilon_bits)),
      rng_(config.seed, map_),
      dsp_r_(kDspR, config.q_fmt, config.coeff_fmt, config.q_fmt),
      dsp_old_(kDspOld, config.q_fmt, config.coeff_fmt, config.q_fmt),
      dsp_next_(kDspNext, config.q_fmt, config.coeff_fmt, config.q_fmt) {
  validate_config(config, env);
  // Double-Q's stage-2 cross-table read gets a third (double-pumped)
  // port: the scalar budget is stage-1 read + stage-4 write + cross read.
  const unsigned q_ports = config.algorithm == Algorithm::kDoubleQ ? 3 : 2;
  owned_q_ = std::make_unique<hw::Bram>("q_table", map_.depth(),
                                        config.q_fmt.width, q_ports);
  owned_r_ = std::make_unique<hw::Bram>("reward_table", map_.depth(),
                                        config.q_fmt.width, 1);
  owned_qmax_ = std::make_unique<QmaxUnit>(env.num_states(),
                                           config.q_fmt.width,
                                           map_.action_bits, 2);
  q_table_ = owned_q_.get();
  r_table_ = owned_r_.get();
  qmax_ = owned_qmax_.get();
  rd_port_ = 0;
  wr_port_ = 1;
  kernel_.attach(q_table_);
  kernel_.attach(r_table_);
  kernel_.attach(&qmax_->bram());
  if (config.algorithm == Algorithm::kDoubleQ) {
    owned_q2_ = std::make_unique<hw::Bram>("q_table_b", map_.depth(),
                                           config.q_fmt.width, q_ports);
    q2_table_ = owned_q2_.get();
    kernel_.attach(q2_table_);
  }
  init_tables();
}

Pipeline::Pipeline(const env::Environment& env, const PipelineConfig& config,
                   hw::Bram* shared_q, hw::Bram* shared_r,
                   QmaxUnit* shared_qmax, unsigned port_base)
    : env_(env),
      config_(config),
      map_(make_address_map(env)),
      coeff_(make_coefficients(config)),
      eps_threshold_(
          epsilon_threshold(config.epsilon, config.epsilon_bits)),
      rng_(config.seed, map_),
      q_table_(shared_q),
      r_table_(shared_r),
      qmax_(shared_qmax),
      rd_port_(port_base),
      wr_port_(port_base + 1),
      dsp_r_(kDspR, config.q_fmt, config.coeff_fmt, config.q_fmt),
      dsp_old_(kDspOld, config.q_fmt, config.coeff_fmt, config.q_fmt),
      dsp_next_(kDspNext, config.q_fmt, config.coeff_fmt, config.q_fmt) {
  validate_config(config, env);
  QTA_CHECK_MSG(config.algorithm != Algorithm::kDoubleQ,
                "Double-Q is not supported in shared-table mode");
  QTA_CHECK(shared_q && shared_r && shared_qmax);
  QTA_CHECK(shared_q->depth() == map_.depth());
  QTA_CHECK(port_base + 1 < shared_q->ports());
  // Shared tables are clocked by their owner (MultiPipeline), not here —
  // init_tables() is skipped, but the dirty-row bitmap is per-pipeline
  // bookkeeping and must still be sized for stage-4 marking.
  dirty_rows_.assign(env.num_states(), 0);
  dirty_all_ = true;
}

void Pipeline::init_tables() {
  for (StateId s = 0; s < env_.num_states(); ++s) {
    for (ActionId a = 0; a < env_.num_actions(); ++a) {
      r_table_->preset(map_.q_addr(s, a),
                       fixed::from_double(env_.reward(s, a), config_.q_fmt));
    }
  }
  // A fresh pipeline starts a conservative all-dirty epoch: nothing has
  // been checkpointed yet, so every row must go into the next full image.
  dirty_rows_.assign(env_.num_states(), 0);
  dirty_all_ = true;
}

fixed::raw_t Pipeline::q_raw(StateId s, ActionId a) const {
  return q_table_->peek(map_.q_addr(s, a));
}

// Host-side readback: converts the stored raw words for tests, table IO
// and benchmark reporting. Nothing here feeds back into the datapath.
// qtlint: push-allow(datapath-purity)
double Pipeline::q_value(StateId s, ActionId a) const {
  if (q2_table_) {
    return (fixed::to_double(q_raw(s, a), config_.q_fmt) +
            fixed::to_double(q2_table_->peek(map_.q_addr(s, a)),
                             config_.q_fmt)) /
           2.0;
  }
  return fixed::to_double(q_raw(s, a), config_.q_fmt);
}

fixed::raw_t Pipeline::q2_raw(StateId s, ActionId a) const {
  QTA_CHECK(q2_table_ != nullptr);
  return q2_table_->peek(map_.q_addr(s, a));
}

std::vector<double> Pipeline::q_as_double() const {
  std::vector<double> out;
  out.reserve(env_.table_size());
  for (StateId s = 0; s < env_.num_states(); ++s) {
    for (ActionId a = 0; a < env_.num_actions(); ++a) {
      out.push_back(q_value(s, a));
    }
  }
  return out;
}
// qtlint: pop-allow(datapath-purity)

std::vector<ActionId> Pipeline::greedy_policy() const {
  return env::greedy_policy_from(env_, q_as_double());
}

QmaxUnit::Entry Pipeline::qmax_entry(StateId s) const {
  return qmax_->peek(s);
}

void Pipeline::preset_q(StateId s, ActionId a, fixed::raw_t value) {
  QTA_CHECK_MSG(!in_flight(), "preset while the pipeline is running");
  q_table_->preset(map_.q_addr(s, a), fixed::saturate(value, config_.q_fmt));
  dirty_rows_[s] = 1;
}

void Pipeline::rebuild_qmax() {
  QTA_CHECK_MSG(!in_flight(), "rebuild while the pipeline is running");
  if (config_.qmax != QmaxMode::kMonotoneTable ||
      config_.algorithm == Algorithm::kExpectedSarsa ||
      config_.algorithm == Algorithm::kDoubleQ) {
    return;  // no Qmax table in these configurations
  }
  for (StateId s = 0; s < env_.num_states(); ++s) {
    QmaxUnit::Entry e;
    e.value = q_table_->peek(map_.q_addr(s, 0));
    e.action = 0;
    for (ActionId a = 1; a < env_.num_actions(); ++a) {
      const fixed::raw_t v = q_table_->peek(map_.q_addr(s, a));
      if (v > e.value) {
        e.value = v;
        e.action = a;
      }
    }
    // The monotone table never reports below its reset value of 0.
    if (e.value < 0) e = {0, 0};
    qmax_->preset(s, e);
  }
  // Every Qmax row was rewritten (possibly lowered below the old
  // monotone value), so the epoch collapses to all-dirty.
  dirty_all_ = true;
}

std::uint64_t Pipeline::dsp_saturations() const {
  return dsp_r_.saturations() + dsp_old_.saturations() +
         dsp_next_.saturations();
}

bool Pipeline::in_flight() const {
  return s1_.valid || s2_.valid || s3_.valid;
}

QmaxUnit::Entry Pipeline::effective_max(StateId s) {
  QmaxUnit::Entry e;
  if (config_.qmax == QmaxMode::kMonotoneTable) {
    e = qmax_->read(rd_port_, s);
    const fixed::raw_t before = e.value;
    wbq_.combine_qmax(s, e.value, e.action);
    if (e.value != before) ++stats_.fwd_qmax;
    return e;
  }
  // Exact comparator-tree scan: the committed row, overlaid with any
  // in-flight write-backs (newest-first). Modeled as a row-wide read
  // outside the two scalar ports; the resource model charges the
  // comparator tree and the widened fabric for it.
  e.value = 0;
  e.action = 0;
  bool first = true;
  for (ActionId a = 0; a < env_.num_actions(); ++a) {
    const std::uint64_t addr = map_.q_addr(s, a);
    const auto fwd = wbq_.match_q(addr);
    const fixed::raw_t v = fwd ? *fwd : q_table_->peek(addr);
    if (first || v > e.value) {
      e.value = v;
      e.action = a;
      first = false;
    }
  }
  return e;
}

void Pipeline::do_stage4() {
  const S3Latch& in = s3_;
  if (!in.valid) return;
  ++stats_.iterations;
  SampleTrace tr;
  if (in.bubble) {
    ++stats_.bubbles;
    tr.bubble = true;
    tr.state = in.s;
    if (trace_) trace_->push_back(tr);
    return;
  }
  hw::Bram* learn_bram = in.table == 1 ? q2_table_ : q_table_;
  learn_bram->write(wr_port_, map_.q_addr(in.s, in.a), in.new_q);
  dirty_rows_[in.s] = 1;
  // (Expected SARSA and Double-Q carry no Qmax table.)
  if (config_.qmax == QmaxMode::kMonotoneTable &&
      config_.algorithm != Algorithm::kExpectedSarsa &&
      config_.algorithm != Algorithm::kDoubleQ) {
    tel_.qmax_raised = qmax_->raise(wr_port_, in.s, in.a, in.new_q);
  }
  ++stats_.samples;
  if (in.end) ++stats_.episodes;
  if (trace_) {
    tr.state = in.s;
    tr.action = in.a;
    tr.reward = in.r;
    tr.new_q = in.new_q;
    tr.next_state = in.s_next;
    tr.end_episode = in.end;
    tr.table = in.table;
    trace_->push_back(tr);
  }
}

void Pipeline::do_stage3() {
  const S2Latch& in = s2_;
  S3Latch& out = s3_next_;
  if (!in.valid) return;
  out.valid = true;
  out.bubble = in.bubble;
  out.s = in.s;
  out.a = in.a;
  out.r = in.r;
  out.s_next = in.s_next;
  out.end = in.end;
  out.table = in.table;
  if (in.bubble) return;

  // Forward Q(S,A) against the three in-flight write-backs.
  const std::uint64_t sa_addr = map_.tagged_addr(in.table, in.s, in.a);
  fixed::raw_t q_old = in.q_sa_read;
  if (const auto fwd = wbq_.match_q(sa_addr)) {
    q_old = *fwd;
    ++stats_.fwd_q_sa;
    if (telemetry_) tel_.fwd_sa_distance = fwd_distance(wbq_, sa_addr);
  }

  // Q(S',A'): the greedy/Qmax/expectation paths were resolved in stage 2;
  // the SARSA exploratory read (shared with the next iteration's stage 1)
  // and the Double-Q cross-table read still need forwarding here.
  fixed::raw_t q_next = 0;
  if (!in.end) {
    if (in.q_next_fwd) {
      QTA_DCHECK(in.a_next != kInvalidAction);
      q_next = in.q_next;
      if (const auto fwd = wbq_.match_q(in.q_next_fwd_addr)) {
        q_next = *fwd;
        ++stats_.fwd_q_next;
        if (telemetry_) {
          tel_.fwd_next_distance = fwd_distance(wbq_, in.q_next_fwd_addr);
        }
      }
    } else {
      q_next = in.q_next;
    }
  }

  const fixed::Format qf = config_.q_fmt;
  const fixed::raw_t term_r = dsp_r_.multiply(in.r, coeff_.alpha);
  const fixed::raw_t term_old =
      dsp_old_.multiply(q_old, coeff_.one_minus_alpha);
  const fixed::raw_t term_next =
      dsp_next_.multiply(q_next, coeff_.alpha_gamma);
  bool sat1 = false, sat2 = false;
  const fixed::raw_t sum =
      fixed::sat_add(fixed::sat_add(term_r, term_old, qf, &sat1), term_next,
                     qf, &sat2);
  if (sat1) ++stats_.adder_saturations;
  if (sat2) ++stats_.adder_saturations;
  out.new_q = sum;

  wbq_.push({true, sa_addr, in.s, in.a, sum});
}

void Pipeline::do_stage2(bool will_issue) {
  const S1Latch& in = s1_;
  S2Latch& out = s2_next_;
  // Note: forwarded_action_ persists across idle stage-2 cycles — in the
  // stall-mode ablation the consuming stage-1 issue happens several cycles
  // after this stage selected the action.
  if (!in.valid) return;
  out.valid = true;
  out.bubble = in.bubble;
  out.s = in.s;
  out.a = in.a;
  out.s_next = in.s_next;
  out.end = in.end;
  out.q_sa_read = in.q_sa_read;
  out.r = in.r;
  out.table = in.table;
  if (in.bubble || in.end) {
    forwarded_action_ = kInvalidAction;
    return;
  }

  if (config_.algorithm == Algorithm::kQLearning) {
    out.q_next = effective_max(in.s_next).value;
    return;
  }

  if (config_.algorithm == Algorithm::kDoubleQ) {
    // argmax over the LEARNING table's forwarded row, value read from
    // the OTHER table (cross read on the third, double-pumped port).
    hw::Bram* learn_bram = in.table == 1 ? q2_table_ : q_table_;
    hw::Bram* eval_bram = in.table == 1 ? q_table_ : q2_table_;
    fixed::raw_t best = 0;
    ActionId argmax = 0;
    for (ActionId k = 0; k < env_.num_actions(); ++k) {
      const std::uint64_t tagged =
          map_.tagged_addr(in.table, in.s_next, k);
      const auto fwd = wbq_.match_q(tagged);
      const fixed::raw_t v =
          fwd ? *fwd : learn_bram->peek(map_.q_addr(in.s_next, k));
      if (k == 0 || v > best) {
        best = v;
        argmax = k;
      }
    }
    out.a_next = argmax;
    out.q_next = eval_bram->read(2, map_.q_addr(in.s_next, argmax));
    out.q_next_fwd = true;
    out.q_next_fwd_addr =
        map_.tagged_addr(in.table == 1 ? 0 : 1, in.s_next, argmax);
    return;
  }

  if (config_.algorithm == Algorithm::kExpectedSarsa) {
    // Full-row scan (comparator + adder trees) over the forwarded row.
    const RngBank::EpsilonDraw d =
        rng_.draw_epsilon(eps_threshold_, config_.epsilon_bits);
    fixed::raw_t row_max = 0;
    ActionId argmax = 0;
    fixed::raw_t row_sum = 0;
    for (ActionId k = 0; k < env_.num_actions(); ++k) {
      const std::uint64_t addr = map_.q_addr(in.s_next, k);
      const auto fwd = wbq_.match_q(addr);
      const fixed::raw_t v = fwd ? *fwd : q_table_->peek(addr);
      if (k == 0 || v > row_max) {
        row_max = v;
        argmax = k;
      }
      row_sum += v;
    }
    out.a_next = d.greedy ? argmax : d.explore_action;
    out.q_next = expected_sarsa_target(row_max, row_sum, map_.action_bits,
                                       coeff_, config_.q_fmt,
                                       config_.coeff_fmt);
    forwarded_action_ = out.a_next;
    return;
  }

  // SARSA epsilon-greedy (stage 2 of Section V-B).
  const RngBank::EpsilonDraw d =
      rng_.draw_epsilon(eps_threshold_, config_.epsilon_bits);
  if (d.greedy) {
    const QmaxUnit::Entry e = effective_max(in.s_next);
    out.a_next = e.action;
    out.q_next = e.value;
  } else {
    out.a_next = d.explore_action;
    out.q_next_pending = true;
    out.q_next_fwd = true;
    out.q_next_fwd_addr = map_.tagged_addr(0, in.s_next, out.a_next);
    if (!will_issue) {
      // Drain/stall: the next iteration's stage-1 read will not happen
      // this cycle, so use the idle read port ourselves.
      out.q_next =
          q_table_->read(rd_port_, map_.q_addr(in.s_next, out.a_next));
    }
  }
  // On-policy: A' becomes the behavior action of the next iteration.
  forwarded_action_ = out.a_next;
}

void Pipeline::do_stage1() {
  S1Latch& out = s1_next_;
  out.valid = true;
  ++stats_.issued;

  if (issue_episode_start_) {
    issue_state_ = rng_.draw_start_state(env_.num_states());
    issue_episode_steps_ = 0;
    forwarded_action_ = kInvalidAction;
    if (env_.is_terminal(issue_state_)) {
      out.bubble = true;
      out.s = issue_state_;
      return;  // zero-length episode; redraw next iteration
    }
  }

  const bool random_behavior =
      config_.algorithm == Algorithm::kQLearning ||
      config_.algorithm == Algorithm::kDoubleQ;
  ActionId a;
  if (random_behavior || issue_episode_start_) {
    a = rng_.draw_random_action();
  } else {
    QTA_CHECK_MSG(forwarded_action_ != kInvalidAction,
                  "SARSA continuation without a forwarded action");
    a = forwarded_action_;
  }
  issue_episode_start_ = false;

  const unsigned table = config_.algorithm == Algorithm::kDoubleQ
                             ? rng_.draw_table_select()
                             : 0;
  hw::Bram* learn_bram = table == 1 ? q2_table_ : q_table_;

  const StateId s = issue_state_;
  const unsigned noise_bits = env_.transition_noise_bits();
  const StateId s_next =
      noise_bits == 0
          ? env_.transition(s, a)
          : env_.transition(s, a, rng_.draw_transition_noise(noise_bits));
  const std::uint64_t addr = map_.q_addr(s, a);
  const fixed::raw_t q_read = learn_bram->read(rd_port_, addr);
  const fixed::raw_t r = r_table_->read(
      r_table_->ports() > 1 ? rd_port_ / 2 : 0, addr);
  ++issue_episode_steps_;
  const bool end = env_.is_terminal(s_next) ||
                   issue_episode_steps_ >= config_.max_episode_length;

  out.s = s;
  out.a = a;
  out.s_next = s_next;
  out.end = end;
  out.q_sa_read = q_read;
  out.r = r;
  out.table = table;

  // SARSA exploratory path: this read IS the previous iteration's
  // Q(S',A') access (same address by on-policy construction).
  if (s2_next_.valid && s2_next_.q_next_pending && !s2_next_.end) {
    QTA_CHECK_MSG(s2_next_.s_next == s && s2_next_.a_next == a,
                  "shared-read address mismatch: the on-policy invariant "
                  "(S',A') == next (S,A) was violated");
    s2_next_.q_next = q_read;
  }

  issue_state_ = s_next;
  if (end) issue_episode_start_ = true;
}

bool Pipeline::tick(bool allow_issue) {
  // ---- begin cycle ----
  if (owned_q_) {
    kernel_.begin_cycle();
  } else {
    // Shared-table mode: the MultiPipeline owner clocks the BRAMs.
  }
  s1_next_ = {};
  s2_next_ = {};
  s3_next_ = {};

  bool issue = allow_issue;
  if (issue && config_.hazard == HazardMode::kStall && in_flight()) {
    issue = false;
    ++stats_.stall_cycles;
  }
  // SARSA shared reads require knowing whether stage 1 will run AND be a
  // continuation; a continuation is guaranteed whenever the iteration now
  // in stage 2 did not end its episode.
  const bool will_issue = issue;

  // Telemetry derives per-cycle activity from counter deltas around the
  // stage evaluation; everything below is observation-only.
  PipelineStats before{};
  std::uint64_t dsp_before = 0;
  if (telemetry_) {
    before = stats_;
    dsp_before = dsp_saturations();
    tel_ = {};
  }

  // ---- evaluate, oldest stage first ----
  do_stage4();
  do_stage3();
  do_stage2(will_issue);
  if (issue) do_stage1();

  if (telemetry_) emit_cycle_event(allow_issue, issue, before, dsp_before);
  if (waveform_) emit_waveform_line();

  // ---- clock edge ----
  if (owned_q_) kernel_.clock_edge();
  s1_ = s1_next_;
  s2_ = s2_next_;
  s3_ = s3_next_;
  ++stats_.cycles;
  return issue;
}

void Pipeline::emit_cycle_event(bool allow_issue, bool issued,
                                const PipelineStats& before,
                                std::uint64_t dsp_before) {
  telemetry::CycleEvent e;
  e.cycle = stats_.cycles;
  e.fwd_q_sa = static_cast<std::uint8_t>(stats_.fwd_q_sa - before.fwd_q_sa);
  e.fwd_q_next =
      static_cast<std::uint8_t>(stats_.fwd_q_next - before.fwd_q_next);
  e.fwd_qmax = static_cast<std::uint8_t>(stats_.fwd_qmax - before.fwd_qmax);
  const bool forwarded =
      e.fwd_q_sa != 0 || e.fwd_q_next != 0 || e.fwd_qmax != 0;
  e.cls = !allow_issue ? telemetry::CycleClass::kDrain
          : !issued    ? telemetry::CycleClass::kStall
          : forwarded  ? telemetry::CycleClass::kForwardServiced
                       : telemetry::CycleClass::kIssue;
  e.fwd_sa_distance = tel_.fwd_sa_distance;
  e.fwd_next_distance = tel_.fwd_next_distance;
  e.adder_saturations = static_cast<std::uint8_t>(
      (stats_.adder_saturations - before.adder_saturations) +
      (dsp_saturations() - dsp_before));
  // Stage occupancy mirrors the waveform: S1/S2/S3 are this cycle's
  // evaluated latches; RET is the iteration stage 4 just consumed.
  const auto mark = [&e](bool valid, bool bubble, std::uint8_t bit) {
    if (!valid) return;
    e.stage_valid |= bit;
    if (bubble) e.stage_bubble |= bit;
  };
  mark(s1_next_.valid, s1_next_.bubble, telemetry::kStageS1);
  mark(s2_next_.valid, s2_next_.bubble, telemetry::kStageS2);
  mark(s3_next_.valid, s3_next_.bubble, telemetry::kStageS3);
  mark(s3_.valid, s3_.bubble, telemetry::kStageRet);
  e.sample_retired = stats_.samples != before.samples;
  e.episode_end = stats_.episodes != before.episodes;
  e.qmax_raised = tel_.qmax_raised;
  telemetry_->on_cycle(e);
}

void Pipeline::emit_waveform_line() {
  // Formats into a line buffer reused across cycles — one ostream write
  // per line instead of a dozen formatted inserts.
  std::string& line = waveform_line_;
  line.clear();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "[%6llu] ",
                static_cast<unsigned long long>(stats_.cycles));
  line += buf;
  const auto cell = [&line, &buf](const char* name, bool valid, bool bubble,
                                  StateId s, ActionId a) {
    line += name;
    line += ' ';
    if (!valid) {
      line += "--          ";
    } else if (bubble) {
      line += "bubble      ";
    } else {
      std::snprintf(buf, sizeof(buf), "s=%4u a=%u  ",
                    static_cast<unsigned>(s), static_cast<unsigned>(a));
      line += buf;
    }
    line += "| ";
  };
  // Stage outputs evaluated this cycle: S1/S2/S3 are the *_next latches;
  // the retiring iteration was consumed from s3_ by stage 4.
  cell("S1", s1_next_.valid, s1_next_.bubble, s1_next_.s, s1_next_.a);
  cell("S2", s2_next_.valid, s2_next_.bubble, s2_next_.s, s2_next_.a);
  cell("S3", s3_next_.valid, s3_next_.bubble, s3_next_.s, s3_next_.a);
  cell("RET", s3_.valid, s3_.bubble, s3_.s, s3_.a);
  line += '\n';
  waveform_->write(line.data(),
                   static_cast<std::streamsize>(line.size()));
}

void Pipeline::run_iterations(std::uint64_t n) {
  const std::uint64_t target = stats_.issued + n;
  while (stats_.issued < target) tick(true);
  while (in_flight()) tick(false);
}

void Pipeline::run_samples(std::uint64_t n) {
  while (stats_.samples < n) tick(true);
  while (in_flight()) tick(false);
}

MachineState Pipeline::save_state() const {
  QTA_CHECK_MSG(!in_flight(), "save_state while the pipeline is running");
  MachineState ms;
  const std::uint64_t depth = map_.depth();
  ms.q.resize(depth);
  for (std::uint64_t addr = 0; addr < depth; ++addr) {
    ms.q[addr] = q_table_->peek(addr);
  }
  if (q2_table_) {
    ms.q2.resize(depth);
    for (std::uint64_t addr = 0; addr < depth; ++addr) {
      ms.q2[addr] = q2_table_->peek(addr);
    }
  }
  const StateId num_states = env_.num_states();
  ms.qmax_value.resize(num_states);
  ms.qmax_action.resize(num_states);
  for (StateId s = 0; s < num_states; ++s) {
    const QmaxUnit::Entry e = qmax_->peek(s);
    ms.qmax_value[s] = e.value;
    ms.qmax_action[s] = e.action;
  }
  ms.rng = rng_.lfsr_state();
  ms.episode_start = issue_episode_start_;
  ms.state = issue_state_;
  ms.pending_action = forwarded_action_;
  ms.episode_steps = issue_episode_steps_;
  const auto& wb = wbq_.entries();
  for (unsigned i = 0; i < WritebackQueue::kDepth; ++i) {
    ms.wb_addrs[i] = wb[i].valid ? wb[i].q_addr : MachineState::kNoWriteback;
  }
  ms.stats = stats_;
  ms.dsp_saturations = {dsp_r_.saturations(), dsp_old_.saturations(),
                        dsp_next_.saturations()};
  ms.dirty.rows = dirty_rows_;
  ms.dirty.all = dirty_all_;
  return ms;
}

void Pipeline::load_state(const MachineState& ms) {
  QTA_CHECK_MSG(!in_flight(), "load_state while the pipeline is running");
  const std::uint64_t depth = map_.depth();
  QTA_CHECK_MSG(ms.q.size() == depth,
                "machine state does not match the pipeline's table geometry");
  QTA_CHECK_MSG((q2_table_ != nullptr) == !ms.q2.empty(),
                "machine state and pipeline disagree on the second Q table");
  for (std::uint64_t addr = 0; addr < depth; ++addr) {
    q_table_->preset(addr, ms.q[addr]);
  }
  if (q2_table_) {
    QTA_CHECK(ms.q2.size() == depth);
    for (std::uint64_t addr = 0; addr < depth; ++addr) {
      q2_table_->preset(addr, ms.q2[addr]);
    }
  }
  const StateId num_states = env_.num_states();
  QTA_CHECK_MSG(
      ms.qmax_value.size() == num_states &&
          ms.qmax_action.size() == num_states,
      "machine state does not match the pipeline's state count");
  for (StateId s = 0; s < num_states; ++s) {
    qmax_->preset(s, {ms.qmax_value[s], ms.qmax_action[s]});
  }
  rng_.set_lfsr_state(ms.rng);
  issue_episode_start_ = ms.episode_start;
  issue_state_ = ms.state;
  forwarded_action_ = ms.pending_action;
  issue_episode_steps_ = ms.episode_steps;

  // Rebuild the forwarding queue from its tagged addresses: post-drain
  // every queued value has committed, so the entries come straight off
  // the just-restored tables (the invariant machine_state.h documents).
  std::array<Writeback, WritebackQueue::kDepth> entries{};
  for (unsigned i = 0; i < WritebackQueue::kDepth; ++i) {
    const std::uint64_t tagged = ms.wb_addrs[i];
    if (tagged == MachineState::kNoWriteback) continue;
    const unsigned table = static_cast<unsigned>(
        tagged >> (map_.state_bits + map_.action_bits));
    const std::uint64_t q_addr = tagged & (depth - 1);
    QTA_CHECK_MSG(table <= 1 && (table == 0 || q2_table_ != nullptr),
                  "machine state write-back address tags a table this "
                  "pipeline does not have");
    const hw::Bram* src = table == 1 ? q2_table_ : q_table_;
    Writeback e;
    e.valid = true;
    e.q_addr = tagged;
    e.state = static_cast<StateId>(q_addr >> map_.action_bits);
    e.action = static_cast<ActionId>(
        q_addr & ((std::uint64_t{1} << map_.action_bits) - 1));
    e.new_q = src->peek(q_addr);
    entries[i] = e;
  }
  wbq_.restore(entries);

  // A drained pipeline has empty latches; a restored one starts the same
  // way.
  s1_ = {};
  s1_next_ = {};
  s2_ = {};
  s2_next_ = {};
  s3_ = {};
  s3_next_ = {};

  stats_ = ms.stats;
  // Each stage-3 DSP multiplies exactly once per retired sample.
  dsp_r_.restore_counters(ms.stats.samples, ms.dsp_saturations[0]);
  dsp_old_.restore_counters(ms.stats.samples, ms.dsp_saturations[1]);
  dsp_next_.restore_counters(ms.stats.samples, ms.dsp_saturations[2]);

  // Adopt the carried dirty-row epoch; any mismatch (or a
  // default-constructed DirtyRows) collapses to conservative all-dirty.
  if (!ms.dirty.all && ms.dirty.rows.size() == num_states) {
    dirty_rows_ = ms.dirty.rows;
    dirty_all_ = false;
  } else {
    dirty_rows_.assign(num_states, 0);
    dirty_all_ = true;
  }
}

void Pipeline::reset_dirty_rows() {
  std::fill(dirty_rows_.begin(), dirty_rows_.end(), 0);
  dirty_all_ = false;
}

std::uint64_t Pipeline::dirty_row_count() const {
  if (dirty_all_) return env_.num_states();
  std::uint64_t n = 0;
  for (const std::uint8_t b : dirty_rows_) n += b;
  return n;
}

}  // namespace qta::qtaccel

#include "qtaccel/table_io.h"

#include <istream>
#include <ostream>
#include <string>

#include "common/check.h"

namespace qta::qtaccel {

namespace {
constexpr const char* kMagic = "QTACCEL-QTABLE";
constexpr const char* kVersion = "v1";
}  // namespace

void save_q_table(std::ostream& os, const Pipeline& pipeline) {
  const env::Environment& env = pipeline.environment();
  const fixed::Format fmt = pipeline.config().q_fmt;
  os << kMagic << ' ' << kVersion << '\n'
     << "states " << env.num_states() << " actions " << env.num_actions()
     << " width " << fmt.width << " frac " << fmt.frac << '\n';
  for (StateId s = 0; s < env.num_states(); ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      if (a) os << ' ';
      os << pipeline.q_raw(s, a);
    }
    os << '\n';
  }
}

void load_q_table(std::istream& is, Pipeline& pipeline) {
  std::string magic, version, key;
  is >> magic >> version;
  QTA_CHECK_MSG(is && magic == kMagic, "not a QTACCEL-QTABLE file");
  QTA_CHECK_MSG(version == kVersion, "unsupported QTABLE version");

  StateId states = 0;
  ActionId actions = 0;
  unsigned width = 0, frac = 0;
  is >> key >> states;
  QTA_CHECK_MSG(is && key == "states", "malformed header: states");
  is >> key >> actions;
  QTA_CHECK_MSG(is && key == "actions", "malformed header: actions");
  is >> key >> width;
  QTA_CHECK_MSG(is && key == "width", "malformed header: width");
  is >> key >> frac;
  QTA_CHECK_MSG(is && key == "frac", "malformed header: frac");

  const env::Environment& env = pipeline.environment();
  const fixed::Format fmt = pipeline.config().q_fmt;
  QTA_CHECK_MSG(states == env.num_states() && actions == env.num_actions(),
                "table geometry does not match the pipeline's environment");
  QTA_CHECK_MSG(width == fmt.width && frac == fmt.frac,
                "fixed-point format does not match the pipeline's config");

  for (StateId s = 0; s < states; ++s) {
    for (ActionId a = 0; a < actions; ++a) {
      fixed::raw_t v = 0;
      is >> v;
      QTA_CHECK_MSG(static_cast<bool>(is), "truncated QTABLE payload");
      QTA_CHECK_MSG(v >= fmt.min_raw() && v <= fmt.max_raw(),
                    "QTABLE value outside the fixed-point range");
      pipeline.preset_q(s, a, v);
    }
  }
  pipeline.rebuild_qmax();
}

}  // namespace qta::qtaccel

// The "generic table-based" QRL variant of Section VII-B: action
// selection from a probability-distribution table.
//
// A third |S|*|A| BRAM table P holds unnormalized weights f(s, a); stage 2
// draws a random number in [0, sum_a f(s', a)) and binary-searches the
// prefix sums — ceil(log2 |A|) sequential BRAM reads, which stall the
// pipeline by that many cycles per sample ("limited stalls due to
// dependencies", the paper's future-work phrasing). Stage 4 refreshes the
// entry alongside the Q write-back.
//
// The weight rule implemented here realizes the Boltzmann policy the
// paper cites (P(a|s) proportional to exp(Q(s,a)/T)): after computing the
// new Q value, the hardware looks up exp(new_q / T) in the quantized exp
// LUT and writes it into P. Behavior is on-policy (the sampled update
// action is forwarded as the next behavior action, like SARSA).
//
// This is a functional model with cycle accounting (selection stalls,
// one otherwise-pipelined sample per issue), not a stage-register
// replica like qtaccel/pipeline.h — the paper defers the pipelined
// realization of this variant to future work.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "env/environment.h"
#include "fixed/exp_lut.h"
#include "hw/bram.h"
#include "hw/resource_ledger.h"
#include "qtaccel/config.h"
#include "rng/lfsr.h"

namespace qta::qtaccel {

// Host-side configuration: rates and LUT geometry arrive as doubles and
// are quantized into fixed-point coefficients at construction, exactly
// like PipelineConfig.
// qtlint: push-allow(datapath-purity)
struct BoltzmannConfig {
  double alpha = 0.1;
  double gamma = 0.9;
  /// Boltzmann temperature T in P(a|s) ~ exp(Q(s,a) / T). Higher T =
  /// flatter (more exploratory) distributions.
  double temperature = 32.0;

  fixed::Format q_fmt = fixed::kQFormat;
  fixed::Format coeff_fmt = fixed::kCoeffFormat;
  /// Storage format of the P-table weights: same 18-bit BRAM lane as Q,
  /// but low-fraction (s13.4) so exp() outputs up to ~8191 fit without
  /// flattening the distribution through saturation.
  fixed::Format weight_fmt = fixed::Format{18, 4};

  /// exp LUT geometry. The domain is chosen so exp(lut_hi) is
  /// representable in weight_fmt: exponents above it would saturate and
  /// erase the relative preferences the policy depends on. Q/T values
  /// outside the domain clamp at the LUT edges.
  unsigned exp_lut_log2_entries = 10;
  double lut_lo = -8.0;
  double lut_hi = 8.0;

  std::uint64_t seed = 1;
  std::uint64_t max_episode_length = 1u << 20;
};
// qtlint: pop-allow(datapath-purity)

class BoltzmannPipeline {
 public:
  BoltzmannPipeline(const env::Environment& env,
                    const BoltzmannConfig& config);

  void run_samples(std::uint64_t samples);

  struct Stats {
    std::uint64_t samples = 0;
    std::uint64_t episodes = 0;
    std::uint64_t bubbles = 0;
    Cycle cycles = 0;
    std::uint64_t selection_stall_cycles = 0;
    // Host-side throughput metric and table readback.
    // qtlint: push-allow(datapath-purity)
    double samples_per_cycle() const {
      return cycles == 0 ? 0.0
                         : static_cast<double>(samples) /
                               static_cast<double>(cycles);
    }
  };
  const Stats& stats() const { return stats_; }

  double q_value(StateId s, ActionId a) const;
  /// Raw stored weight f(s, a) as a double.
  double weight(StateId s, ActionId a) const;
  /// Normalized P(a | s) from the stored weights.
  double action_probability(StateId s, ActionId a) const;
  // qtlint: pop-allow(datapath-purity)

  /// Samples an action for `s` from the stored weights (the stage-2
  /// selection path, exposed for tests); does not advance time.
  ActionId sample_action_for_test(StateId s);

  hw::ResourceLedger resources() const;
  const BoltzmannConfig& config() const { return config_; }

 private:
  ActionId sample_action(StateId s);
  fixed::raw_t refreshed_weight(fixed::raw_t q) const;
  std::uint64_t row_sum(StateId s) const;

  const env::Environment& env_;
  BoltzmannConfig config_;
  AddressMap map_;
  Coefficients coeff_;
  fixed::ExpLut exp_lut_;

  hw::Bram q_table_;
  hw::Bram r_table_;
  hw::Bram p_table_;
  rng::Lfsr start_lfsr_;
  rng::Lfsr select_lfsr_;

  // Walk state.
  bool episode_start_ = true;
  StateId state_ = 0;
  ActionId pending_action_ = kInvalidAction;
  std::uint64_t episode_steps_ = 0;

  Stats stats_;
};

}  // namespace qta::qtaccel

// QTAccel customized for Multi-Armed Bandits (Section VII-B).
//
// Stateless bandit: the Q table has a single state and M actions (one per
// arm). The reward-table read of stage 1 is replaced by the CLT normal
// sampler (sum of LFSR uniforms). Two policies:
//   * epsilon-greedy — same structure as the SARSA selector; the pipeline
//     keeps its one-sample-per-cycle rate;
//   * EXP3 — probability-distribution selection via binary search over
//     prefix sums, costing 1 + ceil(log2 M) cycles per sample (the
//     "limited stalls" the paper's future-work section mentions), with the
//     exponential weight update through the quantized hardware exp LUT.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "env/bandit.h"
#include "fixed/exp_lut.h"
#include "hw/bram.h"
#include "hw/resource_ledger.h"
#include "policy/exp3.h"
#include "rng/lfsr.h"
#include "rng/normal_clt.h"

namespace qta::qtaccel {

struct MabConfig {
  /// kUcb1 realizes the paper's future-work "more variants of MAB": the
  /// UCB score Q(m) + sqrt(c * ln t / n_m) computed entirely in fixed
  /// point (log2 LUT, shift-subtract divider, non-restoring sqrt — see
  /// fixed/math_lut.h), one parallel score unit per arm.
  enum class Policy { kEpsilonGreedy, kExp3, kUcb1 };
  Policy policy = Policy::kEpsilonGreedy;

  double alpha = 0.1;       // value-update step (epsilon-greedy)
  double epsilon = 0.1;
  unsigned epsilon_bits = 16;
  double exp3_gamma = 0.1;  // EXP3 exploration constant
  double ucb_c = 2.0;       // UCB exploration numerator
  bool use_exp_lut = true;  // route exponentials through the hardware LUT
  unsigned exp_lut_log2_entries = 10;

  fixed::Format q_fmt = fixed::kQFormat;
  std::uint64_t seed = 1;

  /// Rewards are scaled into [0, 1] for EXP3 with these bounds.
  double reward_lo = -1.0;
  double reward_hi = 2.0;
};

class MabAccelerator {
 public:
  /// `bandit` supplies arm means/stddevs and tracks regret; it must
  /// outlive the accelerator.
  MabAccelerator(env::MultiArmedBandit& bandit, const MabConfig& config);

  /// Processes `samples` pulls.
  void run(std::uint64_t samples);

  struct Stats {
    std::uint64_t samples = 0;
    Cycle cycles = 0;
    std::uint64_t selection_stall_cycles = 0;
    double samples_per_cycle() const {
      return cycles == 0 ? 0.0
                         : static_cast<double>(samples) /
                               static_cast<double>(cycles);
    }
  };
  const Stats& stats() const { return stats_; }

  /// Estimated value of arm m (epsilon-greedy policy) as a double.
  double q_value(unsigned m) const;
  /// Pulls of each arm so far.
  const std::vector<std::uint64_t>& pull_counts() const { return pulls_; }
  double cumulative_regret() const { return bandit_.cumulative_regret(); }

  hw::ResourceLedger resources() const;

 private:
  unsigned select_epsilon_greedy();
  unsigned select_exp3();
  unsigned select_ucb1() const;
  void update_epsilon_greedy(unsigned arm, fixed::raw_t reward);
  void update_sample_average(unsigned arm, fixed::raw_t reward);

  env::MultiArmedBandit& bandit_;
  MabConfig config_;
  unsigned arms_;
  std::uint64_t eps_threshold_;

  hw::Bram q_;  // single-state Q table: one word per arm
  rng::Lfsr select_lfsr_;
  std::unique_ptr<fixed::ExpLut> exp_lut_;
  std::unique_ptr<policy::Exp3> exp3_;

  std::vector<std::uint64_t> pulls_;
  Stats stats_;
};

}  // namespace qta::qtaccel

// The Qmax side-table (Section V-A): one entry per state holding the
// maximum Q value seen for that state and the action that achieved it,
// packed into a single BRAM word of (q_width + action_bits) bits.
//
// Entries are raised on write-back only ("an update is made to the Qmax if
// the new Q-value is higher") — a deliberate approximation: if the true
// row maximum later *decreases*, the table goes stale-high. The exact-scan
// ablation (QmaxMode::kExactScan) quantifies the effect on learning.
//
// The stage-4 update is modeled as a single-port read-modify-write: the
// port's output latch presents the old word to the comparator while the
// conditional write commits at the edge.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "fixed/fixed_point.h"
#include "hw/bram.h"

namespace qta::qtaccel {

class QmaxUnit {
 public:
  struct Entry {
    fixed::raw_t value = 0;
    ActionId action = 0;
  };

  QmaxUnit(StateId num_states, unsigned q_width, unsigned action_bits,
           unsigned ports = 2);

  /// Stage-2 read on `port`.
  Entry read(unsigned port, StateId s);

  /// Stage-4 conditional raise on `port` (one port access whether or not
  /// the write fires). Returns true when the entry was raised.
  bool raise(unsigned port, StateId s, ActionId a, fixed::raw_t new_q);

  /// Debug/verification access without port accounting.
  Entry peek(StateId s) const;
  void preset(StateId s, const Entry& e);

  hw::Bram& bram() { return bram_; }
  const hw::Bram& bram() const { return bram_; }

  unsigned entry_width() const { return q_width_ + action_bits_; }

 private:
  std::uint64_t pack(const Entry& e) const;
  Entry unpack(std::uint64_t word) const;

  unsigned q_width_;
  unsigned action_bits_;
  hw::Bram bram_;
};

}  // namespace qta::qtaccel

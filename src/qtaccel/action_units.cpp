#include "qtaccel/action_units.h"

#include "common/bit_math.h"
#include "common/check.h"
#include "rng/xoshiro.h"

namespace qta::qtaccel {

namespace {
constexpr unsigned kLfsrWidth = 32;

rng::Lfsr seeded_lfsr(rng::SplitMix64& sm) {
  return rng::Lfsr(kLfsrWidth, sm.next());
}
}  // namespace

RngBank::RngBank(std::uint64_t master_seed, const AddressMap& map)
    : map_(map),
      start_([&] {
        rng::SplitMix64 sm(master_seed);
        return seeded_lfsr(sm);
      }()),
      behavior_([&] {
        rng::SplitMix64 sm(master_seed ^ 0xa5a5a5a5a5a5a5a5ULL);
        return seeded_lfsr(sm);
      }()),
      update_([&] {
        rng::SplitMix64 sm(master_seed ^ 0x5a5a5a5a5a5a5a5aULL);
        return seeded_lfsr(sm);
      }()),
      noise_([&] {
        rng::SplitMix64 sm(master_seed ^ 0x0f0f0f0f0f0f0f0fULL);
        return seeded_lfsr(sm);
      }()) {}

unsigned RngBank::flip_flops(Algorithm algorithm) {
  // start + behavior LFSRs always present; the epsilon-greedy selectors
  // (SARSA, Expected SARSA) add the update LFSR and the threshold/compare
  // register.
  unsigned ff = 2 * kLfsrWidth;
  if (algorithm != Algorithm::kQLearning) ff += kLfsrWidth + 32;
  return ff;
}

}  // namespace qta::qtaccel

#include "qtaccel/action_units.h"

#include "common/bit_math.h"
#include "common/check.h"
#include "rng/xoshiro.h"

namespace qta::qtaccel {

namespace {
constexpr unsigned kLfsrWidth = 32;

rng::Lfsr seeded_lfsr(rng::SplitMix64& sm) {
  return rng::Lfsr(kLfsrWidth, sm.next());
}
}  // namespace

RngBank::RngBank(std::uint64_t master_seed, const AddressMap& map)
    : map_(map),
      start_([&] {
        rng::SplitMix64 sm(master_seed);
        return seeded_lfsr(sm);
      }()),
      behavior_([&] {
        rng::SplitMix64 sm(master_seed ^ 0xa5a5a5a5a5a5a5a5ULL);
        return seeded_lfsr(sm);
      }()),
      update_([&] {
        rng::SplitMix64 sm(master_seed ^ 0x5a5a5a5a5a5a5a5aULL);
        return seeded_lfsr(sm);
      }()),
      noise_([&] {
        rng::SplitMix64 sm(master_seed ^ 0x0f0f0f0f0f0f0f0fULL);
        return seeded_lfsr(sm);
      }()) {}

StateId RngBank::draw_start_state(StateId num_states) {
  return static_cast<StateId>(start_.below(num_states));
}

ActionId RngBank::draw_random_action() {
  return static_cast<ActionId>(behavior_.draw_bits(map_.action_bits));
}

RngBank::EpsilonDraw RngBank::draw_epsilon(std::uint64_t threshold,
                                           unsigned bits) {
  QTA_CHECK(bits >= map_.action_bits);
  const std::uint64_t draw = update_.draw_bits(bits);
  EpsilonDraw d;
  d.greedy = draw < threshold;
  d.explore_action =
      static_cast<ActionId>(qta::bits(draw, 0, map_.action_bits));
  return d;
}

std::uint64_t RngBank::draw_transition_noise(unsigned bits) {
  QTA_CHECK(bits >= 1 && bits <= 64);
  return noise_.draw_bits(bits);
}

unsigned RngBank::draw_table_select() {
  return static_cast<unsigned>(update_.draw_bits(1));
}

unsigned RngBank::flip_flops(Algorithm algorithm) {
  // start + behavior LFSRs always present; the epsilon-greedy selectors
  // (SARSA, Expected SARSA) add the update LFSR and the threshold/compare
  // register.
  unsigned ff = 2 * kLfsrWidth;
  if (algorithm != Algorithm::kQLearning) ff += kLfsrWidth + 32;
  return ff;
}

}  // namespace qta::qtaccel

// Lane-batched fast backend: N independent FastEngine replicas advanced
// one iteration per round, laid out structure-of-arrays so the round
// loop vectorizes across lanes.
//
// QTAccel's throughput story is many independent pipelines in lockstep;
// FastEngine replays one pipeline at a time, so its per-sample cost is
// one long dependency chain (LFSR draw -> address -> table read -> three
// DSP products -> write-back) that leaves most of a wide host core idle.
// LaneEngine advances N lanes per round instead: per-lane LFSR state,
// walk state, forwarding rings, and episode control live in flat
// per-lane arrays, the scalar passes interleave N independent dependency
// chains (ILP), and the stage-3 fixed-point kernel (three DSP products
// plus the saturating adder tree) runs as one SIMD loop across lanes —
// an autovectorizable portable loop plus explicit AVX2/NEON paths picked
// at runtime (common/simd.h).
//
// Fidelity: every lane retires the exact FastEngine sequence — the same
// LFSR draw order, fixed-point rounding/saturation, monotone-Qmax raise
// rule, episode control, analytic PipelineStats reconstruction, and
// telemetry events. Lanes never interact; a lane's trace, tables, stats,
// and MachineState are bit-identical to a FastEngine run of the same
// (env, config). tests/lane_engine_test.cpp proves it differentially.
//
// Lanes may differ in environment, seed, rates, and formats; they must
// agree on (algorithm, qmax, hazard) — the template parameters of the
// round loop (see compatible()). runtime/lane_coalescer.h groups
// sessions accordingly and donates state in and out in O(1).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "env/environment.h"
#include "qtaccel/action_units.h"
#include "qtaccel/config.h"
#include "qtaccel/pipeline.h"  // PipelineStats, SampleTrace

namespace qta::env {
class GridWorld;  // devirtualized fast path, as in FastEngine
}  // namespace qta::env

namespace qta::qtaccel {

class LaneEngine {
 public:
  /// The environment-derived constants of one lane: quantized rewards,
  /// terminal flags, optional pre-baked transitions. Building one bakes
  /// the reward table (O(|S|*|A|) host-side conversions), so images are
  /// shared: a lane constructed from a donor engine reuses the donor's
  /// image instead of re-baking per batch. The image borrows `env`; the
  /// environment must outlive every engine holding the image.
  struct EnvImage {
    /// Interleaved per-{s,a} record: the reward and the pre-baked next
    /// state live on the same cache line (and the same TLB page), so a
    /// sample's transition lookup and reward gather cost one random
    /// line instead of two. That matters more than the padding wasted:
    /// lane throughput on large tables is bounded by outstanding-miss
    /// slots, not bandwidth.
    /// `next_terminal` mirrors terminal[next]: the episode-end check
    /// rides on the record fetched for the transition instead of
    /// touching the terminal table at a second random address.
    struct SaRecord {
      fixed::raw_t reward = 0;
      StateId next = 0;
      std::uint8_t next_terminal = 0;
    };
    const env::Environment* env = nullptr;
    const env::GridWorld* grid = nullptr;  // devirtualized transitions
    unsigned noise_bits = 0;
    AddressMap map;
    fixed::Format q_fmt;
    StateId num_states = 0;
    ActionId num_actions = 0;
    std::vector<fixed::raw_t> reward;
    std::vector<std::uint8_t> terminal;
    std::vector<SaRecord> sa;  // empty => compute transitions
  };
  static std::shared_ptr<const EnvImage> build_env_image(
      const env::Environment& env, fixed::Format q_fmt);

  struct LaneSpec {
    const env::Environment* env = nullptr;
    PipelineConfig config;
    /// Reuse a donor's image (must match env and config.q_fmt); built
    /// from `env` when null.
    std::shared_ptr<const EnvImage> image;
    /// Skip table allocation: the caller put_state()s a donated
    /// MachineState before the first run (the lane-coalescing path).
    bool defer_tables = false;
  };

  /// Single-lane engine (the kLanes backend adapter): lane 0 only.
  LaneEngine(const env::Environment& env, const PipelineConfig& config);
  /// Lane group; aborts unless every lane is compatible() with lane 0.
  explicit LaneEngine(const std::vector<LaneSpec>& lanes);

  /// Whether two configs may share a lane group: the round loop is
  /// specialized on (algorithm, qmax, hazard); everything else (seed,
  /// rates, formats, environment shape) is per-lane data.
  static bool compatible(const PipelineConfig& a, const PipelineConfig& b);

  std::size_t num_lanes() const { return lanes_; }

  /// Advances every lane to its own absolute sample target (the
  /// FastEngine::run_samples contract per lane, including the forward-
  /// mode drain overshoot). Lanes already at target do not tick.
  void run_samples_all(const std::vector<std::uint64_t>& targets);
  /// Runs exactly counts[lane] iterations per lane (bubbles included).
  void run_iterations_all(const std::vector<std::uint64_t>& counts);

  // Single-lane surface, mirroring FastEngine with a lane index.
  void run_iterations(std::size_t lane, std::uint64_t n);
  void run_samples(std::size_t lane, std::uint64_t n);

  const PipelineStats& stats(std::size_t lane) const {
    return stats_[lane];
  }
  void set_trace(std::size_t lane, std::vector<SampleTrace>* trace) {
    trace_[lane] = trace;
  }
  void set_telemetry(std::size_t lane, telemetry::TelemetrySink* sink) {
    telemetry_[lane] = sink;
  }
  std::vector<SampleTrace>* trace(std::size_t lane) const {
    return trace_[lane];
  }
  telemetry::TelemetrySink* telemetry(std::size_t lane) const {
    return telemetry_[lane];
  }

  fixed::raw_t q_raw(std::size_t lane, StateId s, ActionId a) const;
  fixed::raw_t q2_raw(std::size_t lane, StateId s, ActionId a) const;
  // Host-side readback boundary, as in FastEngine.
  // qtlint: push-allow(datapath-purity)
  double q_value(std::size_t lane, StateId s, ActionId a) const;
  std::vector<double> q_as_double(std::size_t lane) const;
  // qtlint: pop-allow(datapath-purity)
  std::vector<ActionId> greedy_policy(std::size_t lane) const;
  QmaxUnit::Entry qmax_entry(std::size_t lane, StateId s) const;

  void preset_q(std::size_t lane, StateId s, ActionId a,
                fixed::raw_t value);
  void rebuild_qmax(std::size_t lane);
  std::uint64_t dsp_saturations(std::size_t lane) const {
    const auto& d = dsp_saturations_[lane];
    return d[0] + d[1] + d[2];
  }

  /// Per-lane machine state, field-for-field FastEngine/Pipeline
  /// compatible: states move freely between backends.
  MachineState save_state(std::size_t lane) const;
  void load_state(std::size_t lane, const MachineState& ms);
  /// Donation: moves the lane's tables out (the lane is not runnable
  /// until put_state). O(1) — the lane-coalescing path migrates sessions
  /// into and out of groups without copying multi-MB tables.
  MachineState take_state(std::size_t lane);
  void put_state(std::size_t lane, MachineState&& ms);

  /// Dirty-row epoch control per lane (machine_state.h DirtyRows),
  /// mirroring Pipeline::reset_dirty_rows/dirty_row_count. The epoch
  /// travels with the lane's MachineState through save/load/take/put, so
  /// it survives lane-group donation.
  void reset_dirty_rows(std::size_t lane);
  std::uint64_t dirty_row_count(std::size_t lane) const;

  const env::Environment& environment(std::size_t lane) const {
    return *image_[lane]->env;
  }
  const PipelineConfig& config(std::size_t lane) const {
    return config_[lane];
  }
  const AddressMap& address_map(std::size_t lane) const {
    return map_[lane];
  }
  std::shared_ptr<const EnvImage> env_image(std::size_t lane) const {
    return image_[lane];
  }

  /// Batched stage-3 arithmetic: new_q[i] and a 5-bit saturation mask
  /// (bits 0..2 the three DSP products in {r, old, next} order, bits
  /// 3..4 the two adder stages) per packed slot. Public because the
  /// kernel implementations are free functions (lane_engine.cpp keeps
  /// the ISA-specific ones in an anonymous namespace).
  struct KernelArgs {
    std::size_t n = 0;
    const fixed::raw_t* r = nullptr;
    const fixed::raw_t* q_old = nullptr;
    const fixed::raw_t* q_next = nullptr;
    const fixed::raw_t* alpha = nullptr;
    const fixed::raw_t* one_minus_alpha = nullptr;
    const fixed::raw_t* alpha_gamma = nullptr;
    const std::int64_t* half = nullptr;     // rounding bias 1<<(shift-1)
    const std::uint64_t* shift = nullptr;   // coeff_fmt.frac
    const fixed::raw_t* lo = nullptr;       // q_fmt.min_raw()
    const fixed::raw_t* hi = nullptr;       // q_fmt.max_raw()
    fixed::raw_t* new_q = nullptr;
    std::uint8_t* sat_bits = nullptr;
  };
  using KernelFn = void (*)(const KernelArgs&);

 private:
  // Qmax raise window, as in FastEngine (telemetry-order comments there).
  struct RaiseEvent {
    StateId state = kInvalidState;
    bool raised = false;
  };
  static constexpr std::uint64_t kNoAddr = ~std::uint64_t{0};

  /// Per-lane run control while a group run is in flight.
  struct RunCtl {
    std::uint64_t sample_target = 0;  // 0 => iteration/drain mode
    std::uint64_t remaining = 0;      // iteration-mode/drain countdown
    std::uint64_t iters_at_entry = 0;
  };

  /// Dense per-lane execution record, materialized from the member
  /// arrays at run_group entry and committed back at exit. The issue and
  /// retire passes run entirely off one of these (a single base pointer,
  /// like FastEngine's `this`) — going through the per-lane member
  /// vectors on every access costs a second dependent load per field,
  /// which at ~60 fields per iteration dwarfs the update itself.
  struct Hot {
    explicit Hot(const RngBank& r) : rng(r) {}

    RngBank rng;  // by value: LFSR registers stay in-record
    PipelineStats stats;
    Coefficients coeff;
    fixed::Format q_fmt;
    fixed::Format coeff_fmt;
    std::uint64_t eps_threshold = 0;
    unsigned epsilon_bits = 0;
    unsigned action_bits = 0;
    unsigned state_bits = 0;
    std::uint64_t max_episode_length = 0;

    // Table/image pointers (stable for the duration of a run).
    fixed::raw_t* learn_tables[2] = {nullptr, nullptr};  // [0]=q, [1]=q2
    fixed::raw_t* qmax_v = nullptr;
    ActionId* qmax_a = nullptr;
    std::uint8_t* dirty = nullptr;  // per-state dirty-row flags
    const fixed::raw_t* reward = nullptr;
    const std::uint8_t* terminal = nullptr;
    const EnvImage::SaRecord* sa_rec = nullptr;  // null => compute

    const env::GridWorld* grid = nullptr;
    const env::Environment* env = nullptr;
    unsigned noise_bits = 0;
    StateId num_states = 0;
    ActionId num_actions = 0;

    // Walk state.
    std::uint8_t episode_start = 1;
    StateId state = 0;
    ActionId pending_action = kInvalidAction;
    std::uint64_t episode_steps = 0;

    // Forwarding-reconstruction rings.
    std::uint64_t wb[3] = {kNoAddr, kNoAddr, kNoAddr};
    RaiseEvent raise[2];
    std::uint64_t dsp_sat[3] = {0, 0, 0};

    std::vector<SampleTrace>* trace = nullptr;
    telemetry::TelemetrySink* sink = nullptr;

    // In-flight slot (issue pass -> retire pass of the same round).
    std::uint64_t iter = 0;
    std::uint64_t sa_addr = 0;
    std::uint64_t tagged_sa = 0;
    std::uint64_t fwd_next_addr = 0;
    StateId s = 0;
    StateId s_next = 0;
    ActionId a = 0;
    ActionId a_next = 0;
    std::uint8_t table = 0;
    std::uint8_t end = 0;
    std::uint8_t active = 0;
    std::uint8_t tel_sa = 0;
    std::uint8_t tel_next = 0;
    std::uint8_t tel_fq = 0;

    std::uint64_t q_addr(StateId st, ActionId ac) const {
      return (static_cast<std::uint64_t>(st) << action_bits) | ac;
    }
    std::uint64_t tagged(unsigned tbl, StateId st, ActionId ac) const {
      return (static_cast<std::uint64_t>(tbl)
              << (state_bits + action_bits)) |
             q_addr(st, ac);
    }
  };

  void init_lanes(const std::vector<LaneSpec>& lanes);
  Hot make_hot(std::size_t lane);
  void commit_hot(std::size_t lane);

  // The issue half of a round is phased so each phase issues every live
  // lane's prefetches before any lane consumes them: pass_addr draws the
  // pre-transition LFSR values and prefetches the {s,a}-indexed lines,
  // pass_next resolves the transition and prefetches the s'-indexed
  // lines, and pass_read gathers operands through lines that are already
  // in flight. With N lanes that turns N serialized miss chains into N
  // overlapped ones — the software analogue of the paper's replicated
  // pipelines hiding Q-table access latency.
  template <Algorithm kAlgo, bool kTel>
  void pass_addr(Hot& L, std::size_t slot);
  template <Algorithm kAlgo, bool kMono>
  static void pass_next(Hot& L);
  template <Algorithm kAlgo, bool kMono, bool kCountFwd, bool kTel>
  void pass_read(Hot& L, std::size_t slot);
  template <Algorithm kAlgo, bool kMono, bool kTel>
  void pass_retire(Hot& L, std::size_t slot);
  template <Algorithm kAlgo, bool kMono, bool kCountFwd, bool kTel>
  void run_rounds(std::vector<std::size_t>& live);
  template <Algorithm kAlgo, bool kMono, bool kCountFwd>
  void run_rounds_any(std::vector<std::size_t>& live);
  template <Algorithm kAlgo>
  void run_rounds_algo(std::vector<std::size_t>& live);
  /// Entry bookkeeping + dispatch + exit accounting for a group run.
  /// `samples_mode` selects the run_samples contract (values are
  /// absolute sample targets) vs run_iterations (values are counts).
  void run_group(const std::vector<std::size_t>& lanes_to_run,
                 const std::vector<std::uint64_t>& values,
                 bool samples_mode);
  void pack_params(const std::vector<std::size_t>& live);

  void exact_row_max(std::size_t lane,
                     const std::vector<fixed::raw_t>& table, StateId s,
                     fixed::raw_t& value, ActionId& action) const;
  static StateId hot_next_state(Hot& L, StateId s, ActionId a);

  static bool hot_wb_hit(const Hot& L, std::uint64_t tagged) {
    return tagged == L.wb[0] || tagged == L.wb[1] || tagged == L.wb[2];
  }
  static std::uint8_t hot_ring_distance(const Hot& L,
                                        std::uint64_t tagged) {
    if (tagged == L.wb[0]) return 1;
    if (tagged == L.wb[1]) return 2;
    if (tagged == L.wb[2]) return 3;
    return 0;
  }
  static bool hot_raise_hit(const Hot& L, StateId s) {
    return (L.raise[0].raised && L.raise[0].state == s) ||
           (L.raise[1].raised && L.raise[1].state == s);
  }

  std::size_t lanes_ = 0;
  KernelFn kernel_ = nullptr;

  // Per-lane constants.
  std::vector<PipelineConfig> config_;
  std::vector<std::shared_ptr<const EnvImage>> image_;
  std::vector<AddressMap> map_;
  std::vector<Coefficients> coeff_;
  std::vector<std::uint64_t> eps_threshold_;

  // Per-lane LFSR banks (contiguous; one RngBank is the four per-purpose
  // 32-bit registers plus the address map).
  std::vector<RngBank> rng_;

  // Per-lane tables.
  std::vector<std::vector<fixed::raw_t>> q_;
  std::vector<std::vector<fixed::raw_t>> q2_;
  std::vector<std::vector<fixed::raw_t>> qmax_value_;
  std::vector<std::vector<ActionId>> qmax_action_;

  // Per-lane dirty-row tracking (machine_state.h DirtyRows), marked at
  // the retire-pass write-back through Hot::dirty.
  std::vector<std::vector<std::uint8_t>> dirty_rows_;
  std::vector<std::uint8_t> dirty_all_;

  // Walk state, flat per-lane arrays.
  std::vector<std::uint8_t> episode_start_;
  std::vector<StateId> state_;
  std::vector<ActionId> pending_action_;
  std::vector<std::uint64_t> episode_steps_;

  // Forwarding-reconstruction rings, flat per-lane arrays.
  std::vector<std::array<std::uint64_t, 3>> wb_ring_;
  std::vector<std::array<RaiseEvent, 2>> raise_ring_;

  std::vector<PipelineStats> stats_;
  std::vector<std::array<std::uint64_t, 3>> dsp_saturations_;
  std::vector<std::vector<SampleTrace>*> trace_;
  std::vector<telemetry::TelemetrySink*> telemetry_;

  std::vector<RunCtl> ctl_;

  // Kernel constants per lane (gathered into packed arrays per live set).
  std::vector<fixed::raw_t> k_alpha_;
  std::vector<fixed::raw_t> k_one_minus_alpha_;
  std::vector<fixed::raw_t> k_alpha_gamma_;
  std::vector<std::int64_t> k_half_;
  std::vector<std::uint64_t> k_shift_;
  std::vector<fixed::raw_t> k_lo_;
  std::vector<fixed::raw_t> k_hi_;

  // Kernel operand scratch, indexed by packed live-lane slot. SoA so the
  // kernel streams contiguous arrays; every other per-iteration field
  // lives in the lane's Hot record.
  struct Scratch {
    std::vector<fixed::raw_t> r;
    std::vector<fixed::raw_t> q_old;
    std::vector<fixed::raw_t> q_next;
    std::vector<fixed::raw_t> new_q;
    std::vector<std::uint8_t> sat_bits;
    // Packed per-slot kernel parameters (rebuilt when the live set
    // changes).
    std::vector<fixed::raw_t> p_alpha;
    std::vector<fixed::raw_t> p_one_minus_alpha;
    std::vector<fixed::raw_t> p_alpha_gamma;
    std::vector<std::int64_t> p_half;
    std::vector<std::uint64_t> p_shift;
    std::vector<fixed::raw_t> p_lo;
    std::vector<fixed::raw_t> p_hi;
    void resize(std::size_t n);
  };
  Scratch sc_;
  std::vector<Hot> hot_;  // rebuilt at run_group entry
  bool params_dirty_ = true;
};

}  // namespace qta::qtaccel

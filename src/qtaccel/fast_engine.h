// Fast functional backend ("turbo engine") — bit-exact batch replay of
// the accelerator without the cycle-accurate machinery.
//
// FastEngine executes the accelerator's exact semantics — the same LFSR
// draw sequences, the same fixed-point DSP operation order and
// saturation, the same monotone-Qmax approximation, the same episode
// control — straight against flat arrays: no SimKernel, no per-cycle
// Bram port accounting, no pipeline latches, and no virtual dispatch in
// the inner loop (deterministic environments are pre-baked into a flat
// transition table). The retired SampleTrace sequence and the final
// Q/Qmax tables are bit-identical to both GoldenModel and Pipeline;
// tests/fast_engine_test.cpp proves it differentially per algorithm.
//
// PipelineStats is reconstructed analytically instead of simulated:
//   cycles        = issue ticks + drain (forward: iterations + pipeline
//                   depth - 1; stall: 4 per iteration),
//   fwd_q_sa/next = recomputed from the dependency distance between
//                   consecutive updates (a 3-deep ring of write-back
//                   addresses mirrors the forwarding queue),
//   fwd_qmax      = recomputed from the qmax raises of the two preceding
//                   iterations (the only in-flight raises a stage-2 read
//                   can observe ahead of BRAM commit).
// docs/fast_engine.md carries the full fidelity matrix and says when the
// cycle-accurate backend is mandatory (waveforms, port-conflict
// auditing, shared-table collision modeling).
//
// Backend selection lives one layer up: runtime::Engine (see
// src/runtime/engine.h) constructs a Pipeline or a FastEngine per
// config.backend behind one uniform surface.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "env/environment.h"
#include "qtaccel/action_units.h"
#include "qtaccel/config.h"
#include "qtaccel/pipeline.h"  // PipelineStats, SampleTrace

namespace qta::env {
class GridWorld;  // devirtualized fast path (see FastEngine::next_state)
}  // namespace qta::env

namespace qta::qtaccel {

class FastEngine {
 public:
  FastEngine(const env::Environment& env, const PipelineConfig& config);

  /// Replays exactly `n` iterations (bubbles included) — the same retire
  /// stream Pipeline::run_iterations(n) produces.
  void run_iterations(std::uint64_t n);

  /// Replays until at least `n` samples retired, including the
  /// pipeline's drain overshoot (forward mode retires exactly 3 extra
  /// iterations; stall mode none) so the final tables stay bit-identical
  /// to Pipeline::run_samples(n).
  void run_samples(std::uint64_t n);

  const PipelineStats& stats() const { return stats_; }
  void set_trace(std::vector<SampleTrace>* trace) { trace_ = trace; }

  /// Attaches a telemetry sink (telemetry/sink.h): one StepEvent per
  /// replayed iteration plus one RunEvent per run_* call with the
  /// analytic cycle attribution. Zero-cost when detached — the step
  /// loop takes the sink presence as a template parameter, so the
  /// telemetry branches compile out of the hot path entirely.
  void set_telemetry(telemetry::TelemetrySink* sink) { telemetry_ = sink; }

  fixed::raw_t q_raw(StateId s, ActionId a) const;
  double q_value(StateId s, ActionId a) const;  // qtlint: allow(datapath-purity)
  /// Double Q-Learning's second table (aborts for other algorithms).
  fixed::raw_t q2_raw(StateId s, ActionId a) const;
  /// Row-major doubles; for kDoubleQ the acting estimate (A + B) / 2.
  std::vector<double> q_as_double() const;  // qtlint: allow(datapath-purity)
  std::vector<ActionId> greedy_policy() const;
  QmaxUnit::Entry qmax_entry(StateId s) const;

  /// Warm-start support, mirroring Pipeline::preset_q/rebuild_qmax.
  void preset_q(StateId s, ActionId a, fixed::raw_t value);
  void rebuild_qmax();

  /// Saturation count across the three stage-3 DSP products (same events
  /// Pipeline::dsp_saturations reports).
  std::uint64_t dsp_saturations() const {
    return dsp_saturations_[0] + dsp_saturations_[1] + dsp_saturations_[2];
  }

  /// Complete machine state (qtaccel/machine_state.h) — field-for-field
  /// compatible with Pipeline::save_state/load_state, so a state saved
  /// on either backend resumes bit-exactly on the other.
  MachineState save_state() const;
  void load_state(const MachineState& ms);

  /// Dirty-row epoch control (machine_state.h DirtyRows), mirroring
  /// Pipeline::reset_dirty_rows/dirty_row_count.
  void reset_dirty_rows();
  std::uint64_t dirty_row_count() const;

  const env::Environment& environment() const { return env_; }
  const PipelineConfig& config() const { return config_; }
  const AddressMap& address_map() const { return map_; }

 private:
  // One replayed iteration, specialized per (algorithm, Qmax mode,
  // fwd_qmax counting). The specialization is not about the branches —
  // they predict fine — but about size: the pruned body inlines into the
  // run_steps loop, which lets the optimizer keep the walk and LFSR state
  // in registers across iterations instead of spilling around an opaque
  // per-sample call.
  template <Algorithm kAlgo, bool kMono, bool kCountFwd, bool kTel>
  void step_one_t();
  /// Runs `iterations` steps when `sample_target` == 0, otherwise steps
  /// until stats_.samples reaches `sample_target`. kTel compiles the
  /// telemetry emission in or out of the loop body.
  template <Algorithm kAlgo, bool kMono, bool kCountFwd, bool kTel>
  void run_steps(std::uint64_t iterations, std::uint64_t sample_target);
  /// Resolves kTel from telemetry_ at run time, once per run_* call.
  template <Algorithm kAlgo, bool kMono, bool kCountFwd>
  void run_steps_any(std::uint64_t iterations, std::uint64_t sample_target);
  template <Algorithm kAlgo>
  void run_algo(std::uint64_t iterations, std::uint64_t sample_target);
  void run_steps_dispatch(std::uint64_t iterations,
                          std::uint64_t sample_target);
  void exact_row_max(const std::vector<fixed::raw_t>& table, StateId s,
                     fixed::raw_t& value, ActionId& action) const;
  bool is_terminal(StateId s) const {
    return terminal_[s] != 0;
  }
  StateId next_state(StateId s, ActionId a);

  const env::Environment& env_;
  PipelineConfig config_;
  AddressMap map_;
  Coefficients coeff_;
  std::uint64_t eps_threshold_;
  RngBank rng_;

  std::vector<fixed::raw_t> q_;       // indexed by AddressMap::q_addr
  std::vector<fixed::raw_t> q2_;      // Double Q-Learning's table B
  std::vector<fixed::raw_t> reward_;  // quantized R(s, a)
  std::vector<fixed::raw_t> qmax_value_;
  std::vector<ActionId> qmax_action_;

  // Pre-baked environment: terminal flags always; the flat transition
  // table only for deterministic environments small enough to stay
  // cache-resident (stochastic ones draw noise per step, so the call
  // into the environment stays).
  std::vector<std::uint8_t> terminal_;
  std::vector<StateId> next_;  // empty => call the environment
  unsigned noise_bits_ = 0;
  // Non-null when env_ is a deterministic GridWorld: transitions then go
  // through the inline, devirtualized GridWorld::transition (the class is
  // final), so the optimizer sees the whole inner loop and keeps the
  // walk/LFSR state in registers instead of spilling around an opaque
  // virtual call.
  const env::GridWorld* grid_ = nullptr;

  // Walk state (identical to the golden model's).
  bool episode_start_ = true;
  StateId state_ = 0;
  ActionId pending_action_ = kInvalidAction;
  std::uint64_t episode_steps_ = 0;

  // --- PipelineStats reconstruction state ---
  // Mirror of the 3-deep forwarding queue: tagged write-back addresses of
  // the last three retired samples (bubbles push nothing, exactly like
  // WritebackQueue). kNoAddr slots are empty (AddressMap addresses use at
  // most state_bits + action_bits + 1 bits, so ~0 never collides).
  static constexpr std::uint64_t kNoAddr = ~std::uint64_t{0};
  std::array<std::uint64_t, 3> wb_ring_{kNoAddr, kNoAddr, kNoAddr};
  bool wb_hit(std::uint64_t tagged) const {
    return tagged == wb_ring_[0] || tagged == wb_ring_[1] ||
           tagged == wb_ring_[2];
  }
  // Telemetry-only: queue position (1 = newest) the hit would have been
  // served from — the same distance the cycle backend reports.
  std::uint8_t ring_distance(std::uint64_t tagged) const {
    if (tagged == wb_ring_[0]) return 1;
    if (tagged == wb_ring_[1]) return 2;
    if (tagged == wb_ring_[2]) return 3;
    return 0;
  }
  // Qmax raises of the two preceding iterations: at stage 2 of iteration
  // i the Qmax BRAM has committed raises through iteration i-3, so the
  // forwarding network is what surfaces raises from i-1 and i-2 (older
  // queue entries are already committed and can never strictly raise).
  struct RaiseEvent {
    StateId state = kInvalidState;
    bool raised = false;
  };
  std::array<RaiseEvent, 2> raise_ring_{};
  bool raise_hit(StateId s) const {
    return (raise_ring_[0].raised && raise_ring_[0].state == s) ||
           (raise_ring_[1].raised && raise_ring_[1].state == s);
  }

  PipelineStats stats_;
  // Dirty-row tracking (machine_state.h DirtyRows): marked at the Q
  // write / Qmax raise site in step_one_t and at preset_q.
  std::vector<std::uint8_t> dirty_rows_;
  bool dirty_all_ = true;
  // Saturations per stage-3 product in {r, old, next} order, matching
  // MachineState::dsp_saturations and Pipeline's three DspMultipliers.
  std::array<std::uint64_t, 3> dsp_saturations_{};
  std::vector<SampleTrace>* trace_ = nullptr;
  telemetry::TelemetrySink* telemetry_ = nullptr;
};

}  // namespace qta::qtaccel

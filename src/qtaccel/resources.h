// Builds the resource ledger for a QTAccel instance, from which the device
// model produces the utilization/clock/power numbers of Figures 3-6.
//
// Inventory per pipeline (Section IV-B):
//   * Q table   : |S|*|A| words of q_fmt.width bits, dual-port
//   * R table   : |S|*|A| words, single-port
//   * Qmax table: |S| words of (q_fmt.width + action_bits), dual-port
//   * 4 DSP multipliers (alpha*gamma, alpha*R, (1-alpha)*Q, alpha*gamma*Q')
//   * pipeline/coefficient registers, LFSRs, forwarding registers
//   * transition-function and control LUTs
#pragma once

#include "env/environment.h"
#include "hw/resource_ledger.h"
#include "qtaccel/config.h"

namespace qta::qtaccel {

/// Ledger for `pipelines` parallel instances. In shared-table mode
/// (share_tables = true, pipelines == 2) the tables are counted once; in
/// independent mode each pipeline brings its own bank. The per-pipeline
/// logic (DSP/FF/LUT) always multiplies.
hw::ResourceLedger build_resources(const env::Environment& env,
                                   const PipelineConfig& config,
                                   unsigned pipelines = 1,
                                   bool share_tables = false);

/// Ledger for the probability-table generalization (Section VII-B): adds
/// the |S|*|A| probability table (and the exp LUT for EXP3-style updates).
hw::ResourceLedger build_resources_with_probability_table(
    const env::Environment& env, const PipelineConfig& config,
    unsigned exp_lut_log2_entries = 10);

}  // namespace qta::qtaccel

#include "qtaccel/qmax_unit.h"

#include "common/bit_math.h"
#include "common/check.h"

namespace qta::qtaccel {

QmaxUnit::QmaxUnit(StateId num_states, unsigned q_width,
                   unsigned action_bits, unsigned ports)
    : q_width_(q_width),
      action_bits_(action_bits),
      bram_("qmax_table", num_states, q_width + action_bits, ports) {
  QTA_CHECK(q_width >= 2 && q_width <= 48);
  QTA_CHECK(action_bits >= 1 && action_bits <= 8);
}

std::uint64_t QmaxUnit::pack(const Entry& e) const {
  const std::uint64_t vmask = (std::uint64_t{1} << q_width_) - 1;
  const auto v = static_cast<std::uint64_t>(e.value) & vmask;
  return v | (static_cast<std::uint64_t>(e.action) << q_width_);
}

QmaxUnit::Entry QmaxUnit::unpack(std::uint64_t word) const {
  Entry e;
  const std::uint64_t vmask = (std::uint64_t{1} << q_width_) - 1;
  std::uint64_t v = word & vmask;
  // Sign-extend the q_width-bit value.
  const std::uint64_t sign = std::uint64_t{1} << (q_width_ - 1);
  if (v & sign) v |= ~vmask;
  e.value = static_cast<fixed::raw_t>(v);
  e.action = static_cast<ActionId>(bits(word, q_width_, action_bits_));
  return e;
}

QmaxUnit::Entry QmaxUnit::read(unsigned port, StateId s) {
  return unpack(static_cast<std::uint64_t>(bram_.read(port, s)));
}

bool QmaxUnit::raise(unsigned port, StateId s, ActionId a,
                     fixed::raw_t new_q) {
  // Read-modify-write on one port: the output latch supplies the old word
  // for the strict-greater comparator.
  const Entry old = unpack(static_cast<std::uint64_t>(bram_.peek(s)));
  if (new_q > old.value) {
    bram_.write(port, s, static_cast<fixed::raw_t>(pack({new_q, a})));
    return true;
  }
  // The port is still occupied by the (suppressed) access this cycle.
  bram_.read(port, s);
  return false;
}

QmaxUnit::Entry QmaxUnit::peek(StateId s) const {
  return unpack(static_cast<std::uint64_t>(bram_.peek(s)));
}

void QmaxUnit::preset(StateId s, const Entry& e) {
  bram_.preset(s, static_cast<fixed::raw_t>(pack(e)));
}

}  // namespace qta::qtaccel

// Cycle-accurate model of the QTAccel 4-stage pipeline (Figure 1).
//
// Stage 1: episode control (random start on episode boundaries), behavior
//          action (LFSR-random for Q-Learning; the forwarded stage-2
//          action for SARSA), transition function, Q(S,A) and R reads,
//          coefficient formation.
// Stage 2: update-policy action for S' — Q-Learning reads the Qmax table;
//          SARSA draws epsilon-greedy (greedy branch reads Qmax; the
//          exploratory branch's Q(S',A') read is physically the SAME
//          access as the next iteration's stage-1 Q(S,A) read, because
//          on-policy means (S',A') of iteration i is (S,A) of i+1 — this
//          is how the design stays within the Q-table's two BRAM ports).
// Stage 3: three DSP products and the saturating adder tree.
// Stage 4: Q-table write-back and conditional Qmax raise.
//
// Hazards are closed by a 3-deep write-back forwarding queue
// (qtaccel/forwarding.h); with it the pipeline retires a trace that is
// bit-identical to the sequential golden model while sustaining one
// sample per clock cycle. Every BRAM access goes through the port-checked
// Bram model, so the dual-port budget is enforced each cycle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "env/environment.h"
#include "hw/bram.h"
#include "hw/dsp.h"
#include "hw/resource_ledger.h"
#include "hw/sim_kernel.h"
#include "qtaccel/action_units.h"
#include "qtaccel/config.h"
#include "qtaccel/forwarding.h"
#include "qtaccel/golden_model.h"  // SampleTrace, RunCounters
#include "qtaccel/qmax_unit.h"
#include "telemetry/sink.h"  // the one allowed telemetry include (qtlint)

namespace qta::qtaccel {

struct MachineState;  // qtaccel/machine_state.h

struct PipelineStats : RunCounters {
  Cycle cycles = 0;
  std::uint64_t issued = 0;
  std::uint64_t stall_cycles = 0;     // cycles with issue suppressed (stall mode)
  std::uint64_t fwd_q_sa = 0;         // Q(S,A) served from the forwarding queue
  std::uint64_t fwd_q_next = 0;       // Q(S',A') served from the queue
  std::uint64_t fwd_qmax = 0;         // Qmax raised by an in-flight write-back
  std::uint64_t adder_saturations = 0;

  // Host-side throughput metric, never part of the datapath.
  // qtlint: push-allow(datapath-purity)
  double samples_per_cycle() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(samples) /
                             static_cast<double>(cycles);
  }
  // qtlint: pop-allow(datapath-purity)
};

class Pipeline {
 public:
  /// `env` must outlive the pipeline. When `shared` BRAMs are passed (see
  /// multi_pipeline.h) the pipeline uses them instead of owning tables;
  /// `port_base` selects which port pair this pipeline drives.
  Pipeline(const env::Environment& env, const PipelineConfig& config);

  /// Shared-table constructor for the dual-pipeline mode (Section VII-A).
  /// The tables must be pre-sized for `env`; this pipeline uses ports
  /// {port_base, port_base + 1}.
  Pipeline(const env::Environment& env, const PipelineConfig& config,
           hw::Bram* shared_q, hw::Bram* shared_r, QmaxUnit* shared_qmax,
           unsigned port_base);

  /// Issues exactly `n` iterations (bubbles included), then drains.
  void run_iterations(std::uint64_t n);

  /// Issues until at least `n` samples (non-bubble updates) retire, then
  /// drains; may overshoot by the pipeline depth.
  void run_samples(std::uint64_t n);

  /// Single-cycle stepping, for multi-pipeline lockstep and tests.
  /// `allow_issue` gates stage 1; returns true if an iteration issued.
  bool tick(bool allow_issue);
  bool in_flight() const;

  const PipelineStats& stats() const { return stats_; }
  void set_trace(std::vector<SampleTrace>* trace) { trace_ = trace; }

  /// Textual waveform: one line per cycle showing which iteration sits in
  /// each stage ("[   42] S1 s=5 a=2 -> 6 | S2 ... | S3 ... | RET ...").
  /// Pass nullptr to stop tracing. Intended for debugging and docs; it is
  /// formatted per tick, so keep runs short while enabled.
  void set_waveform(std::ostream* os) { waveform_ = os; }

  /// Attaches a telemetry sink (telemetry/sink.h); one CycleEvent is
  /// emitted per tick. Pass nullptr to detach. Observation-only: the
  /// sink never feeds the datapath, so the retired trace and final
  /// tables are bit-identical with or without one attached. Costs a
  /// null check per tick when detached.
  void set_telemetry(telemetry::TelemetrySink* sink) { telemetry_ = sink; }

  fixed::raw_t q_raw(StateId s, ActionId a) const;
  double q_value(StateId s, ActionId a) const;  // qtlint: allow(datapath-purity)
  /// Double Q-Learning's second table (aborts for other algorithms).
  fixed::raw_t q2_raw(StateId s, ActionId a) const;
  /// Row-major doubles; for kDoubleQ the acting estimate (A + B) / 2.
  std::vector<double> q_as_double() const;  // qtlint: allow(datapath-purity)
  /// Greedy argmax policy over the learned table (kDoubleQ: over A+B).
  std::vector<ActionId> greedy_policy() const;
  QmaxUnit::Entry qmax_entry(StateId s) const;

  /// Warm-start support (qtaccel/table_io.h): overwrites one Q entry
  /// outside of simulation time. Call rebuild_qmax() after a batch of
  /// presets so the monotone table matches the loaded values.
  void preset_q(StateId s, ActionId a, fixed::raw_t value);
  /// Sets every Qmax entry to its row's exact (max, argmax). Only valid
  /// while nothing is in flight.
  void rebuild_qmax();

  const hw::Bram& q_table() const { return *q_table_; }
  const hw::Bram& reward_table() const { return *r_table_; }
  const env::Environment& environment() const { return env_; }
  const PipelineConfig& config() const { return config_; }
  const AddressMap& address_map() const { return map_; }

  /// Saturation count across the three stage-3 DSP multipliers.
  std::uint64_t dsp_saturations() const;

  /// Complete post-drain machine state (qtaccel/machine_state.h); only
  /// valid while nothing is in flight. save_state() then load_state()
  /// on a fresh pipeline resumes the run bit-exactly — including the
  /// forwarding queue, reconstructed from the saved tagged addresses and
  /// the committed tables.
  MachineState save_state() const;
  void load_state(const MachineState& ms);

  /// Dirty-row epoch control (machine_state.h DirtyRows). Rows are
  /// marked at every table write site (stage-4 write-back + Qmax raise,
  /// preset_q); reset_dirty_rows() starts a fresh epoch after a full
  /// checkpoint. dirty_row_count() collapses to num_states while the
  /// epoch is conservative (fresh pipeline, adopted unknown state,
  /// rebuild_qmax).
  void reset_dirty_rows();
  std::uint64_t dirty_row_count() const;

 private:
  struct S1Latch {
    bool valid = false;
    bool bubble = false;
    StateId s = 0;
    ActionId a = 0;
    StateId s_next = 0;
    bool end = false;
    fixed::raw_t q_sa_read = 0;
    fixed::raw_t r = 0;
    unsigned table = 0;  // Double-Q: which table this sample updates
  };
  struct S2Latch {
    bool valid = false;
    bool bubble = false;
    StateId s = 0;
    ActionId a = 0;
    StateId s_next = 0;
    bool end = false;
    fixed::raw_t q_sa_read = 0;
    fixed::raw_t r = 0;
    unsigned table = 0;
    fixed::raw_t q_next = 0;       // resolved value (greedy/Qmax path)
    ActionId a_next = kInvalidAction;
    bool q_next_pending = false;   // SARSA explore: filled by the shared
                                   // stage-1 read
    bool q_next_fwd = false;       // stage 3 must forward at fwd addr
    std::uint64_t q_next_fwd_addr = 0;  // tagged forwarding address
  };
  struct S3Latch {
    bool valid = false;
    bool bubble = false;
    StateId s = 0;
    ActionId a = 0;
    fixed::raw_t r = 0;
    fixed::raw_t new_q = 0;
    StateId s_next = 0;
    bool end = false;
    unsigned table = 0;
  };

  void init_tables();
  void do_stage4();
  void do_stage3();
  void do_stage2(bool will_issue);
  void do_stage1();
  /// Effective Qmax entry for `s` = stored entry max-combined with
  /// in-flight write-backs (monotone mode) or the forwarded exact row scan.
  QmaxUnit::Entry effective_max(StateId s);

  const env::Environment& env_;
  PipelineConfig config_;
  AddressMap map_;
  Coefficients coeff_;
  std::uint64_t eps_threshold_;
  RngBank rng_;

  hw::SimKernel kernel_;
  std::unique_ptr<hw::Bram> owned_q_, owned_q2_, owned_r_;
  std::unique_ptr<QmaxUnit> owned_qmax_;
  hw::Bram* q_table_;
  hw::Bram* q2_table_ = nullptr;  // Double-Q table B
  hw::Bram* r_table_;
  QmaxUnit* qmax_;
  unsigned rd_port_;  // stage-1/2 read port
  unsigned wr_port_;  // stage-4 write port

  hw::DspMultiplier dsp_r_, dsp_old_, dsp_next_;
  WritebackQueue wbq_;

  // Committed (current) and staged (next) latches.
  S1Latch s1_, s1_next_;
  S2Latch s2_, s2_next_;
  S3Latch s3_, s3_next_;

  // Issue-side walk state.
  bool issue_episode_start_ = true;
  StateId issue_state_ = 0;
  std::uint64_t issue_episode_steps_ = 0;
  ActionId forwarded_action_ = kInvalidAction;  // SARSA stage2 -> stage1
  Cycle last_issue_cycle_ = 0;  // stall-mode spacing

  void emit_waveform_line();
  void emit_cycle_event(bool allow_issue, bool issued,
                        const PipelineStats& before, std::uint64_t dsp_before);

  // Dirty-row tracking (machine_state.h DirtyRows): one byte per state,
  // marked where stage 4 commits the Q write and conditional Qmax raise.
  std::vector<std::uint8_t> dirty_rows_;
  bool dirty_all_ = true;

  PipelineStats stats_;
  std::vector<SampleTrace>* trace_ = nullptr;
  std::ostream* waveform_ = nullptr;
  std::string waveform_line_;  // reused per cycle to avoid realloc churn

  // Per-cycle telemetry scratch, reset at the top of each tick while a
  // sink is attached; stage handlers deposit facts the flat stats_
  // counters cannot express (distances, the Qmax raise outcome).
  struct TelScratch {
    std::uint8_t fwd_sa_distance = 0;
    std::uint8_t fwd_next_distance = 0;
    bool qmax_raised = false;
  };
  TelScratch tel_;
  telemetry::TelemetrySink* telemetry_ = nullptr;
};

}  // namespace qta::qtaccel

// Sequential golden model of QTAccel.
//
// Executes the accelerator's exact semantics — same LFSR streams, same
// fixed-point DSP arithmetic (operation order included, since saturation
// is order-sensitive), same monotone-Qmax approximation, same episode
// control — but one update at a time with every write fully visible to
// the next iteration. The pipelined model (qtaccel/pipeline.h) must match
// this trace bit-for-bit; that equivalence is the test of the paper's
// claim that the pipeline "fully handles the dependencies between
// consecutive updates".
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "env/environment.h"
#include "qtaccel/action_units.h"
#include "qtaccel/config.h"

namespace qta::qtaccel {

/// One retired iteration, for trace comparison. A "bubble" is an
/// episode-start draw that landed on a terminal state (zero-length
/// episode, no update).
struct SampleTrace {
  bool bubble = false;
  StateId state = 0;
  ActionId action = 0;
  fixed::raw_t reward = 0;
  fixed::raw_t new_q = 0;
  StateId next_state = 0;
  bool end_episode = false;
  unsigned table = 0;  // Double Q-Learning: which table learned

  friend bool operator==(const SampleTrace&, const SampleTrace&) = default;
};

struct RunCounters {
  std::uint64_t iterations = 0;
  std::uint64_t samples = 0;   // committed updates (non-bubble)
  std::uint64_t episodes = 0;  // completed (terminal or watchdog)
  std::uint64_t bubbles = 0;
};

class GoldenModel {
 public:
  GoldenModel(const env::Environment& env, const PipelineConfig& config);

  /// Runs `iterations` iterations (bubbles included).
  void run(std::uint64_t iterations);

  /// When set, every retired iteration is appended here.
  void set_trace(std::vector<SampleTrace>* trace) { trace_ = trace; }

  fixed::raw_t q_raw(StateId s, ActionId a) const;
  double q_value(StateId s, ActionId a) const;
  /// Double Q-Learning's second table (aborts for other algorithms).
  fixed::raw_t q2_raw(StateId s, ActionId a) const;
  /// Full table as doubles (row-major by state), for convergence checks.
  /// For kDoubleQ this is the acting estimate (A + B) / 2.
  std::vector<double> q_as_double() const;

  /// Monotone Qmax entry (value, action); only tracked in kMonotoneTable
  /// mode.
  fixed::raw_t qmax_value(StateId s) const;
  ActionId qmax_action(StateId s) const;

  const RunCounters& counters() const { return counters_; }
  const PipelineConfig& config() const { return config_; }

 private:
  void run_one();
  /// Exact row maximum (tie -> lowest action) over `table`, for
  /// kExactScan mode and the Double-Q argmax.
  void exact_row_max(const std::vector<fixed::raw_t>& table, StateId s,
                     fixed::raw_t& value, ActionId& action) const;

  const env::Environment& env_;
  PipelineConfig config_;
  AddressMap map_;
  Coefficients coeff_;
  std::uint64_t eps_threshold_;
  RngBank rng_;

  std::vector<fixed::raw_t> q_;       // indexed by q_addr
  std::vector<fixed::raw_t> q2_;      // Double Q-Learning's table B
  std::vector<fixed::raw_t> reward_;  // quantized R(s, a)
  std::vector<fixed::raw_t> qmax_value_;
  std::vector<ActionId> qmax_action_;

  // Walk state.
  bool episode_start_ = true;
  StateId state_ = 0;
  ActionId pending_action_ = kInvalidAction;  // SARSA on-policy carry
  std::uint64_t episode_steps_ = 0;

  RunCounters counters_;
  std::vector<SampleTrace>* trace_ = nullptr;
};

}  // namespace qta::qtaccel

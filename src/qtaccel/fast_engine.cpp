#include "qtaccel/fast_engine.h"

#include <algorithm>

#include "common/check.h"
#include "env/grid_world.h"
#include "env/value_iteration.h"
#include "qtaccel/machine_state.h"

namespace qta::qtaccel {

namespace {
// Transition tables are pre-baked only while they stay cache-resident
// (2^16 entries = 256 KiB of StateId). Beyond that the lookup becomes a
// data-dependent random walk through DRAM/LLC — one serialized miss per
// sample, the slowest possible critical path — while environments compute
// transitions with a few ALU ops; the inner loop then calls the
// environment directly.
constexpr std::uint64_t kMaxPrebakedTransitions = std::uint64_t{1} << 16;

// Read-ahead hint for table rows whose index is already known one
// iteration before use. No-op where unsupported.
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}
}  // namespace

FastEngine::FastEngine(const env::Environment& env,
                       const PipelineConfig& config)
    : env_(env),
      config_(config),
      map_(make_address_map(env)),
      coeff_(make_coefficients(config)),
      eps_threshold_(
          epsilon_threshold(config.epsilon, config.epsilon_bits)),
      rng_(config.seed, map_) {
  validate_config(config, env);
  q_.assign(map_.depth(), 0);
  if (config.algorithm == Algorithm::kDoubleQ) {
    q2_.assign(map_.depth(), 0);
  }
  reward_.assign(map_.depth(), 0);
  // Host-side initialization boundary: quantizing the environment's
  // double rewards into the BRAM image, exactly as Pipeline::init_tables.
  // qtlint: push-allow(datapath-purity)
  for (StateId s = 0; s < env.num_states(); ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      reward_[map_.q_addr(s, a)] =
          fixed::from_double(env.reward(s, a), config.q_fmt);
    }
  }
  // qtlint: pop-allow(datapath-purity)
  qmax_value_.assign(env.num_states(), 0);
  qmax_action_.assign(env.num_states(), 0);

  terminal_.assign(env.num_states(), 0);
  for (StateId s = 0; s < env.num_states(); ++s) {
    terminal_[s] = env.is_terminal(s) ? 1 : 0;
  }
  // Fresh engine: conservative all-dirty epoch (see machine_state.h).
  dirty_rows_.assign(env.num_states(), 0);
  dirty_all_ = true;
  noise_bits_ = env.transition_noise_bits();
  if (noise_bits_ == 0) {
    grid_ = dynamic_cast<const env::GridWorld*>(&env);
  }
  if (noise_bits_ == 0 && grid_ == nullptr &&
      env.table_size() <= kMaxPrebakedTransitions) {
    next_.resize(env.table_size());
    for (StateId s = 0; s < env.num_states(); ++s) {
      for (ActionId a = 0; a < env.num_actions(); ++a) {
        next_[map_.q_addr(s, a)] = env.transition(s, a);
      }
    }
  }
}

StateId FastEngine::next_state(StateId s, ActionId a) {
  // GridWorld is final, so this call devirtualizes and inlines — the
  // paper's evaluation workload computes transitions with a handful of
  // ALU ops instead of chasing a pre-baked table through the LLC.
  if (grid_ != nullptr) return grid_->transition(s, a);
  if (!next_.empty()) return next_[map_.q_addr(s, a)];
  return noise_bits_ == 0
             ? env_.transition(s, a)
             : env_.transition(s, a,
                               rng_.draw_transition_noise(noise_bits_));
}

fixed::raw_t FastEngine::q_raw(StateId s, ActionId a) const {
  return q_[map_.q_addr(s, a)];
}

fixed::raw_t FastEngine::q2_raw(StateId s, ActionId a) const {
  QTA_CHECK(config_.algorithm == Algorithm::kDoubleQ);
  return q2_[map_.q_addr(s, a)];
}

// Host-side readback, identical to Pipeline's (nothing feeds back into
// the replay).
// qtlint: push-allow(datapath-purity)
double FastEngine::q_value(StateId s, ActionId a) const {
  if (config_.algorithm == Algorithm::kDoubleQ) {
    return (fixed::to_double(q_raw(s, a), config_.q_fmt) +
            fixed::to_double(q2_[map_.q_addr(s, a)], config_.q_fmt)) /
           2.0;
  }
  return fixed::to_double(q_raw(s, a), config_.q_fmt);
}

std::vector<double> FastEngine::q_as_double() const {
  std::vector<double> out;
  out.reserve(env_.table_size());
  for (StateId s = 0; s < env_.num_states(); ++s) {
    for (ActionId a = 0; a < env_.num_actions(); ++a) {
      out.push_back(q_value(s, a));
    }
  }
  return out;
}
// qtlint: pop-allow(datapath-purity)

std::vector<ActionId> FastEngine::greedy_policy() const {
  return env::greedy_policy_from(env_, q_as_double());
}

QmaxUnit::Entry FastEngine::qmax_entry(StateId s) const {
  QTA_CHECK(s < env_.num_states());
  return {qmax_value_[s], qmax_action_[s]};
}

void FastEngine::preset_q(StateId s, ActionId a, fixed::raw_t value) {
  q_[map_.q_addr(s, a)] = fixed::saturate(value, config_.q_fmt);
  dirty_rows_[s] = 1;
}

void FastEngine::rebuild_qmax() {
  if (config_.qmax != QmaxMode::kMonotoneTable ||
      config_.algorithm == Algorithm::kExpectedSarsa ||
      config_.algorithm == Algorithm::kDoubleQ) {
    return;  // no Qmax table in these configurations
  }
  for (StateId s = 0; s < env_.num_states(); ++s) {
    fixed::raw_t value;
    ActionId action;
    exact_row_max(q_, s, value, action);
    // The monotone table never reports below its reset value of 0.
    if (value < 0) {
      value = 0;
      action = 0;
    }
    qmax_value_[s] = value;
    qmax_action_[s] = action;
  }
  // Every Qmax row was rewritten (possibly lowered below the old
  // monotone value), so the epoch collapses to all-dirty.
  dirty_all_ = true;
}

void FastEngine::exact_row_max(const std::vector<fixed::raw_t>& table,
                               StateId s, fixed::raw_t& value,
                               ActionId& action) const {
  value = table[map_.q_addr(s, 0)];
  action = 0;
  for (ActionId a = 1; a < env_.num_actions(); ++a) {
    const fixed::raw_t v = table[map_.q_addr(s, a)];
    if (v > value) {
      value = v;
      action = a;
    }
  }
}

template <Algorithm kAlgo, bool kMono, bool kCountFwd, bool kTel>
void FastEngine::step_one_t() {
  const std::uint64_t iter = stats_.iterations;  // 0-based event index
  ++stats_.iterations;
  ++stats_.issued;

  if (episode_start_) {
    state_ = rng_.draw_start_state(env_.num_states());
    episode_steps_ = 0;
    pending_action_ = kInvalidAction;
    if (is_terminal(state_)) {
      // Zero-length episode: redraw next iteration. The bubble occupies
      // a pipeline slot (raise window advances) but pushes no write-back.
      ++stats_.bubbles;
      raise_ring_[1] = raise_ring_[0];
      raise_ring_[0] = {kInvalidState, false};
      if (trace_) {
        SampleTrace tr;
        tr.bubble = true;
        tr.state = state_;
        trace_->push_back(tr);
      }
      if constexpr (kTel) {
        telemetry::StepEvent ev;
        ev.iteration = iter;
        ev.bubble = true;
        telemetry_->on_step(ev);
      }
      return;
    }
  }

  // --- behavior action (stage 1) ---
  constexpr bool kRandomBehavior = kAlgo == Algorithm::kQLearning ||
                                   kAlgo == Algorithm::kDoubleQ;
  ActionId a;
  if (kRandomBehavior || episode_start_) {
    a = rng_.draw_random_action();
  } else {
    QTA_DCHECK(pending_action_ != kInvalidAction);
    a = pending_action_;
  }
  episode_start_ = false;

  const unsigned table =
      kAlgo == Algorithm::kDoubleQ ? rng_.draw_table_select() : 0;
  std::vector<fixed::raw_t>& learn = table == 1 ? q2_ : q_;
  const std::vector<fixed::raw_t>& eval =
      kAlgo == Algorithm::kDoubleQ && table == 0 ? q2_ : q_;

  const StateId s = state_;
  const StateId s_next = next_state(s, a);
  // The next iteration reads the Q/reward rows and the Qmax entry of
  // s_next; their addresses are known a full iteration ahead of use, so
  // start the (random, hence hardware-prefetcher-proof) fetches now. A
  // row can straddle a cache line, so touch both ends.
  {
    const std::uint64_t row = map_.q_addr(s_next, 0);
    const std::uint64_t row_end =
        row + ((std::uint64_t{1} << map_.action_bits) - 1);
    prefetch_ro(&q_[row]);
    prefetch_ro(&q_[row_end]);
    prefetch_ro(&reward_[row]);
    prefetch_ro(&reward_[row_end]);
    if (!q2_.empty()) {
      prefetch_ro(&q2_[row]);
      prefetch_ro(&q2_[row_end]);
    }
    prefetch_ro(&qmax_value_[s_next]);
  }
  const std::uint64_t sa_addr = map_.q_addr(s, a);
  const fixed::raw_t r = reward_[sa_addr];
  ++episode_steps_;
  const bool end = is_terminal(s_next) ||
                   episode_steps_ >= config_.max_episode_length;

  // In stall mode nothing raises Qmax ahead of BRAM commit (the next
  // iteration only issues once the pipe drained), so the fwd_qmax
  // counter (kCountFwd) never fires; the queue-address matches below
  // still do, because WritebackQueue entries are matched by address
  // equality and are never retired from the registers.

  // Telemetry deltas: fwd_qmax can bump in the stage-2 block below, the
  // saturation counters in the stage-3 arithmetic.
  const std::uint64_t tel_fwd_qmax_before = stats_.fwd_qmax;
  const std::uint64_t tel_sat_before =
      stats_.adder_saturations + dsp_saturations();

  // --- update-policy action and Q(S', A') (stage 2) ---
  fixed::raw_t q_next = 0;
  ActionId a_next = kInvalidAction;
  std::uint64_t fwd_next_addr = kNoAddr;  // set when the pipeline would
                                          // forward this read in stage 3
  if (!end) {
    if constexpr (kAlgo == Algorithm::kQLearning) {
      if constexpr (kMono) {
        q_next = qmax_value_[s_next];
        if (kCountFwd && raise_hit(s_next)) ++stats_.fwd_qmax;
      } else {
        ActionId ignored;
        exact_row_max(q_, s_next, q_next, ignored);
      }
    } else if constexpr (kAlgo == Algorithm::kDoubleQ) {
      // argmax under the learning table, value from the other table
      // (the cross read the pipeline forwards in stage 3).
      fixed::raw_t ignored;
      ActionId argmax;
      exact_row_max(learn, s_next, ignored, argmax);
      q_next = eval[map_.q_addr(s_next, argmax)];
      fwd_next_addr = map_.tagged_addr(table == 1 ? 0 : 1, s_next, argmax);
    } else if constexpr (kAlgo == Algorithm::kSarsa) {
      const RngBank::EpsilonDraw d =
          rng_.draw_epsilon(eps_threshold_, config_.epsilon_bits);
      if (d.greedy) {
        if constexpr (kMono) {
          q_next = qmax_value_[s_next];
          a_next = qmax_action_[s_next];
          if (kCountFwd && raise_hit(s_next)) ++stats_.fwd_qmax;
        } else {
          exact_row_max(q_, s_next, q_next, a_next);
        }
      } else {
        a_next = d.explore_action;
        q_next = q_[map_.q_addr(s_next, a_next)];
        // The exploratory read rides the next iteration's stage-1 port
        // and is forwarded in stage 3.
        fwd_next_addr = map_.tagged_addr(0, s_next, a_next);
      }
    } else {  // Expected SARSA: full-row scan + expectation
      const RngBank::EpsilonDraw d =
          rng_.draw_epsilon(eps_threshold_, config_.epsilon_bits);
      fixed::raw_t row_max;
      ActionId argmax;
      exact_row_max(q_, s_next, row_max, argmax);
      fixed::raw_t row_sum = 0;
      for (ActionId k = 0; k < env_.num_actions(); ++k) {
        row_sum += q_[map_.q_addr(s_next, k)];
      }
      a_next = d.greedy ? argmax : d.explore_action;
      q_next = expected_sarsa_target(row_max, row_sum, map_.action_bits,
                                     coeff_, config_.q_fmt,
                                     config_.coeff_fmt);
    }
  }

  // --- stage-3 forwarding-hit reconstruction ---
  const std::uint64_t tagged_sa = map_.tagged_addr(table, s, a);
  std::uint8_t tel_sa_dist = 0;
  std::uint8_t tel_next_dist = 0;
  if (wb_hit(tagged_sa)) {
    ++stats_.fwd_q_sa;
    if constexpr (kTel) tel_sa_dist = ring_distance(tagged_sa);
  }
  if (fwd_next_addr != kNoAddr && wb_hit(fwd_next_addr)) {
    ++stats_.fwd_q_next;
    if constexpr (kTel) tel_next_dist = ring_distance(fwd_next_addr);
  }

  // --- the three DSP products and the saturating adder tree (stage 3) ---
  const fixed::Format qf = config_.q_fmt;
  const fixed::Format cf = config_.coeff_fmt;
  bool sat_r = false, sat_old = false, sat_next = false;
  const fixed::raw_t term_r = fixed::mul(r, qf, coeff_.alpha, cf, qf,
                                         &sat_r);
  const fixed::raw_t q_old = learn[sa_addr];
  const fixed::raw_t term_old =
      fixed::mul(q_old, qf, coeff_.one_minus_alpha, cf, qf, &sat_old);
  const fixed::raw_t term_next =
      fixed::mul(q_next, qf, coeff_.alpha_gamma, cf, qf, &sat_next);
  dsp_saturations_[0] += sat_r ? 1u : 0u;
  dsp_saturations_[1] += sat_old ? 1u : 0u;
  dsp_saturations_[2] += sat_next ? 1u : 0u;
  bool sat1 = false, sat2 = false;
  const fixed::raw_t new_q =
      fixed::sat_add(fixed::sat_add(term_r, term_old, qf, &sat1),
                     term_next, qf, &sat2);
  if (sat1) ++stats_.adder_saturations;
  if (sat2) ++stats_.adder_saturations;

  // --- write-back (stage 4) ---
  learn[sa_addr] = new_q;
  dirty_rows_[s] = 1;
  bool raised = false;
  if constexpr (kAlgo != Algorithm::kExpectedSarsa &&
                kAlgo != Algorithm::kDoubleQ && kMono) {
    if (new_q > qmax_value_[s]) {
      qmax_value_[s] = new_q;
      qmax_action_[s] = a;
      raised = true;
    }
  }

  // Advance the reconstruction windows: the write-back ring mirrors the
  // forwarding queue (samples only), the raise ring advances for every
  // iteration (pipeline slots).
  wb_ring_[2] = wb_ring_[1];
  wb_ring_[1] = wb_ring_[0];
  wb_ring_[0] = tagged_sa;
  raise_ring_[1] = raise_ring_[0];
  raise_ring_[0] = {s, raised};

  ++stats_.samples;
  if (trace_) {
    SampleTrace tr;
    tr.state = s;
    tr.action = a;
    tr.reward = r;
    tr.new_q = new_q;
    tr.next_state = s_next;
    tr.end_episode = end;
    tr.table = table;
    trace_->push_back(tr);
  }

  if constexpr (kTel) {
    telemetry::StepEvent ev;
    ev.iteration = iter;
    ev.episode_end = end;
    ev.fwd_sa_distance = tel_sa_dist;
    ev.fwd_next_distance = tel_next_dist;
    ev.fwd_qmax = stats_.fwd_qmax != tel_fwd_qmax_before;
    ev.saturations = static_cast<std::uint8_t>(
        stats_.adder_saturations + dsp_saturations() - tel_sat_before);
    ev.qmax_raised = raised;
    telemetry_->on_step(ev);
  }

  if (end) {
    ++stats_.episodes;
    episode_start_ = true;
  } else {
    state_ = s_next;
    pending_action_ = a_next;  // kInvalidAction for Q-Learning (unused)
  }
}

template <Algorithm kAlgo, bool kMono, bool kCountFwd, bool kTel>
void FastEngine::run_steps(std::uint64_t iterations,
                           std::uint64_t sample_target) {
  if (sample_target != 0) {
    while (stats_.samples < sample_target) {
      step_one_t<kAlgo, kMono, kCountFwd, kTel>();
    }
  } else {
    for (std::uint64_t i = 0; i < iterations; ++i) {
      step_one_t<kAlgo, kMono, kCountFwd, kTel>();
    }
  }
}

template <Algorithm kAlgo, bool kMono, bool kCountFwd>
void FastEngine::run_steps_any(std::uint64_t iterations,
                               std::uint64_t sample_target) {
  if (telemetry_ != nullptr) {
    run_steps<kAlgo, kMono, kCountFwd, true>(iterations, sample_target);
  } else {
    run_steps<kAlgo, kMono, kCountFwd, false>(iterations, sample_target);
  }
}

template <Algorithm kAlgo>
void FastEngine::run_algo(std::uint64_t iterations,
                          std::uint64_t sample_target) {
  const bool mono = config_.qmax == QmaxMode::kMonotoneTable;
  if (mono && config_.hazard == HazardMode::kForward) {
    run_steps_any<kAlgo, true, true>(iterations, sample_target);
  } else if (mono) {
    run_steps_any<kAlgo, true, false>(iterations, sample_target);
  } else {
    run_steps_any<kAlgo, false, false>(iterations, sample_target);
  }
}

void FastEngine::run_steps_dispatch(std::uint64_t iterations,
                                    std::uint64_t sample_target) {
  switch (config_.algorithm) {
    case Algorithm::kQLearning:
      run_algo<Algorithm::kQLearning>(iterations, sample_target);
      return;
    case Algorithm::kSarsa:
      run_algo<Algorithm::kSarsa>(iterations, sample_target);
      return;
    case Algorithm::kExpectedSarsa:
      run_algo<Algorithm::kExpectedSarsa>(iterations, sample_target);
      return;
    case Algorithm::kDoubleQ:
      run_algo<Algorithm::kDoubleQ>(iterations, sample_target);
      return;
  }
  QTA_CHECK_MSG(false, "unknown algorithm");
}

void FastEngine::run_iterations(std::uint64_t n) {
  if (n == 0) return;
  // The previous call ended with a full drain, committing every
  // in-flight Qmax raise; only raises from THIS call can be ahead of
  // the BRAM. (The write-back address ring persists: queue entries are
  // registers that never age out.)
  raise_ring_ = {};
  run_steps_dispatch(n, 0);
  telemetry::RunEvent run;
  run.issue_cycles = n;
  if (config_.hazard == HazardMode::kForward) {
    // n issue ticks, then the 3-cycle drain of stages 2..4.
    stats_.cycles += n + 3;
    run.drain_cycles = 3;
  } else {
    // One issue per 4 cycles; the final iteration's trailing cycles are
    // drain ticks, which do not count as stalls.
    stats_.cycles += 4 * n;
    stats_.stall_cycles += 3 * (n - 1);
    run.stall_cycles = 3 * (n - 1);
    run.drain_cycles = 3;  // 4n == n issue + 3(n-1) stall + 3 drain
  }
  if (telemetry_ != nullptr) telemetry_->on_run(run);
}

void FastEngine::run_samples(std::uint64_t n) {
  if (stats_.samples >= n) return;  // the pipeline would not tick at all
  raise_ring_ = {};  // fresh call: the prior drain committed all raises
  const std::uint64_t iterations_before = stats_.iterations;
  run_steps_dispatch(0, n);
  telemetry::RunEvent run;
  if (config_.hazard == HazardMode::kForward) {
    // The pipeline keeps issuing while the n-th sample drains toward
    // stage 4, so exactly 3 extra iterations are in flight when the loop
    // exits; they retire during the drain.
    run_steps_dispatch(3, 0);
    run.issue_cycles = stats_.iterations - iterations_before;
    run.drain_cycles = 3;
    stats_.cycles += run.issue_cycles + 3;
  } else {
    // Stall mode retires before the next issue: no overshoot, and the
    // run ends exactly as the n-th sample commits.
    const std::uint64_t k = stats_.iterations - iterations_before;
    stats_.cycles += 4 * k;
    stats_.stall_cycles += 3 * k;
    run.issue_cycles = k;
    run.stall_cycles = 3 * k;
  }
  if (telemetry_ != nullptr) telemetry_->on_run(run);
}

MachineState FastEngine::save_state() const {
  MachineState ms;
  ms.q = q_;
  ms.q2 = q2_;
  ms.qmax_value = qmax_value_;
  ms.qmax_action = qmax_action_;
  ms.rng = rng_.lfsr_state();
  ms.episode_start = episode_start_;
  ms.state = state_;
  ms.pending_action = pending_action_;
  ms.episode_steps = episode_steps_;
  // kNoAddr and MachineState::kNoWriteback are both ~0, so the ring maps
  // across without translation.
  static_assert(kNoAddr == MachineState::kNoWriteback);
  ms.wb_addrs = wb_ring_;
  ms.stats = stats_;
  ms.dsp_saturations = dsp_saturations_;
  ms.dirty.rows = dirty_rows_;
  ms.dirty.all = dirty_all_;
  return ms;
}

void FastEngine::load_state(const MachineState& ms) {
  QTA_CHECK_MSG(ms.q.size() == q_.size(),
                "machine state does not match the engine's table geometry");
  QTA_CHECK_MSG(ms.q2.size() == q2_.size(),
                "machine state and engine disagree on the second Q table");
  QTA_CHECK_MSG(ms.qmax_value.size() == qmax_value_.size() &&
                    ms.qmax_action.size() == qmax_action_.size(),
                "machine state does not match the engine's state count");
  q_ = ms.q;
  q2_ = ms.q2;
  qmax_value_ = ms.qmax_value;
  qmax_action_ = ms.qmax_action;
  rng_.set_lfsr_state(ms.rng);
  episode_start_ = ms.episode_start;
  state_ = ms.state;
  pending_action_ = ms.pending_action;
  episode_steps_ = ms.episode_steps;
  wb_ring_ = ms.wb_addrs;
  // The raise ring is intentionally NOT restored: states are saved
  // post-drain, where every raise has committed, and run_* resets the
  // ring at entry anyway (machine_state.h spells out the invariant).
  raise_ring_ = {};
  stats_ = ms.stats;
  dsp_saturations_ = ms.dsp_saturations;

  // Adopt the carried dirty-row epoch; any mismatch (or a
  // default-constructed DirtyRows) collapses to conservative all-dirty.
  if (!ms.dirty.all && ms.dirty.rows.size() == dirty_rows_.size()) {
    dirty_rows_ = ms.dirty.rows;
    dirty_all_ = false;
  } else {
    std::fill(dirty_rows_.begin(), dirty_rows_.end(), 0);
    dirty_all_ = true;
  }
}

void FastEngine::reset_dirty_rows() {
  std::fill(dirty_rows_.begin(), dirty_rows_.end(), 0);
  dirty_all_ = false;
}

std::uint64_t FastEngine::dirty_row_count() const {
  if (dirty_all_) return env_.num_states();
  std::uint64_t n = 0;
  for (const std::uint8_t b : dirty_rows_) n += b;
  return n;
}

}  // namespace qta::qtaccel

#include "qtaccel/golden_model.h"

#include "common/check.h"

namespace qta::qtaccel {

GoldenModel::GoldenModel(const env::Environment& env,
                         const PipelineConfig& config)
    : env_(env),
      config_(config),
      map_(make_address_map(env)),
      coeff_(make_coefficients(config)),
      eps_threshold_(
          epsilon_threshold(config.epsilon, config.epsilon_bits)),
      rng_(config.seed, map_) {
  validate_config(config, env);
  q_.assign(map_.depth(), 0);
  if (config.algorithm == Algorithm::kDoubleQ) {
    q2_.assign(map_.depth(), 0);
  }
  reward_.assign(map_.depth(), 0);
  for (StateId s = 0; s < env.num_states(); ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      reward_[map_.q_addr(s, a)] =
          fixed::from_double(env.reward(s, a), config.q_fmt);
    }
  }
  qmax_value_.assign(env.num_states(), 0);
  qmax_action_.assign(env.num_states(), 0);
}

fixed::raw_t GoldenModel::q_raw(StateId s, ActionId a) const {
  return q_[map_.q_addr(s, a)];
}

double GoldenModel::q_value(StateId s, ActionId a) const {
  if (config_.algorithm == Algorithm::kDoubleQ) {
    return (fixed::to_double(q_raw(s, a), config_.q_fmt) +
            fixed::to_double(q2_[map_.q_addr(s, a)], config_.q_fmt)) /
           2.0;
  }
  return fixed::to_double(q_raw(s, a), config_.q_fmt);
}

fixed::raw_t GoldenModel::q2_raw(StateId s, ActionId a) const {
  QTA_CHECK(config_.algorithm == Algorithm::kDoubleQ);
  return q2_[map_.q_addr(s, a)];
}

std::vector<double> GoldenModel::q_as_double() const {
  std::vector<double> out;
  out.reserve(env_.table_size());
  for (StateId s = 0; s < env_.num_states(); ++s) {
    for (ActionId a = 0; a < env_.num_actions(); ++a) {
      double v = q_value(s, a);
      if (config_.algorithm == Algorithm::kDoubleQ) {
        v = (v + fixed::to_double(q2_[map_.q_addr(s, a)], config_.q_fmt)) /
            2.0;
      }
      out.push_back(v);
    }
  }
  return out;
}

fixed::raw_t GoldenModel::qmax_value(StateId s) const {
  QTA_CHECK(s < env_.num_states());
  return qmax_value_[s];
}

ActionId GoldenModel::qmax_action(StateId s) const {
  QTA_CHECK(s < env_.num_states());
  return qmax_action_[s];
}

void GoldenModel::exact_row_max(const std::vector<fixed::raw_t>& table,
                                StateId s, fixed::raw_t& value,
                                ActionId& action) const {
  value = table[map_.q_addr(s, 0)];
  action = 0;
  for (ActionId a = 1; a < env_.num_actions(); ++a) {
    const fixed::raw_t v = table[map_.q_addr(s, a)];
    if (v > value) {
      value = v;
      action = a;
    }
  }
}

void GoldenModel::run(std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) run_one();
}

void GoldenModel::run_one() {
  ++counters_.iterations;
  SampleTrace tr;

  if (episode_start_) {
    state_ = rng_.draw_start_state(env_.num_states());
    episode_steps_ = 0;
    pending_action_ = kInvalidAction;
    if (env_.is_terminal(state_)) {
      // Zero-length episode: redraw next iteration.
      ++counters_.bubbles;
      tr.bubble = true;
      tr.state = state_;
      if (trace_) trace_->push_back(tr);
      return;
    }
  }

  // --- behavior action (stage 1) ---
  const bool random_behavior =
      config_.algorithm == Algorithm::kQLearning ||
      config_.algorithm == Algorithm::kDoubleQ;
  ActionId a;
  if (random_behavior || episode_start_) {
    a = rng_.draw_random_action();
  } else {
    QTA_DCHECK(pending_action_ != kInvalidAction);
    a = pending_action_;
  }
  episode_start_ = false;

  // Double Q-Learning: coin-flip which table learns this sample.
  const unsigned table = config_.algorithm == Algorithm::kDoubleQ
                             ? rng_.draw_table_select()
                             : 0;
  std::vector<fixed::raw_t>& learn =
      table == 1 ? q2_ : q_;
  const std::vector<fixed::raw_t>& eval =
      config_.algorithm == Algorithm::kDoubleQ && table == 0 ? q2_ : q_;

  const StateId s = state_;
  const unsigned noise_bits = env_.transition_noise_bits();
  const StateId s_next =
      noise_bits == 0
          ? env_.transition(s, a)
          : env_.transition(s, a, rng_.draw_transition_noise(noise_bits));
  const fixed::raw_t r = reward_[map_.q_addr(s, a)];
  ++episode_steps_;
  const bool end = env_.is_terminal(s_next) ||
                   episode_steps_ >= config_.max_episode_length;

  // --- update-policy action and Q(S', A') (stage 2) ---
  fixed::raw_t q_next = 0;
  ActionId a_next = kInvalidAction;
  if (!end) {
    if (config_.algorithm == Algorithm::kQLearning) {
      if (config_.qmax == QmaxMode::kMonotoneTable) {
        q_next = qmax_value_[s_next];
      } else {
        ActionId ignored;
        exact_row_max(q_, s_next, q_next, ignored);
      }
    } else if (config_.algorithm == Algorithm::kDoubleQ) {
      // argmax under the learning table, value from the other table.
      fixed::raw_t ignored;
      ActionId argmax;
      exact_row_max(learn, s_next, ignored, argmax);
      q_next = eval[map_.q_addr(s_next, argmax)];
    } else if (config_.algorithm == Algorithm::kSarsa) {
      const RngBank::EpsilonDraw d =
          rng_.draw_epsilon(eps_threshold_, config_.epsilon_bits);
      if (d.greedy) {
        if (config_.qmax == QmaxMode::kMonotoneTable) {
          q_next = qmax_value_[s_next];
          a_next = qmax_action_[s_next];
        } else {
          exact_row_max(q_, s_next, q_next, a_next);
        }
      } else {
        a_next = d.explore_action;
        q_next = q_[map_.q_addr(s_next, a_next)];
      }
    } else {  // Expected SARSA: full-row scan + expectation
      const RngBank::EpsilonDraw d =
          rng_.draw_epsilon(eps_threshold_, config_.epsilon_bits);
      fixed::raw_t row_max;
      ActionId argmax;
      exact_row_max(q_, s_next, row_max, argmax);
      fixed::raw_t row_sum = 0;
      for (ActionId k = 0; k < env_.num_actions(); ++k) {
        row_sum += q_[map_.q_addr(s_next, k)];
      }
      a_next = d.greedy ? argmax : d.explore_action;
      q_next = expected_sarsa_target(row_max, row_sum, map_.action_bits,
                                     coeff_, config_.q_fmt,
                                     config_.coeff_fmt);
    }
  }

  // --- the three DSP products and the saturating adder tree (stage 3) ---
  const fixed::Format qf = config_.q_fmt;
  const fixed::Format cf = config_.coeff_fmt;
  const fixed::raw_t term_r = fixed::mul(r, qf, coeff_.alpha, cf, qf);
  const fixed::raw_t q_old = learn[map_.q_addr(s, a)];
  const fixed::raw_t term_old =
      fixed::mul(q_old, qf, coeff_.one_minus_alpha, cf, qf);
  const fixed::raw_t term_next =
      fixed::mul(q_next, qf, coeff_.alpha_gamma, cf, qf);
  const fixed::raw_t new_q =
      fixed::sat_add(fixed::sat_add(term_r, term_old, qf), term_next, qf);

  // --- write-back (stage 4) ---
  // (Expected SARSA and Double-Q carry no Qmax table.)
  learn[map_.q_addr(s, a)] = new_q;
  if (config_.algorithm != Algorithm::kExpectedSarsa &&
      config_.algorithm != Algorithm::kDoubleQ &&
      config_.qmax == QmaxMode::kMonotoneTable && new_q > qmax_value_[s]) {
    qmax_value_[s] = new_q;
    qmax_action_[s] = a;
  }

  ++counters_.samples;
  tr.state = s;
  tr.action = a;
  tr.reward = r;
  tr.new_q = new_q;
  tr.next_state = s_next;
  tr.end_episode = end;
  tr.table = table;
  if (trace_) trace_->push_back(tr);

  if (end) {
    ++counters_.episodes;
    episode_start_ = true;
  } else {
    state_ = s_next;
    pending_action_ = a_next;  // kInvalidAction for Q-Learning (unused)
  }
}

}  // namespace qta::qtaccel

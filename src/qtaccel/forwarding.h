// The forwarding network: a 3-deep queue of in-flight write-backs.
//
// With a 4-stage pipeline, a read issued by iteration i can miss the
// writes of iterations i-1, i-2 and i-3 (they commit at the ends of cycles
// i+2, i+1 and i). Keeping the last three computed Q values in forwarding
// registers and matching newest-first makes every consumer see exactly the
// sequential-execution state — the property the equivalence tests assert.
//
// Qmax forwarding is a max-combine instead of a newest-first match: the
// Qmax table is only ever raised, so the effective entry is the maximum of
// the stored entry and any in-flight write-backs to the same state (ties
// keep the older holder, matching the strict-greater hardware compare).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/types.h"
#include "fixed/fixed_point.h"

namespace qta::qtaccel {

struct Writeback {
  bool valid = false;
  std::uint64_t q_addr = 0;
  StateId state = kInvalidState;
  ActionId action = kInvalidAction;
  fixed::raw_t new_q = 0;
};

class WritebackQueue {
 public:
  static constexpr unsigned kDepth = 3;

  /// Pushes the newest write-back; the oldest falls out.
  void push(const Writeback& wb);

  /// Newest-first match against the Q-table address; nullopt = no match
  /// (use the physically read value).
  std::optional<fixed::raw_t> match_q(std::uint64_t q_addr) const;

  /// Same, restricted to the newest `window` entries (used by tests that
  /// probe individual hazard distances).
  std::optional<fixed::raw_t> match_q(std::uint64_t q_addr,
                                      unsigned window) const;

  /// Max-combines in-flight write-backs for `state` into (value, action).
  /// Strictly-greater raises, oldest-first, mirroring the sequential chain
  /// of conditional Qmax writes.
  void combine_qmax(StateId state, fixed::raw_t& value,
                    ActionId& action) const;

  /// Number of valid entries (ramps 0..3 after reset).
  unsigned occupancy() const;

  void clear();

  /// Raw register contents, newest first — snapshot support. A restored
  /// queue must hold values equal to the committed table words at the
  /// same addresses (the post-drain invariant machine_state.h documents),
  /// or forwarding would diverge from a continuous run.
  const std::array<Writeback, kDepth>& entries() const { return entries_; }
  void restore(const std::array<Writeback, kDepth>& entries) {
    entries_ = entries;
  }

  /// Flip-flop cost of the forwarding registers, for the resource model:
  /// kDepth x (q value + address + valid).
  static unsigned flip_flops(unsigned q_width, unsigned addr_bits) {
    return kDepth * (q_width + addr_bits + 1);
  }

 private:
  // entries_[0] is the newest.
  std::array<Writeback, kDepth> entries_{};
};

}  // namespace qta::qtaccel

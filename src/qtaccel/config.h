// Configuration of a QTAccel pipeline instance.
//
// One config drives three artifacts that must agree exactly:
//   * the cycle-accurate pipeline model (qtaccel/pipeline.h),
//   * the sequential golden model (qtaccel/golden_model.h), and
//   * the resource/frequency model (qtaccel/resources.h).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "env/environment.h"
#include "fixed/fixed_point.h"
#include "telemetry/sink.h"  // RunLabels

namespace qta::qtaccel {

/// Which QRL algorithm the pipeline is configured for (Section V, plus
/// the Expected SARSA generalization the architecture admits).
enum class Algorithm {
  kQLearning,  // random behavior policy, greedy update policy (via Qmax)
  kSarsa,      // epsilon-greedy on-policy (stage-2 action forwarded to
               // the next iteration's stage 1)
  kExpectedSarsa,  // epsilon-greedy behavior; the stage-2 target is the
                   // expectation over the next row under that policy:
                   // (1-eps)*max + eps*mean. Needs a full-row scan (like
                   // QmaxMode::kExactScan) plus an adder tree and two
                   // extra DSP products — 6 multipliers total.
  kDoubleQ,        // Double Q-Learning (van Hasselt): two Q tables; each
                   // sample updates a coin-flipped table T using
                   // argmax_T(S',.) evaluated by the OTHER table. Counters
                   // the max-operator overestimation the monotone-Qmax
                   // ablation measures. Twice the Q BRAM (no Qmax table);
                   // the cross-table read rides a double-pumped port.
};

/// Hazard-handling mode (the forwarding network is the paper's
/// contribution; the stall mode exists for the ablation benchmark).
enum class HazardMode {
  kForward,  // 3-deep write-back forwarding: one sample per cycle
  kStall,    // conservative: a sample issues only when the pipe is empty
};

/// Greedy-maximum source (Section V-A vs the comparator-tree alternative
/// of the prior art [21], used as an ablation).
enum class QmaxMode {
  kMonotoneTable,  // paper: per-state cached max, raised on write-back only
  kExactScan,      // full-row comparator tree: exact max, extra LUTs
};

/// Host execution backend (see docs/fast_engine.md). Both replay the
/// accelerator's exact semantics and retire bit-identical traces; they
/// differ only in what the host pays per sample.
enum class Backend {
  kCycleAccurate,  // qtaccel/pipeline.h: per-cycle SimKernel/Bram/port
                   // accounting, waveforms, stall ablation — the model
                   // of record for hardware-shape claims
  kFast,           // qtaccel/fast_engine.h: batch functional replay on
                   // flat arrays; PipelineStats reconstructed analytically
  kLanes,          // qtaccel/lane_engine.h: structure-of-arrays batch of
                   // independent FastEngine replicas advanced one round
                   // per step loop (SIMD across lanes); per lane
                   // bit-identical to kFast
};

/// Parses "cycle"/"fast"/"lanes" (CLI flag spelling); aborts on anything
/// else.
Backend parse_backend(const std::string& name);
/// The CLI spelling of a backend ("cycle" / "fast" / "lanes").
const char* backend_name(Backend backend);

/// Stable label spellings used by telemetry and report output.
const char* algorithm_name(Algorithm algorithm);  // "q_learning", ...
const char* qmax_name(QmaxMode qmax);             // "monotone" / "exact"
const char* hazard_name(HazardMode hazard);       // "forward" / "stall"

struct PipelineConfig {
  Algorithm algorithm = Algorithm::kQLearning;
  HazardMode hazard = HazardMode::kForward;
  QmaxMode qmax = QmaxMode::kMonotoneTable;
  Backend backend = Backend::kCycleAccurate;

  double alpha = 0.1;    // learning rate (quantized into coeff_fmt)
  double gamma = 0.9;    // discount factor
  double epsilon = 0.1;  // SARSA exploration rate

  /// Width of the epsilon comparison: an N-bit LFSR draw is compared with
  /// (1 - epsilon) * 2^N (Section V-B).
  unsigned epsilon_bits = 16;

  fixed::Format q_fmt = fixed::kQFormat;          // Q/reward storage
  fixed::Format coeff_fmt = fixed::kCoeffFormat;  // alpha/gamma products

  /// Master seed; expanded with SplitMix64 into the three per-purpose
  /// LFSRs (start state, behavior action, update-policy draw).
  std::uint64_t seed = 1;

  /// Watchdog: an episode is force-terminated after this many steps (an
  /// agent walled into an obstacle pocket would otherwise never restart).
  /// The truncating transition is treated as terminal (future value 0).
  std::uint64_t max_episode_length = 1u << 20;
};

/// The telemetry identity of a run with this config: label strings for
/// per-(algorithm, qmax, hazard) roll-ups. `pipe` distinguishes agents
/// in multi-pipeline setups. Defined in config.cpp (host-side; the
/// datapath never calls this).
telemetry::RunLabels make_run_labels(const PipelineConfig& config,
                                     unsigned pipe = 0);

/// Address bit layout for the Q/reward tables: {state, action}
/// bit-concatenated, exactly as the paper addresses BRAM.
struct AddressMap {
  unsigned state_bits = 0;
  unsigned action_bits = 0;

  std::uint64_t q_addr(StateId s, ActionId a) const {
    return (static_cast<std::uint64_t>(s) << action_bits) | a;
  }
  std::uint64_t depth() const {
    return std::uint64_t{1} << (state_bits + action_bits);
  }
  /// Forwarding-network address with a table tag in the MSBs — Double
  /// Q-Learning's two tables share one write-back queue, and a match must
  /// never cross tables.
  std::uint64_t tagged_addr(unsigned table, StateId s, ActionId a) const {
    return (static_cast<std::uint64_t>(table)
            << (state_bits + action_bits)) |
           q_addr(s, a);
  }
};

/// Derives the address map from an environment; requires a power-of-two
/// action count (the paper's encodings use 2 or 3 action bits).
AddressMap make_address_map(const env::Environment& env);

/// Validates a config against an environment; aborts on invalid setups
/// (non-power-of-two actions, out-of-range rates, formats too narrow).
void validate_config(const PipelineConfig& config,
                     const env::Environment& env);

/// The epsilon comparison threshold (1 - epsilon) * 2^bits.
std::uint64_t epsilon_threshold(double epsilon, unsigned bits);

/// Precomputed fixed-point coefficients of the update (stage-1 values):
/// alpha, 1 - alpha, and alpha * gamma (the latter through the DSP model's
/// rounding, since DSP #1 produces it in hardware).
struct Coefficients {
  fixed::raw_t alpha = 0;
  fixed::raw_t one_minus_alpha = 0;
  fixed::raw_t alpha_gamma = 0;
  // Expected-SARSA mixing coefficients (quantized epsilon).
  fixed::raw_t epsilon = 0;
  fixed::raw_t one_minus_epsilon = 0;
};
Coefficients make_coefficients(const PipelineConfig& config);

/// The Expected-SARSA stage-2 target, shared verbatim by the golden model
/// and the pipeline so both quantize identically:
///   E = (1 - eps) * row_max + eps * (row_sum >> log2|A|)
/// (two DSP products + one saturating add; the mean comes off the adder
/// tree with a rounding shift).
fixed::raw_t expected_sarsa_target(fixed::raw_t row_max,
                                   fixed::raw_t row_sum,
                                   unsigned action_bits,
                                   const Coefficients& coeff,
                                   fixed::Format q_fmt,
                                   fixed::Format coeff_fmt);

}  // namespace qta::qtaccel

// Backend-neutral machine state — the complete register/BRAM contents a
// drained accelerator needs to resume bit-exactly.
//
// Both backends expose save_state()/load_state() over this struct, and the
// runtime snapshot layer (src/runtime/snapshot.h) serializes exactly these
// fields, so a state saved on one backend restores on the other.
//
// Save points are post-drain (nothing in flight). That is what makes the
// state this small:
//
//  * Pipeline latches (S1/S2/S3) are all invalid after a drain, so they
//    are not part of the state.
//  * The 3-deep forwarding queue still holds the last three write-backs,
//    but post-drain every queued value has already committed to BRAM: the
//    newest-first match can only return the committed word, so the queue
//    is reconstructible from its three tagged ADDRESSES plus the restored
//    tables. Only the addresses are stored (wb_addrs).
//  * The Qmax raise history (the fast backend's 2-deep raise ring, the
//    cycle backend's combine_qmax over the queue) can never raise again
//    post-drain — the committed Qmax entry is >= every drained write-back
//    under the strictly-greater raise rule — so it is not stored at all.
//
// Consequence for exactness (asserted by tests/snapshot_test.cpp): for a
// single instance, run(N); save; load; run(M) retires a trace AND stats
// bit-identical to run(N); run(M). Against a contiguous run(N+M), the
// retired trace, tables, and all sample-derived counters are identical,
// while the analytic cycle accounting differs by exactly one drain/refill
// (forward: cycles +3; stall: stall_cycles +3) and fwd_qmax may differ at
// the seam — the same deltas two back-to-back run_*() calls exhibit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "fixed/fixed_point.h"
#include "qtaccel/pipeline.h"  // PipelineStats

namespace qta::qtaccel {

/// Cheap dirty-row tracking carried alongside a machine state: which
/// states' table rows changed since the engine's last
/// reset_dirty_rows() epoch. One flag per state covers Q, Q2, AND Qmax
/// — every table write (the stage-4 write-back, the conditional Qmax
/// raise, a warm-start preset) lands at the retiring sample's state s,
/// so the three tables share one row set. Transient bookkeeping: full
/// snapshots ignore it; write_snapshot_delta (runtime/snapshot.h)
/// consumes it to serialize only touched rows. Default-constructed —
/// and adopted from any state of unknown provenance (fresh engine,
/// generic load, rebuild_qmax) — as conservatively all-dirty.
struct DirtyRows {
  std::vector<std::uint8_t> rows;  ///< per-state touched flags; may be empty
  bool all = true;  ///< treat every row as dirty (rows is then ignored)

  /// Marked rows, collapsing to `num_states` when tracking is
  /// conservative (all set, or rows not sized for this geometry).
  std::uint64_t count(std::size_t num_states) const {
    if (all || rows.size() != num_states) return num_states;
    std::uint64_t n = 0;
    for (const std::uint8_t b : rows) n += b;
    return n;
  }
};

struct MachineState {
  /// Empty slot in wb_addrs. AddressMap tagged addresses use at most
  /// state_bits + action_bits + 1 bits, so ~0 never collides.
  static constexpr std::uint64_t kNoWriteback = ~std::uint64_t{0};

  // BRAM contents, indexed by AddressMap::q_addr (row-major s, a).
  std::vector<fixed::raw_t> q;
  std::vector<fixed::raw_t> q2;  // Double Q-Learning only; empty otherwise

  // Monotone-Qmax table, indexed by state. Always present (zero-filled
  // and identical across backends when the config runs exact-scan mode),
  // so the serialized layout does not depend on qmax_mode.
  std::vector<fixed::raw_t> qmax_value;
  std::vector<ActionId> qmax_action;

  // LFSR registers in RngBank order {start, behavior, update, noise}.
  std::array<std::uint64_t, 4> rng{};

  // Agent/episode walk state (identical fields in both backends).
  bool episode_start = true;
  StateId state = 0;
  ActionId pending_action = kInvalidAction;
  std::uint64_t episode_steps = 0;

  // Tagged write-back addresses of the last three retired samples,
  // newest first ([0] mirrors WritebackQueue::entries()[0] and the fast
  // backend's wb_ring_[0]).
  std::array<std::uint64_t, 3> wb_addrs{kNoWriteback, kNoWriteback,
                                        kNoWriteback};

  // Full counter block, including the analytic cycle accounting.
  PipelineStats stats;

  // Per-multiplier saturation events in stage-3 order {r, old, next}.
  // Invocation counts are not stored: each DSP multiplies exactly once
  // per retired sample, so invocations == stats.samples by construction.
  std::array<std::uint64_t, 3> dsp_saturations{};

  // Dirty-row tracking epoch (DirtyRows above), carried so the epoch
  // survives save/load and lane-group take/put donation. Transient
  // bookkeeping, not part of the serialized machine state: full
  // snapshots ignore it, and a state restored from one adopts the
  // conservative all-dirty default.
  DirtyRows dirty;
};

}  // namespace qta::qtaccel

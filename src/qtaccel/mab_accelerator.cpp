#include "qtaccel/mab_accelerator.h"

#include <algorithm>

#include "common/bit_math.h"
#include "common/check.h"
#include "fixed/math_lut.h"
#include "qtaccel/config.h"
#include "rng/xoshiro.h"

namespace qta::qtaccel {

namespace {
/// RandomSource view over a member LFSR (policy::LfsrSource owns a copy;
/// here the generator state must persist in the accelerator).
class LfsrRefSource final : public policy::RandomSource {
 public:
  explicit LfsrRefSource(rng::Lfsr& lfsr) : lfsr_(lfsr) {}
  std::uint64_t draw_bits(unsigned n) override { return lfsr_.draw_bits(n); }

 private:
  rng::Lfsr& lfsr_;
};
}  // namespace

MabAccelerator::MabAccelerator(env::MultiArmedBandit& bandit,
                               const MabConfig& config)
    : bandit_(bandit),
      config_(config),
      arms_(bandit.num_arms()),
      eps_threshold_(
          epsilon_threshold(config.epsilon, config.epsilon_bits)),
      q_("mab_q_table", arms_, config.q_fmt.width, 2),
      select_lfsr_(32, rng::SplitMix64(config.seed).next()),
      pulls_(arms_, 0) {
  QTA_CHECK(arms_ >= 2);
  QTA_CHECK(config.reward_hi > config.reward_lo);
  fixed::validate(config.q_fmt);
  if (config.policy == MabConfig::Policy::kExp3) {
    if (config.use_exp_lut) {
      // EXP3 exponents are gamma * rhat / M with rhat <= M / gamma, so the
      // argument stays within [0, ~8] in practice; clamp the LUT there.
      exp_lut_ = std::make_unique<fixed::ExpLut>(
          0.0, 8.0, config.exp_lut_log2_entries, fixed::Format{32, 16});
    }
    exp3_ = std::make_unique<policy::Exp3>(arms_, config.exp3_gamma,
                                           exp_lut_.get());
  }
}

double MabAccelerator::q_value(unsigned m) const {
  QTA_CHECK(m < arms_);
  return fixed::to_double(q_.peek(m), config_.q_fmt);
}

unsigned MabAccelerator::select_epsilon_greedy() {
  const std::uint64_t draw = select_lfsr_.draw_bits(config_.epsilon_bits);
  if (draw >= eps_threshold_) {
    // Explore: index an arm from the LOW bits of the same draw. (The
    // epsilon comparison constrains only the top of the word's range, so
    // the low byte stays uniform — scaling the full conditioned draw
    // would always select the last arm.)
    return static_cast<unsigned>(((draw & 0xFFu) * arms_) >> 8);
  }
  // Greedy: comparator chain over the M-entry row (ties keep the earlier
  // arm, like the hardware compare).
  unsigned best = 0;
  fixed::raw_t best_v = q_.peek(0);
  for (unsigned m = 1; m < arms_; ++m) {
    const fixed::raw_t v = q_.peek(m);
    if (v > best_v) {
      best_v = v;
      best = m;
    }
  }
  return best;
}

unsigned MabAccelerator::select_exp3() {
  LfsrRefSource src(select_lfsr_);
  return exp3_->select(src);
}

unsigned MabAccelerator::select_ucb1() const {
  // First sweep every arm once (pulls of 0 would divide by zero).
  for (unsigned m = 0; m < arms_; ++m) {
    if (pulls_[m] == 0) return m;
  }
  // score_m = Q(m) + sqrt(c * ln t / n_m), all in fixed point: ln via the
  // log2 LUT, the quotient via the shift-subtract divider, the root via
  // the non-restoring array. One score unit per arm; a comparator chain
  // picks the max.
  const fixed::Format wide{32, 16};
  const fixed::raw_t t_raw =
      static_cast<fixed::raw_t>(stats_.samples) << wide.frac;
  const fixed::raw_t ln_t = fixed::ln_fixed(t_raw, wide, wide);
  // The exploration constant rides a narrow port so the product fits the
  // 64-bit accumulator (16 + 32 bits).
  const fixed::Format cfmt{16, 8};
  const fixed::raw_t c_raw = fixed::from_double(config_.ucb_c, cfmt);
  const fixed::raw_t c_ln_t = fixed::mul(c_raw, cfmt, ln_t, wide, wide);

  unsigned best = 0;
  fixed::raw_t best_score = 0;
  for (unsigned m = 0; m < arms_; ++m) {
    const fixed::raw_t n_raw =
        static_cast<fixed::raw_t>(pulls_[m]) << wide.frac;
    const fixed::raw_t ratio = fixed::div_fixed(c_ln_t, wide, n_raw, wide,
                                                wide);
    const fixed::raw_t bonus = fixed::sqrt_fixed(ratio, wide, wide);
    const fixed::raw_t q_wide =
        fixed::convert(q_.peek(m), config_.q_fmt, wide);
    const fixed::raw_t score = fixed::sat_add(q_wide, bonus, wide);
    if (m == 0 || score > best_score) {
      best_score = score;
      best = m;
    }
  }
  return best;
}

void MabAccelerator::update_sample_average(unsigned arm,
                                           fixed::raw_t reward) {
  // Q(m) <- Q(m) + (r - Q(m)) / n, with the divide on the fabric divider.
  const fixed::Format qf = config_.q_fmt;
  const fixed::raw_t delta = fixed::sat_sub(reward, q_.peek(arm),
                                            fixed::Format{32, qf.frac});
  const fixed::raw_t n_raw = static_cast<fixed::raw_t>(pulls_[arm]);
  const fixed::raw_t step =
      fixed::div_fixed(delta, {32, qf.frac}, n_raw, {32, 0}, qf);
  q_.preset(arm, fixed::sat_add(q_.peek(arm), step, qf));
}

void MabAccelerator::update_epsilon_greedy(unsigned arm,
                                           fixed::raw_t reward) {
  // Q(m) <- (1 - alpha) Q(m) + alpha * r : the stage-3 datapath with
  // gamma = 0 (no next state in a stateless bandit).
  const fixed::Format qf = config_.q_fmt;
  const fixed::Format cf = fixed::kCoeffFormat;
  const fixed::raw_t a = fixed::from_double(config_.alpha, cf);
  const fixed::raw_t one_minus_a =
      fixed::sat_sub(fixed::from_double(1.0, cf), a, cf);
  const fixed::raw_t term_r = fixed::mul(reward, qf, a, cf, qf);
  const fixed::raw_t term_old = fixed::mul(q_.peek(arm), qf, one_minus_a,
                                           cf, qf);
  q_.preset(arm, fixed::sat_add(term_r, term_old, qf));
}

void MabAccelerator::run(std::uint64_t samples) {
  for (std::uint64_t i = 0; i < samples; ++i) {
    unsigned arm;
    switch (config_.policy) {
      case MabConfig::Policy::kEpsilonGreedy:
        arm = select_epsilon_greedy();
        stats_.cycles += 1;  // fully pipelined, one sample per cycle
        break;
      case MabConfig::Policy::kUcb1:
        // Score units run in parallel per arm; only the comparator chain
        // adds latency, which pipelines away: one sample per cycle.
        arm = select_ucb1();
        stats_.cycles += 1;
        break;
      case MabConfig::Policy::kExp3:
      default:
        arm = select_exp3();
        const unsigned search = log2_ceil(arms_);
        stats_.cycles += 1 + search;  // binary-search selection stalls
        stats_.selection_stall_cycles += search;
        break;
    }
    const double raw_reward = bandit_.pull(arm);
    ++pulls_[arm];
    ++stats_.samples;

    switch (config_.policy) {
      case MabConfig::Policy::kEpsilonGreedy:
        update_epsilon_greedy(
            arm, fixed::from_double(raw_reward, config_.q_fmt));
        break;
      case MabConfig::Policy::kUcb1:
        update_sample_average(
            arm, fixed::from_double(raw_reward, config_.q_fmt));
        break;
      case MabConfig::Policy::kExp3:
      default: {
        const double scaled =
            std::clamp((raw_reward - config_.reward_lo) /
                           (config_.reward_hi - config_.reward_lo),
                       0.0, 1.0);
        exp3_->update(arm, scaled);
        break;
      }
    }
  }
}

hw::ResourceLedger MabAccelerator::resources() const {
  hw::ResourceLedger ledger;
  ledger.add_memory({"mab_q_table", arms_, config_.q_fmt.width, 2});
  ledger.add_dsp(2, "value-update multipliers");
  // Selection LFSR + the CLT reward sampler's LFSR.
  ledger.add_flip_flops(32 + 32, "selection + CLT-reward LFSRs");
  ledger.add_luts((arms_ - 1) * config_.q_fmt.width,
                  "greedy comparator chain");
  if (config_.policy == MabConfig::Policy::kExp3) {
    ledger.add_memory({"probability_table", arms_, config_.q_fmt.width, 2});
    if (exp_lut_) {
      ledger.add_memory({"exp_lut", exp_lut_->entries(), 32, 1});
    }
    ledger.add_dsp(1, "importance-weight multiplier");
    ledger.add_luts(log2_ceil(arms_) * config_.q_fmt.width,
                    "binary-search comparators");
  }
  if (config_.policy == MabConfig::Policy::kUcb1) {
    const fixed::Format wide{32, 16};
    ledger.add_memory({"log2_lut", 1u << fixed::kLog2LutBits,
                       26 /* 24-frac entries + guard */, 1});
    ledger.add_dsp(1 + arms_, "c*ln(t) and per-arm q+bonus adders");
    ledger.add_luts(arms_ * (fixed::sqrt_iteration_luts(wide) +
                             fixed::divider_luts(wide)),
                    "per-arm divider + sqrt arrays");
    ledger.add_flip_flops(arms_ * 32, "per-arm pull counters");
  }
  return ledger;
}

}  // namespace qta::qtaccel

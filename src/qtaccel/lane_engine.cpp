#include "qtaccel/lane_engine.h"

#include <algorithm>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "common/check.h"
#include "common/simd.h"
#include "env/grid_world.h"
#include "env/value_iteration.h"
#include "qtaccel/machine_state.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace qta::qtaccel {

namespace {

// Pre-bake bound for the shared transition table (entries). Wider than
// FastEngine's: a flat next-state table is what lets pass_addr prefetch
// the transition lookup, which is the whole point of lane batching on
// latency-bound tables — so it pays for itself well past cache
// residency. 2^24 entries caps the bake at 64 MiB, shared by the group.
constexpr std::uint64_t kMaxPrebakedTransitions = std::uint64_t{1} << 24;

// Back a large table with transparent huge pages when the kernel allows
// it. The lane engine lives or dies by memory-level parallelism: on 4 KiB
// pages a random Q-table access costs a serialized TLB walk, which undoes
// the overlap the phased passes set up. Best-effort — errors are ignored
// and the plain mapping keeps working.
void advise_huge_pages(void* p, std::size_t bytes) {
#if defined(__linux__)
  constexpr std::size_t kHuge = std::size_t{2} << 20;
  if (p == nullptr || bytes < kHuge) return;
  const std::uintptr_t page = 4096;
  std::uintptr_t begin = reinterpret_cast<std::uintptr_t>(p);
  std::uintptr_t end = begin + bytes;
  begin = (begin + page - 1) & ~(page - 1);
  end &= ~(page - 1);
  if (end <= begin) return;
  void* aligned = reinterpret_cast<void*>(begin);
  (void)madvise(aligned, end - begin, MADV_HUGEPAGE);
  // Synchronous collapse (Linux >= 6.1). Old libc headers may not carry
  // the constant yet; the kernel just returns EINVAL when unsupported.
#ifndef MADV_COLLAPSE
#define MADV_COLLAPSE 25
#endif
  (void)madvise(aligned, end - begin, MADV_COLLAPSE);
#else
  (void)p;
  (void)bytes;
#endif
}

template <typename T>
void advise_huge_pages(std::vector<T>& v) {
  advise_huge_pages(v.data(), v.size() * sizeof(T));
}

inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// Write-intent prefetch for lines that retire will store to (the Q
// entry is read as q_old and written back as new_q; fetching it
// exclusive up front saves the ownership upgrade at write-back).
inline void prefetch_rw(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

// ---------------------------------------------------------------------
// Stage-3 kernels. All replicate fixed::mul / fixed::sat_add exactly:
//   product   = a * coeff                      (fits 63 bits: widths<=62)
//   rescaled  = round-half-away-from-zero(product >> coeff_fmt.frac)
//   term      = clamp(rescaled, q_fmt)         (flag on clamp)
//   new_q     = clamp(clamp(t_r + t_old) + t_next)
// The rounding uses the branch-free sign/magnitude identity: with
// s = v >> 63 (all ones when negative), |v| = (v ^ s) - s, and the
// rounded magnitude shifts logically because |v| + half < 2^62.
// The per-format validation that fixed::mul performs per call is hoisted
// to construction time (init_lanes checks every lane's formats once).

inline fixed::raw_t round_shift(fixed::raw_t v, std::int64_t half,
                                std::uint64_t shift) {
  const std::int64_t s = v >> 63;
  const std::int64_t mag = (v ^ s) - s;
  const std::int64_t res = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(mag + half) >> shift);
  return (res ^ s) - s;
}

inline fixed::raw_t clamp_flag(fixed::raw_t v, fixed::raw_t lo,
                               fixed::raw_t hi, std::uint8_t& flags,
                               std::uint8_t bit) {
  if (v < lo) {
    flags |= bit;
    return lo;
  }
  if (v > hi) {
    flags |= bit;
    return hi;
  }
  return v;
}

// Portable kernel: a flat loop over packed slots, written so the
// compiler can autovectorize (no calls, no aborts, branch-free rounding;
// the clamp compiles to min/max + compare).
void kernel_scalar(const LaneEngine::KernelArgs& k) {
  for (std::size_t i = 0; i < k.n; ++i) {
    const std::int64_t half = k.half[i];
    const std::uint64_t shift = k.shift[i];
    const fixed::raw_t lo = k.lo[i];
    const fixed::raw_t hi = k.hi[i];
    std::uint8_t flags = 0;
    const fixed::raw_t term_r = clamp_flag(
        round_shift(k.r[i] * k.alpha[i], half, shift), lo, hi, flags, 1u);
    const fixed::raw_t term_old = clamp_flag(
        round_shift(k.q_old[i] * k.one_minus_alpha[i], half, shift), lo,
        hi, flags, 2u);
    const fixed::raw_t term_next = clamp_flag(
        round_shift(k.q_next[i] * k.alpha_gamma[i], half, shift), lo, hi,
        flags, 4u);
    const fixed::raw_t sum1 =
        clamp_flag(term_r + term_old, lo, hi, flags, 8u);
    k.new_q[i] = clamp_flag(sum1 + term_next, lo, hi, flags, 16u);
    k.sat_bits[i] = flags;
  }
}

#if defined(__x86_64__)

// AVX2: 4 int64 lanes per vector. AVX2 has no 64-bit multiply or
// arithmetic 64-bit shifts, so both are synthesized: the multiply from
// 32x32 partial products (exact, because the true product fits in 63
// bits), the arithmetic shift via the same sign/magnitude identity as
// the scalar kernel (the magnitude shifts logically with srlv).

__attribute__((target("avx2"))) inline __m256i mul64_avx2(__m256i a,
                                                          __m256i b) {
  const __m256i bswap = _mm256_shuffle_epi32(b, 0xB1);
  const __m256i prodlh = _mm256_mullo_epi32(a, bswap);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i prodlh2 = _mm256_hadd_epi32(prodlh, zero);
  const __m256i prodlh3 = _mm256_shuffle_epi32(prodlh2, 0x73);
  const __m256i prodll = _mm256_mul_epu32(a, b);
  return _mm256_add_epi64(prodll, prodlh3);
}

__attribute__((target("avx2"))) inline __m256i round_shift_avx2(
    __m256i v, __m256i half, __m256i shift) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i sign = _mm256_cmpgt_epi64(zero, v);
  const __m256i mag =
      _mm256_sub_epi64(_mm256_xor_si256(v, sign), sign);
  const __m256i res =
      _mm256_srlv_epi64(_mm256_add_epi64(mag, half), shift);
  return _mm256_sub_epi64(_mm256_xor_si256(res, sign), sign);
}

__attribute__((target("avx2"))) inline __m256i clamp_mask_avx2(
    __m256i v, __m256i lo, __m256i hi, __m256i& saturated) {
  const __m256i too_lo = _mm256_cmpgt_epi64(lo, v);
  const __m256i too_hi = _mm256_cmpgt_epi64(v, hi);
  saturated = _mm256_or_si256(too_lo, too_hi);
  __m256i out = _mm256_blendv_epi8(v, lo, too_lo);
  return _mm256_blendv_epi8(out, hi, too_hi);
}

__attribute__((target("avx2"))) void kernel_avx2(
    const LaneEngine::KernelArgs& k) {
  std::size_t i = 0;
  for (; i + 4 <= k.n; i += 4) {
    const __m256i half =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&k.half[i]));
    const __m256i shift = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(&k.shift[i]));
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&k.lo[i]));
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&k.hi[i]));

    __m256i sat_r, sat_old, sat_next, sat1, sat2;
    const __m256i term_r = clamp_mask_avx2(
        round_shift_avx2(
            mul64_avx2(_mm256_loadu_si256(
                           reinterpret_cast<const __m256i*>(&k.r[i])),
                       _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                           &k.alpha[i]))),
            half, shift),
        lo, hi, sat_r);
    const __m256i term_old = clamp_mask_avx2(
        round_shift_avx2(
            mul64_avx2(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                           &k.q_old[i])),
                       _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                           &k.one_minus_alpha[i]))),
            half, shift),
        lo, hi, sat_old);
    const __m256i term_next = clamp_mask_avx2(
        round_shift_avx2(
            mul64_avx2(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                           &k.q_next[i])),
                       _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                           &k.alpha_gamma[i]))),
            half, shift),
        lo, hi, sat_next);
    const __m256i sum1 = clamp_mask_avx2(
        _mm256_add_epi64(term_r, term_old), lo, hi, sat1);
    const __m256i new_q = clamp_mask_avx2(
        _mm256_add_epi64(sum1, term_next), lo, hi, sat2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&k.new_q[i]), new_q);

    // One flag bit per saturation source, matching the scalar kernel's
    // bit layout; movemask_pd extracts the per-slot top bits.
    const int mr = _mm256_movemask_pd(_mm256_castsi256_pd(sat_r));
    const int mo = _mm256_movemask_pd(_mm256_castsi256_pd(sat_old));
    const int mn = _mm256_movemask_pd(_mm256_castsi256_pd(sat_next));
    const int m1 = _mm256_movemask_pd(_mm256_castsi256_pd(sat1));
    const int m2 = _mm256_movemask_pd(_mm256_castsi256_pd(sat2));
    for (std::size_t l = 0; l < 4; ++l) {
      k.sat_bits[i + l] = static_cast<std::uint8_t>(
          (((mr >> l) & 1) << 0) | (((mo >> l) & 1) << 1) |
          (((mn >> l) & 1) << 2) | (((m1 >> l) & 1) << 3) |
          (((m2 >> l) & 1) << 4));
    }
  }
  if (i < k.n) {
    LaneEngine::KernelArgs tail = k;
    tail.n = k.n - i;
    tail.r += i;
    tail.q_old += i;
    tail.q_next += i;
    tail.alpha += i;
    tail.one_minus_alpha += i;
    tail.alpha_gamma += i;
    tail.half += i;
    tail.shift += i;
    tail.lo += i;
    tail.hi += i;
    tail.new_q += i;
    tail.sat_bits += i;
    kernel_scalar(tail);
  }
}

#endif  // __x86_64__

#if defined(__aarch64__)

// NEON: 2 int64 lanes per vector. aarch64 has no 64-bit vector multiply,
// so the three products compute on the scalar pipes (one MUL each, which
// dual-issues with the vector code); rounding, clamping, and the adder
// tree run vectorized. vshlq with a negated shift performs the logical
// right shift.
void kernel_neon(const LaneEngine::KernelArgs& k) {
  std::size_t i = 0;
  for (; i + 2 <= k.n; i += 2) {
    const int64x2_t half = vld1q_s64(&k.half[i]);
    const int64x2_t nshift = vnegq_s64(
        vld1q_s64(reinterpret_cast<const std::int64_t*>(&k.shift[i])));
    const int64x2_t lo = vld1q_s64(&k.lo[i]);
    const int64x2_t hi = vld1q_s64(&k.hi[i]);

    const int64x2_t prod_r = {k.r[i] * k.alpha[i],
                              k.r[i + 1] * k.alpha[i + 1]};
    const int64x2_t prod_old = {
        k.q_old[i] * k.one_minus_alpha[i],
        k.q_old[i + 1] * k.one_minus_alpha[i + 1]};
    const int64x2_t prod_next = {k.q_next[i] * k.alpha_gamma[i],
                                 k.q_next[i + 1] * k.alpha_gamma[i + 1]};

    const auto round_shift_v = [&](int64x2_t v) -> int64x2_t {
      const int64x2_t sign = vshrq_n_s64(v, 63);
      const int64x2_t mag = vsubq_s64(veorq_s64(v, sign), sign);
      const int64x2_t res = vreinterpretq_s64_u64(
          vshlq_u64(vreinterpretq_u64_s64(vaddq_s64(mag, half)), nshift));
      return vsubq_s64(veorq_s64(res, sign), sign);
    };
    const auto clamp_v = [&](int64x2_t v, uint64x2_t& sat) -> int64x2_t {
      const uint64x2_t too_lo = vcgtq_s64(lo, v);
      const uint64x2_t too_hi = vcgtq_s64(v, hi);
      sat = vorrq_u64(too_lo, too_hi);
      int64x2_t out = vbslq_s64(too_lo, lo, v);
      return vbslq_s64(too_hi, hi, out);
    };

    uint64x2_t sat_r, sat_old, sat_next, sat1, sat2;
    const int64x2_t term_r = clamp_v(round_shift_v(prod_r), sat_r);
    const int64x2_t term_old = clamp_v(round_shift_v(prod_old), sat_old);
    const int64x2_t term_next =
        clamp_v(round_shift_v(prod_next), sat_next);
    const int64x2_t sum1 = clamp_v(vaddq_s64(term_r, term_old), sat1);
    const int64x2_t new_q = clamp_v(vaddq_s64(sum1, term_next), sat2);
    vst1q_s64(&k.new_q[i], new_q);

    // vgetq_lane needs immediate indices; two unrolled extractions.
    k.sat_bits[i] = static_cast<std::uint8_t>(
        ((vgetq_lane_u64(sat_r, 0) & 1) << 0) |
        ((vgetq_lane_u64(sat_old, 0) & 1) << 1) |
        ((vgetq_lane_u64(sat_next, 0) & 1) << 2) |
        ((vgetq_lane_u64(sat1, 0) & 1) << 3) |
        ((vgetq_lane_u64(sat2, 0) & 1) << 4));
    k.sat_bits[i + 1] = static_cast<std::uint8_t>(
        ((vgetq_lane_u64(sat_r, 1) & 1) << 0) |
        ((vgetq_lane_u64(sat_old, 1) & 1) << 1) |
        ((vgetq_lane_u64(sat_next, 1) & 1) << 2) |
        ((vgetq_lane_u64(sat1, 1) & 1) << 3) |
        ((vgetq_lane_u64(sat2, 1) & 1) << 4));
  }
  if (i < k.n) {
    LaneEngine::KernelArgs tail = k;
    tail.n = k.n - i;
    tail.r += i;
    tail.q_old += i;
    tail.q_next += i;
    tail.alpha += i;
    tail.one_minus_alpha += i;
    tail.alpha_gamma += i;
    tail.half += i;
    tail.shift += i;
    tail.lo += i;
    tail.hi += i;
    tail.new_q += i;
    tail.sat_bits += i;
    kernel_scalar(tail);
  }
}

#endif  // __aarch64__

LaneEngine::KernelFn select_kernel() {
  switch (detected_simd_isa()) {
#if defined(__x86_64__)
    case SimdIsa::kAvx2:
      return &kernel_avx2;
#endif
#if defined(__aarch64__)
    case SimdIsa::kNeon:
      return &kernel_neon;
#endif
    default:
      return &kernel_scalar;
  }
}

}  // namespace

void LaneEngine::Scratch::resize(std::size_t n) {
  r.resize(n);
  q_old.resize(n);
  q_next.resize(n);
  new_q.resize(n);
  sat_bits.resize(n);
  p_alpha.resize(n);
  p_one_minus_alpha.resize(n);
  p_alpha_gamma.resize(n);
  p_half.resize(n);
  p_shift.resize(n);
  p_lo.resize(n);
  p_hi.resize(n);
}

std::shared_ptr<const LaneEngine::EnvImage> LaneEngine::build_env_image(
    const env::Environment& env, fixed::Format q_fmt) {
  auto image = std::make_shared<EnvImage>();
  image->env = &env;
  image->map = make_address_map(env);
  image->q_fmt = q_fmt;
  image->num_states = env.num_states();
  image->num_actions = env.num_actions();
  image->reward.assign(image->map.depth(), 0);
  // Host-side initialization boundary, as in FastEngine's constructor.
  // qtlint: push-allow(datapath-purity)
  for (StateId s = 0; s < env.num_states(); ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      image->reward[image->map.q_addr(s, a)] =
          fixed::from_double(env.reward(s, a), q_fmt);
    }
  }
  // qtlint: pop-allow(datapath-purity)
  image->terminal.assign(env.num_states(), 0);
  for (StateId s = 0; s < env.num_states(); ++s) {
    image->terminal[s] = env.is_terminal(s) ? 1 : 0;
  }
  image->noise_bits = env.transition_noise_bits();
  if (image->noise_bits == 0) {
    image->grid = dynamic_cast<const env::GridWorld*>(&env);
  }
  if (image->noise_bits == 0 && image->grid == nullptr &&
      env.table_size() <= kMaxPrebakedTransitions) {
    image->sa.resize(env.table_size());
    for (StateId s = 0; s < env.num_states(); ++s) {
      for (ActionId a = 0; a < env.num_actions(); ++a) {
        const std::uint64_t addr = image->map.q_addr(s, a);
        const StateId next = env.transition(s, a);
        image->sa[addr].reward = image->reward[addr];
        image->sa[addr].next = next;
        image->sa[addr].next_terminal = image->terminal[next];
      }
    }
  }
  advise_huge_pages(image->reward);
  advise_huge_pages(image->terminal);
  advise_huge_pages(image->sa);
  return image;
}

bool LaneEngine::compatible(const PipelineConfig& a,
                            const PipelineConfig& b) {
  return a.algorithm == b.algorithm && a.qmax == b.qmax &&
         a.hazard == b.hazard;
}

LaneEngine::LaneEngine(const env::Environment& env,
                       const PipelineConfig& config) {
  LaneSpec spec;
  spec.env = &env;
  spec.config = config;
  init_lanes({spec});
}

LaneEngine::LaneEngine(const std::vector<LaneSpec>& lanes) {
  init_lanes(lanes);
}

void LaneEngine::init_lanes(const std::vector<LaneSpec>& lanes) {
  QTA_CHECK_MSG(!lanes.empty(), "a lane engine needs at least one lane");
  lanes_ = lanes.size();
  kernel_ = select_kernel();

  config_.reserve(lanes_);
  image_.reserve(lanes_);
  map_.reserve(lanes_);
  coeff_.reserve(lanes_);
  eps_threshold_.reserve(lanes_);
  rng_.reserve(lanes_);
  q_.resize(lanes_);
  q2_.resize(lanes_);
  qmax_value_.resize(lanes_);
  qmax_action_.resize(lanes_);
  dirty_rows_.resize(lanes_);
  dirty_all_.assign(lanes_, 1);
  episode_start_.assign(lanes_, 1);
  state_.assign(lanes_, 0);
  pending_action_.assign(lanes_, kInvalidAction);
  episode_steps_.assign(lanes_, 0);
  wb_ring_.assign(lanes_, {kNoAddr, kNoAddr, kNoAddr});
  raise_ring_.assign(lanes_, {});
  stats_.assign(lanes_, PipelineStats{});
  dsp_saturations_.assign(lanes_, {});
  trace_.assign(lanes_, nullptr);
  telemetry_.assign(lanes_, nullptr);
  ctl_.assign(lanes_, RunCtl{});
  k_alpha_.resize(lanes_);
  k_one_minus_alpha_.resize(lanes_);
  k_alpha_gamma_.resize(lanes_);
  k_half_.resize(lanes_);
  k_shift_.resize(lanes_);
  k_lo_.resize(lanes_);
  k_hi_.resize(lanes_);

  for (std::size_t i = 0; i < lanes_; ++i) {
    const LaneSpec& spec = lanes[i];
    QTA_CHECK_MSG(spec.env != nullptr, "lane spec without an environment");
    QTA_CHECK_MSG(compatible(spec.config, lanes[0].config),
                  "lanes of one group must agree on algorithm, qmax "
                  "mode, and hazard mode");
    validate_config(spec.config, *spec.env);
    // The kernel hoists fixed::mul's per-call width check to here.
    QTA_CHECK_MSG(
        spec.config.q_fmt.width + spec.config.coeff_fmt.width <= 62,
        "product would overflow the 64-bit accumulator");

    config_.push_back(spec.config);
    if (spec.image != nullptr) {
      QTA_CHECK_MSG(spec.image->env == spec.env &&
                        spec.image->q_fmt == spec.config.q_fmt,
                    "donated environment image does not match the lane");
      image_.push_back(spec.image);
    } else {
      image_.push_back(build_env_image(*spec.env, spec.config.q_fmt));
    }
    map_.push_back(image_.back()->map);
    coeff_.push_back(make_coefficients(spec.config));
    eps_threshold_.push_back(epsilon_threshold(
        spec.config.epsilon, spec.config.epsilon_bits));
    rng_.emplace_back(spec.config.seed, map_.back());

    if (!spec.defer_tables) {
      q_[i].assign(map_.back().depth(), 0);
      if (spec.config.algorithm == Algorithm::kDoubleQ) {
        q2_[i].assign(map_.back().depth(), 0);
      }
      qmax_value_[i].assign(spec.env->num_states(), 0);
      qmax_action_[i].assign(spec.env->num_states(), 0);
      advise_huge_pages(q_[i]);
      advise_huge_pages(q2_[i]);
      advise_huge_pages(qmax_value_[i]);
      advise_huge_pages(qmax_action_[i]);
    }
    // Dirty-row flags are sized even for deferred lanes (put_state may
    // adopt a conservative epoch that needs a zeroed bitmap to land in).
    dirty_rows_[i].assign(spec.env->num_states(), 0);

    const fixed::Format qf = spec.config.q_fmt;
    const fixed::Format cf = spec.config.coeff_fmt;
    k_alpha_[i] = coeff_.back().alpha;
    k_one_minus_alpha_[i] = coeff_.back().one_minus_alpha;
    k_alpha_gamma_[i] = coeff_.back().alpha_gamma;
    k_shift_[i] = cf.frac;
    k_half_[i] =
        cf.frac == 0 ? 0 : (std::int64_t{1} << (cf.frac - 1));
    k_lo_[i] = qf.min_raw();
    k_hi_[i] = qf.max_raw();
  }
  sc_.resize(lanes_);
}

LaneEngine::Hot LaneEngine::make_hot(std::size_t lane) {
  Hot h(rng_[lane]);
  const EnvImage& img = *image_[lane];
  const PipelineConfig& c = config_[lane];
  h.stats = stats_[lane];
  h.coeff = coeff_[lane];
  h.q_fmt = c.q_fmt;
  h.coeff_fmt = c.coeff_fmt;
  h.eps_threshold = eps_threshold_[lane];
  h.epsilon_bits = c.epsilon_bits;
  h.action_bits = map_[lane].action_bits;
  h.state_bits = map_[lane].state_bits;
  h.max_episode_length = c.max_episode_length;
  h.learn_tables[0] = q_[lane].data();
  h.learn_tables[1] = q2_[lane].empty() ? nullptr : q2_[lane].data();
  h.qmax_v = qmax_value_[lane].empty() ? nullptr : qmax_value_[lane].data();
  h.qmax_a =
      qmax_action_[lane].empty() ? nullptr : qmax_action_[lane].data();
  h.dirty = dirty_rows_[lane].data();
  h.reward = img.reward.data();
  h.terminal = img.terminal.data();
  h.sa_rec = img.sa.empty() ? nullptr : img.sa.data();
  h.grid = img.grid;
  h.env = img.env;
  h.noise_bits = img.noise_bits;
  h.num_states = img.num_states;
  h.num_actions = img.num_actions;
  h.episode_start = episode_start_[lane];
  h.state = state_[lane];
  h.pending_action = pending_action_[lane];
  h.episode_steps = episode_steps_[lane];
  h.wb[0] = wb_ring_[lane][0];
  h.wb[1] = wb_ring_[lane][1];
  h.wb[2] = wb_ring_[lane][2];
  h.raise[0] = raise_ring_[lane][0];
  h.raise[1] = raise_ring_[lane][1];
  h.dsp_sat[0] = dsp_saturations_[lane][0];
  h.dsp_sat[1] = dsp_saturations_[lane][1];
  h.dsp_sat[2] = dsp_saturations_[lane][2];
  h.trace = trace_[lane];
  h.sink = telemetry_[lane];
  return h;
}

void LaneEngine::commit_hot(std::size_t lane) {
  const Hot& h = hot_[lane];
  stats_[lane] = h.stats;
  rng_[lane] = h.rng;
  episode_start_[lane] = h.episode_start;
  state_[lane] = h.state;
  pending_action_[lane] = h.pending_action;
  episode_steps_[lane] = h.episode_steps;
  wb_ring_[lane] = {h.wb[0], h.wb[1], h.wb[2]};
  raise_ring_[lane] = {h.raise[0], h.raise[1]};
  dsp_saturations_[lane] = {h.dsp_sat[0], h.dsp_sat[1], h.dsp_sat[2]};
}

void LaneEngine::exact_row_max(std::size_t lane,
                               const std::vector<fixed::raw_t>& table,
                               StateId s, fixed::raw_t& value,
                               ActionId& action) const {
  const AddressMap& map = map_[lane];
  value = table[map.q_addr(s, 0)];
  action = 0;
  for (ActionId a = 1; a < image_[lane]->num_actions; ++a) {
    const fixed::raw_t v = table[map.q_addr(s, a)];
    if (v > value) {
      value = v;
      action = a;
    }
  }
}

namespace {

// Hot-record helpers for the passes: the same logic as the LaneEngine
// member helpers, but off raw pointers so the passes touch no member
// vectors.
inline void row_max_ptr(const fixed::raw_t* table, std::uint64_t row,
                        ActionId num_actions, fixed::raw_t& value,
                        ActionId& action) {
  value = table[row];
  action = 0;
  for (ActionId a = 1; a < num_actions; ++a) {
    const fixed::raw_t v = table[row + a];
    if (v > value) {
      value = v;
      action = a;
    }
  }
}

}  // namespace

StateId LaneEngine::hot_next_state(Hot& L, StateId s, ActionId a) {
  if (L.grid != nullptr) return L.grid->transition(s, a);
  if (L.sa_rec != nullptr) return L.sa_rec[L.q_addr(s, a)].next;
  return L.noise_bits == 0
             ? L.env->transition(s, a)
             : L.env->transition(s, a,
                                 L.rng.draw_transition_noise(L.noise_bits));
}

// --- the issue phases: everything ahead of the stage-3 arithmetic ----
//
// One lane, one iteration, split across three thin phases run
// lane-major so every live lane's prefetches are issued before any lane
// consumes them. The LFSR draws stay in exactly FastEngine::step_one_t's
// per-lane order: start draw, behavior draw, table select (pass_addr),
// transition noise (pass_next), epsilon (pass_read). Bubbles retire
// entirely in pass_addr and leave the slot inactive (zeroed operands
// keep the kernel's products harmless).
template <Algorithm kAlgo, bool kTel>
void LaneEngine::pass_addr(Hot& L, std::size_t slot) {
  const std::uint64_t iter = L.stats.iterations;
  ++L.stats.iterations;
  ++L.stats.issued;
  L.iter = iter;

  if (L.episode_start) {
    L.state = L.rng.draw_start_state(L.num_states);
    L.episode_steps = 0;
    L.pending_action = kInvalidAction;
    if (L.terminal[L.state] != 0) {
      ++L.stats.bubbles;
      L.raise[1] = L.raise[0];
      L.raise[0] = {kInvalidState, false};
      if (L.trace != nullptr) {
        SampleTrace tr;
        tr.bubble = true;
        tr.state = L.state;
        L.trace->push_back(tr);
      }
      if constexpr (kTel) {
        if (L.sink != nullptr) {
          telemetry::StepEvent ev;
          ev.iteration = iter;
          ev.bubble = true;
          L.sink->on_step(ev);
        }
      }
      L.active = 0;
      sc_.r[slot] = 0;
      sc_.q_old[slot] = 0;
      sc_.q_next[slot] = 0;
      return;
    }
  }

  constexpr bool kRandomBehavior = kAlgo == Algorithm::kQLearning ||
                                   kAlgo == Algorithm::kDoubleQ;
  ActionId a;
  if (kRandomBehavior || L.episode_start) {
    a = L.rng.draw_random_action();
  } else {
    QTA_DCHECK(L.pending_action != kInvalidAction);
    a = L.pending_action;
  }
  L.episode_start = 0;

  const unsigned table =
      kAlgo == Algorithm::kDoubleQ ? L.rng.draw_table_select() : 0;
  const StateId s = L.state;
  const std::uint64_t sa_addr = L.q_addr(s, a);

  L.active = 1;
  L.s = s;
  L.a = a;
  L.table = static_cast<std::uint8_t>(table);
  L.sa_addr = sa_addr;
  L.tagged_sa = L.tagged(table, s, a);
  prefetch_rw(&L.learn_tables[table][sa_addr]);
  if (L.sa_rec != nullptr) {
    prefetch_ro(&L.sa_rec[sa_addr]);
  } else {
    prefetch_ro(&L.reward[sa_addr]);
  }
}

// Resolve the transition, then put exactly the s'-indexed lines this
// algorithm will read in flight. Prefetching is kept minimal on
// purpose: outstanding-miss buffers are a scarce resource, and lines
// the pass_read stage never touches evict the ones it does.
template <Algorithm kAlgo, bool kMono>
void LaneEngine::pass_next(Hot& L) {
  const StateId s_next = hot_next_state(L, L.s, L.a);
  L.s_next = s_next;
  if (L.sa_rec == nullptr) prefetch_ro(&L.terminal[s_next]);
  if constexpr (kMono &&
                (kAlgo == Algorithm::kQLearning ||
                 kAlgo == Algorithm::kSarsa)) {
    prefetch_ro(&L.qmax_v[s_next]);
    if constexpr (kAlgo == Algorithm::kSarsa) {
      prefetch_ro(&L.qmax_a[s_next]);
    }
  } else {
    const std::uint64_t row = L.q_addr(s_next, 0);
    const std::uint64_t row_end =
        row + ((std::uint64_t{1} << L.action_bits) - 1);
    prefetch_ro(&L.learn_tables[0][row]);
    prefetch_ro(&L.learn_tables[0][row_end]);
    if constexpr (kAlgo == Algorithm::kDoubleQ) {
      prefetch_ro(&L.learn_tables[1][row]);
      prefetch_ro(&L.learn_tables[1][row_end]);
    }
  }
}

template <Algorithm kAlgo, bool kMono, bool kCountFwd, bool kTel>
void LaneEngine::pass_read(Hot& L, std::size_t slot) {
  const StateId s_next = L.s_next;
  const unsigned table = L.table;
  fixed::raw_t* learn = L.learn_tables[table];
  const fixed::raw_t* eval =
      kAlgo == Algorithm::kDoubleQ ? L.learn_tables[table ^ 1u] : learn;

  const std::uint64_t sa_addr = L.sa_addr;
  fixed::raw_t r;
  bool next_terminal;
  if (L.sa_rec != nullptr) {
    const EnvImage::SaRecord& rec = L.sa_rec[sa_addr];
    r = rec.reward;
    next_terminal = rec.next_terminal != 0;
  } else {
    r = L.reward[sa_addr];
    next_terminal = L.terminal[s_next] != 0;
  }
  ++L.episode_steps;
  const bool end =
      next_terminal || L.episode_steps >= L.max_episode_length;

  fixed::raw_t q_next = 0;
  ActionId a_next = kInvalidAction;
  std::uint64_t fwd_next_addr = kNoAddr;
  bool fwd_qmax_hit = false;
  if (!end) {
    if constexpr (kAlgo == Algorithm::kQLearning) {
      if constexpr (kMono) {
        q_next = L.qmax_v[s_next];
        if (kCountFwd && hot_raise_hit(L, s_next)) {
          ++L.stats.fwd_qmax;
          fwd_qmax_hit = true;
        }
      } else {
        ActionId ignored;
        row_max_ptr(learn, L.q_addr(s_next, 0), L.num_actions, q_next,
                    ignored);
      }
    } else if constexpr (kAlgo == Algorithm::kDoubleQ) {
      fixed::raw_t ignored;
      ActionId argmax;
      row_max_ptr(learn, L.q_addr(s_next, 0), L.num_actions, ignored,
                  argmax);
      q_next = eval[L.q_addr(s_next, argmax)];
      fwd_next_addr = L.tagged(table ^ 1u, s_next, argmax);
    } else if constexpr (kAlgo == Algorithm::kSarsa) {
      const RngBank::EpsilonDraw d =
          L.rng.draw_epsilon(L.eps_threshold, L.epsilon_bits);
      if (d.greedy) {
        if constexpr (kMono) {
          q_next = L.qmax_v[s_next];
          a_next = L.qmax_a[s_next];
          if (kCountFwd && hot_raise_hit(L, s_next)) {
            ++L.stats.fwd_qmax;
            fwd_qmax_hit = true;
          }
        } else {
          row_max_ptr(learn, L.q_addr(s_next, 0), L.num_actions, q_next,
                      a_next);
        }
      } else {
        a_next = d.explore_action;
        q_next = learn[L.q_addr(s_next, a_next)];
        fwd_next_addr = L.tagged(0, s_next, a_next);
      }
    } else {  // Expected SARSA
      const RngBank::EpsilonDraw d =
          L.rng.draw_epsilon(L.eps_threshold, L.epsilon_bits);
      fixed::raw_t row_max;
      ActionId argmax;
      const std::uint64_t row = L.q_addr(s_next, 0);
      row_max_ptr(learn, row, L.num_actions, row_max, argmax);
      fixed::raw_t row_sum = 0;
      for (ActionId kAct = 0; kAct < L.num_actions; ++kAct) {
        row_sum += learn[row + kAct];
      }
      a_next = d.greedy ? argmax : d.explore_action;
      q_next = expected_sarsa_target(row_max, row_sum, L.action_bits,
                                     L.coeff, L.q_fmt, L.coeff_fmt);
    }
  }

  const std::uint64_t tagged_sa = L.tagged_sa;
  if (hot_wb_hit(L, tagged_sa)) {
    ++L.stats.fwd_q_sa;
    if constexpr (kTel) L.tel_sa = hot_ring_distance(L, tagged_sa);
  } else if constexpr (kTel) {
    L.tel_sa = 0;
  }
  if (fwd_next_addr != kNoAddr && hot_wb_hit(L, fwd_next_addr)) {
    ++L.stats.fwd_q_next;
    if constexpr (kTel) L.tel_next = hot_ring_distance(L, fwd_next_addr);
  } else if constexpr (kTel) {
    L.tel_next = 0;
  }

  L.a_next = a_next;
  L.end = end ? 1 : 0;
  L.fwd_next_addr = fwd_next_addr;
  sc_.r[slot] = r;
  sc_.q_old[slot] = learn[sa_addr];
  sc_.q_next[slot] = q_next;
  if constexpr (kTel) L.tel_fq = fwd_qmax_hit ? 1 : 0;
}

// --- the retire pass: write-back, raise, rings, trace, telemetry ------
template <Algorithm kAlgo, bool kMono, bool kTel>
void LaneEngine::pass_retire(Hot& L, std::size_t slot) {
  const std::uint8_t sat = sc_.sat_bits[slot];
  L.dsp_sat[0] += sat & 1u;
  L.dsp_sat[1] += (sat >> 1) & 1u;
  L.dsp_sat[2] += (sat >> 2) & 1u;
  L.stats.adder_saturations += ((sat >> 3) & 1u) + ((sat >> 4) & 1u);

  const StateId s = L.s;
  const ActionId a = L.a;
  const fixed::raw_t new_q = sc_.new_q[slot];
  L.learn_tables[L.table][L.sa_addr] = new_q;
  L.dirty[s] = 1;

  bool raised = false;
  if constexpr (kAlgo != Algorithm::kExpectedSarsa &&
                kAlgo != Algorithm::kDoubleQ && kMono) {
    if (new_q > L.qmax_v[s]) {
      L.qmax_v[s] = new_q;
      L.qmax_a[s] = a;
      raised = true;
    }
  }

  L.wb[2] = L.wb[1];
  L.wb[1] = L.wb[0];
  L.wb[0] = L.tagged_sa;
  L.raise[1] = L.raise[0];
  L.raise[0] = {s, raised};

  ++L.stats.samples;
  const bool end = L.end != 0;
  if (L.trace != nullptr) {
    SampleTrace tr;
    tr.state = s;
    tr.action = a;
    tr.reward = sc_.r[slot];
    tr.new_q = new_q;
    tr.next_state = L.s_next;
    tr.end_episode = end;
    tr.table = L.table;
    L.trace->push_back(tr);
  }

  if constexpr (kTel) {
    if (L.sink != nullptr) {
      telemetry::StepEvent ev;
      ev.iteration = L.iter;
      ev.episode_end = end;
      ev.fwd_sa_distance = L.tel_sa;
      ev.fwd_next_distance = L.tel_next;
      ev.fwd_qmax = L.tel_fq != 0;
      // All of this step's saturation events are in the kernel's mask.
      ev.saturations = static_cast<std::uint8_t>(
          (sat & 1u) + ((sat >> 1) & 1u) + ((sat >> 2) & 1u) +
          ((sat >> 3) & 1u) + ((sat >> 4) & 1u));
      ev.qmax_raised = raised;
      L.sink->on_step(ev);
    }
  }

  if (end) {
    ++L.stats.episodes;
    L.episode_start = 1;
  } else {
    L.state = L.s_next;
    L.pending_action = L.a_next;
  }
}

void LaneEngine::pack_params(const std::vector<std::size_t>& live) {
  for (std::size_t i = 0; i < live.size(); ++i) {
    const std::size_t lane = live[i];
    sc_.p_alpha[i] = k_alpha_[lane];
    sc_.p_one_minus_alpha[i] = k_one_minus_alpha_[lane];
    sc_.p_alpha_gamma[i] = k_alpha_gamma_[lane];
    sc_.p_half[i] = k_half_[lane];
    sc_.p_shift[i] = k_shift_[lane];
    sc_.p_lo[i] = k_lo_[lane];
    sc_.p_hi[i] = k_hi_[lane];
  }
  params_dirty_ = false;
}

template <Algorithm kAlgo, bool kMono, bool kCountFwd, bool kTel>
void LaneEngine::run_rounds(std::vector<std::size_t>& live) {
  Hot* const hot = hot_.data();
  KernelArgs k;
  k.r = sc_.r.data();
  k.q_old = sc_.q_old.data();
  k.q_next = sc_.q_next.data();
  k.alpha = sc_.p_alpha.data();
  k.one_minus_alpha = sc_.p_one_minus_alpha.data();
  k.alpha_gamma = sc_.p_alpha_gamma.data();
  k.half = sc_.p_half.data();
  k.shift = sc_.p_shift.data();
  k.lo = sc_.p_lo.data();
  k.hi = sc_.p_hi.data();
  k.new_q = sc_.new_q.data();
  k.sat_bits = sc_.sat_bits.data();

  while (!live.empty()) {
    if (params_dirty_) pack_params(live);
    const std::size_t n = live.size();

    for (std::size_t i = 0; i < n; ++i) {
      pass_addr<kAlgo, kTel>(hot[live[i]], i);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (hot[live[i]].active != 0) pass_next<kAlgo, kMono>(hot[live[i]]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (hot[live[i]].active != 0) {
        pass_read<kAlgo, kMono, kCountFwd, kTel>(hot[live[i]], i);
      }
    }

    k.n = n;
    kernel_(k);

    for (std::size_t i = 0; i < n; ++i) {
      if (hot[live[i]].active != 0) {
        pass_retire<kAlgo, kMono, kTel>(hot[live[i]], i);
      }
    }

    // Run control: a sampling lane leaves (or starts its drain) once its
    // target is met; iteration/drain lanes count down.
    std::size_t out = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t lane = live[i];
      RunCtl& ctl = ctl_[lane];
      bool done = false;
      if (ctl.sample_target != 0) {
        if (hot[lane].stats.samples >= ctl.sample_target) {
          if (config_[lane].hazard == HazardMode::kForward) {
            // The pipeline keeps issuing while the final sample drains:
            // exactly 3 extra iterations retire (FastEngine::run_samples).
            ctl.sample_target = 0;
            ctl.remaining = 3;
          } else {
            done = true;
          }
        }
      } else {
        if (--ctl.remaining == 0) done = true;
      }
      if (!done) {
        live[out++] = lane;
      } else {
        params_dirty_ = true;
      }
    }
    live.resize(out);
  }
}

template <Algorithm kAlgo, bool kMono, bool kCountFwd>
void LaneEngine::run_rounds_any(std::vector<std::size_t>& live) {
  bool any_tel = false;
  for (const std::size_t lane : live) {
    any_tel = any_tel || telemetry_[lane] != nullptr;
  }
  if (any_tel) {
    run_rounds<kAlgo, kMono, kCountFwd, true>(live);
  } else {
    run_rounds<kAlgo, kMono, kCountFwd, false>(live);
  }
}

template <Algorithm kAlgo>
void LaneEngine::run_rounds_algo(std::vector<std::size_t>& live) {
  const PipelineConfig& c = config_[live.empty() ? 0 : live[0]];
  const bool mono = c.qmax == QmaxMode::kMonotoneTable;
  if (mono && c.hazard == HazardMode::kForward) {
    run_rounds_any<kAlgo, true, true>(live);
  } else if (mono) {
    run_rounds_any<kAlgo, true, false>(live);
  } else {
    run_rounds_any<kAlgo, false, false>(live);
  }
}

void LaneEngine::run_group(const std::vector<std::size_t>& lanes_to_run,
                           const std::vector<std::uint64_t>& values,
                           bool samples_mode) {
  QTA_CHECK(lanes_to_run.size() == values.size());
  std::vector<std::size_t> live;
  live.reserve(lanes_to_run.size());
  for (std::size_t i = 0; i < lanes_to_run.size(); ++i) {
    const std::size_t lane = lanes_to_run[i];
    QTA_CHECK(lane < lanes_);
    RunCtl& ctl = ctl_[lane];
    if (samples_mode) {
      // The pipeline would not tick at all for an already-met target.
      if (stats_[lane].samples >= values[i]) continue;
      ctl.sample_target = values[i];
      ctl.remaining = 0;
    } else {
      if (values[i] == 0) continue;
      ctl.sample_target = 0;
      ctl.remaining = values[i];
    }
    // Fresh run: the prior drain committed every in-flight raise.
    raise_ring_[lane] = {};
    ctl.iters_at_entry = stats_[lane].iterations;
    live.push_back(lane);
  }
  if (live.empty()) return;
  const std::vector<std::size_t> entered = live;
  params_dirty_ = true;

  // Materialize the hot records the passes run off (indexed by lane; the
  // non-participating lanes' records are built but never touched).
  hot_.clear();
  hot_.reserve(lanes_);
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    hot_.push_back(make_hot(lane));
  }

  switch (config_[live[0]].algorithm) {
    case Algorithm::kQLearning:
      run_rounds_algo<Algorithm::kQLearning>(live);
      break;
    case Algorithm::kSarsa:
      run_rounds_algo<Algorithm::kSarsa>(live);
      break;
    case Algorithm::kExpectedSarsa:
      run_rounds_algo<Algorithm::kExpectedSarsa>(live);
      break;
    case Algorithm::kDoubleQ:
      run_rounds_algo<Algorithm::kDoubleQ>(live);
      break;
  }

  // Exit accounting per participating lane, exactly as the FastEngine
  // run_* epilogues attribute cycles and emit RunEvents.
  for (const std::size_t lane : entered) {
    commit_hot(lane);
    PipelineStats& st = stats_[lane];
    const std::uint64_t ticks = st.iterations - ctl_[lane].iters_at_entry;
    telemetry::RunEvent run;
    if (samples_mode) {
      if (config_[lane].hazard == HazardMode::kForward) {
        run.issue_cycles = ticks;
        run.drain_cycles = 3;
        st.cycles += ticks + 3;
      } else {
        st.cycles += 4 * ticks;
        st.stall_cycles += 3 * ticks;
        run.issue_cycles = ticks;
        run.stall_cycles = 3 * ticks;
      }
    } else {
      run.issue_cycles = ticks;
      if (config_[lane].hazard == HazardMode::kForward) {
        st.cycles += ticks + 3;
        run.drain_cycles = 3;
      } else {
        st.cycles += 4 * ticks;
        st.stall_cycles += 3 * (ticks - 1);
        run.stall_cycles = 3 * (ticks - 1);
        run.drain_cycles = 3;
      }
    }
    if (telemetry_[lane] != nullptr) telemetry_[lane]->on_run(run);
  }
}

void LaneEngine::run_samples_all(
    const std::vector<std::uint64_t>& targets) {
  QTA_CHECK(targets.size() == lanes_);
  std::vector<std::size_t> all(lanes_);
  for (std::size_t i = 0; i < lanes_; ++i) all[i] = i;
  run_group(all, targets, /*samples_mode=*/true);
}

void LaneEngine::run_iterations_all(
    const std::vector<std::uint64_t>& counts) {
  QTA_CHECK(counts.size() == lanes_);
  std::vector<std::size_t> all(lanes_);
  for (std::size_t i = 0; i < lanes_; ++i) all[i] = i;
  run_group(all, counts, /*samples_mode=*/false);
}

void LaneEngine::run_iterations(std::size_t lane, std::uint64_t n) {
  run_group({lane}, {n}, /*samples_mode=*/false);
}

void LaneEngine::run_samples(std::size_t lane, std::uint64_t n) {
  run_group({lane}, {n}, /*samples_mode=*/true);
}

fixed::raw_t LaneEngine::q_raw(std::size_t lane, StateId s,
                               ActionId a) const {
  return q_[lane][map_[lane].q_addr(s, a)];
}

fixed::raw_t LaneEngine::q2_raw(std::size_t lane, StateId s,
                                ActionId a) const {
  QTA_CHECK(config_[lane].algorithm == Algorithm::kDoubleQ);
  return q2_[lane][map_[lane].q_addr(s, a)];
}

// Host-side readback, identical to FastEngine's.
// qtlint: push-allow(datapath-purity)
double LaneEngine::q_value(std::size_t lane, StateId s, ActionId a) const {
  if (config_[lane].algorithm == Algorithm::kDoubleQ) {
    return (fixed::to_double(q_raw(lane, s, a), config_[lane].q_fmt) +
            fixed::to_double(q2_[lane][map_[lane].q_addr(s, a)],
                             config_[lane].q_fmt)) /
           2.0;
  }
  return fixed::to_double(q_raw(lane, s, a), config_[lane].q_fmt);
}

std::vector<double> LaneEngine::q_as_double(std::size_t lane) const {
  const EnvImage& img = *image_[lane];
  std::vector<double> out;
  out.reserve(img.env->table_size());
  for (StateId s = 0; s < img.num_states; ++s) {
    for (ActionId a = 0; a < img.num_actions; ++a) {
      out.push_back(q_value(lane, s, a));
    }
  }
  return out;
}
// qtlint: pop-allow(datapath-purity)

std::vector<ActionId> LaneEngine::greedy_policy(std::size_t lane) const {
  return env::greedy_policy_from(*image_[lane]->env, q_as_double(lane));
}

QmaxUnit::Entry LaneEngine::qmax_entry(std::size_t lane, StateId s) const {
  QTA_CHECK(s < image_[lane]->num_states);
  return {qmax_value_[lane][s], qmax_action_[lane][s]};
}

void LaneEngine::preset_q(std::size_t lane, StateId s, ActionId a,
                          fixed::raw_t value) {
  q_[lane][map_[lane].q_addr(s, a)] =
      fixed::saturate(value, config_[lane].q_fmt);
  dirty_rows_[lane][s] = 1;
}

void LaneEngine::rebuild_qmax(std::size_t lane) {
  if (config_[lane].qmax != QmaxMode::kMonotoneTable ||
      config_[lane].algorithm == Algorithm::kExpectedSarsa ||
      config_[lane].algorithm == Algorithm::kDoubleQ) {
    return;
  }
  for (StateId s = 0; s < image_[lane]->num_states; ++s) {
    fixed::raw_t value;
    ActionId action;
    exact_row_max(lane, q_[lane], s, value, action);
    if (value < 0) {
      value = 0;
      action = 0;
    }
    qmax_value_[lane][s] = value;
    qmax_action_[lane][s] = action;
  }
  // Every Qmax row was rewritten (possibly lowered below the old
  // monotone value), so the epoch collapses to all-dirty.
  dirty_all_[lane] = 1;
}

MachineState LaneEngine::save_state(std::size_t lane) const {
  MachineState ms;
  ms.q = q_[lane];
  ms.q2 = q2_[lane];
  ms.qmax_value = qmax_value_[lane];
  ms.qmax_action = qmax_action_[lane];
  ms.rng = rng_[lane].lfsr_state();
  ms.episode_start = episode_start_[lane] != 0;
  ms.state = state_[lane];
  ms.pending_action = pending_action_[lane];
  ms.episode_steps = episode_steps_[lane];
  static_assert(kNoAddr == MachineState::kNoWriteback);
  ms.wb_addrs = wb_ring_[lane];
  ms.stats = stats_[lane];
  ms.dsp_saturations = dsp_saturations_[lane];
  ms.dirty.rows = dirty_rows_[lane];
  ms.dirty.all = dirty_all_[lane] != 0;
  return ms;
}

void LaneEngine::load_state(std::size_t lane, const MachineState& ms) {
  put_state(lane, MachineState(ms));
}

MachineState LaneEngine::take_state(std::size_t lane) {
  MachineState ms;
  ms.q = std::move(q_[lane]);
  ms.q2 = std::move(q2_[lane]);
  ms.qmax_value = std::move(qmax_value_[lane]);
  ms.qmax_action = std::move(qmax_action_[lane]);
  ms.rng = rng_[lane].lfsr_state();
  ms.episode_start = episode_start_[lane] != 0;
  ms.state = state_[lane];
  ms.pending_action = pending_action_[lane];
  ms.episode_steps = episode_steps_[lane];
  ms.wb_addrs = wb_ring_[lane];
  ms.stats = stats_[lane];
  ms.dsp_saturations = dsp_saturations_[lane];
  ms.dirty.rows = std::move(dirty_rows_[lane]);
  ms.dirty.all = dirty_all_[lane] != 0;
  q_[lane].clear();
  q2_[lane].clear();
  qmax_value_[lane].clear();
  qmax_action_[lane].clear();
  // Leave a zeroed, correctly sized bitmap behind so put_state can adopt
  // into it and preset_q on a deferred lane stays in bounds.
  dirty_rows_[lane].assign(image_[lane]->num_states, 0);
  dirty_all_[lane] = 1;
  return ms;
}

void LaneEngine::put_state(std::size_t lane, MachineState&& ms) {
  const EnvImage& img = *image_[lane];
  const bool double_q = config_[lane].algorithm == Algorithm::kDoubleQ;
  QTA_CHECK_MSG(ms.q.size() == img.map.depth(),
                "machine state does not match the engine's table geometry");
  QTA_CHECK_MSG(ms.q2.size() == (double_q ? img.map.depth() : 0),
                "machine state and engine disagree on the second Q table");
  QTA_CHECK_MSG(ms.qmax_value.size() == img.num_states &&
                    ms.qmax_action.size() == img.num_states,
                "machine state does not match the engine's state count");
  q_[lane] = std::move(ms.q);
  q2_[lane] = std::move(ms.q2);
  qmax_value_[lane] = std::move(ms.qmax_value);
  qmax_action_[lane] = std::move(ms.qmax_action);
  advise_huge_pages(q_[lane]);
  advise_huge_pages(q2_[lane]);
  advise_huge_pages(qmax_value_[lane]);
  advise_huge_pages(qmax_action_[lane]);
  rng_[lane].set_lfsr_state(ms.rng);
  episode_start_[lane] = ms.episode_start ? 1 : 0;
  state_[lane] = ms.state;
  pending_action_[lane] = ms.pending_action;
  episode_steps_[lane] = ms.episode_steps;
  wb_ring_[lane] = ms.wb_addrs;
  // The raise ring is intentionally NOT restored: states are saved
  // post-drain, and run_group resets the ring at entry anyway.
  raise_ring_[lane] = {};
  stats_[lane] = ms.stats;
  dsp_saturations_[lane] = ms.dsp_saturations;

  // Adopt the carried dirty-row epoch; any mismatch (or a
  // default-constructed DirtyRows) collapses to conservative all-dirty.
  if (!ms.dirty.all && ms.dirty.rows.size() == img.num_states) {
    dirty_rows_[lane] = std::move(ms.dirty.rows);
    dirty_all_[lane] = 0;
  } else {
    dirty_rows_[lane].assign(img.num_states, 0);
    dirty_all_[lane] = 1;
  }
}

void LaneEngine::reset_dirty_rows(std::size_t lane) {
  std::fill(dirty_rows_[lane].begin(), dirty_rows_[lane].end(), 0);
  dirty_all_[lane] = 0;
}

std::uint64_t LaneEngine::dirty_row_count(std::size_t lane) const {
  if (dirty_all_[lane] != 0) return image_[lane]->num_states;
  std::uint64_t n = 0;
  for (const std::uint8_t b : dirty_rows_[lane]) n += b;
  return n;
}

}  // namespace qta::qtaccel

// Q-table serialization: save a trained table, reload it into another
// pipeline (warm start, or host-side deployment of a table trained in
// simulation). Versioned plain-text format:
//
//   QTACCEL-QTABLE v1
//   states <|S|> actions <|A|> width <bits> frac <bits>
//   <|S| lines of |A| raw integers>
//
// Raw fixed-point words are stored, not doubles, so a round trip is
// bit-exact. Loading validates the geometry and format against the
// target pipeline and rebuilds the monotone Qmax table as the exact row
// maxima of the loaded values (the tightest state consistent with them).
#pragma once

#include <iosfwd>

#include "qtaccel/pipeline.h"

namespace qta::qtaccel {

void save_q_table(std::ostream& os, const Pipeline& pipeline);

/// Aborts with a diagnostic on malformed input or a geometry/format
/// mismatch with `pipeline`'s configuration.
void load_q_table(std::istream& is, Pipeline& pipeline);

}  // namespace qta::qtaccel

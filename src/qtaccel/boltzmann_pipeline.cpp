#include "qtaccel/boltzmann_pipeline.h"

#include "common/bit_math.h"
#include "common/check.h"
#include "fixed/math_lut.h"
#include "qtaccel/resources.h"
#include "rng/xoshiro.h"

namespace qta::qtaccel {

BoltzmannPipeline::BoltzmannPipeline(const env::Environment& env,
                                     const BoltzmannConfig& config)
    : env_(env),
      config_(config),
      map_(make_address_map(env)),
      coeff_([&] {
        PipelineConfig pc;
        pc.alpha = config.alpha;
        pc.gamma = config.gamma;
        pc.q_fmt = config.q_fmt;
        pc.coeff_fmt = config.coeff_fmt;
        return make_coefficients(pc);
      }()),
      exp_lut_(config.lut_lo, config.lut_hi, config.exp_lut_log2_entries,
               config.weight_fmt),
      q_table_("q_table", map_.depth(), config.q_fmt.width, 2),
      r_table_("reward_table", map_.depth(), config.q_fmt.width, 1),
      p_table_("probability_table", map_.depth(), config.weight_fmt.width,
               2),
      start_lfsr_(32, rng::SplitMix64(config.seed).next()),
      select_lfsr_(32,
                   rng::SplitMix64(config.seed ^ 0x1234abcdULL).next()) {
  QTA_CHECK(config.alpha > 0.0 && config.alpha <= 1.0);
  QTA_CHECK(config.gamma >= 0.0 && config.gamma < 1.0);
  QTA_CHECK_MSG(config.temperature > 0.0, "temperature must be positive");
  for (StateId s = 0; s < env.num_states(); ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      r_table_.preset(map_.q_addr(s, a),
                      fixed::from_double(env.reward(s, a), config.q_fmt));
      // Uniform initial policy: all weights = exp(0 / T) = 1.
      p_table_.preset(map_.q_addr(s, a), refreshed_weight(0));
    }
  }
}

// Host-side readback of the stored Q/P words for tests and reporting.
// qtlint: push-allow(datapath-purity)
double BoltzmannPipeline::q_value(StateId s, ActionId a) const {
  return fixed::to_double(q_table_.peek(map_.q_addr(s, a)), config_.q_fmt);
}

double BoltzmannPipeline::weight(StateId s, ActionId a) const {
  return fixed::to_double(p_table_.peek(map_.q_addr(s, a)),
                          config_.weight_fmt);
}

double BoltzmannPipeline::action_probability(StateId s, ActionId a) const {
  double sum = 0.0;
  for (ActionId k = 0; k < env_.num_actions(); ++k) sum += weight(s, k);
  QTA_CHECK(sum > 0.0);
  return weight(s, a) / sum;
}
// qtlint: pop-allow(datapath-purity)

fixed::raw_t BoltzmannPipeline::refreshed_weight(fixed::raw_t q) const {
  // f = expLUT(Q / T). The division runs on the shift-subtract divider;
  // the LUT clamps its own domain.
  const fixed::raw_t scaled = fixed::div_fixed(
      q, config_.q_fmt, fixed::from_double(config_.temperature, {32, 16}),
      {32, 16}, {32, 16});
  fixed::raw_t w = exp_lut_.eval(scaled, {32, 16});
  // A zero weight would make a row unsamplable; the hardware ORs in the
  // LSB (weights are unnormalized, so the floor only matters near
  // underflow).
  if (w <= 0) w = 1;
  return w;
}

std::uint64_t BoltzmannPipeline::row_sum(StateId s) const {
  std::uint64_t sum = 0;
  for (ActionId a = 0; a < env_.num_actions(); ++a) {
    sum += static_cast<std::uint64_t>(p_table_.peek(map_.q_addr(s, a)));
  }
  return sum;
}

ActionId BoltzmannPipeline::sample_action(StateId s) {
  const std::uint64_t sum = row_sum(s);
  QTA_CHECK(sum > 0);
  __extension__ typedef unsigned __int128 u128;
  const std::uint64_t u = static_cast<std::uint64_t>(
      (static_cast<u128>(select_lfsr_.draw_bits(32)) * sum) >> 32);
  // Binary search over prefix sums: ceil(log2 |A|) sequential P reads.
  std::uint64_t prefix = 0;
  for (ActionId a = 0; a < env_.num_actions(); ++a) {
    prefix += static_cast<std::uint64_t>(p_table_.peek(map_.q_addr(s, a)));
    if (u < prefix) return a;
  }
  return env_.num_actions() - 1;
}

ActionId BoltzmannPipeline::sample_action_for_test(StateId s) {
  return sample_action(s);
}

void BoltzmannPipeline::run_samples(std::uint64_t samples) {
  const unsigned stall = log2_ceil(env_.num_actions());
  while (stats_.samples < samples) {
    if (episode_start_) {
      state_ = static_cast<StateId>(start_lfsr_.below(env_.num_states()));
      episode_steps_ = 0;
      pending_action_ = kInvalidAction;
      if (env_.is_terminal(state_)) {
        ++stats_.bubbles;
        ++stats_.cycles;
        continue;
      }
      episode_start_ = false;
    }

    // Behavior action: on-policy carry, fresh sample at episode start.
    const ActionId a = pending_action_ != kInvalidAction
                           ? pending_action_
                           : sample_action(state_);
    const StateId s = state_;
    const StateId s_next = env_.transition(s, a);
    const fixed::raw_t r = r_table_.peek(map_.q_addr(s, a));
    ++episode_steps_;
    const bool end = env_.is_terminal(s_next) ||
                     episode_steps_ >= config_.max_episode_length;

    // Stage 2: probability-table selection for S' (the stalling step).
    fixed::raw_t q_next = 0;
    ActionId a_next = kInvalidAction;
    if (!end) {
      a_next = sample_action(s_next);
      q_next = q_table_.peek(map_.q_addr(s_next, a_next));
    }

    // Stage 3: the standard three-product datapath.
    const fixed::Format qf = config_.q_fmt;
    const fixed::Format cf = config_.coeff_fmt;
    const fixed::raw_t q_old = q_table_.peek(map_.q_addr(s, a));
    const fixed::raw_t new_q = fixed::sat_add(
        fixed::sat_add(fixed::mul(r, qf, coeff_.alpha, cf, qf),
                       fixed::mul(q_old, qf, coeff_.one_minus_alpha, cf, qf),
                       qf),
        fixed::mul(q_next, qf, coeff_.alpha_gamma, cf, qf), qf);

    // Stage 4: Q write-back + probability refresh.
    q_table_.preset(map_.q_addr(s, a), new_q);
    p_table_.preset(map_.q_addr(s, a), refreshed_weight(new_q));

    ++stats_.samples;
    stats_.cycles += 1 + stall;
    stats_.selection_stall_cycles += stall;

    if (end) {
      ++stats_.episodes;
      episode_start_ = true;
    } else {
      state_ = s_next;
      pending_action_ = a_next;
    }
  }
}

hw::ResourceLedger BoltzmannPipeline::resources() const {
  PipelineConfig pc;
  pc.alpha = config_.alpha;
  pc.gamma = config_.gamma;
  pc.q_fmt = config_.q_fmt;
  pc.coeff_fmt = config_.coeff_fmt;
  // The probability variant carries no Qmax table (the paper's "3 |S|*|A|
  // sized tables": Q, R, P); kExactScan drops it from the ledger, and its
  // comparator-tree LUT term stands in for the prefix-sum adder row.
  pc.qmax = QmaxMode::kExactScan;
  return build_resources_with_probability_table(
      env_, pc, config_.exp_lut_log2_entries);
}

}  // namespace qta::qtaccel

// The random-number consumers of the pipeline, bundled so the pipeline and
// the sequential golden model consume bit-identical streams.
//
// Each purpose owns its own LFSR (paper Section IV-A: LFSR-based action
// selector). Separate per-purpose generators are also what makes pipelined
// execution deterministic: interleaving of stages never changes which
// stream a draw comes from, so per-iteration draw sequences are identical
// in the pipeline and in the golden model.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "env/environment.h"
#include "qtaccel/config.h"
#include "rng/lfsr.h"

namespace qta::qtaccel {

class RngBank {
 public:
  /// Expands the master seed into three independent LFSR streams.
  RngBank(std::uint64_t master_seed, const AddressMap& map);

  /// Episode-start state: uniform over [0, |S|) via the multiply trick
  /// (the draw may land on a terminal state — the caller then treats the
  /// iteration as a zero-length episode and redraws next iteration).
  StateId draw_start_state(StateId num_states);

  /// Behavior action, uniform over the 2^action_bits encodings.
  ActionId draw_random_action();

  /// One epsilon-greedy draw (SARSA stage 2): an N-bit word compared with
  /// the threshold; the low action bits double as the exploration index.
  struct EpsilonDraw {
    bool greedy = false;
    ActionId explore_action = 0;
  };
  EpsilonDraw draw_epsilon(std::uint64_t threshold, unsigned bits);

  /// Noise input for stochastic transition functions (its own LFSR, so
  /// deterministic environments consume an identical stream to before).
  std::uint64_t draw_transition_noise(unsigned bits);

  /// Double Q-Learning's per-sample coin flip (which table learns);
  /// drawn from the update-policy LFSR, which kDoubleQ uses for nothing
  /// else.
  unsigned draw_table_select();

  /// Total flip-flops across the bank for the resource model (the update
  /// LFSR only exists for SARSA; pass the algorithm to count it).
  static unsigned flip_flops(Algorithm algorithm);

 private:
  AddressMap map_;
  rng::Lfsr start_;
  rng::Lfsr behavior_;
  rng::Lfsr update_;
  rng::Lfsr noise_;
};

}  // namespace qta::qtaccel

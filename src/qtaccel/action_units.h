// The random-number consumers of the pipeline, bundled so the pipeline and
// the sequential golden model consume bit-identical streams.
//
// Each purpose owns its own LFSR (paper Section IV-A: LFSR-based action
// selector). Separate per-purpose generators are also what makes pipelined
// execution deterministic: interleaving of stages never changes which
// stream a draw comes from, so per-iteration draw sequences are identical
// in the pipeline and in the golden model.
#pragma once

#include <array>
#include <cstdint>

#include "common/bit_math.h"
#include "common/check.h"
#include "common/types.h"
#include "env/environment.h"
#include "qtaccel/config.h"
#include "rng/lfsr.h"

namespace qta::qtaccel {

class RngBank {
 public:
  /// Expands the master seed into three independent LFSR streams.
  RngBank(std::uint64_t master_seed, const AddressMap& map);

  // The draw_* methods are inline: they run once or more per simulated
  // sample in both backends' hot loops, and keeping them visible to the
  // optimizer lets the LFSR registers live in machine registers across
  // iterations.

  /// Episode-start state: uniform over [0, |S|) via the multiply trick
  /// (the draw may land on a terminal state — the caller then treats the
  /// iteration as a zero-length episode and redraws next iteration).
  StateId draw_start_state(StateId num_states) {
    return static_cast<StateId>(start_.below(num_states));
  }

  /// Behavior action, uniform over the 2^action_bits encodings.
  ActionId draw_random_action() {
    return static_cast<ActionId>(behavior_.draw_bits(map_.action_bits));
  }

  /// One epsilon-greedy draw (SARSA stage 2): an N-bit word compared with
  /// the threshold; the low action bits double as the exploration index.
  struct EpsilonDraw {
    bool greedy = false;
    ActionId explore_action = 0;
  };
  EpsilonDraw draw_epsilon(std::uint64_t threshold, unsigned bits) {
    QTA_CHECK(bits >= map_.action_bits);
    const std::uint64_t draw = update_.draw_bits(bits);
    EpsilonDraw d;
    d.greedy = draw < threshold;
    d.explore_action =
        static_cast<ActionId>(qta::bits(draw, 0, map_.action_bits));
    return d;
  }

  /// Noise input for stochastic transition functions (its own LFSR, so
  /// deterministic environments consume an identical stream to before).
  std::uint64_t draw_transition_noise(unsigned bits) {
    QTA_CHECK(bits >= 1 && bits <= 64);
    return noise_.draw_bits(bits);
  }

  /// Double Q-Learning's per-sample coin flip (which table learns);
  /// drawn from the update-policy LFSR, which kDoubleQ uses for nothing
  /// else.
  unsigned draw_table_select() {
    return static_cast<unsigned>(update_.draw_bits(1));
  }

  /// Total flip-flops across the bank for the resource model (the update
  /// LFSR only exists for SARSA; pass the algorithm to count it).
  static unsigned flip_flops(Algorithm algorithm);

  /// Register snapshot of the four streams, in the fixed order
  /// {start, behavior, update, noise} (machine_state.h relies on it).
  std::array<std::uint64_t, 4> lfsr_state() const {
    return {start_.state(), behavior_.state(), update_.state(),
            noise_.state()};
  }
  void set_lfsr_state(const std::array<std::uint64_t, 4>& state) {
    start_.set_state(state[0]);
    behavior_.set_state(state[1]);
    update_.set_state(state[2]);
    noise_.set_state(state[3]);
  }

 private:
  AddressMap map_;
  rng::Lfsr start_;
  rng::Lfsr behavior_;
  rng::Lfsr update_;
  rng::Lfsr noise_;
};

}  // namespace qta::qtaccel

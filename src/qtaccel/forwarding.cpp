#include "qtaccel/forwarding.h"

#include "common/check.h"

namespace qta::qtaccel {

void WritebackQueue::push(const Writeback& wb) {
  for (unsigned i = kDepth - 1; i > 0; --i) entries_[i] = entries_[i - 1];
  entries_[0] = wb;
}

std::optional<fixed::raw_t> WritebackQueue::match_q(
    std::uint64_t q_addr) const {
  return match_q(q_addr, kDepth);
}

std::optional<fixed::raw_t> WritebackQueue::match_q(std::uint64_t q_addr,
                                                    unsigned window) const {
  QTA_CHECK(window <= kDepth);
  for (unsigned i = 0; i < window; ++i) {
    if (entries_[i].valid && entries_[i].q_addr == q_addr) {
      return entries_[i].new_q;
    }
  }
  return std::nullopt;
}

void WritebackQueue::combine_qmax(StateId state, fixed::raw_t& value,
                                  ActionId& action) const {
  // Oldest-first so the chain of strict-greater compares matches the
  // order the sequential machine would have applied them in.
  for (unsigned i = kDepth; i-- > 0;) {
    const Writeback& wb = entries_[i];
    if (wb.valid && wb.state == state && wb.new_q > value) {
      value = wb.new_q;
      action = wb.action;
    }
  }
}

unsigned WritebackQueue::occupancy() const {
  unsigned n = 0;
  for (const auto& e : entries_) n += e.valid ? 1 : 0;
  return n;
}

void WritebackQueue::clear() { entries_ = {}; }

}  // namespace qta::qtaccel

#include "qtaccel/config.h"

#include <cmath>

#include "common/bit_math.h"
#include "common/check.h"

namespace qta::qtaccel {

AddressMap make_address_map(const env::Environment& env) {
  QTA_CHECK_MSG(is_pow2(env.num_actions()),
                "the accelerator bit-concatenates {state, action}; the "
                "action count must be a power of two");
  AddressMap map;
  map.state_bits = log2_ceil(env.num_states());
  map.action_bits = log2_ceil(env.num_actions());
  return map;
}

void validate_config(const PipelineConfig& config,
                     const env::Environment& env) {
  QTA_CHECK(env.num_states() >= 2);
  QTA_CHECK(env.num_actions() >= 2);
  QTA_CHECK_MSG(is_pow2(env.num_actions()),
                "action count must be a power of two");
  QTA_CHECK(config.alpha > 0.0 && config.alpha <= 1.0);
  QTA_CHECK(config.gamma >= 0.0 && config.gamma < 1.0);
  QTA_CHECK(config.epsilon >= 0.0 && config.epsilon <= 1.0);
  QTA_CHECK(config.epsilon_bits >= 4 && config.epsilon_bits <= 32);
  QTA_CHECK(config.max_episode_length >= 1);
  fixed::validate(config.q_fmt);
  fixed::validate(config.coeff_fmt);
  QTA_CHECK_MSG(config.coeff_fmt.max_value() >= 1.0,
                "coefficient format must represent 1.0 (for 1 - alpha)");
}

Backend parse_backend(const std::string& name) {
  if (name == "cycle" || name == "cycle-accurate") {
    return Backend::kCycleAccurate;
  }
  if (name == "lanes") return Backend::kLanes;
  QTA_CHECK_MSG(
      name == "fast",
      "--backend must be 'cycle' (cycle-accurate), 'fast', or 'lanes'");
  return Backend::kFast;
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kCycleAccurate: return "cycle";
    case Backend::kFast: return "fast";
    case Backend::kLanes: return "lanes";
  }
  return "cycle";
}

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kQLearning: return "q_learning";
    case Algorithm::kSarsa: return "sarsa";
    case Algorithm::kExpectedSarsa: return "expected_sarsa";
    case Algorithm::kDoubleQ: return "double_q";
  }
  return "unknown";
}

const char* qmax_name(QmaxMode qmax) {
  return qmax == QmaxMode::kMonotoneTable ? "monotone" : "exact";
}

const char* hazard_name(HazardMode hazard) {
  return hazard == HazardMode::kForward ? "forward" : "stall";
}

telemetry::RunLabels make_run_labels(const PipelineConfig& config,
                                     unsigned pipe) {
  telemetry::RunLabels labels;
  labels.algorithm = algorithm_name(config.algorithm);
  labels.qmax = qmax_name(config.qmax);
  labels.hazard = hazard_name(config.hazard);
  labels.backend = backend_name(config.backend);
  labels.pipe = pipe;
  return labels;
}

std::uint64_t epsilon_threshold(double epsilon, unsigned bits) {
  QTA_CHECK(epsilon >= 0.0 && epsilon <= 1.0);
  QTA_CHECK(bits >= 1 && bits <= 32);
  const double span = static_cast<double>(std::uint64_t{1} << bits);
  return static_cast<std::uint64_t>(std::llround((1.0 - epsilon) * span));
}

Coefficients make_coefficients(const PipelineConfig& config) {
  Coefficients c;
  c.alpha = fixed::from_double(config.alpha, config.coeff_fmt);
  // 1 - alpha via the stage-1 saturating subtractor, from the quantized
  // alpha (so alpha + (1-alpha) == 1 exactly in fixed point).
  const fixed::raw_t one = fixed::from_double(1.0, config.coeff_fmt);
  c.one_minus_alpha = fixed::sat_sub(one, c.alpha, config.coeff_fmt);
  // alpha * gamma through DSP #1's rounding.
  const fixed::raw_t gamma = fixed::from_double(config.gamma,
                                                config.coeff_fmt);
  c.alpha_gamma = fixed::mul(c.alpha, config.coeff_fmt, gamma,
                             config.coeff_fmt, config.coeff_fmt);
  c.epsilon = fixed::from_double(config.epsilon, config.coeff_fmt);
  c.one_minus_epsilon = fixed::sat_sub(one, c.epsilon, config.coeff_fmt);
  return c;
}

fixed::raw_t expected_sarsa_target(fixed::raw_t row_max,
                                   fixed::raw_t row_sum,
                                   unsigned action_bits,
                                   const Coefficients& coeff,
                                   fixed::Format q_fmt,
                                   fixed::Format coeff_fmt) {
  const fixed::raw_t mean = fixed::rshift_round(row_sum, action_bits);
  const fixed::raw_t term_max =
      fixed::mul(row_max, q_fmt, coeff.one_minus_epsilon, coeff_fmt, q_fmt);
  const fixed::raw_t term_mean =
      fixed::mul(mean, q_fmt, coeff.epsilon, coeff_fmt, q_fmt);
  return fixed::sat_add(term_max, term_mean, q_fmt);
}

}  // namespace qta::qtaccel

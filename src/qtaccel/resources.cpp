#include "qtaccel/resources.h"

#include "common/bit_math.h"
#include "common/check.h"
#include "device/calibration.h"
#include "qtaccel/action_units.h"
#include "qtaccel/forwarding.h"

namespace qta::qtaccel {

namespace dc = device::cal;

namespace {
void add_tables(hw::ResourceLedger& ledger, const env::Environment& env,
                const PipelineConfig& config, const AddressMap& map,
                const std::string& suffix) {
  const std::uint64_t depth = map.depth();
  if (config.algorithm == Algorithm::kDoubleQ) {
    // Two Q tables; the cross-table read rides a double-pumped port.
    ledger.add_memory({"q_table_a" + suffix, depth, config.q_fmt.width, 2});
    ledger.add_memory({"q_table_b" + suffix, depth, config.q_fmt.width, 2});
  } else {
    ledger.add_memory({"q_table" + suffix, depth, config.q_fmt.width, 2});
  }
  ledger.add_memory({"reward_table" + suffix, depth, config.q_fmt.width, 1});
  if (config.qmax == QmaxMode::kMonotoneTable &&
      config.algorithm != Algorithm::kExpectedSarsa &&
      config.algorithm != Algorithm::kDoubleQ) {
    ledger.add_memory({"qmax_table" + suffix, env.num_states(),
                       config.q_fmt.width + map.action_bits, 2});
  }
}

void add_logic(hw::ResourceLedger& ledger, const env::Environment& env,
               const PipelineConfig& config, const AddressMap& map,
               const std::string& suffix) {
  if (config.algorithm == Algorithm::kExpectedSarsa) {
    // 4 update products + the (1-eps)*max and eps*mean mixers.
    ledger.add_dsp(6, "update datapath + expectation mixers" + suffix);
  } else {
    ledger.add_dsp(4, "update datapath multipliers" + suffix);
  }

  const unsigned addr_bits = map.state_bits + map.action_bits;
  unsigned ff = dc::kDatapathFixedFf;
  ff += dc::kAddrCopiesPerBit * addr_bits;
  ff += RngBank::flip_flops(config.algorithm);
  if (config.hazard == HazardMode::kForward) {
    ff += WritebackQueue::flip_flops(config.q_fmt.width, addr_bits);
  }
  ledger.add_flip_flops(ff, "pipeline + LFSR registers" + suffix);

  unsigned lut = dc::kControlLuts;
  lut += dc::kTransitionLutsPerBit * addr_bits;
  if (config.algorithm != Algorithm::kQLearning) {
    lut += 2 * config.epsilon_bits;  // epsilon comparator + explore mux
  }
  if (config.qmax == QmaxMode::kExactScan ||
      config.algorithm == Algorithm::kExpectedSarsa ||
      config.algorithm == Algorithm::kDoubleQ) {
    // Comparator tree over the row: (|A| - 1) compares of q_fmt.width.
    lut += (env.num_actions() - 1) * config.q_fmt.width;
  }
  if (config.algorithm == Algorithm::kDoubleQ) {
    ledger.add_flip_flops(1, "table-select register" + suffix);
  }
  if (config.algorithm == Algorithm::kExpectedSarsa) {
    // Adder tree for the row sum: (|A| - 1) adds at widening precision.
    lut += (env.num_actions() - 1) *
           (config.q_fmt.width + map.action_bits);
  }
  ledger.add_luts(lut, "control + transition function" + suffix);
}
}  // namespace

hw::ResourceLedger build_resources(const env::Environment& env,
                                   const PipelineConfig& config,
                                   unsigned pipelines, bool share_tables) {
  QTA_CHECK(pipelines >= 1);
  QTA_CHECK_MSG(!share_tables || pipelines <= 2,
                "the shared-table mode supports two pipelines "
                "(double-pumped dual-port BRAM)");
  const AddressMap map = make_address_map(env);
  hw::ResourceLedger ledger;
  const unsigned banks = share_tables ? 1 : pipelines;
  for (unsigned b = 0; b < banks; ++b) {
    add_tables(ledger, env, config, map,
               banks == 1 ? "" : "[bank " + std::to_string(b) + "]");
  }
  for (unsigned p = 0; p < pipelines; ++p) {
    add_logic(ledger, env, config, map,
              pipelines == 1 ? "" : "[pipe " + std::to_string(p) + "]");
  }
  return ledger;
}

hw::ResourceLedger build_resources_with_probability_table(
    const env::Environment& env, const PipelineConfig& config,
    unsigned exp_lut_log2_entries) {
  hw::ResourceLedger ledger = build_resources(env, config);
  const AddressMap map = make_address_map(env);
  ledger.add_memory(
      {"probability_table", map.depth(), config.q_fmt.width, 2});
  ledger.add_memory({"exp_lut", std::uint64_t{1} << exp_lut_log2_entries,
                     config.q_fmt.width, 1});
  // Prefix-sum/binary-search comparators for the selection stage.
  ledger.add_luts(log2_ceil(env.num_actions()) * config.q_fmt.width,
                  "binary-search comparators");
  ledger.add_dsp(1, "probability-scale multiplier");
  return ledger;
}

}  // namespace qta::qtaccel

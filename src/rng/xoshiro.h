// Host-side pseudo-random generators for workload construction (grid-world
// obstacle placement, random MDP generation, CPU baselines). These are NOT
// part of the simulated hardware — the accelerator itself only ever uses
// LFSRs (rng/lfsr.h).
#pragma once

#include <cstdint>

namespace qta::rng {

/// SplitMix64: used to expand a single user seed into independent streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality host RNG.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace qta::rng

// Central-limit-theorem normal generator: the sum of K uniform LFSR draws,
// shifted and scaled. This is the paper's MAB reward sampler (Section
// VII-B: "uniform random numbers can be generated using linear feedback
// shift registers whose output can be summed up to obtain the normal
// distribution") — compact and single-cycle-able on FPGA, unlike Box-Muller
// or discrete-Gaussian CDT samplers.
#pragma once

#include <cstdint>

#include "fixed/fixed_point.h"
#include "rng/lfsr.h"

namespace qta::rng {

class NormalClt {
 public:
  /// K = number of uniform draws summed (12 gives the classic Irwin-Hall
  /// approximation with variance exactly 1); `bits` = bits per draw.
  explicit NormalClt(std::uint64_t seed, unsigned k = 12, unsigned bits = 16);

  /// Approximately N(0, 1).
  double sample_standard();

  /// Approximately N(mean, stddev^2).
  double sample(double mean, double stddev);

  /// Sample quantized into a fixed-point format, as the hardware reward
  /// unit would produce it.
  fixed::raw_t sample_fixed(double mean, double stddev, fixed::Format fmt);

  unsigned k() const { return k_; }

  /// Flip-flop cost: one LFSR register (the adder tree is LUT fabric).
  unsigned flip_flops() const { return lfsr_.flip_flops(); }

 private:
  Lfsr lfsr_;
  unsigned k_;
  unsigned bits_;
  double inv_scale_;
  double center_;
  double norm_;
};

}  // namespace qta::rng

#include "rng/lfsr.h"

#include "common/check.h"

namespace qta::rng {

namespace {
// Maximal-length polynomial exponents per width (Xilinx XAPP052 table):
// polynomial = x^w + x^t1 [+ x^t2 + x^t3] + 1. Index by width.
struct Taps {
  unsigned t[4];  // zero-terminated exponent list (excluding w and 0)
};

constexpr Taps kTaps[65] = {
    {},          {},          {{1, 0}},     {{2, 0}},     {{3, 0}},
    {{3, 0}},    {{5, 0}},    {{6, 0}},     {{6, 5, 4}},  {{5, 0}},
    {{7, 0}},    {{9, 0}},    {{6, 4, 1}},  {{4, 3, 1}},  {{5, 3, 1}},
    {{14, 0}},   {{15, 13, 4}}, {{14, 0}},  {{11, 0}},    {{6, 2, 1}},
    {{17, 0}},   {{19, 0}},   {{21, 0}},    {{18, 0}},    {{23, 22, 17}},
    {{22, 0}},   {{6, 2, 1}}, {{5, 2, 1}},  {{25, 0}},    {{27, 0}},
    {{6, 4, 1}}, {{28, 0}},   {{22, 2, 1}}, {{20, 0}},    {{27, 2, 1}},
    {{33, 0}},   {{25, 0}},   {{5, 4, 3, 2}}, {{6, 5, 1}}, {{35, 0}},
    {{38, 21, 19}}, {{38, 0}}, {{41, 20, 19}}, {{42, 38, 37}}, {{43, 18, 17}},
    {{44, 42, 41}}, {{45, 26, 25}}, {{42, 0}}, {{47, 21, 20}}, {{40, 0}},
    {{49, 24, 23}}, {{50, 36, 35}}, {{49, 0}}, {{52, 38, 37}}, {{53, 18, 17}},
    {{31, 0}},   {{55, 35, 34}}, {{50, 0}}, {{39, 0}},     {{58, 38, 37}},
    {{59, 0}},   {{60, 46, 45}}, {{61, 6, 5}}, {{62, 0}},  {{63, 61, 60}},
};
}  // namespace

std::uint64_t lfsr_taps(unsigned width) {
  QTA_CHECK_MSG(width >= 2 && width <= 64, "LFSR width must be in [2, 64]");
  std::uint64_t mask = 1;  // the "+1" term of the polynomial
  for (unsigned e : kTaps[width].t) {
    if (e == 0) break;
    mask |= std::uint64_t{1} << e;
  }
  return mask;
}

Lfsr::Lfsr(unsigned width, std::uint64_t seed)
    : width_(width),
      mask_(width == 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << width) - 1),
      taps_(lfsr_taps(width)) {
  state_ = seed & mask_;
  if (state_ == 0) state_ = 1;  // all-zero is the absorbing state
}

double Lfsr::uniform() {
  const unsigned bits = width_ < 53 ? width_ : 53;
  const std::uint64_t draw = draw_bits(bits);
  return static_cast<double>(draw) /
         static_cast<double>(std::uint64_t{1} << bits);
}

std::uint64_t Lfsr::period() const {
  if (width_ == 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << width_) - 1;
}

}  // namespace qta::rng

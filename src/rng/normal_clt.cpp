#include "rng/normal_clt.h"

#include <cmath>

#include "common/check.h"

namespace qta::rng {

NormalClt::NormalClt(std::uint64_t seed, unsigned k, unsigned bits)
    : lfsr_(32, seed), k_(k), bits_(bits) {
  QTA_CHECK_MSG(k >= 2 && k <= 64, "CLT sum length must be in [2, 64]");
  QTA_CHECK(bits >= 4 && bits <= 32);
  inv_scale_ = 1.0 / static_cast<double>(std::uint64_t{1} << bits);
  // Sum of k U(0,1) has mean k/2 and variance k/12.
  center_ = static_cast<double>(k) / 2.0;
  norm_ = 1.0 / std::sqrt(static_cast<double>(k) / 12.0);
}

double NormalClt::sample_standard() {
  double sum = 0.0;
  for (unsigned i = 0; i < k_; ++i) {
    sum += static_cast<double>(lfsr_.draw_bits(bits_)) * inv_scale_;
  }
  return (sum - center_) * norm_;
}

double NormalClt::sample(double mean, double stddev) {
  QTA_CHECK(stddev >= 0.0);
  return mean + stddev * sample_standard();
}

fixed::raw_t NormalClt::sample_fixed(double mean, double stddev,
                                     fixed::Format fmt) {
  return fixed::from_double(sample(mean, stddev), fmt);
}

}  // namespace qta::rng

// Linear-feedback shift registers — the paper's random number source for
// action selection and MAB reward sampling ("implemented using linear
// feedback shift registers", Section IV-A).
//
// Galois form (one XOR level per shifted bit, the cheap FPGA realization)
// with published maximal-length tap polynomials for widths 8..64 bits.
// Each consumer in the pipeline owns its own LFSR instance so the stream
// seen per purpose is independent of pipeline interleaving — this is what
// makes the pipelined accelerator bit-identical to the sequential golden
// model (see qtaccel/golden_model.h).
#pragma once

#include <cstdint>

#include "common/check.h"

namespace qta::rng {

/// Maximal-length Galois LFSR of configurable width (2..64 bits).
class Lfsr {
 public:
  /// `width` selects the tap polynomial; `seed` is folded into the state
  /// (a zero fold is replaced by 1, since the all-zero state is absorbing).
  explicit Lfsr(unsigned width = 32, std::uint64_t seed = 0xace1u);

  /// Advances one step and returns the full register state.
  /// Inline: this is the innermost operation of every random draw in the
  /// simulator's hot loops (one call per output bit).
  std::uint64_t step() {
    // Galois left-shift form: the bit leaving at the MSB re-enters through
    // the polynomial taps.
    const std::uint64_t out = (state_ >> (width_ - 1)) & 1u;
    state_ = ((state_ << 1) & mask_) ^ (out ? taps_ : 0u);
    return state_;
  }

  /// Draws `n` (1..64) pseudo-random bits from the output stream: one
  /// register step per bit (the hardware unrolls the feedback n times in
  /// combinational logic to produce n bits per cycle). Bit-serial
  /// collection keeps successive draws decorrelated, which whole-register
  /// snapshots would not.
  std::uint64_t draw_bits(unsigned n) {
    QTA_CHECK(n >= 1 && n <= 64);
    // Bit-serial collection of the output stream (the MSB shifted out each
    // step). Taking whole register snapshots instead would make successive
    // draws overlap in all but one bit and badly correlate them.
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < n; ++i) {
      const std::uint64_t out = (state_ >> (width_ - 1)) & 1u;
      acc |= out << i;
      step();
    }
    return acc;
  }

  /// Uniform value in [0, bound) via the fixed-point multiply trick
  /// (one DSP): (draw * bound) >> width. Slight bias of bound/2^width,
  /// identical to the hardware shortcut the paper describes for indexing
  /// "one of the Q-values" directly.
  std::uint64_t below(std::uint64_t bound) {
    QTA_CHECK(bound >= 1);
    if (bound == 1) return 0;
    __extension__ typedef unsigned __int128 u128;
    const std::uint64_t draw = draw_bits(32);
    return static_cast<std::uint64_t>((static_cast<u128>(draw) * bound) >>
                                      32);
  }

  /// Uniform double in [0, 1) using width bits (capped at 53).
  double uniform();

  std::uint64_t state() const { return state_; }

  /// Restores a previously observed register state (snapshot resume).
  /// The state must be a value this register can actually hold: nonzero
  /// (the all-zero state is absorbing) and within the register width.
  void set_state(std::uint64_t state) {
    QTA_CHECK_MSG(state != 0 && (state & mask_) == state,
                  "LFSR state outside the register's reachable set");
    state_ = state;
  }

  unsigned width() const { return width_; }

  /// Flip-flop cost of this register, for the resource ledger.
  unsigned flip_flops() const { return width_; }

  /// Period of a maximal-length LFSR of this width: 2^width - 1.
  std::uint64_t period() const;

 private:
  unsigned width_;
  std::uint64_t mask_;
  std::uint64_t taps_;
  std::uint64_t state_;
};

/// The tap polynomial (bit mask) used for a given width; exposed for tests
/// that verify maximal periods.
std::uint64_t lfsr_taps(unsigned width);

}  // namespace qta::rng

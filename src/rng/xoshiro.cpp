#include "rng/xoshiro.h"

#include <bit>

#include "common/check.h"

namespace qta::rng {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  QTA_CHECK(bound >= 1);
  // Lemire's nearly-divisionless method.
  __extension__ typedef unsigned __int128 u128;
  u128 m = static_cast<u128>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<u128>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

bool Xoshiro256::bernoulli(double p) { return uniform() < p; }

}  // namespace qta::rng

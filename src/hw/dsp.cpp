#include "hw/dsp.h"

namespace qta::hw {

DspMultiplier::DspMultiplier(std::string name, fixed::Format a_fmt,
                             fixed::Format b_fmt, fixed::Format out_fmt)
    : name_(std::move(name)), a_fmt_(a_fmt), b_fmt_(b_fmt),
      out_fmt_(out_fmt) {
  fixed::validate(a_fmt_);
  fixed::validate(b_fmt_);
  fixed::validate(out_fmt_);
}

void DspMultiplier::register_resources(ResourceLedger& ledger) const {
  ledger.add_dsp(1, name_);
}

fixed::raw_t DspMultiplier::multiply(fixed::raw_t a, fixed::raw_t b) {
  ++invocations_;
  bool sat = false;
  const fixed::raw_t out = fixed::mul(a, a_fmt_, b, b_fmt_, out_fmt_, &sat);
  if (sat) ++saturations_;
  return out;
}

}  // namespace qta::hw

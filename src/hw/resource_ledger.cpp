#include "hw/resource_ledger.h"

#include "common/check.h"

namespace qta::hw {

void ResourceLedger::add_memory(MemoryReq req) {
  QTA_CHECK(req.depth > 0 && req.width > 0);
  QTA_CHECK(req.ports >= 1 && req.ports <= 2);
  notes_.push_back("memory '" + req.name + "': " +
                   std::to_string(req.depth) + " x " +
                   std::to_string(req.width) + "b, " +
                   std::to_string(req.ports) + " port(s)");
  memories_.push_back(std::move(req));
}

void ResourceLedger::add_dsp(unsigned count, const std::string& what) {
  dsp_ += count;
  notes_.push_back(std::to_string(count) + " x DSP (" + what + ")");
}

void ResourceLedger::add_flip_flops(unsigned count, const std::string& what) {
  ff_ += count;
  notes_.push_back(std::to_string(count) + " x FF (" + what + ")");
}

void ResourceLedger::add_luts(unsigned count, const std::string& what) {
  lut_ += count;
  notes_.push_back(std::to_string(count) + " x LUT (" + what + ")");
}

std::uint64_t ResourceLedger::memory_bits() const {
  std::uint64_t total = 0;
  for (const auto& m : memories_) total += m.bits();
  return total;
}

void ResourceLedger::merge(const ResourceLedger& other) {
  for (const auto& m : other.memories_) memories_.push_back(m);
  dsp_ += other.dsp_;
  ff_ += other.ff_;
  lut_ += other.lut_;
  for (const auto& n : other.notes_) notes_.push_back(n);
}

}  // namespace qta::hw

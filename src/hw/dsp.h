// DSP-slice multiplier model. Each instance is one hardware multiplier
// (one DSP48-class slice in the device model); the simulated datapath
// funnels every product through one of these so the "4 multipliers total"
// property of QTAccel is enforced structurally, not by convention.
#pragma once

#include <cstdint>
#include <string>

#include "fixed/fixed_point.h"
#include "hw/resource_ledger.h"

namespace qta::hw {

class DspMultiplier {
 public:
  /// `a_fmt` x `b_fmt` -> `out_fmt`, fixed wiring like a real instance.
  DspMultiplier(std::string name, fixed::Format a_fmt, fixed::Format b_fmt,
                fixed::Format out_fmt);

  void register_resources(ResourceLedger& ledger) const;

  /// One multiply. Counts invocations and saturation events.
  fixed::raw_t multiply(fixed::raw_t a, fixed::raw_t b);

  std::uint64_t invocations() const { return invocations_; }
  std::uint64_t saturations() const { return saturations_; }

  /// Restores the event counters when resuming from a machine-state
  /// snapshot, so counter readback continues as if the run never paused.
  void restore_counters(std::uint64_t invocations,
                        std::uint64_t saturations) {
    invocations_ = invocations;
    saturations_ = saturations;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  fixed::Format a_fmt_;
  fixed::Format b_fmt_;
  fixed::Format out_fmt_;
  std::uint64_t invocations_ = 0;
  std::uint64_t saturations_ = 0;
};

}  // namespace qta::hw

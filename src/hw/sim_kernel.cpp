#include "hw/sim_kernel.h"

#include "common/check.h"

namespace qta::hw {

void SimKernel::attach(Clocked* component) {
  QTA_CHECK(component != nullptr);
  components_.push_back(component);
}

void SimKernel::begin_cycle() {
  for (Clocked* c : components_) c->begin_cycle();
}

void SimKernel::clock_edge() {
  for (Clocked* c : components_) c->clock_edge();
  ++now_;
}

}  // namespace qta::hw

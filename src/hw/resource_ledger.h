// Resource accounting. Hardware components (BRAMs, DSP multipliers, LFSRs,
// pipeline registers) register what they would consume on a real device;
// the device model (src/device) later maps these raw requirements onto a
// specific FPGA's block inventory to produce utilization percentages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qta::hw {

/// A memory requirement: `depth` words of `width` bits, with `ports`
/// simultaneous access ports (1 or 2 on real BRAM).
struct MemoryReq {
  std::string name;
  std::uint64_t depth = 0;
  unsigned width = 0;
  unsigned ports = 2;

  std::uint64_t bits() const { return depth * width; }
};

/// Raw (device-independent) resource requirements of a design.
class ResourceLedger {
 public:
  void add_memory(MemoryReq req);
  /// `count` hardware multipliers (each one DSP slice in the device model).
  void add_dsp(unsigned count, const std::string& what);
  void add_flip_flops(unsigned count, const std::string& what);
  void add_luts(unsigned count, const std::string& what);

  const std::vector<MemoryReq>& memories() const { return memories_; }
  unsigned dsp() const { return dsp_; }
  unsigned flip_flops() const { return ff_; }
  unsigned luts() const { return lut_; }

  /// Total memory bits across all registered memories.
  std::uint64_t memory_bits() const;

  /// Itemized breakdown lines for reports ("4 x DSP (stage-3 multipliers)").
  const std::vector<std::string>& notes() const { return notes_; }

  /// Merges another ledger (used when composing multi-pipeline designs).
  void merge(const ResourceLedger& other);

 private:
  std::vector<MemoryReq> memories_;
  unsigned dsp_ = 0;
  unsigned ff_ = 0;
  unsigned lut_ = 0;
  std::vector<std::string> notes_;
};

}  // namespace qta::hw

#include "hw/bram.h"

#include <algorithm>

#include "common/check.h"

namespace qta::hw {

Bram::Bram(std::string name, std::uint64_t depth, unsigned width,
           unsigned ports, PortConflictPolicy policy)
    : name_(std::move(name)),
      depth_(depth),
      width_(width),
      ports_(ports),
      policy_(policy),
      data_(depth, 0),
      port_used_(ports, false) {
  QTA_CHECK(depth > 0);
  QTA_CHECK(width >= 1 && width <= 64);
  // Real BRAM is dual-port; 3-4 ports model a double-pumped BRAM (2x
  // memory clock), which is how the shared-table dual-pipeline mode of
  // Section VII-A keeps two full-rate agents on one Q-table.
  QTA_CHECK_MSG(ports >= 1 && ports <= 4,
                "at most 4 ports (double-pumped dual-port BRAM)");
}

void Bram::register_resources(ResourceLedger& ledger) const {
  ledger.add_memory({name_, depth_, width_, ports_});
}

void Bram::claim_port(unsigned port) {
  QTA_CHECK_MSG(port < ports_, "port index out of range");
  if (port_used_[port]) {
    ++stats_.port_conflicts;
    QTA_CHECK_MSG(policy_ == PortConflictPolicy::kCount,
                  "BRAM port used twice in one cycle");
  }
  port_used_[port] = true;
}

fixed::raw_t Bram::read(unsigned port, std::uint64_t addr) {
  QTA_CHECK_MSG(addr < depth_, "BRAM read address out of range");
  claim_port(port);
  ++stats_.reads;
  return data_[addr];
}

void Bram::write(unsigned port, std::uint64_t addr, fixed::raw_t data) {
  QTA_CHECK_MSG(addr < depth_, "BRAM write address out of range");
  claim_port(port);
  ++stats_.writes;
  pending_.push_back({port, addr, data});
}

void Bram::preset(std::uint64_t addr, fixed::raw_t data) {
  QTA_CHECK(addr < depth_);
  data_[addr] = data;
}

void Bram::fill(fixed::raw_t data) {
  std::fill(data_.begin(), data_.end(), data);
}

fixed::raw_t Bram::peek(std::uint64_t addr) const {
  QTA_CHECK(addr < depth_);
  return data_[addr];
}

void Bram::begin_cycle() {
  std::fill(port_used_.begin(), port_used_.end(), false);
}

void Bram::clock_edge() {
  // Detect same-address collisions between distinct ports, then commit in
  // port order so the higher port "arbitrarily overwrites" the lower one.
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    for (std::size_t j = i + 1; j < pending_.size(); ++j) {
      if (pending_[i].addr == pending_[j].addr &&
          pending_[i].port != pending_[j].port) {
        ++stats_.write_collisions;
      }
    }
  }
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const PendingWrite& a, const PendingWrite& b) {
                     return a.port < b.port;
                   });
  for (const auto& w : pending_) data_[w.addr] = w.data;
  pending_.clear();
}

}  // namespace qta::hw

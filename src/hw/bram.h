// Dual-port block-RAM model with per-cycle port accounting.
//
// Semantics match a read-first true-dual-port BRAM:
//   - a read issued during a cycle returns the committed (pre-edge) word;
//   - writes queue and commit at the clock edge;
//   - each port supports exactly one operation per cycle.
// Oversubscribing a port is a design bug and aborts by default — this is
// how the simulator enforces the paper's port budget (Q-table: stage-1
// read + stage-4 write; Qmax: stage-2 read + stage-4 write).
//
// For the shared-Q-table dual-pipeline mode (Section VII-A), same-cycle
// writes to the same address from different ports are a *collision*: the
// paper says "one pipeline arbitrarily overwrites the other". The model
// applies writes in port order (the higher port wins) and counts the event.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fixed/fixed_point.h"
#include "hw/resource_ledger.h"
#include "hw/sim_kernel.h"

namespace qta::hw {

/// What to do when a port is used more than once in a cycle.
enum class PortConflictPolicy {
  kAbort,  // design bug: fail fast (default)
  kCount,  // count and proceed (used by ablation/diagnostic runs)
};

class Bram : public Clocked {
 public:
  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t port_conflicts = 0;
    std::uint64_t write_collisions = 0;  // same-addr same-cycle, two ports
  };

  Bram(std::string name, std::uint64_t depth, unsigned width,
       unsigned ports = 2,
       PortConflictPolicy policy = PortConflictPolicy::kAbort);

  /// Registers this memory's requirement into a ledger.
  void register_resources(ResourceLedger& ledger) const;

  /// Synchronous read on `port`: returns the committed word at `addr`.
  fixed::raw_t read(unsigned port, std::uint64_t addr);

  /// Queues a write on `port`; commits at the next clock edge.
  void write(unsigned port, std::uint64_t addr, fixed::raw_t data);

  /// Initialization / debug access without port accounting.
  void preset(std::uint64_t addr, fixed::raw_t data);
  void fill(fixed::raw_t data);
  fixed::raw_t peek(std::uint64_t addr) const;

  void begin_cycle() override;
  void clock_edge() override;

  std::uint64_t depth() const { return depth_; }
  unsigned width() const { return width_; }
  unsigned ports() const { return ports_; }
  const std::string& name() const { return name_; }
  const Stats& stats() const { return stats_; }

 private:
  void claim_port(unsigned port);

  std::string name_;
  std::uint64_t depth_;
  unsigned width_;
  unsigned ports_;
  PortConflictPolicy policy_;
  std::vector<fixed::raw_t> data_;

  struct PendingWrite {
    unsigned port;
    std::uint64_t addr;
    fixed::raw_t data;
  };
  std::vector<PendingWrite> pending_;
  std::vector<bool> port_used_;
  Stats stats_;
};

}  // namespace qta::hw

// Two-phase clocked simulation kernel.
//
// Every cycle has an evaluation phase (combinational logic runs, memories
// are issued reads/writes, registers compute their next values) followed by
// a clock edge (registered state commits atomically). Components implement
// the Clocked interface and attach to a SimKernel; the pipeline model in
// qtaccel/pipeline.cpp drives evaluation explicitly and lets the kernel
// commit state and advance time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace qta::hw {

/// Anything with per-cycle committed state.
class Clocked {
 public:
  virtual ~Clocked() = default;

  /// Called at the start of each cycle, before combinational evaluation.
  /// Typical use: clear per-cycle port-usage bookkeeping.
  virtual void begin_cycle() {}

  /// Called at the clock edge: commit all state computed this cycle.
  virtual void clock_edge() = 0;
};

/// Owns the cycle counter and the set of clocked components.
class SimKernel {
 public:
  /// Attaches a component; the kernel does not take ownership. Components
  /// must outlive the kernel's last tick.
  void attach(Clocked* component);

  /// Starts a new cycle: begin_cycle() on every component.
  void begin_cycle();

  /// Ends the current cycle: clock_edge() on every component, advances time.
  void clock_edge();

  Cycle now() const { return now_; }

  /// Resets time to zero (components are responsible for their own state).
  void reset_time() { now_ = 0; }

 private:
  std::vector<Clocked*> components_;
  Cycle now_ = 0;
};

/// A register holding a value of type T with two-phase update semantics:
/// reads during evaluation see the committed value; set_next() stages the
/// value that becomes visible after the clock edge.
template <typename T>
class Reg : public Clocked {
 public:
  explicit Reg(T initial = T{}) : value_(initial), next_(initial) {}

  const T& get() const { return value_; }
  void set_next(const T& v) { next_ = v; }

  /// Immediate overwrite of both current and next (reset use only).
  void force(const T& v) {
    value_ = v;
    next_ = v;
  }

  void clock_edge() override { value_ = next_; }

 private:
  T value_;
  T next_;
};

}  // namespace qta::hw

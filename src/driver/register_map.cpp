#include "driver/register_map.h"

#include "common/check.h"

namespace qta::driver {

std::uint32_t pack_coefficient(double value) {
  QTA_CHECK_MSG(value >= 0.0 && value <= 1.0,
                "coefficient CSR fields hold [0, 1]");
  return static_cast<std::uint32_t>(
      fixed::from_double(value, fixed::kCoeffFormat));
}

double unpack_coefficient(std::uint32_t word) {
  // Low 18 bits, non-negative by the pack contract.
  const auto raw = static_cast<fixed::raw_t>(word & 0x3FFFFu);
  return fixed::to_double(raw, fixed::kCoeffFormat);
}

bool is_valid_register(std::uint32_t offset) {
  return offset % 4 == 0 &&
         offset <= static_cast<std::uint32_t>(Reg::kBackend);
}

bool is_writable_register(std::uint32_t offset) {
  if (!is_valid_register(offset)) return false;
  switch (static_cast<Reg>(offset)) {
    case Reg::kId:
    case Reg::kVersion:
    case Reg::kStatus:
    case Reg::kSampleCountLo:
    case Reg::kSampleCountHi:
    case Reg::kEpisodeCountLo:
    case Reg::kEpisodeCountHi:
    case Reg::kCycleCountLo:
    case Reg::kCycleCountHi:
    case Reg::kTableData:
    case Reg::kQmaxData:
    case Reg::kBubbleCount:
    case Reg::kStallCount:
    case Reg::kFwdQsaCount:
    case Reg::kFwdQnextCount:
    case Reg::kFwdQmaxCount:
    case Reg::kSaturationCount:
      return false;
    default:
      return true;
  }
}

}  // namespace qta::driver

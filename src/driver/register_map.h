// Control/status register map of the QTAccel IP block.
//
// The real accelerator is driven over a 32-bit CSR bus (AXI4-Lite class):
// the host writes the learning configuration, pulses START, polls BUSY,
// and reads back sample/episode/cycle counters; Q-table readback goes
// through an address/data window pair. This header is the single source
// of truth for offsets and field packing, shared by the device model and
// any host software.
#pragma once

#include <cstdint>

#include "fixed/fixed_point.h"

namespace qta::driver {

/// Register offsets (byte addresses, 32-bit registers).
enum class Reg : std::uint32_t {
  kId = 0x00,           // RO: magic "QTA1"
  kVersion = 0x04,      // RO: (major << 16) | minor
  kCtrl = 0x08,         // WO: bit0 START, bit1 RESET
  kStatus = 0x0C,       // RO: bit0 BUSY, bit1 DONE, bit2 CFG_ERROR
  kAlgorithm = 0x10,    // RW: 0 = Q-Learning, 1 = SARSA,
                        //     2 = Expected SARSA, 3 = Double Q-Learning
  kAlpha = 0x14,        // RW: learning rate, s1.16 raw in low 18 bits
  kGamma = 0x18,        // RW: discount factor, s1.16 raw
  kEpsilonThresh = 0x1C,  // RW: (1-eps)*2^16 compare threshold
  kSeedLo = 0x20,       // RW
  kSeedHi = 0x24,       // RW
  kMaxEpisodeLen = 0x28,  // RW
  kSamplesTargetLo = 0x2C,  // RW
  kSamplesTargetHi = 0x30,  // RW
  kSampleCountLo = 0x34,  // RO
  kSampleCountHi = 0x38,  // RO
  kEpisodeCountLo = 0x3C,  // RO
  kEpisodeCountHi = 0x40,  // RO
  kCycleCountLo = 0x44,  // RO
  kCycleCountHi = 0x48,  // RO
  kTableAddr = 0x4C,    // RW: {state, action} bit-concatenated address
  kTableData = 0x50,    // RO: sign-extended Q word at kTableAddr
  kQmaxData = 0x54,     // RO: packed Qmax entry at kTableAddr's state
  // Performance counters (RO): pipeline health telemetry.
  kBubbleCount = 0x58,  // episode-start redraw bubbles
  kStallCount = 0x5C,   // stall cycles (0 in the forwarding design)
  kFwdQsaCount = 0x60,  // Q(S,A) values served by forwarding
  kFwdQnextCount = 0x64,  // Q(S',A') values served by forwarding
  kFwdQmaxCount = 0x68,   // Qmax entries raised by in-flight write-backs
  kSaturationCount = 0x6C,  // DSP + adder saturation events
  kBackend = 0x70,      // RW: 0 = cycle-accurate, 1 = fast functional
};

inline constexpr std::uint32_t kMagic = 0x51544131;  // "QTA1"
inline constexpr std::uint32_t kVersionWord = (1u << 16) | 0u;  // v1.0

// CTRL bits.
inline constexpr std::uint32_t kCtrlStart = 1u << 0;
inline constexpr std::uint32_t kCtrlReset = 1u << 1;

// STATUS bits.
inline constexpr std::uint32_t kStatusBusy = 1u << 0;
inline constexpr std::uint32_t kStatusDone = 1u << 1;
inline constexpr std::uint32_t kStatusCfgError = 1u << 2;

/// Packs a coefficient in [0, 1] into the s1.16 CSR field.
std::uint32_t pack_coefficient(double value);

/// Unpacks an s1.16 CSR field back to a double.
double unpack_coefficient(std::uint32_t word);

/// True if the offset is a known register.
bool is_valid_register(std::uint32_t offset);

/// True if host writes to the offset are allowed (RW/WO registers).
bool is_writable_register(std::uint32_t offset);

}  // namespace qta::driver

// Functional model of the QTAccel IP block behind its CSR interface, plus
// the host-side driver facade a downstream application links against.
//
// The device is constructed around an Environment (the application-
// specific transition function and reward map that would be baked into
// the bitstream). The host then:
//   1. writes the learning configuration registers,
//   2. pulses CTRL.START (latched into a fresh pipeline; config errors
//      set STATUS.CFG_ERROR instead of starting),
//   3. advances the clock — advance(n) ticks the cycle-accurate pipeline
//      n times; STATUS.BUSY holds until the sample target retires,
//   4. reads counters and Q/Qmax words back through the table window.
//
// Config writes while BUSY are rejected (and flagged) exactly as the RTL
// would reject them.
#pragma once

#include <cstdint>
#include <memory>

#include "driver/register_map.h"
#include "env/environment.h"
#include "qtaccel/pipeline.h"

namespace qta::driver {

class QtAccelDevice {
 public:
  explicit QtAccelDevice(const env::Environment& env);

  /// CSR bus. Invalid offsets abort (bus error); config writes while
  /// busy are dropped and latch STATUS.CFG_ERROR.
  void write_csr(std::uint32_t offset, std::uint32_t value);
  std::uint32_t read_csr(std::uint32_t offset) const;

  /// Advances the device clock by `cycles`. No-op when idle.
  void advance(std::uint64_t cycles);

  bool busy() const;
  bool done() const;

  /// Direct (debug/DMA) table access mirroring the CSR window.
  double q_value(StateId s, ActionId a) const;

  /// The pipeline behind the CSRs (null until the first START). Exposed
  /// for verification against the golden model.
  const qtaccel::Pipeline* pipeline() const { return pipeline_.get(); }

 private:
  void start();
  void reset();

  const env::Environment& env_;
  qtaccel::AddressMap map_;

  // Shadow configuration registers.
  std::uint32_t algorithm_ = 0;
  std::uint32_t alpha_ = pack_coefficient(0.1);
  std::uint32_t gamma_ = pack_coefficient(0.9);
  std::uint32_t epsilon_thresh_ = 0xE666;  // (1 - 0.1) * 2^16
  std::uint32_t seed_lo_ = 1, seed_hi_ = 0;
  std::uint32_t max_episode_len_ = 1u << 20;
  std::uint32_t samples_target_lo_ = 0, samples_target_hi_ = 0;
  std::uint32_t table_addr_ = 0;

  bool busy_ = false;
  bool done_ = false;
  bool cfg_error_ = false;

  std::unique_ptr<qtaccel::Pipeline> pipeline_;
  std::uint64_t samples_target_ = 0;
};

}  // namespace qta::driver

// Functional model of the QTAccel IP block behind its CSR interface, plus
// the host-side driver facade a downstream application links against.
//
// The device is constructed around an Environment (the application-
// specific transition function and reward map that would be baked into
// the bitstream). The host then:
//   1. writes the learning configuration registers (including BACKEND:
//      0 selects the cycle-accurate pipeline, 1 the fast functional
//      engine — same retired behaviour, no per-cycle observability),
//   2. pulses CTRL.START (latched into a fresh engine; config errors
//      set STATUS.CFG_ERROR instead of starting),
//   3. advances the clock — advance(n) ticks the cycle-accurate pipeline
//      n times, or batch-runs the fast engine to the sample target in a
//      single advance call; STATUS.BUSY holds until the target retires,
//   4. reads counters and Q/Qmax words back through the table window.
//
// Config writes while BUSY are rejected (and flagged) exactly as the RTL
// would reject them.
//
// The device also exposes the machine-snapshot path (the DMA window of
// the real part): save_snapshot quiesces the engine and streams a
// QTACCEL-SNAPSHOT image (v2 text by default, v3 binary on request);
// load_snapshot is START-with-state — it builds an engine from the
// current CSRs and restores the image into it (either format, sniffed),
// resuming bit-exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "driver/register_map.h"
#include "env/environment.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"  // SnapshotFormat

namespace qta::driver {

class QtAccelDevice {
 public:
  explicit QtAccelDevice(const env::Environment& env);
  ~QtAccelDevice();

  /// CSR bus. Invalid offsets abort (bus error); config writes while
  /// busy are dropped and latch STATUS.CFG_ERROR.
  void write_csr(std::uint32_t offset, std::uint32_t value);
  std::uint32_t read_csr(std::uint32_t offset) const;

  /// Advances the device clock by `cycles`. No-op when idle. On the
  /// fast backend any nonzero advance retires the whole sample target
  /// (the functional model has no per-cycle clock to tick).
  void advance(std::uint64_t cycles);

  bool busy() const;
  bool done() const;

  /// Direct (debug/DMA) table access mirroring the CSR window.
  double q_value(StateId s, ActionId a) const;

  /// The runtime engine behind the CSRs (null until the first START).
  /// Exposed for verification against the golden model.
  const runtime::Engine* engine() const { return engine_.get(); }

  /// The cycle-accurate pipeline behind the CSRs, or nullptr when no
  /// engine is running or the fast backend is selected — probe, don't
  /// assume (engine()->caps() says what the backend can do).
  const qtaccel::Pipeline* cycle_pipeline() const {
    return engine_ ? engine_->cycle_pipeline() : nullptr;
  }

  /// Snapshot path (models the DMA window). save_snapshot quiesces the
  /// machine (drains in-flight work without issuing new samples) and
  /// writes a QTACCEL-SNAPSHOT image in `format` (v2 text by default,
  /// v3 binary for compact DMA captures; runtime/snapshot.h); aborts if
  /// no engine has been started. BUSY/DONE are unchanged — a quiesced
  /// engine resumes on the next advance.
  void save_snapshot(std::ostream& os,
                     runtime::SnapshotFormat format =
                         runtime::SnapshotFormat::kV2Text);
  /// START-with-state: builds an engine from the current CSR config
  /// (validity-checked exactly like START) and restores the snapshot
  /// into it (v2 or v3, sniffed from the stream). BUSY/DONE reflect the
  /// restored sample count against the current sample target.
  void load_snapshot(std::istream& is);

 private:
  void start();
  void reset();
  void quiesce();

  const env::Environment& env_;
  qtaccel::AddressMap map_;

  // Shadow configuration registers.
  std::uint32_t algorithm_ = 0;
  std::uint32_t alpha_ = pack_coefficient(0.1);
  std::uint32_t gamma_ = pack_coefficient(0.9);
  std::uint32_t epsilon_thresh_ = 0xE666;  // (1 - 0.1) * 2^16
  std::uint32_t seed_lo_ = 1, seed_hi_ = 0;
  std::uint32_t max_episode_len_ = 1u << 20;
  std::uint32_t samples_target_lo_ = 0, samples_target_hi_ = 0;
  std::uint32_t table_addr_ = 0;
  std::uint32_t backend_ = 0;  // 0 = cycle-accurate, 1 = fast

  bool busy_ = false;
  bool done_ = false;
  bool cfg_error_ = false;

  std::unique_ptr<runtime::Engine> engine_;
  std::uint64_t samples_target_ = 0;
};

}  // namespace qta::driver

#include "driver/qtaccel_device.h"

#include "common/check.h"
#include "runtime/snapshot.h"

namespace qta::driver {

QtAccelDevice::QtAccelDevice(const env::Environment& env)
    : env_(env), map_(qtaccel::make_address_map(env)) {}

QtAccelDevice::~QtAccelDevice() = default;

bool QtAccelDevice::busy() const { return busy_; }
bool QtAccelDevice::done() const { return done_; }

void QtAccelDevice::start() {
  qtaccel::PipelineConfig c;
  switch (algorithm_) {
    case 0: c.algorithm = qtaccel::Algorithm::kQLearning; break;
    case 1: c.algorithm = qtaccel::Algorithm::kSarsa; break;
    case 2: c.algorithm = qtaccel::Algorithm::kExpectedSarsa; break;
    case 3: c.algorithm = qtaccel::Algorithm::kDoubleQ; break;
    default: break;  // caught by the validity check below
  }
  c.backend = backend_ == 1 ? qtaccel::Backend::kFast
                            : qtaccel::Backend::kCycleAccurate;
  c.alpha = unpack_coefficient(alpha_);
  c.gamma = unpack_coefficient(gamma_);
  c.epsilon_bits = 16;
  c.epsilon =
      1.0 - static_cast<double>(epsilon_thresh_) / 65536.0;
  c.seed = (static_cast<std::uint64_t>(seed_hi_) << 32) | seed_lo_;
  c.max_episode_length = max_episode_len_;
  samples_target_ =
      (static_cast<std::uint64_t>(samples_target_hi_) << 32) |
      samples_target_lo_;

  // Soft validation: a bad configuration raises CFG_ERROR instead of
  // starting (the RTL equivalent of a config sanity checker).
  const bool valid = algorithm_ <= 3 && backend_ <= 1 &&
                     c.alpha > 0.0 && c.alpha <= 1.0 &&
                     c.gamma >= 0.0 && c.gamma < 1.0 &&
                     epsilon_thresh_ <= 65536 && c.epsilon >= 0.0 &&
                     c.epsilon <= 1.0 && max_episode_len_ >= 1 &&
                     samples_target_ > 0;
  if (!valid) {
    cfg_error_ = true;
    return;
  }
  cfg_error_ = false;
  done_ = false;
  engine_ = std::make_unique<runtime::Engine>(env_, c);
  busy_ = true;
}

void QtAccelDevice::reset() {
  engine_.reset();
  busy_ = false;
  done_ = false;
  cfg_error_ = false;
}

void QtAccelDevice::quiesce() {
  qtaccel::Pipeline* pipe = engine_ ? engine_->cycle_pipeline() : nullptr;
  if (pipe == nullptr) return;  // fast backend is always drained
  while (pipe->in_flight()) pipe->tick(false);
}

void QtAccelDevice::advance(std::uint64_t cycles) {
  if (!busy_ || !engine_) return;
  qtaccel::Pipeline* pipe = engine_->cycle_pipeline();
  if (pipe == nullptr) {
    // Fast backend: no per-cycle clock exists; any nonzero advance
    // retires the remaining sample budget in one batch.
    if (cycles == 0) return;
    engine_->run_samples(samples_target_);
    busy_ = false;
    done_ = true;
    return;
  }
  for (std::uint64_t i = 0; i < cycles && busy_; ++i) {
    const bool want_more = pipe->stats().samples < samples_target_;
    pipe->tick(want_more);
    if (pipe->stats().samples >= samples_target_ && !pipe->in_flight()) {
      busy_ = false;
      done_ = true;
    }
  }
}

void QtAccelDevice::save_snapshot(std::ostream& os,
                                  runtime::SnapshotFormat format) {
  QTA_CHECK_MSG(engine_ != nullptr,
                "snapshot DMA with no engine started");
  quiesce();
  if (format == runtime::SnapshotFormat::kV3Binary) {
    runtime::save_snapshot_v3(*engine_, os);
  } else {
    runtime::save_snapshot(*engine_, os);
  }
}

void QtAccelDevice::load_snapshot(std::istream& is) {
  start();  // builds the engine from the current CSR config
  QTA_CHECK_MSG(!cfg_error_ && engine_ != nullptr,
                "snapshot DMA rejected: invalid CSR configuration");
  runtime::load_snapshot(*engine_, is);
  if (engine_->stats().samples >= samples_target_) {
    busy_ = false;
    done_ = true;
  }
}

void QtAccelDevice::write_csr(std::uint32_t offset, std::uint32_t value) {
  QTA_CHECK_MSG(is_valid_register(offset), "CSR bus error: bad offset");
  const auto reg = static_cast<Reg>(offset);
  if (reg == Reg::kCtrl) {
    if (value & kCtrlReset) reset();
    if (value & kCtrlStart) {
      if (busy_) {
        cfg_error_ = true;  // start while busy: rejected
      } else {
        start();
      }
    }
    return;
  }
  QTA_CHECK_MSG(is_writable_register(offset),
                "CSR bus error: write to a read-only register");
  if (busy_ && reg != Reg::kTableAddr) {
    cfg_error_ = true;  // config writes are locked out while running
    return;
  }
  switch (reg) {
    case Reg::kAlgorithm: algorithm_ = value; break;
    case Reg::kAlpha: alpha_ = value; break;
    case Reg::kGamma: gamma_ = value; break;
    case Reg::kEpsilonThresh: epsilon_thresh_ = value; break;
    case Reg::kSeedLo: seed_lo_ = value; break;
    case Reg::kSeedHi: seed_hi_ = value; break;
    case Reg::kMaxEpisodeLen: max_episode_len_ = value; break;
    case Reg::kSamplesTargetLo: samples_target_lo_ = value; break;
    case Reg::kSamplesTargetHi: samples_target_hi_ = value; break;
    case Reg::kBackend: backend_ = value; break;
    case Reg::kTableAddr:
      table_addr_ =
          value & static_cast<std::uint32_t>(map_.depth() - 1);
      break;
    default:
      QTA_CHECK_MSG(false, "unhandled writable register");
  }
}

std::uint32_t QtAccelDevice::read_csr(std::uint32_t offset) const {
  QTA_CHECK_MSG(is_valid_register(offset), "CSR bus error: bad offset");
  auto lo32 = [](std::uint64_t v) {
    return static_cast<std::uint32_t>(v & 0xFFFFFFFFu);
  };
  auto hi32 = [](std::uint64_t v) {
    return static_cast<std::uint32_t>(v >> 32);
  };
  const auto* stats = engine_ ? &engine_->stats() : nullptr;
  switch (static_cast<Reg>(offset)) {
    case Reg::kId: return kMagic;
    case Reg::kVersion: return kVersionWord;
    case Reg::kCtrl: return 0;  // write-only
    case Reg::kStatus:
      return (busy_ ? kStatusBusy : 0u) | (done_ ? kStatusDone : 0u) |
             (cfg_error_ ? kStatusCfgError : 0u);
    case Reg::kAlgorithm: return algorithm_;
    case Reg::kAlpha: return alpha_;
    case Reg::kGamma: return gamma_;
    case Reg::kEpsilonThresh: return epsilon_thresh_;
    case Reg::kSeedLo: return seed_lo_;
    case Reg::kSeedHi: return seed_hi_;
    case Reg::kMaxEpisodeLen: return max_episode_len_;
    case Reg::kSamplesTargetLo: return samples_target_lo_;
    case Reg::kSamplesTargetHi: return samples_target_hi_;
    case Reg::kBackend: return backend_;
    case Reg::kSampleCountLo: return stats ? lo32(stats->samples) : 0;
    case Reg::kSampleCountHi: return stats ? hi32(stats->samples) : 0;
    case Reg::kEpisodeCountLo: return stats ? lo32(stats->episodes) : 0;
    case Reg::kEpisodeCountHi: return stats ? hi32(stats->episodes) : 0;
    case Reg::kCycleCountLo: return stats ? lo32(stats->cycles) : 0;
    case Reg::kCycleCountHi: return stats ? hi32(stats->cycles) : 0;
    case Reg::kTableAddr: return table_addr_;
    case Reg::kTableData: {
      if (!engine_) return 0;
      const StateId s =
          static_cast<StateId>(table_addr_ >> map_.action_bits);
      const auto a = static_cast<ActionId>(
          table_addr_ & ((1u << map_.action_bits) - 1));
      return static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(engine_->q_raw(s, a)) & 0xFFFFFFFFu);
    }
    case Reg::kQmaxData: {
      if (!engine_) return 0;
      const StateId s =
          static_cast<StateId>(table_addr_ >> map_.action_bits);
      const auto e = engine_->qmax_entry(s);
      const std::uint32_t vmask =
          (1u << engine_->config().q_fmt.width) - 1;
      return (static_cast<std::uint32_t>(e.action)
              << engine_->config().q_fmt.width) |
             (static_cast<std::uint32_t>(e.value) & vmask);
    }
    case Reg::kBubbleCount: return stats ? lo32(stats->bubbles) : 0;
    case Reg::kStallCount: return stats ? lo32(stats->stall_cycles) : 0;
    case Reg::kFwdQsaCount: return stats ? lo32(stats->fwd_q_sa) : 0;
    case Reg::kFwdQnextCount: return stats ? lo32(stats->fwd_q_next) : 0;
    case Reg::kFwdQmaxCount: return stats ? lo32(stats->fwd_qmax) : 0;
    case Reg::kSaturationCount:
      return engine_ ? lo32(engine_->dsp_saturations() +
                            stats->adder_saturations)
                     : 0;
  }
  QTA_CHECK_MSG(false, "unhandled register");
  return 0;
}

double QtAccelDevice::q_value(StateId s, ActionId a) const {
  QTA_CHECK(engine_ != nullptr);
  return engine_->q_value(s, a);
}

}  // namespace qta::driver

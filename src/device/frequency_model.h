// Achievable-clock model: converts a design's BRAM utilization on a device
// into an estimated post-route clock frequency. See calibration.h for the
// fit against the paper's Table II / Figure 6 data.
#pragma once

#include "device/device.h"
#include "hw/resource_ledger.h"

namespace qta::device {

/// Estimated clock in MHz for a design with the given BRAM18 tile count on
/// `dev`. Monotonically non-increasing in utilization.
double estimated_clock_mhz(const Device& dev, std::uint64_t bram18_tiles);

/// Convenience overload computing the tile count from a ledger.
double estimated_clock_mhz(const Device& dev,
                           const hw::ResourceLedger& ledger);

/// Throughput in samples/second given a clock estimate and the simulated
/// samples-per-cycle rate (1.0 for the stall-free pipeline; lower when the
/// stall-mode ablation or probability-policy stalls apply).
double throughput_sps(double clock_mhz, double samples_per_cycle);

}  // namespace qta::device

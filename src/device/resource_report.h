// Maps a design's raw resource requirements onto a device to produce the
// utilization numbers the paper reports (Figures 3, 4, 5, 7).
#pragma once

#include <iosfwd>
#include <string>

#include "device/device.h"
#include "device/power_model.h"
#include "hw/resource_ledger.h"

namespace qta::device {

struct ResourceReport {
  std::string device_name;
  std::uint64_t bram18_tiles = 0;
  std::uint64_t dsp = 0;
  std::uint64_t flip_flops = 0;
  std::uint64_t luts = 0;

  double bram_util_pct = 0.0;
  double dsp_util_pct = 0.0;
  double ff_util_pct = 0.0;
  double lut_util_pct = 0.0;

  double clock_mhz = 0.0;
  PowerBreakdown power;

  bool fits = true;  // false when any resource exceeds the device

  /// Human-readable multi-line summary.
  void print(std::ostream& os) const;
};

/// Builds the full report for `ledger` on `dev`.
ResourceReport make_report(const Device& dev,
                           const hw::ResourceLedger& ledger);

}  // namespace qta::device

// FPGA device catalogue and BRAM packing rules.
//
// The paper evaluates on a Xilinx UltraScale+ xcvu13p (place-and-route with
// Vivado 2019.1) and compares against prior art on Virtex-6/7 class parts.
// We model the block inventories of those devices and the standard packing
// of a (depth x width) memory onto 18Kb BRAM tiles, so resource counts in
// Figures 3-5 and 7 are reproduced from first principles rather than
// hard-coded.
#pragma once

#include <cstdint>
#include <string>

#include "hw/resource_ledger.h"

namespace qta::device {

struct Device {
  std::string name;
  // Block inventory.
  std::uint64_t bram18_blocks;   // 18 Kb tiles (a BRAM36 is two tiles)
  std::uint64_t uram_blocks;     // 288 Kb UltraRAM tiles (0 if absent)
  std::uint64_t dsp_slices;
  std::uint64_t flip_flops;
  std::uint64_t luts;

  static constexpr std::uint64_t kBram18Bits = 18 * 1024;
  static constexpr std::uint64_t kUramBits = 288 * 1024;

  std::uint64_t bram_bits() const { return bram18_blocks * kBram18Bits; }
  std::uint64_t uram_bits() const { return uram_blocks * kUramBits; }
};

/// Xilinx Virtex UltraScale+ xcvu13p — the paper's main evaluation device.
Device xcvu13p();

/// Xilinx Virtex-7 xc7vx690t — used for the Figure 7 prior-art comparison
/// ("for fair comparison we also implemented our design on Virtex 7").
Device xc7vx690t();

/// Xilinx Virtex-6 xc6vlx240t — the device class of the baseline [11].
Device xc6vlx240t();

/// Looks up a device by name ("xcvu13p", "xc7vx690t", "xc6vlx240t").
Device device_by_name(const std::string& name);

/// BRAM18 tiles needed for one memory: lanes of 18 bits, 1024 words per
/// lane-tile (the natural 1Kx18 aspect of an 18Kb tile).
std::uint64_t bram18_tiles_for(const hw::MemoryReq& mem);

/// Total BRAM18 tiles for every memory in a ledger.
std::uint64_t bram18_tiles_for(const hw::ResourceLedger& ledger);

/// URAM tiles for one memory: 4K x 72 blocks, width packed into 72-bit
/// lanes (UltraRAM has no narrower aspect).
std::uint64_t uram_tiles_for(const hw::MemoryReq& mem);

/// True if the ledger's memories fit the device. With `use_uram`, the
/// largest memories spill from BRAM into UltraRAM first (how a design
/// would map big Q tables; the paper's "10M state-action pairs using the
/// available 360Mb of on-chip UltraRAM"). Without it, BRAM only.
bool memories_fit(const Device& dev, const hw::ResourceLedger& ledger,
                  bool use_uram);

}  // namespace qta::device

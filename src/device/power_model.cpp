#include "device/power_model.h"

#include "device/calibration.h"

namespace qta::device {

PowerBreakdown estimated_power(const Device& dev,
                               const hw::ResourceLedger& ledger) {
  (void)dev;  // per-device power coefficients are identical in this model
  PowerBreakdown p;
  p.static_mw = cal::kPowerStaticMw;
  p.bram_mw = cal::kPowerPerBram18Mw *
              static_cast<double>(bram18_tiles_for(ledger));
  p.dsp_mw = cal::kPowerPerDspMw * ledger.dsp();
  p.ff_mw = cal::kPowerPerFfMw * ledger.flip_flops();
  p.lut_mw = cal::kPowerPerLutMw * ledger.luts();
  return p;
}

}  // namespace qta::device

// Power model: static + dynamic per-resource terms (shape-only; see
// calibration.h for constant provenance).
#pragma once

#include "device/device.h"
#include "hw/resource_ledger.h"

namespace qta::device {

struct PowerBreakdown {
  double static_mw = 0.0;
  double bram_mw = 0.0;
  double dsp_mw = 0.0;
  double ff_mw = 0.0;
  double lut_mw = 0.0;

  double total_mw() const {
    return static_mw + bram_mw + dsp_mw + ff_mw + lut_mw;
  }
};

/// Estimates power for a design described by `ledger` on device `dev`.
PowerBreakdown estimated_power(const Device& dev,
                               const hw::ResourceLedger& ledger);

}  // namespace qta::device

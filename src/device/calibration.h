// Every analytical-model constant in one place, with the provenance of each.
//
// These constants translate simulated cycle counts and resource ledgers
// into the MHz / mW / utilization-% axes of the paper's figures. They were
// fitted to the paper's reported data points (see EXPERIMENTS.md for the
// per-figure residuals); they are NOT measurements of real silicon.
#pragma once

namespace qta::device::cal {

// ---- Clock frequency model (Figure 6, Table II) --------------------------
// The paper reports ~189 MHz at small state spaces, degrading to ~156 MHz
// (|A|=4) / ~153 MHz (|A|=8) at |S| = 262144 and attributes the drop to
// BRAM pressure ("more than 50% of the BRAM would be fully utilized ...
// degrades the clock speed"). We model
//     f(MHz) = kFmaxMhz - kFreqDegradeK * (bram_util_pct ^ kFreqDegradeExp)
// fitted against the eight (|S|, |A|) FPGA points of Table II.
inline constexpr double kFmaxMhz = 189.0;
inline constexpr double kFreqDegradeK = 5.1;
inline constexpr double kFreqDegradeExp = 0.48;
inline constexpr double kFminMhz = 100.0;  // sanity floor

// ---- Power model (Figures 3 and 5, right axis) ----------------------------
// P(mW) = static + per-BRAM18 + per-DSP + per-FF + per-LUT terms. The
// paper's absolute power values are not legible in the available scan; the
// constants below give the documented *shape*: power grows with the BRAM
// footprint and SARSA draws slightly more than Q-Learning (extra LFSR and
// comparator registers). Typical UltraScale+ dynamic-power coefficients.
inline constexpr double kPowerStaticMw = 4.0;
inline constexpr double kPowerPerBram18Mw = 0.055;
inline constexpr double kPowerPerDspMw = 1.5;
inline constexpr double kPowerPerFfMw = 0.004;
inline constexpr double kPowerPerLutMw = 0.0015;

// ---- Fixed datapath register budget (Figures 3 and 5, left axis) ----------
// Stage registers that do not depend on the table size: three 18-bit
// Q-value/reward operands replicated across stage boundaries, the four
// 18-bit coefficient registers (alpha, 1-alpha, gamma, alpha*gamma), the
// 18-bit adder/result registers, and pipeline valid/control bits.
inline constexpr unsigned kDatapathFixedFf = 14 * 18 + 12;
// Address registers: (state bits + action bits) carried across each of the
// four stage boundaries, twice (current and next state-action).
inline constexpr unsigned kAddrCopiesPerBit = 8;
// Control FSM and episode bookkeeping LUT estimate.
inline constexpr unsigned kControlLuts = 220;
// LUTs per address bit of transition-function combinational logic
// (grid-world moves are adds/compares on the coordinate fields).
inline constexpr unsigned kTransitionLutsPerBit = 6;

// ---- Baseline accelerator model [11] (Figure 7) ---------------------------
// da Silva et al. instantiate one update FSM per state-action pair; each
// pair needs multipliers for gamma*maxQ and alpha*delta. The paper's text
// anchor is "for 132 states, 4 actions the design fully utilized the DSP
// ... on the [Virtex-6] device": 132*4*2 = 1056 > 768 DSP slices.
inline constexpr unsigned kBaselineMultipliersPerPair = 2;
// LUTs per pair for the per-pair FSM + its slice of the comparator tree.
inline constexpr unsigned kBaselineLutsPerPair = 46;
inline constexpr unsigned kBaselineFfPerPair = 38;
// Reported throughput of [11] on Virtex-6 (samples/s); the paper claims
// QTAccel is "more than 15X higher" at 180 MS/s.
inline constexpr double kBaselineThroughputSps = 11.5e6;

}  // namespace qta::device::cal

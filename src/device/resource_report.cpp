#include "device/resource_report.h"

#include <ostream>

#include "common/table_printer.h"
#include "device/frequency_model.h"

namespace qta::device {

ResourceReport make_report(const Device& dev,
                           const hw::ResourceLedger& ledger) {
  ResourceReport r;
  r.device_name = dev.name;
  r.bram18_tiles = bram18_tiles_for(ledger);
  r.dsp = ledger.dsp();
  r.flip_flops = ledger.flip_flops();
  r.luts = ledger.luts();

  auto pct = [](std::uint64_t used, std::uint64_t total) {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(used) /
                            static_cast<double>(total);
  };
  r.bram_util_pct = pct(r.bram18_tiles, dev.bram18_blocks);
  r.dsp_util_pct = pct(r.dsp, dev.dsp_slices);
  r.ff_util_pct = pct(r.flip_flops, dev.flip_flops);
  r.lut_util_pct = pct(r.luts, dev.luts);

  r.fits = r.bram18_tiles <= dev.bram18_blocks && r.dsp <= dev.dsp_slices &&
           r.flip_flops <= dev.flip_flops && r.luts <= dev.luts;
  r.clock_mhz = r.fits ? estimated_clock_mhz(dev, r.bram18_tiles) : 0.0;
  r.power = estimated_power(dev, ledger);
  return r;
}

void ResourceReport::print(std::ostream& os) const {
  os << "Resource report on " << device_name
     << (fits ? "" : "  [DOES NOT FIT]") << '\n'
     << "  BRAM18 tiles : " << bram18_tiles << "  ("
     << format_double(bram_util_pct, 4) << "%)\n"
     << "  DSP slices   : " << dsp << "  (" << format_double(dsp_util_pct, 4)
     << "%)\n"
     << "  Flip-flops   : " << flip_flops << "  ("
     << format_double(ff_util_pct, 4) << "%)\n"
     << "  LUTs         : " << luts << "  (" << format_double(lut_util_pct, 4)
     << "%)\n"
     << "  Est. clock   : " << format_double(clock_mhz, 1) << " MHz\n"
     << "  Est. power   : " << format_double(power.total_mw(), 1)
     << " mW (bram " << format_double(power.bram_mw, 1) << ", dsp "
     << format_double(power.dsp_mw, 1) << ", ff "
     << format_double(power.ff_mw, 1) << ", lut "
     << format_double(power.lut_mw, 1) << ", static "
     << format_double(power.static_mw, 1) << ")\n";
}

}  // namespace qta::device

#include "device/frequency_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "device/calibration.h"

namespace qta::device {

double estimated_clock_mhz(const Device& dev, std::uint64_t bram18_tiles) {
  QTA_CHECK_MSG(bram18_tiles <= dev.bram18_blocks,
                "design does not fit in the device's BRAM");
  const double util_pct = 100.0 * static_cast<double>(bram18_tiles) /
                          static_cast<double>(dev.bram18_blocks);
  const double degrade =
      cal::kFreqDegradeK * std::pow(util_pct, cal::kFreqDegradeExp);
  return std::max(cal::kFminMhz, cal::kFmaxMhz - degrade);
}

double estimated_clock_mhz(const Device& dev,
                           const hw::ResourceLedger& ledger) {
  return estimated_clock_mhz(dev, bram18_tiles_for(ledger));
}

double throughput_sps(double clock_mhz, double samples_per_cycle) {
  QTA_CHECK(clock_mhz > 0.0);
  QTA_CHECK(samples_per_cycle >= 0.0 && samples_per_cycle <= 1.0);
  return clock_mhz * 1e6 * samples_per_cycle;
}

}  // namespace qta::device

#include "device/device.h"

#include <algorithm>
#include <vector>

#include "common/bit_math.h"
#include "common/check.h"

namespace qta::device {

Device xcvu13p() {
  // Virtex UltraScale+ VU13P: 2688 BRAM36 (= 5376 BRAM18, 94.5 Mb),
  // 1280 URAM (360 Mb), 12288 DSP48E2, 3456K FF, 1728K LUT.
  return Device{"xcvu13p", 5376, 1280, 12288, 3456000, 1728000};
}

Device xc7vx690t() {
  // Virtex-7 690T: 1470 BRAM36 (= 2940 BRAM18, 52.9 Mb), 3600 DSP48E1,
  // 866.4K FF, 433.2K LUT, no URAM.
  return Device{"xc7vx690t", 2940, 0, 3600, 866400, 433200};
}

Device xc6vlx240t() {
  // Virtex-6 LX240T: 416 BRAM36 (= 832 BRAM18), 768 DSP48E1,
  // 301.44K FF, 150.72K LUT.
  return Device{"xc6vlx240t", 832, 0, 768, 301440, 150720};
}

Device device_by_name(const std::string& name) {
  if (name == "xcvu13p") return xcvu13p();
  if (name == "xc7vx690t") return xc7vx690t();
  if (name == "xc6vlx240t") return xc6vlx240t();
  QTA_CHECK_MSG(false, "unknown device name");
  return {};
}

std::uint64_t bram18_tiles_for(const hw::MemoryReq& mem) {
  // Lanes of up to 18 data bits; each lane-tile holds 1024 words.
  const std::uint64_t lanes = ceil_div(mem.width, 18);
  const std::uint64_t tiles_per_lane = ceil_div(mem.depth, 1024);
  return lanes * tiles_per_lane;
}

std::uint64_t bram18_tiles_for(const hw::ResourceLedger& ledger) {
  std::uint64_t total = 0;
  for (const auto& m : ledger.memories()) total += bram18_tiles_for(m);
  return total;
}

std::uint64_t uram_tiles_for(const hw::MemoryReq& mem) {
  // 4K x 72 blocks. Narrow entries pack multiple-per-word (e.g. four
  // 18-bit Q values per 72-bit word, selected by low address bits) — the
  // standard trick for wide URAM, at the cost of a word-select mux.
  const std::uint64_t entries_per_word = std::max<std::uint64_t>(
      1, 72 / mem.width);
  const std::uint64_t words =
      ceil_div(mem.depth, entries_per_word) *
      ceil_div(mem.width, 72);  // >72-bit entries span lanes instead
  return ceil_div(words, 4096);
}

bool memories_fit(const Device& dev, const hw::ResourceLedger& ledger,
                  bool use_uram) {
  if (!use_uram || dev.uram_blocks == 0) {
    return bram18_tiles_for(ledger) <= dev.bram18_blocks;
  }
  // Greedy spill: place memories in decreasing footprint; each goes to
  // URAM while URAM lasts, then to BRAM (big Q/R tables spill first,
  // which is how a real floorplan maps them).
  std::vector<hw::MemoryReq> mems = ledger.memories();
  std::sort(mems.begin(), mems.end(),
            [](const hw::MemoryReq& a, const hw::MemoryReq& b) {
              return a.bits() > b.bits();
            });
  std::uint64_t uram_left = dev.uram_blocks;
  std::uint64_t bram_left = dev.bram18_blocks;
  for (const auto& m : mems) {
    const std::uint64_t u = uram_tiles_for(m);
    if (u <= uram_left) {
      uram_left -= u;
      continue;
    }
    const std::uint64_t b = bram18_tiles_for(m);
    if (b > bram_left) return false;
    bram_left -= b;
  }
  return true;
}

}  // namespace qta::device

// The paper's evaluation workload: a grid-world robotics environment
// (Section VI-A, Figure 2). The agent starts in a random cell and must
// reach a goal cell while avoiding obstacles and the grid boundary.
//
// State addressing follows the paper exactly: for a 2^xb x 2^yb grid the
// state id is the bit-concatenation (x << yb) | y. Actions follow the
// paper's encodings:
//   4 actions: 00 left, 01 up, 10 right, 11 down;
//   8 actions: 000 left, 001 top-left, 010 up, 011 top-right, then
//              clockwise (100 right, 101 bottom-right, 110 down,
//              111 bottom-left).
// Rewards: reaching the goal yields +goal_reward (maximum), moving into a
// wall / obstacle / off-grid yields -collision_penalty and the agent stays
// in place; ordinary moves yield step_reward.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <utility>
#include <vector>

#include "common/bit_math.h"
#include "common/check.h"
#include "env/environment.h"
#include "rng/xoshiro.h"

namespace qta::env {

struct GridWorldConfig {
  unsigned width = 16;   // must be a power of two
  unsigned height = 16;  // must be a power of two
  unsigned num_actions = 4;  // 4 or 8
  std::optional<unsigned> goal_x;  // defaults to the far corner
  std::optional<unsigned> goal_y;
  double obstacle_density = 0.0;   // fraction of cells turned into obstacles
  std::uint64_t obstacle_seed = 1;
  /// Explicitly placed obstacles (x, y) — e.g. from an ASCII map
  /// (env/grid_map.h); combined with any density-generated ones.
  std::vector<std::pair<unsigned, unsigned>> extra_obstacles;
  double goal_reward = 255.0;
  double collision_penalty = 255.0;
  double step_reward = 0.0;
  /// Slippery floor: with this probability the executed move is rotated
  /// 90 degrees (clockwise or counter-clockwise, equally likely) from
  /// the intended one. 0 keeps the world deterministic. Realized through
  /// the transition block's noise input (8 + 1 LFSR bits).
  double slip_probability = 0.0;
};

class GridWorld final : public Environment {
 public:
  explicit GridWorld(const GridWorldConfig& config);

  StateId num_states() const override;
  ActionId num_actions() const override;
  unsigned transition_noise_bits() const override;
  StateId transition(StateId s, ActionId a,
                     std::uint64_t noise) const override;
  double reward(StateId s, ActionId a) const override;
  bool is_terminal(StateId s) const override;

  /// Deterministic move. Inline (it is also the devirtualized fast path
  /// of the functional backend, which executes it once per sample and
  /// needs the optimizer to see through it — see qtaccel/fast_engine.h).
  StateId transition(StateId s, ActionId a) const override {
    QTA_DCHECK(s < num_states() && a < num_actions());
    int dx = 0, dy = 0;
    action_delta(config_.num_actions, a, dx, dy);
    const int nx = static_cast<int>(x_of(s)) + dx;
    const int ny = static_cast<int>(y_of(s)) + dy;
    if (!in_bounds(nx, ny)) return s;  // bump into the boundary wall
    const StateId next =
        state_of(static_cast<unsigned>(nx), static_cast<unsigned>(ny));
    if (obstacle_[next]) return s;  // bump into an obstacle
    return next;
  }

  // Coordinate helpers (paper addressing).
  StateId state_of(unsigned x, unsigned y) const {
    QTA_DCHECK(x < config_.width && y < config_.height);
    return static_cast<StateId>((x << y_bits_) | y);
  }
  unsigned x_of(StateId s) const {
    return static_cast<unsigned>(s >> y_bits_);
  }
  unsigned y_of(StateId s) const {
    return static_cast<unsigned>(bits(s, 0, y_bits_));
  }

  bool is_obstacle(StateId s) const;
  StateId goal_state() const { return goal_; }
  const GridWorldConfig& config() const { return config_; }

  /// Signed displacement of action `a` as (dx, dy). y grows downward.
  static void action_delta(unsigned num_actions, ActionId a, int& dx,
                           int& dy) {
    if (num_actions == 4) {
      // 00 left, 01 up, 10 right, 11 down.
      static constexpr int kDx4[4] = {-1, 0, 1, 0};
      static constexpr int kDy4[4] = {0, -1, 0, 1};
      QTA_DCHECK(a < 4);
      dx = kDx4[a];
      dy = kDy4[a];
      return;
    }
    QTA_DCHECK(num_actions == 8 && a < 8);
    // 000 left, then clockwise: top-left, up, top-right, right,
    // bottom-right, down, bottom-left.
    static constexpr int kDx8[8] = {-1, -1, 0, 1, 1, 1, 0, -1};
    static constexpr int kDy8[8] = {0, -1, -1, -1, 0, 1, 1, 1};
    dx = kDx8[a];
    dy = kDy8[a];
  }

  /// ASCII rendering: '.' free, '#' obstacle, 'G' goal, and optionally an
  /// arrow map of a greedy policy (one glyph per cell from `policy`,
  /// indexed by state).
  void render(std::ostream& os,
              const std::vector<ActionId>* policy = nullptr) const;

 private:
  bool in_bounds(int x, int y) const {
    return x >= 0 && y >= 0 && x < static_cast<int>(config_.width) &&
           y < static_cast<int>(config_.height);
  }

  GridWorldConfig config_;
  unsigned x_bits_;
  unsigned y_bits_;
  StateId goal_;
  std::vector<bool> obstacle_;  // indexed by state id
};

}  // namespace qta::env

#include "env/bandit.h"

#include "common/check.h"

namespace qta::env {

MultiArmedBandit::MultiArmedBandit(std::vector<Arm> arms, std::uint64_t seed)
    : arms_(std::move(arms)), noise_(seed) {
  QTA_CHECK_MSG(!arms_.empty(), "a bandit needs at least one arm");
  best_arm_ = 0;
  best_mean_ = arms_[0].mean;
  for (unsigned m = 1; m < arms_.size(); ++m) {
    if (arms_[m].mean > best_mean_) {
      best_mean_ = arms_[m].mean;
      best_arm_ = m;
    }
  }
}

MultiArmedBandit MultiArmedBandit::evenly_spaced(unsigned m, double stddev,
                                                 std::uint64_t seed) {
  QTA_CHECK(m >= 2);
  std::vector<Arm> arms(m);
  for (unsigned i = 0; i < m; ++i) {
    arms[i] = {static_cast<double>(i) / (m - 1), stddev};
  }
  return MultiArmedBandit(std::move(arms), seed);
}

double MultiArmedBandit::pull(unsigned m) {
  QTA_CHECK(m < arms_.size());
  ++pulls_;
  regret_ += best_mean_ - arms_[m].mean;
  return noise_.sample(arms_[m].mean, arms_[m].stddev);
}

}  // namespace qta::env

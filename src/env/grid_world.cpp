#include "env/grid_world.h"

#include <ostream>

#include "common/bit_math.h"
#include "common/check.h"

namespace qta::env {

GridWorld::GridWorld(const GridWorldConfig& config) : config_(config) {
  QTA_CHECK_MSG(is_pow2(config.width) && is_pow2(config.height),
                "grid dimensions must be powers of two (bit-concatenated "
                "state addressing)");
  QTA_CHECK_MSG(config.num_actions == 4 || config.num_actions == 8,
                "grid world supports 4 or 8 actions");
  QTA_CHECK_MSG(config.slip_probability >= 0.0 &&
                    config.slip_probability < 1.0,
                "slip probability must be in [0, 1)");
  x_bits_ = log2_ceil(config.width);
  y_bits_ = log2_ceil(config.height);

  const unsigned gx = config.goal_x.value_or(config.width - 1);
  const unsigned gy = config.goal_y.value_or(config.height - 1);
  QTA_CHECK(gx < config.width && gy < config.height);
  goal_ = state_of(gx, gy);

  obstacle_.assign(num_states(), false);
  if (config.obstacle_density > 0.0) {
    QTA_CHECK(config.obstacle_density < 1.0);
    rng::Xoshiro256 rng(config.obstacle_seed);
    for (StateId s = 0; s < num_states(); ++s) {
      if (s == goal_) continue;
      obstacle_[s] = rng.bernoulli(config.obstacle_density);
    }
  }
  for (const auto& [ox, oy] : config.extra_obstacles) {
    QTA_CHECK_MSG(ox < config.width && oy < config.height,
                  "explicit obstacle outside the grid");
    const StateId s = state_of(ox, oy);
    QTA_CHECK_MSG(s != goal_, "the goal cell cannot be an obstacle");
    obstacle_[s] = true;
  }
}

StateId GridWorld::num_states() const {
  return static_cast<StateId>(config_.width) * config_.height;
}

ActionId GridWorld::num_actions() const { return config_.num_actions; }

unsigned GridWorld::transition_noise_bits() const {
  // 8 bits for the slip compare + 1 direction bit.
  return config_.slip_probability > 0.0 ? 9 : 0;
}

StateId GridWorld::transition(StateId s, ActionId a,
                              std::uint64_t noise) const {
  if (config_.slip_probability <= 0.0) return transition(s, a);
  QTA_DCHECK(a < num_actions());
  const auto threshold = static_cast<std::uint64_t>(
      config_.slip_probability * 256.0);
  ActionId executed = a;
  if ((noise & 0xFF) < threshold) {
    // Slip: rotate the intended move 90 degrees; bit 8 picks CW vs CCW.
    // Both encodings (4- and 8-action) are in clockwise order, so a 90
    // degree turn is +-1 step (4 actions) or +-2 steps (8 actions).
    const unsigned quarter = config_.num_actions / 4;
    const bool cw = (noise >> 8) & 1;
    executed = (a + (cw ? quarter : config_.num_actions - quarter)) %
               config_.num_actions;
  }
  return transition(s, executed);
}

double GridWorld::reward(StateId s, ActionId a) const {
  QTA_DCHECK(s < num_states() && a < num_actions());
  int dx = 0, dy = 0;
  action_delta(config_.num_actions, a, dx, dy);
  const int nx = static_cast<int>(x_of(s)) + dx;
  const int ny = static_cast<int>(y_of(s)) + dy;
  if (!in_bounds(nx, ny)) return -config_.collision_penalty;
  const StateId next =
      state_of(static_cast<unsigned>(nx), static_cast<unsigned>(ny));
  if (obstacle_[next]) return -config_.collision_penalty;
  if (next == goal_) return config_.goal_reward;
  return config_.step_reward;
}

bool GridWorld::is_terminal(StateId s) const { return s == goal_; }

bool GridWorld::is_obstacle(StateId s) const {
  QTA_DCHECK(s < num_states());
  return obstacle_[s];
}

void GridWorld::render(std::ostream& os,
                       const std::vector<ActionId>* policy) const {
  // Arrow glyphs per action id, 4- and 8-action variants.
  static constexpr const char* kArrow4[4] = {"<", "^", ">", "v"};
  static constexpr const char* kArrow8[8] = {"<", "`", "^", "'",
                                             ">", ",", "v", "."};
  for (unsigned y = 0; y < config_.height; ++y) {
    for (unsigned x = 0; x < config_.width; ++x) {
      const StateId s = state_of(x, y);
      if (s == goal_) {
        os << 'G';
      } else if (obstacle_[s]) {
        os << '#';
      } else if (policy) {
        QTA_CHECK(policy->size() == num_states());
        const ActionId a = (*policy)[s];
        os << (config_.num_actions == 4 ? kArrow4[a % 4] : kArrow8[a % 8]);
      } else {
        os << '.';
      }
      os << ' ';
    }
    os << '\n';
  }
}

}  // namespace qta::env

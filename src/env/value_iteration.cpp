#include "env/value_iteration.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qta::env {

ValueIterationResult value_iteration(const Environment& env, double gamma,
                                     double tol, unsigned max_iters) {
  QTA_CHECK(gamma >= 0.0 && gamma < 1.0);
  const StateId ns = env.num_states();
  const ActionId na = env.num_actions();
  ValueIterationResult r;
  r.q.assign(static_cast<std::size_t>(ns) * na, 0.0);
  r.v.assign(ns, 0.0);
  r.policy.assign(ns, 0);

  const unsigned noise_bits = env.transition_noise_bits();
  QTA_CHECK_MSG(noise_bits <= 12,
                "value iteration enumerates the noise space; more than "
                "2^12 outcomes is intractable here");
  const std::uint64_t noise_count =
      noise_bits == 0 ? 1 : (std::uint64_t{1} << noise_bits);

  for (r.iterations = 0; r.iterations < max_iters; ++r.iterations) {
    double worst = 0.0;
    for (StateId s = 0; s < ns; ++s) {
      if (env.is_terminal(s)) continue;  // no actions from terminal states
      for (ActionId a = 0; a < na; ++a) {
        // Expectation over the (uniform) transition-noise input.
        double future = 0.0;
        for (std::uint64_t n = 0; n < noise_count; ++n) {
          const StateId sn = noise_bits == 0 ? env.transition(s, a)
                                             : env.transition(s, a, n);
          future += env.is_terminal(sn) ? 0.0 : r.v[sn];
        }
        future /= static_cast<double>(noise_count);
        const double updated = env.reward(s, a) + gamma * future;
        auto& cell = r.q[static_cast<std::size_t>(s) * na + a];
        worst = std::max(worst, std::abs(updated - cell));
        cell = updated;
      }
    }
    for (StateId s = 0; s < ns; ++s) {
      const auto row = static_cast<std::size_t>(s) * na;
      ActionId best = 0;
      for (ActionId a = 1; a < na; ++a) {
        if (r.q[row + a] > r.q[row + best]) best = a;
      }
      r.policy[s] = best;
      r.v[s] = r.q[row + best];
    }
    r.residual = worst;
    if (worst < tol) break;
  }
  return r;
}

std::vector<ActionId> greedy_policy_from(const Environment& env,
                                         const std::vector<double>& q) {
  QTA_CHECK(q.size() == env.table_size());
  const ActionId na = env.num_actions();
  std::vector<ActionId> policy(env.num_states(), 0);
  for (StateId s = 0; s < env.num_states(); ++s) {
    const auto row = static_cast<std::size_t>(s) * na;
    ActionId best = 0;
    for (ActionId a = 1; a < na; ++a) {
      if (q[row + a] > q[row + best]) best = a;
    }
    policy[s] = best;
  }
  return policy;
}

double policy_success_rate(const Environment& env,
                           const std::vector<ActionId>& policy,
                           unsigned max_steps,
                           const std::function<bool(StateId)>* blocked) {
  int reached = 0, total = 0;
  for (StateId s = 0; s < env.num_states(); ++s) {
    if (env.is_terminal(s)) continue;
    if (blocked && (*blocked)(s)) continue;
    ++total;
    reached += rollout_steps(env, policy, s, max_steps) >= 0 ? 1 : 0;
  }
  return total == 0 ? 1.0 : static_cast<double>(reached) / total;
}

int rollout_steps(const Environment& env, const std::vector<ActionId>& policy,
                  StateId start, unsigned max_steps) {
  QTA_CHECK(policy.size() == env.num_states());
  StateId s = start;
  for (unsigned step = 0; step < max_steps; ++step) {
    if (env.is_terminal(s)) return static_cast<int>(step);
    s = env.transition(s, policy[s]);
  }
  return env.is_terminal(s) ? static_cast<int>(max_steps) : -1;
}

double greedy_path_q_error(const Environment& env,
                           const ValueIterationResult& optimal,
                           const std::vector<double>& learned_q,
                           StateId start, unsigned max_steps) {
  QTA_CHECK(learned_q.size() == optimal.q.size());
  const ActionId na = env.num_actions();
  double worst = 0.0;
  StateId s = start;
  for (unsigned step = 0; step < max_steps && !env.is_terminal(s); ++step) {
    const ActionId a = optimal.policy[s];
    const auto idx = static_cast<std::size_t>(s) * na + a;
    worst = std::max(worst, std::abs(learned_q[idx] - optimal.q[idx]));
    s = env.transition(s, a);
  }
  return worst;
}

}  // namespace qta::env

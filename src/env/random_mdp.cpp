#include "env/random_mdp.h"

#include "common/check.h"
#include "rng/xoshiro.h"

namespace qta::env {

RandomMdp::RandomMdp(const RandomMdpConfig& config) : config_(config) {
  QTA_CHECK(config.num_states >= 1);
  QTA_CHECK(config.num_actions >= 1);
  QTA_CHECK(config.reward_hi >= config.reward_lo);
  const std::size_t n =
      static_cast<std::size_t>(config.num_states) * config.num_actions;
  next_.resize(n);
  reward_.resize(n);
  terminal_.assign(config.num_states, false);

  rng::Xoshiro256 rng(config.seed);
  for (StateId s = 0; s < config.num_states; ++s) {
    for (ActionId a = 0; a < config.num_actions; ++a) {
      const std::size_t i = index(s, a);
      next_[i] = config.self_loop
                     ? s
                     : (config.ring
                            ? (s + 1) % config.num_states
                            : static_cast<StateId>(
                                  rng.below(config.num_states)));
      reward_[i] = rng.uniform(config.reward_lo, config.reward_hi);
    }
  }
  if (config.terminal_fraction > 0.0) {
    QTA_CHECK(config.terminal_fraction < 1.0);
    for (StateId s = 0; s < config.num_states; ++s) {
      terminal_[s] = rng.bernoulli(config.terminal_fraction);
    }
    // Keep at least one non-terminal state so episodes can run.
    terminal_[0] = false;
  }
}

std::size_t RandomMdp::index(StateId s, ActionId a) const {
  QTA_DCHECK(s < config_.num_states && a < config_.num_actions);
  return static_cast<std::size_t>(s) * config_.num_actions + a;
}

StateId RandomMdp::transition(StateId s, ActionId a) const {
  return next_[index(s, a)];
}

double RandomMdp::reward(StateId s, ActionId a) const {
  return reward_[index(s, a)];
}

bool RandomMdp::is_terminal(StateId s) const {
  QTA_DCHECK(s < config_.num_states);
  return terminal_[s];
}

}  // namespace qta::env

// Randomly generated deterministic MDPs. Used by tests and benchmarks to
// stress the pipeline with transition structures a grid world never
// produces — in particular tiny MDPs (1-4 states) where *every* pair of
// consecutive updates collides in the pipeline (forwarding stress), and
// high-fanout MDPs for convergence property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "env/environment.h"

namespace qta::env {

struct RandomMdpConfig {
  StateId num_states = 16;
  ActionId num_actions = 4;
  std::uint64_t seed = 42;
  double reward_lo = -1.0;
  double reward_hi = 1.0;
  double terminal_fraction = 0.0;  // fraction of states made terminal
  /// If true every transition maps to state (s+1) % n regardless of action
  /// ("ring" MDP — the worst case for read-after-write hazards).
  bool ring = false;
  /// If true every transition stays in place (self-loop MDP: every update
  /// of an episode hits the same Q row — maximal same-row pressure).
  bool self_loop = false;
};

class RandomMdp final : public Environment {
 public:
  explicit RandomMdp(const RandomMdpConfig& config);

  StateId num_states() const override { return config_.num_states; }
  ActionId num_actions() const override { return config_.num_actions; }
  StateId transition(StateId s, ActionId a) const override;
  double reward(StateId s, ActionId a) const override;
  bool is_terminal(StateId s) const override;

 private:
  std::size_t index(StateId s, ActionId a) const;

  RandomMdpConfig config_;
  std::vector<StateId> next_;
  std::vector<double> reward_;
  std::vector<bool> terminal_;
};

}  // namespace qta::env

// ASCII grid-map parser: define a grid world as text, the way downstream
// users describe their robot's floor plan.
//
//   . . # .
//   . . # .
//   . . . .
//   # . . G
//
// Cell tokens (whitespace between cells is optional):
//   '.'  free cell
//   '#'  obstacle
//   'G'  goal (exactly one)
// Rows must all be the same length; width and height must be powers of
// two (the accelerator's bit-concatenated addressing). Rewards and the
// action count come from the remaining GridWorldConfig fields.
#pragma once

#include <string>

#include "env/grid_world.h"

namespace qta::env {

/// Parses `text` into a GridWorldConfig (dimensions, goal, explicit
/// obstacles). `base` supplies the non-geometric fields (action count,
/// rewards). Aborts with a diagnostic on malformed maps.
GridWorldConfig parse_grid_map(const std::string& text,
                               const GridWorldConfig& base = {});

/// Renders a config back to map text (inverse of parse, modulo spacing).
std::string grid_map_to_string(const GridWorld& world);

}  // namespace qta::env

// Multi-armed bandit environments (Section VII-B of the paper).
//
// A MAB has M arms; pulling arm m yields a stochastic reward, usually
// normally distributed. The paper's hardware samples these rewards with a
// CLT adder over LFSR uniforms (rng/normal_clt.h). Regret bookkeeping is
// included because the MAB benchmarks report cumulative regret curves.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/normal_clt.h"

namespace qta::env {

struct Arm {
  double mean = 0.0;
  double stddev = 1.0;
};

class MultiArmedBandit {
 public:
  MultiArmedBandit(std::vector<Arm> arms, std::uint64_t seed);

  /// A standard benchmark instance: `m` arms with means evenly spaced in
  /// [0, 1] (best arm last) and common stddev.
  static MultiArmedBandit evenly_spaced(unsigned m, double stddev,
                                        std::uint64_t seed);

  unsigned num_arms() const { return static_cast<unsigned>(arms_.size()); }
  const Arm& arm(unsigned m) const { return arms_[m]; }

  /// Pulls arm `m`: returns a CLT-normal reward sample.
  double pull(unsigned m);

  /// Best achievable expected reward (for regret computation).
  double best_mean() const { return best_mean_; }
  unsigned best_arm() const { return best_arm_; }

  /// Expected (pseudo-)regret accumulated so far:
  /// sum over pulls of (best_mean - mean[chosen]).
  double cumulative_regret() const { return regret_; }
  std::uint64_t total_pulls() const { return pulls_; }

 private:
  std::vector<Arm> arms_;
  rng::NormalClt noise_;
  double best_mean_;
  unsigned best_arm_;
  double regret_ = 0.0;
  std::uint64_t pulls_ = 0;
};

}  // namespace qta::env

// Stateful bandits (Section VII-B, last paragraph): "the state space can
// be represented by concatenation of the states of individual arms.
// Typically, the number of arms is very small (~5), so the size of the
// resulting table will still be tractable."
//
// Each arm is a deterministic cyclic process over its own phase count;
// the reward for pulling arm m depends on m's current phase. The combined
// environment state is the mixed-radix digit vector of all arm phases, so
// the UNMODIFIED QTAccel pipeline learns the scheduling problem through
// its ordinary Q/R tables. Two dynamics:
//
//   * kRested   — only the pulled arm's phase advances. (Note: with
//     deterministic cycles the long-run mean of ANY policy is a convex
//     mix of the arms' cycle means, so no scheduler beats the best single
//     arm; this mode exists for semantics tests and as the classical
//     definition.)
//   * kRestless — every arm advances each step (channels keep fading
//     whether or not you transmit on them). Here phase-awareness pays:
//     the scheduler harvests whichever arm is near its reward peak.
#pragma once

#include <cstdint>
#include <vector>

#include "env/environment.h"

namespace qta::env {

enum class BanditDynamics { kRested, kRestless };

class StatefulBandit final : public Environment {
 public:
  /// `phase_rewards[m][p]` is the reward for pulling arm m while it is in
  /// phase p. Arms may have different phase counts (>= 1 each); the arm
  /// count must be >= 2 (and a power of two to run on the accelerator).
  StatefulBandit(std::vector<std::vector<double>> phase_rewards,
                 BanditDynamics dynamics);

  StateId num_states() const override;   // product of phase counts
  ActionId num_actions() const override; // number of arms
  StateId transition(StateId s, ActionId a) const override;
  double reward(StateId s, ActionId a) const override;
  bool is_terminal(StateId) const override { return false; }

  BanditDynamics dynamics() const { return dynamics_; }
  unsigned phases(unsigned m) const;
  /// Phase of arm `m` within combined state `s`.
  unsigned phase_of(StateId s, unsigned m) const;
  /// Combined state from per-arm phases.
  StateId state_of(const std::vector<unsigned>& arm_phases) const;

  /// Long-run mean reward per pull of the best single-arm policy (the arm
  /// is cycled through its phases under either dynamics).
  double best_single_arm_mean() const;

  /// Mean reward per pull following `policy` from `start` for `pulls`
  /// steps.
  double greedy_rollout_mean(const std::vector<ActionId>& policy,
                             StateId start, unsigned pulls) const;

 private:
  std::vector<std::vector<double>> rewards_;
  BanditDynamics dynamics_;
  unsigned arms_;
  std::vector<StateId> pow_;  // mixed-radix place values
};

}  // namespace qta::env

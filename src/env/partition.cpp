#include "env/partition.h"

#include "common/bit_math.h"
#include "common/check.h"

namespace qta::env {

std::vector<GridWorldConfig> partition_grid(const GridWorldConfig& config,
                                            unsigned n) {
  QTA_CHECK_MSG(is_pow2(n), "band count must be a power of two");
  QTA_CHECK_MSG(config.height % n == 0 && config.height / n >= 2,
                "bands must be at least two rows tall");
  const unsigned band_height = config.height / n;
  QTA_CHECK_MSG(is_pow2(band_height),
                "band height must stay a power of two for bit-concatenated "
                "state addressing");

  const unsigned goal_x = config.goal_x.value_or(config.width - 1);
  const unsigned goal_y = config.goal_y.value_or(config.height - 1);

  std::vector<GridWorldConfig> bands;
  bands.reserve(n);
  for (unsigned b = 0; b < n; ++b) {
    GridWorldConfig band = config;
    band.height = band_height;
    const unsigned y0 = b * band_height;
    if (goal_y >= y0 && goal_y < y0 + band_height) {
      band.goal_x = goal_x;
      band.goal_y = goal_y - y0;
    } else {
      band.goal_x = config.width - 1;
      band.goal_y = band_height - 1;
    }
    // Distinct obstacle layout per band (each rover maps its own terrain).
    band.obstacle_seed = config.obstacle_seed * 1000003u + b;
    bands.push_back(band);
  }
  return bands;
}

}  // namespace qta::env

#include "env/stateful_bandit.h"

#include <algorithm>

#include "common/check.h"

namespace qta::env {

StatefulBandit::StatefulBandit(
    std::vector<std::vector<double>> phase_rewards, BanditDynamics dynamics)
    : rewards_(std::move(phase_rewards)), dynamics_(dynamics) {
  QTA_CHECK_MSG(rewards_.size() >= 2, "need at least two arms");
  arms_ = static_cast<unsigned>(rewards_.size());
  pow_.resize(arms_ + 1);
  pow_[0] = 1;
  for (unsigned m = 0; m < arms_; ++m) {
    QTA_CHECK_MSG(!rewards_[m].empty(), "arms need at least one phase");
    const auto k = static_cast<StateId>(rewards_[m].size());
    QTA_CHECK_MSG(pow_[m] <= kInvalidState / k,
                  "combined state space overflows StateId");
    pow_[m + 1] = pow_[m] * k;
  }
}

StateId StatefulBandit::num_states() const { return pow_[arms_]; }
ActionId StatefulBandit::num_actions() const { return arms_; }

unsigned StatefulBandit::phases(unsigned m) const {
  QTA_CHECK(m < arms_);
  return static_cast<unsigned>(rewards_[m].size());
}

unsigned StatefulBandit::phase_of(StateId s, unsigned m) const {
  QTA_DCHECK(m < arms_);
  return static_cast<unsigned>((s / pow_[m]) % rewards_[m].size());
}

StateId StatefulBandit::state_of(
    const std::vector<unsigned>& arm_phases) const {
  QTA_CHECK(arm_phases.size() == arms_);
  StateId s = 0;
  for (unsigned m = 0; m < arms_; ++m) {
    QTA_CHECK(arm_phases[m] < rewards_[m].size());
    s += arm_phases[m] * pow_[m];
  }
  return s;
}

StateId StatefulBandit::transition(StateId s, ActionId a) const {
  QTA_DCHECK(s < num_states() && a < arms_);
  StateId next = s;
  auto advance = [&](unsigned m) {
    const unsigned p = phase_of(next, m);
    const unsigned k = static_cast<unsigned>(rewards_[m].size());
    const unsigned np = (p + 1) % k;
    next = next - p * pow_[m] + np * pow_[m];
  };
  if (dynamics_ == BanditDynamics::kRested) {
    advance(a);
  } else {
    for (unsigned m = 0; m < arms_; ++m) advance(m);
  }
  return next;
}

double StatefulBandit::reward(StateId s, ActionId a) const {
  QTA_DCHECK(s < num_states() && a < arms_);
  return rewards_[a][phase_of(s, a)];
}

double StatefulBandit::best_single_arm_mean() const {
  double best = -1e300;
  for (const auto& arm : rewards_) {
    double sum = 0.0;
    for (double r : arm) sum += r;
    best = std::max(best, sum / static_cast<double>(arm.size()));
  }
  return best;
}

double StatefulBandit::greedy_rollout_mean(
    const std::vector<ActionId>& policy, StateId start,
    unsigned pulls) const {
  QTA_CHECK(policy.size() == num_states());
  QTA_CHECK(pulls >= 1);
  StateId s = start;
  double total = 0.0;
  for (unsigned t = 0; t < pulls; ++t) {
    const ActionId a = policy[s];
    total += reward(s, a);
    s = transition(s, a);
  }
  return total / static_cast<double>(pulls);
}

}  // namespace qta::env

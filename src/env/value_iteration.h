// Exact dynamic-programming solver for the tabular environments.
//
// Computes the optimal Q* fixpoint
//     Q*(s,a) = R(s,a) + gamma * max_a' Q*(s', a')   (0 future value at
//                                                     terminal states)
// for a deterministic Environment. Used as the golden optimum that learned
// policies are verified against, and by convergence benchmarks to measure
// distance-to-optimal over training.
#pragma once

#include <functional>
#include <vector>

#include "env/environment.h"

namespace qta::env {

struct ValueIterationResult {
  std::vector<double> q;        // |S| x |A|, row-major by state
  std::vector<double> v;        // |S| state values (max over actions)
  std::vector<ActionId> policy; // greedy argmax per state
  unsigned iterations = 0;
  double residual = 0.0;        // final sup-norm change

  double q_at(const Environment& e, StateId s, ActionId a) const {
    return q[static_cast<std::size_t>(s) * e.num_actions() + a];
  }
};

/// Runs value iteration to sup-norm tolerance `tol` (or `max_iters`).
ValueIterationResult value_iteration(const Environment& env, double gamma,
                                     double tol = 1e-9,
                                     unsigned max_iters = 100000);

/// Greedy argmax policy from a row-major |S| x |A| Q table (ties -> lowest
/// action, matching the hardware comparator).
std::vector<ActionId> greedy_policy_from(const Environment& env,
                                         const std::vector<double>& q);

/// Fraction of non-terminal, non-blocked states whose greedy rollout under
/// `policy` reaches a terminal state within `max_steps`. `blocked(s)` marks
/// states to skip (e.g. obstacles); pass nullptr to include all.
double policy_success_rate(const Environment& env,
                           const std::vector<ActionId>& policy,
                           unsigned max_steps = 2000,
                           const std::function<bool(StateId)>* blocked =
                               nullptr);

/// Follows `policy` greedily from `start` for at most `max_steps`; returns
/// the number of steps to reach a terminal state, or -1 if none reached.
int rollout_steps(const Environment& env, const std::vector<ActionId>& policy,
                  StateId start, unsigned max_steps);

/// Sup-norm distance between a learned Q table (row-major |S|x|A|) and the
/// optimal Q*, restricted to state-action pairs reachable under Q*'s greedy
/// policy (unreachable corners never converge under on-trajectory RL).
double greedy_path_q_error(const Environment& env,
                           const ValueIterationResult& optimal,
                           const std::vector<double>& learned_q,
                           StateId start, unsigned max_steps = 10000);

}  // namespace qta::env

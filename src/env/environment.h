// Tabular environment interface — exactly the contract the accelerator
// needs (Section IV-B of the paper):
//   * a deterministic transition function S x A -> S, realized on the FPGA
//     as an application-specific combinational block;
//   * a reward table R(s, a) that fills the on-chip reward BRAM;
//   * terminal states that end an episode (the pipeline then restarts at a
//     random state).
// States and actions are dense indices so they can be bit-concatenated into
// BRAM addresses.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace qta::env {

class Environment {
 public:
  virtual ~Environment() = default;

  virtual StateId num_states() const = 0;
  virtual ActionId num_actions() const = 0;

  /// Next state for taking `a` in `s`. Must be a pure function (the
  /// hardware block is combinational). Self-loops are allowed.
  virtual StateId transition(StateId s, ActionId a) const = 0;

  /// Stochastic dynamics support: the combinational transition block may
  /// additionally consume `transition_noise_bits()` uniform random bits
  /// from a dedicated LFSR (slippery floors, actuator noise). The default
  /// is deterministic (0 bits). `noise` is uniform over
  /// [0, 2^transition_noise_bits()); implementations must be pure in
  /// (s, a, noise). The reward remains a function of (s, a) only — it is
  /// a stored table in hardware — so stochasticity affects where the
  /// agent LANDS, not what the table pays (see docs/ARCHITECTURE.md).
  virtual unsigned transition_noise_bits() const { return 0; }
  virtual StateId transition(StateId s, ActionId a,
                             std::uint64_t noise) const {
    (void)noise;
    return transition(s, a);
  }

  /// Reward for taking `a` in `s` (received on entering transition(s, a)).
  virtual double reward(StateId s, ActionId a) const = 0;

  /// True if `s` ends the episode (goal or absorbing failure).
  virtual bool is_terminal(StateId s) const = 0;

  /// Total number of state-action pairs (the Q-table size).
  std::uint64_t table_size() const {
    return static_cast<std::uint64_t>(num_states()) * num_actions();
  }
};

}  // namespace qta::env

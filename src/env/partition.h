// Partitioning a grid world into N sub-environments for the paper's
// "Independent Learners" mode (Section VII-A, Figure 9): N agents, each
// exploring its own slice of the world with its own Q/R/Qmax tables in a
// dedicated BRAM bank.
//
// The world is cut into N horizontal bands of equal height (N and the band
// height must keep power-of-two dimensions so the paper's bit-concatenated
// addressing still applies inside each band). Each band gets its own goal:
// the global goal if it falls inside the band, otherwise the band's far
// corner.
#pragma once

#include <vector>

#include "env/grid_world.h"

namespace qta::env {

/// Returns N GridWorldConfigs, one per band. `n` must be a power of two
/// dividing config.height with at least 2 rows per band.
std::vector<GridWorldConfig> partition_grid(const GridWorldConfig& config,
                                            unsigned n);

}  // namespace qta::env

#include "env/grid_map.h"

#include <sstream>

#include "common/bit_math.h"
#include "common/check.h"

namespace qta::env {

GridWorldConfig parse_grid_map(const std::string& text,
                               const GridWorldConfig& base) {
  std::vector<std::string> rows;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      std::string cells;
      for (char c : line) {
        if (c == ' ' || c == '\t' || c == '\r') continue;
        cells.push_back(c);
      }
      if (!cells.empty()) rows.push_back(cells);
    }
  }
  QTA_CHECK_MSG(!rows.empty(), "grid map has no rows");
  const std::size_t width = rows[0].size();
  for (const auto& r : rows) {
    QTA_CHECK_MSG(r.size() == width, "grid map rows differ in length");
  }
  QTA_CHECK_MSG(is_pow2(width) && is_pow2(rows.size()),
                "grid map dimensions must be powers of two");

  GridWorldConfig config = base;
  config.width = static_cast<unsigned>(width);
  config.height = static_cast<unsigned>(rows.size());
  config.obstacle_density = 0.0;  // the map is explicit
  config.extra_obstacles.clear();
  config.goal_x.reset();
  config.goal_y.reset();

  bool goal_seen = false;
  for (unsigned y = 0; y < config.height; ++y) {
    for (unsigned x = 0; x < config.width; ++x) {
      switch (rows[y][x]) {
        case '.':
          break;
        case '#':
          config.extra_obstacles.emplace_back(x, y);
          break;
        case 'G':
          QTA_CHECK_MSG(!goal_seen, "grid map has more than one goal");
          goal_seen = true;
          config.goal_x = x;
          config.goal_y = y;
          break;
        default:
          QTA_CHECK_MSG(false, "grid map cell must be '.', '#' or 'G'");
      }
    }
  }
  QTA_CHECK_MSG(goal_seen, "grid map has no goal cell");
  return config;
}

std::string grid_map_to_string(const GridWorld& world) {
  std::ostringstream out;
  for (unsigned y = 0; y < world.config().height; ++y) {
    for (unsigned x = 0; x < world.config().width; ++x) {
      const StateId s = world.state_of(x, y);
      if (s == world.goal_state()) {
        out << 'G';
      } else if (world.is_obstacle(s)) {
        out << '#';
      } else {
        out << '.';
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace qta::env

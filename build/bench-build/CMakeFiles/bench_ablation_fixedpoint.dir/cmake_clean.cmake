file(REMOVE_RECURSE
  "../bench/bench_ablation_fixedpoint"
  "../bench/bench_ablation_fixedpoint.pdb"
  "CMakeFiles/bench_ablation_fixedpoint.dir/bench_ablation_fixedpoint.cpp.o"
  "CMakeFiles/bench_ablation_fixedpoint.dir/bench_ablation_fixedpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fixedpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_cpu_layout.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table2_cpu_vs_fpga.
# This may be replaced when dependencies are built.

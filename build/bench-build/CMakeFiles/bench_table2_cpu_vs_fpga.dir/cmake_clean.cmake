file(REMOVE_RECURSE
  "../bench/bench_table2_cpu_vs_fpga"
  "../bench/bench_table2_cpu_vs_fpga.pdb"
  "CMakeFiles/bench_table2_cpu_vs_fpga.dir/bench_table2_cpu_vs_fpga.cpp.o"
  "CMakeFiles/bench_table2_cpu_vs_fpga.dir/bench_table2_cpu_vs_fpga.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cpu_vs_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_throughput.cpp" "bench-build/CMakeFiles/bench_fig6_throughput.dir/bench_fig6_throughput.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig6_throughput.dir/bench_fig6_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_qtaccel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_fig3_resources_qlearning.
# This may be replaced when dependencies are built.

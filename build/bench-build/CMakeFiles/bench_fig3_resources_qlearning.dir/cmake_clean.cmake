file(REMOVE_RECURSE
  "../bench/bench_fig3_resources_qlearning"
  "../bench/bench_fig3_resources_qlearning.pdb"
  "CMakeFiles/bench_fig3_resources_qlearning.dir/bench_fig3_resources_qlearning.cpp.o"
  "CMakeFiles/bench_fig3_resources_qlearning.dir/bench_fig3_resources_qlearning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_resources_qlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

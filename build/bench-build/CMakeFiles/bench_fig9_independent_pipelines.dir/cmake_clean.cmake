file(REMOVE_RECURSE
  "../bench/bench_fig9_independent_pipelines"
  "../bench/bench_fig9_independent_pipelines.pdb"
  "CMakeFiles/bench_fig9_independent_pipelines.dir/bench_fig9_independent_pipelines.cpp.o"
  "CMakeFiles/bench_fig9_independent_pipelines.dir/bench_fig9_independent_pipelines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_independent_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

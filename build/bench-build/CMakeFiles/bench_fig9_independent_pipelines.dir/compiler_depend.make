# Empty compiler generated dependencies file for bench_fig9_independent_pipelines.
# This may be replaced when dependencies are built.

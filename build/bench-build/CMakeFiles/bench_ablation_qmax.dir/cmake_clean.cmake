file(REMOVE_RECURSE
  "../bench/bench_ablation_qmax"
  "../bench/bench_ablation_qmax.pdb"
  "CMakeFiles/bench_ablation_qmax.dir/bench_ablation_qmax.cpp.o"
  "CMakeFiles/bench_ablation_qmax.dir/bench_ablation_qmax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_qmax.
# This may be replaced when dependencies are built.

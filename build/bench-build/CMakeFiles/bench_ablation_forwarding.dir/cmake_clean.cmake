file(REMOVE_RECURSE
  "../bench/bench_ablation_forwarding"
  "../bench/bench_ablation_forwarding.pdb"
  "CMakeFiles/bench_ablation_forwarding.dir/bench_ablation_forwarding.cpp.o"
  "CMakeFiles/bench_ablation_forwarding.dir/bench_ablation_forwarding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig5_resources_sarsa"
  "../bench/bench_fig5_resources_sarsa.pdb"
  "CMakeFiles/bench_fig5_resources_sarsa.dir/bench_fig5_resources_sarsa.cpp.o"
  "CMakeFiles/bench_fig5_resources_sarsa.dir/bench_fig5_resources_sarsa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_resources_sarsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

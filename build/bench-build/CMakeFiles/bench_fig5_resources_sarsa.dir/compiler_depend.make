# Empty compiler generated dependencies file for bench_fig5_resources_sarsa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig8_shared_pipelines"
  "../bench/bench_fig8_shared_pipelines.pdb"
  "CMakeFiles/bench_fig8_shared_pipelines.dir/bench_fig8_shared_pipelines.cpp.o"
  "CMakeFiles/bench_fig8_shared_pipelines.dir/bench_fig8_shared_pipelines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_shared_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_shared_pipelines.
# This may be replaced when dependencies are built.

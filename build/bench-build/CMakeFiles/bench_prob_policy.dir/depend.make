# Empty dependencies file for bench_prob_policy.
# This may be replaced when dependencies are built.

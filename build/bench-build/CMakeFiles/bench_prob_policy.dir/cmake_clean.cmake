file(REMOVE_RECURSE
  "../bench/bench_prob_policy"
  "../bench/bench_prob_policy.pdb"
  "CMakeFiles/bench_prob_policy.dir/bench_prob_policy.cpp.o"
  "CMakeFiles/bench_prob_policy.dir/bench_prob_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prob_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_mab.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_mab"
  "../bench/bench_mab.pdb"
  "CMakeFiles/bench_mab.dir/bench_mab.cpp.o"
  "CMakeFiles/bench_mab.dir/bench_mab.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libqta_env.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/qta_env.dir/env/bandit.cpp.o"
  "CMakeFiles/qta_env.dir/env/bandit.cpp.o.d"
  "CMakeFiles/qta_env.dir/env/grid_map.cpp.o"
  "CMakeFiles/qta_env.dir/env/grid_map.cpp.o.d"
  "CMakeFiles/qta_env.dir/env/grid_world.cpp.o"
  "CMakeFiles/qta_env.dir/env/grid_world.cpp.o.d"
  "CMakeFiles/qta_env.dir/env/partition.cpp.o"
  "CMakeFiles/qta_env.dir/env/partition.cpp.o.d"
  "CMakeFiles/qta_env.dir/env/random_mdp.cpp.o"
  "CMakeFiles/qta_env.dir/env/random_mdp.cpp.o.d"
  "CMakeFiles/qta_env.dir/env/stateful_bandit.cpp.o"
  "CMakeFiles/qta_env.dir/env/stateful_bandit.cpp.o.d"
  "CMakeFiles/qta_env.dir/env/value_iteration.cpp.o"
  "CMakeFiles/qta_env.dir/env/value_iteration.cpp.o.d"
  "libqta_env.a"
  "libqta_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/bandit.cpp" "src/CMakeFiles/qta_env.dir/env/bandit.cpp.o" "gcc" "src/CMakeFiles/qta_env.dir/env/bandit.cpp.o.d"
  "/root/repo/src/env/grid_map.cpp" "src/CMakeFiles/qta_env.dir/env/grid_map.cpp.o" "gcc" "src/CMakeFiles/qta_env.dir/env/grid_map.cpp.o.d"
  "/root/repo/src/env/grid_world.cpp" "src/CMakeFiles/qta_env.dir/env/grid_world.cpp.o" "gcc" "src/CMakeFiles/qta_env.dir/env/grid_world.cpp.o.d"
  "/root/repo/src/env/partition.cpp" "src/CMakeFiles/qta_env.dir/env/partition.cpp.o" "gcc" "src/CMakeFiles/qta_env.dir/env/partition.cpp.o.d"
  "/root/repo/src/env/random_mdp.cpp" "src/CMakeFiles/qta_env.dir/env/random_mdp.cpp.o" "gcc" "src/CMakeFiles/qta_env.dir/env/random_mdp.cpp.o.d"
  "/root/repo/src/env/stateful_bandit.cpp" "src/CMakeFiles/qta_env.dir/env/stateful_bandit.cpp.o" "gcc" "src/CMakeFiles/qta_env.dir/env/stateful_bandit.cpp.o.d"
  "/root/repo/src/env/value_iteration.cpp" "src/CMakeFiles/qta_env.dir/env/value_iteration.cpp.o" "gcc" "src/CMakeFiles/qta_env.dir/env/value_iteration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for qta_env.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/device.cpp" "src/CMakeFiles/qta_device.dir/device/device.cpp.o" "gcc" "src/CMakeFiles/qta_device.dir/device/device.cpp.o.d"
  "/root/repo/src/device/frequency_model.cpp" "src/CMakeFiles/qta_device.dir/device/frequency_model.cpp.o" "gcc" "src/CMakeFiles/qta_device.dir/device/frequency_model.cpp.o.d"
  "/root/repo/src/device/power_model.cpp" "src/CMakeFiles/qta_device.dir/device/power_model.cpp.o" "gcc" "src/CMakeFiles/qta_device.dir/device/power_model.cpp.o.d"
  "/root/repo/src/device/resource_report.cpp" "src/CMakeFiles/qta_device.dir/device/resource_report.cpp.o" "gcc" "src/CMakeFiles/qta_device.dir/device/resource_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_fixed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for qta_device.
# This may be replaced when dependencies are built.

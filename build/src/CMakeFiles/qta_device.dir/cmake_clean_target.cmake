file(REMOVE_RECURSE
  "libqta_device.a"
)

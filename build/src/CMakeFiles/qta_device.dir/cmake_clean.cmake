file(REMOVE_RECURSE
  "CMakeFiles/qta_device.dir/device/device.cpp.o"
  "CMakeFiles/qta_device.dir/device/device.cpp.o.d"
  "CMakeFiles/qta_device.dir/device/frequency_model.cpp.o"
  "CMakeFiles/qta_device.dir/device/frequency_model.cpp.o.d"
  "CMakeFiles/qta_device.dir/device/power_model.cpp.o"
  "CMakeFiles/qta_device.dir/device/power_model.cpp.o.d"
  "CMakeFiles/qta_device.dir/device/resource_report.cpp.o"
  "CMakeFiles/qta_device.dir/device/resource_report.cpp.o.d"
  "libqta_device.a"
  "libqta_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

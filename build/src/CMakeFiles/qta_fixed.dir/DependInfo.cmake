
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fixed/exp_lut.cpp" "src/CMakeFiles/qta_fixed.dir/fixed/exp_lut.cpp.o" "gcc" "src/CMakeFiles/qta_fixed.dir/fixed/exp_lut.cpp.o.d"
  "/root/repo/src/fixed/fixed_point.cpp" "src/CMakeFiles/qta_fixed.dir/fixed/fixed_point.cpp.o" "gcc" "src/CMakeFiles/qta_fixed.dir/fixed/fixed_point.cpp.o.d"
  "/root/repo/src/fixed/math_lut.cpp" "src/CMakeFiles/qta_fixed.dir/fixed/math_lut.cpp.o" "gcc" "src/CMakeFiles/qta_fixed.dir/fixed/math_lut.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

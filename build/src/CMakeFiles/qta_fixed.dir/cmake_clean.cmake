file(REMOVE_RECURSE
  "CMakeFiles/qta_fixed.dir/fixed/exp_lut.cpp.o"
  "CMakeFiles/qta_fixed.dir/fixed/exp_lut.cpp.o.d"
  "CMakeFiles/qta_fixed.dir/fixed/fixed_point.cpp.o"
  "CMakeFiles/qta_fixed.dir/fixed/fixed_point.cpp.o.d"
  "CMakeFiles/qta_fixed.dir/fixed/math_lut.cpp.o"
  "CMakeFiles/qta_fixed.dir/fixed/math_lut.cpp.o.d"
  "libqta_fixed.a"
  "libqta_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libqta_fixed.a"
)

# Empty compiler generated dependencies file for qta_fixed.
# This may be replaced when dependencies are built.

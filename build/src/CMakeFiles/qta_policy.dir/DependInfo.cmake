
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/exp3.cpp" "src/CMakeFiles/qta_policy.dir/policy/exp3.cpp.o" "gcc" "src/CMakeFiles/qta_policy.dir/policy/exp3.cpp.o.d"
  "/root/repo/src/policy/policies.cpp" "src/CMakeFiles/qta_policy.dir/policy/policies.cpp.o" "gcc" "src/CMakeFiles/qta_policy.dir/policy/policies.cpp.o.d"
  "/root/repo/src/policy/probability_table.cpp" "src/CMakeFiles/qta_policy.dir/policy/probability_table.cpp.o" "gcc" "src/CMakeFiles/qta_policy.dir/policy/probability_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_fixed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

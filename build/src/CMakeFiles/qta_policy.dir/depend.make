# Empty dependencies file for qta_policy.
# This may be replaced when dependencies are built.

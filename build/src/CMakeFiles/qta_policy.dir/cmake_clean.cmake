file(REMOVE_RECURSE
  "CMakeFiles/qta_policy.dir/policy/exp3.cpp.o"
  "CMakeFiles/qta_policy.dir/policy/exp3.cpp.o.d"
  "CMakeFiles/qta_policy.dir/policy/policies.cpp.o"
  "CMakeFiles/qta_policy.dir/policy/policies.cpp.o.d"
  "CMakeFiles/qta_policy.dir/policy/probability_table.cpp.o"
  "CMakeFiles/qta_policy.dir/policy/probability_table.cpp.o.d"
  "libqta_policy.a"
  "libqta_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

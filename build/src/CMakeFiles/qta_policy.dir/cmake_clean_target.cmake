file(REMOVE_RECURSE
  "libqta_policy.a"
)

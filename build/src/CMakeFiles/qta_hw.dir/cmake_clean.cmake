file(REMOVE_RECURSE
  "CMakeFiles/qta_hw.dir/hw/bram.cpp.o"
  "CMakeFiles/qta_hw.dir/hw/bram.cpp.o.d"
  "CMakeFiles/qta_hw.dir/hw/dsp.cpp.o"
  "CMakeFiles/qta_hw.dir/hw/dsp.cpp.o.d"
  "CMakeFiles/qta_hw.dir/hw/resource_ledger.cpp.o"
  "CMakeFiles/qta_hw.dir/hw/resource_ledger.cpp.o.d"
  "CMakeFiles/qta_hw.dir/hw/sim_kernel.cpp.o"
  "CMakeFiles/qta_hw.dir/hw/sim_kernel.cpp.o.d"
  "libqta_hw.a"
  "libqta_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libqta_hw.a"
)

# Empty dependencies file for qta_hw.
# This may be replaced when dependencies are built.

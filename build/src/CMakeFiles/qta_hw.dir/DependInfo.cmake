
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/bram.cpp" "src/CMakeFiles/qta_hw.dir/hw/bram.cpp.o" "gcc" "src/CMakeFiles/qta_hw.dir/hw/bram.cpp.o.d"
  "/root/repo/src/hw/dsp.cpp" "src/CMakeFiles/qta_hw.dir/hw/dsp.cpp.o" "gcc" "src/CMakeFiles/qta_hw.dir/hw/dsp.cpp.o.d"
  "/root/repo/src/hw/resource_ledger.cpp" "src/CMakeFiles/qta_hw.dir/hw/resource_ledger.cpp.o" "gcc" "src/CMakeFiles/qta_hw.dir/hw/resource_ledger.cpp.o.d"
  "/root/repo/src/hw/sim_kernel.cpp" "src/CMakeFiles/qta_hw.dir/hw/sim_kernel.cpp.o" "gcc" "src/CMakeFiles/qta_hw.dir/hw/sim_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_fixed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for qta_baseline.
# This may be replaced when dependencies are built.

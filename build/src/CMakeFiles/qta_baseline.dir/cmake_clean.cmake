file(REMOVE_RECURSE
  "CMakeFiles/qta_baseline.dir/baseline/dict_q_learning.cpp.o"
  "CMakeFiles/qta_baseline.dir/baseline/dict_q_learning.cpp.o.d"
  "CMakeFiles/qta_baseline.dir/baseline/flat_q_learning.cpp.o"
  "CMakeFiles/qta_baseline.dir/baseline/flat_q_learning.cpp.o.d"
  "CMakeFiles/qta_baseline.dir/baseline/fsm_accelerator.cpp.o"
  "CMakeFiles/qta_baseline.dir/baseline/fsm_accelerator.cpp.o.d"
  "libqta_baseline.a"
  "libqta_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libqta_baseline.a"
)
